// The plan-based session API: compile-once/run-many, streaming sinks,
// Status-based error paths, and the EmOptions::For preset contract
// (Proposition 1 oracle check through the new Matcher surface).

#include "core/matcher.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "core/entity_matcher.h"
#include "gen/synthetic.h"
#include "test_util.h"

namespace gkeys {
namespace {

using testing::Pairs;

// A sink that records everything it receives.
class RecordingSink : public MatchSink {
 public:
  void OnPair(NodeId a, NodeId b) override { pairs.emplace_back(a, b); }
  void OnProgress(const EmStats& progress) override {
    progress_calls.push_back(progress);
  }
  bool cancelled() override { return cancel_after > 0 &&
      progress_calls.size() >= static_cast<size_t>(cancel_after); }

  std::vector<std::pair<NodeId, NodeId>> pairs;
  std::vector<EmStats> progress_calls;
  int cancel_after = 0;  // cancel once this many progress calls were seen
};

SyntheticDataset SmallWorkload() {
  SyntheticConfig cfg;
  cfg.seed = 7;
  cfg.num_groups = 2;
  cfg.chain_length = 2;
  cfg.radius = 2;
  cfg.entities_per_type = 25;
  return GenerateSynthetic(cfg);
}

// ---- Compile-once / run-many ----------------------------------------------

TEST(Matcher, OnePlanServesManyAlgorithms) {
  auto m = testing::MakeG1();
  KeySet sigma1 = testing::MakeSigma1();

  auto plan = Matcher::Compile(m.g, sigma1);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan->valid());
  EXPECT_TRUE(plan->has_product_graph());
  EXPECT_EQ(&plan->graph(), &m.g);
  EXPECT_EQ(&plan->keys(), &sigma1);

  const auto expected = Pairs({{m.alb1, m.alb2}, {m.art1, m.art2}});
  // The acceptance pair (kEmOptMr, kEmVc) plus the rest of the family —
  // all from the SAME compiled plan, no recompilation.
  for (Algorithm a : {Algorithm::kEmOptMr, Algorithm::kEmVc,
                      Algorithm::kEmMr, Algorithm::kEmVf2Mr,
                      Algorithm::kEmOptVc, Algorithm::kNaiveChase}) {
    auto r = Matcher(a).processors(2).Run(*plan);
    ASSERT_TRUE(r.ok()) << AlgorithmName(a) << ": " << r.status().ToString();
    EXPECT_EQ(r->pairs, expected) << AlgorithmName(a);
    // Every run reports the amortized compile cost, not a fresh prep.
    EXPECT_DOUBLE_EQ(r->stats.prep_seconds, plan->compile_seconds());
  }
}

TEST(Matcher, PlanReuseOnGeneratedWorkload) {
  SyntheticDataset ds = SmallWorkload();
  auto plan = Matcher::Compile(ds.graph, ds.keys, PlanOptions{.processors = 2});
  ASSERT_TRUE(plan.ok());
  for (Algorithm a : {Algorithm::kEmOptMr, Algorithm::kEmVc}) {
    auto r = Matcher(a).processors(2).Run(*plan);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->pairs, ds.planted) << AlgorithmName(a);
  }
}

TEST(Matcher, PlanIsACheapSharedHandle) {
  auto m = testing::MakeG1();
  KeySet sigma1 = testing::MakeSigma1();
  auto plan = Matcher::Compile(m.g, sigma1);
  ASSERT_TRUE(plan.ok());
  MatchPlan copy = *plan;  // shares the compiled representation
  EXPECT_EQ(&copy.context(), &plan->context());
  auto r = Matcher(Algorithm::kEmOptVc).Run(copy);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->pairs, Pairs({{m.alb1, m.alb2}, {m.art1, m.art2}}));
}

// ---- Preset contract (§6 algorithm table) ---------------------------------

TEST(Matcher, PresetsMatchThePaperFlagCombinations) {
  // kNaiveChase / kEmMr: everything off.
  for (Algorithm a : {Algorithm::kNaiveChase, Algorithm::kEmMr}) {
    EmOptions o = EmOptions::For(a, 3);
    EXPECT_EQ(o.processors, 3);
    EXPECT_FALSE(o.use_vf2);
    EXPECT_FALSE(o.use_pairing);
    EXPECT_FALSE(o.use_dependency);
    EXPECT_FALSE(o.use_incremental);
    EXPECT_EQ(o.bounded_messages, 0);
    EXPECT_FALSE(o.prioritized);
  }
  // kEmVf2Mr: full enumeration only.
  EmOptions vf2 = EmOptions::For(Algorithm::kEmVf2Mr, 3);
  EXPECT_TRUE(vf2.use_vf2);
  EXPECT_FALSE(vf2.use_pairing);
  // kEmOptMr: the three §4.2 optimizations.
  EmOptions opt_mr = EmOptions::For(Algorithm::kEmOptMr, 3);
  EXPECT_TRUE(opt_mr.use_pairing);
  EXPECT_TRUE(opt_mr.use_dependency);
  EXPECT_TRUE(opt_mr.use_incremental);
  EXPECT_FALSE(opt_mr.use_vf2);
  // kEmVc: product graph from pairing, no §5.2 extras.
  EmOptions vc = EmOptions::For(Algorithm::kEmVc, 3);
  EXPECT_TRUE(vc.use_pairing);
  EXPECT_EQ(vc.bounded_messages, 0);
  EXPECT_FALSE(vc.prioritized);
  // kEmOptVc: bounded messages (the paper's k = 4) + prioritization.
  EmOptions opt_vc = EmOptions::For(Algorithm::kEmOptVc, 3);
  EXPECT_TRUE(opt_vc.use_pairing);
  EXPECT_EQ(opt_vc.bounded_messages, 4);
  EXPECT_TRUE(opt_vc.prioritized);

  // Matcher(a) loads exactly the preset.
  EXPECT_EQ(Matcher(Algorithm::kEmOptVc).options().bounded_messages, 4);
  EXPECT_TRUE(Matcher(Algorithm::kEmOptMr).options().use_incremental);
}

TEST(Matcher, AllPresetsAgreeWithTheOracleOnMutualRecursion) {
  // Proposition 1 through the new surface: every algorithm preset (each
  // with its own PlanOptions::For compilation) returns the oracle's pairs
  // on the paper's mutually recursive music fixture.
  auto m = testing::MakeG1();
  KeySet sigma1 = testing::MakeSigma1();
  const auto expected = Pairs({{m.alb1, m.alb2}, {m.art1, m.art2}});
  for (Algorithm a : {Algorithm::kNaiveChase, Algorithm::kEmMr,
                      Algorithm::kEmVf2Mr, Algorithm::kEmOptMr,
                      Algorithm::kEmVc, Algorithm::kEmOptVc}) {
    auto plan = Matcher::Compile(m.g, sigma1, PlanOptions::For(a, 2));
    ASSERT_TRUE(plan.ok()) << AlgorithmName(a);
    auto r = Matcher(a).processors(2).Run(*plan);
    ASSERT_TRUE(r.ok()) << AlgorithmName(a) << ": " << r.status().ToString();
    EXPECT_EQ(r->pairs, expected) << AlgorithmName(a);
  }
}

// ---- Streaming -------------------------------------------------------------

TEST(Matcher, StreamingSinkReceivesEveryPairExactlyOnce) {
  SyntheticDataset ds = SmallWorkload();
  for (Algorithm a : {Algorithm::kEmOptMr, Algorithm::kEmVc,
                      Algorithm::kEmOptVc, Algorithm::kNaiveChase}) {
    auto plan = Matcher::Compile(ds.graph, ds.keys, PlanOptions::For(a, 2));
    ASSERT_TRUE(plan.ok());
    RecordingSink sink;
    auto r = Matcher(a).processors(2).Run(*plan, sink);
    ASSERT_TRUE(r.ok()) << AlgorithmName(a) << ": " << r.status().ToString();

    // Exactly once: no duplicates, and the streamed set equals the result.
    std::set<std::pair<NodeId, NodeId>> unique(sink.pairs.begin(),
                                               sink.pairs.end());
    EXPECT_EQ(unique.size(), sink.pairs.size()) << AlgorithmName(a);
    std::vector<std::pair<NodeId, NodeId>> sorted(unique.begin(),
                                                  unique.end());
    EXPECT_EQ(sorted, r->pairs) << AlgorithmName(a);
    EXPECT_EQ(r->pairs, ds.planted) << AlgorithmName(a);

    // At least one progress callback per round.
    EXPECT_GE(sink.progress_calls.size(), r->stats.rounds)
        << AlgorithmName(a);
    EXPECT_GT(sink.progress_calls.size(), 0u) << AlgorithmName(a);
    // Progress is cumulative and monotone in confirmed pairs.
    size_t last = 0;
    for (const EmStats& s : sink.progress_calls) {
      EXPECT_GE(s.confirmed, last) << AlgorithmName(a);
      last = s.confirmed;
    }
  }
}

TEST(Matcher, StreamingMutualRecursionSeesBothPairs) {
  // The artist pair is only identifiable after the album pair merges
  // (recursive key Q3): streaming must still deliver both, each once.
  auto m = testing::MakeG1();
  KeySet sigma1 = testing::MakeSigma1();
  auto plan = Matcher::Compile(m.g, sigma1);
  ASSERT_TRUE(plan.ok());
  RecordingSink sink;
  auto r = Matcher(Algorithm::kEmOptVc).processors(2).Run(*plan, sink);
  ASSERT_TRUE(r.ok());
  std::vector<std::pair<NodeId, NodeId>> sorted = sink.pairs;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, Pairs({{m.alb1, m.alb2}, {m.art1, m.art2}}));
}

TEST(Matcher, CooperativeCancellationSurfacesAsCancelled) {
  SyntheticDataset ds = SmallWorkload();
  for (Algorithm a : {Algorithm::kEmOptMr, Algorithm::kNaiveChase}) {
    auto plan = Matcher::Compile(ds.graph, ds.keys, PlanOptions::For(a, 2));
    ASSERT_TRUE(plan.ok());
    RecordingSink sink;
    sink.cancel_after = 1;  // stop at the first round boundary
    auto r = Matcher(a).processors(2).Run(*plan, sink);
    ASSERT_FALSE(r.ok()) << AlgorithmName(a);
    EXPECT_EQ(r.status().code(), StatusCode::kCancelled) << AlgorithmName(a);
    EXPECT_EQ(sink.progress_calls.size(), 1u) << AlgorithmName(a);
  }
}

// ---- Error paths -----------------------------------------------------------

TEST(Matcher, UnfinalizedGraphIsAStatusNotAnAssert) {
  Graph g;
  NodeId a = g.AddEntity("t");
  NodeId b = g.AddEntity("t");
  g.AddTriple(a, "p", g.AddValue("v")).IgnoreError();
  g.AddTriple(b, "p", g.AddValue("v")).IgnoreError();
  // No Finalize().
  KeySet keys;
  ASSERT_TRUE(keys.AddFromDsl("key K for t { x -[p]-> v* }").ok());
  auto plan = Matcher::Compile(g, keys);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Matcher, EmptyKeySetIsInvalidArgument) {
  auto m = testing::MakeG1();
  KeySet empty;
  auto plan = Matcher::Compile(m.g, empty);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
}

TEST(Matcher, InvalidOptionsAreInvalidArgument) {
  auto m = testing::MakeG1();
  KeySet sigma1 = testing::MakeSigma1();

  // Bad compile options.
  auto bad_plan =
      Matcher::Compile(m.g, sigma1, PlanOptions{.processors = 0});
  ASSERT_FALSE(bad_plan.ok());
  EXPECT_EQ(bad_plan.status().code(), StatusCode::kInvalidArgument);

  auto plan = Matcher::Compile(m.g, sigma1);
  ASSERT_TRUE(plan.ok());

  // Bad run options.
  auto r1 = Matcher(Algorithm::kEmOptVc).processors(0).Run(*plan);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kInvalidArgument);

  auto r2 = Matcher(Algorithm::kEmOptVc).bounded_messages(-1).Run(*plan);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);

  // Empty (default-constructed) plan.
  MatchPlan empty;
  auto r3 = Matcher(Algorithm::kEmOptVc).Run(empty);
  ASSERT_FALSE(r3.ok());
  EXPECT_EQ(r3.status().code(), StatusCode::kInvalidArgument);
}

TEST(Matcher, VcOnPlanWithoutProductGraphIsFailedPrecondition) {
  auto m = testing::MakeG1();
  KeySet sigma1 = testing::MakeSigma1();
  PlanOptions popts;
  popts.build_product_graph = false;
  auto plan = Matcher::Compile(m.g, sigma1, popts);
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->has_product_graph());

  auto vc = Matcher(Algorithm::kEmVc).Run(*plan);
  ASSERT_FALSE(vc.ok());
  EXPECT_EQ(vc.status().code(), StatusCode::kFailedPrecondition);

  // The MapReduce family does not need the skeleton.
  auto mr = Matcher(Algorithm::kEmOptMr).Run(*plan);
  ASSERT_TRUE(mr.ok());
  EXPECT_EQ(mr->pairs, Pairs({{m.alb1, m.alb2}, {m.art1, m.art2}}));
}

// ---- Legacy wrappers -------------------------------------------------------

TEST(Matcher, LegacyFreeFunctionStillAgrees) {
  auto m = testing::MakeG1();
  KeySet sigma1 = testing::MakeSigma1();
  auto plan = Matcher::Compile(m.g, sigma1);
  ASSERT_TRUE(plan.ok());
  auto via_plan = Matcher(Algorithm::kEmOptVc).processors(2).Run(*plan);
  ASSERT_TRUE(via_plan.ok());
  MatchResult legacy =
      MatchEntities(m.g, sigma1, Algorithm::kEmOptVc, /*processors=*/2);
  EXPECT_EQ(legacy.pairs, via_plan->pairs);
}

}  // namespace
}  // namespace gkeys
