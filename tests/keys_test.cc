#include "keys/key.h"

#include <gtest/gtest.h>

#include "core/chase.h"
#include "test_util.h"

namespace gkeys {
namespace {

TEST(Key, CachesDerivedProperties) {
  auto parsed = ParseKey(R"(
    key Q1 for album {
      x -[name_of]-> n*
      x -[recorded_by]-> y:artist
    }
  )");
  ASSERT_TRUE(parsed.ok());
  Key k(parsed->name, std::move(parsed->pattern));
  EXPECT_EQ(k.name(), "Q1");
  EXPECT_EQ(k.type(), "album");
  EXPECT_EQ(k.size(), 2u);
  EXPECT_EQ(k.radius(), 1);
  EXPECT_TRUE(k.recursive());
  ASSERT_EQ(k.dependency_types().size(), 1u);
  EXPECT_EQ(k.dependency_types()[0], "artist");
}

TEST(KeySet, SizesAndLookup) {
  KeySet keys = testing::MakeSigma1();
  EXPECT_EQ(keys.count(), 3u);          // ||Σ||
  EXPECT_EQ(keys.TotalSize(), 6u);      // |Σ| = Σ|Q|
  EXPECT_EQ(keys.KeysForType("album").size(), 2u);
  EXPECT_EQ(keys.KeysForType("artist").size(), 1u);
  EXPECT_TRUE(keys.KeysForType("ghost").empty());
  EXPECT_TRUE(keys.HasKeyForType("album"));
  EXPECT_FALSE(keys.HasKeyForType("ghost"));
  auto types = keys.KeyedTypes();
  ASSERT_EQ(types.size(), 2u);
  EXPECT_EQ(types[0], "album");
  EXPECT_EQ(types[1], "artist");
}

TEST(KeySet, MaxRadius) {
  KeySet keys;
  ASSERT_TRUE(keys.AddFromDsl(R"(
    key A for t { x -[p]-> v* }
    key B for t {
      x -[p]-> _w:a
      _w -[q]-> u*
    }
  )").ok());
  EXPECT_EQ(keys.MaxRadiusForType("t"), 2);
  EXPECT_EQ(keys.MaxRadius(), 2);
  EXPECT_EQ(keys.MaxRadiusForType("ghost"), 0);
}

TEST(KeySet, ValueBasedTypes) {
  KeySet keys = testing::MakeSigma1();
  // album has value-based Q2; artist only has recursive Q3.
  auto vb = keys.ValueBasedTypes();
  ASSERT_EQ(vb.size(), 1u);
  EXPECT_EQ(vb[0], "album");
}

TEST(KeySet, DependencyChainMutualRecursion) {
  // album -> artist -> album: the cycle contributes its 2 distinct types.
  KeySet keys = testing::MakeSigma1();
  EXPECT_EQ(keys.LongestDependencyChain(), 2);
}

TEST(KeySet, DependencyChainValueBasedOnly) {
  KeySet keys;
  ASSERT_TRUE(keys.AddFromDsl("key A for t { x -[p]-> v* }").ok());
  EXPECT_EQ(keys.LongestDependencyChain(), 1);
}

TEST(KeySet, DependencyChainLinear) {
  KeySet keys;
  ASSERT_TRUE(keys.AddFromDsl(R"(
    key A for t0 {
      x -[p]-> v*
      x -[r]-> y:t1
    }
    key B for t1 {
      x -[p]-> v*
      x -[r]-> y:t2
    }
    key C for t2 { x -[p]-> v* }
  )").ok());
  EXPECT_EQ(keys.LongestDependencyChain(), 3);
}

TEST(KeySet, DependencyChainIgnoresUnkeyedTypes) {
  KeySet keys;
  // y's type has no key: the chain cannot extend through it.
  ASSERT_TRUE(keys.AddFromDsl(R"(
    key A for t0 {
      x -[p]-> v*
      x -[r]-> y:unkeyed
    }
  )").ok());
  EXPECT_EQ(keys.LongestDependencyChain(), 1);
}

TEST(KeySet, DependencyChainSelfRecursion) {
  // company -> company: a self-loop, chain of one distinct type.
  KeySet keys = testing::MakeSigma2();
  EXPECT_EQ(keys.LongestDependencyChain(), 1);
}

TEST(KeySet, EmptySet) {
  KeySet keys;
  EXPECT_TRUE(keys.empty());
  EXPECT_EQ(keys.LongestDependencyChain(), 0);
  EXPECT_EQ(keys.MaxRadius(), 0);
}

TEST(KeySet, AddFromDslPropagatesParseErrors) {
  KeySet keys;
  EXPECT_FALSE(keys.AddFromDsl("key broken {").ok());
  EXPECT_TRUE(keys.empty());
}

// ---- DSL round-tripping: ToDsl → AddFromDsl reproduces the key set ---------

// Structural equivalence of two keys: same name, type, size, radius,
// recursiveness, and dependency types.
void ExpectEquivalent(const Key& a, const Key& b) {
  EXPECT_EQ(a.name(), b.name());
  EXPECT_EQ(a.type(), b.type());
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.radius(), b.radius());
  EXPECT_EQ(a.recursive(), b.recursive());
  EXPECT_EQ(a.dependency_types(), b.dependency_types());
}

TEST(KeyDsl, SingleKeyRoundTrip) {
  auto parsed = ParseKey(R"(
    key Q1 for album {
      x -[name_of]-> n*
      x -[recorded_by]-> y:artist
    }
  )");
  ASSERT_TRUE(parsed.ok());
  Key original(parsed->name, std::move(parsed->pattern));

  auto reparsed = ParseKey(ToDsl(original));
  ASSERT_TRUE(reparsed.ok()) << ToDsl(original);
  Key round_tripped(reparsed->name, std::move(reparsed->pattern));
  ExpectEquivalent(original, round_tripped);
  // The rendering is canonical: a second round trip is a fixed point.
  EXPECT_EQ(ToDsl(original), ToDsl(round_tripped));
}

TEST(KeyDsl, KeySetRoundTripMutuallyRecursive) {
  KeySet original = testing::MakeSigma1();  // Q1–Q3, mutual recursion
  KeySet round_tripped;
  ASSERT_TRUE(round_tripped.AddFromDsl(ToDsl(original)).ok())
      << ToDsl(original);
  ASSERT_EQ(round_tripped.count(), original.count());
  for (size_t i = 0; i < original.count(); ++i) {
    ExpectEquivalent(original.key(i), round_tripped.key(i));
  }
  EXPECT_EQ(round_tripped.TotalSize(), original.TotalSize());
  EXPECT_EQ(round_tripped.KeyedTypes(), original.KeyedTypes());
  EXPECT_EQ(round_tripped.LongestDependencyChain(),
            original.LongestDependencyChain());
  EXPECT_EQ(ToDsl(original), ToDsl(round_tripped));
}

TEST(KeyDsl, KeySetRoundTripWildcardsValuesAndConstants) {
  // Every variable kind the DSL can express: value variables, entity
  // variables (recursion), wildcards, and a constant literal.
  KeySet original;
  ASSERT_TRUE(original.AddFromDsl(R"(
    key WildValue for doc {
      x -[first]-> _l:sec
      x -[second]-> _r:sec
      _l -[hash]-> h1*
      _r -[hash]-> h2*
    }
    key WithConstant for doc {
      x -[lang]-> "en"
      x -[title]-> t*
    }
    key Recursive for sec {
      x -[hash]-> h*
      y:doc -[first]-> x
    }
  )").ok());
  KeySet round_tripped;
  ASSERT_TRUE(round_tripped.AddFromDsl(ToDsl(original)).ok())
      << ToDsl(original);
  ASSERT_EQ(round_tripped.count(), original.count());
  for (size_t i = 0; i < original.count(); ++i) {
    ExpectEquivalent(original.key(i), round_tripped.key(i));
  }
  EXPECT_EQ(ToDsl(original), ToDsl(round_tripped));
}

TEST(KeyDsl, RoundTrippedKeysMatchTheSameEntities) {
  // The behavioral check: the round-tripped Σ1 identifies exactly the
  // same pairs on the paper's G1.
  auto m = testing::MakeG1();
  KeySet original = testing::MakeSigma1();
  KeySet round_tripped;
  ASSERT_TRUE(round_tripped.AddFromDsl(ToDsl(original)).ok());
  EXPECT_EQ(Chase(m.g, original).pairs, Chase(m.g, round_tripped).pairs);
}

}  // namespace
}  // namespace gkeys
