#include "common/json_writer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace gkeys {
namespace {

TEST(JsonWriter, PlainStringsPassThrough) {
  EXPECT_EQ(JsonEscaped("VaryD/Synthetic/EMOptMR/d:3"),
            "VaryD/Synthetic/EMOptMR/d:3");
}

TEST(JsonWriter, EscapesQuotesAndBackslashes) {
  // Regression: names used to be fprintf'd verbatim, so a quote or
  // backslash in a benchmark name produced invalid JSON.
  EXPECT_EQ(JsonEscaped("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonEscaped("a\\b"), "a\\\\b");
}

TEST(JsonWriter, EscapesControlCharacters) {
  EXPECT_EQ(JsonEscaped("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscaped(std::string_view("\x01\x1f", 2)), "\\u0001\\u001f");
  EXPECT_EQ(JsonEscaped("\b\f\r"), "\\b\\f\\r");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull) {
  // Regression: %.9g printed bare nan / inf tokens, which JSON rejects.
  std::string out;
  AppendJsonNumber(std::numeric_limits<double>::quiet_NaN(), &out);
  EXPECT_EQ(out, "null");
  out.clear();
  AppendJsonNumber(std::numeric_limits<double>::infinity(), &out);
  EXPECT_EQ(out, "null");
  out.clear();
  AppendJsonNumber(-std::numeric_limits<double>::infinity(), &out);
  EXPECT_EQ(out, "null");
  out.clear();
  AppendJsonNumber(2.5, &out);
  EXPECT_EQ(out, "2.5");
}

TEST(JsonWriter, RendersRowsAsJsonArray) {
  JsonRows rows;
  rows.emplace_back(
      "bench \"quoted\"",
      std::vector<std::pair<std::string, double>>{
          {"prep_s", 0.25},
          {"ratio", std::numeric_limits<double>::quiet_NaN()}});
  rows.emplace_back("plain",
                    std::vector<std::pair<std::string, double>>{{"n", 3.0}});
  EXPECT_EQ(RenderJsonRows(rows),
            "[\n"
            "  {\"name\": \"bench \\\"quoted\\\"\", \"prep_s\": 0.25, "
            "\"ratio\": null},\n"
            "  {\"name\": \"plain\", \"n\": 3}\n"
            "]\n");
}

TEST(JsonWriter, EmptyRowsAreAValidEmptyArray) {
  EXPECT_EQ(RenderJsonRows({}), "[\n]\n");
}

}  // namespace
}  // namespace gkeys
