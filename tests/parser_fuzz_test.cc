// Deterministic differential fuzzing of the fast (SWAR/SIMD, chunked)
// triple/delta parsers against the scalar oracles. Seeds are valid
// corpora; each iteration flips/inserts/deletes a few bytes and asserts
// the fast path and the scalar path agree: identical results on accepted
// inputs (serialization, entity tables, staged ops), and on rejected
// inputs the same StatusCode and the same 1-based failing line. Seeded
// Rng => every run fuzzes the same inputs; a failure is a plain
// regression, not a flake.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "gen/datasets.h"
#include "graph/delta.h"
#include "io/fast_triples.h"
#include "io/triples.h"

namespace gkeys {
namespace {

/// 1-based line number named by a parse error, or -1 when the message
/// names none.
int ErrorLine(const Status& s) {
  const std::string& m = s.message();
  size_t pos = m.find("line ");
  if (pos == std::string::npos) return -1;
  return std::atoi(m.c_str() + pos + 5);
}

std::string Mutate(const std::string& seed, Rng& rng) {
  // Interesting bytes first: structural characters of the formats, which
  // turn valid lines into near-miss invalid ones (and vice versa).
  static constexpr char kInteresting[] = {'\n', ' ',  '"', '\\', '+', '-',
                                          ':',  '#',  'e', 'v',  '@', '\t',
                                          '\r', '\0', '_'};
  std::string m = seed;
  int edits = 1 + static_cast<int>(rng.Below(3));
  for (int i = 0; i < edits && !m.empty(); ++i) {
    size_t pos = rng.Below(m.size());
    char b = rng.Chance(0.7)
                 ? kInteresting[rng.Below(sizeof kInteresting)]
                 : static_cast<char>(rng.Below(256));
    switch (rng.Below(3)) {
      case 0: m[pos] = b; break;                    // flip
      case 1: m.insert(m.begin() + pos, b); break;  // insert
      default: m.erase(m.begin() + pos); break;     // delete
    }
  }
  return m;
}

std::vector<std::tuple<NodeId, std::string, NodeId>> Ops(
    const std::vector<GraphDelta::DeltaTriple>& ts) {
  std::vector<std::tuple<NodeId, std::string, NodeId>> out;
  for (const auto& t : ts) out.emplace_back(t.subject, t.pred, t.object);
  return out;
}

/// Both paths rejected: codes and failing line must agree (message
/// wording may differ — see fast_triples.h's error-equivalence contract).
void ExpectSameRejection(const Status& scalar, const Status& fast,
                         const std::string& input) {
  EXPECT_EQ(scalar.code(), fast.code())
      << "scalar: " << scalar.ToString() << "\nfast: " << fast.ToString()
      << "\ninput:\n" << input;
  EXPECT_EQ(ErrorLine(scalar), ErrorLine(fast))
      << "scalar: " << scalar.ToString() << "\nfast: " << fast.ToString()
      << "\ninput:\n" << input;
}

TEST(ParserFuzz, GraphTextDifferential) {
  std::vector<std::string> corpus = {
      "ent:person:p0 name val:\"alice\"\n"
      "ent:person:p1 name val:\"bob\"\n"
      "ent:person:p0 knows ent:person:p1\n"
      "ent:org:o0 label val:\"acme \\\"inc\\\" \\\\ co\"\n"
      "ent:person:p9 @exists ent:person:p9\n",
  };
  {
    GoogleSimConfig cfg;
    cfg.scale = 0.15;
    corpus.push_back(SerializeGraph(GenerateGoogleSim(cfg).graph));
  }

  Rng rng(20260808);
  int accepted = 0, rejected = 0;
  for (int iter = 0; iter < 300; ++iter) {
    const std::string& seed = corpus[rng.Below(corpus.size())];
    std::string input = Mutate(seed, rng);

    StatusOr<LoadedGraph> scalar = DeserializeGraphWithNames(input);
    for (int threads : {1, 2}) {
      StatusOr<LoadedGraph> fast =
          FastDeserializeGraphWithNames(input, threads);
      ASSERT_EQ(scalar.ok(), fast.ok())
          << "threads=" << threads << " iter=" << iter
          << (scalar.ok() ? "\nfast: " + fast.status().ToString()
                          : "\nscalar: " + scalar.status().ToString())
          << "\ninput:\n" << input;
      if (scalar.ok()) {
        // Accepted: byte-identical graphs and entity tables.
        EXPECT_EQ(SerializeGraph(scalar->graph), SerializeGraph(fast->graph))
            << "iter=" << iter;
        EXPECT_EQ(scalar->entities, fast->entities) << "iter=" << iter;
      } else {
        ExpectSameRejection(scalar.status(), fast.status(), input);
      }
    }
    scalar.ok() ? ++accepted : ++rejected;
  }
  // The mutator must exercise both sides of the contract.
  EXPECT_GT(accepted, 10);
  EXPECT_GT(rejected, 10);
}

TEST(ParserFuzz, DeltaTextDifferential) {
  auto base = DeserializeGraphWithNames(
      "ent:person:p0 name val:\"alice\"\n"
      "ent:person:p1 name val:\"bob\"\n"
      "ent:person:p0 knows ent:person:p1\n"
      "ent:org:o0 label val:\"acme\"\n");
  ASSERT_TRUE(base.ok());

  std::vector<std::string> corpus = {
      "+ ent:person:p2 name val:\"carol\"\n"
      "- ent:person:p0 knows ent:person:p1\n"
      "# comment line\n"
      "\n"
      "+ ent:person:p2 knows ent:person:p0\n",
      "- ent:person:p1 name val:\"bob\"\n",
      "+ ent:org:o1 label val:\"esc \\\\ and \\\" quote\"\n"
      "+ ent:org:o1 part_of ent:org:o0\n",
  };

  Rng rng(873251);
  int accepted = 0, rejected = 0;
  for (int iter = 0; iter < 300; ++iter) {
    const std::string& seed = corpus[rng.Below(corpus.size())];
    std::string input = Mutate(seed, rng);

    std::unordered_map<std::string, NodeId> scalar_new;
    StatusOr<GraphDelta> scalar =
        ParseDelta(input, base->graph, base->entities, &scalar_new);
    for (int threads : {1, 2}) {
      std::unordered_map<std::string, NodeId> fast_new;
      StatusOr<GraphDelta> fast = FastParseDelta(
          input, base->graph, base->entities, &fast_new, threads);
      ASSERT_EQ(scalar.ok(), fast.ok())
          << "threads=" << threads << " iter=" << iter
          << (scalar.ok() ? "\nfast: " + fast.status().ToString()
                          : "\nscalar: " + scalar.status().ToString())
          << "\ninput:\n" << input;
      if (scalar.ok()) {
        // Accepted: identical staged ops, staged nodes, and new-token
        // bindings (the WAL replay path depends on the latter).
        EXPECT_EQ(Ops(scalar->added()), Ops(fast->added())) << "iter=" << iter;
        EXPECT_EQ(Ops(scalar->removed()), Ops(fast->removed()))
            << "iter=" << iter;
        ASSERT_EQ(scalar->new_nodes().size(), fast->new_nodes().size())
            << "iter=" << iter;
        for (size_t i = 0; i < scalar->new_nodes().size(); ++i) {
          EXPECT_EQ(scalar->new_nodes()[i].kind, fast->new_nodes()[i].kind);
          EXPECT_EQ(scalar->new_nodes()[i].label, fast->new_nodes()[i].label);
        }
        EXPECT_EQ(scalar_new, fast_new) << "iter=" << iter;
      } else {
        ExpectSameRejection(scalar.status(), fast.status(), input);
      }
    }
    scalar.ok() ? ++accepted : ++rejected;
  }
  EXPECT_GT(accepted, 10);
  EXPECT_GT(rejected, 10);
}

}  // namespace
}  // namespace gkeys
