#include "isomorph/vf2.h"

#include <gtest/gtest.h>

#include <memory>

#include "pattern/parser.h"
#include "test_util.h"

namespace gkeys {
namespace {

using testing::MakeG1;
using testing::MakeG2;

CompiledPattern CompileDsl(const Graph& g, const char* dsl) {
  auto key = ParseKey(dsl);
  EXPECT_TRUE(key.ok()) << key.status().ToString();
  static std::vector<std::unique_ptr<Pattern>> keep;
  keep.push_back(std::make_unique<Pattern>(std::move(key->pattern)));
  return Compile(*keep.back(), g);
}

TEST(Vf2, EnumeratesAllMatches) {
  auto m = MakeG1();
  CompiledPattern q1 = CompileDsl(m.g, R"(
    key Q1 for album {
      x -[name_of]-> n*
      x -[recorded_by]-> y:artist
    })");
  // alb1 has exactly one match: {name -> Anthology 2, y -> art1}.
  auto matches = EnumerateMatches(m.g, q1, m.alb1);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0][0], m.alb1);  // designated first in node order
  // Wrong-typed start has no matches.
  EXPECT_TRUE(EnumerateMatches(m.g, q1, m.art1).empty());
}

TEST(Vf2, MultipleMatchesEnumerated) {
  // An album recorded by two artists has two Q1 matches.
  Graph g;
  NodeId alb = g.AddEntity("album");
  NodeId a1 = g.AddEntity("artist");
  NodeId a2 = g.AddEntity("artist");
  g.AddTriple(alb, "name_of", g.AddValue("N")).IgnoreError();
  g.AddTriple(alb, "recorded_by", a1).IgnoreError();
  g.AddTriple(alb, "recorded_by", a2).IgnoreError();
  g.Finalize();
  CompiledPattern q1 = CompileDsl(g, R"(
    key Q1 for album {
      x -[name_of]-> n*
      x -[recorded_by]-> y:artist
    })");
  EXPECT_EQ(EnumerateMatches(g, q1, alb).size(), 2u);
}

TEST(Vf2, MaxMatchesCap) {
  Graph g;
  NodeId alb = g.AddEntity("album");
  g.AddTriple(alb, "name_of", g.AddValue("N")).IgnoreError();
  for (int i = 0; i < 10; ++i) {
    g.AddTriple(alb, "recorded_by", g.AddEntity("artist")).IgnoreError();
  }
  g.Finalize();
  CompiledPattern q1 = CompileDsl(g, R"(
    key Q1 for album {
      x -[name_of]-> n*
      x -[recorded_by]-> y:artist
    })");
  EXPECT_EQ(EnumerateMatches(g, q1, alb, nullptr, 3).size(), 3u);
  EXPECT_EQ(EnumerateMatches(g, q1, alb, nullptr, 0).size(), 10u);
}

TEST(Vf2, CoincideChecksEntityVarsAndValues) {
  auto m = MakeG1();
  CompiledPattern q1 = CompileDsl(m.g, R"(
    key Q1 for album {
      x -[name_of]-> n*
      x -[recorded_by]-> y:artist
    })");
  auto m1 = EnumerateMatches(m.g, q1, m.alb1);
  auto m2 = EnumerateMatches(m.g, q1, m.alb2);
  ASSERT_EQ(m1.size(), 1u);
  ASSERT_EQ(m2.size(), 1u);
  // Same name but distinct artists: coincide only once artists are in Eq.
  EqView eq0;
  EXPECT_FALSE(Coincide(m.g, q1, m1[0], m2[0], eq0));
  EquivalenceRelation eq(m.g.NumNodes());
  eq.Union(m.art1, m.art2);
  EXPECT_TRUE(Coincide(m.g, q1, m1[0], m2[0], EqView(&eq)));
}

TEST(Vf2, IdentifiesByEnumerationMatchesEvalSearch) {
  // The naive enumeration procedure and the combined search must agree on
  // the paper's graphs for every pair and key (Lemma 8).
  auto m = MakeG1();
  const char* keys[] = {
      R"(key Q1 for album {
        x -[name_of]-> n*
        x -[recorded_by]-> y:artist
      })",
      R"(key Q2 for album {
        x -[name_of]-> n*
        x -[release_year]-> yr*
      })",
      R"(key Q3 for artist {
        x -[name_of]-> n*
        y:album -[recorded_by]-> x
      })",
  };
  EquivalenceRelation eq(m.g.NumNodes());
  eq.Union(m.alb1, m.alb2);  // one derived fact, to exercise entity vars
  EqView view(&eq);
  std::vector<NodeId> all = {m.alb1, m.alb2, m.alb3,
                             m.art1, m.art2, m.art3};
  for (const char* dsl : keys) {
    CompiledPattern cp = CompileDsl(m.g, dsl);
    for (NodeId a : all) {
      for (NodeId b : all) {
        if (a == b) continue;
        EXPECT_EQ(IdentifiesByEnumeration(m.g, cp, a, b, view),
                  KeyIdentifies(m.g, cp, a, b, view))
            << "disagreement at (" << a << ", " << b << ")";
      }
    }
  }
}

TEST(Vf2, DagPatternOnG2) {
  auto c = MakeG2();
  CompiledPattern q4 = CompileDsl(c.g, R"(
    key Q4 for company {
      x -[name_of]-> n*
      _p:company -[name_of]-> n*
      _p -[parent_of]-> x
      y:company -[parent_of]-> x
    })");
  EqView eq0;
  EXPECT_TRUE(IdentifiesByEnumeration(c.g, q4, c.com4, c.com5, eq0));
  EXPECT_FALSE(IdentifiesByEnumeration(c.g, q4, c.com1, c.com2, eq0));
}

TEST(Vf2, StatsCountFullEnumeration) {
  auto m = MakeG1();
  CompiledPattern q2 = CompileDsl(m.g, R"(
    key Q2 for album {
      x -[name_of]-> n*
      x -[release_year]-> yr*
    })");
  EqView eq0;
  SearchStats enum_stats, search_stats;
  EXPECT_TRUE(IdentifiesByEnumeration(m.g, q2, m.alb1, m.alb2, eq0, nullptr,
                                      nullptr, &enum_stats));
  EXPECT_TRUE(KeyIdentifies(m.g, q2, m.alb1, m.alb2, eq0, nullptr, nullptr,
                            &search_stats));
  // VF2 enumerates both sides fully: at least as much work as the combined
  // early-terminating search (the §6 EMMR-vs-EMVF2MR effect in miniature).
  EXPECT_GE(enum_stats.full_instantiations,
            search_stats.full_instantiations);
}

}  // namespace
}  // namespace gkeys
