// Tests for the violation-report API and the key DSL round-trip.

#include "core/satisfaction.h"

#include <gtest/gtest.h>

#include "core/chase.h"
#include "gen/datasets.h"
#include "gen/synthetic.h"
#include "test_util.h"

namespace gkeys {
namespace {

using testing::MakeG1;
using testing::MakeG2;
using testing::MakeSigma1;
using testing::MakeSigma2;

TEST(Violations, ReportsFirstRoundEvidence) {
  auto m = MakeG1();
  KeySet sigma1 = MakeSigma1();
  auto violations = FindViolations(m.g, sigma1);
  // Under Eq0 only Q2 can fire: (alb1, alb2). The artists' violation is
  // recursive and not directly evidenced.
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].key, "Q2");
  EXPECT_EQ(violations[0].e1, m.alb1);
  EXPECT_EQ(violations[0].e2, m.alb2);
  EXPECT_EQ(FormatViolation(m.g, violations[0]),
            "Q2: album#3 == album#4");
}

TEST(Violations, EmptyIffSatisfies) {
  // Property over several workloads: the violation list is empty exactly
  // when G |= Σ.
  for (uint64_t seed : {1u, 2u, 3u}) {
    SyntheticConfig cfg;
    cfg.seed = seed;
    cfg.num_groups = 2;
    cfg.chain_length = 2;
    cfg.entities_per_type = 10;
    cfg.duplicate_fraction = seed == 2 ? 0.0 : 0.2;
    SyntheticDataset ds = GenerateSynthetic(cfg);
    EXPECT_EQ(FindViolations(ds.graph, ds.keys).empty(),
              Satisfies(ds.graph, ds.keys))
        << "seed " << seed;
  }
}

TEST(Violations, LimitCapsOutput) {
  auto c = MakeG2();
  KeySet sigma2 = MakeSigma2();
  auto all = FindViolations(c.g, sigma2);
  EXPECT_EQ(all.size(), 2u);  // (com4, com5) by Q4, (com1, com2) by Q5
  EXPECT_EQ(FindViolations(c.g, sigma2, 1).size(), 1u);
}

TEST(KeyDsl, RoundTripPaperKeys) {
  KeySet sigma1 = MakeSigma1();
  KeySet reparsed;
  ASSERT_TRUE(reparsed.AddFromDsl(ToDsl(sigma1)).ok())
      << ToDsl(sigma1);
  ASSERT_EQ(reparsed.count(), sigma1.count());
  for (size_t i = 0; i < sigma1.count(); ++i) {
    EXPECT_EQ(reparsed.key(i).name(), sigma1.key(i).name());
    EXPECT_EQ(reparsed.key(i).type(), sigma1.key(i).type());
    EXPECT_EQ(reparsed.key(i).size(), sigma1.key(i).size());
    EXPECT_EQ(reparsed.key(i).radius(), sigma1.key(i).radius());
    EXPECT_EQ(reparsed.key(i).recursive(), sigma1.key(i).recursive());
  }
}

TEST(KeyDsl, RoundTripWildcardsAndConstants) {
  KeySet keys;
  ASSERT_TRUE(keys.AddFromDsl(R"(
    key Q4 for company {
      x -[name_of]-> n*
      _p:company -[name_of]-> n*
      _p -[parent_of]-> x
      y:company -[parent_of]-> x
    }
    key Q6 for street {
      x -[zip_code]-> code*
      x -[nation_of]-> "UK"
    }
  )").ok());
  KeySet reparsed;
  ASSERT_TRUE(reparsed.AddFromDsl(ToDsl(keys)).ok()) << ToDsl(keys);
  EXPECT_EQ(reparsed.count(), 2u);
  // Semantics preserved: the reparsed keys behave identically on G2.
  auto c = MakeG2();
  KeySet sigma2_orig = MakeSigma2();
  MatchResult a = Chase(c.g, sigma2_orig);
  KeySet sigma2_rt;
  ASSERT_TRUE(sigma2_rt.AddFromDsl(ToDsl(sigma2_orig)).ok());
  MatchResult b = Chase(c.g, sigma2_rt);
  EXPECT_EQ(a.pairs, b.pairs);
}

TEST(KeyDsl, RoundTripBuilderWildcardWithoutUnderscore) {
  Pattern p;
  int x = p.AddDesignated("t");
  int w = p.AddWildcard("w", "aux");  // no underscore in the name
  int v = p.AddValueVar("v");
  ASSERT_TRUE(p.AddTriple(w, "owns", x).ok());
  ASSERT_TRUE(p.AddTriple(x, "tag", v).ok());
  ASSERT_TRUE(p.Validate().ok());
  Key key("K", std::move(p));
  KeySet reparsed;
  ASSERT_TRUE(reparsed.AddFromDsl(ToDsl(key)).ok()) << ToDsl(key);
  // Still a wildcard after the round trip.
  int wildcards = 0;
  for (const auto& n : reparsed.key(0).pattern().nodes()) {
    wildcards += (n.kind == VarKind::kWildcard);
  }
  EXPECT_EQ(wildcards, 1);
}

TEST(KeyDsl, RoundTripGeneratedKeySets) {
  SyntheticConfig cfg;
  cfg.num_groups = 2;
  cfg.chain_length = 3;
  cfg.radius = 2;
  cfg.entities_per_type = 10;
  SyntheticDataset ds = GenerateSynthetic(cfg);
  KeySet reparsed;
  ASSERT_TRUE(reparsed.AddFromDsl(ToDsl(ds.keys)).ok());
  EXPECT_EQ(Chase(ds.graph, reparsed).pairs, ds.planted);
}

}  // namespace
}  // namespace gkeys
