// EMMR-specific behavior beyond the cross-algorithm matrix: round
// semantics, dependency deferral, incremental re-checking, and stats.

#include "core/em_mapreduce.h"

#include <gtest/gtest.h>

#include "core/chase.h"
#include "gen/synthetic.h"
#include "test_util.h"

namespace gkeys {
namespace {

using testing::MakeG1;
using testing::MakeSigma1;
using testing::Pairs;

TEST(EmMapReduce, RoundsMirrorDerivationDepth) {
  // G1 needs: round 1 (albums by Q2), round 2 (artists by Q3), round 3
  // (fixpoint confirmation).
  auto m = MakeG1();
  KeySet sigma1 = MakeSigma1();
  MatchResult r = RunEmMapReduce(m.g, sigma1, EmOptions::For(
                                                  Algorithm::kEmMr, 2));
  EXPECT_EQ(r.pairs, Pairs({{m.alb1, m.alb2}, {m.art1, m.art2}}));
  EXPECT_EQ(r.stats.rounds, 3u);
}

TEST(EmMapReduce, DependencyDeferralStillComplete) {
  // With use_dependency, recursive-only pairs enter in round 2 — but a
  // recursive key CAN fire via node identity, so completeness must not
  // rely on value-based seeds alone.
  Graph g;
  NodeId a1 = g.AddEntity("artist");
  NodeId a2 = g.AddEntity("artist");
  NodeId alb = g.AddEntity("album");
  g.AddTriple(a1, "name_of", g.AddValue("N")).IgnoreError();
  g.AddTriple(a2, "name_of", g.AddValue("N")).IgnoreError();
  g.AddTriple(alb, "recorded_by", a1).IgnoreError();
  g.AddTriple(alb, "recorded_by", a2).IgnoreError();
  g.Finalize();
  KeySet keys;
  // ONLY a recursive key; L0 is empty.
  ASSERT_TRUE(keys.AddFromDsl(R"(
    key Q3 for artist {
      x -[name_of]-> n*
      y:album -[recorded_by]-> x
    }
  )").ok());
  EmOptions opts = EmOptions::For(Algorithm::kEmMr, 2);
  opts.use_dependency = true;
  MatchResult r = RunEmMapReduce(g, keys, opts);
  EXPECT_EQ(r.pairs, Pairs({{a1, a2}}));
}

TEST(EmMapReduce, IncrementalSkipsQuietPairsButConverges) {
  SyntheticConfig cfg;
  cfg.num_groups = 2;
  cfg.chain_length = 3;
  cfg.entities_per_type = 14;
  cfg.chained_fraction = 1.0;
  SyntheticDataset ds = GenerateSynthetic(cfg);
  EmOptions base = EmOptions::For(Algorithm::kEmMr, 2);
  EmOptions incr = base;
  incr.use_incremental = true;
  MatchResult rb = RunEmMapReduce(ds.graph, ds.keys, base);
  MatchResult ri = RunEmMapReduce(ds.graph, ds.keys, incr);
  EXPECT_EQ(rb.pairs, ri.pairs);
  EXPECT_EQ(ri.pairs, ds.planted);
  EXPECT_LE(ri.stats.iso_checks, rb.stats.iso_checks)
      << "incremental must not check more often than the base";
}

TEST(EmMapReduce, AllOptimizationTogglesPreserveResult) {
  SyntheticConfig cfg;
  cfg.num_groups = 2;
  cfg.chain_length = 2;
  cfg.entities_per_type = 12;
  cfg.seed = 77;
  SyntheticDataset ds = GenerateSynthetic(cfg);
  for (int mask = 0; mask < 16; ++mask) {
    EmOptions opts;
    opts.processors = 3;
    opts.use_vf2 = mask & 1;
    opts.use_pairing = mask & 2;
    opts.use_dependency = mask & 4;
    opts.use_incremental = mask & 8;
    MatchResult r = RunEmMapReduce(ds.graph, ds.keys, opts);
    EXPECT_EQ(r.pairs, ds.planted) << "option mask " << mask;
  }
}

TEST(EmMapReduce, ResultIndependentOfProcessorCount) {
  SyntheticConfig cfg;
  cfg.num_groups = 3;
  cfg.chain_length = 2;
  cfg.entities_per_type = 14;
  SyntheticDataset ds = GenerateSynthetic(cfg);
  for (int p : {1, 2, 5, 9, 16}) {
    MatchResult r =
        RunEmMapReduce(ds.graph, ds.keys, EmOptions::For(Algorithm::kEmMr, p));
    EXPECT_EQ(r.pairs, ds.planted) << "p=" << p;
  }
}

TEST(EmMapReduce, EmptyCandidatesTerminateImmediately) {
  Graph g;
  g.AddEntity("t");
  g.Finalize();
  KeySet keys;
  ASSERT_TRUE(keys.AddFromDsl("key K for t { x -[p]-> v* }").ok());
  MatchResult r =
      RunEmMapReduce(g, keys, EmOptions::For(Algorithm::kEmMr, 2));
  EXPECT_TRUE(r.pairs.empty());
  EXPECT_LE(r.stats.rounds, 1u);
}

TEST(EmMapReduce, GhostPairsWakeDependents) {
  // Regression: (a, c) is unpairable by any key (dropped from L), yet it
  // becomes equal transitively via (a,b) + (b,c); the artist pair that
  // depends on (a, c) must still fire under the full optimization stack.
  Graph g;
  NodeId a = g.AddEntity("album");
  NodeId b = g.AddEntity("album");
  NodeId c = g.AddEntity("album");
  NodeId n = g.AddValue("N");
  for (NodeId e : {a, b, c}) g.AddTriple(e, "name_of", n).IgnoreError();
  NodeId y1 = g.AddValue("Y");
  g.AddTriple(a, "release_year", y1).IgnoreError();
  g.AddTriple(b, "release_year", y1).IgnoreError();
  NodeId l = g.AddValue("L");
  g.AddTriple(b, "label", l).IgnoreError();
  g.AddTriple(c, "label", l).IgnoreError();
  NodeId r1 = g.AddEntity("artist");
  NodeId r2 = g.AddEntity("artist");
  NodeId an = g.AddValue("AN");
  g.AddTriple(r1, "name_of", an).IgnoreError();
  g.AddTriple(r2, "name_of", an).IgnoreError();
  g.AddTriple(a, "recorded_by", r1).IgnoreError();
  g.AddTriple(c, "recorded_by", r2).IgnoreError();
  g.Finalize();
  KeySet keys;
  ASSERT_TRUE(keys.AddFromDsl(R"(
    key ByYear for album {
      x -[name_of]-> n*
      x -[release_year]-> yr*
    }
    key ByLabel for album {
      x -[name_of]-> n*
      x -[label]-> l*
    }
    key Q3 for artist {
      x -[name_of]-> n*
      y:album -[recorded_by]-> x
    }
  )").ok());
  MatchResult oracle = Chase(g, keys);
  EXPECT_EQ(oracle.pairs.size(), 4u);  // 3 album pairs + the artist pair
  for (int p : {1, 4}) {
    MatchResult r =
        RunEmMapReduce(g, keys, EmOptions::For(Algorithm::kEmOptMr, p));
    EXPECT_EQ(r.pairs, oracle.pairs) << "EMOptMR p=" << p;
  }
}

TEST(EmMapReduce, StatsConsistent) {
  auto m = MakeG1();
  KeySet sigma1 = MakeSigma1();
  MatchResult r =
      RunEmMapReduce(m.g, sigma1, EmOptions::For(Algorithm::kEmMr, 2));
  EXPECT_EQ(r.stats.confirmed, r.pairs.size());
  EXPECT_GT(r.stats.iso_checks, 0u);
  EXPECT_GE(r.stats.candidates_initial, r.stats.candidates);
  EXPECT_GT(r.stats.search.feasibility_checks, 0u);
}

}  // namespace
}  // namespace gkeys
