// Incremental re-matching tests: MatchPlan::Patch + Matcher::Rematch over
// random delta streams must be byte-identical to a from-scratch
// Compile + Run on the post-delta graph — for every algorithm, for
// additive, deletion-heavy, and mixed streams, across a chain of deltas
// (each step patches the previous step's patched plan).

#include <algorithm>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/matcher.h"
#include "core/provenance.h"
#include "gen/synthetic.h"
#include "graph/delta.h"
#include "test_util.h"

namespace gkeys {
namespace {

const std::vector<Algorithm>& AllAlgorithms() {
  static const std::vector<Algorithm> algos = {
      Algorithm::kNaiveChase, Algorithm::kEmMr,  Algorithm::kEmVf2Mr,
      Algorithm::kEmOptMr,    Algorithm::kEmVc,  Algorithm::kEmOptVc};
  return algos;
}

struct Workload {
  Graph graph;
  KeySet keys;
  std::vector<Triple> all_triples;  // of the FULL generated graph
};

/// Rebuilds the generated graph node-for-node (same NodeIds) keeping only
/// the triples `keep[i]` flags. The full triple list is returned so tests
/// can stage the held-out ones as additions.
Graph RebuildWithout(const Graph& src, const std::vector<Triple>& triples,
                     const std::vector<uint8_t>& keep) {
  Graph g;
  for (NodeId n = 0; n < src.NumNodes(); ++n) {
    NodeId id = src.IsEntity(n)
                    ? g.AddEntity(src.interner().Resolve(src.entity_type(n)))
                    : g.AddValue(src.value_str(n));
    EXPECT_EQ(id, n);
  }
  for (size_t i = 0; i < triples.size(); ++i) {
    if (!keep[i]) continue;
    const Triple& t = triples[i];
    EXPECT_TRUE(
        g.AddTriple(t.subject, src.interner().Resolve(t.pred), t.object)
            .ok());
  }
  g.Finalize();
  return g;
}

Workload MakeWorkload(uint64_t seed) {
  SyntheticConfig cfg;
  cfg.seed = seed;
  cfg.num_groups = 2;
  cfg.chain_length = 2;
  cfg.radius = 2;
  cfg.entities_per_type = 18;
  SyntheticDataset ds = GenerateSynthetic(cfg);
  Workload w;
  w.keys = std::move(ds.keys);
  ds.graph.ForEachTriple(
      [&](const Triple& t) { w.all_triples.push_back(t); });
  w.graph = std::move(ds.graph);
  return w;
}

std::vector<std::pair<NodeId, NodeId>> FromScratch(const Graph& g,
                                                   const KeySet& keys,
                                                   Algorithm algo) {
  auto plan = Matcher::Compile(g, keys, PlanOptions::For(algo, 2));
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  auto r = Matcher(algo).processors(2).Run(*plan);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r->pairs;
}

/// Drives one delta stream for one algorithm: starting graph = the full
/// graph minus `held_out`; each chunk re-adds some held-out triples
/// and/or removes some present ones. After every chunk the patched chain
/// must agree byte-for-byte with a from-scratch compile + run. In
/// kForceSeed mode, additionally asserts every chunk really ran seeded
/// (EmStats::rematch_fallback stays 0 — no full-run fallback taken).
void RunStream(uint64_t seed, Algorithm algo, size_t hold_out,
               size_t chunks, size_t removals_per_chunk,
               RematchOptions::Mode mode = RematchOptions::Mode::kAuto) {
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " algo=" + AlgorithmName(algo) +
               " hold_out=" + std::to_string(hold_out) +
               " removals=" + std::to_string(removals_per_chunk));
  Workload w = MakeWorkload(seed);
  Rng rng(seed * 7919 + 13);

  std::vector<uint8_t> keep(w.all_triples.size(), 1);
  std::vector<size_t> held;
  while (held.size() < hold_out) {
    size_t pick = rng.Below(w.all_triples.size());
    if (keep[pick]) {
      keep[pick] = 0;
      held.push_back(pick);
    }
  }
  Graph g = RebuildWithout(w.graph, w.all_triples, keep);

  auto plan_or = Matcher::Compile(g, w.keys, PlanOptions::For(algo, 2));
  ASSERT_TRUE(plan_or.ok()) << plan_or.status().ToString();
  MatchPlan plan = *plan_or;
  Matcher matcher(algo);
  matcher.processors(2).rematch_mode(mode);
  auto result_or = matcher.Run(plan);
  ASSERT_TRUE(result_or.ok()) << result_or.status().ToString();
  MatchResult result = *std::move(result_or);
  ASSERT_EQ(result.pairs, FromScratch(g, w.keys, algo)) << "base run";

  // Current triple membership, for sampling removals.
  std::vector<Triple> present;
  for (size_t i = 0; i < w.all_triples.size(); ++i) {
    if (keep[i]) present.push_back(w.all_triples[i]);
  }

  size_t next_held = 0;
  for (size_t chunk = 0; chunk < chunks; ++chunk) {
    SCOPED_TRACE("chunk=" + std::to_string(chunk));
    GraphDelta delta(g);
    size_t additions = held.size() / chunks + 1;
    for (size_t i = 0; i < additions && next_held < held.size();
         ++i, ++next_held) {
      const Triple& t = w.all_triples[held[next_held]];
      ASSERT_TRUE(delta
                      .AddTriple(t.subject,
                                 w.graph.interner().Resolve(t.pred),
                                 t.object)
                      .ok());
      present.push_back(t);
    }
    for (size_t i = 0; i < removals_per_chunk && !present.empty(); ++i) {
      size_t pick = rng.Below(present.size());
      const Triple t = present[pick];
      ASSERT_TRUE(delta
                      .RemoveTriple(t.subject,
                                    w.graph.interner().Resolve(t.pred),
                                    t.object)
                      .ok());
      present.erase(present.begin() + pick);
    }
    if (delta.empty()) continue;

    auto dirty = g.Apply(delta);
    ASSERT_TRUE(dirty.ok()) << dirty.status().ToString();
    auto patched = plan.Patch(delta);
    ASSERT_TRUE(patched.ok()) << patched.status().ToString();
    auto rematched = matcher.Rematch(*patched, result, delta);
    ASSERT_TRUE(rematched.ok()) << rematched.status().ToString();
    if (mode == RematchOptions::Mode::kForceSeed) {
      EXPECT_EQ(rematched->stats.rematch_fallback, 0u);
      EXPECT_EQ(rematched->stats.rematch_seeded, 1u);
    }
    plan = *std::move(patched);
    result = *std::move(rematched);

    ASSERT_EQ(result.pairs, FromScratch(g, w.keys, algo));
  }
}

TEST(Rematch, AdditiveStreamsMatchFromScratchAllAlgorithms) {
  // Delta sizes: small chunks (4 triples ≈ 0.5% of edges) and large ones
  // (15 triples ≈ 2%), per seed, per algorithm.
  for (Algorithm algo : AllAlgorithms()) {
    for (uint64_t seed : {1u, 2u}) {
      RunStream(seed, algo, /*hold_out=*/12, /*chunks=*/3,
                /*removals_per_chunk=*/0);
      RunStream(seed, algo, /*hold_out=*/30, /*chunks=*/2,
                /*removals_per_chunk=*/0);
    }
  }
}

TEST(Rematch, DeletionHeavyStreamsMatchFromScratchAllAlgorithms) {
  for (Algorithm algo : AllAlgorithms()) {
    RunStream(/*seed=*/3, algo, /*hold_out=*/0, /*chunks=*/3,
              /*removals_per_chunk=*/10);
  }
}

TEST(Rematch, MixedStreamsMatchFromScratchAllAlgorithms) {
  for (Algorithm algo : AllAlgorithms()) {
    RunStream(/*seed=*/4, algo, /*hold_out=*/9, /*chunks=*/3,
              /*removals_per_chunk=*/4);
  }
}

TEST(Rematch, RemovalOnlyStreamsRunSeededAllAlgorithms) {
  // kForceSeed pins the provenance-retraction path: every chunk must run
  // seeded (no full-run fallback, asserted inside RunStream via the
  // rematch_fallback counter) and still be byte-identical to from-scratch.
  for (Algorithm algo : AllAlgorithms()) {
    for (uint64_t seed : {7u, 8u}) {
      RunStream(seed, algo, /*hold_out=*/0, /*chunks=*/3,
                /*removals_per_chunk=*/6, RematchOptions::Mode::kForceSeed);
    }
  }
}

TEST(Rematch, RemovalHeavyStreamsRunSeededAllAlgorithms) {
  // Removal-heavy mixed streams (few re-additions, many removals) under
  // forced seeding: retraction plus the dirty re-check must stay exact
  // even when most of each delta is destructive.
  for (Algorithm algo : AllAlgorithms()) {
    RunStream(/*seed=*/9, algo, /*hold_out=*/4, /*chunks=*/3,
              /*removals_per_chunk=*/12, RematchOptions::Mode::kForceSeed);
  }
}

TEST(Rematch, ForceFullStreamsStayExact) {
  RunStream(/*seed=*/10, Algorithm::kEmOptVc, /*hold_out=*/8, /*chunks=*/2,
            /*removals_per_chunk=*/5, RematchOptions::Mode::kForceFull);
}

TEST(Rematch, DerivationClosureEqualsPairsAllAlgorithms) {
  // The provenance index every engine records must be complete: the
  // Eq-closure of the recorded derivations equals the result's pairs, and
  // replaying it against the unchanged graph retracts nothing.
  Workload w = MakeWorkload(11);
  for (Algorithm algo : AllAlgorithms()) {
    SCOPED_TRACE(AlgorithmName(algo));
    auto plan = Matcher::Compile(w.graph, w.keys, PlanOptions::For(algo, 2));
    ASSERT_TRUE(plan.ok());
    auto r = Matcher(algo).processors(2).Run(*plan);
    ASSERT_TRUE(r.ok());
    ASSERT_FALSE(r->pairs.empty()) << "workload too boring";
    EXPECT_FALSE(r->derivations.empty());
    RetractionResult retr =
        RetractDerivations(w.graph, r->derivations);
    EXPECT_EQ(retr.retracted, 0u);
    EXPECT_EQ(retr.seed_pairs, r->pairs);
    for (const Derivation& d : r->derivations) {
      EXPECT_LT(d.e1, d.e2);
      EXPECT_GE(d.key, 0);
      EXPECT_FALSE(d.triples.empty());
    }
  }
}

TEST(Rematch, RemovalWithoutProvenanceAutoFallsBackAndStaysExact) {
  // A previous result stripped of its derivations cannot seed a removal:
  // kAuto must run the patched plan in full (rematch_fallback == 1) and
  // the result must still match from-scratch.
  Workload w = MakeWorkload(12);
  Graph& g = w.graph;
  Algorithm algo = Algorithm::kEmOptVc;
  auto plan = Matcher::Compile(g, w.keys, PlanOptions::For(algo, 1));
  ASSERT_TRUE(plan.ok());
  Matcher matcher(algo);
  auto prev = matcher.Run(*plan);
  ASSERT_TRUE(prev.ok());
  ASSERT_FALSE(prev->pairs.empty());
  prev->derivations.clear();  // simulate record_provenance(false)

  Triple victim;
  bool have = false;
  g.ForEachTriple([&](const Triple& t) {
    if (!have) {
      victim = t;
      have = true;
    }
  });
  ASSERT_TRUE(have);
  GraphDelta delta(g);
  ASSERT_TRUE(delta
                  .RemoveTriple(victim.subject,
                                g.interner().Resolve(victim.pred),
                                victim.object)
                  .ok());
  ASSERT_TRUE(g.Apply(delta).ok());
  auto patched = plan->Patch(delta);
  ASSERT_TRUE(patched.ok());

  auto rematched = matcher.Rematch(*patched, *prev, delta);
  ASSERT_TRUE(rematched.ok());
  EXPECT_EQ(rematched->stats.rematch_fallback, 1u);
  EXPECT_EQ(rematched->stats.rematch_seeded, 0u);
  EXPECT_EQ(rematched->pairs, FromScratch(g, w.keys, algo));

  // Forced seeding without provenance is the degenerate seed (empty
  // retained fixpoint, every previously-equal candidate re-checked) —
  // slower, but still exact.
  auto forced = matcher.rematch_mode(RematchOptions::Mode::kForceSeed)
                    .Rematch(*patched, *prev, delta);
  ASSERT_TRUE(forced.ok());
  EXPECT_EQ(forced->stats.rematch_seeded, 1u);
  EXPECT_EQ(forced->pairs, rematched->pairs);
}

TEST(Rematch, AutoSeedsSmallDeltasAndReportsRetractions) {
  // A delta removing one triple out of hundreds leaves a small affected
  // region: the kAuto cost model must choose the seeded path, and the
  // retraction counter must reflect the over-deleted derivations.
  Workload w = MakeWorkload(13);
  Graph& g = w.graph;
  Algorithm algo = Algorithm::kEmOptVc;
  auto plan = Matcher::Compile(g, w.keys, PlanOptions::For(algo, 1));
  ASSERT_TRUE(plan.ok());
  Matcher matcher(algo);
  auto prev = matcher.Run(*plan);
  ASSERT_TRUE(prev.ok());
  ASSERT_FALSE(prev->derivations.empty());

  // Remove one triple some derivation's witness realized, so at least
  // one retraction provably happens.
  WitnessTriple victim = prev->derivations.front().triples.front();
  GraphDelta delta(g);
  ASSERT_TRUE(delta
                  .RemoveTriple(victim.s, g.interner().Resolve(victim.p),
                                victim.o)
                  .ok());
  ASSERT_TRUE(g.Apply(delta).ok());
  auto patched = plan->Patch(delta);
  ASSERT_TRUE(patched.ok());
  EXPECT_LT(patched->dirty_fraction(), 0.5);

  auto rematched = matcher.Rematch(*patched, *prev, delta);
  ASSERT_TRUE(rematched.ok());
  EXPECT_EQ(rematched->stats.rematch_seeded, 1u);
  EXPECT_EQ(rematched->stats.rematch_fallback, 0u);
  EXPECT_GE(rematched->stats.derivations_retracted, 1u);
  EXPECT_EQ(rematched->pairs, FromScratch(g, w.keys, algo));
}

TEST(Rematch, NewEntitiesArriveViaDeltaAndGetIdentified) {
  // G1 without alb2/art2: no duplicates yet. The delta then introduces
  // alb2 + art2 with their edges — the patched plan must find the same
  // pairs a from-scratch compile does (exercises new-node staging, new
  // keyed entities, and new candidate enumeration).
  testing::MusicGraph m = testing::MakeG1();
  std::vector<Triple> triples;
  m.g.ForEachTriple([&](const Triple& t) { triples.push_back(t); });
  std::vector<uint8_t> keep(triples.size(), 1);
  // Drop every triple touching alb2 or art2 — then rebuild WITHOUT those
  // nodes at the tail (they are isolated, but ids must stay dense for the
  // rebuild, so keep the nodes and only drop their edges).
  for (size_t i = 0; i < triples.size(); ++i) {
    if (triples[i].subject == m.alb2 || triples[i].object == m.alb2 ||
        triples[i].subject == m.art2 || triples[i].object == m.art2) {
      keep[i] = 0;
    }
  }
  KeySet keys = testing::MakeSigma1();

  for (Algorithm algo : AllAlgorithms()) {
    SCOPED_TRACE(AlgorithmName(algo));
    Matcher matcher(algo);
    // Patch requires the delta applied to the SAME graph object the plan
    // references, so every algorithm gets its own live graph.
    Graph live = RebuildWithout(m.g, triples, keep);
    auto live_plan = Matcher::Compile(live, keys, PlanOptions::For(algo, 1));
    ASSERT_TRUE(live_plan.ok());
    auto live_base = matcher.Run(*live_plan);
    ASSERT_TRUE(live_base.ok());
    EXPECT_TRUE(live_base->pairs.empty());
    GraphDelta live_delta(live);
    for (size_t i = 0; i < triples.size(); ++i) {
      if (keep[i]) continue;
      ASSERT_TRUE(live_delta
                      .AddTriple(triples[i].subject,
                                 m.g.interner().Resolve(triples[i].pred),
                                 triples[i].object)
                      .ok());
    }
    ASSERT_TRUE(live.Apply(live_delta).ok());
    auto patched = live_plan->Patch(live_delta);
    ASSERT_TRUE(patched.ok()) << patched.status().ToString();
    auto rematched = matcher.Rematch(*patched, *live_base, live_delta);
    ASSERT_TRUE(rematched.ok()) << rematched.status().ToString();
    EXPECT_EQ(rematched->pairs, FromScratch(live, keys, algo));
    EXPECT_FALSE(rematched->pairs.empty());
  }
}

TEST(Rematch, StreamingSinkSeesExactlyTheDelta) {
  Workload w = MakeWorkload(5);
  Rng rng(99);
  std::vector<uint8_t> keep(w.all_triples.size(), 1);
  std::vector<size_t> held;
  while (held.size() < 10) {
    size_t pick = rng.Below(w.all_triples.size());
    if (keep[pick]) {
      keep[pick] = 0;
      held.push_back(pick);
    }
  }
  Graph g = RebuildWithout(w.graph, w.all_triples, keep);
  Algorithm algo = Algorithm::kEmOptVc;
  auto plan = Matcher::Compile(g, w.keys, PlanOptions::For(algo, 2));
  ASSERT_TRUE(plan.ok());
  Matcher matcher(algo);
  // Force the seeded path: the exactly-the-delta stream contract is what
  // this test pins (a kAuto fallback would legitimately restart it).
  matcher.processors(2).rematch_mode(RematchOptions::Mode::kForceSeed);
  auto base = matcher.Run(*plan);
  ASSERT_TRUE(base.ok());

  GraphDelta delta(g);
  for (size_t idx : held) {
    const Triple& t = w.all_triples[idx];
    ASSERT_TRUE(delta
                    .AddTriple(t.subject,
                               w.graph.interner().Resolve(t.pred), t.object)
                    .ok());
  }
  ASSERT_TRUE(g.Apply(delta).ok());
  auto patched = plan->Patch(delta);
  ASSERT_TRUE(patched.ok());

  class Collect : public MatchSink {
   public:
    void OnPair(NodeId a, NodeId b) override { pairs.emplace_back(a, b); }
    std::vector<std::pair<NodeId, NodeId>> pairs;
  };
  Collect sink;
  auto rematched = matcher.Rematch(*patched, *base, delta, sink);
  ASSERT_TRUE(rematched.ok()) << rematched.status().ToString();

  // The sink got exactly result-minus-prev, each pair once.
  std::unordered_set<uint64_t> prev_set;
  for (const auto& [a, b] : base->pairs) {
    prev_set.insert((static_cast<uint64_t>(a) << 32) | b);
  }
  std::vector<std::pair<NodeId, NodeId>> expected;
  for (const auto& [a, b] : rematched->pairs) {
    if (prev_set.count((static_cast<uint64_t>(a) << 32) | b) == 0) {
      expected.emplace_back(a, b);
    }
  }
  std::sort(sink.pairs.begin(), sink.pairs.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(sink.pairs, expected);
  EXPECT_GT(rematched->pairs.size(), base->pairs.size())
      << "the held-out triples were chosen too boringly";
}

TEST(Rematch, AutoNeverFallsBackUnderAStreamingSink) {
  // A kAuto fallback restarts the pair stream (every previously emitted
  // pair again), so with a sink present the cost model must keep
  // seeding even when the delta dirties most of the plan.
  Workload w = MakeWorkload(5);
  std::vector<uint8_t> keep(w.all_triples.size(), 1);
  // Hold out a third of all edges — far past the kAuto thresholds.
  Rng rng(7);
  size_t hold = w.all_triples.size() / 3;
  for (size_t chosen = 0; chosen < hold;) {
    size_t pick = rng.Below(w.all_triples.size());
    if (keep[pick]) {
      keep[pick] = 0;
      ++chosen;
    }
  }
  Graph g = RebuildWithout(w.graph, w.all_triples, keep);
  Algorithm algo = Algorithm::kEmOptVc;
  auto plan = Matcher::Compile(g, w.keys, PlanOptions::For(algo, 1));
  ASSERT_TRUE(plan.ok());
  Matcher matcher(algo);  // default kAuto
  auto base = matcher.Run(*plan);
  ASSERT_TRUE(base.ok());
  GraphDelta delta(g);
  for (size_t i = 0; i < w.all_triples.size(); ++i) {
    if (keep[i]) continue;
    const Triple& t = w.all_triples[i];
    ASSERT_TRUE(delta
                    .AddTriple(t.subject,
                               w.graph.interner().Resolve(t.pred), t.object)
                    .ok());
  }
  ASSERT_TRUE(g.Apply(delta).ok());
  auto patched = plan->Patch(delta);
  ASSERT_TRUE(patched.ok());
  ASSERT_GT(patched->dirty_fraction(), 0.5) << "delta too small to test";

  MatchSink sink;  // inert default sink — presence is what matters
  auto streamed = matcher.Rematch(*patched, *base, delta, sink);
  ASSERT_TRUE(streamed.ok());
  EXPECT_EQ(streamed->stats.rematch_fallback, 0u);
  EXPECT_EQ(streamed->stats.rematch_seeded, 1u);

  // Without the sink the same rematch falls back (the model's call).
  auto plain = matcher.Rematch(*patched, *base, delta);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->stats.rematch_fallback, 1u);
  EXPECT_EQ(plain->pairs, streamed->pairs);
}

TEST(Rematch, PatchBeforeApplyIsFailedPrecondition) {
  testing::MusicGraph m = testing::MakeG1();
  KeySet keys = testing::MakeSigma1();
  auto plan = Matcher::Compile(m.g, keys);
  ASSERT_TRUE(plan.ok());
  GraphDelta delta(m.g);
  NodeId e = delta.AddEntity("album");
  (void)e;
  auto patched = plan->Patch(delta);
  ASSERT_FALSE(patched.ok());
  EXPECT_EQ(patched.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Rematch, PatchedPlanRecordsDirtyCandidatesAndReuse) {
  Workload w = MakeWorkload(6);
  Graph& g = w.graph;  // full graph, already finalized
  auto plan = Matcher::Compile(g, w.keys,
                               PlanOptions::For(Algorithm::kEmOptVc, 2));
  ASSERT_TRUE(plan.ok());
  size_t before = plan->context().candidates().size();

  // A delta touching one entity: one fresh attribute value.
  NodeId victim = kNoNode;
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    if (g.IsEntity(n)) {
      victim = n;
      break;
    }
  }
  ASSERT_NE(victim, kNoNode);
  GraphDelta delta(g);
  NodeId v = delta.AddValue("a brand new value, unseen anywhere");
  ASSERT_TRUE(delta.AddTriple(victim, "freshly_minted_pred", v).ok());
  ASSERT_TRUE(g.Apply(delta).ok());
  auto patched = plan->Patch(delta);
  ASSERT_TRUE(patched.ok()) << patched.status().ToString();
  EXPECT_TRUE(patched->patched());
  EXPECT_FALSE(plan->patched());
  // A one-entity delta dirties at most the candidates touching its
  // d-ball — far fewer than |L|.
  EXPECT_LT(patched->dirty_candidates().size(), before);
}

}  // namespace
}  // namespace gkeys
