// Graph-layer tests for the incremental mutation path: GraphDelta
// staging, Graph::Apply, per-node thaw (overlay) semantics, and the
// merge-based re-Finalize that replaces the old whole-graph Thaw().

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/delta.h"
#include "graph/graph.h"
#include "io/triples.h"

namespace gkeys {
namespace {

TEST(GraphDelta, StagedIdsMatchApply) {
  Graph g;
  NodeId a = g.AddEntity("person");
  NodeId name = g.AddValue("alice");
  ASSERT_TRUE(g.AddTriple(a, "name", name).ok());
  g.Finalize();

  GraphDelta delta(g);
  NodeId b = delta.AddEntity("person");
  EXPECT_EQ(b, g.NumNodes());  // next id the graph will assign
  NodeId alice = delta.AddValue("alice");
  EXPECT_EQ(alice, name);  // dedups against the base graph
  NodeId bob = delta.AddValue("bob");
  EXPECT_EQ(bob, g.NumNodes() + 1);
  EXPECT_EQ(delta.AddValue("bob"), bob);  // and against staged values
  ASSERT_TRUE(delta.AddTriple(b, "name", alice).ok());
  ASSERT_TRUE(delta.AddTriple(b, "nick", bob).ok());

  auto dirty = g.Apply(delta);
  ASSERT_TRUE(dirty.ok());
  EXPECT_TRUE(g.finalized());
  EXPECT_TRUE(g.IsEntity(b));
  EXPECT_EQ(g.entity_type(b), g.interner().Lookup("person"));
  EXPECT_TRUE(g.IsValue(bob));
  EXPECT_EQ(g.value_str(bob), "bob");
  EXPECT_TRUE(g.HasTriple(b, g.interner().Lookup("name"), alice));
  EXPECT_TRUE(g.HasTriple(b, g.interner().Lookup("nick"), bob));
  // Dirty set: the new nodes plus every touched endpoint.
  std::vector<NodeId> expect = {name, b, bob};
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(*dirty, expect);
}

TEST(GraphDelta, ApplyRejectsStaleDelta) {
  Graph g;
  NodeId a = g.AddEntity("t");
  (void)a;
  g.Finalize();
  GraphDelta delta(g);
  NodeId b = delta.AddEntity("t");
  (void)b;
  ASSERT_TRUE(g.Apply(delta).ok());
  // The graph grew; the same delta no longer lines up.
  auto again = g.Apply(delta);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphDelta, RemovingAMissingTripleIsNotFound) {
  Graph g;
  NodeId a = g.AddEntity("t");
  NodeId v = g.AddValue("x");
  ASSERT_TRUE(g.AddTriple(a, "p", v).ok());
  g.Finalize();
  GraphDelta delta(g);
  ASSERT_TRUE(delta.RemoveTriple(a, "q", v).ok());  // staged fine...
  auto r = g.Apply(delta);                          // ...rejected on apply
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(GraphDelta, StagingValidatesNodeIds) {
  Graph g;
  NodeId a = g.AddEntity("t");
  NodeId v = g.AddValue("x");
  g.Finalize();
  GraphDelta delta(g);
  EXPECT_EQ(delta.AddTriple(999, "p", v).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(delta.AddTriple(v, "p", a).code(),
            StatusCode::kInvalidArgument);  // value subject
  EXPECT_EQ(delta.RemoveTriple(a, "p", 999).code(),
            StatusCode::kInvalidArgument);
}

TEST(CsrGraph, PerNodeThawServesOverlayAndCsrSideBySide) {
  Graph g;
  NodeId a = g.AddEntity("t");
  NodeId b = g.AddEntity("t");
  NodeId v = g.AddValue("x");
  ASSERT_TRUE(g.AddTriple(a, "p", v).ok());
  ASSERT_TRUE(g.AddTriple(b, "p", v).ok());
  g.Finalize();

  // Mutate only a: b keeps serving from the CSR, a from its overlay.
  NodeId w = g.AddValue("y");
  ASSERT_TRUE(g.AddTriple(a, "q", w).ok());
  EXPECT_FALSE(g.finalized());
  EXPECT_EQ(g.Out(a).size(), 2u);
  EXPECT_EQ(g.Out(b).size(), 1u);
  EXPECT_TRUE(g.HasTriple(a, g.interner().Lookup("q"), w));
  std::vector<NodeId> dirty = g.DirtyNodes();
  EXPECT_TRUE(std::binary_search(dirty.begin(), dirty.end(), a));
  EXPECT_FALSE(std::binary_search(dirty.begin(), dirty.end(), b));

  g.Finalize();
  EXPECT_TRUE(g.finalized());
  EXPECT_TRUE(g.DirtyNodes().empty());
  EXPECT_EQ(g.NumTriples(), 3u);
}

TEST(CsrGraph, RemoveTripleSubtractsEveryDuplicateCopy) {
  Graph g;
  NodeId a = g.AddEntity("t");
  NodeId v = g.AddValue("x");
  ASSERT_TRUE(g.AddTriple(a, "p", v).ok());
  ASSERT_TRUE(g.AddTriple(a, "p", v).ok());  // duplicate, pre-Finalize
  EXPECT_EQ(g.NumTriples(), 2u);
  ASSERT_TRUE(g.RemoveTriple(a, "p", v).ok());
  EXPECT_EQ(g.NumTriples(), 0u);  // both copies gone, count agrees
  EXPECT_FALSE(g.HasTriple(a, g.interner().Lookup("p"), v));
  g.Finalize();
  EXPECT_EQ(g.NumTriples(), 0u);
}

TEST(CsrGraph, RemoveTripleWorksInBothRepresentations) {
  for (bool finalize_first : {false, true}) {
    Graph g;
    NodeId a = g.AddEntity("t");
    NodeId v = g.AddValue("x");
    NodeId w = g.AddValue("y");
    ASSERT_TRUE(g.AddTriple(a, "p", v).ok());
    ASSERT_TRUE(g.AddTriple(a, "p", w).ok());
    if (finalize_first) g.Finalize();
    ASSERT_TRUE(g.RemoveTriple(a, "p", v).ok());
    EXPECT_FALSE(g.HasTriple(a, g.interner().Lookup("p"), v));
    EXPECT_TRUE(g.HasTriple(a, g.interner().Lookup("p"), w));
    g.Finalize();
    EXPECT_EQ(g.NumTriples(), 1u);
    EXPECT_EQ(g.In(v).size(), 0u);
    EXPECT_EQ(g.In(w).size(), 1u);
  }
}

/// Property: a finalized graph that suffers random post-finalize
/// mutations and re-finalizes (the merge path) is indistinguishable from
/// a graph built from scratch with the same final triple set.
TEST(CsrGraph, MergeRefinalizeEqualsFromScratchBuild) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    Graph g;
    const int n_entities = 30;
    const int n_values = 10;
    std::vector<NodeId> nodes;
    for (int i = 0; i < n_entities; ++i) {
      nodes.push_back(g.AddEntity("t" + std::to_string(i % 3)));
    }
    for (int i = 0; i < n_values; ++i) {
      nodes.push_back(g.AddValue("v" + std::to_string(i)));
    }
    // Pre-intern predicates in a fixed order so symbol ids line up with
    // the from-scratch graph built below (Edge compares by Symbol).
    for (int p = 0; p < 5; ++p) (void)g.Intern("p" + std::to_string(p));
    auto random_triple = [&]() {
      NodeId s = nodes[rng.Below(n_entities)];
      NodeId o = nodes[rng.Below(nodes.size())];
      return std::pair<NodeId, NodeId>(s, o);
    };
    std::set<std::tuple<NodeId, int, NodeId>> triples;
    for (int i = 0; i < 120; ++i) {
      auto [s, o] = random_triple();
      int p = static_cast<int>(rng.Below(5));
      triples.emplace(s, p, o);
      ASSERT_TRUE(g.AddTriple(s, "p" + std::to_string(p), o).ok());
    }
    g.Finalize();

    // Random mutation burst: some removals of existing triples, some
    // additions (possibly duplicating existing ones — dedup applies).
    std::vector<std::tuple<NodeId, int, NodeId>> current(triples.begin(),
                                                         triples.end());
    for (int i = 0; i < 20 && !current.empty(); ++i) {
      size_t pick = rng.Below(current.size());
      auto [s, p, o] = current[pick];
      ASSERT_TRUE(g.RemoveTriple(s, "p" + std::to_string(p), o).ok());
      triples.erase({s, p, o});
      current.erase(current.begin() + pick);
    }
    for (int i = 0; i < 30; ++i) {
      auto [s, o] = random_triple();
      int p = static_cast<int>(rng.Below(5));
      triples.emplace(s, p, o);
      ASSERT_TRUE(g.AddTriple(s, "p" + std::to_string(p), o).ok());
    }
    g.Finalize();

    Graph fresh;
    for (int i = 0; i < n_entities; ++i) {
      fresh.AddEntity("t" + std::to_string(i % 3));
    }
    for (int i = 0; i < n_values; ++i) {
      fresh.AddValue("v" + std::to_string(i));
    }
    for (int p = 0; p < 5; ++p) (void)fresh.Intern("p" + std::to_string(p));
    for (const auto& [s, p, o] : triples) {
      ASSERT_TRUE(fresh.AddTriple(s, "p" + std::to_string(p), o).ok());
    }
    fresh.Finalize();

    ASSERT_EQ(g.NumTriples(), fresh.NumTriples()) << "seed " << seed;
    for (NodeId node = 0; node < g.NumNodes(); ++node) {
      auto out_g = g.Out(node);
      auto out_f = fresh.Out(node);
      ASSERT_EQ(std::vector<Edge>(out_g.begin(), out_g.end()),
                std::vector<Edge>(out_f.begin(), out_f.end()))
          << "seed " << seed << " node " << node;
      auto in_g = g.In(node);
      auto in_f = fresh.In(node);
      ASSERT_EQ(std::vector<Edge>(in_g.begin(), in_g.end()),
                std::vector<Edge>(in_f.begin(), in_f.end()))
          << "seed " << seed << " node " << node;
    }
  }
}

TEST(ParseDelta, ResolvesTokensByIdentityAndStagesNewEntities) {
  auto loaded = DeserializeGraphWithNames(
      "ent:person:0 name val:\"alice\"\n"
      "ent:person:1 name val:\"alice\"\n");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  Graph& g = loaded->graph;
  NodeId p0 = loaded->entities.at("ent:person:0");
  NodeId p1 = loaded->entities.at("ent:person:1");
  NodeId alice = g.FindValue("alice");

  auto delta = ParseDelta(
      "# a comment\n"
      "\n"
      "+ ent:person:2 name val:\"alice\"\n"      // unseen token: new entity
      "+ ent:person:2 knows ent:person:0\n"      // referenced again
      "- ent:person:1 name val:\"alice\"\n",
      *loaded);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_EQ(delta->num_added_triples(), 2u);
  EXPECT_EQ(delta->num_removed_triples(), 1u);
  EXPECT_EQ(delta->num_new_nodes(), 1u);  // person:2 staged once

  auto dirty = g.Apply(*delta);
  ASSERT_TRUE(dirty.ok()) << dirty.status().ToString();
  NodeId p2 = g.NumNodes() - 1;
  EXPECT_TRUE(g.IsEntity(p2));
  EXPECT_TRUE(g.HasTriple(p2, g.interner().Lookup("name"), alice));
  EXPECT_TRUE(g.HasTriple(p2, g.interner().Lookup("knows"), p0));
  EXPECT_FALSE(g.HasTriple(p1, g.interner().Lookup("name"), alice));
}

TEST(ParseDelta, TokensBindLikeTheGraphFileNotByNodeIdRank) {
  // The file mentions person:1 BEFORE person:0, so NodeId order disagrees
  // with the labels. A delta addressed to ent:person:0 must land on the
  // entity the FILE calls person:0 (the object of the first line).
  auto loaded = DeserializeGraphWithNames(
      "ent:person:1 knows ent:person:0\n"
      "ent:person:0 name val:\"zero\"\n");
  ASSERT_TRUE(loaded.ok());
  NodeId file_p0 = loaded->entities.at("ent:person:0");
  auto delta = ParseDelta("+ ent:person:0 age val:\"30\"\n", *loaded);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  Graph& g = loaded->graph;
  ASSERT_TRUE(g.Apply(*delta).ok());
  EXPECT_TRUE(
      g.HasTriple(file_p0, g.interner().Lookup("age"), g.FindValue("30")));
}

TEST(ParseDelta, NonNumericEntityIdsWork) {
  auto loaded =
      DeserializeGraphWithNames("ent:person:alice knows ent:person:bob\n");
  ASSERT_TRUE(loaded.ok());
  auto delta = ParseDelta(
      "+ ent:person:alice nick val:\"al\"\n"
      "+ ent:person:carol knows ent:person:alice\n",
      *loaded);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_EQ(delta->num_new_nodes(), 2u);  // "al" value + carol
}

TEST(ParseDelta, MalformedLinesAreInvalidArgumentWithLineNumber) {
  auto loaded = DeserializeGraphWithNames("ent:t:0 p val:\"x\"\n");
  ASSERT_TRUE(loaded.ok());

  struct Case {
    const char* text;
    const char* needle;
  };
  const Case cases[] = {
      {"+ ent:t:0 p val:\"x\"\nbogus line\n", "line 2"},
      {"* ent:t:0 p val:\"x\"\n", "line 1"},
      {"+ ent:t:0 p\n", "line 1"},                       // 2 fields
      {"+ zzz:t:0 p val:\"x\"\n", "ent: or val:"},
      {"+ ent:t: p val:\"x\"\n", "type and an id"},      // empty id
      {"+ ent:t:0 p val:\"x\n", "malformed value"},      // unterminated
      {"- ent:t:0 p val:\"nope\"\n", "unknown value"},
      {"- ent:t:9 p val:\"x\"\n", "unknown entity"},
      {"+ val:\"x\" p ent:t:0\n", "subject must be an entity"},
  };
  for (const Case& c : cases) {
    auto delta = ParseDelta(c.text, *loaded);
    ASSERT_FALSE(delta.ok()) << c.text;
    EXPECT_EQ(delta.status().code(), StatusCode::kInvalidArgument) << c.text;
    EXPECT_NE(delta.status().message().find(c.needle), std::string::npos)
        << "message '" << delta.status().message() << "' should mention '"
        << c.needle << "'";
  }
}

}  // namespace
}  // namespace gkeys
