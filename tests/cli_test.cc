// End-to-end regression tests for the `gkeys` CLI, driving the real
// binary (path injected by CMake as GKEYS_CLI_BINARY) through popen.
// Covers the save/load persistence commands — a snapshot written by one
// process must resume correctly in another — and the empty-delta no-op
// short-circuit on both the match and load paths.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#ifndef GKEYS_CLI_BINARY
#error "cli_test requires GKEYS_CLI_BINARY (set by CMakeLists.txt)"
#endif

namespace {

struct RunOutput {
  int exit_code;
  std::string text;  // stdout + stderr, interleaved
};

RunOutput RunCli(const std::string& args) {
  std::string cmd = std::string(GKEYS_CLI_BINARY) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  RunOutput out{-1, {}};
  if (!pipe) return out;
  char buf[4096];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) {
    out.text.append(buf, n);
  }
  int status = pclose(pipe);
  out.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return out;
}

std::string TempFile(const std::string& name, const std::string& content) {
  std::string path = ::testing::TempDir() + "gkeys_cli_" + name;
  std::ofstream out(path, std::ios::trunc);
  out << content;
  EXPECT_TRUE(out.good()) << path;
  return path;
}

/// Extracts the last `pairs=N` figure printed by a command.
int LastPairs(const std::string& text) {
  size_t pos = text.rfind("pairs=");
  if (pos == std::string::npos) return -1;
  return std::atoi(text.c_str() + pos + 6);
}

// The paper's Fig. 2 company fragment (G2) with Σ2 = {Q4, Q5}: matching
// yields 2 pairs; the delta adds c6 (named "AT&T", children of c2 and
// c3), which creates 2 more.
constexpr char kCompanyTriples[] =
    "ent:company:c0 name_of val:\"AT&T\"\n"
    "ent:company:c1 name_of val:\"AT&T\"\n"
    "ent:company:c2 name_of val:\"AT&T\"\n"
    "ent:company:c4 name_of val:\"AT&T\"\n"
    "ent:company:c5 name_of val:\"AT&T\"\n"
    "ent:company:c3 name_of val:\"SBC\"\n"
    "ent:company:c0 parent_of ent:company:c1\n"
    "ent:company:c0 parent_of ent:company:c2\n"
    "ent:company:c0 parent_of ent:company:c3\n"
    "ent:company:c1 parent_of ent:company:c4\n"
    "ent:company:c2 parent_of ent:company:c5\n"
    "ent:company:c3 parent_of ent:company:c4\n"
    "ent:company:c3 parent_of ent:company:c5\n";

constexpr char kCompanyKeys[] =
    "key Q4 for company {\n"
    "  x -[name_of]-> n*\n"
    "  _p:company -[name_of]-> n*\n"
    "  _p -[parent_of]-> x\n"
    "  y:company -[parent_of]-> x\n"
    "}\n"
    "key Q5 for company {\n"
    "  x -[name_of]-> n*\n"
    "  _p:company -[name_of]-> n*\n"
    "  _p -[parent_of]-> x\n"
    "  _p -[parent_of]-> y:company\n"
    "}\n";

constexpr char kCompanyDelta[] =
    "+ ent:company:c6 name_of val:\"AT&T\"\n"
    "+ ent:company:c2 parent_of ent:company:c6\n"
    "+ ent:company:c3 parent_of ent:company:c6\n";

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = TempFile("g.triples", kCompanyTriples);
    keys_ = TempFile("keys.dsl", kCompanyKeys);
    delta_ = TempFile("delta.triples", kCompanyDelta);
    empty_ = TempFile("empty.triples", "# nothing here\n\n");
  }

  std::string graph_, keys_, delta_, empty_;
};

TEST_F(CliTest, MatchFindsPaperPairs) {
  RunOutput out = RunCli("match " + graph_ + " " + keys_);
  EXPECT_EQ(out.exit_code, 0) << out.text;
  EXPECT_EQ(LastPairs(out.text), 2) << out.text;
}

TEST_F(CliTest, MatchWithDeltaRematches) {
  RunOutput out = RunCli("match " + graph_ + " " + keys_ + " --delta=" + delta_);
  EXPECT_EQ(out.exit_code, 0) << out.text;
  EXPECT_EQ(LastPairs(out.text), 4) << out.text;
}

TEST_F(CliTest, MatchWithEmptyDeltaIsNoOp) {
  RunOutput out = RunCli("match " + graph_ + " " + keys_ + " --delta=" + empty_);
  EXPECT_EQ(out.exit_code, 0) << out.text;
  EXPECT_NE(out.text.find("is empty: no-op"), std::string::npos) << out.text;
  EXPECT_EQ(LastPairs(out.text), 2) << out.text;
}

TEST_F(CliTest, SaveLoadRoundTripInSeparateProcesses) {
  std::string snap = ::testing::TempDir() + "gkeys_cli_snap.gks";
  RunOutput save = RunCli("save " + graph_ + " " + keys_ + " " + snap);
  EXPECT_EQ(save.exit_code, 0) << save.text;
  EXPECT_EQ(LastPairs(save.text), 2) << save.text;

  RunOutput load = RunCli("load " + snap);
  EXPECT_EQ(load.exit_code, 0) << load.text;
  EXPECT_EQ(LastPairs(load.text), 2) << load.text;
}

TEST_F(CliTest, LoadResumeMatchesInProcessRematch) {
  std::string snap = ::testing::TempDir() + "gkeys_cli_snap_delta.gks";
  RunOutput save = RunCli("save " + graph_ + " " + keys_ + " " + snap);
  ASSERT_EQ(save.exit_code, 0) << save.text;

  RunOutput load = RunCli("load " + snap + " --delta=" + delta_);
  EXPECT_EQ(load.exit_code, 0) << load.text;
  // Same pair count as `match --delta` computes fully in-process.
  EXPECT_EQ(LastPairs(load.text), 4) << load.text;
  EXPECT_NE(load.text.find("resumed with +3 -0 pending"), std::string::npos)
      << load.text;
}

TEST_F(CliTest, LoadWithEmptyDeltaIsNoOp) {
  std::string snap = ::testing::TempDir() + "gkeys_cli_snap_empty.gks";
  RunOutput save = RunCli("save " + graph_ + " " + keys_ + " " + snap);
  ASSERT_EQ(save.exit_code, 0) << save.text;

  RunOutput load = RunCli("load " + snap + " --delta=" + empty_);
  EXPECT_EQ(load.exit_code, 0) << load.text;
  EXPECT_NE(load.text.find("is empty: no-op"), std::string::npos)
      << load.text;
  EXPECT_EQ(LastPairs(load.text), 2) << load.text;
}

TEST_F(CliTest, LoadCorruptSnapshotFailsCleanly) {
  std::string snap = TempFile("bogus.gks", "not a snapshot at all");
  RunOutput load = RunCli("load " + snap);
  EXPECT_NE(load.exit_code, 0);
  // Status::ToString prints "ParseError: ..." / "IoError: ..." — a
  // clean diagnostic, not a crash.
  EXPECT_NE(load.text.find("Error"), std::string::npos) << load.text;
}

TEST_F(CliTest, UnknownCommandPrintsUsage) {
  RunOutput out = RunCli("frobnicate");
  EXPECT_NE(out.exit_code, 0);
  EXPECT_NE(out.text.find("usage"), std::string::npos) << out.text;
}

}  // namespace
