// End-to-end regression tests for the `gkeys` CLI, driving the real
// binary (path injected by CMake as GKEYS_CLI_BINARY) through popen.
// Covers the save/load persistence commands — a snapshot written by one
// process must resume correctly in another — and the empty-delta no-op
// short-circuit on both the match and load paths.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>

#include <gtest/gtest.h>

#ifndef GKEYS_CLI_BINARY
#error "cli_test requires GKEYS_CLI_BINARY (set by CMakeLists.txt)"
#endif

namespace {

struct RunOutput {
  int exit_code;
  std::string text;  // stdout + stderr, interleaved
};

RunOutput RunCli(const std::string& args) {
  std::string cmd = std::string(GKEYS_CLI_BINARY) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  RunOutput out{-1, {}};
  if (!pipe) return out;
  char buf[4096];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) {
    out.text.append(buf, n);
  }
  int status = pclose(pipe);
  out.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return out;
}

std::string TempFile(const std::string& name, const std::string& content) {
  std::string path = ::testing::TempDir() + "gkeys_cli_" + name;
  std::ofstream out(path, std::ios::trunc);
  out << content;
  EXPECT_TRUE(out.good()) << path;
  return path;
}

/// Extracts the last `pairs=N` figure printed by a command.
int LastPairs(const std::string& text) {
  size_t pos = text.rfind("pairs=");
  if (pos == std::string::npos) return -1;
  return std::atoi(text.c_str() + pos + 6);
}

// The paper's Fig. 2 company fragment (G2) with Σ2 = {Q4, Q5}: matching
// yields 2 pairs; the delta adds c6 (named "AT&T", children of c2 and
// c3), which creates 2 more.
constexpr char kCompanyTriples[] =
    "ent:company:c0 name_of val:\"AT&T\"\n"
    "ent:company:c1 name_of val:\"AT&T\"\n"
    "ent:company:c2 name_of val:\"AT&T\"\n"
    "ent:company:c4 name_of val:\"AT&T\"\n"
    "ent:company:c5 name_of val:\"AT&T\"\n"
    "ent:company:c3 name_of val:\"SBC\"\n"
    "ent:company:c0 parent_of ent:company:c1\n"
    "ent:company:c0 parent_of ent:company:c2\n"
    "ent:company:c0 parent_of ent:company:c3\n"
    "ent:company:c1 parent_of ent:company:c4\n"
    "ent:company:c2 parent_of ent:company:c5\n"
    "ent:company:c3 parent_of ent:company:c4\n"
    "ent:company:c3 parent_of ent:company:c5\n";

constexpr char kCompanyKeys[] =
    "key Q4 for company {\n"
    "  x -[name_of]-> n*\n"
    "  _p:company -[name_of]-> n*\n"
    "  _p -[parent_of]-> x\n"
    "  y:company -[parent_of]-> x\n"
    "}\n"
    "key Q5 for company {\n"
    "  x -[name_of]-> n*\n"
    "  _p:company -[name_of]-> n*\n"
    "  _p -[parent_of]-> x\n"
    "  _p -[parent_of]-> y:company\n"
    "}\n";

constexpr char kCompanyDelta[] =
    "+ ent:company:c6 name_of val:\"AT&T\"\n"
    "+ ent:company:c2 parent_of ent:company:c6\n"
    "+ ent:company:c3 parent_of ent:company:c6\n";

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = TempFile("g.triples", kCompanyTriples);
    keys_ = TempFile("keys.dsl", kCompanyKeys);
    delta_ = TempFile("delta.triples", kCompanyDelta);
    empty_ = TempFile("empty.triples", "# nothing here\n\n");
  }

  std::string graph_, keys_, delta_, empty_;
};

TEST_F(CliTest, MatchFindsPaperPairs) {
  RunOutput out = RunCli("match " + graph_ + " " + keys_);
  EXPECT_EQ(out.exit_code, 0) << out.text;
  EXPECT_EQ(LastPairs(out.text), 2) << out.text;
}

TEST_F(CliTest, MatchWithDeltaRematches) {
  RunOutput out = RunCli("match " + graph_ + " " + keys_ + " --delta=" + delta_);
  EXPECT_EQ(out.exit_code, 0) << out.text;
  EXPECT_EQ(LastPairs(out.text), 4) << out.text;
}

TEST_F(CliTest, MatchWithEmptyDeltaIsNoOp) {
  RunOutput out = RunCli("match " + graph_ + " " + keys_ + " --delta=" + empty_);
  EXPECT_EQ(out.exit_code, 0) << out.text;
  EXPECT_NE(out.text.find("is empty: no-op"), std::string::npos) << out.text;
  EXPECT_EQ(LastPairs(out.text), 2) << out.text;
}

TEST_F(CliTest, SaveLoadRoundTripInSeparateProcesses) {
  std::string snap = ::testing::TempDir() + "gkeys_cli_snap.gks";
  RunOutput save = RunCli("save " + graph_ + " " + keys_ + " " + snap);
  EXPECT_EQ(save.exit_code, 0) << save.text;
  EXPECT_EQ(LastPairs(save.text), 2) << save.text;

  RunOutput load = RunCli("load " + snap);
  EXPECT_EQ(load.exit_code, 0) << load.text;
  EXPECT_EQ(LastPairs(load.text), 2) << load.text;
}

TEST_F(CliTest, LoadResumeMatchesInProcessRematch) {
  std::string snap = ::testing::TempDir() + "gkeys_cli_snap_delta.gks";
  RunOutput save = RunCli("save " + graph_ + " " + keys_ + " " + snap);
  ASSERT_EQ(save.exit_code, 0) << save.text;

  RunOutput load = RunCli("load " + snap + " --delta=" + delta_);
  EXPECT_EQ(load.exit_code, 0) << load.text;
  // Same pair count as `match --delta` computes fully in-process.
  EXPECT_EQ(LastPairs(load.text), 4) << load.text;
  EXPECT_NE(load.text.find("resumed with +3 -0 pending"), std::string::npos)
      << load.text;
}

TEST_F(CliTest, LoadWithEmptyDeltaIsNoOp) {
  std::string snap = ::testing::TempDir() + "gkeys_cli_snap_empty.gks";
  RunOutput save = RunCli("save " + graph_ + " " + keys_ + " " + snap);
  ASSERT_EQ(save.exit_code, 0) << save.text;

  RunOutput load = RunCli("load " + snap + " --delta=" + empty_);
  EXPECT_EQ(load.exit_code, 0) << load.text;
  EXPECT_NE(load.text.find("is empty: no-op"), std::string::npos)
      << load.text;
  EXPECT_EQ(LastPairs(load.text), 2) << load.text;
}

TEST_F(CliTest, LoadCorruptSnapshotFailsCleanly) {
  std::string snap = TempFile("bogus.gks", "not a snapshot at all");
  RunOutput load = RunCli("load " + snap);
  EXPECT_NE(load.exit_code, 0);
  // Status::ToString prints "ParseError: ..." / "IoError: ..." — a
  // clean diagnostic, not a crash.
  EXPECT_NE(load.text.find("Error"), std::string::npos) << load.text;
}

TEST_F(CliTest, UnknownCommandPrintsUsage) {
  RunOutput out = RunCli("frobnicate");
  EXPECT_NE(out.exit_code, 0);
  EXPECT_NE(out.text.find("usage"), std::string::npos) << out.text;
}

// ---- Durable-directory flow: save --dir / ingest / recover -------------

std::string SlurpBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void SpitBinary(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "gkeys_cli_" + name;
  std::string cmd = "rm -rf '" + dir + "'";
  (void)std::system(cmd.c_str());
  return dir;
}

TEST_F(CliTest, DurableSaveIngestRecoverFlow) {
  std::string dir = FreshDir("ddir_flow");
  RunOutput save = RunCli("save " + graph_ + " " + keys_ + " --dir=" + dir);
  ASSERT_EQ(save.exit_code, 0) << save.text;
  EXPECT_NE(save.text.find("generation=1"), std::string::npos) << save.text;
  EXPECT_EQ(LastPairs(save.text), 2) << save.text;

  RunOutput ingest = RunCli("ingest " + dir + " " + delta_);
  ASSERT_EQ(ingest.exit_code, 0) << ingest.text;
  EXPECT_EQ(LastPairs(ingest.text), 4) << ingest.text;
  EXPECT_NE(ingest.text.find("wal_records=1"), std::string::npos)
      << ingest.text;

  // A separate process recovers to exactly the acknowledged state.
  RunOutput recover = RunCli("recover " + dir);
  ASSERT_EQ(recover.exit_code, 0) << recover.text;
  EXPECT_NE(recover.text.find("generation=1"), std::string::npos)
      << recover.text;
  EXPECT_NE(recover.text.find("batches_replayed=1"), std::string::npos)
      << recover.text;
  EXPECT_NE(recover.text.find("batches_truncated=0"), std::string::npos)
      << recover.text;
  EXPECT_EQ(LastPairs(recover.text), 4) << recover.text;
}

TEST_F(CliTest, IngestEmptyDeltaIsNoOp) {
  std::string dir = FreshDir("ddir_empty");
  RunOutput save = RunCli("save " + graph_ + " " + keys_ + " --dir=" + dir);
  ASSERT_EQ(save.exit_code, 0) << save.text;
  RunOutput ingest = RunCli("ingest " + dir + " " + empty_);
  EXPECT_EQ(ingest.exit_code, 0) << ingest.text;
  EXPECT_NE(ingest.text.find("no-op"), std::string::npos) << ingest.text;

  RunOutput recover = RunCli("recover " + dir + " --quiet");
  EXPECT_EQ(recover.exit_code, 0) << recover.text;
  EXPECT_NE(recover.text.find("batches_replayed=0"), std::string::npos)
      << recover.text;
}

// ---- Pipelined stdin ingest: '---'-separated batches, hostile inputs ----

TEST_F(CliTest, PipelineStdinStreamsBatches) {
  std::string dir = FreshDir("ddir_pipe");
  ASSERT_EQ(RunCli("save " + graph_ + " " + keys_ + " --dir=" + dir).exit_code,
            0);
  std::string input = TempFile(
      "pipe_two.triples",
      std::string(kCompanyDelta) + "---\n" +
          "+ ent:company:c7 name_of val:\"SBC\"\n"
          "+ ent:company:c0 parent_of ent:company:c7\n");
  RunOutput out =
      RunCli("ingest " + dir + " - --pipeline < " + input);
  ASSERT_EQ(out.exit_code, 0) << out.text;
  EXPECT_NE(out.text.find("ingested 2 batches"), std::string::npos)
      << out.text;
  EXPECT_NE(out.text.find("wal_records=2"), std::string::npos) << out.text;

  RunOutput recover = RunCli("recover " + dir + " --quiet");
  ASSERT_EQ(recover.exit_code, 0) << recover.text;
  EXPECT_NE(recover.text.find("batches_replayed=2"), std::string::npos)
      << recover.text;
}

TEST_F(CliTest, PipelineEmptyBatchBetweenSeparatorsIsNoOpCommit) {
  std::string dir = FreshDir("ddir_pipe_mid");
  ASSERT_EQ(RunCli("save " + graph_ + " " + keys_ + " --dir=" + dir).exit_code,
            0);
  // Two consecutive separators: the middle batch is empty. It must flow
  // through as a no-op commit — counted, not WAL-appended, not an error.
  std::string input = TempFile(
      "pipe_mid.triples",
      std::string(kCompanyDelta) + "---\n" + "---\n" +
          "+ ent:company:c7 name_of val:\"SBC\"\n");
  RunOutput out = RunCli("ingest " + dir + " - --pipeline < " + input);
  ASSERT_EQ(out.exit_code, 0) << out.text;
  EXPECT_NE(out.text.find("ingested 3 batches"), std::string::npos)
      << out.text;
  EXPECT_NE(out.text.find("1 empty"), std::string::npos) << out.text;
  EXPECT_NE(out.text.find("wal_records=2"), std::string::npos) << out.text;

  RunOutput recover = RunCli("recover " + dir + " --quiet");
  ASSERT_EQ(recover.exit_code, 0) << recover.text;
  EXPECT_NE(recover.text.find("batches_replayed=2"), std::string::npos)
      << recover.text;
  EXPECT_EQ(LastPairs(recover.text), 4) << recover.text;
}

TEST_F(CliTest, PipelineTrailingSeparatorIsNoOpCommit) {
  std::string dir = FreshDir("ddir_pipe_trail");
  ASSERT_EQ(RunCli("save " + graph_ + " " + keys_ + " --dir=" + dir).exit_code,
            0);
  // A trailing '---' means "an empty batch follows": it must not be
  // silently dropped, and must not create a WAL record either.
  std::string input =
      TempFile("pipe_trail.triples", std::string(kCompanyDelta) + "---\n");
  RunOutput out = RunCli("ingest " + dir + " - --pipeline < " + input);
  ASSERT_EQ(out.exit_code, 0) << out.text;
  EXPECT_NE(out.text.find("ingested 2 batches"), std::string::npos)
      << out.text;
  EXPECT_NE(out.text.find("1 empty"), std::string::npos) << out.text;
  EXPECT_NE(out.text.find("wal_records=1"), std::string::npos) << out.text;
  EXPECT_EQ(LastPairs(out.text), 4) << out.text;
}

TEST_F(CliTest, PipelineCommentOnlyBatchIsNoOpCommit) {
  std::string dir = FreshDir("ddir_pipe_comment");
  ASSERT_EQ(RunCli("save " + graph_ + " " + keys_ + " --dir=" + dir).exit_code,
            0);
  std::string input = TempFile(
      "pipe_comment.triples",
      std::string(kCompanyDelta) + "---\n" + "# just a comment\n\n");
  RunOutput out = RunCli("ingest " + dir + " - --pipeline < " + input);
  ASSERT_EQ(out.exit_code, 0) << out.text;
  EXPECT_NE(out.text.find("ingested 2 batches"), std::string::npos)
      << out.text;
  EXPECT_NE(out.text.find("1 empty"), std::string::npos) << out.text;
  EXPECT_NE(out.text.find("wal_records=1"), std::string::npos) << out.text;
}

TEST_F(CliTest, PipelineOnlySeparatorInputIsAllNoOps) {
  std::string dir = FreshDir("ddir_pipe_onlysep");
  ASSERT_EQ(RunCli("save " + graph_ + " " + keys_ + " --dir=" + dir).exit_code,
            0);
  // "---" alone delimits two empty batches; the run commits nothing and
  // leaves the WAL untouched.
  std::string input = TempFile("pipe_onlysep.triples", "---\n");
  RunOutput out = RunCli("ingest " + dir + " - --pipeline < " + input);
  ASSERT_EQ(out.exit_code, 0) << out.text;
  EXPECT_NE(out.text.find("ingested 2 batches"), std::string::npos)
      << out.text;
  EXPECT_NE(out.text.find("2 empty"), std::string::npos) << out.text;
  EXPECT_NE(out.text.find("wal_records=0"), std::string::npos) << out.text;

  RunOutput recover = RunCli("recover " + dir + " --quiet");
  ASSERT_EQ(recover.exit_code, 0) << recover.text;
  EXPECT_NE(recover.text.find("batches_replayed=0"), std::string::npos)
      << recover.text;
  EXPECT_EQ(LastPairs(recover.text), 2) << recover.text;
}

TEST_F(CliTest, RecoverTruncatesTornWalTail) {
  std::string dir = FreshDir("ddir_torn");
  RunOutput save = RunCli("save " + graph_ + " " + keys_ + " --dir=" + dir);
  ASSERT_EQ(save.exit_code, 0) << save.text;
  RunOutput ingest = RunCli("ingest " + dir + " " + delta_);
  ASSERT_EQ(ingest.exit_code, 0) << ingest.text;

  // A crash mid-append leaves garbage after the acknowledged record.
  std::string wal = dir + "/wal.000001.log";
  SpitBinary(wal, SlurpBinary(wal) + "crash mid-append");

  RunOutput recover = RunCli("recover " + dir + " --quiet");
  ASSERT_EQ(recover.exit_code, 0) << recover.text;
  EXPECT_NE(recover.text.find("batches_replayed=1"), std::string::npos)
      << recover.text;
  EXPECT_NE(recover.text.find("batches_truncated=1"), std::string::npos)
      << recover.text;
  EXPECT_EQ(LastPairs(recover.text), 4) << recover.text;
}

TEST_F(CliTest, RecoverCorruptAcknowledgedBatchIsDataLoss) {
  std::string dir = FreshDir("ddir_loss");
  RunOutput save = RunCli("save " + graph_ + " " + keys_ + " --dir=" + dir);
  ASSERT_EQ(save.exit_code, 0) << save.text;
  ASSERT_EQ(RunCli("ingest " + dir + " " + delta_).exit_code, 0);
  std::string delta2 = TempFile(
      "delta2.triples",
      "+ ent:company:c7 name_of val:\"SBC\"\n"
      "+ ent:company:c0 parent_of ent:company:c7\n");
  ASSERT_EQ(RunCli("ingest " + dir + " " + delta2).exit_code, 0);

  // Flip a payload byte of the FIRST record; the second record proves it
  // was acknowledged, so this is unrecoverable — exit nonzero, one line.
  std::string wal = dir + "/wal.000001.log";
  std::string bytes = SlurpBinary(wal);
  ASSERT_GT(bytes.size(), 40u);
  bytes[33] = static_cast<char>(bytes[33] ^ 0x01);
  SpitBinary(wal, bytes);

  RunOutput recover = RunCli("recover " + dir);
  EXPECT_NE(recover.exit_code, 0);
  EXPECT_NE(recover.text.find("DataLoss"), std::string::npos)
      << recover.text;
}

TEST_F(CliTest, RecoverMissingDirFailsCleanly) {
  RunOutput recover = RunCli("recover " + FreshDir("ddir_nothere"));
  EXPECT_NE(recover.exit_code, 0);
  EXPECT_NE(recover.text.find("NotFound"), std::string::npos)
      << recover.text;
}

// ---- Corrupt-snapshot audit: every load path exits 1 with one line -----

void ExpectOneLineFailure(const RunOutput& out) {
  EXPECT_NE(out.exit_code, 0) << out.text;
  EXPECT_NE(out.text.find("Error"), std::string::npos) << out.text;
  // One diagnostic line, not a spray: at most one newline-terminated line.
  EXPECT_LE(std::count(out.text.begin(), out.text.end(), '\n'), 1)
      << out.text;
}

TEST_F(CliTest, LoadTruncatedSnapshotFailsWithOneLine) {
  std::string snap = ::testing::TempDir() + "gkeys_cli_trunc.gks";
  RunOutput save = RunCli("save " + graph_ + " " + keys_ + " " + snap);
  ASSERT_EQ(save.exit_code, 0) << save.text;
  std::string bytes = SlurpBinary(snap);
  for (size_t keep : {size_t{3}, size_t{16}, bytes.size() / 2}) {
    SpitBinary(snap, bytes.substr(0, keep));
    ExpectOneLineFailure(RunCli("load " + snap));
  }
}

TEST_F(CliTest, LoadFlippedHeaderFailsWithOneLine) {
  std::string snap = ::testing::TempDir() + "gkeys_cli_flip.gks";
  RunOutput save = RunCli("save " + graph_ + " " + keys_ + " " + snap);
  ASSERT_EQ(save.exit_code, 0) << save.text;
  std::string bytes = SlurpBinary(snap);
  bytes[0] = static_cast<char>(bytes[0] ^ 0xff);
  SpitBinary(snap, bytes);
  ExpectOneLineFailure(RunCli("load " + snap));
}

TEST_F(CliTest, LoadEmptySnapshotFailsWithOneLine) {
  std::string snap = TempFile("empty.gks", "");
  ExpectOneLineFailure(RunCli("load " + snap));
}

}  // namespace
