#include "io/triples.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/chase.h"
#include "gen/synthetic.h"
#include "test_util.h"

namespace gkeys {
namespace {

TEST(TriplesIo, SerializeSmallGraph) {
  Graph g;
  NodeId a = g.AddEntity("artist");
  g.AddTriple(a, "name_of", g.AddValue("The Beatles")).IgnoreError();
  g.Finalize();
  std::string text = SerializeGraph(g);
  EXPECT_NE(text.find("ent:artist:0 name_of val:\"The Beatles\""),
            std::string::npos);
}

TEST(TriplesIo, RoundTripPreservesStructure) {
  auto m = testing::MakeG1();
  std::string text = SerializeGraph(m.g);
  auto loaded = DeserializeGraph(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumEntities(), m.g.NumEntities());
  EXPECT_EQ(loaded->NumValues(), m.g.NumValues());
  EXPECT_EQ(loaded->NumTriples(), m.g.NumTriples());
  // Semantic equivalence: the chase finds the same number of duplicate
  // classes on the reloaded graph.
  KeySet sigma1 = testing::MakeSigma1();
  EXPECT_EQ(Chase(*loaded, sigma1).pairs.size(),
            Chase(m.g, sigma1).pairs.size());
}

TEST(TriplesIo, RoundTripSyntheticWorkload) {
  SyntheticConfig cfg;
  cfg.entities_per_type = 10;
  SyntheticDataset ds = GenerateSynthetic(cfg);
  auto loaded = DeserializeGraph(SerializeGraph(ds.graph));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumTriples(), ds.graph.NumTriples());
  EXPECT_EQ(Chase(*loaded, ds.keys).pairs.size(), ds.planted.size());
}

TEST(TriplesIo, EscapedLiterals) {
  Graph g;
  NodeId e = g.AddEntity("t");
  g.AddTriple(e, "p", g.AddValue("say \"hi\" \\ there")).IgnoreError();
  g.Finalize();
  auto loaded = DeserializeGraph(SerializeGraph(g));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_NE(loaded->FindValue("say \"hi\" \\ there"), kNoNode);
}

TEST(TriplesIo, LiteralsWithSpaces) {
  Graph g;
  NodeId e = g.AddEntity("band");
  g.AddTriple(e, "name_of", g.AddValue("The Rolling Stones")).IgnoreError();
  g.Finalize();
  auto loaded = DeserializeGraph(SerializeGraph(g));
  ASSERT_TRUE(loaded.ok());
  EXPECT_NE(loaded->FindValue("The Rolling Stones"), kNoNode);
}

TEST(TriplesIo, IsolatedEntitiesSurvive) {
  Graph g;
  g.AddEntity("loner");
  g.Finalize();
  auto loaded = DeserializeGraph(SerializeGraph(g));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumEntities(), 1u);
  EXPECT_EQ(loaded->EntitiesOfType(loaded->interner().Lookup("loner")).size(),
            1u);
}

TEST(TriplesIo, CommentsAndBlankLinesIgnored) {
  auto loaded = DeserializeGraph(
      "# a comment\n"
      "\n"
      "ent:t:0 p ent:t:1\n");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumTriples(), 1u);
}

TEST(TriplesIo, MalformedInputRejected) {
  EXPECT_FALSE(DeserializeGraph("just one field\n").ok());
  EXPECT_FALSE(DeserializeGraph("ent:t:0 p\n").ok());
  EXPECT_FALSE(DeserializeGraph("bogus:t:0 p ent:t:1\n").ok());
  EXPECT_FALSE(DeserializeGraph("ent:t:0 p val:\"unterminated\n").ok());
  EXPECT_FALSE(DeserializeGraph("val:\"v\" p ent:t:0\n").ok());  // value subj
}

TEST(TriplesIo, EntityReferencesAreStable) {
  // The same ent:type:id token must resolve to one node.
  auto loaded = DeserializeGraph(
      "ent:t:0 p ent:t:1\n"
      "ent:t:0 q ent:t:1\n");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumEntities(), 2u);
  EXPECT_EQ(loaded->NumTriples(), 2u);
}

TEST(TriplesIo, FileRoundTrip) {
  auto m = testing::MakeG1();
  std::string path = ::testing::TempDir() + "/gkeys_io_test.triples";
  ASSERT_TRUE(SaveGraph(m.g, path).ok());
  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumTriples(), m.g.NumTriples());
  std::remove(path.c_str());
}

TEST(TriplesIo, LoadMissingFileFails) {
  EXPECT_FALSE(LoadGraph("/nonexistent/dir/nope.triples").ok());
}

}  // namespace
}  // namespace gkeys
