#include "core/product_graph.h"

#include <gtest/gtest.h>

#include "gen/synthetic.h"
#include "test_util.h"

namespace gkeys {
namespace {

using testing::MakeG1;
using testing::MakeSigma1;

ProductGraph BuildForG1(const Graph& g, const KeySet& keys,
                        std::unique_ptr<EmContext>& ctx_out) {
  EmOptions opts = EmOptions::For(Algorithm::kEmVc, 1);
  ctx_out = std::make_unique<EmContext>(g, keys, opts);
  return BuildProductGraph(*ctx_out);
}

TEST(ProductGraph, ContainsCandidateAndValueNodes) {
  auto m = MakeG1();
  KeySet sigma1 = MakeSigma1();
  std::unique_ptr<EmContext> ctx;
  ProductGraph pg = BuildForG1(m.g, sigma1, ctx);
  // The identifiable candidate (alb1, alb2) is a node...
  EXPECT_NE(pg.Find(m.alb1, m.alb2), kNoPNode);
  // ...and its shared name value appears as a diagonal value pair.
  NodeId anthology = m.g.FindValue("Anthology 2");
  ASSERT_NE(anthology, kNoNode);
  EXPECT_NE(pg.Find(anthology, anthology), kNoPNode);
}

TEST(ProductGraph, EdgesMirrorSharedTriples) {
  auto m = MakeG1();
  KeySet sigma1 = MakeSigma1();
  std::unique_ptr<EmContext> ctx;
  ProductGraph pg = BuildForG1(m.g, sigma1, ctx);
  uint32_t v = pg.Find(m.alb1, m.alb2);
  ASSERT_NE(v, kNoPNode);
  // (alb1, name_of, "Anthology 2") and (alb2, name_of, "Anthology 2")
  // => an out edge labeled name_of to the value pair.
  NodeId anthology = m.g.FindValue("Anthology 2");
  uint32_t val_node = pg.Find(anthology, anthology);
  ASSERT_NE(val_node, kNoPNode);
  Symbol name_of = m.g.interner().Lookup("name_of");
  bool found = false;
  for (const auto& e : pg.Out(v)) {
    if (e.pred == name_of && e.dst == val_node) found = true;
  }
  EXPECT_TRUE(found);
  // Edge counts feed prioritized propagation.
  EXPECT_GE(pg.OutCount(v, name_of), 1u);
  // The reverse direction is indexed as an in-edge.
  found = false;
  for (const auto& e : pg.In(val_node)) {
    if (e.pred == name_of && e.dst == v) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ProductGraph, CandidateNodeLookup) {
  auto m = MakeG1();
  KeySet sigma1 = MakeSigma1();
  std::unique_ptr<EmContext> ctx;
  ProductGraph pg = BuildForG1(m.g, sigma1, ctx);
  for (uint32_t i = 0; i < ctx->candidates().size(); ++i) {
    const Candidate& c = ctx->candidates()[i];
    uint32_t v = pg.CandidateNode(i);
    if (v != kNoPNode) {
      EXPECT_EQ(pg.pair(v).first, c.e1);
      EXPECT_EQ(pg.pair(v).second, c.e2);
    }
  }
}

TEST(ProductGraph, FindMissingPair) {
  auto m = MakeG1();
  KeySet sigma1 = MakeSigma1();
  std::unique_ptr<EmContext> ctx;
  ProductGraph pg = BuildForG1(m.g, sigma1, ctx);
  // art1 and a value never pair.
  NodeId anthology = m.g.FindValue("Anthology 2");
  EXPECT_EQ(pg.Find(m.art1, anthology), kNoPNode);
}

TEST(ProductGraph, SizeScalesLinearlyWithGraph) {
  // The paper reports |Gp| ≈ 2.7·|G| on average — i.e., linear, not
  // quadratic. Verify the ratio stays bounded as the graph grows.
  double prev_ratio = 0;
  for (double scale : {1.0, 2.0, 4.0}) {
    SyntheticConfig cfg;
    cfg.num_groups = 2;
    cfg.chain_length = 2;
    cfg.entities_per_type = 20;
    cfg.scale = scale;
    SyntheticDataset ds = GenerateSynthetic(cfg);
    EmOptions opts = EmOptions::For(Algorithm::kEmVc, 1);
    EmContext ctx(ds.graph, ds.keys, opts);
    ProductGraph pg = BuildProductGraph(ctx);
    double ratio = static_cast<double>(pg.NumNodes() + pg.NumEdges()) /
                   static_cast<double>(ds.graph.NumTriples());
    EXPECT_LT(ratio, 10.0) << "scale " << scale;
    if (prev_ratio > 0) {
      EXPECT_LT(ratio, prev_ratio * 2.0)
          << "|Gp|/|G| must not blow up with graph size";
    }
    prev_ratio = ratio;
  }
}

}  // namespace
}  // namespace gkeys
