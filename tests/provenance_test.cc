#include "core/provenance.h"

#include "core/chase.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>

#include "core/matcher.h"
#include "gen/synthetic.h"
#include "graph/delta.h"
#include "test_util.h"

namespace gkeys {
namespace {

using testing::MakeG1;
using testing::MakeG2;
using testing::MakeSigma1;
using testing::MakeSigma2;

TEST(Provenance, RecordsMusicDerivation) {
  auto m = MakeG1();
  KeySet sigma1 = MakeSigma1();
  ProvenanceResult pr = ChaseWithProvenance(m.g, sigma1);
  // Same result as the plain chase.
  EXPECT_EQ(pr.result.pairs, Chase(m.g, sigma1).pairs);
  ASSERT_EQ(pr.steps.size(), 2u);
  // Step 1: the albums by value-based Q2, no premises.
  EXPECT_EQ(pr.steps[0].e1, m.alb1);
  EXPECT_EQ(pr.steps[0].e2, m.alb2);
  EXPECT_EQ(pr.steps[0].key, "Q2");
  EXPECT_TRUE(pr.steps[0].premises.empty());
  // Step 2: the artists by recursive Q3, premised on the albums.
  EXPECT_EQ(pr.steps[1].e1, m.art1);
  EXPECT_EQ(pr.steps[1].e2, m.art2);
  EXPECT_EQ(pr.steps[1].key, "Q3");
  ASSERT_EQ(pr.steps[1].premises.size(), 1u);
  EXPECT_EQ(pr.steps[1].premises[0],
            (std::pair<NodeId, NodeId>{m.alb1, m.alb2}));
  EXPECT_GT(pr.steps[1].round, pr.steps[0].round);
}

TEST(Provenance, WildcardStepsHaveNoPremises) {
  auto c = MakeG2();
  KeySet sigma2 = MakeSigma2();
  ProvenanceResult pr = ChaseWithProvenance(c.g, sigma2);
  ASSERT_EQ(pr.steps.size(), 2u);
  for (const ChaseStep& step : pr.steps) {
    // Q4's entity variable binds the SHARED parent com3 and Q5's binds
    // the shared sibling: identity facts, never recorded as premises.
    EXPECT_TRUE(step.premises.empty()) << FormatChaseStep(c.g, step);
    EXPECT_EQ(step.round, 1u);
  }
}

TEST(Provenance, DerivationValidates) {
  auto m = MakeG1();
  KeySet sigma1 = MakeSigma1();
  ProvenanceResult pr = ChaseWithProvenance(m.g, sigma1);
  EXPECT_TRUE(ValidateDerivation(m.g, sigma1, pr.steps));
}

TEST(Provenance, TamperedDerivationRejected) {
  auto m = MakeG1();
  KeySet sigma1 = MakeSigma1();
  ProvenanceResult pr = ChaseWithProvenance(m.g, sigma1);
  ASSERT_EQ(pr.steps.size(), 2u);
  // Reorder: the recursive step now fires before its premise exists.
  std::swap(pr.steps[0], pr.steps[1]);
  EXPECT_FALSE(ValidateDerivation(m.g, sigma1, pr.steps));
}

TEST(Provenance, FormatIsReadable) {
  auto m = MakeG1();
  KeySet sigma1 = MakeSigma1();
  ProvenanceResult pr = ChaseWithProvenance(m.g, sigma1);
  std::string s = FormatChaseStep(m.g, pr.steps[1]);
  EXPECT_NE(s.find("by Q3"), std::string::npos);
  EXPECT_NE(s.find("because"), std::string::npos);
}

TEST(Provenance, ChainDepthMatchesRounds) {
  // A c=4 fully chained workload: the proof of the level-0 pair must sit
  // 4 rounds deep with a premise chain down to the leaf.
  SyntheticConfig cfg;
  cfg.num_groups = 1;
  cfg.chain_length = 4;
  cfg.radius = 1;
  cfg.entities_per_type = 8;
  cfg.chained_fraction = 1.0;
  cfg.seed = 21;
  SyntheticDataset ds = GenerateSynthetic(cfg);
  ProvenanceResult pr = ChaseWithProvenance(ds.graph, ds.keys);
  EXPECT_EQ(pr.result.pairs, ds.planted);
  EXPECT_TRUE(ValidateDerivation(ds.graph, ds.keys, pr.steps));
  // Proof depth: a step's depth is 1 + the max depth of its premises.
  // (The sequential chase may resolve a whole chain within one visiting
  // round, but the DERIVATION depth still reflects the c = 4 chain.)
  std::map<std::pair<NodeId, NodeId>, size_t> depth;
  size_t max_depth = 0;
  for (const ChaseStep& s : pr.steps) {
    size_t d = 1;
    for (const auto& prem : s.premises) {
      auto it = depth.find(prem);
      ASSERT_NE(it, depth.end()) << "premise must be an earlier step";
      d = std::max(d, it->second + 1);
    }
    NodeId a = std::min(s.e1, s.e2), b = std::max(s.e1, s.e2);
    depth[{a, b}] = d;
    max_depth = std::max(max_depth, d);
  }
  EXPECT_EQ(max_depth, 4u) << "proof depth must equal the chain length";
}

TEST(Provenance, StepCountBoundsConfirmedPairs) {
  // Direct identifications <= all pairs (transitivity adds the rest).
  SyntheticConfig cfg;
  cfg.num_groups = 2;
  cfg.chain_length = 2;
  cfg.entities_per_type = 12;
  SyntheticDataset ds = GenerateSynthetic(cfg);
  ProvenanceResult pr = ChaseWithProvenance(ds.graph, ds.keys);
  EXPECT_LE(pr.steps.size(), pr.result.pairs.size());
  EXPECT_EQ(pr.result.pairs, ds.planted);
}

// ---- Retraction (the removal-delta seed, Matcher::Rematch) -----------

/// The music fixture's derivations via the plan API: exactly two —
/// (alb1, alb2) by value-based Q2, then (art1, art2) by recursive Q3
/// premised on the album pair.
MatchResult MusicResult(const testing::MusicGraph& m, const KeySet& keys) {
  auto plan = Matcher::Compile(m.g, keys,
                               PlanOptions::For(Algorithm::kNaiveChase, 1));
  EXPECT_TRUE(plan.ok());
  auto r = Matcher(Algorithm::kNaiveChase).Run(*plan);
  EXPECT_TRUE(r.ok());
  return *std::move(r);
}

TEST(Provenance, RetractionOnUntouchedGraphKeepsEverything) {
  auto m = MakeG1();
  KeySet sigma1 = MakeSigma1();
  MatchResult r = MusicResult(m, sigma1);
  ASSERT_EQ(r.derivations.size(), 2u);
  RetractionResult retr = RetractDerivations(m.g, r.derivations);
  EXPECT_EQ(retr.retracted, 0u);
  EXPECT_EQ(retr.surviving.size(), 2u);
  EXPECT_EQ(retr.seed_pairs, r.pairs);
}

TEST(Provenance, RetractionCascadesThroughPremises) {
  // Removing a triple the ALBUM witness realized invalidates the album
  // derivation directly — and the artist derivation transitively, since
  // its premise (alb1 == alb2) loses support. DRed over-deletes both.
  auto m = MakeG1();
  KeySet sigma1 = MakeSigma1();
  MatchResult r = MusicResult(m, sigma1);
  ASSERT_EQ(r.derivations.size(), 2u);
  EXPECT_EQ(r.derivations[0].premises.size(), 0u);  // Q2, value-based
  ASSERT_EQ(r.derivations[1].premises.size(), 1u);  // Q3's album premise
  EXPECT_EQ(r.derivations[1].premises[0],
            (std::pair<NodeId, NodeId>{m.alb1, m.alb2}));

  GraphDelta delta(m.g);
  ASSERT_TRUE(delta.RemoveTriple(m.alb1, "release_year",
                                 m.g.FindValue("1996"))
                  .ok());
  ASSERT_TRUE(m.g.Apply(delta).ok());

  RetractionResult retr = RetractDerivations(m.g, r.derivations);
  EXPECT_EQ(retr.retracted, 2u);
  EXPECT_TRUE(retr.surviving.empty());
  EXPECT_TRUE(retr.seed_pairs.empty());
}

TEST(Provenance, RetractionKeepsIndependentDerivations) {
  // Removing a triple only the ARTIST witness used retracts the artist
  // derivation; the album derivation survives and seeds the album pair.
  auto m = MakeG1();
  KeySet sigma1 = MakeSigma1();
  MatchResult r = MusicResult(m, sigma1);
  ASSERT_EQ(r.derivations.size(), 2u);

  GraphDelta delta(m.g);
  ASSERT_TRUE(delta.RemoveTriple(m.art1, "name_of",
                                 m.g.FindValue("The Beatles"))
                  .ok());
  ASSERT_TRUE(m.g.Apply(delta).ok());

  RetractionResult retr = RetractDerivations(m.g, r.derivations);
  EXPECT_EQ(retr.retracted, 1u);
  ASSERT_EQ(retr.surviving.size(), 1u);
  EXPECT_EQ(retr.surviving[0].e1, std::min(m.alb1, m.alb2));
  EXPECT_EQ(retr.surviving[0].e2, std::max(m.alb1, m.alb2));
  EXPECT_EQ(retr.seed_pairs, testing::Pairs({{m.alb1, m.alb2}}));
}

TEST(Provenance, RetractionDropsDanglingPremises) {
  // A hand-tampered index whose premise never appears must not survive:
  // the replay treats the unsupported premise as retracted. (The shipped
  // engines never record out of order — record-before-Union guarantees
  // it — so this pins the DRed safety net a future engine may lean on.)
  auto m = MakeG1();
  KeySet sigma1 = MakeSigma1();
  MatchResult r = MusicResult(m, sigma1);
  ASSERT_EQ(r.derivations.size(), 2u);
  std::vector<Derivation> tampered = {r.derivations[1]};  // premise first
  RetractionResult retr = RetractDerivations(m.g, tampered);
  EXPECT_EQ(retr.retracted, 1u);
  EXPECT_TRUE(retr.surviving.empty());
}

}  // namespace
}  // namespace gkeys
