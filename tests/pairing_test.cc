#include "isomorph/pairing.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/entity_matcher.h"
#include "gen/synthetic.h"
#include "isomorph/eval_search.h"
#include "isomorph/pairing_reference.h"
#include "pattern/parser.h"
#include "test_util.h"

namespace gkeys {
namespace {

using testing::MakeG1;
using testing::MakeG2;

CompiledPattern CompileDsl(const Graph& g, const char* dsl) {
  auto key = ParseKey(dsl);
  EXPECT_TRUE(key.ok()) << key.status().ToString();
  static std::vector<std::unique_ptr<Pattern>> keep;
  keep.push_back(std::make_unique<Pattern>(std::move(key->pattern)));
  return Compile(*keep.back(), g);
}

TEST(Pairing, AcceptsIdentifiablePair) {
  auto m = MakeG1();
  CompiledPattern q2 = CompileDsl(m.g, R"(
    key Q2 for album {
      x -[name_of]-> n*
      x -[release_year]-> yr*
    })");
  NodeSet n1 = DNeighbor(m.g, m.alb1, 1);
  NodeSet n2 = DNeighbor(m.g, m.alb2, 1);
  PairingResult pr = ComputeMaxPairing(m.g, q2, m.alb1, m.alb2, n1, n2);
  EXPECT_TRUE(pr.paired);
  EXPECT_GT(pr.relation_size, 0u);
  EXPECT_TRUE(pr.reduced1.Contains(m.alb1));
  EXPECT_TRUE(pr.reduced2.Contains(m.alb2));
}

TEST(Pairing, RejectsValueMismatch) {
  auto m = MakeG1();
  CompiledPattern q2 = CompileDsl(m.g, R"(
    key Q2 for album {
      x -[name_of]-> n*
      x -[release_year]-> yr*
    })");
  // alb3's year differs: no shared year value => prune to empty.
  NodeSet n1 = DNeighbor(m.g, m.alb1, 1);
  NodeSet n3 = DNeighbor(m.g, m.alb3, 1);
  PairingResult pr = ComputeMaxPairing(m.g, q2, m.alb1, m.alb3, n1, n3);
  EXPECT_FALSE(pr.paired);
}

TEST(Pairing, IsNecessaryNotSufficient) {
  // Pairing ignores Eq: art1/art2 pair by Q3 although identification
  // requires (alb1, alb2) ∈ Eq first. That is exactly why pairing is a
  // sound filter (Prop. 9) but not a decision procedure.
  auto m = MakeG1();
  CompiledPattern q3 = CompileDsl(m.g, R"(
    key Q3 for artist {
      x -[name_of]-> n*
      y:album -[recorded_by]-> x
    })");
  NodeSet n1 = DNeighbor(m.g, m.art1, 1);
  NodeSet n2 = DNeighbor(m.g, m.art2, 1);
  PairingResult pr = ComputeMaxPairing(m.g, q3, m.art1, m.art2, n1, n2);
  EXPECT_TRUE(pr.paired);
  EqView eq0;
  EXPECT_FALSE(KeyIdentifies(m.g, q3, m.art1, m.art2, eq0, &n1, &n2));
}

TEST(Pairing, NeverFiltersIdentifiablePairs) {
  // Soundness on G2/Q4: the identifiable pair (com4, com5) must pair.
  auto c = MakeG2();
  CompiledPattern q4 = CompileDsl(c.g, R"(
    key Q4 for company {
      x -[name_of]-> n*
      _p:company -[name_of]-> n*
      _p -[parent_of]-> x
      y:company -[parent_of]-> x
    })");
  NodeSet n4 = DNeighbor(c.g, c.com4, 2);
  NodeSet n5 = DNeighbor(c.g, c.com5, 2);
  PairingResult pr = ComputeMaxPairing(c.g, q4, c.com4, c.com5, n4, n5);
  EXPECT_TRUE(pr.paired);
}

TEST(Pairing, ReducedNeighborsPreserveIdentification) {
  // §4.2: searching inside the reduced neighbors must still identify.
  auto c = MakeG2();
  CompiledPattern q4 = CompileDsl(c.g, R"(
    key Q4 for company {
      x -[name_of]-> n*
      _p:company -[name_of]-> n*
      _p -[parent_of]-> x
      y:company -[parent_of]-> x
    })");
  NodeSet n4 = DNeighbor(c.g, c.com4, 2);
  NodeSet n5 = DNeighbor(c.g, c.com5, 2);
  PairingResult pr = ComputeMaxPairing(c.g, q4, c.com4, c.com5, n4, n5);
  ASSERT_TRUE(pr.paired);
  EXPECT_LE(pr.reduced1.size(), n4.size());
  EXPECT_LE(pr.reduced2.size(), n5.size());
  EqView eq0;
  EXPECT_TRUE(KeyIdentifies(c.g, q4, c.com4, c.com5, eq0, &pr.reduced1,
                            &pr.reduced2));
}

TEST(Pairing, ReductionShrinksNoisyNeighborhoods) {
  // An identifiable pair with heavy unrelated structure around it: the
  // pairing relation must exclude the noise nodes.
  Graph g;
  NodeId a = g.AddEntity("t");
  NodeId b = g.AddEntity("t");
  NodeId shared = g.AddValue("V");
  g.AddTriple(a, "p", shared).IgnoreError();
  g.AddTriple(b, "p", shared).IgnoreError();
  std::vector<NodeId> noise;
  for (int i = 0; i < 20; ++i) {
    NodeId n = g.AddEntity("junk");
    noise.push_back(n);
    g.AddTriple(a, "q", n).IgnoreError();
    g.AddTriple(b, "q", n).IgnoreError();
  }
  g.Finalize();
  CompiledPattern k = CompileDsl(g, "key K for t {\n x -[p]-> v*\n}");
  NodeSet n1 = DNeighbor(g, a, 1);
  NodeSet n2 = DNeighbor(g, b, 1);
  PairingResult pr = ComputeMaxPairing(g, k, a, b, n1, n2);
  ASSERT_TRUE(pr.paired);
  EXPECT_LT(pr.reduced1.size(), n1.size());
  for (NodeId n : noise) {
    EXPECT_FALSE(pr.reduced1.Contains(n));
  }
}

TEST(Pairing, CollectPairsForProductGraph) {
  auto m = MakeG1();
  CompiledPattern q2 = CompileDsl(m.g, R"(
    key Q2 for album {
      x -[name_of]-> n*
      x -[release_year]-> yr*
    })");
  NodeSet n1 = DNeighbor(m.g, m.alb1, 1);
  NodeSet n2 = DNeighbor(m.g, m.alb2, 1);
  PairingResult pr = ComputeMaxPairing(m.g, q2, m.alb1, m.alb2, n1, n2,
                                       /*collect_pairs=*/true);
  ASSERT_TRUE(pr.paired);
  EXPECT_FALSE(pr.pairs.empty());
  // The designated pair itself must be collected.
  EXPECT_NE(std::find(pr.pairs.begin(), pr.pairs.end(),
                      PackPair(m.alb1, m.alb2)),
            pr.pairs.end());
}

TEST(Pairing, UnmatchablePatternNeverPairs) {
  auto m = MakeG1();
  CompiledPattern ghost =
      CompileDsl(m.g, "key K for album {\n x -[ghost_pred]-> v*\n}");
  NodeSet n1 = DNeighbor(m.g, m.alb1, 1);
  NodeSet n2 = DNeighbor(m.g, m.alb2, 1);
  EXPECT_FALSE(ComputeMaxPairing(m.g, ghost, m.alb1, m.alb2, n1, n2).paired);
}

// ---- Oracle: the pre-worklist hash-table fixpoint ---------------------------
//
// ReferenceMaxPairing (isomorph/pairing_reference.h) is the original
// implementation, kept verbatim. The dense worklist engine must agree
// with it on every observable: paired, relation_size, reduced1/reduced2,
// collected pairs.

/// Compares the dense worklist engine against the oracle on every
/// candidate pair × key of a dataset, on all observables.
void CheckAgainstOracle(const SyntheticDataset& ds, const EmContext& ctx) {
  PairingScratch scratch;
  size_t compared = 0;
  for (const Candidate& c : ctx.candidates()) {
    for (int ki : *c.keys) {
      const CompiledPattern& cp = ctx.compiled_keys()[ki].cp;
      PairingResult got =
          ComputeMaxPairing(ds.graph, cp, c.e1, c.e2, *c.nbr1, *c.nbr2,
                            /*collect_pairs=*/true, &scratch);
      PairingResult want =
          ReferenceMaxPairing(ds.graph, cp, c.e1, c.e2, *c.nbr1, *c.nbr2,
                              /*collect_pairs=*/true);
      ASSERT_EQ(got.paired, want.paired)
          << "pair (" << c.e1 << "," << c.e2 << ") key " << ki;
      ASSERT_EQ(got.relation_size, want.relation_size)
          << "pair (" << c.e1 << "," << c.e2 << ") key " << ki;
      ASSERT_EQ(got.reduced1, want.reduced1)
          << "pair (" << c.e1 << "," << c.e2 << ") key " << ki;
      ASSERT_EQ(got.reduced2, want.reduced2)
          << "pair (" << c.e1 << "," << c.e2 << ") key " << ki;
      std::sort(want.pairs.begin(), want.pairs.end());  // oracle: hash order
      ASSERT_EQ(got.pairs, want.pairs)
          << "pair (" << c.e1 << "," << c.e2 << ") key " << ki;
      ++compared;
    }
  }
  EXPECT_GT(compared, 0u);
}

TEST(PairingOracle, DenseWorklistMatchesReferenceOnRandomWorkloads) {
  for (uint64_t seed : {11u, 22u, 33u, 44u}) {
    for (int d : {1, 2, 3}) {
      SyntheticConfig cfg;
      cfg.seed = seed;
      cfg.num_groups = 2;
      cfg.chain_length = 2;
      cfg.radius = d;
      cfg.entities_per_type = 10;
      SyntheticDataset ds = GenerateSynthetic(cfg);
      EmOptions opts;
      opts.use_blocking = false;  // keep every same-type pair comparable
      EmContext ctx(ds.graph, ds.keys, opts);
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " d=" + std::to_string(d));
      CheckAgainstOracle(ds, ctx);
    }
  }
}

TEST(PairingOracle, DenseWorklistMatchesReferenceOnPaperGraphs) {
  auto c = MakeG2();
  CompiledPattern q4 = CompileDsl(c.g, R"(
    key Q4 for company {
      x -[name_of]-> n*
      _p:company -[name_of]-> n*
      _p -[parent_of]-> x
      y:company -[parent_of]-> x
    })");
  PairingScratch scratch;
  for (int d : {1, 2, 3}) {
    NodeSet n4 = DNeighbor(c.g, c.com4, d);
    NodeSet n5 = DNeighbor(c.g, c.com5, d);
    PairingResult got = ComputeMaxPairing(c.g, q4, c.com4, c.com5, n4, n5,
                                          /*collect_pairs=*/true, &scratch);
    PairingResult want = ReferenceMaxPairing(c.g, q4, c.com4, c.com5, n4, n5,
                                             /*collect_pairs=*/true);
    EXPECT_EQ(got.paired, want.paired) << "d=" << d;
    EXPECT_EQ(got.relation_size, want.relation_size) << "d=" << d;
    EXPECT_EQ(got.reduced1, want.reduced1) << "d=" << d;
    EXPECT_EQ(got.reduced2, want.reduced2) << "d=" << d;
    std::sort(want.pairs.begin(), want.pairs.end());
    EXPECT_EQ(got.pairs, want.pairs) << "d=" << d;
  }
}

TEST(PairingOracle, AllSixAlgorithmsByteIdenticalPairs) {
  // End-to-end guard: with the dense fixpoint underneath, every algorithm
  // still reproduces exactly the oracle chase's pair set.
  for (uint64_t seed : {5u, 6u}) {
    SyntheticConfig cfg;
    cfg.seed = seed;
    cfg.num_groups = 2;
    cfg.chain_length = 2;
    cfg.radius = 2;
    cfg.entities_per_type = 12;
    SyntheticDataset ds = GenerateSynthetic(cfg);
    std::vector<std::pair<NodeId, NodeId>> want =
        MatchEntities(ds.graph, ds.keys, Algorithm::kNaiveChase, 1).pairs;
    for (Algorithm a :
         {Algorithm::kEmMr, Algorithm::kEmVf2Mr, Algorithm::kEmOptMr,
          Algorithm::kEmVc, Algorithm::kEmOptVc}) {
      EXPECT_EQ(MatchEntities(ds.graph, ds.keys, a, 4).pairs, want)
          << AlgorithmName(a) << " seed=" << seed;
    }
  }
}

}  // namespace
}  // namespace gkeys
