#include "pattern/tour.h"

#include <gtest/gtest.h>

#include "pattern/parser.h"

namespace gkeys {
namespace {

/// Builds a small graph whose interner covers the pattern's vocabulary so
/// Compile() produces a matchable pattern.
Graph VocabGraph(const Pattern& p) {
  Graph g;
  for (const auto& t : p.triples()) g.Intern(t.pred);
  NodeId e = kNoNode;
  for (const auto& n : p.nodes()) {
    if (!n.type.empty()) e = g.AddEntity(n.type);
    if (n.kind == VarKind::kConstant) g.AddValue(n.name);
  }
  if (e == kNoNode) g.AddEntity("pad");
  g.Finalize();
  return g;
}

void CheckTourInvariants(const Pattern& p) {
  Graph g = VocabGraph(p);
  CompiledPattern cp = Compile(p, g);
  ASSERT_TRUE(cp.matchable);
  auto tour = ComputeTour(cp);

  // Lemma 11: 2|Q| hops.
  EXPECT_EQ(tour.size(), 2 * p.size());

  // Every triple appears exactly twice.
  std::vector<int> uses(p.size(), 0);
  for (const auto& s : tour) ++uses[s.triple];
  for (int u : uses) EXPECT_EQ(u, 2);

  // It is a closed walk from x: consecutive steps chain, last ends at x.
  int at = cp.designated;
  for (const auto& s : tour) {
    const CompiledTriple& t = cp.triples[s.triple];
    int from = s.forward ? t.subject : t.object;
    int to = s.forward ? t.object : t.subject;
    EXPECT_EQ(from, at) << "walk must be contiguous";
    EXPECT_EQ(to, s.to_node);
    at = to;
  }
  EXPECT_EQ(at, cp.designated) << "walk must return to x";

  // Every pattern node is visited.
  std::vector<bool> visited(p.nodes().size(), false);
  visited[cp.designated] = true;
  for (const auto& s : tour) visited[s.to_node] = true;
  for (bool v : visited) EXPECT_TRUE(v);
}

TEST(Tour, StarPattern) {
  auto key = ParseKey(R"(
    key K for album {
      x -[name_of]-> n*
      x -[release_year]-> yr*
      x -[recorded_by]-> y:artist
    }
  )");
  ASSERT_TRUE(key.ok());
  CheckTourInvariants(key->pattern);
}

TEST(Tour, PathPattern) {
  auto key = ParseKey(R"(
    key K for t {
      x -[p]-> _w1:a
      _w1 -[q]-> _w2:b
      _w2 -[r]-> v*
    }
  )");
  ASSERT_TRUE(key.ok());
  CheckTourInvariants(key->pattern);
}

TEST(Tour, DagPatternQ4) {
  auto key = ParseKey(R"(
    key Q4 for company {
      x -[name_of]-> n*
      _p:company -[name_of]-> n*
      _p -[parent_of]-> x
      y:company -[parent_of]-> x
    }
  )");
  ASSERT_TRUE(key.ok());
  CheckTourInvariants(key->pattern);
}

TEST(Tour, CyclePattern) {
  auto key = ParseKey(R"(
    key K for t {
      x -[p]-> a:t2
      a -[q]-> b:t3
      b -[r]-> x
    }
  )");
  ASSERT_TRUE(key.ok());
  CheckTourInvariants(key->pattern);
}

TEST(Tour, IncomingEdgeAtX) {
  auto key = ParseKey(R"(
    key Q3 for artist {
      x -[name_of]-> n*
      y:album -[recorded_by]-> x
    }
  )");
  ASSERT_TRUE(key.ok());
  CheckTourInvariants(key->pattern);
}

TEST(Tour, SingleTriple) {
  auto key = ParseKey("key K for t {\n x -[p]-> v*\n}");
  ASSERT_TRUE(key.ok());
  CheckTourInvariants(key->pattern);
}

}  // namespace
}  // namespace gkeys
