// Signature-blocked candidate generation (EmOptions::use_blocking): the
// oracle guarantee is that blocking is output-preserving for every
// algorithm — it only removes pairs that are provably not directly
// identifiable — while slashing the enumerated candidate space, and that
// blocked pairs stay visible to ghost/dependency tracking.

#include <gtest/gtest.h>

#include "core/entity_matcher.h"
#include "gen/datasets.h"
#include "gen/synthetic.h"
#include "test_util.h"

namespace gkeys {
namespace {

using testing::MakeG1;
using testing::MakeG2;
using testing::MakeSigma1;
using testing::MakeSigma2;
using testing::Pairs;

const Algorithm kAllSix[] = {Algorithm::kNaiveChase, Algorithm::kEmMr,
                             Algorithm::kEmVf2Mr,    Algorithm::kEmOptMr,
                             Algorithm::kEmVc,       Algorithm::kEmOptVc};

/// Runs `algo` with blocking forced on/off and returns the pairs.
MatchResult RunWithBlocking(const Graph& g, const KeySet& keys,
                            Algorithm algo, bool blocking) {
  EmOptions opts = EmOptions::For(algo, 4);
  opts.use_blocking = blocking;
  return MatchEntities(g, keys, algo, opts);
}

TEST(Blocking, OracleValueBasedKeys) {
  // Purely value-based Σ: Q2 alone (name + year).
  auto m = MakeG1();
  KeySet keys;
  ASSERT_TRUE(keys.AddFromDsl(R"(
    key Q2 for album {
      x -[name_of]-> n*
      x -[release_year]-> yr*
    }
  )")
                  .ok());
  for (Algorithm a : kAllSix) {
    MatchResult blocked = RunWithBlocking(m.g, keys, a, true);
    MatchResult full = RunWithBlocking(m.g, keys, a, false);
    EXPECT_EQ(blocked.pairs, full.pairs) << AlgorithmName(a);
    EXPECT_EQ(blocked.pairs, Pairs({{m.alb1, m.alb2}})) << AlgorithmName(a);
  }
}

TEST(Blocking, OracleRecursiveKeys) {
  // Σ1 mixes value-based and mutually recursive keys (album ↔ artist).
  auto m = MakeG1();
  KeySet keys = MakeSigma1();
  for (Algorithm a : kAllSix) {
    MatchResult blocked = RunWithBlocking(m.g, keys, a, true);
    MatchResult full = RunWithBlocking(m.g, keys, a, false);
    EXPECT_EQ(blocked.pairs, full.pairs) << AlgorithmName(a);
    EXPECT_EQ(blocked.pairs,
              Pairs({{m.alb1, m.alb2}, {m.art1, m.art2}}))
        << AlgorithmName(a);
  }
}

TEST(Blocking, OracleWildcardAndConstantKeys) {
  // Σ2's Q4/Q5 bind value variables shared with wildcards; G2 exercises
  // merge/split identification through them.
  auto c = MakeG2();
  KeySet keys = MakeSigma2();
  for (Algorithm a : kAllSix) {
    MatchResult blocked = RunWithBlocking(c.g, keys, a, true);
    MatchResult full = RunWithBlocking(c.g, keys, a, false);
    EXPECT_EQ(blocked.pairs, full.pairs) << AlgorithmName(a);
  }
}

TEST(Blocking, OracleOnGeneratedWorkloads) {
  // Synthetic chains put the value terminals at radius d behind wildcard
  // hops (path signatures); the Google sim has direct value attributes.
  for (int c : {1, 2}) {
    for (int d : {1, 2}) {
      SyntheticConfig cfg;
      cfg.num_groups = 2;
      cfg.chain_length = c;
      cfg.radius = d;
      cfg.entities_per_type = 24;
      SyntheticDataset ds = GenerateSynthetic(cfg);
      for (Algorithm a : kAllSix) {
        MatchResult blocked = RunWithBlocking(ds.graph, ds.keys, a, true);
        EXPECT_EQ(blocked.pairs, ds.planted)
            << AlgorithmName(a) << " c=" << c << " d=" << d;
      }
    }
  }
  GoogleSimConfig gcfg;
  gcfg.scale = 1.0;
  SyntheticDataset google = GenerateGoogleSim(gcfg);
  for (Algorithm a : kAllSix) {
    MatchResult blocked = RunWithBlocking(google.graph, google.keys, a, true);
    MatchResult full = RunWithBlocking(google.graph, google.keys, a, false);
    EXPECT_EQ(blocked.pairs, full.pairs) << AlgorithmName(a);
  }
}

TEST(Blocking, CountsBlockedPairsAgainstTheFullEnumeration) {
  GoogleSimConfig cfg;
  cfg.scale = 1.0;
  SyntheticDataset ds = GenerateGoogleSim(cfg);
  MatchResult blocked =
      RunWithBlocking(ds.graph, ds.keys, Algorithm::kEmOptVc, true);
  MatchResult full =
      RunWithBlocking(ds.graph, ds.keys, Algorithm::kEmOptVc, false);
  EXPECT_GT(blocked.stats.candidates_blocked, 0u);
  EXPECT_LT(blocked.stats.candidates_initial, full.stats.candidates_initial);
  // Enumerated + blocked partition the full same-type pair space.
  EXPECT_EQ(blocked.stats.candidates_initial + blocked.stats.candidates_blocked,
            full.stats.candidates_initial);
  EXPECT_EQ(full.stats.candidates_blocked, 0u);
  EXPECT_EQ(blocked.pairs, full.pairs);
}

TEST(Blocking, BlockedPairsStillWakeDependentsTransitively) {
  // (a, c) shares NO value on either album key's most selective
  // signature (years for K1, labels for K2), so blocking excludes it from
  // L — yet it becomes equal transitively via (a,b) + (b,c), and the
  // artist pair whose recursive key waits on (a, c) must still fire.
  Graph g;
  NodeId a = g.AddEntity("album");
  NodeId b = g.AddEntity("album");
  NodeId c = g.AddEntity("album");
  NodeId n = g.AddValue("N");
  for (NodeId e : {a, b, c}) g.AddTriple(e, "name_of", n).IgnoreError();
  NodeId y1 = g.AddValue("Y");
  g.AddTriple(a, "release_year", y1).IgnoreError();
  g.AddTriple(b, "release_year", y1).IgnoreError();
  NodeId l = g.AddValue("L");
  g.AddTriple(b, "label", l).IgnoreError();
  g.AddTriple(c, "label", l).IgnoreError();
  NodeId r1 = g.AddEntity("artist");
  NodeId r2 = g.AddEntity("artist");
  NodeId an = g.AddValue("AN");
  g.AddTriple(r1, "name_of", an).IgnoreError();
  g.AddTriple(r2, "name_of", an).IgnoreError();
  g.AddTriple(a, "recorded_by", r1).IgnoreError();
  g.AddTriple(c, "recorded_by", r2).IgnoreError();
  g.Finalize();

  KeySet keys;
  ASSERT_TRUE(keys.AddFromDsl(R"(
    key K1 for album {
      x -[name_of]-> n*
      x -[release_year]-> y*
    }
    key K2 for album {
      x -[name_of]-> n*
      x -[label]-> l*
    }
    key K3 for artist {
      x -[name_of]-> n*
      y:album -[recorded_by]-> x
    }
  )")
                  .ok());

  auto expected =
      Pairs({{a, b}, {b, c}, {a, c}, {r1, r2}});
  for (Algorithm algo : kAllSix) {
    MatchResult r = RunWithBlocking(g, keys, algo, true);
    EXPECT_EQ(r.pairs, expected) << AlgorithmName(algo);
  }
  // The blocked (a, c) pair was never a candidate…
  MatchResult blocked = RunWithBlocking(g, keys, Algorithm::kEmOptMr, true);
  EXPECT_GT(blocked.stats.candidates_blocked, 0u);
}

}  // namespace
}  // namespace gkeys
