#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/neighborhood.h"

namespace gkeys {
namespace {

TEST(Graph, EntitiesAreDistinctNodes) {
  Graph g;
  NodeId a = g.AddEntity("artist");
  NodeId b = g.AddEntity("artist");
  EXPECT_NE(a, b);
  EXPECT_TRUE(g.IsEntity(a));
  EXPECT_EQ(g.entity_type(a), g.entity_type(b));
  EXPECT_EQ(g.NumEntities(), 2u);
}

TEST(Graph, EqualValuesShareOneNode) {
  Graph g;
  NodeId v1 = g.AddValue("1996");
  NodeId v2 = g.AddValue("1996");
  NodeId v3 = g.AddValue("1997");
  EXPECT_EQ(v1, v2);  // value equality => same node (paper §2.1)
  EXPECT_NE(v1, v3);
  EXPECT_TRUE(g.IsValue(v1));
  EXPECT_EQ(g.value_str(v1), "1996");
  EXPECT_EQ(g.NumValues(), 2u);
}

TEST(Graph, AddTripleRejectsValueSubject) {
  Graph g;
  NodeId v = g.AddValue("x");
  NodeId e = g.AddEntity("t");
  EXPECT_FALSE(g.AddTriple(v, "p", e).ok());
}

TEST(Graph, AddTripleRejectsOutOfRange) {
  Graph g;
  NodeId e = g.AddEntity("t");
  EXPECT_FALSE(g.AddTriple(e, "p", 999).ok());
  EXPECT_FALSE(g.AddTriple(999, "p", e).ok());
}

TEST(Graph, AdjacencyBothDirections) {
  Graph g;
  NodeId a = g.AddEntity("t");
  NodeId b = g.AddEntity("t");
  ASSERT_TRUE(g.AddTriple(a, "p", b).ok());
  g.Finalize();
  ASSERT_EQ(g.Out(a).size(), 1u);
  EXPECT_EQ(g.Out(a)[0].dst, b);
  ASSERT_EQ(g.In(b).size(), 1u);
  EXPECT_EQ(g.In(b)[0].dst, a);
  EXPECT_EQ(g.OutDegree(b), 0u);
}

TEST(Graph, FinalizeDeduplicatesParallelEdges) {
  Graph g;
  NodeId a = g.AddEntity("t");
  NodeId b = g.AddEntity("t");
  ASSERT_TRUE(g.AddTriple(a, "p", b).ok());
  ASSERT_TRUE(g.AddTriple(a, "p", b).ok());
  ASSERT_TRUE(g.AddTriple(a, "q", b).ok());
  g.Finalize();
  EXPECT_EQ(g.NumTriples(), 2u);  // (a,p,b) deduped; (a,q,b) kept
}

TEST(Graph, HasTripleBeforeAndAfterFinalize) {
  Graph g;
  NodeId a = g.AddEntity("t");
  NodeId b = g.AddEntity("t");
  Symbol p = g.Intern("p");
  ASSERT_TRUE(g.AddTriple(a, p, b).ok());
  EXPECT_TRUE(g.HasTriple(a, p, b));  // linear scan pre-finalize
  g.Finalize();
  EXPECT_TRUE(g.HasTriple(a, p, b));  // binary search post-finalize
  EXPECT_FALSE(g.HasTriple(b, p, a));
  EXPECT_FALSE(g.HasTriple(a, g.Intern("q"), b));
}

TEST(Graph, EntitiesOfTypeTracksInsertionOrder) {
  Graph g;
  NodeId a = g.AddEntity("album");
  g.AddEntity("artist");
  NodeId c = g.AddEntity("album");
  auto albums = g.EntitiesOfType(g.Intern("album"));
  ASSERT_EQ(albums.size(), 2u);
  EXPECT_EQ(albums[0], a);
  EXPECT_EQ(albums[1], c);
  EXPECT_TRUE(g.EntitiesOfType(g.Intern("ghost")).empty());
}

TEST(Graph, FindValue) {
  Graph g;
  NodeId v = g.AddValue("hello");
  EXPECT_EQ(g.FindValue("hello"), v);
  EXPECT_EQ(g.FindValue("nope"), kNoNode);
}

TEST(Graph, EntityTypesSortedUnique) {
  Graph g;
  g.AddEntity("b");
  g.AddEntity("a");
  g.AddEntity("b");
  auto types = g.EntityTypes();
  ASSERT_EQ(types.size(), 2u);
  EXPECT_LT(types[0], types[1]);
}

TEST(Graph, ForEachTripleVisitsAll) {
  Graph g;
  NodeId a = g.AddEntity("t");
  NodeId b = g.AddEntity("t");
  NodeId v = g.AddValue("1");
  ASSERT_TRUE(g.AddTriple(a, "p", b).ok());
  ASSERT_TRUE(g.AddTriple(b, "q", v).ok());
  g.Finalize();
  size_t count = 0;
  g.ForEachTriple([&](const Triple&) { ++count; });
  EXPECT_EQ(count, g.NumTriples());
  EXPECT_EQ(count, 2u);
}

TEST(Graph, DescribeNode) {
  Graph g;
  NodeId e = g.AddEntity("album");
  NodeId v = g.AddValue("xyz");
  EXPECT_EQ(g.DescribeNode(e), "album#0");
  EXPECT_EQ(g.DescribeNode(v), "\"xyz\"");
}

// ---- d-neighbors ----

// Path a -p-> b -p-> c -p-> d; neighbors measured from b.
struct PathGraph {
  Graph g;
  NodeId a, b, c, d;
};

PathGraph MakePath() {
  PathGraph p;
  p.a = p.g.AddEntity("t");
  p.b = p.g.AddEntity("t");
  p.c = p.g.AddEntity("t");
  p.d = p.g.AddEntity("t");
  p.g.AddTriple(p.a, "p", p.b).IgnoreError();
  p.g.AddTriple(p.b, "p", p.c).IgnoreError();
  p.g.AddTriple(p.c, "p", p.d).IgnoreError();
  p.g.Finalize();
  return p;
}

TEST(DNeighbor, ZeroHopsIsJustTheCenter) {
  PathGraph p = MakePath();
  NodeSet n = DNeighbor(p.g, p.b, 0);
  EXPECT_EQ(n.size(), 1u);
  EXPECT_TRUE(n.Contains(p.b));
}

TEST(DNeighbor, CountsHopsIgnoringDirection) {
  PathGraph p = MakePath();
  NodeSet n1 = DNeighbor(p.g, p.b, 1);
  // b's 1-neighborhood: a (incoming) + c (outgoing) + b itself.
  EXPECT_EQ(n1.size(), 3u);
  EXPECT_TRUE(n1.Contains(p.a));
  EXPECT_TRUE(n1.Contains(p.c));
  EXPECT_FALSE(n1.Contains(p.d));
  NodeSet n2 = DNeighbor(p.g, p.b, 2);
  EXPECT_EQ(n2.size(), 4u);
  EXPECT_TRUE(n2.Contains(p.d));
}

TEST(DNeighbor, LargeDCoversComponentOnly) {
  PathGraph p = MakePath();
  NodeId isolated = p.g.AddEntity("t");
  p.g.Finalize();
  NodeSet n = DNeighbor(p.g, p.b, 100);
  EXPECT_EQ(n.size(), 4u);
  EXPECT_FALSE(n.Contains(isolated));
}

TEST(NodeSet, SetOperations) {
  NodeSet a(std::vector<NodeId>{1, 2, 3});
  NodeSet b(std::vector<NodeId>{2, 3, 4});
  NodeSet u = a;
  u.UnionWith(b);
  EXPECT_EQ(u.size(), 4u);
  NodeSet i = a;
  i.IntersectWith(b);
  EXPECT_EQ(i.size(), 2u);
  EXPECT_TRUE(i.Contains(2));
  EXPECT_FALSE(i.Contains(1));
}

TEST(InducedTripleCount, CountsOnlyInsideTriples) {
  PathGraph p = MakePath();
  NodeSet inside(std::vector<NodeId>{p.a, p.b, p.c});
  // Induced: (a,p,b), (b,p,c) — (c,p,d) leaves the set.
  EXPECT_EQ(InducedTripleCount(p.g, inside), 2u);
}

}  // namespace
}  // namespace gkeys
