// Randomized property tests over generated workloads: the paper's
// meta-theorems checked on many random instances via parameterized sweeps.

#include <gtest/gtest.h>

#include "core/entity_matcher.h"
#include "gen/synthetic.h"
#include "isomorph/pairing.h"
#include "isomorph/vf2.h"

namespace gkeys {
namespace {

struct WorkloadParam {
  uint64_t seed;
  int groups;
  int chain;
  int radius;
  int entities;
};

std::string WorkloadName(const ::testing::TestParamInfo<WorkloadParam>& i) {
  return "s" + std::to_string(i.param.seed) + "_g" +
         std::to_string(i.param.groups) + "_c" +
         std::to_string(i.param.chain) + "_d" +
         std::to_string(i.param.radius) + "_n" +
         std::to_string(i.param.entities);
}

class WorkloadProperty : public ::testing::TestWithParam<WorkloadParam> {
 protected:
  SyntheticDataset MakeDataset() const {
    SyntheticConfig cfg;
    cfg.seed = GetParam().seed;
    cfg.num_groups = GetParam().groups;
    cfg.chain_length = GetParam().chain;
    cfg.radius = GetParam().radius;
    cfg.entities_per_type = GetParam().entities;
    return GenerateSynthetic(cfg);
  }
};

TEST_P(WorkloadProperty, ChaseEqualsPlanted) {
  SyntheticDataset ds = MakeDataset();
  EXPECT_EQ(Chase(ds.graph, ds.keys).pairs, ds.planted);
}

TEST_P(WorkloadProperty, ChurchRosser) {
  SyntheticDataset ds = MakeDataset();
  ChaseOptions shuffled;
  shuffled.shuffle_seed = GetParam().seed * 31 + 7;
  EXPECT_EQ(Chase(ds.graph, ds.keys, shuffled).pairs, ds.planted);
}

TEST_P(WorkloadProperty, ParallelAlgorithmsAgree) {
  SyntheticDataset ds = MakeDataset();
  for (Algorithm a : {Algorithm::kEmOptMr, Algorithm::kEmOptVc}) {
    EXPECT_EQ(MatchEntities(ds.graph, ds.keys, a, 4).pairs, ds.planted)
        << AlgorithmName(a);
  }
}

TEST_P(WorkloadProperty, PairingIsNecessary) {
  // Prop. 9(a): an unpairable pair is never identified. Equivalently the
  // identified pairs must all be paired by some key.
  SyntheticDataset ds = MakeDataset();
  EmOptions opts;
  EmContext ctx(ds.graph, ds.keys, opts);
  EquivalenceRelation final_eq(ds.graph.NumNodes());
  for (auto [a, b] : ds.planted) final_eq.Union(a, b);
  for (const Candidate& c : ctx.candidates()) {
    if (!final_eq.Same(c.e1, c.e2)) continue;  // only identified pairs
    bool paired = false;
    for (int ki : *c.keys) {
      if (ComputeMaxPairing(ds.graph, ctx.compiled_keys()[ki].cp, c.e1,
                            c.e2, *c.nbr1, *c.nbr2)
              .paired) {
        paired = true;
        break;
      }
    }
    EXPECT_TRUE(paired) << "identified pair (" << c.e1 << "," << c.e2
                        << ") must be pairable";
  }
}

TEST_P(WorkloadProperty, EvalSearchAgreesWithVf2Enumeration) {
  // Lemma 8 on random instances: the combined early-terminating search
  // decides exactly like full enumeration + coincidence, under the final
  // (hardest) Eq.
  SyntheticDataset ds = MakeDataset();
  EmOptions opts;
  EmContext ctx(ds.graph, ds.keys, opts);
  EquivalenceRelation eq(ds.graph.NumNodes());
  for (auto [a, b] : ds.planted) eq.Union(a, b);
  EqView view(&eq);
  size_t checked = 0;
  for (const Candidate& c : ctx.candidates()) {
    if (++checked > 300) break;  // cap work per instance
    for (int ki : *c.keys) {
      const CompiledPattern& cp = ctx.compiled_keys()[ki].cp;
      EXPECT_EQ(
          KeyIdentifies(ds.graph, cp, c.e1, c.e2, view, c.nbr1, c.nbr2),
          IdentifiesByEnumeration(ds.graph, cp, c.e1, c.e2, view, c.nbr1,
                                  c.nbr2))
          << "pair (" << c.e1 << "," << c.e2 << ") key " << ki;
    }
  }
}

TEST_P(WorkloadProperty, MonotoneInEq) {
  // Chase steps only ever add pairs: running entity matching on a graph
  // whose planted pairs are pre-merged must still be a fixpoint (nothing
  // new appears, nothing disappears).
  SyntheticDataset ds = MakeDataset();
  EmOptions opts;
  EmContext ctx(ds.graph, ds.keys, opts);
  EquivalenceRelation eq(ds.graph.NumNodes());
  for (auto [a, b] : ds.planted) eq.Union(a, b);
  EqView view(&eq);
  for (const Candidate& c : ctx.candidates()) {
    if (eq.Same(c.e1, c.e2)) continue;
    EXPECT_FALSE(ctx.Identifies(c, view))
        << "fixpoint must be stable: (" << c.e1 << "," << c.e2 << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WorkloadProperty,
    ::testing::Values(WorkloadParam{1, 1, 1, 1, 10},
                      WorkloadParam{2, 2, 2, 1, 12},
                      WorkloadParam{3, 2, 2, 2, 12},
                      WorkloadParam{4, 1, 3, 2, 14},
                      WorkloadParam{5, 3, 1, 3, 10},
                      WorkloadParam{6, 2, 4, 1, 10},
                      WorkloadParam{7, 1, 2, 3, 16},
                      WorkloadParam{8, 4, 2, 2, 8}),
    WorkloadName);

}  // namespace
}  // namespace gkeys
