#include "common/endian.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace gkeys {
namespace {

TEST(EndianTest, Be32RoundTrip) {
  for (uint32_t v : {0u, 1u, 0x7Fu, 0x80u, 0x1234u, 0xDEADBEEFu,
                     std::numeric_limits<uint32_t>::max()}) {
    std::string s;
    PutBe32(s, v);
    ASSERT_EQ(s.size(), 4u);
    EXPECT_EQ(GetBe32(s.data()), v);
  }
}

TEST(EndianTest, Be64RoundTrip) {
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{0xFF},
                     uint64_t{0x123456789ABCDEF0},
                     std::numeric_limits<uint64_t>::max()}) {
    std::string s;
    PutBe64(s, v);
    ASSERT_EQ(s.size(), 8u);
    EXPECT_EQ(GetBe64(s.data()), v);
  }
}

TEST(EndianTest, Be32IsBigEndian) {
  std::string s;
  PutBe32(s, 0x01020304u);
  EXPECT_EQ(s, std::string("\x01\x02\x03\x04", 4));
}

TEST(EndianTest, BigEndianKeysSortNumerically) {
  // The property the ordered-KV key layout relies on: byte order of
  // encoded keys equals numeric order.
  std::vector<uint64_t> values = {0, 1, 2, 255, 256, 65535, 65536,
                                  uint64_t{1} << 32, uint64_t{1} << 63};
  std::string prev;
  for (uint64_t v : values) {
    std::string cur;
    PutBe64(cur, v);
    if (!prev.empty()) {
      EXPECT_LT(prev, cur) << "at value " << v;
    }
    prev = cur;
  }
}

TEST(EndianTest, VarintRoundTrip) {
  std::vector<uint64_t> values = {0,    1,    127,        128,
                                  129,  300,  16383,      16384,
                                  1u << 20, uint64_t{1} << 35,
                                  std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : values) {
    std::string s;
    PutVarint(s, v);
    uint64_t decoded = 0;
    const char* end = GetVarint(s.data(), s.data() + s.size(), &decoded);
    ASSERT_NE(end, nullptr) << v;
    EXPECT_EQ(end, s.data() + s.size()) << v;
    EXPECT_EQ(decoded, v);
  }
}

TEST(EndianTest, VarintSingleByteForSmallValues) {
  std::string s;
  PutVarint(s, 127);
  EXPECT_EQ(s.size(), 1u);
  s.clear();
  PutVarint(s, 128);
  EXPECT_EQ(s.size(), 2u);
}

TEST(EndianTest, VarintTruncatedFails) {
  std::string s;
  PutVarint(s, uint64_t{1} << 40);
  for (size_t cut = 0; cut + 1 < s.size(); ++cut) {
    uint64_t v = 0;
    EXPECT_EQ(GetVarint(s.data(), s.data() + cut, &v), nullptr)
        << "cut at " << cut;
  }
}

TEST(EndianTest, VarintOverlongFails) {
  std::string s(11, '\x80');  // 11 continuation bytes: > max 10-byte varint
  uint64_t v = 0;
  EXPECT_EQ(GetVarint(s.data(), s.data() + s.size(), &v), nullptr);
}

TEST(ByteReaderTest, SequentialReads) {
  std::string s;
  s.push_back('\x2A');
  PutBe32(s, 0xCAFEBABEu);
  PutBe64(s, 42);
  PutVarint(s, 300);
  PutVarint(s, 7);
  s += "hello";

  ByteReader r(s);
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  std::string_view bytes;
  ASSERT_TRUE(r.ReadU8(&u8));
  EXPECT_EQ(u8, 0x2A);
  ASSERT_TRUE(r.ReadBe32(&u32));
  EXPECT_EQ(u32, 0xCAFEBABEu);
  ASSERT_TRUE(r.ReadBe64(&u64));
  EXPECT_EQ(u64, 42u);
  ASSERT_TRUE(r.ReadVarint(&u64));
  EXPECT_EQ(u64, 300u);
  ASSERT_TRUE(r.ReadVarint32(&u32));
  EXPECT_EQ(u32, 7u);
  ASSERT_TRUE(r.ReadBytes(5, &bytes));
  EXPECT_EQ(bytes, "hello");
  EXPECT_TRUE(r.AtEnd());
  EXPECT_TRUE(r.ok());
}

TEST(ByteReaderTest, TruncationFailsAndStaysFailed) {
  std::string s;
  PutBe32(s, 1);
  ByteReader r(s);
  uint64_t u64 = 0;
  EXPECT_FALSE(r.ReadBe64(&u64));  // only 4 bytes present
  EXPECT_FALSE(r.ok());
  uint8_t u8 = 0;
  EXPECT_FALSE(r.ReadU8(&u8));  // failed readers refuse further reads
}

TEST(ByteReaderTest, Varint32RejectsWideValues) {
  std::string s;
  PutVarint(s, uint64_t{1} << 40);
  ByteReader r(s);
  uint32_t v = 0;
  EXPECT_FALSE(r.ReadVarint32(&v));
  EXPECT_FALSE(r.ok());
}

TEST(ByteReaderTest, ReadBytesPastEndFails) {
  ByteReader r("abc");
  std::string_view bytes;
  EXPECT_FALSE(r.ReadBytes(4, &bytes));
}

TEST(ByteReaderTest, EmptyInput) {
  ByteReader r("");
  EXPECT_TRUE(r.AtEnd());
  uint8_t v = 0;
  EXPECT_FALSE(r.ReadU8(&v));
}

}  // namespace
}  // namespace gkeys
