// High-throughput ingest equivalence suite (docs/ARCHITECTURE.md
// "Ingest pipeline"):
//   (a) the chunked fast-path parsers (io/fast_triples.h) against the
//       scalar oracles (io/triples.h) — identical output on every
//       accepted input, error-for-error agreement on mangled input,
//       property-tested over random valid and byte-flipped texts;
//   (b) sharded derivation/merge logs against the single global log
//       across all six algorithms;
//   (c) the staged ingest pipeline against the serial
//       parse → Apply → Patch → Rematch chain, batch for batch,
//       including mid-stream parse errors and cancellation.

#include "io/fast_triples.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/matcher.h"
#include "core/provenance.h"
#include "gen/synthetic.h"
#include "graph/delta.h"
#include "io/triples.h"
#include "test_util.h"

namespace gkeys {
namespace {

// ---------------------------------------------------------------------------
// (a) fast parser == scalar oracle
// ---------------------------------------------------------------------------

/// Asserts the two graph parses agree completely: acceptance, NodeIds
/// (via re-serialization, which is NodeId- and interner-order
/// sensitive), and the entity binding table.
void ExpectSameGraphParse(std::string_view text, int num_threads) {
  auto scalar = DeserializeGraphWithNames(text);
  auto fast = FastDeserializeGraphWithNames(text, num_threads);
  ASSERT_EQ(scalar.ok(), fast.ok())
      << "scalar: " << scalar.status().ToString()
      << " fast: " << fast.status().ToString();
  if (!scalar.ok()) {
    EXPECT_EQ(scalar.status().ToString(), fast.status().ToString());
    return;
  }
  EXPECT_EQ(SerializeGraph(scalar->graph), SerializeGraph(fast->graph));
  EXPECT_EQ(scalar->graph.NumNodes(), fast->graph.NumNodes());
  EXPECT_EQ(scalar->entities, fast->entities);
}

/// Extracts the 1-based line number from a parser error message
/// ("line N: ..." / "delta line N: ..."), or -1.
int ErrorLineOf(const Status& st) {
  const std::string& msg = st.message();
  size_t at = msg.find("line ");
  if (at == std::string::npos) return -1;
  return std::atoi(msg.c_str() + at + 5);
}

/// Delta parses must agree on acceptance, staged content (compared by
/// applying to graph copies and re-serializing), and new bindings. On
/// rejection both paths must name the same line (messages may name a
/// different field of that line — documented in io/fast_triples.h).
void ExpectSameDeltaParse(std::string_view delta_text, const LoadedGraph& lg,
                          int num_threads) {
  std::unordered_map<std::string, NodeId> scalar_bindings, fast_bindings;
  auto scalar =
      ParseDelta(delta_text, lg.graph, lg.entities, &scalar_bindings);
  auto fast = FastParseDelta(delta_text, lg.graph, lg.entities,
                             &fast_bindings, num_threads);
  ASSERT_EQ(scalar.ok(), fast.ok())
      << "scalar: " << scalar.status().ToString()
      << " fast: " << fast.status().ToString();
  if (!scalar.ok()) {
    EXPECT_EQ(scalar.status().code(), fast.status().code());
    EXPECT_EQ(ErrorLineOf(scalar.status()), ErrorLineOf(fast.status()));
    return;
  }
  EXPECT_EQ(scalar->num_added_triples(), fast->num_added_triples());
  EXPECT_EQ(scalar->num_removed_triples(), fast->num_removed_triples());
  Graph a = lg.graph;
  Graph b = lg.graph;
  auto da = a.Apply(*scalar);
  auto db = b.Apply(*fast);
  ASSERT_EQ(da.ok(), db.ok());
  if (da.ok()) {
    EXPECT_EQ(SerializeGraph(a), SerializeGraph(b));
  }
  EXPECT_EQ(scalar_bindings, fast_bindings);
}

TEST(FastParser, GraphMusicRoundTrip) {
  auto m = testing::MakeG1();
  std::string text = SerializeGraph(m.g);
  for (int threads : {1, 2, 4}) ExpectSameGraphParse(text, threads);
}

TEST(FastParser, GraphSyntheticLargeChunked) {
  SyntheticConfig cfg;
  cfg.entities_per_type = 400;
  SyntheticDataset ds = GenerateSynthetic(cfg);
  std::string text = SerializeGraph(ds.graph);
  // Large enough that num_threads > 1 actually takes the chunked path
  // (io/fast_triples.cc gates it at 64 KiB).
  ASSERT_GT(text.size(), size_t{1} << 16);
  for (int threads : {1, 2, 3, 8}) ExpectSameGraphParse(text, threads);
}

TEST(FastParser, GraphQuirks) {
  // The scalar grammar's corners, accepted and rejected alike: escapes,
  // lone trailing backslash, @exists with an unvalidated object, empty
  // ids, comments, blank lines, values with spaces.
  const char* cases[] = {
      "",
      "# only a comment\n",
      "ent:artist:0 name_of val:\"A B  C\"\n",
      "ent:artist:0 name_of val:\"esc \\\" quote\\\\\"\n",
      "ent:artist:0 name_of val:\"trailing\\\"\n",
      "ent:artist:0 @exists anything-goes-here\n",
      "ent:artist:0 @exists\n",            // 2 fields only: rejected
      "ent:artist: name_of val:\"x\"\n",   // empty id: graph format accepts
      "ent:artist name_of val:\"x\"\n",    // no id separator: rejected
      "ent::3 name_of val:\"x\"\n",        // empty type: rejected
      "val:\"a\" p val:\"b\"\n",           // value subject: accepted
      "ent:a:0  doublespace val:\"x\"\n",  // empty predicate: accepted
      "ent:a:0 p val:\"unterminated\n",
      "bogus p val:\"x\"\n",
      "ent:a:0 p\n",
      "ent:a:0 p ent:a:0\nent:a:0 p ent:a:0\n",  // duplicate triple
      "ent:a:0 p val:\"x\"",                     // no trailing newline
      "ent:a:0 p val:\"x\"\r\nent:a:1 p val:\"x\"\r\n",  // CRLF
      "# c\r\n\r\nent:a:0 p val:\"x\"\r",                // stray final CR
  };
  for (const char* text : cases) {
    SCOPED_TRACE(std::string("text: ") + text);
    for (int threads : {1, 4}) ExpectSameGraphParse(text, threads);
  }
}

TEST(FastParser, CrlfEqualsLf) {
  auto m = testing::MakeG1();
  std::string lf = SerializeGraph(m.g);
  std::string crlf;
  for (char c : lf) {
    if (c == '\n') crlf.push_back('\r');
    crlf.push_back(c);
  }
  // Drop the final newline too: both robustness fixes at once.
  std::string crlf_no_tail = crlf.substr(0, crlf.size() - 2);
  for (const std::string& variant : {crlf, crlf_no_tail}) {
    auto from_lf = DeserializeGraphWithNames(lf);
    auto scalar = DeserializeGraphWithNames(variant);
    auto fast = FastDeserializeGraphWithNames(variant, 2);
    ASSERT_TRUE(from_lf.ok());
    ASSERT_TRUE(scalar.ok()) << scalar.status().ToString();
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    EXPECT_EQ(SerializeGraph(scalar->graph), SerializeGraph(from_lf->graph));
    EXPECT_EQ(SerializeGraph(fast->graph), SerializeGraph(from_lf->graph));
  }
}

/// A random syntactically valid delta against `lg`: additions of new
/// triples (sometimes through brand-new entities), removals of present
/// triples, comments, and CRLF line endings sprinkled in.
std::string RandomDeltaText(const LoadedGraph& lg, Rng& rng, size_t ops) {
  std::vector<std::string> ent_tokens;
  for (const auto& [token, id] : lg.entities) ent_tokens.push_back(token);
  std::sort(ent_tokens.begin(), ent_tokens.end());
  std::vector<Triple> triples;
  lg.graph.ForEachTriple([&](const Triple& t) { triples.push_back(t); });
  std::unordered_map<NodeId, std::string> token_of;
  for (const auto& [token, id] : lg.entities) token_of[id] = token;

  std::string out;
  for (size_t i = 0; i < ops; ++i) {
    switch (rng.Below(6)) {
      case 0:
        out += "# comment\n";
        break;
      case 1: {  // new entity with a value edge
        out += "+ ent:artist:new" + std::to_string(rng.Below(8)) +
               " name_of val:\"v" + std::to_string(rng.Below(16)) + "\"\n";
        break;
      }
      case 2: {  // edge between existing entities
        if (ent_tokens.empty()) break;
        out += "+ " + ent_tokens[rng.Below(ent_tokens.size())] + " linked " +
               ent_tokens[rng.Below(ent_tokens.size())] + "\n";
        break;
      }
      case 3: {  // value edge with escapes
        if (ent_tokens.empty()) break;
        out += "+ " + ent_tokens[rng.Below(ent_tokens.size())] +
               " tagged val:\"a\\\"b\\\\c " + std::to_string(rng.Below(9)) +
               "\"\n";
        break;
      }
      default: {  // removal of a present entity→value triple
        if (triples.empty()) break;
        const Triple& t = triples[rng.Below(triples.size())];
        auto s_tok = token_of.find(t.subject);
        if (s_tok == token_of.end() || !lg.graph.IsValue(t.object)) break;
        std::string lit;
        for (char c : lg.graph.value_str(t.object)) {
          if (c == '"' || c == '\\') lit.push_back('\\');
          lit.push_back(c);
        }
        out += "- " + s_tok->second + " " +
               lg.graph.interner().Resolve(t.pred) + " val:\"" + lit +
               "\"\n";
        break;
      }
    }
    if (rng.Chance(0.1) && !out.empty() && out.back() == '\n') {
      out.back() = '\r';
      out.push_back('\n');
    }
  }
  return out;
}

TEST(FastParser, DeltaPropertyRandomValid) {
  auto m = testing::MakeG1();
  auto lg = DeserializeGraphWithNames(SerializeGraph(m.g));
  ASSERT_TRUE(lg.ok());
  Rng rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    std::string text = RandomDeltaText(*lg, rng, 1 + rng.Below(20));
    SCOPED_TRACE("trial " + std::to_string(trial) + "\n" + text);
    ExpectSameDeltaParse(text, *lg, trial % 2 == 0 ? 1 : 4);
  }
}

TEST(FastParser, DeltaQuirks) {
  auto m = testing::MakeG1();
  auto lg = DeserializeGraphWithNames(SerializeGraph(m.g));
  ASSERT_TRUE(lg.ok());
  const char* cases[] = {
      "",
      "# nothing\n",
      "+ ent:artist:0 p val:\"x\"\n",
      "+ ent:artist:9 p val:\"x\"\n",    // unseen token: stages new entity
      "- ent:artist:9 p val:\"x\"\n",    // unknown entity removal: rejected
      "- ent:artist:0 name_of val:\"The Beatles\"\n",
      "- ent:artist:0 name_of val:\"NoSuchValue\"\n",  // unknown value
      "- ent:artist:0 bogus_pred val:\"The Beatles\"\n",
      "+ ent:artist: p val:\"x\"\n",     // empty id: delta format rejects
      "+ ent::3 p val:\"x\"\n",          // empty type: rejected
      "+ ent:artist:0  p val:\"x\"\n",   // empty predicate: rejected
      "+ ent:artist:0 p val:\"x\"",      // no trailing newline
      "+ ent:artist:0 p val:\"x\"\r\n",  // CRLF
      "* ent:artist:0 p val:\"x\"\n",    // bad op
      "+ent:artist:0 p val:\"x\"\n",     // missing space after op
      "+ ent:artist:0 p\n",              // 2 fields
      "+ bogus p val:\"x\"\n",
      "+ ent:artist:0 p val:\"open\n",
      "+ val:\"a\" p val:\"b\"\n",       // value subject in a delta
      "- val:\"The Beatles\" x val:\"1996\"\n",
  };
  for (const char* text : cases) {
    SCOPED_TRACE(std::string("text: ") + text);
    ExpectSameDeltaParse(text, *lg, 1);
    ExpectSameDeltaParse(text, *lg, 4);
  }
}

TEST(FastParser, FuzzGraphByteFlips) {
  SyntheticConfig cfg;
  cfg.entities_per_type = 60;
  SyntheticDataset ds = GenerateSynthetic(cfg);
  std::string base = SerializeGraph(ds.graph);
  Rng rng(1234);
  for (int trial = 0; trial < 120; ++trial) {
    std::string mangled = base;
    size_t flips = 1 + rng.Below(4);
    for (size_t f = 0; f < flips; ++f) {
      mangled[rng.Below(mangled.size())] =
          static_cast<char>(rng.Below(256));
    }
    SCOPED_TRACE("trial " + std::to_string(trial));
    ExpectSameGraphParse(mangled, trial % 3 == 0 ? 4 : 1);
  }
}

TEST(FastParser, FuzzDeltaByteFlips) {
  auto m = testing::MakeG1();
  auto lg = DeserializeGraphWithNames(SerializeGraph(m.g));
  ASSERT_TRUE(lg.ok());
  Rng rng(99);
  std::string base = RandomDeltaText(*lg, rng, 24);
  ASSERT_FALSE(base.empty());
  for (int trial = 0; trial < 200; ++trial) {
    std::string mangled = base;
    size_t flips = 1 + rng.Below(3);
    for (size_t f = 0; f < flips; ++f) {
      mangled[rng.Below(mangled.size())] =
          static_cast<char>(rng.Below(256));
    }
    SCOPED_TRACE("trial " + std::to_string(trial));
    ExpectSameDeltaParse(mangled, *lg, trial % 2 == 0 ? 1 : 2);
  }
}

// ---------------------------------------------------------------------------
// (b) sharded logs == global log
// ---------------------------------------------------------------------------

const std::vector<Algorithm>& AllAlgorithms() {
  static const std::vector<Algorithm> algos = {
      Algorithm::kNaiveChase, Algorithm::kEmMr,  Algorithm::kEmVf2Mr,
      Algorithm::kEmOptMr,    Algorithm::kEmVc,  Algorithm::kEmOptVc};
  return algos;
}

SyntheticDataset ShardWorkload(uint64_t seed) {
  SyntheticConfig cfg;
  cfg.seed = seed;
  cfg.num_groups = 2;
  cfg.chain_length = 2;
  cfg.radius = 2;
  cfg.entities_per_type = 18;
  return GenerateSynthetic(cfg);
}

std::string DerivationToString(const Derivation& d) {
  std::string s = std::to_string(d.e1) + "," + std::to_string(d.e2) + ",k" +
                  std::to_string(d.key) + ";";
  for (const auto& [a, b] : d.premises) {
    s += std::to_string(a) + "-" + std::to_string(b) + " ";
  }
  s += ";";
  for (const WitnessTriple& t : d.triples) {
    s += std::to_string(t.s) + "." + std::to_string(t.p) + "." +
         std::to_string(t.o) + " ";
  }
  return s;
}

std::vector<std::string> DerivationStrings(
    const std::vector<Derivation>& ds) {
  std::vector<std::string> out;
  out.reserve(ds.size());
  for (const Derivation& d : ds) out.push_back(DerivationToString(d));
  return out;
}

TEST(ShardedLogs, PairsAndClosureMatchGlobalAllAlgorithms) {
  // Multi-threaded runs: the pair set is schedule-independent, so the
  // global log (shards=1) and the sharded logs (auto and 4) must produce
  // byte-identical pairs; the recorded derivations, whatever schedule
  // produced them, must close to exactly those pairs with nothing
  // retracted on the unchanged graph (i.e. stamp-merged shard order is
  // replayable, same as the global mutex order).
  SyntheticDataset ds = ShardWorkload(21);
  for (Algorithm algo : AllAlgorithms()) {
    SCOPED_TRACE(AlgorithmName(algo));
    auto plan = Matcher::Compile(ds.graph, ds.keys, PlanOptions::For(algo, 2));
    ASSERT_TRUE(plan.ok());
    auto global = Matcher(algo).processors(2).log_shards(1).Run(*plan);
    ASSERT_TRUE(global.ok());
    ASSERT_FALSE(global->pairs.empty()) << "workload too boring";
    for (int shards : {0, 4}) {
      SCOPED_TRACE("shards " + std::to_string(shards));
      auto sharded = Matcher(algo).processors(2).log_shards(shards).Run(*plan);
      ASSERT_TRUE(sharded.ok());
      EXPECT_EQ(global->pairs, sharded->pairs);
      RetractionResult retr =
          RetractDerivations(ds.graph, sharded->derivations);
      EXPECT_EQ(retr.retracted, 0u);
      EXPECT_EQ(retr.seed_pairs, sharded->pairs);
    }
  }
}

TEST(ShardedLogs, DerivationSequenceMatchesGlobalSingleThreaded) {
  // p=1 pins the schedule, so the sharded log must reproduce the EXACT
  // derivation sequence (order included) the global log records: one
  // thread always lands on one shard, and the stamp merge preserves its
  // record order.
  SyntheticDataset ds = ShardWorkload(22);
  for (Algorithm algo : AllAlgorithms()) {
    SCOPED_TRACE(AlgorithmName(algo));
    auto plan = Matcher::Compile(ds.graph, ds.keys, PlanOptions::For(algo, 1));
    ASSERT_TRUE(plan.ok());
    auto global = Matcher(algo).processors(1).log_shards(1).Run(*plan);
    auto sharded = Matcher(algo).processors(1).log_shards(4).Run(*plan);
    ASSERT_TRUE(global.ok());
    ASSERT_TRUE(sharded.ok());
    EXPECT_EQ(global->pairs, sharded->pairs);
    EXPECT_FALSE(global->derivations.empty());
    EXPECT_EQ(DerivationStrings(global->derivations),
              DerivationStrings(sharded->derivations));
  }
}

TEST(ShardedLogs, RematchRemovalsStayExactWithShardedLogs) {
  // Incremental path: a removal delta seeds from the provenance index
  // that a SHARDED log recorded (forced seeded, so the retraction really
  // runs). The result must be byte-identical to a from-scratch run on
  // the mutated graph, for the global log and a sharded one alike.
  SyntheticDataset ds = ShardWorkload(23);
  for (int shards : {1, 4}) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    Graph g = ds.graph;
    std::vector<Triple> present;
    g.ForEachTriple([&](const Triple& t) { present.push_back(t); });
    Matcher matcher(Algorithm::kEmOptVc);
    matcher.processors(2).log_shards(shards).rematch_mode(
        RematchOptions::Mode::kForceSeed);
    auto plan = Matcher::Compile(g, ds.keys,
                                 PlanOptions::For(Algorithm::kEmOptVc, 2));
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    auto r = matcher.Run(*plan);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_FALSE(r->pairs.empty()) << "workload too boring";

    GraphDelta delta(g);
    Rng rng(5);
    for (int i = 0; i < 8 && !present.empty(); ++i) {
      size_t pick = rng.Below(present.size());
      const Triple t = present[pick];
      ASSERT_TRUE(delta
                      .RemoveTriple(t.subject, g.interner().Resolve(t.pred),
                                    t.object)
                      .ok());
      present.erase(present.begin() + pick);
    }
    ASSERT_TRUE(delta.has_removals());
    ASSERT_TRUE(g.Apply(delta).ok());
    auto patched = plan->Patch(delta);
    ASSERT_TRUE(patched.ok()) << patched.status().ToString();
    auto inc = matcher.Rematch(*patched, *r, delta);
    ASSERT_TRUE(inc.ok()) << inc.status().ToString();
    EXPECT_EQ(inc->stats.rematch_fallback, 0u);

    auto scratch_plan = Matcher::Compile(
        g, ds.keys, PlanOptions::For(Algorithm::kEmOptVc, 2));
    ASSERT_TRUE(scratch_plan.ok());
    auto scratch = matcher.Run(*scratch_plan);
    ASSERT_TRUE(scratch.ok());
    EXPECT_EQ(inc->pairs, scratch->pairs);
  }
}

// ---------------------------------------------------------------------------
// (c) staged pipeline == serial chain
// ---------------------------------------------------------------------------

/// One batch's committed outcome, captured identically from the serial
/// oracle and the pipeline observer: the full serialized graph (NodeId-
/// and interner-order sensitive) plus the result pairs.
struct BatchOutcome {
  std::string graph;
  std::vector<std::pair<NodeId, NodeId>> pairs;
};

bool operator==(const BatchOutcome& a, const BatchOutcome& b) {
  return a.graph == b.graph && a.pairs == b.pairs;
}

/// A live in-memory ingest session (graph + plan + result + bindings)
/// rooted at ShardWorkload(seed)'s graph, compiled for EMOptVC.
struct PipeFixture {
  LoadedGraph lg;
  KeySet keys;
  MatchPlan plan;
  MatchResult result;
  Matcher matcher{Algorithm::kEmOptVc};

  static PipeFixture Make(uint64_t seed) {
    SyntheticDataset ds = ShardWorkload(seed);
    auto lg = DeserializeGraphWithNames(SerializeGraph(ds.graph));
    EXPECT_TRUE(lg.ok());
    PipeFixture f;
    f.lg = *std::move(lg);
    f.keys = std::move(ds.keys);
    auto plan = Matcher::Compile(f.lg.graph, f.keys,
                                 PlanOptions::For(Algorithm::kEmOptVc, 2));
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    f.plan = *std::move(plan);
    f.matcher.processors(2);
    auto r = f.matcher.Run(f.plan);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    f.result = *std::move(r);
    return f;
  }

  BatchOutcome Outcome() const {
    return BatchOutcome{SerializeGraph(lg.graph), result.pairs};
  }

  /// The pre-pipeline serial chain, one batch: scalar parse → Apply →
  /// Patch → Rematch. Returns the failing stage's status unchanged.
  Status SerialStep(const std::string& text) {
    std::unordered_map<std::string, NodeId> nb;
    auto delta = ParseDelta(text, lg.graph, lg.entities, &nb);
    GKEYS_RETURN_IF_ERROR(delta.status());
    if (!delta->empty()) {
      auto dirty = lg.graph.Apply(*delta);
      GKEYS_RETURN_IF_ERROR(dirty.status());
      auto patched = plan.Patch(*delta);
      GKEYS_RETURN_IF_ERROR(patched.status());
      auto rematched = matcher.Rematch(*patched, result, *delta);
      GKEYS_RETURN_IF_ERROR(rematched.status());
      plan = *std::move(patched);
      result = *std::move(rematched);
    }
    for (auto& [token, id] : nb) lg.entities.emplace(token, id);
    return Status::OK();
  }

  IngestSession Session() {
    IngestSession s;
    s.graph = &lg.graph;
    s.plan = &plan;
    s.result = &result;
    s.entity_names = &lg.entities;
    return s;
  }
};

IngestSource VectorSource(const std::vector<std::string>& batches,
                          size_t* next) {
  return [&batches, next]() -> std::optional<std::string> {
    if (*next >= batches.size()) return std::nullopt;
    return batches[(*next)++];
  };
}

TEST(IngestPipeline, MatchesSerialChainPerBatch) {
  PipeFixture base = PipeFixture::Make(31);
  Rng rng(77);
  std::vector<std::string> batches;
  for (int i = 0; i < 6; ++i) {
    batches.push_back(RandomDeltaText(base.lg, rng, 10));
  }
  // An empty batch (comments only) mid-stream: commits as a no-op.
  batches.insert(batches.begin() + 3, "# nothing to see\n\n");

  PipeFixture serial = PipeFixture::Make(31);
  std::vector<BatchOutcome> serial_outcomes;
  for (const std::string& text : batches) {
    ASSERT_TRUE(serial.SerialStep(text).ok());
    serial_outcomes.push_back(serial.Outcome());
  }

  PipeFixture piped = PipeFixture::Make(31);
  std::vector<BatchOutcome> piped_outcomes;
  size_t next = 0;
  // max_coalesce = 1: this test pins PER-BATCH observer granularity, so
  // group commit (whose intermediate states are coarser) must be off.
  IngestOptions opts;
  opts.max_coalesce = 1;
  IngestStats stats = piped.matcher.IngestStream(
      piped.Session(), VectorSource(batches, &next), opts,
      [&](const IngestBatch& b) {
        piped_outcomes.push_back(
            BatchOutcome{SerializeGraph(piped.lg.graph), b.result->pairs});
        return Status::OK();
      });
  ASSERT_TRUE(stats.status.ok()) << stats.status.ToString();
  EXPECT_EQ(stats.batches, batches.size());
  EXPECT_EQ(stats.empty_batches, 1u);
  ASSERT_EQ(piped_outcomes.size(), serial_outcomes.size());
  for (size_t i = 0; i < serial_outcomes.size(); ++i) {
    SCOPED_TRACE("batch " + std::to_string(i));
    EXPECT_TRUE(piped_outcomes[i] == serial_outcomes[i]);
  }
  // Final sessions agree completely, binding tables included.
  EXPECT_TRUE(piped.Outcome() == serial.Outcome());
  EXPECT_EQ(piped.lg.entities, serial.lg.entities);
}

TEST(IngestPipeline, MidStreamErrorStopsWhereSerialStops) {
  PipeFixture base = PipeFixture::Make(32);
  Rng rng(78);
  std::vector<std::string> batches = {
      RandomDeltaText(base.lg, rng, 8),
      "+ ent:company:c1 broken\n",  // malformed: too few fields
      RandomDeltaText(base.lg, rng, 8),
  };

  PipeFixture serial = PipeFixture::Make(32);
  ASSERT_TRUE(serial.SerialStep(batches[0]).ok());
  Status serial_error = serial.SerialStep(batches[1]);
  ASSERT_FALSE(serial_error.ok());

  PipeFixture piped = PipeFixture::Make(32);
  size_t next = 0;
  IngestStats stats = piped.matcher.IngestStream(
      piped.Session(), VectorSource(batches, &next));
  EXPECT_EQ(stats.status.code(), serial_error.code());
  EXPECT_EQ(ErrorLineOf(stats.status), ErrorLineOf(serial_error));
  EXPECT_EQ(stats.batches, 1u);
  // The session stopped exactly where the serial chain stopped: after
  // batch 0, with batch 1 leaving no trace.
  EXPECT_TRUE(piped.Outcome() == serial.Outcome());
  EXPECT_EQ(piped.lg.entities, serial.lg.entities);
}

TEST(IngestPipeline, CancellationStopsCleanlyBetweenBatches) {
  PipeFixture base = PipeFixture::Make(33);
  Rng rng(79);
  std::vector<std::string> batches;
  for (int i = 0; i < 5; ++i) {
    batches.push_back(RandomDeltaText(base.lg, rng, 6));
  }

  PipeFixture serial = PipeFixture::Make(33);
  ASSERT_TRUE(serial.SerialStep(batches[0]).ok());

  // The flag flips on the engine thread as batch 0 commits, so the
  // engine must stop before binding batch 1 — deterministically.
  PipeFixture piped = PipeFixture::Make(33);
  std::atomic<bool> cancel{false};
  IngestOptions opts;
  opts.max_coalesce = 1;  // per-batch commits keep the stop point exact
  opts.cancelled = [&]() { return cancel.load(); };
  size_t next = 0;
  IngestStats stats = piped.matcher.IngestStream(
      piped.Session(), VectorSource(batches, &next), opts,
      [&](const IngestBatch&) {
        cancel.store(true);
        return Status::OK();
      });
  EXPECT_EQ(stats.status.code(), StatusCode::kCancelled);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_TRUE(piped.Outcome() == serial.Outcome());
  EXPECT_EQ(piped.lg.entities, serial.lg.entities);
}

TEST(IngestPipeline, ObserverRejectionStopsTheStream) {
  PipeFixture base = PipeFixture::Make(34);
  Rng rng(80);
  std::vector<std::string> batches;
  for (int i = 0; i < 3; ++i) {
    batches.push_back(RandomDeltaText(base.lg, rng, 6));
  }
  PipeFixture piped = PipeFixture::Make(34);
  size_t next = 0;
  IngestOptions opts;
  opts.max_coalesce = 1;  // the batch count below assumes one per commit
  IngestStats stats = piped.matcher.IngestStream(
      piped.Session(), VectorSource(batches, &next), opts,
      [&](const IngestBatch& b) {
        return b.index == 1 ? Status::IoError("disk full") : Status::OK();
      });
  EXPECT_EQ(stats.status.code(), StatusCode::kIoError);
  // Batch 1 itself committed (the observer runs post-commit, like the
  // serial WAL append) but the stream went no further.
  EXPECT_EQ(stats.batches, 2u);
}

/// Deterministic group-commit harness: holds the ENGINE thread (which
/// runs on the caller's thread — construct the gate on it) at its first
/// cancellation poll until the tokenize thread has pushed every batch,
/// so the engine's first Pop+TryPop sweep sees the whole stream as one
/// backlog. `queue_depth` must be >= the batch count (the producer must
/// never block on a full queue, or both threads wait forever). The
/// cancel callback never cancels — it only gates.
struct BacklogGate {
  std::atomic<bool> all_pushed{false};
  std::thread::id engine_id = std::this_thread::get_id();

  IngestSource Source(const std::vector<std::string>& batches,
                      size_t* next) {
    return [this, &batches, next]() -> std::optional<std::string> {
      if (*next >= batches.size()) {
        // The last batch was already pushed before this call (the
        // producer pushes, then pulls again), so the backlog is whole.
        all_pushed.store(true);
        return std::nullopt;
      }
      return batches[(*next)++];
    };
  }

  std::function<bool()> Cancelled() {
    return [this]() {
      if (std::this_thread::get_id() == engine_id) {
        while (!all_pushed.load()) std::this_thread::yield();
      }
      return false;
    };
  }
};

TEST(IngestPipeline, GroupCommitCoalescesTheBacklog) {
  PipeFixture base = PipeFixture::Make(35);
  Rng rng(81);
  std::vector<std::string> batches;
  for (int i = 0; i < 5; ++i) {
    batches.push_back(RandomDeltaText(base.lg, rng, 8));
  }
  batches.insert(batches.begin() + 2, "# no-op batch\n");

  PipeFixture serial = PipeFixture::Make(35);
  for (const std::string& text : batches) {
    ASSERT_TRUE(serial.SerialStep(text).ok());
  }

  PipeFixture piped = PipeFixture::Make(35);
  BacklogGate gate;
  IngestOptions opts;
  opts.queue_depth = batches.size();
  opts.max_coalesce = batches.size();
  opts.cancelled = gate.Cancelled();
  size_t next = 0;
  std::vector<std::pair<size_t, bool>> seen;  // (index, contributed)
  IngestStats stats = piped.matcher.IngestStream(
      piped.Session(), gate.Source(batches, &next), opts,
      [&](const IngestBatch& b) {
        seen.emplace_back(b.index, b.contributed);
        return Status::OK();
      });
  ASSERT_TRUE(stats.status.ok()) << stats.status.ToString();

  // The whole stream committed as ONE engine pass...
  EXPECT_EQ(stats.commits, 1u);
  EXPECT_EQ(stats.batches, batches.size());
  EXPECT_EQ(stats.empty_batches, 1u);
  // ...the observer still saw every batch, in order, with the no-op
  // batch (and only it) flagged as non-contributing...
  ASSERT_EQ(seen.size(), batches.size());
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].first, i);
    EXPECT_EQ(seen[i].second, i != 2);
  }
  // ...and the final session is exactly the per-batch serial one.
  EXPECT_TRUE(piped.Outcome() == serial.Outcome());
  EXPECT_EQ(piped.lg.entities, serial.lg.entities);
}

TEST(IngestPipeline, GroupCommitFallsBackWhenBatchesInterdepend) {
  // Batch 1 removes the triple batch 0 added: one GraphDelta cannot
  // express that (removals must reference base-graph nodes), so the
  // group bind fails and the engine replays the group per batch — which
  // is exactly the serial chain.
  std::vector<std::string> batches = {
      "+ ent:person:fresh name val:\"temp\"\n",
      "- ent:person:fresh name val:\"temp\"\n",
  };

  PipeFixture serial = PipeFixture::Make(36);
  for (const std::string& text : batches) {
    ASSERT_TRUE(serial.SerialStep(text).ok()) << text;
  }

  PipeFixture piped = PipeFixture::Make(36);
  BacklogGate gate;
  IngestOptions opts;
  opts.queue_depth = batches.size();
  opts.max_coalesce = batches.size();
  opts.cancelled = gate.Cancelled();
  size_t next = 0;
  IngestStats stats = piped.matcher.IngestStream(
      piped.Session(), gate.Source(batches, &next), opts);
  ASSERT_TRUE(stats.status.ok()) << stats.status.ToString();
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.commits, 2u);  // the fallback committed per batch
  EXPECT_TRUE(piped.Outcome() == serial.Outcome());
  EXPECT_EQ(piped.lg.entities, serial.lg.entities);
}

TEST(FastDelta, DeltaBinderGroupEqualsConcatenatedText) {
  PipeFixture base = PipeFixture::Make(37);
  Rng rng(83);
  std::vector<std::string> batches;
  std::string concat;
  for (int i = 0; i < 4; ++i) {
    batches.push_back(RandomDeltaText(base.lg, rng, 10));
    concat += batches.back();
  }

  DeltaBinder binder(base.lg.graph, base.lg.entities);
  for (const std::string& text : batches) {
    ASSERT_TRUE(binder.Append(TokenizeDeltaText(text)).ok());
  }
  std::unordered_map<std::string, NodeId> group_nb;
  GraphDelta group_delta = binder.Take(&group_nb);

  std::unordered_map<std::string, NodeId> concat_nb;
  auto concat_delta =
      BindDeltaText(TokenizeDeltaText(concat), base.lg.graph,
                    base.lg.entities, &concat_nb);
  ASSERT_TRUE(concat_delta.ok());

  EXPECT_EQ(group_nb, concat_nb);
  // Same effect on the graph, NodeIds included.
  Graph a = base.lg.graph;
  Graph b = base.lg.graph;
  ASSERT_TRUE(a.Apply(group_delta).ok());
  ASSERT_TRUE(b.Apply(*concat_delta).ok());
  EXPECT_EQ(SerializeGraph(a), SerializeGraph(b));
}

}  // namespace
}  // namespace gkeys
