#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>

#include "common/interner.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace gkeys {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(Status, AllConstructorsProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(), Status::NotFound("").code(),
      Status::AlreadyExists("").code(),   Status::OutOfRange("").code(),
      Status::Internal("").code(),        Status::IoError("").code(),
      Status::ParseError("").code()};
  EXPECT_EQ(codes.size(), 7u);
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOr, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "payload");
}

Status Inner() { return Status::Internal("boom"); }
Status Outer() {
  GKEYS_RETURN_IF_ERROR(Inner());
  return Status::OK();
}

TEST(Status, ReturnIfErrorMacroPropagates) {
  EXPECT_EQ(Outer().code(), StatusCode::kInternal);
}

TEST(Interner, RoundTrip) {
  StringInterner in;
  Symbol a = in.Intern("alpha");
  Symbol b = in.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(in.Intern("alpha"), a);  // stable
  EXPECT_EQ(in.Resolve(a), "alpha");
  EXPECT_EQ(in.Resolve(b), "beta");
  EXPECT_EQ(in.size(), 2u);
}

TEST(Interner, LookupDoesNotIntern) {
  StringInterner in;
  EXPECT_EQ(in.Lookup("ghost"), kNoSymbol);
  EXPECT_EQ(in.size(), 0u);
  in.Intern("real");
  EXPECT_NE(in.Lookup("real"), kNoSymbol);
}

TEST(Interner, CopyIsIndependent) {
  StringInterner a;
  a.Intern("x");
  StringInterner b = a;
  b.Intern("y");
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b.Resolve(a.Lookup("x")), "x");
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowIsInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.Below(13), 13u);
  }
}

TEST(Rng, RangeIsInclusive) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = r.Range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= (v == 5);
    saw_hi |= (v == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng r(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.Chance(0.0));
    EXPECT_TRUE(r.Chance(1.0));
  }
}

TEST(Rng, ForkIndependentStream) {
  Rng a(5);
  Rng fork = a.Fork();
  EXPECT_NE(a.Next(), fork.Next());
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, ThrowingTaskDoesNotDeadlockWait) {
  // Regression: the in-flight count used to be decremented only after the
  // task returned, so a throwing task left Wait() blocked forever.
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.Submit([] { throw std::runtime_error("task failed"); });
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  EXPECT_EQ(ran.load(), 8);  // the failure did not cancel other tasks
  // The error was drained: the pool stays usable and a clean batch does
  // not rethrow a stale exception.
  pool.Submit([&ran] { ran.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(ran.load(), 9);
}

TEST(ThreadPool, FirstOfManyExceptionsSurfaces) {
  ThreadPool pool(4);
  for (int i = 0; i < 16; ++i) {
    pool.Submit([] { throw std::runtime_error("boom"); });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  pool.Wait();  // subsequent Wait() is clean
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h.store(0);
  ParallelFor(8, hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsFine) {
  ParallelFor(4, 0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelShards, ShardsPartitionTheRange) {
  std::vector<int> owner(100, -1);
  ParallelShards(7, owner.size(), [&](int shard, size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) owner[i] = shard;
  });
  for (int o : owner) EXPECT_GE(o, 0);
}

TEST(ParallelShards, ThrowingShardSurfacesOnCaller) {
  // An exception escaping a shard's std::thread would terminate the
  // process; it must be captured and rethrown on the calling thread,
  // after every other shard ran to completion.
  std::atomic<int> completed{0};
  EXPECT_THROW(ParallelShards(4, 100,
                              [&](int shard, size_t, size_t) {
                                if (shard == 1) {
                                  throw std::runtime_error("shard failed");
                                }
                                completed.fetch_add(1);
                              }),
               std::runtime_error);
  EXPECT_EQ(completed.load(), 3);
}

TEST(ParallelFor, ThrowingIterationSurfacesOnCaller) {
  EXPECT_THROW(ParallelFor(4, 100,
                           [](size_t i) {
                             if (i == 37) {
                               throw std::runtime_error("iteration failed");
                             }
                           }),
               std::runtime_error);
}

}  // namespace
}  // namespace gkeys
