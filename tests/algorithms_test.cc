// Cross-algorithm equivalence: every parallel algorithm must return
// exactly chase(G, Σ) (the paper's central correctness claims: Prop. 7,
// Lemma 8, Theorem 6, Lemma 11, Theorem 10). Parameterized over the five
// algorithms × processor counts × workloads.

#include <gtest/gtest.h>

#include "core/entity_matcher.h"
#include "gen/datasets.h"
#include "gen/synthetic.h"
#include "test_util.h"

namespace gkeys {
namespace {

struct AlgoParam {
  Algorithm algorithm;
  int processors;
};

std::string ParamName(const ::testing::TestParamInfo<AlgoParam>& info) {
  return AlgorithmName(info.param.algorithm) + "_p" +
         std::to_string(info.param.processors);
}

class AlgorithmsTest : public ::testing::TestWithParam<AlgoParam> {
 protected:
  // The matrix runs through the session API: compile a plan with the
  // algorithm's preset, then execute it.
  MatchResult Match(const SyntheticDataset& ds) const {
    Algorithm a = GetParam().algorithm;
    int p = GetParam().processors;
    auto plan = Matcher::Compile(ds.graph, ds.keys, PlanOptions::For(a, p));
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    if (!plan.ok()) return {};
    auto r = Matcher(a).processors(p).Run(*plan);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *std::move(r) : MatchResult{};
  }
};

TEST_P(AlgorithmsTest, MatchesOracleOnSynthetic) {
  SyntheticConfig cfg;
  cfg.num_groups = 3;
  cfg.chain_length = 3;
  cfg.radius = 2;
  cfg.entities_per_type = 16;
  cfg.seed = 1234;
  SyntheticDataset ds = GenerateSynthetic(cfg);
  MatchResult oracle = Chase(ds.graph, ds.keys);
  EXPECT_EQ(oracle.pairs, ds.planted) << "generator ground truth";
  MatchResult r = Match(ds);
  EXPECT_EQ(r.pairs, oracle.pairs);
}

TEST_P(AlgorithmsTest, MatchesOracleOnGoogleSim) {
  GoogleSimConfig cfg;
  cfg.scale = 0.5;
  SyntheticDataset ds = GenerateGoogleSim(cfg);
  MatchResult oracle = Chase(ds.graph, ds.keys);
  EXPECT_EQ(oracle.pairs, ds.planted);
  MatchResult r = Match(ds);
  EXPECT_EQ(r.pairs, oracle.pairs);
}

TEST_P(AlgorithmsTest, MatchesOracleOnDBpediaSim) {
  DBpediaSimConfig cfg;
  cfg.scale = 0.5;
  SyntheticDataset ds = GenerateDBpediaSim(cfg);
  MatchResult oracle = Chase(ds.graph, ds.keys);
  EXPECT_EQ(oracle.pairs, ds.planted);
  MatchResult r = Match(ds);
  EXPECT_EQ(r.pairs, oracle.pairs);
}

TEST_P(AlgorithmsTest, LongChainResolves) {
  // c = 5: the deepest dependency chains of Exp-3.
  SyntheticConfig cfg;
  cfg.num_groups = 1;
  cfg.chain_length = 5;
  cfg.radius = 1;
  cfg.entities_per_type = 12;
  cfg.chained_fraction = 1.0;  // every duplicate requires the full chain
  cfg.seed = 5;
  SyntheticDataset ds = GenerateSynthetic(cfg);
  MatchResult r = Match(ds);
  EXPECT_EQ(r.pairs, ds.planted);
}

TEST_P(AlgorithmsTest, NoDuplicatesMeansEmptyResult) {
  SyntheticConfig cfg;
  cfg.num_groups = 2;
  cfg.chain_length = 2;
  cfg.entities_per_type = 10;
  cfg.duplicate_fraction = 0.0;
  SyntheticDataset ds = GenerateSynthetic(cfg);
  ASSERT_TRUE(ds.planted.empty());
  MatchResult r = Match(ds);
  EXPECT_TRUE(r.pairs.empty());
}

TEST_P(AlgorithmsTest, ConfirmedStatMatchesOutput) {
  SyntheticConfig cfg;
  cfg.num_groups = 2;
  cfg.chain_length = 2;
  cfg.entities_per_type = 12;
  SyntheticDataset ds = GenerateSynthetic(cfg);
  MatchResult r = Match(ds);
  EXPECT_EQ(r.stats.confirmed, r.pairs.size());
  EXPECT_GT(r.stats.candidates, 0u);
  EXPECT_LE(r.stats.candidates, r.stats.candidates_initial);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, AlgorithmsTest,
    ::testing::Values(AlgoParam{Algorithm::kEmMr, 1},
                      AlgoParam{Algorithm::kEmMr, 4},
                      AlgoParam{Algorithm::kEmVf2Mr, 4},
                      AlgoParam{Algorithm::kEmOptMr, 1},
                      AlgoParam{Algorithm::kEmOptMr, 4},
                      AlgoParam{Algorithm::kEmVc, 1},
                      AlgoParam{Algorithm::kEmVc, 4},
                      AlgoParam{Algorithm::kEmOptVc, 1},
                      AlgoParam{Algorithm::kEmOptVc, 4},
                      AlgoParam{Algorithm::kEmOptVc, 8}),
    ParamName);

// ---- Optimization-specific behavior (not covered by the matrix) ----

TEST(Optimizations, PairingReducesCandidates) {
  SyntheticConfig cfg;
  cfg.num_groups = 2;
  cfg.chain_length = 2;
  cfg.entities_per_type = 20;
  SyntheticDataset ds = GenerateSynthetic(cfg);
  // Signature blocking already removes every unidentifiable pair here;
  // run without it so the comparison isolates the pairing filter.
  EmOptions base_opts = EmOptions::For(Algorithm::kEmMr, 2);
  base_opts.use_blocking = false;
  MatchResult base =
      MatchEntities(ds.graph, ds.keys, Algorithm::kEmMr, base_opts);
  EmOptions opt_opts = EmOptions::For(Algorithm::kEmOptMr, 2);
  opt_opts.use_blocking = false;
  MatchResult opt =
      MatchEntities(ds.graph, ds.keys, Algorithm::kEmOptMr, opt_opts);
  EXPECT_EQ(base.pairs, opt.pairs);
  EXPECT_LT(opt.stats.candidates, base.stats.candidates)
      << "pairing must filter unidentifiable pairs from L";
  EXPECT_LT(opt.stats.iso_checks, base.stats.iso_checks)
      << "fewer candidates + incremental checking must mean fewer checks";
}

TEST(Optimizations, BoundedMessagesReduceTraffic) {
  SyntheticConfig cfg;
  cfg.num_groups = 2;
  cfg.chain_length = 2;
  cfg.entities_per_type = 20;
  SyntheticDataset ds = GenerateSynthetic(cfg);
  MatchResult base = MatchEntities(ds.graph, ds.keys, Algorithm::kEmVc, 4);
  MatchResult opt = MatchEntities(ds.graph, ds.keys, Algorithm::kEmOptVc, 4);
  EXPECT_EQ(base.pairs, opt.pairs);
  EXPECT_LE(opt.stats.messages, base.stats.messages)
      << "bounded-k must not send more messages than unbounded EMVC";
}

TEST(Optimizations, MapReduceRoundsGrowWithChainLength) {
  // The §6 Exp-3 observation: the number of MapReduce rounds grows with c.
  size_t prev_rounds = 0;
  for (int c : {1, 3, 5}) {
    SyntheticConfig cfg;
    cfg.num_groups = 1;
    cfg.chain_length = c;
    cfg.entities_per_type = 12;
    cfg.chained_fraction = 1.0;
    SyntheticDataset ds = GenerateSynthetic(cfg);
    MatchResult r = MatchEntities(ds.graph, ds.keys, Algorithm::kEmMr, 2);
    EXPECT_EQ(r.pairs, ds.planted);
    EXPECT_GT(r.stats.rounds, prev_rounds) << "c=" << c;
    prev_rounds = r.stats.rounds;
  }
}

TEST(Optimizations, Vf2DoesMoreSearchWork) {
  SyntheticConfig cfg;
  cfg.num_groups = 2;
  cfg.chain_length = 1;
  cfg.entities_per_type = 16;
  SyntheticDataset ds = GenerateSynthetic(cfg);
  MatchResult fast = MatchEntities(ds.graph, ds.keys, Algorithm::kEmMr, 2);
  MatchResult slow =
      MatchEntities(ds.graph, ds.keys, Algorithm::kEmVf2Mr, 2);
  EXPECT_EQ(fast.pairs, slow.pairs);
  EXPECT_GE(slow.stats.search.full_instantiations,
            fast.stats.search.full_instantiations)
      << "VF2 enumerates all matches; EvalMR stops at the first";
}

}  // namespace
}  // namespace gkeys
