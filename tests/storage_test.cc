// Persistence subsystem tests: MmapStore contract, snapshot round-trips
// (Save → Load must reproduce the graph, plan, and result so exactly that
// re-running or resuming from the loaded state is byte-identical to the
// in-memory run), restart-resume chains over random delta streams, and
// negative paths — corrupted, truncated, and version-mismatched files
// must surface Status errors, never crash (the sanitize CI job runs
// these under ASan/UBSan).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <tuple>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/matcher.h"
#include "gen/synthetic.h"
#include "graph/delta.h"
#include "io/triples.h"
#include "storage/mmap_store.h"
#include "storage/snapshot.h"
#include "test_util.h"

namespace gkeys {
namespace {

using storage::MmapStore;
using storage::Snapshot;
using storage::Store;

const std::vector<Algorithm>& AllAlgorithms() {
  static const std::vector<Algorithm> algos = {
      Algorithm::kNaiveChase, Algorithm::kEmMr,  Algorithm::kEmVf2Mr,
      Algorithm::kEmOptMr,    Algorithm::kEmVc,  Algorithm::kEmOptVc};
  return algos;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "gkeys_storage_" + name;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void Spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// ---- MmapStore contract ----------------------------------------------

TEST(MmapStore, PutFlushOpenGetRoundTrip) {
  std::string path = TempPath("kv_roundtrip");
  auto store = MmapStore::Create(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  // Inserted out of key order on purpose: Flush must write sorted.
  ASSERT_TRUE((*store)->Put("zeta", "last").ok());
  ASSERT_TRUE((*store)->Put("alpha", "first").ok());
  ASSERT_TRUE((*store)->Put("m", std::string(100000, 'x')).ok());
  ASSERT_TRUE((*store)->Put("alpha2", "").ok());
  ASSERT_TRUE((*store)->Flush().ok());

  auto reopened = MmapStore::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->num_records(), 4u);
  auto get = (*reopened)->Get("alpha");
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(*get, "first");
  get = (*reopened)->Get("m");
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(get->size(), 100000u);
  EXPECT_EQ((*reopened)->Get("missing").status().code(),
            StatusCode::kNotFound);

  // Scan: ascending order, prefix-filtered.
  std::vector<std::string> keys;
  ASSERT_TRUE((*reopened)
                  ->Scan("",
                         [&](std::string_view k, std::string_view) {
                           keys.emplace_back(k);
                           return Status::OK();
                         })
                  .ok());
  EXPECT_EQ(keys,
            (std::vector<std::string>{"alpha", "alpha2", "m", "zeta"}));
  keys.clear();
  ASSERT_TRUE((*reopened)
                  ->Scan("alpha",
                         [&](std::string_view k, std::string_view) {
                           keys.emplace_back(k);
                           return Status::OK();
                         })
                  .ok());
  EXPECT_EQ(keys, (std::vector<std::string>{"alpha", "alpha2"}));
}

TEST(MmapStore, GetAndScanServeStagedWritesBeforeFlush) {
  auto store = MmapStore::Create(TempPath("kv_staged"));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("b", "2").ok());
  ASSERT_TRUE((*store)->Put("a", "1").ok());
  auto get = (*store)->Get("a");
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(*get, "1");
  std::vector<std::string> keys;
  ASSERT_TRUE((*store)
                  ->Scan("",
                         [&](std::string_view k, std::string_view) {
                           keys.emplace_back(k);
                           return Status::OK();
                         })
                  .ok());
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b"}));
}

TEST(MmapStore, PutAfterFlushIsFailedPrecondition) {
  auto store = MmapStore::Create(TempPath("kv_sealed"));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("k", "v").ok());
  ASSERT_TRUE((*store)->Flush().ok());
  EXPECT_EQ((*store)->Put("k2", "v2").code(),
            StatusCode::kFailedPrecondition);
}

TEST(MmapStore, OpenMissingFileIsIoError) {
  auto store = MmapStore::Open(TempPath("does_not_exist"));
  EXPECT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kIoError);
}

TEST(MmapStore, ScanCallbackErrorAbortsScan) {
  auto store = MmapStore::Create(TempPath("kv_abort"));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("a", "1").ok());
  ASSERT_TRUE((*store)->Put("b", "2").ok());
  int seen = 0;
  Status st = (*store)->Scan("", [&](std::string_view, std::string_view) {
    ++seen;
    return Status::Cancelled("stop");
  });
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_EQ(seen, 1);
}

// ---- Snapshot round-trips --------------------------------------------

struct Session {
  std::unique_ptr<Graph> graph;    // stable address for the plan
  std::unique_ptr<KeySet> keys;
  MatchPlan plan;
  MatchResult result;
};

Session CompileAndRun(Graph g, KeySet keys, Algorithm algo) {
  Session s;
  s.graph = std::make_unique<Graph>(std::move(g));
  s.keys = std::make_unique<KeySet>(std::move(keys));
  auto plan =
      Matcher::Compile(*s.graph, *s.keys, PlanOptions::For(algo, 2));
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  s.plan = *std::move(plan);
  auto run = Matcher(algo).processors(2).Run(s.plan);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  s.result = *std::move(run);
  return s;
}

std::string SaveToFile(const Session& s, Algorithm algo,
                       const std::string& name) {
  std::string path = TempPath(name);
  auto store = MmapStore::Create(path);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  Status st = Snapshot::Save(**store, *s.graph, *s.keys, s.plan, s.result,
                             algo);
  EXPECT_TRUE(st.ok()) << st.ToString();
  st = (*store)->Flush();
  EXPECT_TRUE(st.ok()) << st.ToString();
  return path;
}

void ExpectSameDerivations(const std::vector<Derivation>& a,
                           const std::vector<Derivation>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].e1, b[i].e1);
    EXPECT_EQ(a[i].e2, b[i].e2);
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].premises, b[i].premises);
    EXPECT_EQ(a[i].triples, b[i].triples);
  }
}

using CanonDerivation =
    std::tuple<NodeId, NodeId, int,
               std::vector<std::pair<NodeId, NodeId>>,
               std::vector<std::tuple<NodeId, Symbol, NodeId>>>;

/// Derivation EMISSION order after a rematch depends on plan internals
/// (dirty-candidate order, dependent traversal) that legitimately differ
/// between a freshly decoded plan and an in-memory patched one — compare
/// provenance as a canonical multiset instead.
std::vector<CanonDerivation> Canon(const std::vector<Derivation>& ds) {
  std::vector<CanonDerivation> out;
  out.reserve(ds.size());
  for (const Derivation& d : ds) {
    std::vector<std::tuple<NodeId, Symbol, NodeId>> triples;
    triples.reserve(d.triples.size());
    for (const WitnessTriple& t : d.triples) {
      triples.emplace_back(t.s, t.p, t.o);
    }
    std::sort(triples.begin(), triples.end());
    std::vector<std::pair<NodeId, NodeId>> premises = d.premises;
    std::sort(premises.begin(), premises.end());
    out.emplace_back(d.e1, d.e2, d.key, std::move(premises),
                     std::move(triples));
  }
  std::sort(out.begin(), out.end());
  return out;
}

void ExpectEquivalentDerivations(const std::vector<Derivation>& a,
                                 const std::vector<Derivation>& b) {
  EXPECT_EQ(Canon(a), Canon(b));
}

void ExpectRoundTrip(Graph g, KeySet keys, Algorithm algo,
                     const std::string& name) {
  SCOPED_TRACE("algo=" + AlgorithmName(algo) + " dataset=" + name);
  Session s = CompileAndRun(std::move(g), std::move(keys), algo);
  std::string path =
      SaveToFile(s, algo, name + "_" + AlgorithmName(algo));

  auto store = MmapStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto snap = Snapshot::Load(**store);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();

  // The graph replays byte-identically (same serialization).
  EXPECT_EQ(SerializeGraph(snap->graph()), SerializeGraph(*s.graph));
  EXPECT_EQ(ToDsl(snap->keys()), ToDsl(*s.keys));
  EXPECT_EQ(snap->algorithm(), algo);

  // The stored result restores exactly, provenance index included.
  EXPECT_EQ(snap->result().pairs, s.result.pairs);
  ExpectSameDerivations(snap->result().derivations, s.result.derivations);

  // The restored plan is structurally equivalent...
  EXPECT_EQ(snap->plan().num_candidates(), s.plan.num_candidates());
  EXPECT_EQ(snap->plan().has_product_graph(), s.plan.has_product_graph());
  if (s.plan.has_product_graph()) {
    EXPECT_EQ(snap->plan().product_graph().NumNodes(),
              s.plan.product_graph().NumNodes());
    EXPECT_EQ(snap->plan().product_graph().NumEdges(),
              s.plan.product_graph().NumEdges());
  }
  // ...and runnable: re-running it reproduces the pairs exactly.
  auto rerun = Matcher(algo).processors(2).Run(snap->plan());
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
  EXPECT_EQ(rerun->pairs, s.result.pairs);
}

TEST(SnapshotRoundTrip, MusicGraphAllAlgorithms) {
  for (Algorithm algo : AllAlgorithms()) {
    ExpectRoundTrip(testing::MakeG1().g, testing::MakeSigma1(), algo,
                    "music");
  }
}

TEST(SnapshotRoundTrip, CompanyGraphAllAlgorithms) {
  for (Algorithm algo : AllAlgorithms()) {
    ExpectRoundTrip(testing::MakeG2().g, testing::MakeSigma2(), algo,
                    "company");
  }
}

TEST(SnapshotRoundTrip, SyntheticAllAlgorithms) {
  SyntheticConfig cfg;
  cfg.seed = 11;
  cfg.num_groups = 2;
  cfg.chain_length = 2;
  cfg.radius = 2;
  cfg.entities_per_type = 14;
  SyntheticDataset ds = GenerateSynthetic(cfg);
  for (Algorithm algo : AllAlgorithms()) {
    ExpectRoundTrip(ds.graph, ds.keys, algo, "synthetic");
  }
}

TEST(SnapshotRoundTrip, EntityNameTableRidesAlong) {
  auto loaded = DeserializeGraphWithNames(
      "ent:t:a p val:\"1\"\nent:t:b p val:\"1\"\n");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  KeySet keys;
  ASSERT_TRUE(keys.AddFromDsl("key k for t { x -[p]-> v* }").ok());
  Algorithm algo = Algorithm::kEmOptVc;
  Session s =
      CompileAndRun(std::move(loaded->graph), std::move(keys), algo);

  std::string path = TempPath("names");
  auto store = MmapStore::Create(path);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(Snapshot::Save(**store, *s.graph, *s.keys, s.plan, s.result,
                             algo, &loaded->entities)
                  .ok());
  ASSERT_TRUE((*store)->Flush().ok());

  auto reopened = MmapStore::Open(path);
  ASSERT_TRUE(reopened.ok());
  auto snap = Snapshot::Load(**reopened);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(snap->entity_names(), loaded->entities);

  // The table lets delta files parse against the restored session.
  auto delta = ParseDelta("+ ent:t:a q val:\"2\"\n", snap->graph(),
                          snap->entity_names());
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_EQ(delta->num_added_triples(), 1u);
}

TEST(SnapshotRoundTrip, ResumeWithEmptyDeltaReturnsStoredResult) {
  Algorithm algo = Algorithm::kEmOptVc;
  Session s = CompileAndRun(testing::MakeG2().g, testing::MakeSigma2(),
                            algo);
  std::string path = SaveToFile(s, algo, "empty_resume");
  auto store = MmapStore::Open(path);
  ASSERT_TRUE(store.ok());
  auto snap = Snapshot::Load(**store);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  GraphDelta empty(snap->graph());
  auto resumed = Matcher(algo).Resume(*snap, empty);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->pairs, s.result.pairs);
}

TEST(Snapshot, SaveRejectsForeignPlan) {
  Algorithm algo = Algorithm::kEmOptVc;
  Session s = CompileAndRun(testing::MakeG2().g, testing::MakeSigma2(),
                            algo);
  Graph other = testing::MakeG1().g;
  auto store = MmapStore::Create(TempPath("foreign"));
  ASSERT_TRUE(store.ok());
  Status st = Snapshot::Save(**store, other, *s.keys, s.plan, s.result,
                             algo);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

// ---- Restart-resume over random delta streams ------------------------

struct DeltaOp {
  bool add;
  Triple t;
};

/// Stages `ops` against `g` (both graphs of a resume-equivalence pair
/// share NodeIds, so one op list drives both).
StatusOr<GraphDelta> StageOps(const Graph& g, const Graph& interner_src,
                              const std::vector<DeltaOp>& ops) {
  GraphDelta delta(g);
  for (const DeltaOp& op : ops) {
    const std::string& pred = interner_src.interner().Resolve(op.t.pred);
    Status st = op.add ? delta.AddTriple(op.t.subject, pred, op.t.object)
                       : delta.RemoveTriple(op.t.subject, pred, op.t.object);
    GKEYS_RETURN_IF_ERROR(st);
  }
  return delta;
}

/// The paper lifecycle vs. the restart lifecycle, chunk by chunk: the
/// in-memory chain applies each delta directly (Apply → Patch →
/// Rematch); the restart chain saves, reloads from disk in-between, and
/// Resumes with the same ops as "pending deltas". Every chunk must
/// agree exactly — that is the whole point of the snapshot.
void RunResumeStream(uint64_t seed, Algorithm algo, size_t hold_out,
                     size_t chunks, size_t removals_per_chunk) {
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " algo=" + AlgorithmName(algo));
  SyntheticConfig cfg;
  cfg.seed = seed;
  cfg.num_groups = 2;
  cfg.chain_length = 2;
  cfg.radius = 2;
  cfg.entities_per_type = 14;
  SyntheticDataset ds = GenerateSynthetic(cfg);
  std::vector<Triple> all_triples;
  ds.graph.ForEachTriple(
      [&](const Triple& t) { all_triples.push_back(t); });

  Rng rng(seed * 7919 + 13);
  std::vector<uint8_t> keep(all_triples.size(), 1);
  std::vector<size_t> held;
  while (held.size() < hold_out) {
    size_t pick = rng.Below(all_triples.size());
    if (keep[pick]) {
      keep[pick] = 0;
      held.push_back(pick);
    }
  }

  // Base graph = full minus held (node-for-node rebuild, same ids).
  Graph base;
  for (NodeId n = 0; n < ds.graph.NumNodes(); ++n) {
    NodeId id =
        ds.graph.IsEntity(n)
            ? base.AddEntity(
                  ds.graph.interner().Resolve(ds.graph.entity_type(n)))
            : base.AddValue(ds.graph.value_str(n));
    ASSERT_EQ(id, n);
  }
  for (size_t i = 0; i < all_triples.size(); ++i) {
    if (!keep[i]) continue;
    const Triple& t = all_triples[i];
    ASSERT_TRUE(base.AddTriple(t.subject,
                               ds.graph.interner().Resolve(t.pred),
                               t.object)
                    .ok());
  }
  base.Finalize();

  Session mem = CompileAndRun(std::move(base), ds.keys, algo);
  Matcher matcher(algo);
  matcher.processors(2);
  std::string path = SaveToFile(mem, algo, "stream");

  std::vector<Triple> present;
  for (size_t i = 0; i < all_triples.size(); ++i) {
    if (keep[i]) present.push_back(all_triples[i]);
  }

  size_t next_held = 0;
  for (size_t chunk = 0; chunk < chunks; ++chunk) {
    SCOPED_TRACE("chunk=" + std::to_string(chunk));
    std::vector<DeltaOp> ops;
    size_t additions = held.size() / chunks + 1;
    for (size_t i = 0; i < additions && next_held < held.size();
         ++i, ++next_held) {
      ops.push_back({true, all_triples[held[next_held]]});
      present.push_back(all_triples[held[next_held]]);
    }
    for (size_t i = 0; i < removals_per_chunk && !present.empty(); ++i) {
      size_t pick = rng.Below(present.size());
      ops.push_back({false, present[pick]});
      present.erase(present.begin() + pick);
    }
    if (ops.empty()) continue;

    // In-memory lifecycle.
    auto mem_delta = StageOps(*mem.graph, ds.graph, ops);
    ASSERT_TRUE(mem_delta.ok()) << mem_delta.status().ToString();
    ASSERT_TRUE(mem.graph->Apply(*mem_delta).ok());
    auto patched = mem.plan.Patch(*mem_delta);
    ASSERT_TRUE(patched.ok()) << patched.status().ToString();
    auto rematched = matcher.Rematch(*patched, mem.result, *mem_delta);
    ASSERT_TRUE(rematched.ok()) << rematched.status().ToString();
    mem.plan = *std::move(patched);
    mem.result = *std::move(rematched);

    // Restart lifecycle: reload from disk, resume with the same ops as
    // the pending delta, save the advanced state for the next chunk.
    auto store = MmapStore::Open(path);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    auto snap = Snapshot::Load(**store);
    ASSERT_TRUE(snap.ok()) << snap.status().ToString();
    auto snap_delta = StageOps(snap->graph(), ds.graph, ops);
    ASSERT_TRUE(snap_delta.ok()) << snap_delta.status().ToString();
    auto resumed = matcher.Resume(*snap, *snap_delta);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();

    EXPECT_EQ(resumed->pairs, mem.result.pairs);
    ExpectEquivalentDerivations(resumed->derivations,
                                mem.result.derivations);

    path = TempPath("stream_chunk" + std::to_string(chunk));
    auto next = MmapStore::Create(path);
    ASSERT_TRUE(next.ok());
    ASSERT_TRUE(Snapshot::Save(**next, snap->graph(), snap->keys(),
                               snap->plan(), snap->result(), algo)
                    .ok());
    ASSERT_TRUE((*next)->Flush().ok());
  }
}

TEST(SnapshotResume, AdditiveStreamsAllAlgorithms) {
  for (Algorithm algo : AllAlgorithms()) {
    RunResumeStream(/*seed=*/21, algo, /*hold_out=*/12, /*chunks=*/2,
                    /*removals_per_chunk=*/0);
  }
}

TEST(SnapshotResume, MixedStreamsAllAlgorithms) {
  for (Algorithm algo : AllAlgorithms()) {
    RunResumeStream(/*seed=*/22, algo, /*hold_out=*/8, /*chunks=*/2,
                    /*removals_per_chunk=*/4);
  }
}

// ---- COW dedup across a plan lineage ---------------------------------

TEST(Snapshot, PatchedPlanSharesSectionsInOneFile) {
  // A patched plan shares most NodeSets with its source; the snapshot's
  // content-deduplicated pools must not balloon relative to the
  // from-scratch snapshot of the same post-delta state.
  Algorithm algo = Algorithm::kEmOptVc;
  SyntheticConfig cfg;
  cfg.seed = 5;
  cfg.num_groups = 2;
  cfg.chain_length = 2;
  cfg.radius = 2;
  cfg.entities_per_type = 14;
  SyntheticDataset ds = GenerateSynthetic(cfg);
  Session s = CompileAndRun(ds.graph, ds.keys, algo);

  // One small additive delta → patched plan (COW lineage of depth 1).
  Triple t{};
  bool found = false;
  s.graph->ForEachTriple([&](const Triple& tr) {
    if (!found) {
      t = tr;
      found = true;
    }
  });
  ASSERT_TRUE(found);
  GraphDelta delta(*s.graph);
  ASSERT_TRUE(delta.RemoveTriple(t.subject,
                                 s.graph->interner().Resolve(t.pred),
                                 t.object)
                  .ok());
  ASSERT_TRUE(s.graph->Apply(delta).ok());
  auto patched = s.plan.Patch(delta);
  ASSERT_TRUE(patched.ok()) << patched.status().ToString();
  auto rematched =
      Matcher(algo).processors(2).Rematch(*patched, s.result, delta);
  ASSERT_TRUE(rematched.ok()) << rematched.status().ToString();

  auto store = MmapStore::Create(TempPath("lineage"));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(Snapshot::Save(**store, *s.graph, *s.keys, *patched,
                             *rematched, algo)
                  .ok());
  ASSERT_TRUE((*store)->Flush().ok());
  uint64_t patched_bytes = (*store)->file_bytes();

  auto scratch_plan =
      Matcher::Compile(*s.graph, *s.keys, PlanOptions::For(algo, 2));
  ASSERT_TRUE(scratch_plan.ok());
  auto scratch_run = Matcher(algo).processors(2).Run(*scratch_plan);
  ASSERT_TRUE(scratch_run.ok());
  auto store2 = MmapStore::Create(TempPath("scratch"));
  ASSERT_TRUE(store2.ok());
  ASSERT_TRUE(Snapshot::Save(**store2, *s.graph, *s.keys, *scratch_plan,
                             *scratch_run, algo)
                  .ok());
  ASSERT_TRUE((*store2)->Flush().ok());
  uint64_t scratch_bytes = (*store2)->file_bytes();

  // Same post-delta semantics; dedup keeps the patched snapshot within
  // 25% of the from-scratch one (they differ in carried provenance and
  // relation sharing, not in wholesale duplication).
  EXPECT_EQ(rematched->pairs, scratch_run->pairs);
  EXPECT_LT(patched_bytes, scratch_bytes + scratch_bytes / 4);

  // And the patched snapshot loads back to the same answer.
  auto reopened = MmapStore::Open(TempPath("lineage"));
  ASSERT_TRUE(reopened.ok());
  auto snap = Snapshot::Load(**reopened);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  auto rerun = Matcher(algo).processors(2).Run(snap->plan());
  ASSERT_TRUE(rerun.ok());
  EXPECT_EQ(rerun->pairs, scratch_run->pairs);
}

// ---- Negative paths: corruption must error, never crash --------------

class SnapshotCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    Algorithm algo = Algorithm::kEmOptVc;
    session_ = CompileAndRun(testing::MakeG2().g, testing::MakeSigma2(),
                             algo);
    path_ = SaveToFile(session_, algo, "corruption_base");
    bytes_ = Slurp(path_);
    ASSERT_GT(bytes_.size(), 36u);
  }

  /// Opens + loads `bytes` written to a scratch file. Returns the first
  /// non-OK status, or OK if the whole pipeline succeeded.
  Status TryLoad(const std::string& bytes, const std::string& name) {
    std::string path = TempPath(name);
    Spit(path, bytes);
    auto store = MmapStore::Open(path);
    if (!store.ok()) return store.status();
    auto snap = Snapshot::Load(**store);
    if (!snap.ok()) return snap.status();
    return Status::OK();
  }

  Session session_;
  std::string path_;
  std::string bytes_;
};

TEST_F(SnapshotCorruption, TruncationsAreParseErrors) {
  for (size_t size :
       {size_t{0}, size_t{1}, size_t{8}, size_t{35}, size_t{36},
        bytes_.size() / 2, bytes_.size() - 1}) {
    SCOPED_TRACE("size=" + std::to_string(size));
    Status st = TryLoad(bytes_.substr(0, size), "trunc");
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kParseError) << st.ToString();
  }
}

TEST_F(SnapshotCorruption, BadMagicIsParseError) {
  std::string bad = bytes_;
  bad[0] = 'X';
  Status st = TryLoad(bad, "magic");
  EXPECT_EQ(st.code(), StatusCode::kParseError) << st.ToString();
}

TEST_F(SnapshotCorruption, VersionMismatchIsParseErrorNamingVersions) {
  std::string bad = bytes_;
  bad[8] = 0;
  bad[9] = 0;
  bad[10] = 0;
  bad[11] = 2;  // be32 version = 2
  Status st = TryLoad(bad, "version");
  ASSERT_EQ(st.code(), StatusCode::kParseError) << st.ToString();
  EXPECT_NE(st.message().find("version"), std::string::npos)
      << st.message();
}

TEST_F(SnapshotCorruption, SingleByteFlipsNeverCrashAndNeverLie) {
  // Flip one byte at a stride of offsets covering header, data region,
  // and offset index. Every flip must either fail loading with a Status
  // (the checksum covers the data region; geometry and ordering checks
  // cover the rest) or — never — load "successfully" into a different
  // answer.
  for (size_t off = 0; off < bytes_.size();
       off += 1 + bytes_.size() / 101) {
    SCOPED_TRACE("offset=" + std::to_string(off));
    std::string bad = bytes_;
    bad[off] = static_cast<char>(bad[off] ^ 0x40);
    std::string path = TempPath("flip");
    Spit(path, bad);
    auto store = MmapStore::Open(path);
    if (!store.ok()) continue;  // rejected at the file layer: fine
    auto snap = Snapshot::Load(**store);
    if (!snap.ok()) continue;  // rejected at the record layer: fine
    EXPECT_EQ(snap->result().pairs, session_.result.pairs)
        << "corrupted snapshot loaded into a different result";
  }
}

TEST_F(SnapshotCorruption, MissingRecordsAreParseErrors) {
  // Rebuild the store without the meta record / without the key record:
  // Load must fail cleanly, not crash.
  for (std::string drop : {"M", "K", "P", "A"}) {
    SCOPED_TRACE("drop=" + drop);
    auto src = MmapStore::Open(path_);
    ASSERT_TRUE(src.ok());
    std::string path = TempPath("drop");
    auto dst = MmapStore::Create(path);
    ASSERT_TRUE(dst.ok());
    ASSERT_TRUE((*src)
                    ->Scan("",
                           [&](std::string_view k, std::string_view v) {
                             if (std::string(k) == drop)
                               return Status::OK();
                             return (*dst)->Put(std::string(k),
                                                std::string(v));
                           })
                    .ok());
    ASSERT_TRUE((*dst)->Flush().ok());
    auto reopened = MmapStore::Open(path);
    ASSERT_TRUE(reopened.ok());
    auto snap = Snapshot::Load(**reopened);
    EXPECT_FALSE(snap.ok());
    EXPECT_EQ(snap.status().code(), StatusCode::kParseError)
        << snap.status().ToString();
  }
}

}  // namespace
}  // namespace gkeys
