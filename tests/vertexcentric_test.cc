#include "vertexcentric/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace gkeys {
namespace {

using vertexcentric::Engine;

TEST(VertexCentric, DeliversSeeds) {
  Engine<int> engine(4);
  std::vector<std::atomic<int>> received(8);
  for (auto& r : received) r.store(0);
  Engine<int>::Handler handler = [&](Engine<int>::Context&, uint32_t v,
                                     int&& payload) {
    received[v].fetch_add(payload);
  };
  std::vector<std::pair<uint32_t, int>> seeds;
  for (uint32_t v = 0; v < 8; ++v) seeds.emplace_back(v, int(v) + 1);
  uint64_t processed = engine.Run(seeds, handler);
  EXPECT_EQ(processed, 8u);
  for (uint32_t v = 0; v < 8; ++v) EXPECT_EQ(received[v].load(), int(v) + 1);
}

TEST(VertexCentric, CascadingSendsAllProcessed) {
  // Each message at vertex v forwards to v+1 until a limit: counts the
  // whole cascade and terminates.
  constexpr uint32_t kChain = 500;
  Engine<int> engine(4);
  std::atomic<int> processed_count{0};
  Engine<int>::Handler handler = [&](Engine<int>::Context& ctx, uint32_t v,
                                     int&& hops) {
    processed_count.fetch_add(1);
    if (v + 1 < kChain) ctx.Send(v + 1, hops + 1);
  };
  uint64_t processed = engine.Run({{0, 0}}, handler);
  EXPECT_EQ(processed, kChain);
  EXPECT_EQ(processed_count.load(), static_cast<int>(kChain));
}

TEST(VertexCentric, FanOutFanIn) {
  // One seed fans out to 64 vertices; each replies to vertex 0.
  Engine<int> engine(8);
  std::atomic<int> acks{0};
  Engine<int>::Handler handler = [&](Engine<int>::Context& ctx, uint32_t v,
                                     int&& tag) {
    if (v == 0 && tag == 0) {
      for (uint32_t i = 1; i <= 64; ++i) ctx.Send(i, 1);
    } else if (tag == 1) {
      ctx.Send(0, 2);
    } else {
      acks.fetch_add(1);
    }
  };
  engine.Run({{0, 0}}, handler);
  EXPECT_EQ(acks.load(), 64);
}

TEST(VertexCentric, MessagesSentCounter) {
  Engine<int> engine(2);
  Engine<int>::Handler handler = [&](Engine<int>::Context& ctx, uint32_t v,
                                     int&& n) {
    if (n > 0) ctx.Send(v, n - 1);
  };
  engine.Run({{3, 5}}, handler);
  // 1 seed + 5 self-sends.
  EXPECT_EQ(engine.messages_sent(), 6u);
}

TEST(VertexCentric, ManyWorkersNoDeadlockOnUnevenLoad) {
  // All work hashes to one shard; other workers must still terminate.
  Engine<int> engine(16);
  std::atomic<int> count{0};
  Engine<int>::Handler handler = [&](Engine<int>::Context& ctx, uint32_t,
                                     int&& n) {
    count.fetch_add(1);
    if (n > 0) ctx.Send(16, n - 1);  // vertex 16 -> shard 0 always
  };
  engine.Run({{16, 200}}, handler);
  EXPECT_EQ(count.load(), 201);
}

TEST(VertexCentric, ParallelismStress) {
  // A diamond cascade with contention on shared counters.
  Engine<uint32_t> engine(8);
  std::atomic<uint64_t> total{0};
  Engine<uint32_t>::Handler handler = [&](Engine<uint32_t>::Context& ctx,
                                          uint32_t v, uint32_t&& depth) {
    total.fetch_add(1);
    if (depth < 10) {
      ctx.Send(v * 2 + 1, depth + 1);
      ctx.Send(v * 2 + 2, depth + 1);
    }
  };
  engine.Run({{0, 0}}, handler);
  // Full binary tree of depth 10: 2^11 - 1 messages.
  EXPECT_EQ(total.load(), 2047u);
}

TEST(VertexCentric, RunIsRepeatable) {
  Engine<int> engine(4);
  std::atomic<int> count{0};
  Engine<int>::Handler handler = [&](Engine<int>::Context&, uint32_t,
                                     int&&) { count.fetch_add(1); };
  engine.Run({{1, 0}, {2, 0}}, handler);
  EXPECT_EQ(count.load(), 2);
  engine.Run({{3, 0}}, handler);
  EXPECT_EQ(count.load(), 3);
}

}  // namespace
}  // namespace gkeys
