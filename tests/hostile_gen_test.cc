#include "gen/hostile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "core/entity_matcher.h"
#include "graph/delta.h"
#include "graph/graph.h"

namespace gkeys {
namespace {

// Staged ops as comparable tuples, so two generator instances can be
// checked for byte-identical streams.
std::vector<std::tuple<NodeId, std::string, NodeId>> Ops(
    const std::vector<GraphDelta::DeltaTriple>& ts) {
  std::vector<std::tuple<NodeId, std::string, NodeId>> out;
  for (const auto& t : ts) out.emplace_back(t.subject, t.pred, t.object);
  return out;
}

void ExpectSameDelta(const GraphDelta& a, const GraphDelta& b) {
  EXPECT_EQ(Ops(a.added()), Ops(b.added()));
  EXPECT_EQ(Ops(a.removed()), Ops(b.removed()));
  ASSERT_EQ(a.new_nodes().size(), b.new_nodes().size());
  for (size_t i = 0; i < a.new_nodes().size(); ++i) {
    EXPECT_EQ(a.new_nodes()[i].kind, b.new_nodes()[i].kind);
    EXPECT_EQ(a.new_nodes()[i].label, b.new_nodes()[i].label);
  }
}

// ---------------------------------------------------------------------------
// Power-law degree graphs
// ---------------------------------------------------------------------------

TEST(PowerLaw, Deterministic) {
  PowerLawConfig cfg;
  cfg.seed = 5;
  SyntheticDataset a = GeneratePowerLaw(cfg);
  SyntheticDataset b = GeneratePowerLaw(cfg);
  EXPECT_EQ(a.graph.NumNodes(), b.graph.NumNodes());
  EXPECT_EQ(a.graph.NumTriples(), b.graph.NumTriples());
  EXPECT_EQ(a.planted, b.planted);
}

TEST(PowerLaw, PlantedPairsAreExactGroundTruth) {
  for (uint64_t seed : {17u, 99u, 123u}) {
    PowerLawConfig cfg;
    cfg.seed = seed;
    SyntheticDataset ds = GeneratePowerLaw(cfg);
    EXPECT_FALSE(ds.planted.empty());
    MatchResult r = Chase(ds.graph, ds.keys);
    EXPECT_EQ(r.pairs, ds.planted) << "seed=" << seed;
  }
}

TEST(PowerLaw, DegreeDistributionIsSkewed) {
  PowerLawConfig cfg;
  SyntheticDataset ds = GeneratePowerLaw(cfg);
  Symbol hub = ds.graph.interner().Lookup("hub");
  ASSERT_NE(hub, kNoSymbol);
  std::vector<size_t> indeg;
  for (NodeId h : ds.graph.EntitiesOfType(hub)) {
    indeg.push_back(ds.graph.InDegree(h));
  }
  ASSERT_GE(indeg.size(), 4u);
  std::sort(indeg.begin(), indeg.end(), std::greater<>());
  // Zipf(1.2) over 12 hubs: the hottest hub takes roughly a quarter of
  // all 160 leaf links while the median hub sees a handful. Assert the
  // shape, not exact counts, so config tweaks don't thrash the test.
  size_t median = indeg[indeg.size() / 2];
  EXPECT_GE(indeg[0], 4 * std::max<size_t>(median, 1));
  EXPECT_GE(indeg[0], 20u);
}

TEST(PowerLaw, ScaleGrowsGraph) {
  PowerLawConfig small, large;
  large.scale = 3.0;
  SyntheticDataset s = GeneratePowerLaw(small);
  SyntheticDataset l = GeneratePowerLaw(large);
  EXPECT_GT(l.graph.NumTriples(), 2 * s.graph.NumTriples());
  EXPECT_GT(l.planted.size(), s.planted.size());
}

// ---------------------------------------------------------------------------
// Skewed key selectivity
// ---------------------------------------------------------------------------

TEST(SkewedSelectivity, PlantedPairsAreExactGroundTruth) {
  for (uint64_t seed : {23u, 7u, 555u}) {
    SkewedSelectivityConfig cfg;
    cfg.seed = seed;
    SyntheticDataset ds = GenerateSkewedSelectivity(cfg);
    EXPECT_FALSE(ds.planted.empty());
    MatchResult r = Chase(ds.graph, ds.keys);
    EXPECT_EQ(r.pairs, ds.planted) << "seed=" << seed;
  }
}

TEST(SkewedSelectivity, HotBucketDominatesCandidates) {
  SkewedSelectivityConfig cfg;
  SyntheticDataset ds = GenerateSkewedSelectivity(cfg);
  MatchResult r = MatchEntities(ds.graph, ds.keys, Algorithm::kEmOptMr, 2);
  EXPECT_EQ(r.pairs, ds.planted);
  // All hot items share one literal on the key's only signature source,
  // so blocking is left with one giant bucket: |L| >= C(hot, 2) while
  // the identifiable share stays tiny.
  size_t hot = static_cast<size_t>(cfg.num_items * cfg.hot_fraction);
  size_t giant = hot * (hot - 1) / 2;
  EXPECT_GE(r.stats.candidates_initial, giant);
  EXPECT_LE(ds.planted.size() * 20, r.stats.candidates_initial);
}

TEST(SkewedSelectivity, Deterministic) {
  SkewedSelectivityConfig cfg;
  cfg.seed = 9;
  SyntheticDataset a = GenerateSkewedSelectivity(cfg);
  SyntheticDataset b = GenerateSkewedSelectivity(cfg);
  EXPECT_EQ(a.planted, b.planted);
  EXPECT_EQ(a.graph.NumTriples(), b.graph.NumTriples());
}

// ---------------------------------------------------------------------------
// Near-duplicate clusters
// ---------------------------------------------------------------------------

TEST(NearDuplicates, PlantedPairsAreExactGroundTruth) {
  for (uint64_t seed : {31u, 2u, 77u}) {
    NearDuplicateConfig cfg;
    cfg.seed = seed;
    SyntheticDataset ds = GenerateNearDuplicates(cfg);
    // One product pair and one part pair per cluster.
    EXPECT_EQ(ds.planted.size(), 2u * cfg.num_clusters);
    MatchResult r = Chase(ds.graph, ds.keys);
    EXPECT_EQ(r.pairs, ds.planted) << "seed=" << seed;
  }
}

TEST(NearDuplicates, ClustersAreCandidateDense) {
  NearDuplicateConfig cfg;
  SyntheticDataset ds = GenerateNearDuplicates(cfg);
  MatchResult r = MatchEntities(ds.graph, ds.keys, Algorithm::kEmOptMr, 2);
  EXPECT_EQ(r.pairs, ds.planted);
  // Every cluster contributes ~k^2/2 same-token product candidates, only
  // one of which is a true duplicate.
  size_t per_cluster =
      static_cast<size_t>(cfg.cluster_size) * (cfg.cluster_size - 1) / 2;
  EXPECT_GE(r.stats.candidates_initial,
            static_cast<size_t>(cfg.num_clusters) * per_cluster);
  // Confirmed pairs are a small fraction of the candidates the decoys
  // force through isomorphism checking (2 planted pairs per cluster vs
  // ~k^2 near-miss candidates).
  EXPECT_LE(r.stats.confirmed * 4, r.stats.candidates_initial);
}

// ---------------------------------------------------------------------------
// Delta generators
// ---------------------------------------------------------------------------

TEST(DeltaGen, UnknownKindRejected) {
  DeltaGenConfig cfg;
  EXPECT_EQ(MakeDeltaGenerator("bogus", cfg).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DeltaGen, StreamsAreDeterministic) {
  PowerLawConfig pcfg;
  SyntheticDataset ds = GeneratePowerLaw(pcfg);
  DeltaGenConfig cfg;
  for (const char* kind : {"uniform", "hub", "churn"}) {
    auto ga = MakeDeltaGenerator(kind, cfg);
    auto gb = MakeDeltaGenerator(kind, cfg);
    ASSERT_TRUE(ga.ok() && gb.ok());
    // Same config over the same (static) graph: identical staged ops,
    // batch after batch — the workload oracle's core assumption.
    for (int i = 0; i < 4; ++i) {
      GraphDelta da = (*ga)->Next(ds.graph);
      GraphDelta db = (*gb)->Next(ds.graph);
      ExpectSameDelta(da, db);
    }
  }
}

TEST(DeltaGen, UniformBatchesApplyCleanly) {
  PowerLawConfig pcfg;
  SyntheticDataset ds = GeneratePowerLaw(pcfg);
  DeltaGenConfig cfg;
  auto gen = MakeDeltaGenerator("uniform", cfg);
  ASSERT_TRUE(gen.ok());
  for (int i = 0; i < 5; ++i) {
    GraphDelta d = (*gen)->Next(ds.graph);
    EXPECT_LE(d.num_added_triples() + d.num_removed_triples(),
              cfg.ops_per_batch);
    ASSERT_TRUE(ds.graph.Apply(d).ok()) << "batch " << i;
  }
}

TEST(DeltaGen, HubOpsConcentrateOnHighDegreeEntities) {
  PowerLawConfig pcfg;
  SyntheticDataset ds = GeneratePowerLaw(pcfg);
  const Graph& g = ds.graph;
  DeltaGenConfig cfg;
  cfg.hub_fraction = 0.05;
  cfg.ops_per_batch = 16;
  auto gen = MakeDeltaGenerator("hub", cfg);
  ASSERT_TRUE(gen.ok());
  // Degree rank of the generator's target pool.
  std::vector<size_t> degrees;
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    if (g.IsEntity(n)) degrees.push_back(g.OutDegree(n) + g.InDegree(n));
  }
  std::sort(degrees.begin(), degrees.end(), std::greater<>());
  size_t top = std::max<size_t>(1, degrees.size() * cfg.hub_fraction);
  size_t floor = degrees[top - 1];
  auto is_hub = [&](NodeId n) {
    return g.IsEntity(n) && g.OutDegree(n) + g.InDegree(n) >= floor;
  };
  GraphDelta d = (*gen)->Next(g);
  size_t ops = 0;
  for (const auto& t : d.removed()) {
    EXPECT_TRUE(is_hub(t.subject) || is_hub(t.object));
    ++ops;
  }
  for (const auto& t : d.added()) {
    // Additions attach a staged entity TO a hub.
    EXPECT_TRUE(is_hub(t.object));
    EXPECT_GE(t.subject, d.base_nodes());
    ++ops;
  }
  EXPECT_GT(ops, 0u);
}

TEST(DeltaGen, ChurnRemovesThenReAddsVerbatim) {
  PowerLawConfig pcfg;
  pcfg.follows_per_leaf = 0;
  SyntheticDataset ds = GeneratePowerLaw(pcfg);
  size_t triples0 = ds.graph.NumTriples();
  std::vector<std::pair<NodeId, NodeId>> pairs0 =
      Chase(ds.graph, ds.keys).pairs;

  DeltaGenConfig cfg;
  cfg.churn_repeats = 2;
  auto gen = MakeDeltaGenerator("churn", cfg);
  ASSERT_TRUE(gen.ok());
  for (int cycle = 0; cycle < 3; ++cycle) {
    GraphDelta rm = (*gen)->Next(ds.graph);
    EXPECT_GT(rm.num_removed_triples(), 0u);
    EXPECT_EQ(rm.num_added_triples(), 0u);
    ASSERT_TRUE(ds.graph.Apply(rm).ok());
    EXPECT_LT(ds.graph.NumTriples(), triples0);

    GraphDelta re = (*gen)->Next(ds.graph);
    EXPECT_EQ(re.num_removed_triples(), 0u);
    EXPECT_EQ(re.num_added_triples(), rm.num_removed_triples());
    ASSERT_TRUE(ds.graph.Apply(re).ok());
    // The re-add restores the region exactly: triple count and the full
    // match result return to the original.
    EXPECT_EQ(ds.graph.NumTriples(), triples0);
    EXPECT_EQ(Chase(ds.graph, ds.keys).pairs, pairs0) << "cycle " << cycle;
  }
}

}  // namespace
}  // namespace gkeys
