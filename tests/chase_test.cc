#include "core/chase.h"

#include <gtest/gtest.h>

#include "gen/synthetic.h"
#include "test_util.h"

namespace gkeys {
namespace {

using testing::MakeG1;
using testing::MakeSigma1;
using testing::Pairs;

TEST(Chase, EmptyKeySetYieldsNothing) {
  auto m = MakeG1();
  KeySet empty;
  MatchResult r = Chase(m.g, empty);
  EXPECT_TRUE(r.pairs.empty());
  EXPECT_EQ(r.stats.candidates, 0u);
}

TEST(Chase, KeysOnAbsentTypesYieldNothing) {
  auto m = MakeG1();
  KeySet keys;
  ASSERT_TRUE(keys.AddFromDsl("key K for martian { x -[p]-> v* }").ok());
  MatchResult r = Chase(m.g, keys);
  EXPECT_TRUE(r.pairs.empty());
}

TEST(Chase, ChurchRosserOrderIndependence) {
  // Proposition 1: every chase order yields the same result. Shuffle the
  // candidate visit order with many seeds.
  auto m = MakeG1();
  KeySet sigma1 = MakeSigma1();
  MatchResult base = Chase(m.g, sigma1);
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    ChaseOptions opts;
    opts.shuffle_seed = seed;
    MatchResult r = Chase(m.g, sigma1, opts);
    EXPECT_EQ(r.pairs, base.pairs) << "seed " << seed;
  }
}

TEST(Chase, ChurchRosserOnSyntheticWorkload) {
  SyntheticConfig cfg;
  cfg.num_groups = 2;
  cfg.chain_length = 3;
  cfg.entities_per_type = 14;
  cfg.seed = 99;
  SyntheticDataset ds = GenerateSynthetic(cfg);
  MatchResult base = Chase(ds.graph, ds.keys);
  for (uint64_t seed : {7u, 77u, 777u}) {
    ChaseOptions opts;
    opts.shuffle_seed = seed;
    MatchResult r = Chase(ds.graph, ds.keys, opts);
    EXPECT_EQ(r.pairs, base.pairs) << "seed " << seed;
  }
}

TEST(Chase, DataLocality) {
  // (G, Σ) |= (e1, e2) iff (Gd1 ∪ Gd2, Σ) |= (e1, e2): restricting the
  // search to d-neighbors changes nothing (paper §4.1).
  SyntheticConfig cfg;
  cfg.num_groups = 2;
  cfg.chain_length = 2;
  cfg.radius = 2;
  cfg.entities_per_type = 16;
  SyntheticDataset ds = GenerateSynthetic(cfg);
  ChaseOptions restricted;  // default: d-neighbor restricted
  ChaseOptions unrestricted;
  unrestricted.unrestricted_neighbors = true;
  EXPECT_EQ(Chase(ds.graph, ds.keys, restricted).pairs,
            Chase(ds.graph, ds.keys, unrestricted).pairs);
}

TEST(Chase, Vf2BackendAgrees) {
  auto m = MakeG1();
  KeySet sigma1 = MakeSigma1();
  ChaseOptions vf2;
  vf2.use_vf2 = true;
  EXPECT_EQ(Chase(m.g, sigma1, vf2).pairs, Chase(m.g, sigma1).pairs);
}

TEST(Chase, TransitiveClosureInOutput) {
  // Three albums, all with the same name and year: every pair coincides,
  // and the output contains all three pairs (TC of Eq).
  Graph g;
  NodeId a = g.AddEntity("album");
  NodeId b = g.AddEntity("album");
  NodeId c = g.AddEntity("album");
  NodeId n = g.AddValue("N");
  NodeId y = g.AddValue("Y");
  for (NodeId e : {a, b, c}) {
    g.AddTriple(e, "name_of", n).IgnoreError();
    g.AddTriple(e, "release_year", y).IgnoreError();
  }
  g.Finalize();
  KeySet keys;
  ASSERT_TRUE(keys.AddFromDsl(R"(
    key Q2 for album {
      x -[name_of]-> n*
      x -[release_year]-> yr*
    }
  )").ok());
  MatchResult r = Chase(g, keys);
  EXPECT_EQ(r.pairs, Pairs({{a, b}, {a, c}, {b, c}}));
}

TEST(Chase, TransitiveClosureAcrossKeys) {
  // a~b by name+year, b~c by name+label: a~c only by transitivity.
  Graph g;
  NodeId a = g.AddEntity("album");
  NodeId b = g.AddEntity("album");
  NodeId c = g.AddEntity("album");
  NodeId n = g.AddValue("N");
  g.AddTriple(a, "name_of", n).IgnoreError();
  g.AddTriple(b, "name_of", n).IgnoreError();
  g.AddTriple(c, "name_of", n).IgnoreError();
  NodeId y = g.AddValue("Y");
  g.AddTriple(a, "release_year", y).IgnoreError();
  g.AddTriple(b, "release_year", y).IgnoreError();
  g.AddTriple(c, "release_year", g.AddValue("Z")).IgnoreError();
  NodeId l = g.AddValue("L");
  g.AddTriple(b, "label", l).IgnoreError();
  g.AddTriple(c, "label", l).IgnoreError();
  g.AddTriple(a, "label", g.AddValue("M")).IgnoreError();
  g.Finalize();
  KeySet keys;
  ASSERT_TRUE(keys.AddFromDsl(R"(
    key ByYear for album {
      x -[name_of]-> n*
      x -[release_year]-> yr*
    }
    key ByLabel for album {
      x -[name_of]-> n*
      x -[label]-> l*
    }
  )").ok());
  MatchResult r = Chase(g, keys);
  EXPECT_EQ(r.pairs, Pairs({{a, b}, {b, c}, {a, c}}));
}

TEST(Chase, RoundsBoundedByIdentifications) {
  auto m = MakeG1();
  KeySet sigma1 = MakeSigma1();
  MatchResult r = Chase(m.g, sigma1);
  // Fixpoint reached in ≤ merges + 1 rounds.
  EXPECT_LE(r.stats.rounds, r.stats.confirmed + 1);
  EXPECT_GE(r.stats.rounds, 2u);  // Q3 needed Q2's result
}

TEST(Chase, StatsArePopulated) {
  auto m = MakeG1();
  KeySet sigma1 = MakeSigma1();
  MatchResult r = Chase(m.g, sigma1);
  // L: album pairs (3) + artist pairs (3).
  EXPECT_EQ(r.stats.candidates_initial, 6u);
  EXPECT_EQ(r.stats.candidates, 6u);  // no pairing filter in the oracle
  EXPECT_GT(r.stats.iso_checks, 0u);
  EXPECT_GT(r.stats.search.feasibility_checks, 0u);
}

}  // namespace
}  // namespace gkeys
