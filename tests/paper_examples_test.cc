// Integration tests pinning the paper's own worked examples: the music
// knowledge base G1 with Σ1 = {Q1, Q2, Q3} (Examples 1–9), the company
// base G2 with Σ2 = {Q4, Q5} (Examples 4–7), and the Q6 street key.

#include <gtest/gtest.h>

#include "core/entity_matcher.h"
#include "test_util.h"

namespace gkeys {
namespace {

using testing::MakeG1;
using testing::MakeG2;
using testing::MakeSigma1;
using testing::MakeSigma2;
using testing::Pairs;

TEST(PaperExamples, Example7MusicChase) {
  // chase(G1, Σ1): (alb1, alb2) by Q2, then (art1, art2) by Q3.
  auto m = MakeG1();
  KeySet sigma1 = MakeSigma1();
  MatchResult r = Chase(m.g, sigma1);
  EXPECT_EQ(r.pairs, Pairs({{m.alb1, m.alb2}, {m.art1, m.art2}}));
  // It takes the dependency into account: at least 2 rounds of derivation
  // happened (one chase step enabled the other).
  EXPECT_EQ(r.stats.confirmed, 2u);
}

TEST(PaperExamples, Example7CompanyChase) {
  // chase(G2, Σ2): (com4, com5) by Q4, (com1, com2) by Q5.
  auto c = MakeG2();
  KeySet sigma2 = MakeSigma2();
  MatchResult r = Chase(c.g, sigma2);
  EXPECT_EQ(r.pairs, Pairs({{c.com4, c.com5}, {c.com1, c.com2}}));
}

TEST(PaperExamples, Example5SatisfactionViolations) {
  // G2 ⊭ Q4 (com4/com5 coincide but are distinct), and G1 violates Q2.
  auto c = MakeG2();
  KeySet sigma2 = MakeSigma2();
  EXPECT_FALSE(Satisfies(c.g, sigma2));
  auto m = MakeG1();
  KeySet sigma1 = MakeSigma1();
  EXPECT_FALSE(Satisfies(m.g, sigma1));
}

TEST(PaperExamples, SatisfactionAfterDeduplication) {
  // A clean graph (one album, one artist) satisfies all music keys.
  Graph g;
  NodeId art = g.AddEntity("artist");
  NodeId alb = g.AddEntity("album");
  g.AddTriple(art, "name_of", g.AddValue("The Beatles")).IgnoreError();
  g.AddTriple(alb, "name_of", g.AddValue("Anthology 2")).IgnoreError();
  g.AddTriple(alb, "release_year", g.AddValue("1996")).IgnoreError();
  g.AddTriple(alb, "recorded_by", art).IgnoreError();
  g.Finalize();
  KeySet sigma1 = MakeSigma1();
  EXPECT_TRUE(Satisfies(g, sigma1));
}

TEST(PaperExamples, IdentifiedDecisionProcedure) {
  auto m = MakeG1();
  KeySet sigma1 = MakeSigma1();
  EXPECT_TRUE(Identified(m.g, sigma1, m.alb1, m.alb2));
  EXPECT_TRUE(Identified(m.g, sigma1, m.art2, m.art1));  // symmetric
  EXPECT_TRUE(Identified(m.g, sigma1, m.alb3, m.alb3));  // reflexive
  EXPECT_FALSE(Identified(m.g, sigma1, m.alb1, m.alb3));
  EXPECT_FALSE(Identified(m.g, sigma1, m.art1, m.art3));
}

TEST(PaperExamples, Q1AloneIsNotEnough) {
  // Without Q2, the mutual recursion Q1/Q3 cannot bootstrap on G1: no
  // value-based evidence ever identifies the albums.
  auto m = MakeG1();
  KeySet partial;
  ASSERT_TRUE(partial.AddFromDsl(R"(
    key Q1 for album {
      x -[name_of]-> n*
      x -[recorded_by]-> y:artist
    }
    key Q3 for artist {
      x -[name_of]-> n*
      y:album -[recorded_by]-> x
    }
  )").ok());
  MatchResult r = Chase(m.g, partial);
  EXPECT_TRUE(r.pairs.empty());
}

TEST(PaperExamples, Q1FiresViaQ2DerivedArtists) {
  // Extend G1: two more albums of the SAME name recorded by art1/art2.
  // They are identifiable only by Q1 after Q3 identifies the artists —
  // a 3-step derivation chain.
  auto m = MakeG1();
  Graph g = m.g;
  NodeId extra1 = g.AddEntity("album");
  NodeId extra2 = g.AddEntity("album");
  NodeId name = g.AddValue("Abbey Road");
  g.AddTriple(extra1, "name_of", name).IgnoreError();
  g.AddTriple(extra2, "name_of", name).IgnoreError();
  g.AddTriple(extra1, "release_year", g.AddValue("1969")).IgnoreError();
  g.AddTriple(extra2, "release_year", g.AddValue("1970")).IgnoreError();  // differ!
  g.AddTriple(extra1, "recorded_by", m.art1).IgnoreError();
  g.AddTriple(extra2, "recorded_by", m.art2).IgnoreError();
  g.Finalize();
  KeySet sigma1 = MakeSigma1();
  MatchResult r = Chase(g, sigma1);
  EXPECT_EQ(r.pairs, Pairs({{m.alb1, m.alb2},
                            {m.art1, m.art2},
                            {extra1, extra2}}));
  EXPECT_GE(r.stats.rounds, 3u);  // the chain needs three rounds
}

TEST(PaperExamples, Q6StreetsOnlyInUK) {
  Graph g;
  NodeId uk1 = g.AddEntity("street");
  NodeId uk2 = g.AddEntity("street");
  NodeId us1 = g.AddEntity("street");
  NodeId us2 = g.AddEntity("street");
  NodeId zip = g.AddValue("12345");
  for (NodeId s : {uk1, uk2, us1, us2}) {
    g.AddTriple(s, "zip_code", zip).IgnoreError();
  }
  g.AddTriple(uk1, "nation_of", g.AddValue("UK")).IgnoreError();
  g.AddTriple(uk2, "nation_of", g.AddValue("UK")).IgnoreError();
  g.AddTriple(us1, "nation_of", g.AddValue("US")).IgnoreError();
  g.AddTriple(us2, "nation_of", g.AddValue("US")).IgnoreError();
  g.Finalize();
  KeySet keys;
  ASSERT_TRUE(keys.AddFromDsl(R"(
    key Q6 for street {
      x -[zip_code]-> code*
      x -[nation_of]-> "UK"
    }
  )").ok());
  MatchResult r = Chase(g, keys);
  EXPECT_EQ(r.pairs, Pairs({{uk1, uk2}}));
}

TEST(PaperExamples, AllAlgorithmsAgreeOnG1) {
  auto m = MakeG1();
  KeySet sigma1 = MakeSigma1();
  auto expected = Pairs({{m.alb1, m.alb2}, {m.art1, m.art2}});
  for (Algorithm a :
       {Algorithm::kNaiveChase, Algorithm::kEmMr, Algorithm::kEmVf2Mr,
        Algorithm::kEmOptMr, Algorithm::kEmVc, Algorithm::kEmOptVc}) {
    MatchResult r = MatchEntities(m.g, sigma1, a, /*processors=*/3);
    EXPECT_EQ(r.pairs, expected) << AlgorithmName(a);
  }
}

TEST(PaperExamples, AllAlgorithmsAgreeOnG2) {
  auto c = MakeG2();
  KeySet sigma2 = MakeSigma2();
  auto expected = Pairs({{c.com4, c.com5}, {c.com1, c.com2}});
  for (Algorithm a :
       {Algorithm::kNaiveChase, Algorithm::kEmMr, Algorithm::kEmVf2Mr,
        Algorithm::kEmOptMr, Algorithm::kEmVc, Algorithm::kEmOptVc}) {
    MatchResult r = MatchEntities(c.g, sigma2, a, /*processors=*/3);
    EXPECT_EQ(r.pairs, expected) << AlgorithmName(a);
  }
}

}  // namespace
}  // namespace gkeys
