#include "isomorph/eval_search.h"

#include <gtest/gtest.h>

#include <memory>

#include "pattern/parser.h"
#include "test_util.h"

namespace gkeys {
namespace {

using testing::MakeG1;
using testing::MakeG2;

CompiledPattern CompileDsl(const Graph& g, const char* dsl) {
  auto key = ParseKey(dsl);
  EXPECT_TRUE(key.ok()) << key.status().ToString();
  static std::vector<std::unique_ptr<Pattern>> keep;  // keep source alive
  keep.push_back(std::make_unique<Pattern>(std::move(key->pattern)));
  return Compile(*keep.back(), g);
}

TEST(EvalSearch, ValueBasedKeyIdentifiesSameNameYear) {
  auto m = MakeG1();
  CompiledPattern q2 = CompileDsl(m.g, R"(
    key Q2 for album {
      x -[name_of]-> n*
      x -[release_year]-> yr*
    })");
  EqView eq0;  // node identity only
  EXPECT_TRUE(KeyIdentifies(m.g, q2, m.alb1, m.alb2, eq0));
  // alb3 has year 1997: no coinciding match with alb1.
  EXPECT_FALSE(KeyIdentifies(m.g, q2, m.alb1, m.alb3, eq0));
  EXPECT_FALSE(KeyIdentifies(m.g, q2, m.alb2, m.alb3, eq0));
}

TEST(EvalSearch, RecursiveKeyNeedsEqFact) {
  auto m = MakeG1();
  CompiledPattern q3 = CompileDsl(m.g, R"(
    key Q3 for artist {
      x -[name_of]-> n*
      y:album -[recorded_by]-> x
    })");
  // Under Eq0, art1/art2 cannot be identified: their albums are distinct
  // entities (alb1 vs alb2) and not yet known equal.
  EqView eq0;
  EXPECT_FALSE(KeyIdentifies(m.g, q3, m.art1, m.art2, eq0));
  // After (alb1, alb2) enters Eq, Q3 fires (paper Example 7).
  EquivalenceRelation eq(m.g.NumNodes());
  eq.Union(m.alb1, m.alb2);
  EXPECT_TRUE(KeyIdentifies(m.g, q3, m.art1, m.art2, EqView(&eq)));
  // art3 records a different-named album: never identified.
  EXPECT_FALSE(KeyIdentifies(m.g, q3, m.art1, m.art3, EqView(&eq)));
}

TEST(EvalSearch, RecursiveKeyFiresThroughSharedEntity) {
  // Two artists recording the SAME album node: the identity pair (alb,
  // alb) is in Eq0 but per-side injectivity still demands distinct nodes
  // only within one side — (alb, alb) is a legal instantiation.
  Graph g;
  NodeId a1 = g.AddEntity("artist");
  NodeId a2 = g.AddEntity("artist");
  NodeId alb = g.AddEntity("album");
  NodeId name = g.AddValue("N");
  g.AddTriple(a1, "name_of", name).IgnoreError();
  g.AddTriple(a2, "name_of", name).IgnoreError();
  g.AddTriple(alb, "recorded_by", a1).IgnoreError();
  g.AddTriple(alb, "recorded_by", a2).IgnoreError();
  g.Finalize();
  CompiledPattern q3 = CompileDsl(g, R"(
    key Q3 for artist {
      x -[name_of]-> n*
      y:album -[recorded_by]-> x
    })");
  EqView eq0;
  EXPECT_TRUE(KeyIdentifies(g, q3, a1, a2, eq0));
}

TEST(EvalSearch, WildcardDoesNotRequireIdentity) {
  // Q4 fires for (com4, com5) under Eq0: the same-name parent is a
  // wildcard (com1 vs com2 need not be equal), the other parent com3 is
  // shared (paper Example 7: com4/com5 identified BEFORE com1/com2).
  auto c = MakeG2();
  CompiledPattern q4 = CompileDsl(c.g, R"(
    key Q4 for company {
      x -[name_of]-> n*
      _p:company -[name_of]-> n*
      _p -[parent_of]-> x
      y:company -[parent_of]-> x
    })");
  EqView eq0;
  EXPECT_TRUE(KeyIdentifies(c.g, q4, c.com4, c.com5, eq0));
}

TEST(EvalSearch, EntityVarBlocksWhereWildcardWouldPass) {
  // Same pattern as Q4 but with the same-name parent as an entity
  // variable: now (com4, com5) must wait for (com1, com2) ∈ Eq.
  auto c = MakeG2();
  CompiledPattern strict = CompileDsl(c.g, R"(
    key Q4strict for company {
      x -[name_of]-> n*
      p:company -[name_of]-> n*
      p -[parent_of]-> x
      y:company -[parent_of]-> x
    })");
  EqView eq0;
  EXPECT_FALSE(KeyIdentifies(c.g, strict, c.com4, c.com5, eq0));
  EquivalenceRelation eq(c.g.NumNodes());
  eq.Union(c.com1, c.com2);
  EXPECT_TRUE(KeyIdentifies(c.g, strict, c.com4, c.com5, EqView(&eq)));
}

TEST(EvalSearch, ConstantCondition) {
  Graph g;
  NodeId s1 = g.AddEntity("street");
  NodeId s2 = g.AddEntity("street");
  NodeId s3 = g.AddEntity("street");
  NodeId zip = g.AddValue("EH8 9AB");
  g.AddTriple(s1, "zip_code", zip).IgnoreError();
  g.AddTriple(s2, "zip_code", zip).IgnoreError();
  g.AddTriple(s3, "zip_code", zip).IgnoreError();
  g.AddTriple(s1, "nation_of", g.AddValue("UK")).IgnoreError();
  g.AddTriple(s2, "nation_of", g.AddValue("UK")).IgnoreError();
  g.AddTriple(s3, "nation_of", g.AddValue("US")).IgnoreError();
  g.Finalize();
  CompiledPattern q6 = CompileDsl(g, R"(
    key Q6 for street {
      x -[zip_code]-> code*
      x -[nation_of]-> "UK"
    })");
  EqView eq0;
  EXPECT_TRUE(KeyIdentifies(g, q6, s1, s2, eq0));
  EXPECT_FALSE(KeyIdentifies(g, q6, s1, s3, eq0));  // s3 is in the US
  EXPECT_FALSE(KeyIdentifies(g, q6, s2, s3, eq0));
}

TEST(EvalSearch, TypeMismatchRejectsImmediately) {
  auto m = MakeG1();
  CompiledPattern q2 = CompileDsl(m.g, R"(
    key Q2 for album {
      x -[name_of]-> n*
      x -[release_year]-> yr*
    })");
  EqView eq0;
  EXPECT_FALSE(KeyIdentifies(m.g, q2, m.alb1, m.art1, eq0));
  EXPECT_FALSE(KeyIdentifies(m.g, q2, m.art1, m.art2, eq0));
}

TEST(EvalSearch, NeighborRestrictionConfinesSearch) {
  auto m = MakeG1();
  CompiledPattern q2 = CompileDsl(m.g, R"(
    key Q2 for album {
      x -[name_of]-> n*
      x -[release_year]-> yr*
    })");
  EqView eq0;
  NodeSet full1 = DNeighbor(m.g, m.alb1, 1);
  NodeSet full2 = DNeighbor(m.g, m.alb2, 1);
  EXPECT_TRUE(KeyIdentifies(m.g, q2, m.alb1, m.alb2, eq0, &full1, &full2));
  // A crippled neighbor set without the year value blocks the match.
  NodeSet crippled;
  crippled.Insert(m.alb1);
  EXPECT_FALSE(
      KeyIdentifies(m.g, q2, m.alb1, m.alb2, eq0, &crippled, &full2));
}

TEST(EvalSearch, StatsAreCounted) {
  auto m = MakeG1();
  CompiledPattern q2 = CompileDsl(m.g, R"(
    key Q2 for album {
      x -[name_of]-> n*
      x -[release_year]-> yr*
    })");
  EqView eq0;
  SearchStats stats;
  EXPECT_TRUE(KeyIdentifies(m.g, q2, m.alb1, m.alb2, eq0, nullptr, nullptr,
                            &stats));
  EXPECT_GT(stats.expansions, 0u);
  EXPECT_GT(stats.feasibility_checks, 0u);
  EXPECT_EQ(stats.full_instantiations, 1u);  // early termination
}

TEST(EvalSearch, MatchesAtSingleSide) {
  auto m = MakeG1();
  CompiledPattern q1 = CompileDsl(m.g, R"(
    key Q1 for album {
      x -[name_of]-> n*
      x -[recorded_by]-> y:artist
    })");
  EXPECT_TRUE(MatchesAt(m.g, q1, m.alb1));
  EXPECT_FALSE(MatchesAt(m.g, q1, m.art1));  // wrong type
  // An album with no recorded_by edge does not match.
  Graph g2 = m.g;  // copy
  NodeId lonely = g2.AddEntity("album");
  g2.AddTriple(lonely, "name_of", g2.AddValue("Solo")).IgnoreError();
  g2.Finalize();
  CompiledPattern q1b = CompileDsl(g2, R"(
    key Q1 for album {
      x -[name_of]-> n*
      x -[recorded_by]-> y:artist
    })");
  EXPECT_FALSE(MatchesAt(g2, q1b, lonely));
}

TEST(EvalSearch, SelfLoopPattern) {
  Graph g;
  NodeId p1 = g.AddEntity("page");
  NodeId p2 = g.AddEntity("page");
  NodeId p3 = g.AddEntity("page");
  NodeId u = g.AddValue("u");
  g.AddTriple(p1, "links_to", p1).IgnoreError();
  g.AddTriple(p2, "links_to", p2).IgnoreError();
  g.AddTriple(p1, "url", u).IgnoreError();
  g.AddTriple(p2, "url", u).IgnoreError();
  g.AddTriple(p3, "url", u).IgnoreError();  // no self loop
  g.Finalize();
  CompiledPattern k = CompileDsl(g, R"(
    key K for page {
      x -[links_to]-> x
      x -[url]-> u*
    })");
  EqView eq0;
  EXPECT_TRUE(KeyIdentifies(g, k, p1, p2, eq0));
  EXPECT_FALSE(KeyIdentifies(g, k, p1, p3, eq0));
}

TEST(EvalSearch, UnmatchablePatternIsFalse) {
  auto m = MakeG1();
  CompiledPattern ghost = CompileDsl(m.g, R"(
    key K for album {
      x -[no_such_pred]-> n*
    })");
  EXPECT_FALSE(ghost.matchable);
  EqView eq0;
  EXPECT_FALSE(KeyIdentifies(m.g, ghost, m.alb1, m.alb2, eq0));
}

}  // namespace
}  // namespace gkeys
