#ifndef GKEYS_TESTS_TEST_UTIL_H_
#define GKEYS_TESTS_TEST_UTIL_H_

#include <utility>
#include <vector>

#include "graph/graph.h"
#include "keys/key.h"
#include "pattern/parser.h"

namespace gkeys {
namespace testing {

/// The paper's Fig. 2 graph G1 (music fragment). Node handles exposed for
/// assertions.
struct MusicGraph {
  Graph g;
  NodeId alb1, alb2, alb3;
  NodeId art1, art2, art3;
};

inline MusicGraph MakeG1() {
  MusicGraph m;
  Graph& g = m.g;
  m.art1 = g.AddEntity("artist");
  m.art2 = g.AddEntity("artist");
  m.art3 = g.AddEntity("artist");
  m.alb1 = g.AddEntity("album");
  m.alb2 = g.AddEntity("album");
  m.alb3 = g.AddEntity("album");
  NodeId beatles = g.AddValue("The Beatles");
  NodeId farnham = g.AddValue("John Farnham");
  NodeId anthology = g.AddValue("Anthology 2");
  NodeId y1996 = g.AddValue("1996");
  NodeId y1997 = g.AddValue("1997");
  g.AddTriple(m.art1, "name_of", beatles).IgnoreError();
  g.AddTriple(m.art2, "name_of", beatles).IgnoreError();
  g.AddTriple(m.art3, "name_of", farnham).IgnoreError();
  g.AddTriple(m.alb1, "name_of", anthology).IgnoreError();
  g.AddTriple(m.alb2, "name_of", anthology).IgnoreError();
  g.AddTriple(m.alb3, "name_of", anthology).IgnoreError();
  g.AddTriple(m.alb1, "release_year", y1996).IgnoreError();
  g.AddTriple(m.alb2, "release_year", y1996).IgnoreError();
  g.AddTriple(m.alb3, "release_year", y1997).IgnoreError();
  g.AddTriple(m.alb1, "recorded_by", m.art1).IgnoreError();
  g.AddTriple(m.alb2, "recorded_by", m.art2).IgnoreError();
  g.AddTriple(m.alb3, "recorded_by", m.art3).IgnoreError();
  g.Finalize();
  return m;
}

/// Σ1 = {Q1, Q2, Q3} from Fig. 1: the mutually recursive music keys.
inline KeySet MakeSigma1() {
  KeySet keys;
  Status st = keys.AddFromDsl(R"(
    key Q1 for album {
      x -[name_of]-> n*
      x -[recorded_by]-> y:artist
    }
    key Q2 for album {
      x -[name_of]-> n*
      x -[release_year]-> yr*
    }
    key Q3 for artist {
      x -[name_of]-> n*
      y:album -[recorded_by]-> x
    }
  )");
  (void)st;
  return keys;
}

/// The paper's Fig. 2 graph G2 (company fragment): com0 ("AT&T") is the
/// parent of com1, com2 ("AT&T") and com3 ("SBC"); com4 has parents
/// com1 + com3; com5 has parents com2 + com3; com4/com5 named "AT&T".
struct CompanyGraph {
  Graph g;
  NodeId com0, com1, com2, com3, com4, com5;
};

inline CompanyGraph MakeG2() {
  CompanyGraph c;
  Graph& g = c.g;
  c.com0 = g.AddEntity("company");
  c.com1 = g.AddEntity("company");
  c.com2 = g.AddEntity("company");
  c.com3 = g.AddEntity("company");
  c.com4 = g.AddEntity("company");
  c.com5 = g.AddEntity("company");
  NodeId att = g.AddValue("AT&T");
  NodeId sbc = g.AddValue("SBC");
  g.AddTriple(c.com0, "name_of", att).IgnoreError();
  g.AddTriple(c.com1, "name_of", att).IgnoreError();
  g.AddTriple(c.com2, "name_of", att).IgnoreError();
  g.AddTriple(c.com3, "name_of", sbc).IgnoreError();
  g.AddTriple(c.com4, "name_of", att).IgnoreError();
  g.AddTriple(c.com5, "name_of", att).IgnoreError();
  g.AddTriple(c.com0, "parent_of", c.com1).IgnoreError();
  g.AddTriple(c.com0, "parent_of", c.com2).IgnoreError();
  g.AddTriple(c.com0, "parent_of", c.com3).IgnoreError();
  g.AddTriple(c.com1, "parent_of", c.com4).IgnoreError();
  g.AddTriple(c.com2, "parent_of", c.com5).IgnoreError();
  g.AddTriple(c.com3, "parent_of", c.com4).IgnoreError();
  g.AddTriple(c.com3, "parent_of", c.com5).IgnoreError();
  g.Finalize();
  return c;
}

/// Σ2 = {Q4, Q5}: merge/split company keys (Fig. 1).
inline KeySet MakeSigma2() {
  KeySet keys;
  Status st = keys.AddFromDsl(R"(
    key Q4 for company {
      x -[name_of]-> n*
      _p:company -[name_of]-> n*
      _p -[parent_of]-> x
      y:company -[parent_of]-> x
    }
    key Q5 for company {
      x -[name_of]-> n*
      _p:company -[name_of]-> n*
      _p -[parent_of]-> x
      _p -[parent_of]-> y:company
    }
  )");
  (void)st;
  return keys;
}

/// Normalizes a pair list for comparison.
inline std::vector<std::pair<NodeId, NodeId>> Pairs(
    std::initializer_list<std::pair<NodeId, NodeId>> pairs) {
  std::vector<std::pair<NodeId, NodeId>> v;
  for (auto [a, b] : pairs) {
    if (a > b) std::swap(a, b);
    v.emplace_back(a, b);
  }
  std::sort(v.begin(), v.end());
  return v;
}

}  // namespace testing
}  // namespace gkeys

#endif  // GKEYS_TESTS_TEST_UTIL_H_
