#include "pattern/pattern.h"

#include <gtest/gtest.h>

#include "pattern/parser.h"

namespace gkeys {
namespace {

Pattern MusicKeyQ1() {
  // Q1: album by name + recording artist (recursive).
  Pattern p;
  int x = p.AddDesignated("album");
  int n = p.AddValueVar("n");
  int y = p.AddEntityVar("y", "artist");
  EXPECT_TRUE(p.AddTriple(x, "name_of", n).ok());
  EXPECT_TRUE(p.AddTriple(x, "recorded_by", y).ok());
  return p;
}

TEST(Pattern, BuilderAndValidate) {
  Pattern p = MusicKeyQ1();
  EXPECT_TRUE(p.Validate().ok());
  EXPECT_EQ(p.size(), 2u);
  EXPECT_EQ(p.designated_type(), "album");
  EXPECT_TRUE(p.IsRecursive());
  EXPECT_EQ(p.Radius(), 1);
}

TEST(Pattern, ValueBasedIsNotRecursive) {
  Pattern p;
  int x = p.AddDesignated("album");
  int n = p.AddValueVar("n");
  ASSERT_TRUE(p.AddTriple(x, "name_of", n).ok());
  EXPECT_TRUE(p.Validate().ok());
  EXPECT_FALSE(p.IsRecursive());
}

TEST(Pattern, WildcardDoesNotMakeRecursive) {
  Pattern p;
  int x = p.AddDesignated("company");
  int w = p.AddWildcard("w", "company");
  ASSERT_TRUE(p.AddTriple(w, "parent_of", x).ok());
  EXPECT_TRUE(p.Validate().ok());
  EXPECT_FALSE(p.IsRecursive());
}

TEST(Pattern, ValidateRejectsNoDesignated) {
  Pattern p;
  int a = p.AddEntityVar("a", "t");
  int v = p.AddValueVar("v");
  ASSERT_TRUE(p.AddTriple(a, "p", v).ok());
  EXPECT_FALSE(p.Validate().ok());
}

TEST(Pattern, ValidateRejectsNoTriples) {
  Pattern p;
  p.AddDesignated("t");
  EXPECT_FALSE(p.Validate().ok());
}

TEST(Pattern, ValidateRejectsDisconnected) {
  Pattern p;
  int x = p.AddDesignated("t");
  int v = p.AddValueVar("v");
  int a = p.AddEntityVar("a", "t");
  int w = p.AddValueVar("w");
  ASSERT_TRUE(p.AddTriple(x, "p", v).ok());
  ASSERT_TRUE(p.AddTriple(a, "p", w).ok());  // island
  EXPECT_FALSE(p.Validate().ok());
}

TEST(Pattern, ValidateRejectsDuplicateNames) {
  Pattern p;
  int x = p.AddDesignated("t");
  int a = p.AddEntityVar("dup", "t");
  int b = p.AddEntityVar("dup", "t");
  ASSERT_TRUE(p.AddTriple(x, "p", a).ok());
  ASSERT_TRUE(p.AddTriple(x, "p", b).ok());
  EXPECT_FALSE(p.Validate().ok());
}

TEST(Pattern, AddTripleRejectsValueSubject) {
  Pattern p;
  p.AddDesignated("t");
  int v = p.AddValueVar("v");
  int x = p.FindNode("x");
  EXPECT_FALSE(p.AddTriple(v, "p", x).ok());
}

TEST(Pattern, ConstantsWithEqualTextShareNode) {
  Pattern p;
  int a = p.AddConstant("UK");
  int b = p.AddConstant("UK");
  int c = p.AddConstant("US");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Pattern, RadiusOfDeepPath) {
  Pattern p;
  int x = p.AddDesignated("t");
  int w1 = p.AddWildcard("w1", "a");
  int w2 = p.AddWildcard("w2", "a");
  int v = p.AddValueVar("v");
  ASSERT_TRUE(p.AddTriple(x, "p", w1).ok());
  ASSERT_TRUE(p.AddTriple(w1, "p", w2).ok());
  ASSERT_TRUE(p.AddTriple(w2, "p", v).ok());
  ASSERT_TRUE(p.Validate().ok());
  EXPECT_EQ(p.Radius(), 3);
}

TEST(Pattern, RadiusIgnoresEdgeDirection) {
  Pattern p;
  int x = p.AddDesignated("artist");
  int y = p.AddEntityVar("y", "album");
  int v = p.AddValueVar("v");
  ASSERT_TRUE(p.AddTriple(y, "recorded_by", x).ok());  // edge INTO x
  ASSERT_TRUE(p.AddTriple(y, "name_of", v).ok());
  ASSERT_TRUE(p.Validate().ok());
  EXPECT_EQ(p.Radius(), 2);
}

// ---- Compile ----

TEST(Compile, ResolvesSymbolsAndPlan) {
  Graph g;
  NodeId alb = g.AddEntity("album");
  NodeId art = g.AddEntity("artist");
  g.AddTriple(alb, "name_of", g.AddValue("A")).IgnoreError();
  g.AddTriple(alb, "recorded_by", art).IgnoreError();
  g.Finalize();

  Pattern p = MusicKeyQ1();
  ASSERT_TRUE(p.Validate().ok());
  CompiledPattern cp = Compile(p, g);
  EXPECT_TRUE(cp.matchable);
  // Plan covers every node except x, each reachable from earlier ones.
  EXPECT_EQ(cp.plan.size(), p.nodes().size() - 1);
  std::vector<bool> placed(p.nodes().size(), false);
  placed[cp.designated] = true;
  for (const SearchStep& s : cp.plan) {
    const CompiledTriple& t = cp.triples[s.via_triple];
    int anchor = s.forward ? t.subject : t.object;
    EXPECT_TRUE(placed[anchor]) << "anchor must be already placed";
    placed[s.node] = true;
  }
  for (bool b : placed) EXPECT_TRUE(b);
}

TEST(Compile, UnmatchableWhenPredicateMissing) {
  Graph g;
  g.AddEntity("album");
  g.AddEntity("artist");
  g.Finalize();
  Pattern p = MusicKeyQ1();
  CompiledPattern cp = Compile(p, g);
  EXPECT_FALSE(cp.matchable);  // name_of never occurs in g
}

TEST(Compile, UnmatchableWhenConstantMissing) {
  Graph g;
  NodeId s = g.AddEntity("street");
  g.AddTriple(s, "nation_of", g.AddValue("US")).IgnoreError();
  g.Finalize();
  Pattern p;
  int x = p.AddDesignated("street");
  int c = p.AddConstant("UK");
  ASSERT_TRUE(p.AddTriple(x, "nation_of", c).ok());
  ASSERT_TRUE(p.Validate().ok());
  EXPECT_FALSE(Compile(p, g).matchable);
}

// ---- Parser ----

TEST(Parser, ParsesPaperKeys) {
  auto keys = ParseKeys(R"(
    # music keys
    key Q1 for album {
      x -[name_of]-> n*
      x -[recorded_by]-> y:artist
    }
    key Q6 for street {
      x -[zip_code]-> code*
      x -[nation_of]-> "UK"
    }
  )");
  ASSERT_TRUE(keys.ok()) << keys.status().ToString();
  ASSERT_EQ(keys->size(), 2u);
  EXPECT_EQ((*keys)[0].name, "Q1");
  EXPECT_EQ((*keys)[0].pattern.designated_type(), "album");
  EXPECT_TRUE((*keys)[0].pattern.IsRecursive());
  EXPECT_EQ((*keys)[1].name, "Q6");
  EXPECT_FALSE((*keys)[1].pattern.IsRecursive());
  // The "UK" constant parsed as a constant node.
  bool has_constant = false;
  for (const auto& n : (*keys)[1].pattern.nodes()) {
    if (n.kind == VarKind::kConstant) {
      has_constant = true;
      EXPECT_EQ(n.name, "UK");
    }
  }
  EXPECT_TRUE(has_constant);
}

TEST(Parser, WildcardForms) {
  auto key = ParseKey(R"(
    key K for company {
      _p:company -[parent_of]-> x
      _p -[name_of]-> n*
      _:person -[runs]-> x
    }
  )");
  ASSERT_TRUE(key.ok()) << key.status().ToString();
  int wildcards = 0;
  for (const auto& n : key->pattern.nodes()) {
    if (n.kind == VarKind::kWildcard) ++wildcards;
  }
  EXPECT_EQ(wildcards, 2);
}

TEST(Parser, EntityVarSubject) {
  auto key = ParseKey(R"(
    key Q3 for artist {
      x -[name_of]-> n*
      y:album -[recorded_by]-> x
    }
  )");
  ASSERT_TRUE(key.ok()) << key.status().ToString();
  EXPECT_TRUE(key->pattern.IsRecursive());
  EXPECT_EQ(key->pattern.Radius(), 1);
}

TEST(Parser, RejectsUnknownBareName) {
  auto r = ParseKey(R"(
    key K for t {
      x -[p]-> ghost
    }
  )");
  EXPECT_FALSE(r.ok());
}

TEST(Parser, RejectsConflictingRedeclaration) {
  auto r = ParseKey(R"(
    key K for t {
      x -[p]-> y:a
      x -[q]-> y:b
    }
  )");
  EXPECT_FALSE(r.ok());
}

TEST(Parser, RejectsMalformedEdge) {
  EXPECT_FALSE(ParseKey("key K for t {\n x -> n*\n}").ok());
  EXPECT_FALSE(ParseKey("key K for t {\n x -[]-> n*\n}").ok());
}

TEST(Parser, RejectsUnterminatedBlock) {
  EXPECT_FALSE(ParseKey("key K for t {\n x -[p]-> n*\n").ok());
}

TEST(Parser, RejectsTripleOutsideBlock) {
  EXPECT_FALSE(ParseKeys("x -[p]-> n*").ok());
}

TEST(Parser, RejectsEmptyInput) {
  EXPECT_FALSE(ParseKeys("  \n # just a comment\n").ok());
}

TEST(Parser, RejectsUnterminatedString) {
  EXPECT_FALSE(ParseKey("key K for t {\n x -[p]-> \"oops\n}").ok());
}

TEST(Parser, ConstantsMayContainSpaces) {
  auto key = ParseKey(R"(
    key K for band {
      x -[name_of]-> "The Beatles"
    }
  )");
  ASSERT_TRUE(key.ok()) << key.status().ToString();
  EXPECT_EQ(key->pattern.nodes()[1].name, "The Beatles");
}

TEST(Parser, SelfLoopTriple) {
  auto key = ParseKey(R"(
    key K for page {
      x -[links_to]-> x
      x -[url]-> u*
    }
  )");
  ASSERT_TRUE(key.ok()) << key.status().ToString();
  EXPECT_EQ(key->pattern.size(), 2u);
}

}  // namespace
}  // namespace gkeys
