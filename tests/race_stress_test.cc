// Concurrency stress scenarios for the session API, written to run under
// ThreadSanitizer (the CI `tsan` job builds with GKEYS_TSAN=ON): many
// threads sharing one COW plan, concurrent streaming sinks, and the
// Patch-while-Run misuse that must surface as a Status instead of a data
// race. Scales are deliberately small — TSan multiplies runtime ~10x and
// the point is interleaving coverage, not throughput.

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/matcher.h"
#include "gen/synthetic.h"
#include "graph/delta.h"
#include "test_util.h"

namespace gkeys {
namespace {

SyntheticConfig StressConfig() {
  SyntheticConfig cfg;
  cfg.seed = 7;
  cfg.num_groups = 2;
  cfg.chain_length = 2;  // recursive keys => dependency/ghost wake-ups
  cfg.radius = 2;
  cfg.entities_per_type = 30;
  cfg.duplicate_fraction = 0.2;
  return cfg;
}

/// Collects streamed pairs and verifies per-sink exactly-once delivery.
/// Callbacks are serialized per run (driver thread), so no locking.
class CollectingSink : public MatchSink {
 public:
  void OnPair(NodeId a, NodeId b) override {
    pairs.emplace_back(a, b);
  }
  void OnProgress(const EmStats& progress) override {
    rounds_seen = std::max(rounds_seen, progress.rounds);
  }

  std::vector<std::pair<NodeId, NodeId>> Sorted() const {
    auto v = pairs;
    std::sort(v.begin(), v.end());
    return v;
  }
  bool ExactlyOnce() const {
    auto v = Sorted();
    return std::adjacent_find(v.begin(), v.end()) == v.end();
  }

  std::vector<std::pair<NodeId, NodeId>> pairs;
  size_t rounds_seen = 0;
};

// Many threads run every parallel engine over ONE shared plan; each run
// itself uses multiple workers, so the MergeLog / DerivationLog /
// ConcurrentEquivalence / engine-queue internals are all exercised from
// many threads at once. Every run must land on the planted ground truth.
TEST(RaceStress, ConcurrentRunsOverSharedPlan) {
  SyntheticDataset data = GenerateSynthetic(StressConfig());
  auto plan = Matcher::Compile(data.graph, data.keys,
                               PlanOptions::For(Algorithm::kEmOptVc, 2));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  const Algorithm algos[] = {Algorithm::kEmOptMr, Algorithm::kEmMr,
                             Algorithm::kEmOptVc, Algorithm::kEmVc};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Matcher matcher(algos[t % 4]);
      matcher.processors(3);
      auto r = matcher.Run(*plan);
      if (!r.ok() || r->pairs != data.planted) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

// Concurrent STREAMING runs: one sink per thread over the shared plan.
// Each stream must deliver the full result exactly once — the per-run
// PairStreamer mirrors must not bleed into each other.
TEST(RaceStress, ConcurrentStreamingSinks) {
  SyntheticDataset data = GenerateSynthetic(StressConfig());
  auto plan = Matcher::Compile(data.graph, data.keys,
                               PlanOptions::For(Algorithm::kEmOptVc, 2));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  constexpr int kThreads = 6;
  std::vector<CollectingSink> sinks(kThreads);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Matcher matcher(t % 2 == 0 ? Algorithm::kEmOptVc
                                 : Algorithm::kEmOptMr);
      matcher.processors(2);
      auto r = matcher.Run(*plan, sinks[t]);
      if (!r.ok()) failures.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(failures.load(), 0);
  for (const CollectingSink& sink : sinks) {
    EXPECT_TRUE(sink.ExactlyOnce());
    EXPECT_EQ(sink.Sorted(), data.planted);
    EXPECT_GE(sink.rounds_seen, 1u);
  }
}

// A patched plan shares untouched sections with its source copy-on-write;
// running both concurrently must read the shared NodeSet payloads without
// writes racing in. (The source plan's GRAPH changed under it, so only the
// patched plan is run — the source serves concurrent accessor reads, which
// the API documents as safe.)
TEST(RaceStress, ConcurrentRunsOverPatchedCowPlan) {
  testing::CompanyGraph c = testing::MakeG2();
  KeySet keys = testing::MakeSigma2();
  auto base = Matcher::Compile(c.g, keys);
  ASSERT_TRUE(base.ok()) << base.status().ToString();

  GraphDelta delta(c.g);
  NodeId c6 = delta.AddEntity("company");
  NodeId att = delta.AddValue("AT&T");
  ASSERT_TRUE(delta.AddTriple(c6, "name_of", att).ok());
  ASSERT_TRUE(delta.AddTriple(c.com2, "parent_of", c6).ok());
  ASSERT_TRUE(delta.AddTriple(c.com3, "parent_of", c6).ok());
  ASSERT_TRUE(c.g.Apply(delta).ok());
  auto patched = base->Patch(delta);
  ASSERT_TRUE(patched.ok()) << patched.status().ToString();

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      if (t % 2 == 0) {
        Matcher matcher(Algorithm::kEmOptMr);
        matcher.processors(2);
        auto r = matcher.Run(*patched);
        // The post-delta G2 identifies 4 pairs (paper Fig. 2).
        if (!r.ok() || r->pairs.size() != 4) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        // Concurrent reads of the COW-shared source plan's accessors.
        if (base->num_candidates() == 0 || base->memory_bytes() == 0) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

// Misuse: Patch with a delta that was never applied to the graph must
// return FailedPrecondition — from any thread, even while runs are in
// flight on the same plan — not mutate shared state or race.
TEST(RaceStress, PatchWhileRunMisuseReturnsStatus) {
  SyntheticDataset data = GenerateSynthetic(StressConfig());
  auto plan = Matcher::Compile(data.graph, data.keys,
                               PlanOptions::For(Algorithm::kEmOptMr, 2));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  GraphDelta unapplied(data.graph);
  NodeId fresh = unapplied.AddEntity("T_0_0");
  NodeId v = unapplied.AddValue("race-stress-value");
  ASSERT_TRUE(unapplied.AddTriple(fresh, "a_0_0_1", v).ok());
  // NOT applied: Graph::Apply(unapplied) is deliberately missing.

  constexpr int kRunners = 4;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  threads.reserve(kRunners + 2);
  for (int t = 0; t < kRunners; ++t) {
    threads.emplace_back([&] {
      Matcher matcher(Algorithm::kEmOptMr);
      matcher.processors(2);
      auto r = matcher.Run(*plan);
      if (!r.ok() || r->pairs != data.planted) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      auto misuse = plan->Patch(unapplied);
      if (misuse.ok() ||
          misuse.status().code() != StatusCode::kFailedPrecondition) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace gkeys
