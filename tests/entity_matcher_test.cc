// Facade-level tests: option presets, custom-option dispatch, and a few
// pattern shapes not covered elsewhere (parallel edges, diamond patterns,
// multiple keys per type racing on the same pair).

#include "core/entity_matcher.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace gkeys {
namespace {

using testing::Pairs;

TEST(EmOptionsPresets, MatchThePaperVariants) {
  EmOptions mr = EmOptions::For(Algorithm::kEmMr, 4);
  EXPECT_EQ(mr.processors, 4);
  EXPECT_FALSE(mr.use_vf2);
  EXPECT_FALSE(mr.use_pairing);

  EmOptions vf2 = EmOptions::For(Algorithm::kEmVf2Mr, 4);
  EXPECT_TRUE(vf2.use_vf2);

  EmOptions opt_mr = EmOptions::For(Algorithm::kEmOptMr, 4);
  EXPECT_TRUE(opt_mr.use_pairing);
  EXPECT_TRUE(opt_mr.use_dependency);
  EXPECT_TRUE(opt_mr.use_incremental);

  EmOptions vc = EmOptions::For(Algorithm::kEmVc, 4);
  EXPECT_TRUE(vc.use_pairing);  // Gp is built from pairing (§5.1)
  EXPECT_EQ(vc.bounded_messages, 0);
  EXPECT_FALSE(vc.prioritized);

  EmOptions opt_vc = EmOptions::For(Algorithm::kEmOptVc, 4);
  EXPECT_EQ(opt_vc.bounded_messages, 4);  // the paper's k = 4
  EXPECT_TRUE(opt_vc.prioritized);
}

TEST(EntityMatcher, AlgorithmNamesAreStable) {
  EXPECT_EQ(AlgorithmName(Algorithm::kNaiveChase), "NaiveChase");
  EXPECT_EQ(AlgorithmName(Algorithm::kEmMr), "EMMR");
  EXPECT_EQ(AlgorithmName(Algorithm::kEmVf2Mr), "EMVF2MR");
  EXPECT_EQ(AlgorithmName(Algorithm::kEmOptMr), "EMOptMR");
  EXPECT_EQ(AlgorithmName(Algorithm::kEmVc), "EMVC");
  EXPECT_EQ(AlgorithmName(Algorithm::kEmOptVc), "EMOptVC");
}

TEST(EntityMatcher, CustomOptionsDispatch) {
  auto m = testing::MakeG1();
  KeySet sigma1 = testing::MakeSigma1();
  EmOptions custom;
  custom.processors = 2;
  custom.use_pairing = true;
  custom.bounded_messages = 2;
  MatchResult r =
      MatchEntities(m.g, sigma1, Algorithm::kEmOptVc, custom);
  EXPECT_EQ(r.pairs, Pairs({{m.alb1, m.alb2}, {m.art1, m.art2}}));
}

// Diamond-shaped pattern: two paths from x converge on one value.
TEST(EntityMatcher, DiamondPattern) {
  Graph g;
  auto make = [&](const char* v_left, const char* v_right) {
    NodeId x = g.AddEntity("doc");
    NodeId l = g.AddEntity("sec");
    NodeId r = g.AddEntity("sec");
    g.AddTriple(x, "first", l).IgnoreError();
    g.AddTriple(x, "second", r).IgnoreError();
    g.AddTriple(l, "hash", g.AddValue(v_left)).IgnoreError();
    g.AddTriple(r, "hash", g.AddValue(v_right)).IgnoreError();
    return x;
  };
  NodeId d1 = make("H1", "H2");
  NodeId d2 = make("H1", "H2");
  NodeId d3 = make("H1", "H3");  // second section differs
  g.Finalize();
  KeySet keys;
  ASSERT_TRUE(keys.AddFromDsl(R"(
    key DocByHashes for doc {
      x -[first]-> _l:sec
      x -[second]-> _r:sec
      _l -[hash]-> h1*
      _r -[hash]-> h2*
    }
  )").ok());
  for (Algorithm a : {Algorithm::kNaiveChase, Algorithm::kEmOptMr,
                      Algorithm::kEmOptVc}) {
    MatchResult r = MatchEntities(g, keys, a, 2);
    EXPECT_EQ(r.pairs, Pairs({{d1, d2}})) << AlgorithmName(a);
    (void)d3;
  }
}

// Two edges with different predicates between the same pattern nodes.
TEST(EntityMatcher, ParallelPatternEdges) {
  Graph g;
  auto make = [&](bool both) {
    NodeId x = g.AddEntity("user");
    NodeId y = g.AddEntity("account");
    g.AddTriple(x, "owns", y).IgnoreError();
    if (both) g.AddTriple(x, "manages", y).IgnoreError();
    g.AddTriple(x, "name", g.AddValue("sam")).IgnoreError();
    return x;
  };
  NodeId u1 = make(true);
  NodeId u2 = make(true);
  NodeId u3 = make(false);  // owns but does not manage
  g.Finalize();
  KeySet keys;
  ASSERT_TRUE(keys.AddFromDsl(R"(
    key UserByManagedAccount for user {
      x -[name]-> n*
      x -[owns]-> _a:account
      x -[manages]-> _a
    }
  )").ok());
  for (Algorithm a : {Algorithm::kNaiveChase, Algorithm::kEmOptMr,
                      Algorithm::kEmOptVc}) {
    MatchResult r = MatchEntities(g, keys, a, 2);
    EXPECT_EQ(r.pairs, Pairs({{u1, u2}})) << AlgorithmName(a);
    (void)u3;
  }
}

// Several keys race on the same pair: identification is "any key", and
// the result never double-counts.
TEST(EntityMatcher, MultipleKeysSamePair) {
  Graph g;
  NodeId a = g.AddEntity("album");
  NodeId b = g.AddEntity("album");
  NodeId n = g.AddValue("N");
  NodeId y = g.AddValue("Y");
  NodeId l = g.AddValue("L");
  for (NodeId e : {a, b}) {
    g.AddTriple(e, "name_of", n).IgnoreError();
    g.AddTriple(e, "release_year", y).IgnoreError();
    g.AddTriple(e, "label", l).IgnoreError();
  }
  g.Finalize();
  KeySet keys;
  ASSERT_TRUE(keys.AddFromDsl(R"(
    key ByYear for album {
      x -[name_of]-> n*
      x -[release_year]-> yr*
    }
    key ByLabel for album {
      x -[name_of]-> n*
      x -[label]-> l*
    }
  )").ok());
  for (Algorithm algo :
       {Algorithm::kEmMr, Algorithm::kEmVc, Algorithm::kEmOptVc}) {
    MatchResult r = MatchEntities(g, keys, algo, 4);
    EXPECT_EQ(r.pairs, Pairs({{a, b}})) << AlgorithmName(algo);
    EXPECT_EQ(r.stats.confirmed, 1u);
  }
}

// A key on a type that exists but whose predicate vocabulary is partially
// missing must simply never fire (compile-time unmatchable).
TEST(EntityMatcher, PartiallyUnmatchableKeySet) {
  auto m = testing::MakeG1();
  KeySet keys;
  ASSERT_TRUE(keys.AddFromDsl(R"(
    key Real for album {
      x -[name_of]-> n*
      x -[release_year]-> yr*
    }
    key Ghost for album {
      x -[no_such_predicate]-> n*
    }
  )").ok());
  for (Algorithm a : {Algorithm::kNaiveChase, Algorithm::kEmOptMr,
                      Algorithm::kEmVc}) {
    MatchResult r = MatchEntities(m.g, keys, a, 2);
    EXPECT_EQ(r.pairs, Pairs({{m.alb1, m.alb2}})) << AlgorithmName(a);
  }
}

}  // namespace
}  // namespace gkeys
