#include "workload/workload.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#ifndef GKEYS_WORKLOADS_DIR
#error "workload_test needs GKEYS_WORKLOADS_DIR (set by CMakeLists.txt)"
#endif

namespace gkeys {
namespace {

std::string SpecPath(const std::string& file) {
  return std::string(GKEYS_WORKLOADS_DIR) + "/" + file;
}

/// Timings (`_s` suffix) and the parallel engines' effort counters
/// (iso_checks / messages vary with worker interleaving) are the only
/// fields the harness does not promise bit-for-bit.
bool IsNoisyField(const std::string& field) {
  if (field.size() >= 2 && field.compare(field.size() - 2, 2, "_s") == 0) {
    return true;
  }
  return field == "iso_checks" || field == "messages";
}

/// Rows with the noisy fields dropped: everything left must be
/// reproducible bit-for-bit across reruns of the same spec.
JsonRows StripTimings(const JsonRows& rows) {
  JsonRows out;
  for (const auto& [name, fields] : rows) {
    std::vector<std::pair<std::string, double>> kept;
    for (const auto& f : fields) {
      if (!IsNoisyField(f.first)) kept.push_back(f);
    }
    out.emplace_back(name, std::move(kept));
  }
  return out;
}

TEST(WorkloadSpec, MinimalSpecGetsDefaults) {
  auto spec = ParseWorkloadSpec(
      R"({"name": "t", "dataset": {"generator": "neardup"}})");
  ASSERT_TRUE(spec.ok()) << spec.status().message();
  EXPECT_EQ(spec->name, "t");
  EXPECT_EQ(spec->seed, 42u);
  EXPECT_EQ(spec->repetitions, 1);
  EXPECT_EQ(spec->algorithms.size(), 6u);  // "all"
  EXPECT_TRUE(spec->oracle);
  EXPECT_EQ(spec->rematch_mode, RematchOptions::Mode::kAuto);
  EXPECT_TRUE(spec->delta_kind.empty());
  EXPECT_EQ(spec->delta_batches, 0);
}

TEST(WorkloadSpec, ReadsAllFields) {
  auto spec = ParseWorkloadSpec(R"({
    "name": "full",
    "seed": 7,
    "repetitions": 2,
    "processors": 3,
    "algorithms": ["EMOptMR", "NaiveChase"],
    "rematch_mode": "seed",
    "oracle": false,
    "dataset": {"generator": "powerlaw", "scale": 2.0, "num_hubs": 5},
    "deltas": {"kind": "churn", "batches": 3, "ops_per_batch": 4,
               "churn_repeats": 1, "seed": 99}
  })");
  ASSERT_TRUE(spec.ok()) << spec.status().message();
  EXPECT_EQ(spec->seed, 7u);
  EXPECT_EQ(spec->repetitions, 2);
  EXPECT_EQ(spec->processors, 3);
  ASSERT_EQ(spec->algorithms.size(), 2u);
  EXPECT_EQ(spec->algorithms[0], Algorithm::kEmOptMr);
  EXPECT_EQ(spec->algorithms[1], Algorithm::kNaiveChase);
  EXPECT_EQ(spec->rematch_mode, RematchOptions::Mode::kForceSeed);
  EXPECT_FALSE(spec->oracle);
  EXPECT_EQ(spec->generator, "powerlaw");
  EXPECT_DOUBLE_EQ(spec->scale, 2.0);
  EXPECT_EQ(spec->delta_kind, "churn");
  EXPECT_EQ(spec->delta_batches, 3);
  EXPECT_EQ(spec->delta_config.ops_per_batch, 4u);
  EXPECT_EQ(spec->delta_config.churn_repeats, 1);
  EXPECT_EQ(spec->delta_config.seed, 99u);
}

TEST(WorkloadSpec, DeltaSeedDefaultsToSpecSeedPlusOne) {
  auto spec = ParseWorkloadSpec(
      R"({"name": "t", "seed": 10,
          "dataset": {"generator": "neardup"},
          "deltas": {"kind": "uniform"}})");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->delta_config.seed, 11u);
}

TEST(WorkloadSpec, RejectsSchemaViolations) {
  const char* bad[] = {
      R"({"dataset": {"generator": "neardup"}})",               // no name
      R"({"name": "t"})",                                       // no dataset
      R"({"name": "t", "dataset": {"generator": "nope"}})",     // generator
      R"({"name": "t", "dataset": {"generator": "neardup"},
          "algorithms": ["Bogus"]})",                           // algorithm
      R"({"name": "t", "dataset": {"generator": "neardup"},
          "algorithms": []})",                                  // empty list
      R"({"name": "t", "dataset": {"generator": "neardup"},
          "rematch_mode": "sometimes"})",                       // mode
      R"({"name": "t", "dataset": {"generator": "neardup"},
          "deltas": {"kind": "sideways"}})",                    // delta kind
      R"({"name": "t" "dataset")",                              // bad JSON
  };
  for (const char* text : bad) {
    auto spec = ParseWorkloadSpec(text);
    EXPECT_FALSE(spec.ok()) << text;
    if (!spec.ok()) {
      EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument) << text;
    }
  }
}

TEST(WorkloadRun, CommittedSpecRerunsBitIdentically) {
  auto spec = LoadWorkloadSpec(SpecPath("hostile_neardup_uniform.json"));
  ASSERT_TRUE(spec.ok()) << spec.status().message();
  auto a = RunWorkload(*spec);
  auto b = RunWorkload(*spec);
  ASSERT_TRUE(a.ok()) << a.status().message();
  ASSERT_TRUE(b.ok()) << b.status().message();
  EXPECT_FALSE(a->rows.empty());
  // Same spec, same seed: every row and every non-noisy field must match
  // bit for bit. (Timings and the parallel engines' effort counters are
  // the only nondeterminism the harness emits.)
  EXPECT_EQ(StripTimings(a->rows), StripTimings(b->rows));
  EXPECT_EQ(a->final_pairs, b->final_pairs);
  EXPECT_EQ(a->oracle_checks, b->oracle_checks);
}

TEST(WorkloadRun, RowNamesFollowTheConvention) {
  auto spec = ParseWorkloadSpec(
      R"({"name": "conv", "algorithms": ["NaiveChase", "EMOptMR"],
          "dataset": {"generator": "neardup", "num_clusters": 4},
          "deltas": {"kind": "uniform", "batches": 2}})");
  ASSERT_TRUE(spec.ok()) << spec.status().message();
  auto r = RunWorkload(*spec);
  ASSERT_TRUE(r.ok()) << r.status().message();
  // 2 full rows + 2 algorithms * 2 batches delta rows.
  ASSERT_EQ(r->rows.size(), 6u);
  EXPECT_EQ(r->rows[0].first, "conv/NaiveChase/rep0");
  EXPECT_EQ(r->rows[1].first, "conv/EMOptMR/rep0");
  EXPECT_EQ(r->rows[2].first, "conv/NaiveChase/rep0/delta0");
  EXPECT_EQ(r->rows[3].first, "conv/EMOptMR/rep0/delta0");
  EXPECT_EQ(r->rows[5].first, "conv/EMOptMR/rep0/delta1");
  EXPECT_GT(r->oracle_checks, 0u);
}

TEST(WorkloadRun, OracleCanBeDisabled) {
  auto spec = ParseWorkloadSpec(
      R"({"name": "noor", "algorithms": ["EMMR"],
          "dataset": {"generator": "neardup", "num_clusters": 3}})");
  ASSERT_TRUE(spec.ok());
  WorkloadRunOptions opts;
  opts.disable_oracle = true;
  auto r = RunWorkload(*spec, opts);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(r->oracle_checks, 0u);
}

TEST(WorkloadRun, RepetitionsEmitOneRowSetEach) {
  auto spec = ParseWorkloadSpec(
      R"({"name": "reps", "repetitions": 2, "algorithms": ["EMOptVC"],
          "dataset": {"generator": "skew", "num_items": 20}})");
  ASSERT_TRUE(spec.ok()) << spec.status().message();
  auto r = RunWorkload(*spec);
  ASSERT_TRUE(r.ok()) << r.status().message();
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0].first, "reps/EMOptVC/rep0");
  EXPECT_EQ(r->rows[1].first, "reps/EMOptVC/rep1");
  // Reps share the seed: identical non-timing fields.
  EXPECT_EQ(StripTimings({r->rows[0]}).front().second,
            StripTimings({r->rows[1]}).front().second);
}

/// Every committed spec must pass its own differential oracle across all
/// listed algorithms, including the removal/churn delta batches — this is
/// the acceptance bar for shipping a spec in workloads/.
TEST(WorkloadRun, AllCommittedSpecsPassTheOracle) {
  const char* specs[] = {
      "hostile_powerlaw_churn.json", "hostile_skew_hub.json",
      "hostile_neardup_uniform.json", "paper_google_uniform.json",
      "paper_dbpedia_hub.json",
  };
  for (const char* file : specs) {
    auto spec = LoadWorkloadSpec(SpecPath(file));
    ASSERT_TRUE(spec.ok()) << file << ": " << spec.status().message();
    EXPECT_TRUE(spec->oracle) << file << " must ship with the oracle on";
    EXPECT_EQ(spec->algorithms.size(), 6u) << file;
    auto r = RunWorkload(*spec);
    ASSERT_TRUE(r.ok()) << file << ": " << r.status().message();
    EXPECT_GT(r->oracle_checks, 0u) << file;
    EXPECT_GT(r->rows.size(), 6u) << file << " should exercise deltas";
  }
}

}  // namespace
}  // namespace gkeys
