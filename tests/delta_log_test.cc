// Write-ahead delta log and fault-injection seam tests: record framing
// and checksums (torn tails truncate, mid-log corruption is kDataLoss),
// the GraphDelta payload codec (round-trip, truncation and bit-flip
// negatives must return ParseError, never crash), the fileops shim
// driving MmapStore's fsync-discipline write path, and the
// FaultInjectingStore wrapper at the Store seam. The sanitize CI job
// runs all of this under ASan/UBSan.

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/matcher.h"
#include "graph/delta.h"
#include "storage/delta_log.h"
#include "storage/fault_store.h"
#include "storage/file_ops.h"
#include "storage/mmap_store.h"
#include "storage/snapshot.h"
#include "test_util.h"

namespace gkeys {
namespace {

using storage::DeltaLog;
using storage::FaultInjectingStore;
using storage::MmapStore;
using storage::Snapshot;
namespace fileops = storage::fileops;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "gkeys_wal_" + name;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void Spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

bool Exists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return in.good();
}

// Three payloads exercising the framing edges: ordinary, empty, binary
// with embedded NULs.
std::vector<std::string> SamplePayloads() {
  return {"first batch", std::string(),
          std::string("bin\0\xff\x01 payload", 16)};
}

std::string MakeLogWith(const std::string& name,
                        const std::vector<std::string>& payloads,
                        uint64_t generation = 3) {
  std::string path = TempPath(name);
  auto log = DeltaLog::Create(path, generation);
  EXPECT_TRUE(log.ok()) << log.status().ToString();
  for (const std::string& p : payloads) {
    EXPECT_TRUE((*log)->Append(p).ok());
  }
  return path;
}

// ---- DeltaLog framing and recovery ------------------------------------

TEST(DeltaLog, CreateAppendReplayRoundTrip) {
  auto payloads = SamplePayloads();
  std::string path = MakeLogWith("roundtrip", payloads, /*generation=*/7);

  auto replay = DeltaLog::Replay(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay->has_header);
  EXPECT_EQ(replay->generation, 7u);
  EXPECT_EQ(replay->truncated, 0u);
  ASSERT_EQ(replay->records.size(), payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(replay->records[i], payloads[i]) << "record " << i;
  }
  EXPECT_EQ(replay->valid_bytes, Slurp(path).size());
}

TEST(DeltaLog, EmptyFileIsCleanNoOp) {
  std::string path = TempPath("empty");
  Spit(path, "");
  auto replay = DeltaLog::Replay(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_FALSE(replay->has_header);
  EXPECT_TRUE(replay->records.empty());
  EXPECT_EQ(replay->truncated, 0u);
}

TEST(DeltaLog, HeaderOnlyLogIsCleanNoOp) {
  std::string path = MakeLogWith("header_only", {});
  auto replay = DeltaLog::Replay(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay->has_header);
  EXPECT_TRUE(replay->records.empty());
  EXPECT_EQ(replay->truncated, 0u);
}

TEST(DeltaLog, TornHeaderIsCleanNoOp) {
  // A crash during Create can leave any prefix of the 20-byte header.
  std::string full = Slurp(MakeLogWith("torn_header_src", {}));
  for (size_t cut = 1; cut < DeltaLog::kHeaderBytes; ++cut) {
    std::string path = TempPath("torn_header");
    Spit(path, full.substr(0, cut));
    auto replay = DeltaLog::Replay(path);
    ASSERT_TRUE(replay.ok()) << "cut=" << cut << ": "
                             << replay.status().ToString();
    EXPECT_FALSE(replay->has_header) << "cut=" << cut;
    EXPECT_TRUE(replay->records.empty()) << "cut=" << cut;
  }
}

TEST(DeltaLog, TornTailTruncatesAtEveryCutPoint) {
  auto payloads = SamplePayloads();
  std::string full = Slurp(MakeLogWith("torn_src", payloads));

  // Reconstruct the record boundaries to know what a cut must yield.
  std::vector<size_t> ends;  // file offset just past record i
  size_t off = DeltaLog::kHeaderBytes;
  for (const std::string& p : payloads) {
    off += DeltaLog::kRecordHeaderBytes + p.size();
    ends.push_back(off);
  }
  ASSERT_EQ(off, full.size());

  for (size_t cut = DeltaLog::kHeaderBytes; cut < full.size(); ++cut) {
    std::string path = TempPath("torn");
    Spit(path, full.substr(0, cut));
    auto replay = DeltaLog::Replay(path);
    ASSERT_TRUE(replay.ok()) << "cut=" << cut << ": "
                             << replay.status().ToString();
    size_t complete = 0;
    while (complete < ends.size() && ends[complete] <= cut) ++complete;
    EXPECT_EQ(replay->records.size(), complete) << "cut=" << cut;
    for (size_t i = 0; i < complete; ++i) {
      EXPECT_EQ(replay->records[i], payloads[i]) << "cut=" << cut;
    }
    // A cut exactly on a record boundary is a clean log; anything else
    // leaves exactly one torn tail record.
    size_t boundary =
        complete == 0 ? DeltaLog::kHeaderBytes : ends[complete - 1];
    EXPECT_EQ(replay->truncated, cut == boundary ? 0u : 1u) << "cut=" << cut;
  }
}

TEST(DeltaLog, BitFlipInLastRecordIsATornTail) {
  auto payloads = SamplePayloads();
  std::string path = MakeLogWith("flip_last", payloads);
  std::string bytes = Slurp(path);
  bytes.back() = static_cast<char>(bytes.back() ^ 0x40);
  Spit(path, bytes);

  // Indistinguishable from a torn final append: no later record proves
  // the flipped one was acknowledged, so recovery truncates it.
  auto replay = DeltaLog::Replay(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->records.size(), payloads.size() - 1);
  EXPECT_EQ(replay->truncated, 1u);
}

TEST(DeltaLog, MidLogCorruptionIsDataLoss) {
  auto payloads = SamplePayloads();
  std::string path = MakeLogWith("flip_mid", payloads);
  std::string bytes = Slurp(path);
  // Flip one payload byte of the FIRST record; the later valid records
  // prove it was acknowledged.
  bytes[DeltaLog::kHeaderBytes + DeltaLog::kRecordHeaderBytes] ^= 0x01;
  Spit(path, bytes);

  auto replay = DeltaLog::Replay(path);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kDataLoss)
      << replay.status().ToString();
}

TEST(DeltaLog, LengthFieldFlipIsCaughtByChecksum) {
  auto payloads = SamplePayloads();
  std::string path = MakeLogWith("flip_len", payloads);
  std::string bytes = Slurp(path);
  // The length field of record 0 (checksummed together with the
  // payload, so the flip cannot redirect the frame silently).
  bytes[DeltaLog::kHeaderBytes + 3] ^= 0x02;
  Spit(path, bytes);

  auto replay = DeltaLog::Replay(path);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kDataLoss);
}

TEST(DeltaLog, BadMagicIsParseError) {
  std::string path = MakeLogWith("bad_magic", SamplePayloads());
  std::string bytes = Slurp(path);
  bytes[0] = 'X';
  Spit(path, bytes);
  auto replay = DeltaLog::Replay(path);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kParseError);
}

TEST(DeltaLog, UnsupportedVersionIsParseError) {
  std::string path = MakeLogWith("bad_version", {});
  std::string bytes = Slurp(path);
  bytes[11] = 9;  // version be32 at [8,12)
  Spit(path, bytes);
  auto replay = DeltaLog::Replay(path);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kParseError);
}

TEST(DeltaLog, OpenForAppendTruncatesTornTailAndContinues) {
  std::string path = MakeLogWith("reattach", {"one", "two"});
  // Crash mid-append: garbage after the last acknowledged record.
  Spit(path, Slurp(path) + "torn garbage");

  DeltaLog::ReplayResult survived;
  auto log = DeltaLog::OpenForAppend(path, &survived);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_EQ(survived.records.size(), 2u);
  EXPECT_EQ(survived.truncated, 1u);
  EXPECT_EQ((*log)->records_appended(), 2u);
  ASSERT_TRUE((*log)->Append("three").ok());

  auto replay = DeltaLog::Replay(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_EQ(replay->records.size(), 3u);
  EXPECT_EQ(replay->records[2], "three");
  EXPECT_EQ(replay->truncated, 0u);
}

TEST(DeltaLog, FailedAppendPoisonsTheLog) {
  std::string path = TempPath("poison");
  auto log = DeltaLog::Create(path, 1);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  ASSERT_TRUE((*log)->Append("durable").ok());

  {
    fileops::ScriptedFaultInjector inject;
    inject.fail_at = 0;
    inject.has_kind_filter = true;
    inject.only_kind = fileops::OpKind::kFsync;
    inject.action.fail_errno = EIO;
    fileops::ScopedFaultInjector scoped(&inject);
    Status st = (*log)->Append("lost");
    ASSERT_FALSE(st.ok());
    EXPECT_TRUE(inject.fired);
  }
  // Injector gone, but the log stays poisoned: the file may hold a torn
  // tail only a rotation can clear.
  Status st = (*log)->Append("after");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);

  // The acknowledged prefix is untouched; the unacknowledged record is
  // at worst a torn tail recovery drops.
  auto replay = DeltaLog::Replay(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_GE(replay->records.size(), 1u);
  EXPECT_EQ(replay->records[0], "durable");
}

// ---- GraphDelta payload codec ------------------------------------------

GraphDelta MakeMixedDelta(const Graph& g, const testing::CompanyGraph& c) {
  GraphDelta delta(g);
  NodeId com6 = delta.AddEntity("company");
  NodeId bell = delta.AddValue("Bell Labs");   // fresh value: staged
  NodeId att = delta.AddValue("AT&T");         // existing: resolves to base
  EXPECT_TRUE(delta.AddTriple(com6, "name_of", bell).ok());
  EXPECT_TRUE(delta.AddTriple(com6, "name_of", att).ok());
  EXPECT_TRUE(delta.AddTriple(c.com0, "parent_of", com6).ok());
  EXPECT_TRUE(delta.RemoveTriple(c.com3, "parent_of", c.com5).ok());
  return delta;
}

TEST(DeltaCodec, RoundTripReproducesStagedOps) {
  auto c = testing::MakeG2();
  GraphDelta orig = MakeMixedDelta(c.g, c);
  std::string enc = storage::EncodeDelta(orig);

  auto dec = storage::DecodeDelta(enc, c.g);
  ASSERT_TRUE(dec.ok()) << dec.status().ToString();
  ASSERT_EQ(dec->new_nodes().size(), orig.new_nodes().size());
  for (size_t i = 0; i < orig.new_nodes().size(); ++i) {
    EXPECT_EQ(dec->new_nodes()[i].kind, orig.new_nodes()[i].kind);
    EXPECT_EQ(dec->new_nodes()[i].label, orig.new_nodes()[i].label);
  }
  auto same_triples = [](const std::vector<GraphDelta::DeltaTriple>& a,
                         const std::vector<GraphDelta::DeltaTriple>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].subject, b[i].subject);
      EXPECT_EQ(a[i].pred, b[i].pred);
      EXPECT_EQ(a[i].object, b[i].object);
    }
  };
  same_triples(dec->added(), orig.added());
  same_triples(dec->removed(), orig.removed());
  // Byte-identical re-encoding: the codec is canonical.
  EXPECT_EQ(storage::EncodeDelta(*dec), enc);
}

TEST(DeltaCodec, EmptyDeltaRoundTrips) {
  auto c = testing::MakeG2();
  GraphDelta empty(c.g);
  auto dec = storage::DecodeDelta(storage::EncodeDelta(empty), c.g);
  ASSERT_TRUE(dec.ok()) << dec.status().ToString();
  EXPECT_TRUE(dec->empty());
}

TEST(DeltaCodec, EveryTruncationIsParseErrorNeverCrash) {
  auto c = testing::MakeG2();
  std::string enc = storage::EncodeDelta(MakeMixedDelta(c.g, c));
  for (size_t len = 0; len < enc.size(); ++len) {
    auto dec = storage::DecodeDelta(std::string_view(enc).substr(0, len),
                                    c.g);
    EXPECT_FALSE(dec.ok()) << "prefix " << len << " parsed";
    if (!dec.ok()) {
      EXPECT_EQ(dec.status().code(), StatusCode::kParseError)
          << dec.status().ToString();
    }
  }
}

TEST(DeltaCodec, BitFlipsNeverCrash) {
  auto c = testing::MakeG2();
  std::string enc = storage::EncodeDelta(MakeMixedDelta(c.g, c));
  for (size_t i = 0; i < enc.size(); ++i) {
    for (uint8_t mask : {0x01, 0x80}) {
      std::string bad = enc;
      bad[i] = static_cast<char>(bad[i] ^ mask);
      // Either a ParseError or a differently-but-validly decoded delta —
      // the invariant is "no crash, no UB" (ASan enforces it).
      auto dec = storage::DecodeDelta(bad, c.g);
      if (!dec.ok()) {
        EXPECT_EQ(dec.status().code(), StatusCode::kParseError);
      }
    }
  }
}

// ---- fileops shim under MmapStore's write path -------------------------

// Writes one valid store file at `path` and returns its bytes.
std::string SeedStoreFile(const std::string& path) {
  auto store = MmapStore::Create(path);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE((*store)->Put("k", "v1").ok());
  EXPECT_TRUE((*store)->Flush().ok());
  return Slurp(path);
}

// Flush through a scripted fault on `kind`; expects failure and that the
// previously installed file is untouched.
void ExpectFlushFaultKeepsOldFile(const std::string& name,
                                  fileops::OpKind kind,
                                  fileops::FaultAction action) {
  std::string path = TempPath(name);
  std::string before = SeedStoreFile(path);

  auto store = MmapStore::Create(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_TRUE((*store)->Put("k", "v2-much-longer-value").ok());
  {
    fileops::ScriptedFaultInjector inject;
    inject.fail_at = 0;
    inject.has_kind_filter = true;
    inject.only_kind = kind;
    inject.action = action;
    fileops::ScopedFaultInjector scoped(&inject);
    Status st = (*store)->Flush();
    ASSERT_FALSE(st.ok()) << "fault on " << fileops::OpKindName(kind);
    EXPECT_TRUE(inject.fired);
  }
  // The atomic-install discipline: any pre-rename failure leaves the old
  // file byte-identical, and the temp is cleaned up.
  EXPECT_EQ(Slurp(path), before);
  EXPECT_FALSE(Exists(path + ".tmp"));

  auto reopened = MmapStore::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto get = (*reopened)->Get("k");
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(*get, "v1");
}

TEST(FileOpsFault, FlushWriteFailureKeepsOldFile) {
  ExpectFlushFaultKeepsOldFile("flush_write", fileops::OpKind::kWrite,
                               {/*fail_errno=*/ENOSPC});
}

TEST(FileOpsFault, FlushShortWriteKeepsOldFile) {
  fileops::FaultAction torn;
  torn.fail_errno = ENOSPC;
  torn.write_prefix = 10;  // a torn prefix reaches the temp file only
  ExpectFlushFaultKeepsOldFile("flush_torn", fileops::OpKind::kWrite, torn);
}

TEST(FileOpsFault, FlushFsyncFailureKeepsOldFile) {
  ExpectFlushFaultKeepsOldFile("flush_fsync", fileops::OpKind::kFsync,
                               {/*fail_errno=*/EIO});
}

TEST(FileOpsFault, FlushRenameFailureKeepsOldFile) {
  ExpectFlushFaultKeepsOldFile("flush_rename", fileops::OpKind::kRename,
                               {/*fail_errno=*/EACCES});
}

TEST(FileOpsFault, AppendEnospcKeepsAcknowledgedPrefix) {
  std::string path = TempPath("append_enospc");
  auto log = DeltaLog::Create(path, 1);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  ASSERT_TRUE((*log)->Append("acked").ok());

  {
    fileops::ScriptedFaultInjector inject;
    inject.fail_at = 0;
    inject.has_kind_filter = true;
    inject.only_kind = fileops::OpKind::kWrite;
    inject.action.fail_errno = ENOSPC;
    fileops::ScopedFaultInjector scoped(&inject);
    ASSERT_FALSE((*log)->Append("rejected").ok());
  }
  auto replay = DeltaLog::Replay(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_EQ(replay->records.size(), 1u);
  EXPECT_EQ(replay->records[0], "acked");
  EXPECT_EQ(replay->truncated, 0u);
}

// ---- FaultInjectingStore at the Store seam -----------------------------

TEST(FaultStore, ScriptedPutFailurePropagatesThroughSnapshotSave) {
  auto c = testing::MakeG2();
  KeySet keys = testing::MakeSigma2();
  auto plan = Matcher::Compile(c.g, keys, PlanOptions::For(
                                              Algorithm::kEmOptVc, 2));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto run = Matcher(Algorithm::kEmOptVc).processors(2).Run(*plan);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  auto base = MmapStore::Create(TempPath("fault_put"));
  ASSERT_TRUE(base.ok());

  // Dry run: count the Puts a save performs, then fail each one in turn.
  FaultInjectingStore counter(**base);
  ASSERT_TRUE(Snapshot::Save(counter, c.g, keys, *plan, *run,
                             Algorithm::kEmOptVc)
                  .ok());
  const int64_t total_puts = counter.puts();
  ASSERT_GT(total_puts, 0);

  for (int64_t n = 0; n < total_puts; n += std::max<int64_t>(1, total_puts / 7)) {
    auto victim = MmapStore::Create(TempPath("fault_put_victim"));
    ASSERT_TRUE(victim.ok());
    FaultInjectingStore faulty(**victim);
    FaultInjectingStore::Script script;
    script.fail_put_at = n;
    script.error = Status::IoError("no space left on device");
    faulty.script(script);
    Status st = Snapshot::Save(faulty, c.g, keys, *plan, *run,
                               Algorithm::kEmOptVc);
    EXPECT_FALSE(st.ok()) << "fail_put_at=" << n;
  }
}

TEST(FaultStore, FlushFailurePropagates) {
  auto base = MmapStore::Create(TempPath("fault_flush"));
  ASSERT_TRUE(base.ok());
  FaultInjectingStore faulty(**base);
  FaultInjectingStore::Script script;
  script.fail_flush_at = 0;
  faulty.script(script);
  ASSERT_TRUE(faulty.Put("k", "v").ok());
  EXPECT_FALSE(faulty.Flush().ok());
}

TEST(FaultStore, TamperedMetaRecordIsParseErrorNotCrash) {
  auto c = testing::MakeG2();
  KeySet keys = testing::MakeSigma2();
  auto plan = Matcher::Compile(c.g, keys, PlanOptions::For(
                                              Algorithm::kEmOptVc, 2));
  ASSERT_TRUE(plan.ok());
  auto run = Matcher(Algorithm::kEmOptVc).processors(2).Run(*plan);
  ASSERT_TRUE(run.ok());

  std::string path = TempPath("fault_tamper");
  auto store = MmapStore::Create(path);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(Snapshot::Save(**store, c.g, keys, *plan, *run,
                             Algorithm::kEmOptVc)
                  .ok());
  ASSERT_TRUE((*store)->Flush().ok());

  auto reopened = MmapStore::Open(path);
  ASSERT_TRUE(reopened.ok());
  for (size_t at : {size_t{0}, size_t{1}, size_t{5}, size_t{9}}) {
    FaultInjectingStore faulty(**reopened);
    FaultInjectingStore::Script script;
    script.corrupt_key = "M";  // SnapshotMeta record
    script.corrupt_at = at;
    script.corrupt_mask = 0xff;
    faulty.script(script);
    // A flip may land in a field where every byte is legal and decode to
    // a different-but-valid meta record; the invariant is "ParseError or
    // a valid parse, never a crash" (ASan enforces the latter).
    auto snap = Snapshot::Load(faulty);
    (void)snap;
  }
  // Truncating the meta record must also fail cleanly.
  FaultInjectingStore faulty(**reopened);
  FaultInjectingStore::Script script;
  script.corrupt_key = "M";
  script.truncate_to = 2;
  faulty.script(script);
  EXPECT_FALSE(Snapshot::Load(faulty).ok());
}

}  // namespace
}  // namespace gkeys
