#include "discovery/key_discovery.h"

#include <gtest/gtest.h>

#include "core/chase.h"
#include "gen/datasets.h"
#include "test_util.h"

namespace gkeys {
namespace {

/// A small library domain: isbn is a single-attribute key; (title, year)
/// is a composite key (titles repeat, years repeat, combos do not);
/// shelf is NOT a key (shared).
Graph LibraryGraph() {
  Graph g;
  struct Row {
    const char* isbn;
    const char* title;
    const char* year;
    const char* shelf;
  };
  const Row rows[] = {
      {"i1", "Dune", "1965", "A"},
      {"i2", "Dune", "1984", "A"},   // same title, other year
      {"i3", "Emma", "1965", "B"},   // same year, other title
      {"i4", "Emma", "1815", "B"},
  };
  for (const Row& r : rows) {
    NodeId b = g.AddEntity("book");
    g.AddTriple(b, "isbn", g.AddValue(r.isbn)).IgnoreError();
    g.AddTriple(b, "title", g.AddValue(r.title)).IgnoreError();
    g.AddTriple(b, "year", g.AddValue(r.year)).IgnoreError();
    g.AddTriple(b, "shelf", g.AddValue(r.shelf)).IgnoreError();
  }
  g.Finalize();
  return g;
}

bool HasKeyNamed(const std::vector<DiscoveredKey>& keys,
                 const std::string& name) {
  for (const auto& dk : keys) {
    if (dk.key.name() == name) return true;
  }
  return false;
}

TEST(Discovery, FindsSingleAttributeKey) {
  Graph g = LibraryGraph();
  auto keys = DiscoverKeys(g, "book");
  EXPECT_TRUE(HasKeyNamed(keys, "disc_book_isbn"));
  // shelf is shared: never a key on its own.
  EXPECT_FALSE(HasKeyNamed(keys, "disc_book_shelf"));
}

TEST(Discovery, FindsCompositeKeyAndPrunesSupersets) {
  Graph g = LibraryGraph();
  auto keys = DiscoverKeys(g, "book");
  EXPECT_TRUE(HasKeyNamed(keys, "disc_book_title_year") ||
              HasKeyNamed(keys, "disc_book_year_title"));
  // Supersets of the holding {isbn} must be pruned (minimality).
  for (const auto& dk : keys) {
    if (dk.arity >= 2) {
      EXPECT_EQ(dk.key.name().find("isbn"), std::string::npos)
          << dk.key.name();
    }
  }
}

TEST(Discovery, DiscoveredKeysHoldOnTheGraph) {
  Graph g = LibraryGraph();
  for (const auto& dk : DiscoverKeys(g, "book")) {
    EXPECT_TRUE(Satisfies(g, dk.key)) << dk.key.name();
    EXPECT_GE(dk.coverage, 0.6);
  }
}

TEST(Discovery, RecursiveCandidates) {
  // Two employees share a name but work at different firms: (name, firm)
  // is a recursive key candidate; name alone is not a key.
  Graph g;
  NodeId f1 = g.AddEntity("firm");
  NodeId f2 = g.AddEntity("firm");
  NodeId e1 = g.AddEntity("employee");
  NodeId e2 = g.AddEntity("employee");
  NodeId n = g.AddValue("Ann");
  g.AddTriple(e1, "name", n).IgnoreError();
  g.AddTriple(e2, "name", n).IgnoreError();
  g.AddTriple(e1, "works_at", f1).IgnoreError();
  g.AddTriple(e2, "works_at", f2).IgnoreError();
  g.Finalize();
  auto keys = DiscoverKeys(g, "employee");
  EXPECT_FALSE(HasKeyNamed(keys, "disc_employee_name"));
  ASSERT_TRUE(HasKeyNamed(keys, "disc_employee_name_works_at"));
  for (const auto& dk : keys) {
    if (dk.key.name() == "disc_employee_name_works_at") {
      EXPECT_TRUE(dk.key.recursive());
      EXPECT_EQ(dk.key.dependency_types(),
                std::vector<std::string>{"firm"});
    }
  }
}

TEST(Discovery, RecursiveCanBeDisabled) {
  Graph g;
  NodeId f1 = g.AddEntity("firm");
  NodeId e1 = g.AddEntity("employee");
  NodeId e2 = g.AddEntity("employee");
  g.AddTriple(e1, "name", g.AddValue("Ann")).IgnoreError();
  g.AddTriple(e2, "name", g.AddValue("Ann")).IgnoreError();
  g.AddTriple(e1, "works_at", f1).IgnoreError();
  g.AddTriple(e2, "works_at", f1).IgnoreError();
  g.Finalize();
  DiscoveryConfig cfg;
  cfg.include_recursive = false;
  for (const auto& dk : DiscoverKeys(g, "employee", cfg)) {
    EXPECT_FALSE(dk.key.recursive());
  }
}

TEST(Discovery, CoverageThresholdFilters) {
  Graph g;
  // Only 1 of 4 entities carries `rare`.
  for (int i = 0; i < 4; ++i) {
    NodeId e = g.AddEntity("t");
    g.AddTriple(e, "common", g.AddValue("c" + std::to_string(i))).IgnoreError();
    if (i == 0) g.AddTriple(e, "rare", g.AddValue("r")).IgnoreError();
  }
  g.Finalize();
  DiscoveryConfig cfg;
  cfg.min_coverage = 0.9;
  auto keys = DiscoverKeys(g, "t", cfg);
  EXPECT_TRUE(HasKeyNamed(keys, "disc_t_common"));
  EXPECT_FALSE(HasKeyNamed(keys, "disc_t_rare"));
}

TEST(Discovery, UnknownTypeYieldsNothing) {
  Graph g = LibraryGraph();
  EXPECT_TRUE(DiscoverKeys(g, "martian").empty());
}

TEST(Discovery, SingleEntityTypeYieldsNothing) {
  Graph g;
  NodeId e = g.AddEntity("lone");
  g.AddTriple(e, "p", g.AddValue("v")).IgnoreError();
  g.Finalize();
  EXPECT_TRUE(DiscoverKeys(g, "lone").empty());
}

TEST(Discovery, DiscoverAllKeysHoldEverywhere) {
  DBpediaSimConfig cfg;
  cfg.scale = 0.3;
  SyntheticDataset ds = GenerateDBpediaSim(cfg);
  // Discovery runs on the FUSED (deduplicated) graph — on the raw graph
  // planted duplicates would suppress the very keys that identify them.
  KeySet discovered = DiscoverAllKeys(ds.graph);
  for (const Key& k : discovered.keys()) {
    EXPECT_TRUE(Satisfies(ds.graph, k)) << k.name();
  }
}

TEST(Discovery, MinedKeysDetectFreshDuplicates) {
  // Mine keys from a clean graph, then inject a duplicate; the mined key
  // must catch it — the discovery -> enforcement loop.
  Graph g = LibraryGraph();
  auto mined = DiscoverKeys(g, "book");
  ASSERT_FALSE(mined.empty());
  KeySet keys;
  for (auto& dk : mined) keys.Add(std::move(dk.key));

  Graph dirty = g;
  NodeId dup = dirty.AddEntity("book");
  dirty.AddTriple(dup, "isbn", dirty.AddValue("i1")).IgnoreError();  // reuse i1!
  dirty.AddTriple(dup, "title", dirty.AddValue("Dune")).IgnoreError();
  dirty.AddTriple(dup, "year", dirty.AddValue("1965")).IgnoreError();
  dirty.Finalize();
  MatchResult r = Chase(dirty, keys);
  ASSERT_EQ(r.pairs.size(), 1u);
  EXPECT_EQ(r.pairs[0].second, dup);
}

}  // namespace
}  // namespace gkeys
