#include <gtest/gtest.h>

#include "core/entity_matcher.h"
#include "gen/datasets.h"
#include "gen/synthetic.h"

namespace gkeys {
namespace {

TEST(Synthetic, Deterministic) {
  SyntheticConfig cfg;
  cfg.seed = 5;
  SyntheticDataset a = GenerateSynthetic(cfg);
  SyntheticDataset b = GenerateSynthetic(cfg);
  EXPECT_EQ(a.graph.NumNodes(), b.graph.NumNodes());
  EXPECT_EQ(a.graph.NumTriples(), b.graph.NumTriples());
  EXPECT_EQ(a.planted, b.planted);
}

TEST(Synthetic, KeyCountAndShape) {
  SyntheticConfig cfg;
  cfg.num_groups = 4;
  cfg.chain_length = 3;
  cfg.radius = 2;
  SyntheticDataset ds = GenerateSynthetic(cfg);
  EXPECT_EQ(ds.keys.count(), 12u);  // groups * chain_length
  EXPECT_EQ(ds.keys.MaxRadius(), 2);
  EXPECT_EQ(ds.keys.LongestDependencyChain(), 3);
  // Each chain has exactly one value-based (leaf) key type.
  EXPECT_EQ(ds.keys.ValueBasedTypes().size(), 4u);
}

TEST(Synthetic, PlantedPairsAreExactGroundTruth) {
  for (int c : {1, 2, 3}) {
    for (int d : {1, 2}) {
      SyntheticConfig cfg;
      cfg.num_groups = 2;
      cfg.chain_length = c;
      cfg.radius = d;
      cfg.entities_per_type = 12;
      cfg.seed = 100 + c * 10 + d;
      SyntheticDataset ds = GenerateSynthetic(cfg);
      EXPECT_FALSE(ds.planted.empty());
      MatchResult r = Chase(ds.graph, ds.keys);
      EXPECT_EQ(r.pairs, ds.planted) << "c=" << c << " d=" << d;
    }
  }
}

TEST(Synthetic, ScaleGrowsGraph) {
  SyntheticConfig small, large;
  large.scale = 3.0;
  SyntheticDataset s = GenerateSynthetic(small);
  SyntheticDataset l = GenerateSynthetic(large);
  EXPECT_GT(l.graph.NumTriples(), 2 * s.graph.NumTriples());
  EXPECT_GT(l.planted.size(), s.planted.size());
}

TEST(Synthetic, ZeroDuplicates) {
  SyntheticConfig cfg;
  cfg.duplicate_fraction = 0.0;
  SyntheticDataset ds = GenerateSynthetic(cfg);
  EXPECT_TRUE(ds.planted.empty());
  EXPECT_TRUE(Chase(ds.graph, ds.keys).pairs.empty());
}

TEST(Synthetic, NoiseDoesNotChangeResult) {
  SyntheticConfig with, without;
  with.noise_edges_per_entity = 4;
  without.noise_edges_per_entity = 0;
  SyntheticDataset a = GenerateSynthetic(with);
  SyntheticDataset b = GenerateSynthetic(without);
  EXPECT_EQ(Chase(a.graph, a.keys).pairs, a.planted);
  EXPECT_EQ(Chase(b.graph, b.keys).pairs, b.planted);
}

TEST(Synthetic, RadiusMatchesKeyStructure) {
  SyntheticConfig cfg;
  cfg.radius = 3;
  cfg.chain_length = 2;
  SyntheticDataset ds = GenerateSynthetic(cfg);
  for (const Key& k : ds.keys.keys()) {
    EXPECT_EQ(k.radius(), 3) << k.name();
  }
}

TEST(GoogleSim, PlantedPairsAreExactGroundTruth) {
  GoogleSimConfig cfg;
  SyntheticDataset ds = GenerateGoogleSim(cfg);
  EXPECT_FALSE(ds.planted.empty());
  MatchResult r = Chase(ds.graph, ds.keys);
  EXPECT_EQ(r.pairs, ds.planted);
}

TEST(GoogleSim, HasExpectedSchema) {
  GoogleSimConfig cfg;
  SyntheticDataset ds = GenerateGoogleSim(cfg);
  EXPECT_TRUE(ds.keys.HasKeyForType("person"));
  EXPECT_TRUE(ds.keys.HasKeyForType("employer"));
  EXPECT_TRUE(ds.keys.HasKeyForType("place"));
  // person -> employer -> place.
  EXPECT_EQ(ds.keys.LongestDependencyChain(), 3);
  Symbol person = ds.graph.interner().Lookup("person");
  ASSERT_NE(person, kNoSymbol);
  EXPECT_GE(ds.graph.EntitiesOfType(person).size(),
            static_cast<size_t>(cfg.num_persons));
}

TEST(GoogleSim, ChainedDuplicatesNeedMultipleMapReduceRounds) {
  // In MapReduce, mappers only see the previous round's Eq, so the
  // person -> employer -> place chain needs one round per level (the §6
  // Exp-3 "rounds grow with c" effect). The sequential chase can resolve
  // the whole chain in one pass, so the bound is asserted on EMMR.
  GoogleSimConfig cfg;
  cfg.duplicate_pairs = 6;
  SyntheticDataset ds = GenerateGoogleSim(cfg);
  MatchResult r = MatchEntities(ds.graph, ds.keys, Algorithm::kEmMr, 2);
  EXPECT_EQ(r.pairs, ds.planted);
  EXPECT_GE(r.stats.rounds, 3u);
}

TEST(DBpediaSim, PlantedPairsAreExactGroundTruth) {
  DBpediaSimConfig cfg;
  SyntheticDataset ds = GenerateDBpediaSim(cfg);
  EXPECT_FALSE(ds.planted.empty());
  MatchResult r = Chase(ds.graph, ds.keys);
  EXPECT_EQ(r.pairs, ds.planted);
}

TEST(DBpediaSim, CoversThePaperKeyShapes) {
  DBpediaSimConfig cfg;
  SyntheticDataset ds = GenerateDBpediaSim(cfg);
  // Mutual recursion album <-> artist, DAG company keys, a constant key,
  // and the Fig. 7 keys.
  EXPECT_EQ(ds.keys.count(), 10u);
  bool has_constant = false, has_wildcard = false, has_recursive = false;
  for (const Key& k : ds.keys.keys()) {
    for (const auto& n : k.pattern().nodes()) {
      if (n.kind == VarKind::kConstant) has_constant = true;
      if (n.kind == VarKind::kWildcard) has_wildcard = true;
    }
    has_recursive |= k.recursive();
  }
  EXPECT_TRUE(has_constant);
  EXPECT_TRUE(has_wildcard);
  EXPECT_TRUE(has_recursive);
}

TEST(DBpediaSim, Deterministic) {
  DBpediaSimConfig cfg;
  cfg.seed = 3;
  SyntheticDataset a = GenerateDBpediaSim(cfg);
  SyntheticDataset b = GenerateDBpediaSim(cfg);
  EXPECT_EQ(a.planted, b.planted);
  EXPECT_EQ(a.graph.NumTriples(), b.graph.NumTriples());
}

}  // namespace
}  // namespace gkeys
