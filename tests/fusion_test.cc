// Tests for value normalization (similarity matching via canonical forms)
// and entity fusion (contracting chase(G, Σ) classes).

#include <gtest/gtest.h>

#include "core/entity_matcher.h"
#include "gen/datasets.h"
#include "graph/merge.h"
#include "graph/normalize.h"
#include "test_util.h"

namespace gkeys {
namespace {

TEST(Normalize, BuiltinNormalizers) {
  EXPECT_EQ(normalizers::Lowercase("The BEATLES"), "the beatles");
  EXPECT_EQ(normalizers::CollapseWhitespace("  a \t b  "), "a b");
  EXPECT_EQ(normalizers::AlphaNumericOnly("AT&T, Inc."), "ATTInc");
  auto composed = ComposeNormalizers(
      {normalizers::Lowercase, normalizers::AlphaNumericOnly});
  EXPECT_EQ(composed("The Beatles!"), "thebeatles");
}

TEST(Normalize, MergesEquivalentValues) {
  Graph g;
  NodeId a = g.AddEntity("artist");
  NodeId b = g.AddEntity("artist");
  g.AddTriple(a, "name_of", g.AddValue("The Beatles")).IgnoreError();
  g.AddTriple(b, "name_of", g.AddValue("the  beatles")).IgnoreError();
  g.Finalize();
  auto norm = NormalizeValues(
      g, ComposeNormalizers(
             {normalizers::Lowercase, normalizers::CollapseWhitespace}));
  EXPECT_EQ(norm.values_merged, 1u);
  EXPECT_EQ(norm.graph.NumValues(), 1u);
  EXPECT_EQ(norm.graph.NumEntities(), 2u);
  // Both entities now point at one value node.
  NodeId v = norm.graph.FindValue("the beatles");
  ASSERT_NE(v, kNoNode);
  EXPECT_EQ(norm.graph.In(v).size(), 2u);
}

TEST(Normalize, EnablesSimilarityMatching) {
  // The paper's §2.2 remark: similarity matching reduces to value
  // equality after canonicalization. Two albums differing only in case
  // match only on the normalized graph.
  Graph g;
  NodeId a1 = g.AddEntity("album");
  NodeId a2 = g.AddEntity("album");
  g.AddTriple(a1, "name_of", g.AddValue("Anthology 2")).IgnoreError();
  g.AddTriple(a2, "name_of", g.AddValue("ANTHOLOGY 2")).IgnoreError();
  g.AddTriple(a1, "release_year", g.AddValue("1996")).IgnoreError();
  g.AddTriple(a2, "release_year", g.AddValue("1996")).IgnoreError();
  g.Finalize();
  KeySet keys;
  ASSERT_TRUE(keys.AddFromDsl(R"(
    key Q2 for album {
      x -[name_of]-> n*
      x -[release_year]-> yr*
    }
  )").ok());
  EXPECT_TRUE(Chase(g, keys).pairs.empty()) << "exact match: no dup";
  auto norm = NormalizeValues(g, normalizers::Lowercase);
  MatchResult r = Chase(norm.graph, keys);
  ASSERT_EQ(r.pairs.size(), 1u);
  EXPECT_EQ(r.pairs[0].first, norm.node_map[a1]);
  EXPECT_EQ(r.pairs[0].second, norm.node_map[a2]);
}

TEST(Normalize, PreservesStructureWhenIdentity) {
  auto m = testing::MakeG1();
  auto norm = NormalizeValues(m.g, [](const std::string& s) { return s; });
  EXPECT_EQ(norm.values_merged, 0u);
  EXPECT_EQ(norm.graph.NumTriples(), m.g.NumTriples());
  EXPECT_EQ(norm.graph.NumNodes(), m.g.NumNodes());
}

TEST(Fusion, ContractsIdentifiedClasses) {
  auto m = testing::MakeG1();
  KeySet sigma1 = testing::MakeSigma1();
  MatchResult r = Chase(m.g, sigma1);
  ASSERT_EQ(r.pairs.size(), 2u);
  FusionResult fused = FuseEntities(m.g, r.pairs);
  EXPECT_EQ(fused.entities_fused, 2u);  // one album + one artist gone
  EXPECT_EQ(fused.graph.NumEntities(), m.g.NumEntities() - 2);
  // The fused pairs map to a single node.
  EXPECT_EQ(fused.node_map[m.alb1], fused.node_map[m.alb2]);
  EXPECT_EQ(fused.node_map[m.art1], fused.node_map[m.art2]);
  EXPECT_NE(fused.node_map[m.alb1], fused.node_map[m.alb3]);
}

TEST(Fusion, DeduplicatesParallelTriples) {
  auto m = testing::MakeG1();
  KeySet sigma1 = testing::MakeSigma1();
  FusionResult fused = FuseEntities(m.g, Chase(m.g, sigma1).pairs);
  // alb1 and alb2 both had (name_of, "Anthology 2"): the fused node has
  // exactly one such triple.
  NodeId merged_album = fused.node_map[m.alb1];
  size_t name_edges = 0;
  Symbol name_of = fused.graph.interner().Lookup("name_of");
  for (const Edge& e : fused.graph.Out(merged_album)) {
    name_edges += (e.pred == name_of);
  }
  EXPECT_EQ(name_edges, 1u);
}

TEST(Fusion, FusedGraphSatisfiesTheKeys) {
  // After fusing chase(G, Σ), re-running the chase finds nothing new —
  // fusion reaches a key-satisfying state on these workloads.
  auto m = testing::MakeG1();
  KeySet sigma1 = testing::MakeSigma1();
  FusionResult fused = FuseEntities(m.g, Chase(m.g, sigma1).pairs);
  EXPECT_TRUE(Satisfies(fused.graph, sigma1));
}

TEST(Fusion, EmptyPairsIsIdentity) {
  auto m = testing::MakeG1();
  FusionResult fused = FuseEntities(m.g, {});
  EXPECT_EQ(fused.entities_fused, 0u);
  EXPECT_EQ(fused.graph.NumNodes(), m.g.NumNodes());
  EXPECT_EQ(fused.graph.NumTriples(), m.g.NumTriples());
}

TEST(Fusion, EndToEndOnDBpediaSim) {
  DBpediaSimConfig cfg;
  cfg.scale = 0.5;
  SyntheticDataset ds = GenerateDBpediaSim(cfg);
  MatchResult r = MatchEntities(ds.graph, ds.keys, Algorithm::kEmOptVc, 4);
  FusionResult fused = FuseEntities(ds.graph, r.pairs);
  EXPECT_GT(fused.entities_fused, 0u);
  // Fusion eliminates exactly one entity per extra class member.
  size_t expected_eliminated = 0;
  {
    EquivalenceRelation classes(ds.graph.NumNodes());
    for (auto [a, b] : r.pairs) classes.Union(a, b);
    for (const auto& cls : classes.NontrivialClasses()) {
      expected_eliminated += cls.size() - 1;
    }
  }
  EXPECT_EQ(fused.entities_fused, expected_eliminated);
  // And the fused knowledge base is duplicate-free under Σ.
  EXPECT_TRUE(MatchEntities(fused.graph, ds.keys, Algorithm::kEmOptVc, 4)
                  .pairs.empty());
}

}  // namespace
}  // namespace gkeys
