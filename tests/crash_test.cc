// Crash-point enumeration and recovery-state-machine tests: a
// save → ingest×k → save schedule is run against a DurableDir with an
// in-process "crash" injected at every faultable file operation in turn;
// after each crash the in-memory state is discarded and Matcher::Recover
// runs on whatever reached the filesystem. The invariant, checked at
// every point: the recovered pair set equals the state after some prefix
// of the batches, that prefix covers every ACKNOWLEDGED batch, and it is
// never a hybrid. Plus: graceful degradation (ENOSPC, time budgets) and
// the empty/header-only-log regression.

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/matcher.h"
#include "io/triples.h"
#include "storage/durable_dir.h"
#include "storage/file_ops.h"
#include "storage/mmap_store.h"
#include "storage/recovery.h"
#include "storage/snapshot.h"
#include "test_util.h"

namespace gkeys {
namespace {

using storage::DurableDir;
using storage::MmapStore;
using storage::RecoveredSession;
using storage::Snapshot;
namespace fileops = storage::fileops;

using PairVec = std::vector<std::pair<NodeId, NodeId>>;

const std::vector<Algorithm>& AllAlgorithms() {
  static const std::vector<Algorithm> algos = {
      Algorithm::kNaiveChase, Algorithm::kEmMr,  Algorithm::kEmVf2Mr,
      Algorithm::kEmOptMr,    Algorithm::kEmVc,  Algorithm::kEmOptVc};
  return algos;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "gkeys_crash_" + name;
}

void RemoveTree(const std::string& dir) {
  // Test-only cleanup of a flat DurableDir (no subdirectories).
  std::string cmd = "rm -rf '" + dir + "'";
  (void)std::system(cmd.c_str());
}

PairVec Sorted(const PairVec& pairs) {
  PairVec v = pairs;
  for (auto& p : v) {
    if (p.first > p.second) std::swap(p.first, p.second);
  }
  std::sort(v.begin(), v.end());
  return v;
}

// The company graph re-loaded from its text serialization so every base
// entity has an ent: token (exactly how the CLI sessions get theirs).
struct Base {
  LoadedGraph lg;
  KeySet keys;
};

Base MakeBase() {
  Base b;
  auto loaded = DeserializeGraphWithNames(SerializeGraph(testing::MakeG2().g));
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  b.lg = std::move(*loaded);
  b.keys = testing::MakeSigma2();
  return b;
}

// Three delta batches against the evolving session. Batch 1 references
// the entity batch 0 introduced by token — the replay path must carry
// new bindings forward — and batch 2 removes a base triple, driving the
// retraction rematch.
std::vector<std::string> Batches() {
  return {
      "+ ent:company:6 name_of val:\"AT&T\"\n"
      "+ ent:company:0 parent_of ent:company:6\n",

      "+ ent:company:7 name_of val:\"AT&T\"\n"
      "+ ent:company:6 parent_of ent:company:7\n"
      "+ ent:company:3 parent_of ent:company:7\n",

      "- ent:company:3 parent_of ent:company:5\n"
      "+ ent:company:7 parent_of ent:company:5\n",
  };
}

// Builds a live Snapshot session for `base` (saved through a throwaway
// store and loaded back, so it carries the entity-name table the way a
// recovered session would).
StatusOr<Snapshot> MakeSession(const Base& base, Algorithm algo,
                               const std::string& tag) {
  auto plan =
      Matcher::Compile(base.lg.graph, base.keys, PlanOptions::For(algo, 2));
  if (!plan.ok()) return plan.status();
  auto run = Matcher(algo).processors(2).Run(*plan);
  if (!run.ok()) return run.status();
  std::string path = TempPath("session_" + tag);
  auto store = MmapStore::Create(path);
  if (!store.ok()) return store.status();
  GKEYS_RETURN_IF_ERROR(Snapshot::Save(**store, base.lg.graph, base.keys,
                                       *plan, *run, algo,
                                       &base.lg.entities));
  GKEYS_RETURN_IF_ERROR((*store)->Flush());
  auto reopened = MmapStore::Open(path);
  if (!reopened.ok()) return reopened.status();
  return Snapshot::Load(**reopened);
}

// Fault-free oracle: the pair set after each prefix of `batches`.
// expected[k] = pairs once batches 0..k-1 are applied.
std::vector<PairVec> ExpectedPrefixes(const Base& base, Algorithm algo,
                                      const std::vector<std::string>& batches,
                                      const std::string& tag) {
  std::vector<PairVec> out;
  auto session = MakeSession(base, algo, "oracle_" + tag);
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  if (!session.ok()) return out;
  auto names = session->entity_names();
  Matcher replayer(algo);
  replayer.processors(2);
  out.push_back(Sorted(session->result().pairs));
  for (const std::string& text : batches) {
    std::unordered_map<std::string, NodeId> fresh;
    auto delta = ParseDelta(text, session->graph(), names, &fresh);
    EXPECT_TRUE(delta.ok()) << delta.status().ToString();
    if (!delta.ok()) break;
    auto res = session->Resume(replayer, *delta);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    if (!res.ok()) break;
    for (auto& [token, id] : fresh) names[token] = id;
    out.push_back(Sorted(session->result().pairs));
  }
  return out;
}

struct ScheduleOutcome {
  size_t saves_acked = 0;
  size_t appends_acked = 0;
};

// Runs a schedule against `dir` with `inject` installed for the duration
// of the durable operations. Steps: -1 = SaveSnapshot of the current
// in-memory state, i >= 0 = ingest batches[i] (apply in memory, then
// AppendDeltaText — the CLI's commit protocol). Durable-op failures are
// tolerated: they model the process dying mid-operation, and only
// acknowledged operations count toward `out`.
void RunScheduleChecked(const std::string& dir, const Base& base,
                        Algorithm algo,
                        const std::vector<std::string>& batches,
                        const std::vector<int>& steps,
                        fileops::ScriptedFaultInjector* inject,
                        ScheduleOutcome* out) {
  auto session = MakeSession(base, algo, "run");  // fault-free setup
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto names = session->entity_names();
  Matcher replayer(algo);
  replayer.processors(2);

  fileops::ScopedFaultInjector scoped(inject);
  auto ddir = DurableDir::Open(dir);
  if (!ddir.ok()) return;  // crashed before any durable state
  for (int step : steps) {
    if (step < 0) {
      Status st = ddir->SaveSnapshot(session->graph(), session->keys(),
                                     session->plan(), session->result(), algo,
                                     &names);
      if (st.ok()) ++out->saves_acked;
      continue;
    }
    const std::string& text = batches[static_cast<size_t>(step)];
    std::unordered_map<std::string, NodeId> fresh;
    auto delta = ParseDelta(text, session->graph(), names, &fresh);
    ASSERT_TRUE(delta.ok()) << delta.status().ToString();
    auto res = session->Resume(replayer, *delta);  // in-memory, never faulted
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    for (auto& [token, id] : fresh) names[token] = id;
    if (ddir->AppendDeltaText(text).ok()) ++out->appends_acked;
  }
}

// The central invariant: recovery lands on the state after some prefix
// of the batches; that prefix includes every acknowledged batch (nothing
// acknowledged is lost) and the pair set is byte-identical to that
// prefix state (never a hybrid of two states).
void CheckRecovery(const std::string& dir, Algorithm algo,
                   const ScheduleOutcome& out,
                   const std::vector<PairVec>& expected,
                   const std::string& ctx) {
  auto rec = Matcher(algo).processors(2).Recover(dir);
  if (!rec.ok()) {
    // Only legitimate when nothing was ever acknowledged: the crash hit
    // before the first snapshot install.
    EXPECT_EQ(rec.status().code(), StatusCode::kNotFound)
        << ctx << ": " << rec.status().ToString();
    EXPECT_EQ(out.saves_acked, 0u) << ctx << ": acknowledged save lost";
    EXPECT_EQ(out.appends_acked, 0u) << ctx << ": acknowledged batch lost";
    return;
  }
  PairVec got = Sorted(rec->snapshot.result().pairs);
  EXPECT_EQ(got.size(), rec->report.pairs) << ctx;
  bool is_prefix_state = false;
  bool covers_acked = false;
  for (size_t k = 0; k < expected.size(); ++k) {
    if (expected[k] != got) continue;
    is_prefix_state = true;
    if (k >= out.appends_acked) covers_acked = true;
  }
  EXPECT_TRUE(is_prefix_state)
      << ctx << ": recovered pair set matches NO prefix state (hybrid)";
  EXPECT_TRUE(covers_acked)
      << ctx << ": recovered state predates an acknowledged batch";
}

TEST(CrashPoints, EveryInjectionPointRecoversToAPrefix) {
  Base base = MakeBase();
  const Algorithm algo = Algorithm::kEmOptVc;
  auto batches = Batches();
  const std::vector<int> steps = {-1, 0, 1, -1, 2};
  auto expected = ExpectedPrefixes(base, algo, batches, "enum");
  ASSERT_EQ(expected.size(), batches.size() + 1);

  // Dry run: count the schedule's injection points and sanity-check the
  // fault-free outcome against the full-prefix state.
  fileops::ScriptedFaultInjector dry;  // fail_at = -1: count only
  std::string dry_dir = TempPath("enum_dry");
  RemoveTree(dry_dir);
  ScheduleOutcome outcome;
  RunScheduleChecked(dry_dir, base, algo, batches, steps, &dry, &outcome);
  ASSERT_GT(dry.ops_seen, 0);
  EXPECT_EQ(outcome.saves_acked, 2u);
  EXPECT_EQ(outcome.appends_acked, 3u);
  CheckRecovery(dry_dir, algo, outcome, expected, "fault-free");

  // Kill the process (all file ops fail from that op on) at every point;
  // variant "torn" persists a 7-byte prefix of the write it dies on.
  for (int64_t p = 0; p < dry.ops_seen; ++p) {
    for (bool torn : {false, true}) {
      std::string ctx =
          "crash at op " + std::to_string(p) + (torn ? " torn" : "");
      std::string dir = TempPath("enum_pt");
      RemoveTree(dir);
      fileops::ScriptedFaultInjector inject;
      inject.fail_at = p;
      inject.crash_after = true;
      if (torn) inject.action.write_prefix = 7;
      ScheduleOutcome out;
      RunScheduleChecked(dir, base, algo, batches, steps, &inject, &out);
      EXPECT_TRUE(inject.fired) << ctx;
      CheckRecovery(dir, algo, out, expected, ctx);
    }
  }
}

TEST(CrashPoints, RandomSchedulesAllAlgorithms) {
  Base base = MakeBase();
  auto batches = Batches();
  std::mt19937 rng(20260808);
  for (Algorithm algo : AllAlgorithms()) {
    auto expected = ExpectedPrefixes(base, algo, batches, "rand");
    ASSERT_EQ(expected.size(), batches.size() + 1);
    for (int trial = 0; trial < 3; ++trial) {
      // Random schedule: always opens with a save (nothing is durable
      // before one), then batches in order with saves sprinkled in.
      std::vector<int> steps = {-1};
      for (int i = 0; i < static_cast<int>(batches.size()); ++i) {
        if (rng() % 3 == 0) steps.push_back(-1);
        steps.push_back(i);
      }
      std::string tag = "rand_t" + std::to_string(trial);

      fileops::ScriptedFaultInjector dry;
      std::string dry_dir = TempPath(tag + "_dry");
      RemoveTree(dry_dir);
      ScheduleOutcome dry_out;
      RunScheduleChecked(dry_dir, base, algo, batches, steps, &dry,
                         &dry_out);
      ASSERT_GT(dry.ops_seen, 0);
      CheckRecovery(dry_dir, algo, dry_out, expected, tag + " fault-free");

      std::string dir = TempPath(tag);
      RemoveTree(dir);
      fileops::ScriptedFaultInjector inject;
      inject.fail_at =
          static_cast<int64_t>(rng() % static_cast<uint64_t>(dry.ops_seen));
      inject.crash_after = true;
      ScheduleOutcome out;
      RunScheduleChecked(dir, base, algo, batches, steps, &inject, &out);
      CheckRecovery(dir, algo, out, expected,
                    tag + " crash at op " + std::to_string(inject.fail_at));
    }
  }
}

TEST(GracefulDegradation, EnospcSaveKeepsPreviousGenerationRecoverable) {
  Base base = MakeBase();
  const Algorithm algo = Algorithm::kEmOptVc;
  auto batches = Batches();
  auto expected = ExpectedPrefixes(base, algo, batches, "enospc");

  std::string dir = TempPath("enospc");
  RemoveTree(dir);
  auto session = MakeSession(base, algo, "enospc");
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto names = session->entity_names();
  Matcher replayer(algo);
  replayer.processors(2);

  auto ddir = DurableDir::Open(dir);
  ASSERT_TRUE(ddir.ok()) << ddir.status().ToString();
  ASSERT_TRUE(ddir->SaveSnapshot(session->graph(), session->keys(),
                                 session->plan(), session->result(), algo,
                                 &names)
                  .ok());
  // Ingest batch 0 (apply + acknowledged append).
  std::unordered_map<std::string, NodeId> fresh;
  auto d0 = ParseDelta(batches[0], session->graph(), names, &fresh);
  ASSERT_TRUE(d0.ok());
  ASSERT_TRUE(session->Resume(replayer, *d0).ok());
  for (auto& [token, id] : fresh) names[token] = id;
  ASSERT_TRUE(ddir->AppendDeltaText(batches[0]).ok());

  // The disk fills up during the next save.
  {
    fileops::ScriptedFaultInjector inject;
    inject.fail_at = 0;
    inject.has_kind_filter = true;
    inject.only_kind = fileops::OpKind::kWrite;
    inject.action.fail_errno = ENOSPC;
    fileops::ScopedFaultInjector scoped(&inject);
    Status st = ddir->SaveSnapshot(session->graph(), session->keys(),
                                   session->plan(), session->result(), algo,
                                   &names);
    ASSERT_FALSE(st.ok());
    EXPECT_TRUE(inject.fired);
  }
  EXPECT_EQ(ddir->generation(), 1u);
  // The handle refuses further acknowledgements — the failed install may
  // have landed, so acking into the old log would be a silent loss.
  Status append = ddir->AppendDeltaText(batches[1]);
  ASSERT_FALSE(append.ok());
  EXPECT_EQ(append.code(), StatusCode::kFailedPrecondition);

  // Recovery still lands exactly on the acknowledged state.
  ScheduleOutcome out;
  out.saves_acked = 1;
  out.appends_acked = 1;
  CheckRecovery(dir, algo, out, expected, "post-ENOSPC");

  // And a retried save (space back) restores full service.
  ASSERT_TRUE(ddir->SaveSnapshot(session->graph(), session->keys(),
                                 session->plan(), session->result(), algo,
                                 &names)
                  .ok());
  EXPECT_EQ(ddir->generation(), 2u);
  ASSERT_TRUE(ddir->AppendDeltaText(batches[1]).ok());
}

TEST(Recovery, EmptyHeaderOnlyAndMissingWalAreCleanNoOps) {
  Base base = MakeBase();
  const Algorithm algo = Algorithm::kEmMr;
  auto expected = ExpectedPrefixes(base, algo, Batches(), "noop");

  std::string dir = TempPath("noop");
  RemoveTree(dir);
  auto session = MakeSession(base, algo, "noop");
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto names = session->entity_names();
  auto ddir = DurableDir::Open(dir);
  ASSERT_TRUE(ddir.ok());
  ASSERT_TRUE(ddir->SaveSnapshot(session->graph(), session->keys(),
                                 session->plan(), session->result(), algo,
                                 &names)
                  .ok());
  const std::string wal = ddir->WalPath(1);

  auto check_clean = [&](const std::string& ctx) {
    auto rec = Matcher(algo).processors(2).Recover(dir);
    ASSERT_TRUE(rec.ok()) << ctx << ": " << rec.status().ToString();
    EXPECT_EQ(rec->report.generation, 1u) << ctx;
    EXPECT_EQ(rec->report.batches_replayed, 0u) << ctx;
    EXPECT_EQ(rec->report.batches_truncated, 0u) << ctx;
    EXPECT_EQ(Sorted(rec->snapshot.result().pairs), expected[0]) << ctx;
  };
  check_clean("fresh header-only wal");

  // Truncate the log to zero bytes: the header never became durable.
  ASSERT_TRUE(fileops::Truncate(wal, 0).ok());
  check_clean("zero-byte wal");

  // Remove it entirely: a save that died before creating its log.
  ASSERT_EQ(std::remove(wal.c_str()), 0);
  check_clean("missing wal");
}

// ---- Graceful degradation: time budgets --------------------------------

TEST(Deadline, TinyBudgetIsDeadlineExceededForEveryAlgorithm) {
  auto c = testing::MakeG2();
  KeySet keys = testing::MakeSigma2();
  for (Algorithm algo : AllAlgorithms()) {
    auto plan = Matcher::Compile(c.g, keys, PlanOptions::For(algo, 2));
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    auto res =
        Matcher(algo).processors(2).deadline_seconds(1e-12).Run(*plan);
    ASSERT_FALSE(res.ok()) << "algorithm " << static_cast<int>(algo);
    EXPECT_EQ(res.status().code(), StatusCode::kDeadlineExceeded)
        << res.status().ToString();
  }
}

TEST(Deadline, GenerousBudgetChangesNothing) {
  auto c = testing::MakeG2();
  KeySet keys = testing::MakeSigma2();
  for (Algorithm algo : AllAlgorithms()) {
    auto plan = Matcher::Compile(c.g, keys, PlanOptions::For(algo, 2));
    ASSERT_TRUE(plan.ok());
    auto plain = Matcher(algo).processors(2).Run(*plan);
    ASSERT_TRUE(plain.ok()) << plain.status().ToString();
    auto budgeted =
        Matcher(algo).processors(2).deadline_seconds(3600).Run(*plan);
    ASSERT_TRUE(budgeted.ok()) << budgeted.status().ToString();
    EXPECT_EQ(Sorted(budgeted->pairs), Sorted(plain->pairs));
  }
}

TEST(Deadline, SinkKeepsPairsStreamedBeforeTheBudgetExpired) {
  // The budget is a cooperative between-rounds check, so everything the
  // sink saw before the deadline stays delivered — the caller degrades
  // to a partial-but-valid pair set, exactly like cancellation.
  class CollectingSink : public MatchSink {
   public:
    void OnPair(NodeId a, NodeId b) override { pairs.emplace_back(a, b); }
    PairVec pairs;
  };
  auto c = testing::MakeG2();
  KeySet keys = testing::MakeSigma2();
  auto plan =
      Matcher::Compile(c.g, keys, PlanOptions::For(Algorithm::kEmMr, 2));
  ASSERT_TRUE(plan.ok());
  auto full = Matcher(Algorithm::kEmMr).processors(2).Run(*plan);
  ASSERT_TRUE(full.ok());

  CollectingSink sink;
  auto res = Matcher(Algorithm::kEmMr)
                 .processors(2)
                 .deadline_seconds(1e-12)
                 .Run(*plan, sink);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kDeadlineExceeded);
  // Whatever was streamed is a subset of the true answer, not garbage.
  PairVec streamed = Sorted(sink.pairs);
  PairVec truth = Sorted(full->pairs);
  for (const auto& p : streamed) {
    EXPECT_NE(std::find(truth.begin(), truth.end(), p), truth.end());
  }
}

TEST(Deadline, NegativeBudgetIsInvalidArgument) {
  auto c = testing::MakeG2();
  KeySet keys = testing::MakeSigma2();
  auto plan = Matcher::Compile(
      c.g, keys, PlanOptions::For(Algorithm::kNaiveChase, 2));
  ASSERT_TRUE(plan.ok());
  auto res = Matcher(Algorithm::kNaiveChase)
                 .processors(2)
                 .deadline_seconds(-1)
                 .Run(*plan);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace gkeys
