#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/matcher.h"
#include "graph/delta.h"
#include "graph/graph.h"
#include "keys/key.h"

namespace gkeys {
namespace {

constexpr Algorithm kAll[] = {
    Algorithm::kNaiveChase, Algorithm::kEmMr,  Algorithm::kEmVf2Mr,
    Algorithm::kEmOptMr,    Algorithm::kEmVc,  Algorithm::kEmOptVc,
};

using Pair = std::pair<NodeId, NodeId>;

struct RecordingSink : MatchSink {
  std::vector<Pair> pairs;
  std::vector<Pair> retracted;
  void OnPair(NodeId a, NodeId b) override { pairs.emplace_back(a, b); }
  void OnPairRetracted(NodeId a, NodeId b) override {
    retracted.emplace_back(a, b);
  }
};

/// Two independent value-identified pairs: (p0, p1) via "dup1" and
/// (p2, p3) via "dup2", plus a singleton.
struct TwoPairFixture {
  Graph g;
  KeySet keys;
  NodeId p[5];
  NodeId dup1_value;

  TwoPairFixture() {
    EXPECT_TRUE(keys.AddFromDsl("key K_p for p {\n  x -[a]-> v0*\n}\n").ok());
    dup1_value = kNoNode;
    for (int i = 0; i < 5; ++i) p[i] = g.AddEntity("p");
    dup1_value = g.AddValue("dup1");
    NodeId dup2 = g.AddValue("dup2");
    g.AddTriple(p[0], "a", dup1_value).IgnoreError();
    g.AddTriple(p[1], "a", dup1_value).IgnoreError();
    g.AddTriple(p[2], "a", dup2).IgnoreError();
    g.AddTriple(p[3], "a", dup2).IgnoreError();
    g.AddTriple(p[4], "a", g.AddValue("solo")).IgnoreError();
    g.Finalize();
  }
};

TEST(RetractSink, RemovalRetractsAcrossAllAlgorithmsAndModes) {
  for (Algorithm a : kAll) {
    for (RematchOptions::Mode mode :
         {RematchOptions::Mode::kForceSeed, RematchOptions::Mode::kForceFull,
          RematchOptions::Mode::kAuto}) {
      TwoPairFixture f;
      auto plan = Matcher::Compile(f.g, f.keys, PlanOptions::For(a, 2));
      ASSERT_TRUE(plan.ok()) << AlgorithmName(a);
      Matcher m(a);
      m.processors(2).rematch_mode(mode);
      auto prev = m.Run(*plan);
      ASSERT_TRUE(prev.ok()) << AlgorithmName(a);
      ASSERT_EQ(prev->pairs,
                (std::vector<Pair>{{f.p[0], f.p[1]}, {f.p[2], f.p[3]}}));

      GraphDelta delta(f.g);
      ASSERT_TRUE(delta.RemoveTriple(f.p[1], "a", f.dup1_value).ok());
      ASSERT_TRUE(f.g.Apply(delta).ok());
      auto patched = plan->Patch(delta);
      ASSERT_TRUE(patched.ok()) << AlgorithmName(a);

      RecordingSink sink;
      auto r = m.Rematch(*patched, *prev, delta, sink);
      ASSERT_TRUE(r.ok()) << AlgorithmName(a) << " mode "
                          << static_cast<int>(mode) << ": "
                          << r.status().message();
      // (p0, p1) lost its only witness; (p2, p3) is untouched.
      EXPECT_EQ(r->pairs, (std::vector<Pair>{{f.p[2], f.p[3]}}))
          << AlgorithmName(a);
      EXPECT_EQ(sink.retracted, (std::vector<Pair>{{f.p[0], f.p[1]}}))
          << AlgorithmName(a) << " mode " << static_cast<int>(mode);
      EXPECT_EQ(r->stats.pairs_retracted, 1u) << AlgorithmName(a);
    }
  }
}

TEST(RetractSink, AdditiveDeltaNeverRetracts) {
  for (Algorithm a : kAll) {
    TwoPairFixture f;
    auto plan = Matcher::Compile(f.g, f.keys, PlanOptions::For(a, 2));
    ASSERT_TRUE(plan.ok());
    Matcher m(a);
    m.processors(2);
    auto prev = m.Run(*plan);
    ASSERT_TRUE(prev.ok());

    // The new entity joins the dup1 bucket: a NEW pair appears, nothing
    // disappears (identification is monotone under additions).
    GraphDelta delta(f.g);
    NodeId e = delta.AddEntity("p");
    ASSERT_TRUE(delta.AddTriple(e, "a", f.dup1_value).ok());
    ASSERT_TRUE(f.g.Apply(delta).ok());
    auto patched = plan->Patch(delta);
    ASSERT_TRUE(patched.ok());

    RecordingSink sink;
    auto r = m.Rematch(*patched, *prev, delta, sink);
    ASSERT_TRUE(r.ok()) << AlgorithmName(a);
    EXPECT_TRUE(sink.retracted.empty()) << AlgorithmName(a);
    EXPECT_EQ(r->stats.pairs_retracted, 0u) << AlgorithmName(a);
    EXPECT_GT(r->pairs.size(), prev->pairs.size()) << AlgorithmName(a);
  }
}

TEST(RetractSink, PairReDerivableThroughSecondKeyIsNotRetracted) {
  for (Algorithm a : kAll) {
    // (e0, e1) is identified by BOTH K_a (shared "va") and K_b (shared
    // "vb"). Removing the K_a witness must not report a retraction: the
    // pair is still in chase(G, Σ) through K_b.
    Graph g;
    KeySet keys;
    ASSERT_TRUE(keys.AddFromDsl("key K_a for p {\n  x -[a]-> v0*\n}\n"
                                "key K_b for p {\n  x -[b]-> v0*\n}\n")
                    .ok());
    NodeId e0 = g.AddEntity("p");
    NodeId e1 = g.AddEntity("p");
    NodeId va = g.AddValue("va");
    NodeId vb = g.AddValue("vb");
    g.AddTriple(e0, "a", va).IgnoreError();
    g.AddTriple(e1, "a", va).IgnoreError();
    g.AddTriple(e0, "b", vb).IgnoreError();
    g.AddTriple(e1, "b", vb).IgnoreError();
    g.Finalize();

    auto plan = Matcher::Compile(g, keys, PlanOptions::For(a, 2));
    ASSERT_TRUE(plan.ok());
    Matcher m(a);
    m.processors(2);
    auto prev = m.Run(*plan);
    ASSERT_TRUE(prev.ok());
    ASSERT_EQ(prev->pairs, (std::vector<Pair>{{e0, e1}}));

    GraphDelta delta(g);
    ASSERT_TRUE(delta.RemoveTriple(e1, "a", va).ok());
    ASSERT_TRUE(g.Apply(delta).ok());
    auto patched = plan->Patch(delta);
    ASSERT_TRUE(patched.ok());

    RecordingSink sink;
    auto r = m.Rematch(*patched, *prev, delta, sink);
    ASSERT_TRUE(r.ok()) << AlgorithmName(a);
    EXPECT_EQ(r->pairs, (std::vector<Pair>{{e0, e1}})) << AlgorithmName(a);
    EXPECT_TRUE(sink.retracted.empty()) << AlgorithmName(a);
    EXPECT_EQ(r->stats.pairs_retracted, 0u) << AlgorithmName(a);
  }
}

TEST(RetractSink, DependentPairsRetractTransitively) {
  for (Algorithm a : kAll) {
    // leaf pair (l0, l1) depends on hub pair (h0, h1): losing the hub
    // witness cascades — both pairs must be reported retracted.
    Graph g;
    KeySet keys;
    ASSERT_TRUE(
        keys.AddFromDsl("key K_hub for hub {\n  x -[hv]-> v0*\n}\n"
                        "key K_leaf for leaf {\n"
                        "  x -[la]-> v0*\n"
                        "  x -[link]-> y:hub\n"
                        "}\n")
            .ok());
    NodeId h0 = g.AddEntity("hub");
    NodeId h1 = g.AddEntity("hub");
    NodeId hv = g.AddValue("hv_shared");
    g.AddTriple(h0, "hv", hv).IgnoreError();
    g.AddTriple(h1, "hv", hv).IgnoreError();
    NodeId l0 = g.AddEntity("leaf");
    NodeId l1 = g.AddEntity("leaf");
    NodeId la = g.AddValue("la_shared");
    g.AddTriple(l0, "la", la).IgnoreError();
    g.AddTriple(l1, "la", la).IgnoreError();
    g.AddTriple(l0, "link", h0).IgnoreError();
    g.AddTriple(l1, "link", h1).IgnoreError();
    g.Finalize();

    auto plan = Matcher::Compile(g, keys, PlanOptions::For(a, 2));
    ASSERT_TRUE(plan.ok());
    Matcher m(a);
    m.processors(2);
    auto prev = m.Run(*plan);
    ASSERT_TRUE(prev.ok());
    ASSERT_EQ(prev->pairs, (std::vector<Pair>{{h0, h1}, {l0, l1}}));

    GraphDelta delta(g);
    ASSERT_TRUE(delta.RemoveTriple(h1, "hv", hv).ok());
    ASSERT_TRUE(g.Apply(delta).ok());
    auto patched = plan->Patch(delta);
    ASSERT_TRUE(patched.ok());

    RecordingSink sink;
    auto r = m.Rematch(*patched, *prev, delta, sink);
    ASSERT_TRUE(r.ok()) << AlgorithmName(a);
    EXPECT_TRUE(r->pairs.empty()) << AlgorithmName(a);
    EXPECT_EQ(sink.retracted, (std::vector<Pair>{{h0, h1}, {l0, l1}}))
        << AlgorithmName(a);
    EXPECT_EQ(r->stats.pairs_retracted, 2u) << AlgorithmName(a);
  }
}

TEST(RetractSink, StatsReportedWithoutASinkToo) {
  TwoPairFixture f;
  auto plan =
      Matcher::Compile(f.g, f.keys, PlanOptions::For(Algorithm::kEmOptVc, 2));
  ASSERT_TRUE(plan.ok());
  Matcher m(Algorithm::kEmOptVc);
  m.processors(2);
  auto prev = m.Run(*plan);
  ASSERT_TRUE(prev.ok());

  GraphDelta delta(f.g);
  ASSERT_TRUE(delta.RemoveTriple(f.p[1], "a", f.dup1_value).ok());
  ASSERT_TRUE(f.g.Apply(delta).ok());
  auto patched = plan->Patch(delta);
  ASSERT_TRUE(patched.ok());

  auto r = m.Rematch(*patched, *prev, delta);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.pairs_retracted, 1u);
}

}  // namespace
}  // namespace gkeys
