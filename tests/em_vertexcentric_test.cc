// EMVC-specific behavior: message accounting, bounded-k sweeps,
// prioritized propagation, dependency re-seeding, and TC sweeps.

#include "core/em_vertexcentric.h"

#include <gtest/gtest.h>

#include "core/chase.h"
#include "gen/datasets.h"
#include "gen/synthetic.h"
#include "test_util.h"

namespace gkeys {
namespace {

using testing::MakeG1;
using testing::MakeSigma1;
using testing::Pairs;

TEST(EmVertexCentric, MatchesOracleOnG1) {
  auto m = MakeG1();
  KeySet sigma1 = MakeSigma1();
  MatchResult r = RunEmVertexCentric(m.g, sigma1,
                                     EmOptions::For(Algorithm::kEmVc, 2));
  EXPECT_EQ(r.pairs, Pairs({{m.alb1, m.alb2}, {m.art1, m.art2}}));
  EXPECT_GT(r.stats.messages, 0u);
  EXPECT_GT(r.stats.product_graph_nodes, 0u);
}

TEST(EmVertexCentric, EveryBudgetKIsCorrect) {
  // Lemma 11 correctness must hold for any k, including k = 1 (fully
  // sequential per check, maximal backtracking).
  SyntheticConfig cfg;
  cfg.num_groups = 2;
  cfg.chain_length = 3;
  cfg.entities_per_type = 12;
  cfg.chained_fraction = 1.0;
  SyntheticDataset ds = GenerateSynthetic(cfg);
  for (int k : {1, 2, 4, 16, 0 /* unbounded */}) {
    EmOptions opts = EmOptions::For(Algorithm::kEmVc, 4);
    opts.bounded_messages = k;
    MatchResult r = RunEmVertexCentric(ds.graph, ds.keys, opts);
    EXPECT_EQ(r.pairs, ds.planted) << "k=" << k;
  }
}

TEST(EmVertexCentric, SmallerBudgetFewerMessages) {
  SyntheticConfig cfg;
  cfg.num_groups = 2;
  cfg.chain_length = 2;
  cfg.entities_per_type = 20;
  SyntheticDataset ds = GenerateSynthetic(cfg);
  // Message volume grows with the budget: k=1 (sequential, maximal
  // backtracking) ≤ k=4 ≤ unbounded forking.
  auto messages_for = [&](int k) {
    EmOptions opts = EmOptions::For(Algorithm::kEmVc, 4);
    opts.bounded_messages = k;
    MatchResult r = RunEmVertexCentric(ds.graph, ds.keys, opts);
    EXPECT_EQ(r.pairs, ds.planted) << "k=" << k;
    return r.stats.messages;
  };
  uint64_t m1 = messages_for(1);
  uint64_t m4 = messages_for(4);
  uint64_t unbounded = messages_for(0);
  EXPECT_LE(m1, m4);
  EXPECT_LE(m4, unbounded);
}

TEST(EmVertexCentric, PrioritizedPropagationPreservesResult) {
  SyntheticConfig cfg;
  cfg.num_groups = 3;
  cfg.chain_length = 2;
  cfg.entities_per_type = 16;
  SyntheticDataset ds = GenerateSynthetic(cfg);
  EmOptions plain = EmOptions::For(Algorithm::kEmVc, 4);
  EmOptions prio = plain;
  prio.prioritized = true;
  EXPECT_EQ(RunEmVertexCentric(ds.graph, ds.keys, plain).pairs,
            RunEmVertexCentric(ds.graph, ds.keys, prio).pairs);
}

TEST(EmVertexCentric, DependencyReSeedingResolvesChains) {
  // Fully chained c = 4 clusters: every higher-level pair can only fire
  // after a dep notification from the level below — exercises the
  // increment-message path rather than the initial seeds.
  SyntheticConfig cfg;
  cfg.num_groups = 1;
  cfg.chain_length = 4;
  cfg.entities_per_type = 8;
  cfg.chained_fraction = 1.0;
  cfg.seed = 31;
  SyntheticDataset ds = GenerateSynthetic(cfg);
  MatchResult r = RunEmVertexCentric(ds.graph, ds.keys,
                                     EmOptions::For(Algorithm::kEmOptVc, 4));
  EXPECT_EQ(r.pairs, ds.planted);
}

TEST(EmVertexCentric, TransitiveClosureViaSweep) {
  // a~b and b~c identified directly; (a,c) must appear via TC, and any
  // pair depending on (a,c) must then fire (the quiescence sweep).
  Graph g;
  NodeId a = g.AddEntity("album");
  NodeId b = g.AddEntity("album");
  NodeId c = g.AddEntity("album");
  NodeId n = g.AddValue("N");
  for (NodeId e : {a, b, c}) g.AddTriple(e, "name_of", n).IgnoreError();
  NodeId y1 = g.AddValue("Y");
  g.AddTriple(a, "release_year", y1).IgnoreError();
  g.AddTriple(b, "release_year", y1).IgnoreError();
  NodeId l = g.AddValue("L");
  g.AddTriple(b, "label", l).IgnoreError();
  g.AddTriple(c, "label", l).IgnoreError();
  // Artists recording a and c: identifiable only once (a, c) ∈ Eq.
  NodeId r1 = g.AddEntity("artist");
  NodeId r2 = g.AddEntity("artist");
  NodeId an = g.AddValue("AN");
  g.AddTriple(r1, "name_of", an).IgnoreError();
  g.AddTriple(r2, "name_of", an).IgnoreError();
  g.AddTriple(a, "recorded_by", r1).IgnoreError();
  g.AddTriple(c, "recorded_by", r2).IgnoreError();
  g.Finalize();
  KeySet keys;
  ASSERT_TRUE(keys.AddFromDsl(R"(
    key ByYear for album {
      x -[name_of]-> n*
      x -[release_year]-> yr*
    }
    key ByLabel for album {
      x -[name_of]-> n*
      x -[label]-> l*
    }
    key Q3 for artist {
      x -[name_of]-> n*
      y:album -[recorded_by]-> x
    }
  )").ok());
  MatchResult oracle = Chase(g, keys);
  for (int p : {1, 4}) {
    MatchResult r = RunEmVertexCentric(g, keys,
                                       EmOptions::For(Algorithm::kEmVc, p));
    EXPECT_EQ(r.pairs, oracle.pairs) << "p=" << p;
  }
  // The artist pair is in the result (depends on the TC-derived (a, c)).
  bool artist_pair = false;
  for (auto [x, y] : oracle.pairs) {
    artist_pair |= (x == std::min(r1, r2) && y == std::max(r1, r2));
  }
  EXPECT_TRUE(artist_pair);
}

TEST(EmVertexCentric, ResultIndependentOfProcessorCount) {
  GoogleSimConfig cfg;
  cfg.scale = 0.6;
  SyntheticDataset ds = GenerateGoogleSim(cfg);
  for (int p : {1, 3, 8}) {
    MatchResult r = RunEmVertexCentric(ds.graph, ds.keys,
                                       EmOptions::For(Algorithm::kEmVc, p));
    EXPECT_EQ(r.pairs, ds.planted) << "p=" << p;
  }
}

TEST(EmVertexCentric, RepeatedRunsAreDeterministicInResult) {
  SyntheticConfig cfg;
  cfg.num_groups = 2;
  cfg.chain_length = 2;
  cfg.entities_per_type = 16;
  SyntheticDataset ds = GenerateSynthetic(cfg);
  EmOptions opts = EmOptions::For(Algorithm::kEmOptVc, 8);
  MatchResult first = RunEmVertexCentric(ds.graph, ds.keys, opts);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(RunEmVertexCentric(ds.graph, ds.keys, opts).pairs,
              first.pairs);
  }
}

}  // namespace
}  // namespace gkeys
