#include "mapreduce/mapreduce.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

namespace gkeys {
namespace {

using mapreduce::Emitter;
using mapreduce::Job;
using mapreduce::RoundStats;

TEST(MapReduce, WordCount) {
  // The canonical smoke test for the runtime.
  Job<int, std::string, std::string, int, std::string, int> job(
      [](const int&, const std::string& line, Emitter<std::string, int>& out) {
        size_t pos = 0;
        while (pos < line.size()) {
          size_t sp = line.find(' ', pos);
          if (sp == std::string::npos) sp = line.size();
          if (sp > pos) out.Emit(line.substr(pos, sp - pos), 1);
          pos = sp + 1;
        }
      },
      [](const std::string& word, const std::vector<int>& counts,
         Emitter<std::string, int>& out) {
        int total = 0;
        for (int c : counts) total += c;
        out.Emit(word, total);
      });

  std::vector<std::pair<int, std::string>> inputs = {
      {0, "the quick fox"}, {1, "the lazy dog"}, {2, "the fox"}};
  for (int p : {1, 2, 4, 8}) {
    auto result = job.Run(inputs, p);
    std::map<std::string, int> counts(result.begin(), result.end());
    EXPECT_EQ(counts["the"], 3) << "p=" << p;
    EXPECT_EQ(counts["fox"], 2);
    EXPECT_EQ(counts["quick"], 1);
    EXPECT_EQ(counts.size(), 5u);
  }
}

TEST(MapReduce, GroupsAllValuesOfAKey) {
  Job<int, int, int, int, int, int> job(
      [](const int& k, const int& v, Emitter<int, int>& out) {
        out.Emit(k % 3, v);
      },
      [](const int& key, const std::vector<int>& values,
         Emitter<int, int>& out) {
        out.Emit(key, static_cast<int>(values.size()));
      });
  std::vector<std::pair<int, int>> inputs;
  for (int i = 0; i < 90; ++i) inputs.emplace_back(i, i);
  auto result = job.Run(inputs, 4);
  ASSERT_EQ(result.size(), 3u);
  for (auto [k, count] : result) EXPECT_EQ(count, 30) << "key " << k;
}

TEST(MapReduce, EmptyInput) {
  Job<int, int, int, int, int, int> job(
      [](const int&, const int&, Emitter<int, int>&) {},
      [](const int&, const std::vector<int>&, Emitter<int, int>&) {});
  EXPECT_TRUE(job.Run({}, 4).empty());
}

TEST(MapReduce, StatsReported) {
  Job<int, int, int, int, int, int> job(
      [](const int& k, const int& v, Emitter<int, int>& out) {
        out.Emit(k, v);
        out.Emit(k + 100, v);  // two intermediates per input
      },
      [](const int& k, const std::vector<int>& vs, Emitter<int, int>& out) {
        out.Emit(k, static_cast<int>(vs.size()));
      });
  std::vector<std::pair<int, int>> inputs;
  for (int i = 0; i < 10; ++i) inputs.emplace_back(i, i);
  RoundStats stats;
  auto result = job.Run(inputs, 3, &stats);
  EXPECT_EQ(stats.map_inputs, 10u);
  EXPECT_EQ(stats.map_outputs, 20u);
  EXPECT_EQ(stats.reduce_groups, 20u);  // all keys distinct
  EXPECT_EQ(stats.reduce_outputs, 20u);
  EXPECT_EQ(result.size(), 20u);
}

TEST(MapReduce, ResultIndependentOfParallelism) {
  // The shuffle must be deterministic up to ordering: sort and compare.
  Job<int, int, int, int, int, int> job(
      [](const int& k, const int& v, Emitter<int, int>& out) {
        out.Emit(v % 7, k + v);
      },
      [](const int& k, const std::vector<int>& vs, Emitter<int, int>& out) {
        int sum = 0;
        for (int v : vs) sum += v;
        out.Emit(k, sum);
      });
  std::vector<std::pair<int, int>> inputs;
  for (int i = 0; i < 200; ++i) inputs.emplace_back(i, 3 * i + 1);
  auto sorted_run = [&](int p) {
    auto r = job.Run(inputs, p);
    std::sort(r.begin(), r.end());
    return r;
  };
  auto base = sorted_run(1);
  EXPECT_EQ(sorted_run(2), base);
  EXPECT_EQ(sorted_run(5), base);
  EXPECT_EQ(sorted_run(16), base);
}

TEST(MapReduce, IterativeDriverConverges) {
  // A tiny fixpoint computation in rounds: propagate min label along a
  // ring until stable — the control structure EMMR uses.
  constexpr int kN = 16;
  std::vector<int> label(kN);
  for (int i = 0; i < kN; ++i) label[i] = i;

  Job<int, int, int, int, int, int> job(
      [&](const int& node, const int& lbl, Emitter<int, int>& out) {
        out.Emit((node + 1) % kN, lbl);  // send my label to my neighbor
        out.Emit(node, lbl);
      },
      [](const int& node, const std::vector<int>& labels,
         Emitter<int, int>& out) {
        int mn = labels[0];
        for (int l : labels) mn = std::min(mn, l);
        out.Emit(node, mn);
      });

  int rounds = 0;
  bool changed = true;
  while (changed) {
    ++rounds;
    std::vector<std::pair<int, int>> inputs;
    for (int i = 0; i < kN; ++i) inputs.emplace_back(i, label[i]);
    changed = false;
    for (auto [node, lbl] : job.Run(inputs, 4)) {
      if (lbl < label[node]) {
        label[node] = lbl;
        changed = true;
      }
    }
    ASSERT_LE(rounds, kN + 1) << "must converge";
  }
  for (int l : label) EXPECT_EQ(l, 0);
}

}  // namespace
}  // namespace gkeys
