// Property tests for the flat hot-path data structures: the sorted-vector
// NodeSet against reference std::set semantics, the CSR graph storage
// against its pre-finalization adjacency lists, and DNeighbor against a
// naive reference BFS — all on randomized inputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"
#include "graph/neighborhood.h"

namespace gkeys {
namespace {

// ---- NodeSet vs reference std::set -----------------------------------------

std::vector<NodeId> ToVec(const std::set<NodeId>& s) {
  return std::vector<NodeId>(s.begin(), s.end());
}

TEST(NodeSetProperty, RandomInsertUnionIntersectContains) {
  Rng rng(2026);
  for (int iter = 0; iter < 60; ++iter) {
    NodeSet a, b;
    std::set<NodeId> ra, rb;
    const NodeId universe = 1 + static_cast<NodeId>(rng.Below(150));
    const size_t ops = rng.Below(120);
    for (size_t i = 0; i < ops; ++i) {
      NodeId v = static_cast<NodeId>(rng.Below(universe));
      if (rng.Below(2) == 0) {
        a.Insert(v);
        ra.insert(v);
      } else {
        b.Insert(v);
        rb.insert(v);
      }
    }
    ASSERT_EQ(a.size(), ra.size());
    ASSERT_EQ(b.size(), rb.size());
    for (NodeId v = 0; v < universe; ++v) {
      ASSERT_EQ(a.Contains(v), ra.count(v) > 0) << "v=" << v;
    }
    // Iteration is sorted ascending (consumers rely on it).
    ASSERT_EQ(a.ToVector(), ToVec(ra));

    NodeSet u = a;
    u.UnionWith(b);
    std::set<NodeId> ru = ra;
    ru.insert(rb.begin(), rb.end());
    ASSERT_EQ(u.ToVector(), ToVec(ru));

    NodeSet i = a;
    i.IntersectWith(b);
    std::set<NodeId> ri;
    for (NodeId v : ra) {
      if (rb.count(v) > 0) ri.insert(v);
    }
    ASSERT_EQ(i.ToVector(), ToVec(ri));
  }
}

TEST(NodeSetProperty, ConstructorSortsAndDeduplicates) {
  NodeSet s(std::vector<NodeId>{9, 3, 3, 7, 1, 9, 1});
  EXPECT_EQ(s.ToVector(), (std::vector<NodeId>{1, 3, 7, 9}));
  EXPECT_TRUE(s.Contains(7));
  EXPECT_FALSE(s.Contains(2));
}

// ---- Random graphs ----------------------------------------------------------

Graph RandomGraph(Rng& rng, size_t entities, size_t values, size_t triples) {
  Graph g;
  for (size_t i = 0; i < entities; ++i) {
    g.AddEntity("t" + std::to_string(rng.Below(3)));
  }
  std::vector<NodeId> vals;
  for (size_t i = 0; i < values; ++i) {
    vals.push_back(g.AddValue("v" + std::to_string(i)));
  }
  for (size_t i = 0; i < triples; ++i) {
    NodeId s = static_cast<NodeId>(rng.Below(entities));
    NodeId o = rng.Below(4) == 0 && !vals.empty()
                   ? vals[rng.Below(vals.size())]
                   : static_cast<NodeId>(rng.Below(entities));
    g.AddTriple(s, "p" + std::to_string(rng.Below(5)), o).IgnoreError();
  }
  return g;
}

/// Reference d-neighbor: plain set-based BFS, no scratch buffers.
std::vector<NodeId> ReferenceDNeighbor(const Graph& g, NodeId center,
                                       int d) {
  std::set<NodeId> seen{center};
  std::vector<NodeId> frontier{center};
  for (int dist = 0; dist < d && !frontier.empty(); ++dist) {
    std::vector<NodeId> next;
    for (NodeId n : frontier) {
      for (const Edge& e : g.Out(n)) {
        if (seen.insert(e.dst).second) next.push_back(e.dst);
      }
      for (const Edge& e : g.In(n)) {
        if (seen.insert(e.dst).second) next.push_back(e.dst);
      }
    }
    frontier = std::move(next);
  }
  return std::vector<NodeId>(seen.begin(), seen.end());
}

TEST(DNeighborProperty, MatchesReferenceBfsOnRandomGraphs) {
  Rng rng(41);
  for (int iter = 0; iter < 25; ++iter) {
    Graph g = RandomGraph(rng, 20 + rng.Below(40), 10, 60 + rng.Below(120));
    g.Finalize();
    for (int d = 0; d <= 3; ++d) {
      for (int probe = 0; probe < 5; ++probe) {
        NodeId center = static_cast<NodeId>(rng.Below(g.NumEntities()));
        NodeSet got = DNeighbor(g, center, d);
        ASSERT_EQ(got.ToVector(), ReferenceDNeighbor(g, center, d))
            << "center=" << center << " d=" << d;
      }
    }
  }
}

TEST(DNeighborScratch, ShrinksAfterBigGraphThenSmallGraph) {
  // Regression: the thread-local visited scratch grew to the largest
  // graph ever seen on the thread and was never released. A much smaller
  // graph must shrink it back (and results must stay correct throughout).
  constexpr size_t kBigNodes = 300000;
  Graph big;
  NodeId first = big.AddEntity("t");
  NodeId prev = first;
  for (size_t i = 1; i < kBigNodes; ++i) {
    NodeId n = big.AddEntity("t");
    ASSERT_TRUE(big.AddTriple(prev, "p", n).ok());
    prev = n;
  }
  big.Finalize();
  NodeSet chain = DNeighbor(big, first, 3);
  EXPECT_EQ(chain.size(), 4u);  // a chain: center + 3 hops
  const size_t grown = internal::DNeighborScratchBytes();
  EXPECT_GE(grown, kBigNodes);

  Graph small;
  NodeId a = small.AddEntity("t");
  NodeId b = small.AddEntity("t");
  ASSERT_TRUE(small.AddTriple(a, "p", b).ok());
  small.Finalize();
  NodeSet got = DNeighbor(small, a, 1);
  EXPECT_EQ(got.ToVector(), (std::vector<NodeId>{a, b}));
  EXPECT_LT(internal::DNeighborScratchBytes(), grown / 4);

  // Growing again afterwards still works (the zero-fill invariant held).
  NodeSet again = DNeighbor(big, first, 2);
  EXPECT_EQ(again.size(), 3u);
}

// ---- CSR storage ------------------------------------------------------------

TEST(CsrGraph, FinalizePreservesAdjacencyAndDeduplicates) {
  Rng rng(7);
  for (int iter = 0; iter < 20; ++iter) {
    Graph g = RandomGraph(rng, 15, 8, 80);
    // Snapshot the pre-finalization adjacency (sorted + deduplicated, the
    // finalized contract).
    std::vector<std::vector<Edge>> out_before(g.NumNodes());
    std::vector<std::vector<Edge>> in_before(g.NumNodes());
    for (NodeId n = 0; n < g.NumNodes(); ++n) {
      auto out = g.Out(n);
      out_before[n].assign(out.begin(), out.end());
      std::sort(out_before[n].begin(), out_before[n].end());
      out_before[n].erase(
          std::unique(out_before[n].begin(), out_before[n].end()),
          out_before[n].end());
      auto in = g.In(n);
      in_before[n].assign(in.begin(), in.end());
      std::sort(in_before[n].begin(), in_before[n].end());
      in_before[n].erase(
          std::unique(in_before[n].begin(), in_before[n].end()),
          in_before[n].end());
    }
    g.Finalize();
    size_t total = 0;
    for (NodeId n = 0; n < g.NumNodes(); ++n) {
      auto out = g.Out(n);
      ASSERT_EQ(std::vector<Edge>(out.begin(), out.end()), out_before[n]);
      auto in = g.In(n);
      ASSERT_EQ(std::vector<Edge>(in.begin(), in.end()), in_before[n]);
      total += out.size();
      for (const Edge& e : out) {
        ASSERT_TRUE(g.HasTriple(n, e.pred, e.dst));
      }
    }
    ASSERT_EQ(g.NumTriples(), total);
  }
}

TEST(CsrGraph, MutatingAfterFinalizeThawsTransparently) {
  Graph g;
  NodeId a = g.AddEntity("t");
  NodeId b = g.AddEntity("t");
  NodeId v = g.AddValue("x");
  ASSERT_TRUE(g.AddTriple(a, "p", b).ok());
  g.Finalize();
  ASSERT_TRUE(g.finalized());
  ASSERT_EQ(g.NumTriples(), 1u);

  // Mutations on a finalized graph thaw it and keep every existing edge.
  ASSERT_TRUE(g.AddTriple(b, "q", v).ok());
  EXPECT_FALSE(g.finalized());
  EXPECT_TRUE(g.HasTriple(a, g.Intern("p"), b));
  EXPECT_TRUE(g.HasTriple(b, g.Intern("q"), v));
  NodeId c = g.AddEntity("t");
  ASSERT_TRUE(g.AddTriple(c, "p", b).ok());

  g.Finalize();
  EXPECT_EQ(g.NumTriples(), 3u);
  EXPECT_TRUE(g.HasTriple(a, g.Intern("p"), b));
  EXPECT_TRUE(g.HasTriple(b, g.Intern("q"), v));
  EXPECT_TRUE(g.HasTriple(c, g.Intern("p"), b));
  EXPECT_EQ(g.InDegree(b), 2u);
}

TEST(CsrGraph, ForEachTripleCoversBothRepresentations) {
  Graph g;
  NodeId a = g.AddEntity("t");
  NodeId v = g.AddValue("x");
  g.AddTriple(a, "p", v).IgnoreError();
  g.AddTriple(a, "p", v).IgnoreError();  // duplicate, removed by Finalize
  size_t before = 0;
  g.ForEachTriple([&](const Triple&) { ++before; });
  EXPECT_EQ(before, 2u);
  g.Finalize();
  size_t after = 0;
  g.ForEachTriple([&](const Triple&) { ++after; });
  EXPECT_EQ(after, 1u);
}

}  // namespace
}  // namespace gkeys
