#include "workload/json.h"

#include <gtest/gtest.h>

#include <string>

namespace gkeys {
namespace {

TEST(JsonReader, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->bool_value());
  EXPECT_FALSE(ParseJson("false")->bool_value());
  EXPECT_DOUBLE_EQ(ParseJson("42")->number(), 42.0);
  EXPECT_DOUBLE_EQ(ParseJson("-1.5e2")->number(), -150.0);
  EXPECT_EQ(ParseJson("\"hi\"")->string(), "hi");
}

TEST(JsonReader, ParsesNestedStructure) {
  auto v = ParseJson(R"({
    "name": "spec",
    "nums": [1, 2, 3],
    "inner": {"flag": true, "deep": [{"x": 0}]}
  })");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_object());
  EXPECT_EQ(v->StringOr("name", ""), "spec");
  const JsonValue* nums = v->Find("nums");
  ASSERT_NE(nums, nullptr);
  ASSERT_EQ(nums->array().size(), 3u);
  EXPECT_DOUBLE_EQ(nums->array()[1].number(), 2.0);
  const JsonValue* inner = v->Find("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_TRUE(inner->BoolOr("flag", false));
  EXPECT_EQ(inner->Find("deep")->array()[0].NumberOr("x", -1), 0.0);
}

TEST(JsonReader, MembersKeepDocumentOrder) {
  auto v = ParseJson(R"({"b": 1, "a": 2, "c": 3})");
  ASSERT_TRUE(v.ok());
  ASSERT_EQ(v->members().size(), 3u);
  EXPECT_EQ(v->members()[0].first, "b");
  EXPECT_EQ(v->members()[1].first, "a");
  EXPECT_EQ(v->members()[2].first, "c");
}

TEST(JsonReader, DecodesEscapes) {
  auto v = ParseJson(R"("a\"b\\c\ndAé")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->string(), "a\"b\\c\ndA\xc3\xa9");
}

TEST(JsonReader, TypedHelpersFallBack) {
  auto v = ParseJson(R"({"n": 1, "s": "x", "b": true})");
  ASSERT_TRUE(v.ok());
  // Wrong-typed or absent members yield the fallback instead of aborting.
  EXPECT_DOUBLE_EQ(v->NumberOr("s", 7.0), 7.0);
  EXPECT_DOUBLE_EQ(v->NumberOr("missing", 7.0), 7.0);
  EXPECT_EQ(v->StringOr("n", "d"), "d");
  EXPECT_TRUE(v->BoolOr("missing", true));
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonReader, RejectsMalformedInput) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\" 1}", "{\"a\": 1,}",
                          "tru", "\"unterminated", "1 2", "{\"a\":}",
                          "[1 2]", "nul", "\"bad\\q\""}) {
    auto v = ParseJson(bad);
    EXPECT_FALSE(v.ok()) << "input: " << bad;
    if (!v.ok()) {
      EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument) << bad;
    }
  }
}

TEST(JsonReader, ErrorsNameTheLine) {
  auto v = ParseJson("{\n  \"a\": 1,\n  \"b\": oops\n}");
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.status().message().find("line 3"), std::string::npos)
      << v.status().message();
}

TEST(JsonReader, RejectsTrailingContent) {
  auto v = ParseJson("{\"a\": 1} trailing");
  EXPECT_FALSE(v.ok());
}

}  // namespace
}  // namespace gkeys
