#include "eq/equivalence.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace gkeys {
namespace {

TEST(Equivalence, StartsAsIdentity) {
  EquivalenceRelation eq(5);
  for (NodeId i = 0; i < 5; ++i) {
    for (NodeId j = 0; j < 5; ++j) {
      EXPECT_EQ(eq.Same(i, j), i == j);
    }
  }
  EXPECT_TRUE(eq.IdentifiedPairs().empty());
}

TEST(Equivalence, UnionReportsGrowth) {
  EquivalenceRelation eq(4);
  EXPECT_TRUE(eq.Union(0, 1));
  EXPECT_FALSE(eq.Union(0, 1));  // already same
  EXPECT_FALSE(eq.Union(1, 0));
  EXPECT_EQ(eq.num_merges(), 1u);
}

TEST(Equivalence, TransitivityIsImplicit) {
  EquivalenceRelation eq(5);
  eq.Union(0, 1);
  eq.Union(1, 2);
  EXPECT_TRUE(eq.Same(0, 2));  // the chase's TC rule
  EXPECT_FALSE(eq.Same(0, 3));
}

TEST(Equivalence, SymmetricAndReflexive) {
  EquivalenceRelation eq(3);
  eq.Union(2, 0);
  EXPECT_TRUE(eq.Same(0, 2));
  EXPECT_TRUE(eq.Same(2, 0));
  EXPECT_TRUE(eq.Same(1, 1));
}

TEST(Equivalence, NontrivialClasses) {
  EquivalenceRelation eq(6);
  eq.Union(0, 1);
  eq.Union(1, 2);
  eq.Union(4, 5);
  auto classes = eq.NontrivialClasses();
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(classes[0], (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(classes[1], (std::vector<NodeId>{4, 5}));
}

TEST(Equivalence, IdentifiedPairsEnumeratesWithinClasses) {
  EquivalenceRelation eq(5);
  eq.Union(0, 1);
  eq.Union(1, 2);
  auto pairs = eq.IdentifiedPairs();
  // {0,1,2} yields 3 pairs.
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0], (std::pair<NodeId, NodeId>{0, 1}));
  EXPECT_EQ(pairs[1], (std::pair<NodeId, NodeId>{0, 2}));
  EXPECT_EQ(pairs[2], (std::pair<NodeId, NodeId>{1, 2}));
}

TEST(Equivalence, EqualityComparesPairSets) {
  EquivalenceRelation a(4), b(4);
  a.Union(0, 1);
  b.Union(1, 0);
  EXPECT_TRUE(a == b);
  b.Union(2, 3);
  EXPECT_FALSE(a == b);
}

TEST(ConcurrentEquivalence, BasicSemantics) {
  ConcurrentEquivalence eq(5);
  EXPECT_FALSE(eq.Same(0, 1));
  EXPECT_TRUE(eq.Union(0, 1));
  EXPECT_FALSE(eq.Union(1, 0));
  EXPECT_TRUE(eq.Same(0, 1));
  eq.Union(1, 2);
  EXPECT_TRUE(eq.Same(0, 2));
  EXPECT_EQ(eq.num_merges(), 2u);
}

TEST(ConcurrentEquivalence, SnapshotMatches) {
  ConcurrentEquivalence eq(6);
  eq.Union(0, 3);
  eq.Union(3, 5);
  eq.Union(1, 2);
  EquivalenceRelation snap = eq.Snapshot();
  EXPECT_TRUE(snap.Same(0, 5));
  EXPECT_TRUE(snap.Same(1, 2));
  EXPECT_FALSE(snap.Same(0, 1));
  EXPECT_EQ(snap.IdentifiedPairs().size(), 4u);  // {0,3,5}:3 + {1,2}:1
}

TEST(ConcurrentEquivalence, ParallelUnionsConverge) {
  // Many threads union random overlapping chains; the final structure
  // must equal the sequential result regardless of interleaving.
  constexpr int kNodes = 2000;
  constexpr int kThreads = 8;
  ConcurrentEquivalence eq(kNodes);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&eq, t] {
      // Thread t unions i with i+t+1 for i in its stripe: heavy overlap.
      for (int i = t; i + t + 1 < kNodes; i += 2) {
        eq.Union(i, i + t + 1);
      }
    });
  }
  for (auto& th : threads) th.join();

  EquivalenceRelation expected(kNodes);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = t; i + t + 1 < kNodes; i += 2) {
      expected.Union(i, i + t + 1);
    }
  }
  EquivalenceRelation actual = eq.Snapshot();
  EXPECT_TRUE(actual == expected);
}

TEST(ConcurrentEquivalence, ParallelSameDuringUnions) {
  // Smoke test: concurrent Same() calls must not crash or livelock and
  // must be monotone (once true, stays true).
  constexpr int kNodes = 512;
  ConcurrentEquivalence eq(kNodes);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    bool seen = false;
    while (!stop.load()) {
      bool now = eq.Same(0, kNodes - 1);
      EXPECT_TRUE(!seen || now);  // monotone
      seen = now;
    }
  });
  for (int i = 0; i + 1 < kNodes; ++i) eq.Union(i, i + 1);
  stop.store(true);
  reader.join();
  EXPECT_TRUE(eq.Same(0, kNodes - 1));
}

}  // namespace
}  // namespace gkeys
