// Company resolution: the paper's business scenario (G2, keys Q4/Q5) —
// distinguishing and deduplicating companies through mergers and splits,
// where keys are DAG-shaped patterns and wildcards matter: the same-name
// parent companies need NOT be identified for the merged children to be.
//
// Run:   ./build/examples/company_resolution

#include <cstdio>

#include "core/entity_matcher.h"

using namespace gkeys;

int main() {
  // The paper's G2: AT&T and SBC merged in 2005; the new company kept the
  // AT&T name. Two knowledge sources recorded the merger independently,
  // producing duplicate company entities.
  Graph g;
  NodeId com0 = g.AddEntity("company");  // original AT&T
  NodeId com1 = g.AddEntity("company");  // AT&T spin-off  (source 1)
  NodeId com2 = g.AddEntity("company");  // AT&T spin-off  (source 2)
  NodeId com3 = g.AddEntity("company");  // SBC
  NodeId com4 = g.AddEntity("company");  // merged AT&T    (source 1)
  NodeId com5 = g.AddEntity("company");  // merged AT&T    (source 2)
  NodeId att = g.AddValue("AT&T");
  NodeId sbc = g.AddValue("SBC");
  for (NodeId c : {com0, com1, com2, com4, com5}) {
    g.AddTriple(c, "name_of", att).IgnoreError();
  }
  g.AddTriple(com3, "name_of", sbc).IgnoreError();
  g.AddTriple(com0, "parent_of", com1).IgnoreError();
  g.AddTriple(com0, "parent_of", com2).IgnoreError();
  g.AddTriple(com0, "parent_of", com3).IgnoreError();
  g.AddTriple(com1, "parent_of", com4).IgnoreError();
  g.AddTriple(com2, "parent_of", com5).IgnoreError();
  g.AddTriple(com3, "parent_of", com4).IgnoreError();
  g.AddTriple(com3, "parent_of", com5).IgnoreError();
  g.Finalize();

  KeySet keys;
  gkeys::Status st = keys.AddFromDsl(R"(
    # Q4 (merging): a company that carries the name of one parent is
    # identified by that name and the OTHER parent. The same-name parent
    # is a wildcard: its identity is irrelevant.
    key Q4 for company {
      x -[name_of]-> n*
      _p:company -[name_of]-> n*
      _p -[parent_of]-> x
      y:company -[parent_of]-> x
    }
    # Q5 (splitting): a child that carries its parent's name is
    # identified by that name and a sibling.
    key Q5 for company {
      x -[name_of]-> n*
      _p:company -[name_of]-> n*
      _p -[parent_of]-> x
      _p -[parent_of]-> y:company
    }
  )");
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("company graph: %zu companies, %zu triples\n",
              g.NumEntities(), g.NumTriples());
  std::printf("G |= {Q4, Q5}?  %s\n\n",
              Satisfies(g, keys) ? "yes" : "no — duplicates present");

  auto plan = Matcher::Compile(g, keys);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  auto r = Matcher(Algorithm::kEmOptMr).processors(2).Run(*plan);
  if (!r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    return 1;
  }
  std::printf("resolved duplicates:\n");
  for (auto [a, b] : r->pairs) {
    std::printf("  %s == %s\n", g.DescribeNode(a).c_str(),
                g.DescribeNode(b).c_str());
  }
  // Expected (paper Example 7):
  //   company#4 == company#5  by Q4 — immediately, via the shared parent
  //                           SBC; the wildcard AT&T parents differ.
  //   company#1 == company#2  by Q5 — via the shared sibling SBC.
  //
  // Note the order independence: Q4 does NOT wait for (com1, com2),
  // because the same-name parent is a wildcard, not an entity variable.
  return 0;
}
