// Quickstart: define keys in the DSL, build a small knowledge graph, and
// find the entities they identify. Reproduces the paper's Example 1/7
// (music domain, mutually recursive keys).
//
// Build & run:   cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "core/entity_matcher.h"

using gkeys::Algorithm;
using gkeys::Graph;
using gkeys::KeySet;
using gkeys::Matcher;
using gkeys::NodeId;

int main() {
  // ---- 1. Build a graph of triples (the paper's G1) ----
  Graph g;
  NodeId art1 = g.AddEntity("artist");  // The Beatles (copy 1)
  NodeId art2 = g.AddEntity("artist");  // The Beatles (copy 2)
  NodeId art3 = g.AddEntity("artist");  // John Farnham
  NodeId alb1 = g.AddEntity("album");   // Anthology 2 (copy 1)
  NodeId alb2 = g.AddEntity("album");   // Anthology 2 (copy 2)
  NodeId alb3 = g.AddEntity("album");   // Farnham's Anthology 2

  g.AddTriple(art1, "name_of", g.AddValue("The Beatles")).IgnoreError();
  g.AddTriple(art2, "name_of", g.AddValue("The Beatles")).IgnoreError();
  g.AddTriple(art3, "name_of", g.AddValue("John Farnham")).IgnoreError();
  for (NodeId alb : {alb1, alb2, alb3}) {
    g.AddTriple(alb, "name_of", g.AddValue("Anthology 2")).IgnoreError();
  }
  g.AddTriple(alb1, "release_year", g.AddValue("1996")).IgnoreError();
  g.AddTriple(alb2, "release_year", g.AddValue("1996")).IgnoreError();
  g.AddTriple(alb3, "release_year", g.AddValue("1997")).IgnoreError();
  g.AddTriple(alb1, "recorded_by", art1).IgnoreError();
  g.AddTriple(alb2, "recorded_by", art2).IgnoreError();
  g.AddTriple(alb3, "recorded_by", art3).IgnoreError();
  g.Finalize();

  // ---- 2. Declare keys (the paper's Q1, Q2, Q3) ----
  KeySet keys;
  gkeys::Status st = keys.AddFromDsl(R"(
    # An album is identified by its name and its primary artist...
    key Q1 for album {
      x -[name_of]-> n*
      x -[recorded_by]-> y:artist
    }
    # ...or by its name and initial release year.
    key Q2 for album {
      x -[name_of]-> n*
      x -[release_year]-> yr*
    }
    # An artist is identified by name and one recorded album — note the
    # mutual recursion with Q1.
    key Q3 for artist {
      x -[name_of]-> n*
      y:album -[recorded_by]-> x
    }
  )");
  if (!st.ok()) {
    std::fprintf(stderr, "key parse error: %s\n", st.ToString().c_str());
    return 1;
  }

  // ---- 3. Compile the keys against the graph (once) ----
  // The plan holds everything the algorithms share: compiled keys, the
  // candidate list, d-neighbors, the dependency index, the product graph.
  auto plan = Matcher::Compile(g, keys);
  if (!plan.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }

  // ---- 4. Run entity matching (chase(G, Σ)) — as often as you like ----
  auto r = Matcher(Algorithm::kEmOptVc).processors(4).Run(*plan);
  if (!r.ok()) {
    std::fprintf(stderr, "match error: %s\n", r.status().ToString().c_str());
    return 1;
  }

  std::printf("identified %zu duplicate pair(s):\n", r->pairs.size());
  for (auto [a, b] : r->pairs) {
    std::printf("  %s == %s\n", g.DescribeNode(a).c_str(),
                g.DescribeNode(b).c_str());
  }
  // Expected:
  //   album#3 == album#4     (Q2: same name + year)
  //   artist#0 == artist#1   (Q3: same name + now-equal albums)

  // The same plan runs under any algorithm without recompiling — all
  // return identical pairs (Proposition 1):
  auto mr = Matcher(Algorithm::kEmOptMr).processors(4).Run(*plan);
  std::printf("EMOptMR agrees: %s\n",
              mr.ok() && mr->pairs == r->pairs ? "yes" : "NO (bug!)");

  // ---- 5. Keys double as integrity constraints ----
  std::printf("graph satisfies the key set: %s\n",
              gkeys::Satisfies(g, keys) ? "yes" : "no (duplicates exist)");
  return 0;
}
