// Knowledge fusion: deduplicate a DBpedia-like knowledge base with the
// paper's Fig. 1 + Fig. 7 keys, then report the fused entity classes per
// domain — the knowledge-fusion application sketched in the paper's
// introduction [15, 16].
//
// Run:   ./build/examples/knowledge_fusion [scale]

#include <cstdio>
#include <cstdlib>
#include <map>

#include "core/entity_matcher.h"
#include "core/provenance.h"
#include "eq/equivalence.h"
#include "gen/datasets.h"
#include "graph/merge.h"

using namespace gkeys;

int main(int argc, char** argv) {
  DBpediaSimConfig cfg;
  cfg.scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  SyntheticDataset ds = GenerateDBpediaSim(cfg);
  const Graph& g = ds.graph;

  std::printf("knowledge base: %zu entities, %zu values, %zu triples\n",
              g.NumEntities(), g.NumValues(), g.NumTriples());
  std::printf("key set: %zu keys over %zu entity types, c=%d, d=%d\n\n",
              ds.keys.count(), ds.keys.KeyedTypes().size(),
              ds.keys.LongestDependencyChain(), ds.keys.MaxRadius());

  // Compile once, then stream: pairs are reported the moment the fixpoint
  // confirms them, with per-round progress — the shape a deduplication
  // service wants (start fusing early, show a progress bar, stay
  // cancellable).
  auto plan = Matcher::Compile(g, ds.keys);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  class ProgressSink : public MatchSink {
   public:
    void OnPair(NodeId, NodeId) override { ++streamed_; }
    void OnProgress(const EmStats& s) override {
      std::printf("  round %zu: %zu duplicate pair(s) so far\n", s.rounds,
                  s.confirmed);
    }
    size_t streamed() const { return streamed_; }

   private:
    size_t streamed_ = 0;
  };
  ProgressSink sink;
  std::printf("matching (streaming):\n");
  auto run = Matcher(Algorithm::kEmOptVc).processors(4).Run(*plan, sink);
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 1;
  }
  MatchResult r = *std::move(run);
  std::printf("  streamed %zu pair(s), each exactly once\n\n",
              sink.streamed());

  // Group the identified pairs into fusion classes per entity type.
  EquivalenceRelation classes(g.NumNodes());
  for (auto [a, b] : r.pairs) classes.Union(a, b);
  std::vector<std::vector<NodeId>> class_list = classes.NontrivialClasses();
  std::map<std::string, int> fused_by_type;
  for (const auto& cls : class_list) {
    fused_by_type[g.interner().Resolve(g.entity_type(cls[0]))]++;
  }

  std::printf("found %zu duplicate pairs -> fusion classes by type:\n",
              r.pairs.size());
  for (const auto& [type, count] : fused_by_type) {
    std::printf("  %-10s %d class(es)\n", type.c_str(), count);
  }

  // Show one concrete fused entity with its merged facts.
  if (!class_list.empty()) {
    const auto& cls = class_list.front();
    std::printf("\nexample fusion class:\n");
    for (NodeId e : cls) {
      std::printf("  %s:", g.DescribeNode(e).c_str());
      for (const Edge& edge : g.Out(e)) {
        if (g.IsValue(edge.dst)) {
          std::printf(" %s=%s", g.interner().Resolve(edge.pred).c_str(),
                      g.value_str(edge.dst).c_str());
        }
      }
      std::printf("\n");
    }
  }

  std::printf("\nstats: |L|=%zu (of %zu raw), rounds=%zu, messages=%llu, "
              "%.1f ms\n",
              r.stats.candidates, r.stats.candidates_initial,
              r.stats.rounds,
              static_cast<unsigned long long>(r.stats.messages),
              r.stats.run_seconds * 1e3);

  // Why were these entities identified? Show the derivation of the first
  // few chase steps (proof-graph provenance).
  ProvenanceResult prov = ChaseWithProvenance(g, ds.keys);
  std::printf("\nderivation (first 5 steps):\n");
  for (size_t i = 0; i < prov.steps.size() && i < 5; ++i) {
    std::printf("  %s\n", FormatChaseStep(g, prov.steps[i]).c_str());
  }

  // Fuse: contract every identified class into one entity.
  FusionResult fused = FuseEntities(g, r.pairs);
  std::printf("\nfused knowledge base: %zu -> %zu entities "
              "(%zu duplicates eliminated), %zu -> %zu triples\n",
              g.NumEntities(), fused.graph.NumEntities(),
              fused.entities_fused, g.NumTriples(),
              fused.graph.NumTriples());
  std::printf("fused base satisfies the keys: %s\n",
              Satisfies(fused.graph, ds.keys) ? "yes" : "no");
  return 0;
}
