// Social-network reconciliation: match user accounts across networks in a
// Google+-style social-attribute graph (the application of [28] cited in
// the paper's introduction). Compares all five algorithms on the same
// input — they must return identical matches (Prop. 1), differing only in
// execution profile.
//
// Run:   ./build/examples/social_reconciliation [scale] [processors]

#include <cstdio>
#include <cstdlib>

#include "core/entity_matcher.h"
#include "gen/datasets.h"

using namespace gkeys;

int main(int argc, char** argv) {
  GoogleSimConfig cfg;
  cfg.scale = argc > 1 ? std::atof(argv[1]) : 2.0;
  int p = argc > 2 ? std::atoi(argv[2]) : 4;

  SyntheticDataset ds = GenerateGoogleSim(cfg);
  const Graph& g = ds.graph;
  std::printf("social-attribute network: %zu nodes, %zu triples; "
              "%zu planted duplicate accounts\n\n",
              g.NumNodes(), g.NumTriples(), ds.planted.size());

  // Each algorithm runs from a plan compiled with its OWN preset, so the
  // baseline rows (EMMR, EMVF2MR — no pairing reduction) really measure
  // baseline behavior and the table stays an honest profile comparison.
  std::printf("%-10s %10s %10s %8s %10s %10s\n", "algorithm", "time(ms)",
              "checks", "rounds", "messages", "matches");
  size_t expected = 0;
  for (Algorithm a : {Algorithm::kEmMr, Algorithm::kEmVf2Mr,
                      Algorithm::kEmOptMr, Algorithm::kEmVc,
                      Algorithm::kEmOptVc}) {
    auto aplan = Matcher::Compile(g, ds.keys, PlanOptions::For(a, p));
    if (!aplan.ok()) {
      std::fprintf(stderr, "%s\n", aplan.status().ToString().c_str());
      return 1;
    }
    auto run = Matcher(a).processors(p).Run(*aplan);
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
      return 1;
    }
    const MatchResult& r = *run;
    std::printf("%-10s %10.2f %10llu %8zu %10llu %10zu\n",
                AlgorithmName(a).c_str(), r.stats.run_seconds * 1e3,
                static_cast<unsigned long long>(r.stats.iso_checks),
                r.stats.rounds,
                static_cast<unsigned long long>(r.stats.messages),
                r.pairs.size());
    if (expected == 0) expected = r.pairs.size();
    if (r.pairs.size() != expected) {
      std::fprintf(stderr, "ALGORITHM DISAGREEMENT — this is a bug\n");
      return 1;
    }
  }

  // Compile-once/run-many: ONE plan serves both optimized algorithms
  // (they share the pairing-reduced preparation and product graph), so a
  // service can pay the expensive prep once and keep executing.
  auto plan = Matcher::Compile(g, ds.keys, PlanOptions::For(
                                               Algorithm::kEmOptVc, p));
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("\nshared plan compiled once in %.2f ms (|L|=%zu); "
              "EMOptMR and EMOptVC both run it:\n",
              plan->compile_seconds() * 1e3, plan->num_candidates());
  auto mr_run = Matcher(Algorithm::kEmOptMr).processors(p).Run(*plan);
  auto final_run = Matcher(Algorithm::kEmOptVc).processors(p).Run(*plan);
  if (!mr_run.ok() || !final_run.ok()) {
    std::fprintf(stderr, "shared-plan run failed\n");
    return 1;
  }
  std::printf("  EMOptMR %zu matches, EMOptVC %zu matches — %s\n",
              mr_run->pairs.size(), final_run->pairs.size(),
              mr_run->pairs == final_run->pairs ? "identical (Prop. 1)"
                                                : "DISAGREE (bug!)");
  MatchResult r = *std::move(final_run);
  Symbol person = g.interner().Lookup("person");
  std::printf("\nreconciled person accounts (first 5):\n");
  int shown = 0;
  for (auto [a, b] : r.pairs) {
    if (g.entity_type(a) != person) continue;
    std::printf("  %s == %s", g.DescribeNode(a).c_str(),
                g.DescribeNode(b).c_str());
    for (const Edge& e : g.Out(a)) {
      if (g.IsValue(e.dst) &&
          g.interner().Resolve(e.pred) == std::string("name")) {
        std::printf("   (\"%s\")", g.value_str(e.dst).c_str());
      }
    }
    std::printf("\n");
    if (++shown == 5) break;
  }
  return 0;
}
