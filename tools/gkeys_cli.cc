// gkeys command-line tool: run entity matching, satisfaction checking,
// key discovery, entity fusion, and workload generation from the shell.
//
// Usage:
//   gkeys match <graph.triples> <keys.dsl> [--algorithm=NAME] [--processors=N]
//               [--stream] [--provenance] [--fuse=OUT.triples]
//               [--delta=DELTA.triples]
//   gkeys check <graph.triples> <keys.dsl>
//   gkeys discover <graph.triples> [--max-attrs=N] [--min-coverage=F]
//   gkeys generate <out.triples> [--scale=F] [--c=N] [--d=N] [--seed=N]
//   gkeys stats <graph.triples>
//   gkeys save <graph.triples> <keys.dsl> <out.snapshot> [--algorithm=NAME]
//              [--processors=N]
//   gkeys save <graph.triples> <keys.dsl> --dir=DIR [--algorithm=NAME]
//              [--processors=N]            (durable directory, generation 1)
//   gkeys load <snapshot> [--delta=DELTA.triples] [--processors=N]
//   gkeys ingest <dir> <delta.triples|-> [--processors=N] [--pipeline]
//                                       (apply + write-ahead-log the batch;
//                                        '-' reads the delta from stdin;
//                                        --pipeline streams '---'-separated
//                                        batches through the staged ingest
//                                        pipeline)
//   gkeys recover <dir> [--processors=N] [--quiet]
//                                       (crash recovery: snapshot + log)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/entity_matcher.h"
#include "core/ingest_pipeline.h"
#include "core/provenance.h"
#include "discovery/key_discovery.h"
#include "gen/synthetic.h"
#include "graph/merge.h"
#include "io/triples.h"
#include "storage/durable_dir.h"
#include "storage/mmap_store.h"
#include "storage/recovery.h"
#include "storage/snapshot.h"

namespace {

using namespace gkeys;

int Usage() {
  std::fprintf(stderr,
               "usage: gkeys <match|check|discover|generate|stats|save|load|"
               "ingest|recover> ...\n"
               "  match <graph> <keys.dsl> [--algorithm=EMMR|EMVF2MR|"
               "EMOptMR|EMVC|EMOptVC|NaiveChase] [--processors=N]\n"
               "        [--stream] [--provenance] [--fuse=out.triples]\n"
               "        [--delta=delta.triples]  (lines: '+ s p o' / "
               "'- s p o'; incremental patch + rematch)\n"
               "  check <graph> <keys.dsl>\n"
               "  discover <graph> [--max-attrs=N] [--min-coverage=F]\n"
               "  generate <out> [--scale=F] [--c=N] [--d=N] [--seed=N]\n"
               "  stats <graph>\n"
               "  save <graph> <keys.dsl> <out.snapshot> [--algorithm=NAME] "
               "[--processors=N]  (compile + run + persist)\n"
               "  save <graph> <keys.dsl> --dir=DIR [--algorithm=NAME] "
               "[--processors=N]  (durable directory: snapshot + WAL)\n"
               "  load <snapshot> [--delta=delta.triples] [--processors=N]  "
               "(restore; apply pending deltas incrementally)\n"
               "  ingest <dir> <delta.triples|-> [--processors=N] "
               "[--pipeline]  (apply one batch — or, with --pipeline, a "
               "stream of '---'-separated batches — and make each durable "
               "in the write-ahead log; '-' reads from stdin)\n"
               "  recover <dir> [--processors=N] [--quiet]  (rebuild from "
               "newest valid snapshot + surviving log records)\n");
  return 2;
}

std::string FlagValue(int argc, char** argv, const char* name,
                      const char* def) {
  std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return def;
}

bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

StatusOr<KeySet> LoadKeys(const std::string& path) {
  auto text = ReadFile(path);
  if (!text.ok()) return text.status();
  KeySet keys;
  GKEYS_RETURN_IF_ERROR(keys.AddFromDsl(*text));
  return keys;
}

StatusOr<Algorithm> ParseAlgorithm(const std::string& name) {
  if (name == "NaiveChase") return Algorithm::kNaiveChase;
  if (name == "EMMR") return Algorithm::kEmMr;
  if (name == "EMVF2MR") return Algorithm::kEmVf2Mr;
  if (name == "EMOptMR") return Algorithm::kEmOptMr;
  if (name == "EMVC") return Algorithm::kEmVc;
  if (name == "EMOptVC") return Algorithm::kEmOptVc;
  return Status::InvalidArgument(
      "unknown --algorithm '" + name +
      "'; valid names: NaiveChase, EMMR, EMVF2MR, EMOptMR, EMVC, EMOptVC");
}

int CmdMatch(int argc, char** argv) {
  if (argc < 4) return Usage();
  // Loaded with the entity-reference table so --delta files can resolve
  // ent: tokens exactly as the graph file bound them.
  auto loaded = LoadGraphWithNames(argv[2]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  Graph* graph = &loaded->graph;
  auto keys = LoadKeys(argv[3]);
  if (!keys.ok()) {
    std::fprintf(stderr, "%s\n", keys.status().ToString().c_str());
    return 1;
  }
  auto algo_or =
      ParseAlgorithm(FlagValue(argc, argv, "--algorithm", "EMOptVC"));
  if (!algo_or.ok()) {
    std::fprintf(stderr, "%s\n", algo_or.status().ToString().c_str());
    return 2;
  }
  Algorithm algo = *algo_or;
  int p = std::atoi(FlagValue(argc, argv, "--processors", "4").c_str());
  if (p <= 0) p = 4;

  if (HasFlag(argc, argv, "--provenance")) {
    if (!FlagValue(argc, argv, "--delta", "").empty()) {
      std::fprintf(stderr,
                   "InvalidArgument: --provenance does not combine with "
                   "--delta (provenance is chased on one fixed graph); "
                   "apply the delta to the graph file first\n");
      return 2;
    }
    ProvenanceResult pr = ChaseWithProvenance(*graph, *keys);
    std::printf("# %zu identified pairs, %zu chase steps\n",
                pr.result.pairs.size(), pr.steps.size());
    for (const ChaseStep& step : pr.steps) {
      std::printf("%s\n", FormatChaseStep(*graph, step).c_str());
    }
    return 0;
  }

  // Compile once, then execute — matching errors (unfinalized graph,
  // empty key set, bad options) surface as Status, not asserts.
  auto plan = Matcher::Compile(*graph, *keys, PlanOptions::For(algo, p));
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  Matcher matcher(algo);
  matcher.processors(p);

  MatchResult r;
  if (HasFlag(argc, argv, "--stream")) {
    // Streaming mode: pairs print the moment the fixpoint confirms them,
    // round progress goes to stderr.
    class PrintSink : public MatchSink {
     public:
      explicit PrintSink(const Graph& g) : g_(g) {}
      void OnPair(NodeId a, NodeId b) override {
        std::printf("%s == %s\n", g_.DescribeNode(a).c_str(),
                    g_.DescribeNode(b).c_str());
      }
      void OnProgress(const EmStats& s) override {
        std::fprintf(stderr, "# round %zu: %zu pair(s) confirmed\n",
                     s.rounds, s.confirmed);
      }

     private:
      const Graph& g_;
    };
    PrintSink sink(*graph);
    auto run = matcher.Run(*plan, sink);
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
      return 1;
    }
    r = *std::move(run);
    std::printf("# algorithm=%s p=%d pairs=%zu candidates=%zu rounds=%zu "
                "prep=%.1fms run=%.1fms\n",
                AlgorithmName(algo).c_str(), p, r.pairs.size(),
                r.stats.candidates, r.stats.rounds,
                r.stats.prep_seconds * 1e3, r.stats.run_seconds * 1e3);
  } else {
    auto run = matcher.Run(*plan);
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
      return 1;
    }
    r = *std::move(run);
    // Summary first, as before this API migration — scripts parse it.
    std::printf("# algorithm=%s p=%d pairs=%zu candidates=%zu rounds=%zu "
                "prep=%.1fms run=%.1fms\n",
                AlgorithmName(algo).c_str(), p, r.pairs.size(),
                r.stats.candidates, r.stats.rounds,
                r.stats.prep_seconds * 1e3, r.stats.run_seconds * 1e3);
    for (auto [a, b] : r.pairs) {
      std::printf("%s == %s\n", graph->DescribeNode(a).c_str(),
                  graph->DescribeNode(b).c_str());
    }
  }

  std::string delta_path = FlagValue(argc, argv, "--delta", "");
  if (!delta_path.empty()) {
    // Incremental path: apply the delta file, patch the plan, rematch
    // seeded from the result above, and print only the newly identified
    // pairs. The timings show the amortization: patch+rematch vs the
    // compile+run that just happened.
    auto text = ReadFile(delta_path);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 1;
    }
    auto delta = ParseDelta(*text, *loaded);
    if (!delta.ok()) {
      std::fprintf(stderr, "%s\n", delta.status().ToString().c_str());
      return 1;
    }
    if (delta->empty()) {
      // Short-circuit: nothing to apply, so skip the apply + patch +
      // rematch entirely — the result above already covers the graph
      // as-is.
      std::printf("# delta file '%s' is empty: no-op (graph, plan, and "
                  "result unchanged)\n",
                  delta_path.c_str());
    } else {
      auto dirty = graph->Apply(*delta);
      if (!dirty.ok()) {
        std::fprintf(stderr, "%s\n", dirty.status().ToString().c_str());
        return 1;
      }
      auto patched = plan->Patch(*delta);
      if (!patched.ok()) {
        std::fprintf(stderr, "%s\n", patched.status().ToString().c_str());
        return 1;
      }
      auto rematch = matcher.Rematch(*patched, r, *delta);
      if (!rematch.ok()) {
        std::fprintf(stderr, "%s\n", rematch.status().ToString().c_str());
        return 1;
      }
      MatchResult r2 = *std::move(rematch);
      std::printf("# delta +%zu -%zu triples: pairs=%zu (%+ld) "
                  "dirty_candidates=%zu patch=%.1fms rematch=%.1fms\n",
                  delta->num_added_triples(), delta->num_removed_triples(),
                  r2.pairs.size(),
                  static_cast<long>(r2.pairs.size()) -
                      static_cast<long>(r.pairs.size()),
                  patched->dirty_candidates().size(),
                  patched->compile_seconds() * 1e3,
                  r2.stats.run_seconds * 1e3);
      for (auto [a, b] : r2.pairs) {
        bool is_new =
            !std::binary_search(r.pairs.begin(), r.pairs.end(),
                                std::make_pair(a, b));
        if (is_new) {
          std::printf("+ %s == %s\n", graph->DescribeNode(a).c_str(),
                      graph->DescribeNode(b).c_str());
        }
      }
      r = std::move(r2);  // --fuse below fuses the post-delta result
    }
  }

  std::string fuse_out = FlagValue(argc, argv, "--fuse", "");
  if (!fuse_out.empty()) {
    FusionResult fused = FuseEntities(*graph, r.pairs);
    Status st = SaveGraph(fused.graph, fuse_out);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("# fused %zu entities -> %s (%zu triples)\n",
                fused.entities_fused, fuse_out.c_str(),
                fused.graph.NumTriples());
  }
  return 0;
}

int CmdCheck(int argc, char** argv) {
  if (argc < 4) return Usage();
  auto graph = LoadGraph(argv[2]);
  auto keys = LoadKeys(argv[3]);
  if (!graph.ok() || !keys.ok()) {
    std::fprintf(stderr, "load error\n");
    return 1;
  }
  bool ok = Satisfies(*graph, *keys);
  std::printf("G |= Σ: %s\n", ok ? "yes" : "no");
  return ok ? 0 : 3;
}

int CmdDiscover(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto graph = LoadGraph(argv[2]);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  DiscoveryConfig cfg;
  cfg.max_attributes =
      std::atoi(FlagValue(argc, argv, "--max-attrs", "2").c_str());
  cfg.min_coverage =
      std::atof(FlagValue(argc, argv, "--min-coverage", "0.6").c_str());
  for (Symbol t : graph->EntityTypes()) {
    const std::string& type = graph->interner().Resolve(t);
    for (const DiscoveredKey& dk : DiscoverKeys(*graph, type, cfg)) {
      // Emitted in the DSL so the output feeds straight into `match`.
      std::printf("# coverage=%.2f arity=%d\n%s\n", dk.coverage, dk.arity,
                  ToDsl(dk.key).c_str());
    }
  }
  return 0;
}

int CmdGenerate(int argc, char** argv) {
  if (argc < 3) return Usage();
  SyntheticConfig cfg;
  cfg.scale = std::atof(FlagValue(argc, argv, "--scale", "1.0").c_str());
  cfg.chain_length = std::atoi(FlagValue(argc, argv, "--c", "2").c_str());
  cfg.radius = std::atoi(FlagValue(argc, argv, "--d", "2").c_str());
  cfg.seed = std::strtoull(FlagValue(argc, argv, "--seed", "42").c_str(),
                           nullptr, 10);
  SyntheticDataset ds = GenerateSynthetic(cfg);
  Status st = SaveGraph(ds.graph, argv[2]);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu nodes, %zu triples, %zu planted duplicate "
              "pairs, %zu keys\n",
              argv[2], ds.graph.NumNodes(), ds.graph.NumTriples(),
              ds.planted.size(), ds.keys.count());
  return 0;
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

int CmdSave(int argc, char** argv) {
  std::string dir = FlagValue(argc, argv, "--dir", "");
  if (argc < (dir.empty() ? 5 : 4)) return Usage();
  auto loaded = LoadGraphWithNames(argv[2]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  auto keys = LoadKeys(argv[3]);
  if (!keys.ok()) {
    std::fprintf(stderr, "%s\n", keys.status().ToString().c_str());
    return 1;
  }
  auto algo_or =
      ParseAlgorithm(FlagValue(argc, argv, "--algorithm", "EMOptVC"));
  if (!algo_or.ok()) {
    std::fprintf(stderr, "%s\n", algo_or.status().ToString().c_str());
    return 2;
  }
  Algorithm algo = *algo_or;
  int p = std::atoi(FlagValue(argc, argv, "--processors", "4").c_str());
  if (p <= 0) p = 4;

  auto plan =
      Matcher::Compile(loaded->graph, *keys, PlanOptions::For(algo, p));
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  Matcher matcher(algo);
  matcher.processors(p);
  auto run = matcher.Run(*plan);
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 1;
  }

  if (!dir.empty()) {
    // Durable-directory form: the snapshot becomes generation g+1 of
    // `dir` (atomic install) with a fresh write-ahead log for `ingest`.
    auto t0 = std::chrono::steady_clock::now();
    auto ddir = storage::DurableDir::Open(dir);
    if (!ddir.ok()) {
      std::fprintf(stderr, "%s\n", ddir.status().ToString().c_str());
      return 1;
    }
    Status st = ddir->SaveSnapshot(loaded->graph, *keys, *plan, *run, algo,
                                   &loaded->entities);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("# saved %s generation=%llu: algorithm=%s pairs=%zu "
                "compile=%.1fms run=%.1fms save=%.1fms\n",
                dir.c_str(),
                static_cast<unsigned long long>(ddir->generation()),
                AlgorithmName(algo).c_str(), run->pairs.size(),
                plan->compile_seconds() * 1e3, run->stats.run_seconds * 1e3,
                SecondsSince(t0) * 1e3);
    return 0;
  }

  auto t0 = std::chrono::steady_clock::now();
  auto store = storage::MmapStore::Create(argv[4]);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }
  Status st = storage::Snapshot::Save(**store, loaded->graph, *keys, *plan,
                                      *run, algo, &loaded->entities);
  if (st.ok()) st = (*store)->Flush();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("# saved %s: algorithm=%s pairs=%zu records=%zu bytes=%llu "
              "compile=%.1fms run=%.1fms save=%.1fms\n",
              argv[4], AlgorithmName(algo).c_str(), run->pairs.size(),
              (*store)->num_records(),
              static_cast<unsigned long long>((*store)->file_bytes()),
              plan->compile_seconds() * 1e3, run->stats.run_seconds * 1e3,
              SecondsSince(t0) * 1e3);
  return 0;
}

int CmdLoad(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto t0 = std::chrono::steady_clock::now();
  auto store = storage::MmapStore::Open(argv[2]);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }
  auto snap = storage::Snapshot::Load(**store);
  if (!snap.ok()) {
    std::fprintf(stderr, "%s\n", snap.status().ToString().c_str());
    return 1;
  }
  std::printf("# loaded %s: algorithm=%s pairs=%zu nodes=%zu "
              "candidates=%zu load=%.1fms\n",
              argv[2], AlgorithmName(snap->algorithm()).c_str(),
              snap->result().pairs.size(), snap->graph().NumNodes(),
              snap->plan().num_candidates(), SecondsSince(t0) * 1e3);

  int p = std::atoi(FlagValue(argc, argv, "--processors", "4").c_str());
  if (p <= 0) p = 4;
  std::string delta_path = FlagValue(argc, argv, "--delta", "");
  if (!delta_path.empty()) {
    auto text = ReadFile(delta_path);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 1;
    }
    auto delta = ParseDelta(*text, snap->graph(), snap->entity_names());
    if (!delta.ok()) {
      std::fprintf(stderr, "%s\n", delta.status().ToString().c_str());
      return 1;
    }
    if (delta->empty()) {
      std::printf("# delta file '%s' is empty: no-op (resumed result is "
                  "the stored one)\n",
                  delta_path.c_str());
    } else {
      Matcher matcher(snap->algorithm());
      matcher.processors(p);
      auto t1 = std::chrono::steady_clock::now();
      auto resumed = matcher.Resume(*snap, *delta);
      if (!resumed.ok()) {
        std::fprintf(stderr, "%s\n", resumed.status().ToString().c_str());
        return 1;
      }
      std::printf("# resumed with +%zu -%zu pending triples: pairs=%zu "
                  "resume=%.1fms\n",
                  delta->num_added_triples(), delta->num_removed_triples(),
                  resumed->pairs.size(), SecondsSince(t1) * 1e3);
    }
  }
  for (auto [a, b] : snap->result().pairs) {
    std::printf("%s == %s\n", snap->graph().DescribeNode(a).c_str(),
                snap->graph().DescribeNode(b).c_str());
  }
  return 0;
}

/// Drains stdin for `gkeys ingest <dir> -`.
StatusOr<std::string> ReadAllStdin() {
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, stdin)) > 0) out.append(buf, n);
  if (std::ferror(stdin)) return Status::IoError("error reading stdin");
  return out;
}

/// Splits --pipeline input into batches on `---` separator lines (CRLF
/// tolerated, like the delta format itself). Batches keep their own
/// line endings; separator lines are consumed. No separator = one batch.
/// Every separator delimits a batch on BOTH sides: `a\n---\n` is two
/// batches (the second empty), and `---` alone is two empty batches —
/// empty and comment-only batches flow through the pipeline as no-op
/// commits (counted in IngestStats::empty_batches, skipped by the WAL)
/// rather than being silently dropped here.
std::vector<std::string> SplitDeltaBatches(std::string_view text) {
  std::vector<std::string> out;
  std::string cur;
  size_t pos = 0;
  bool ended_with_separator = false;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    size_t line_end = nl == std::string_view::npos ? text.size() : nl + 1;
    std::string_view trimmed = line;
    if (!trimmed.empty() && trimmed.back() == '\r') trimmed.remove_suffix(1);
    if (trimmed == "---") {
      out.push_back(std::move(cur));
      cur.clear();
      ended_with_separator = true;
    } else {
      cur.append(text.substr(pos, line_end - pos));
      ended_with_separator = false;
    }
    pos = line_end;
  }
  if (!cur.empty() || ended_with_separator || out.empty()) {
    out.push_back(std::move(cur));
  }
  return out;
}

/// `gkeys ingest <dir> ... --pipeline`: streams '---'-separated delta
/// batches through the staged ingest pipeline (core/ingest_pipeline.h),
/// tokenizing batch N+1 while batch N runs the engine chain. Each batch
/// follows the serial command's durability discipline — applied first,
/// WAL-appended second, so a crash loses at most the in-flight batch
/// and replay can never fail on a logged one.
int IngestPipelined(const std::string& dir, std::string text, int p) {
  Matcher matcher;
  matcher.processors(p);
  auto t0 = std::chrono::steady_clock::now();
  auto session = matcher.Recover(dir);
  if (!session.ok()) {
    std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
    return 1;
  }
  auto ddir = storage::DurableDir::Open(dir);
  if (!ddir.ok()) {
    std::fprintf(stderr, "%s\n", ddir.status().ToString().c_str());
    return 1;
  }
  if (ddir->generation() != session->report.generation) {
    // Same refusal as the serial path: appending to a newer generation's
    // log would put batches where replay cannot see them.
    std::fprintf(stderr,
                 "DataLoss: recovered generation %llu but the newest in %s "
                 "is %llu; re-save a snapshot before ingesting\n",
                 static_cast<unsigned long long>(session->report.generation),
                 dir.c_str(),
                 static_cast<unsigned long long>(ddir->generation()));
    return 1;
  }

  std::vector<std::string> batches = SplitDeltaBatches(text);
  size_t next = 0;
  IngestSource source = [&]() -> std::optional<std::string> {
    if (next >= batches.size()) return std::nullopt;
    return std::move(batches[next++]);
  };
  IngestObserver observer = [&](const IngestBatch& b) -> Status {
    // contributed, not delta->empty(): under group commit b.delta is the
    // whole group's delta, but the WAL (like the serial path) must skip
    // exactly the no-op batches.
    if (!b.contributed) return Status::OK();
    return ddir->AppendDeltaText(*b.text);
  };

  size_t prev_pairs = session->snapshot.result().pairs.size();
  Matcher replayer(session->snapshot.algorithm());
  replayer.processors(p);
  IngestOptions iopts;
  iopts.parse_threads = p;
  IngestStats stats = replayer.IngestStream(
      session->snapshot, session->entity_names, source, iopts, observer);
  if (!stats.status.ok()) {
    std::fprintf(stderr, "%s\n", stats.status.ToString().c_str());
    if (stats.batches > 0) {
      std::fprintf(stderr,
                   "# %zu batch(es) committed and logged before the failure\n",
                   stats.batches);
    }
    return 1;
  }
  std::printf(
      "# ingested %zu batches in %zu commits (+%llu -%llu triples, %zu "
      "empty) into %s "
      "generation=%llu: pairs=%zu (%+ld) wal_records=%zu\n"
      "# stages: parse=%.1fms bind=%.1fms apply=%.1fms patch=%.1fms "
      "rematch=%.1fms total=%.1fms\n",
      stats.batches, stats.commits,
      static_cast<unsigned long long>(stats.added_triples),
      static_cast<unsigned long long>(stats.removed_triples),
      stats.empty_batches, dir.c_str(),
      static_cast<unsigned long long>(ddir->generation()),
      session->snapshot.result().pairs.size(),
      static_cast<long>(session->snapshot.result().pairs.size()) -
          static_cast<long>(prev_pairs),
      ddir->wal_records(), stats.seconds.parse * 1e3,
      stats.seconds.bind * 1e3, stats.seconds.apply * 1e3,
      stats.seconds.patch * 1e3, stats.seconds.rematch * 1e3,
      SecondsSince(t0) * 1e3);
  return 0;
}

int CmdIngest(int argc, char** argv) {
  if (argc < 4) return Usage();
  const std::string dir = argv[2];
  int p = std::atoi(FlagValue(argc, argv, "--processors", "4").c_str());
  if (p <= 0) p = 4;

  auto text = std::strcmp(argv[3], "-") == 0 ? ReadAllStdin()
                                             : ReadFile(argv[3]);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 1;
  }
  if (HasFlag(argc, argv, "--pipeline")) {
    return IngestPipelined(dir, *std::move(text), p);
  }

  // Rebuild the session exactly as a post-crash process would, so
  // ingestion after an unclean shutdown picks up where the log ends.
  Matcher matcher;
  matcher.processors(p);
  auto t0 = std::chrono::steady_clock::now();
  auto session = matcher.Recover(dir);
  if (!session.ok()) {
    std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
    return 1;
  }
  auto delta = ParseDelta(*text, session->snapshot.graph(),
                          session->entity_names);
  if (!delta.ok()) {
    std::fprintf(stderr, "%s\n", delta.status().ToString().c_str());
    return 1;
  }
  if (delta->empty()) {
    std::printf("# delta file '%s' is empty: no-op (nothing logged)\n",
                argv[3]);
    return 0;
  }

  // Apply first, log second: a batch enters the WAL only after the
  // incremental lifecycle accepted it, so replay can never fail on it;
  // the batch is acknowledged (printed OK) only after the fsync'd
  // append. A crash in between loses only this unacknowledged batch.
  size_t prev_pairs = session->snapshot.result().pairs.size();
  Matcher replayer(session->snapshot.algorithm());
  replayer.processors(p);
  auto resumed = session->snapshot.Resume(replayer, *delta);
  if (!resumed.ok()) {
    std::fprintf(stderr, "%s\n", resumed.status().ToString().c_str());
    return 1;
  }
  auto ddir = storage::DurableDir::Open(dir);
  if (!ddir.ok()) {
    std::fprintf(stderr, "%s\n", ddir.status().ToString().c_str());
    return 1;
  }
  if (ddir->generation() != session->report.generation) {
    // Recovery fell back past a corrupt newer snapshot; appending to the
    // newest generation's log would put the batch where replay cannot
    // see it. Refuse rather than acknowledge a batch recovery would lose.
    std::fprintf(stderr,
                 "DataLoss: recovered generation %llu but the newest in %s "
                 "is %llu; re-save a snapshot before ingesting\n",
                 static_cast<unsigned long long>(session->report.generation),
                 dir.c_str(),
                 static_cast<unsigned long long>(ddir->generation()));
    return 1;
  }
  Status st = ddir->AppendDeltaText(*text);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("# ingested +%zu -%zu triples into %s generation=%llu: "
              "pairs=%zu (%+ld) wal_records=%zu total=%.1fms\n",
              delta->num_added_triples(), delta->num_removed_triples(),
              dir.c_str(),
              static_cast<unsigned long long>(ddir->generation()),
              resumed->pairs.size(),
              static_cast<long>(resumed->pairs.size()) -
                  static_cast<long>(prev_pairs),
              ddir->wal_records(), SecondsSince(t0) * 1e3);
  return 0;
}

int CmdRecover(int argc, char** argv) {
  if (argc < 3) return Usage();
  int p = std::atoi(FlagValue(argc, argv, "--processors", "4").c_str());
  if (p <= 0) p = 4;

  Matcher matcher;
  matcher.processors(p);
  auto t0 = std::chrono::steady_clock::now();
  auto session = matcher.Recover(argv[2]);
  if (!session.ok()) {
    // One line per failure mode: NotFound (no snapshot at all) and
    // DataLoss (an acknowledged batch is unrecoverable) both land here.
    std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
    return 1;
  }
  const storage::RecoveryReport& rep = session->report;
  std::printf("# recovered %s: generation=%llu snapshots_skipped=%zu "
              "batches_replayed=%zu batches_truncated=%zu pairs=%zu "
              "recover=%.1fms\n",
              argv[2], static_cast<unsigned long long>(rep.generation),
              rep.snapshots_skipped, rep.batches_replayed,
              rep.batches_truncated, rep.pairs, SecondsSince(t0) * 1e3);
  if (!HasFlag(argc, argv, "--quiet")) {
    const Graph& g = session->snapshot.graph();
    for (auto [a, b] : session->snapshot.result().pairs) {
      std::printf("%s == %s\n", g.DescribeNode(a).c_str(),
                  g.DescribeNode(b).c_str());
    }
  }
  return 0;
}

int CmdStats(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto graph = LoadGraph(argv[2]);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("nodes:    %zu (%zu entities, %zu values)\n",
              graph->NumNodes(), graph->NumEntities(), graph->NumValues());
  std::printf("triples:  %zu\n", graph->NumTriples());
  auto types = graph->EntityTypes();
  std::printf("types:    %zu\n", types.size());
  for (Symbol t : types) {
    std::printf("  %-20s %zu\n", graph->interner().Resolve(t).c_str(),
                graph->EntitiesOfType(t).size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  if (cmd == "match") return CmdMatch(argc, argv);
  if (cmd == "check") return CmdCheck(argc, argv);
  if (cmd == "discover") return CmdDiscover(argc, argv);
  if (cmd == "generate") return CmdGenerate(argc, argv);
  if (cmd == "stats") return CmdStats(argc, argv);
  if (cmd == "save") return CmdSave(argc, argv);
  if (cmd == "load") return CmdLoad(argc, argv);
  if (cmd == "ingest") return CmdIngest(argc, argv);
  if (cmd == "recover") return CmdRecover(argc, argv);
  return Usage();
}
