// Lint fixture: raw POSIX file calls outside src/storage/file_ops.cc.
// Expected findings: [posix-call] on the ::open, ::write, ::fsync,
// ::rename and ::unlink lines below.

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>

namespace gkeys {

void BypassTheFaultSeam(const char* path) {
  int fd = ::open(path, O_WRONLY | O_CREAT, 0644);  // BAD: raw open
  ::write(fd, "x", 1);                              // BAD: raw write
  ::fsync(fd);                                      // BAD: raw fsync
  ::close(fd);                                      // BAD: raw close
  ::rename(path, "elsewhere");                      // BAD: raw rename
  ::unlink(path);                                   // BAD: raw unlink
}

}  // namespace gkeys
