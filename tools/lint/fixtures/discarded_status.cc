// Lint fixture: (void)-discarding a Status-returning call instead of
// the sanctioned .IgnoreError(). Expected findings: [discarded-status]
// on the two (void) lines below.

#include "graph/graph.h"

namespace gkeys {

void DropStatusesOnTheFloor(Graph& g, NodeId a, NodeId b) {
  (void)g.AddTriple(a, "p", b);    // BAD: silent Status discard
  (void)g.RemoveTriple(a, "p", b); // BAD: silent Status discard
}

}  // namespace gkeys
