// Seeded violations for the simd-confinement rule: intrinsics, vector
// types, intrinsic headers, and architecture #ifdefs belong in
// src/common/simd_scan.h only. Never compiled; the lint test feeds this
// file to gkeys_lint.py and expects every marked line flagged.
#include <cstddef>

#if defined(__SSE2__)  // finding: architecture macro outside simd_scan.h
#include <emmintrin.h>  // finding: intrinsic header
#endif

std::size_t CountZeroBytes(const unsigned char* data, std::size_t n) {
  std::size_t hits = 0;
  std::size_t i = 0;
#ifdef __AVX2__  // finding: architecture macro outside simd_scan.h
  // (pretend-vectorized loop; the rule fires on the tokens, not the
  // semantics)
#endif
  const __m128i zero = _mm_setzero_si128();  // finding: type + intrinsic
  for (; i + 16 <= n; i += 16) {
    hits += static_cast<std::size_t>(
        _mm_movemask_epi8(zero));  // finding: intrinsic call
  }
  for (; i < n; ++i) hits += data[i] == 0 ? 1 : 0;
  return hits;
}
