// Lint fixture: const_cast aliasing of shared state. Expected finding:
// [cow-aliasing] on the const_cast line below.

#include <vector>

namespace gkeys {

void ScribbleOnSharedSection(const std::vector<int>& shared) {
  auto& mine = const_cast<std::vector<int>&>(shared);  // BAD
  mine.push_back(1);
}

}  // namespace gkeys
