// Lint fixture: header whose include guard does not follow the repo
// GKEYS_<PATH>_H_ convention (and is not #pragma once). Expected
// finding: [header-hygiene] on the #ifndef line.

#ifndef SOME_RANDOM_GUARD_H
#define SOME_RANDOM_GUARD_H

namespace gkeys {
inline int FixtureAnswer() { return 42; }
}  // namespace gkeys

#endif  // SOME_RANDOM_GUARD_H
