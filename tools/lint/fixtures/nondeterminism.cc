// Lint fixture: wall-clock seeding and libc rand() outside
// common/rng.h / common/timer.h. Expected findings: [nondeterminism]
// on the srand, rand and time(nullptr) lines below.

#include <cstdlib>
#include <ctime>

namespace gkeys {

int UnreplayableShuffleSeed() {
  std::srand(time(nullptr));  // BAD: srand + wall-clock seed
  return std::rand();         // BAD: rand()
}

}  // namespace gkeys
