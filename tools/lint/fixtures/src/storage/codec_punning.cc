// Lint fixture: byte-punning in a codec file (the fixtures/src/storage/
// path places it under the codec rule). Expected findings:
// [codec-punning] on the memcpy and reinterpret_cast lines below.

#include <cstdint>
#include <cstring>
#include <string>

namespace gkeys {

uint64_t DecodeWithHostByteOrder(const std::string& buf) {
  uint64_t v = 0;
  std::memcpy(&v, buf.data(), sizeof(v));  // BAD: host-endian memcpy
  return v;
}

uint64_t DecodeWithAliasing(const char* p) {
  return *reinterpret_cast<const uint64_t*>(p);  // BAD: punning cast
}

}  // namespace gkeys
