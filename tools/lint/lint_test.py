#!/usr/bin/env python3
"""Tests for gkeys_lint.py: every seeded fixture must be flagged with
its intended rule (nonzero exit), and the real tree must be clean (exit
0). Registered with CTest as `lint_test`."""

import os
import subprocess
import sys
import unittest

LINT_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(LINT_DIR))
FIXTURES = os.path.join(LINT_DIR, "fixtures")
LINTER = os.path.join(LINT_DIR, "gkeys_lint.py")

# fixture path (relative to fixtures/) -> (rule id, expected finding count)
FIXTURE_EXPECTATIONS = {
    "posix_call.cc": ("posix-call", 6),
    "src/storage/codec_punning.cc": ("codec-punning", 2),
    "discarded_status.cc": ("discarded-status", 2),
    "bad_guard.h": ("header-hygiene", 1),
    "nondeterminism.cc": ("nondeterminism", 3),
    "cow_aliasing.cc": ("cow-aliasing", 1),
    "simd_confinement.cc": ("simd-confinement", 5),
}


def run_linter(root, files=()):
    return subprocess.run(
        [sys.executable, LINTER, "--root", root, *files],
        capture_output=True, text=True)


class FixtureTests(unittest.TestCase):
    def test_every_fixture_is_flagged(self):
        for rel, (rule, count) in FIXTURE_EXPECTATIONS.items():
            with self.subTest(fixture=rel):
                proc = run_linter(FIXTURES, [rel])
                self.assertEqual(
                    proc.returncode, 1,
                    f"{rel}: expected exit 1, got {proc.returncode}\n"
                    f"stdout:\n{proc.stdout}")
                findings = [l for l in proc.stdout.splitlines()
                            if f"[{rule}]" in l]
                self.assertEqual(
                    len(findings), count,
                    f"{rel}: expected {count} [{rule}] findings\n"
                    f"stdout:\n{proc.stdout}")

    def test_no_fixture_has_unexpected_rules(self):
        for rel, (rule, _) in FIXTURE_EXPECTATIONS.items():
            with self.subTest(fixture=rel):
                proc = run_linter(FIXTURES, [rel])
                for line in proc.stdout.splitlines():
                    self.assertIn(f"[{rule}]", line,
                                  f"{rel}: stray finding: {line}")


class TreeTests(unittest.TestCase):
    def test_real_tree_is_clean(self):
        proc = run_linter(REPO_ROOT)
        self.assertEqual(
            proc.returncode, 0,
            f"tree lint failed:\n{proc.stdout}\n{proc.stderr}")

    def test_tree_mode_skips_fixtures(self):
        # The seeded violations live under tools/lint/fixtures and must
        # not leak into the default tree scan.
        proc = run_linter(REPO_ROOT)
        self.assertNotIn("fixtures", proc.stdout)

    def test_exit_code_is_one_not_crash(self):
        proc = run_linter(FIXTURES, ["posix_call.cc"])
        self.assertEqual(proc.returncode, 1)
        self.assertEqual(proc.stderr.count("Traceback"), 0)


if __name__ == "__main__":
    unittest.main()
