#!/usr/bin/env python3
"""run_clang_tidy.py: drive clang-tidy over the exported compilation
database (CMAKE_EXPORT_COMPILE_COMMANDS) in parallel.

The checks themselves live in the repo-root .clang-tidy; this script
only selects translation units (first-party code, skipping anything
outside the repo or under build dirs), fans out one clang-tidy process
per TU, and fails nonzero if any TU produced a diagnostic.

Usage:
  run_clang_tidy.py -p build [--clang-tidy /usr/bin/clang-tidy]
                    [--jobs N] [files...]
"""

import argparse
import concurrent.futures
import json
import os
import subprocess
import sys


def load_sources(build_dir, repo_root, explicit):
    db_path = os.path.join(build_dir, "compile_commands.json")
    try:
        with open(db_path, encoding="utf-8") as f:
            db = json.load(f)
    except OSError as e:
        print(f"run_clang_tidy: cannot read {db_path}: {e}",
              file=sys.stderr)
        print("run_clang_tidy: configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON first",
              file=sys.stderr)
        sys.exit(2)
    sources = []
    for entry in db:
        src = os.path.abspath(
            os.path.join(entry["directory"], entry["file"]))
        if not src.startswith(repo_root + os.sep):
            continue  # system / third-party TU
        rel = os.path.relpath(src, repo_root)
        if rel.startswith(("build", ".")):
            continue
        if explicit and rel not in explicit and src not in explicit:
            continue
        sources.append(src)
    return sorted(set(sources))


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-p", dest="build_dir", required=True,
                        help="build dir containing compile_commands.json")
    parser.add_argument("--clang-tidy", default="clang-tidy",
                        help="clang-tidy binary to use")
    parser.add_argument("--jobs", type=int,
                        default=max(1, (os.cpu_count() or 2) - 1))
    parser.add_argument("files", nargs="*",
                        help="restrict to these sources (default: all "
                             "first-party TUs in the database)")
    args = parser.parse_args(argv)

    repo_root = os.path.abspath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)),
                     os.pardir, os.pardir))
    sources = load_sources(os.path.abspath(args.build_dir), repo_root,
                           set(args.files))
    if not sources:
        print("run_clang_tidy: no first-party sources in the database",
              file=sys.stderr)
        return 2

    def run_one(src):
        proc = subprocess.run(
            [args.clang_tidy, "-p", args.build_dir, "--quiet", src],
            capture_output=True, text=True)
        return src, proc.returncode, proc.stdout.strip()

    failures = 0
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for src, code, out in pool.map(run_one, sources):
            rel = os.path.relpath(src, repo_root)
            if code != 0 or out:
                failures += 1
                print(f"== {rel} ==")
                if out:
                    print(out)
    print(f"run_clang_tidy: {len(sources)} TUs, "
          f"{failures} with diagnostics", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
