#!/usr/bin/env python3
"""gkeys_lint.py: repo-invariant linter for the gkeys tree.

Enforces the handful of whole-repo invariants that neither the compiler
nor clang-tidy can see, because they are *this repo's* rules rather than
general C++ rules:

  posix-call        Raw POSIX file calls (::open / ::write / ::fsync /
                    ::rename / ::unlink / ::close) are only allowed in
                    src/storage/file_ops.cc — the faultable seam the
                    crash-injection harness scripts. A raw call anywhere
                    else silently escapes fault coverage.
  codec-punning     Codec files (src/storage/, src/io/) must not decode
                    or encode integers with multi-byte memcpy or
                    reinterpret_cast punning; the common/endian.h
                    helpers (PutBe*/GetBe*/varints/ByteReader) define
                    the one on-disk byte order.
  cow-aliasing      const_cast is banned tree-wide: MatchPlan sections
                    are COW-shared across concurrently-running sessions,
                    so casting constness away from any shared structure
                    is a data race waiting for a schedule.
  discarded-status  (void)-casting away a Status-returning call is
                    banned; the sanctioned explicit discard is
                    `.IgnoreError()`, which is grep-able and carries a
                    justification at the call site. ([[nodiscard]] on
                    Status catches bare discards at compile time; this
                    closes the (void) escape hatch.)
  header-hygiene    Every header carries either `#pragma once` or the
                    repo-standard include guard (GKEYS_<PATH>_H_ derived
                    from its path), and every src/ .cc includes its own
                    header first so headers stay self-contained.
  nondeterminism    rand() / srand() / time(nullptr) are banned outside
                    common/rng.h and common/timer.h; tests and engines
                    seed explicitly so every failure replays.
  simd-confinement  SIMD intrinsics (_mm*, __m128i & friends), intrinsic
                    headers (<*mmintrin.h>, <arm_neon.h>), and
                    architecture #ifdefs (__SSE*/__AVX*) live only in
                    src/common/simd_scan.h, whose portable wrappers carry
                    bit-equivalent scalar fallbacks. Anywhere else they
                    fork behavior by build architecture and dodge the
                    fallback-equivalence tests.

Usage:
  gkeys_lint.py --root /path/to/repo              # lint the tree
  gkeys_lint.py --root /path/to/repo file1 file2  # lint specific files
                                                  # (paths relative to root)

Exits 0 when clean; prints `path:line: [rule] message` per finding and
exits 1 otherwise. Pure stdlib + regex: no libclang, no pip installs.
"""

import argparse
import os
import re
import sys

# Directories scanned in tree mode, relative to --root.
SCAN_DIRS = ("src", "tests", "tools", "bench", "examples")
# Never scanned in tree mode: seeded-violation corpus for the lint test,
# plus build output.
SKIP_PARTS = {"fixtures", "build", ".git"}
CXX_EXTS = (".cc", ".h", ".cpp", ".hpp")

POSIX_ALLOW = {"src/storage/file_ops.cc"}
POSIX_RE = re.compile(r"::\s*(open|write|fsync|rename|unlink|close)\s*\(")

CODEC_DIRS = ("src/storage/", "src/io/")
CODEC_ALLOW = {"src/common/endian.h"}
MEMCPY_RE = re.compile(r"\bmemcpy\s*\(")
REINTERPRET_RE = re.compile(r"\breinterpret_cast\s*<")

CONST_CAST_RE = re.compile(r"\bconst_cast\s*<")

# Status-returning APIs whose result must never be (void)-discarded; the
# sanctioned explicit discard is `.IgnoreError()` (grep-able, documented
# in common/status.h). The compiler's [[nodiscard]] catches bare
# discards; this catches the (void) escape hatch.
DISCARD_RE = re.compile(
    r"\(\s*void\s*\)\s*[A-Za-z_][\w.\->]*"
    r"(AddTriple|RemoveTriple|Apply|Patch|Save|Append|Fsync|Rename|"
    r"Truncate|WriteFull|AddFromDsl)\s*\(")

SIMD_ALLOW = {"src/common/simd_scan.h"}
SIMD_INTRIN_RE = re.compile(
    r"\b_mm\d*_\w+\s*\(|\b__m(?:64|128|256|512)[id]?\b|"
    r"#\s*include\s*<[a-z]*mmintrin\.h>|#\s*include\s*<arm_neon\.h>")
SIMD_MACRO_RE = re.compile(r"__(?:SSE|AVX)\w*__")

RAND_RE = re.compile(r"\b(rand|srand)\s*\(")
TIME_RE = re.compile(r"\btime\s*\(\s*(nullptr|NULL|0)\s*\)")
NONDET_ALLOW = {"src/common/rng.h", "src/common/timer.h"}

PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once\b")
IFNDEF_RE = re.compile(r"^\s*#\s*ifndef\s+(\w+)")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+[<"]([^>"]+)[>"]')


def strip_comments_and_strings(text, keep_strings=False):
    """Blanks out comments — and, unless keep_strings, string/char
    literals — preserving newlines so findings keep their real line
    numbers. Structural checks (#include paths) need keep_strings."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            i += 2
        elif c in ('"', "'"):
            quote = c
            start = i
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                i += 1
            i += 1
            out.append(text[start:i] if keep_strings else " ")
        else:
            out.append(c)
            i += 1
    return "".join(out)


def expected_guard(rel):
    """src/common/status.h -> GKEYS_COMMON_STATUS_H_ (src/ is stripped;
    tests/, tools/, bench/ prefixes are kept)."""
    path = rel[4:] if rel.startswith("src/") else rel
    stem = re.sub(r"\.(h|hpp)$", "", path)
    return "GKEYS_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_H_"


class Linter:
    def __init__(self, root):
        self.root = root
        self.findings = []

    def report(self, rel, line, rule, msg):
        self.findings.append((rel, line, rule, msg))

    def scan_regex(self, rel, code_lines, regex, rule, msg):
        for lineno, line in enumerate(code_lines, start=1):
            if regex.search(line):
                self.report(rel, lineno, rule, msg)

    def lint_file(self, rel):
        path = os.path.join(self.root, rel)
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                raw = f.read()
        except OSError as e:
            self.report(rel, 0, "io", f"cannot read: {e}")
            return
        code_lines = strip_comments_and_strings(raw).split("\n")
        struct_lines = strip_comments_and_strings(
            raw, keep_strings=True).split("\n")

        if rel not in POSIX_ALLOW:
            self.scan_regex(
                rel, code_lines, POSIX_RE, "posix-call",
                "raw POSIX file call; route it through "
                "storage/fileops (src/storage/file_ops.cc) so fault "
                "injection and crash-point enumeration can see it")

        if rel.startswith(CODEC_DIRS) and rel not in CODEC_ALLOW:
            for regex, what in ((MEMCPY_RE, "memcpy"),
                                (REINTERPRET_RE, "reinterpret_cast")):
                self.scan_regex(
                    rel, code_lines, regex, "codec-punning",
                    f"{what} in a codec file; encode/decode integers "
                    "with the common/endian.h helpers instead")

        self.scan_regex(
            rel, code_lines, DISCARD_RE, "discarded-status",
            "(void)-discard of a Status-returning call; use "
            ".IgnoreError() (see common/status.h) so deliberate "
            "discards stay grep-able and justified")

        self.scan_regex(
            rel, code_lines, CONST_CAST_RE, "cow-aliasing",
            "const_cast is banned: plan sections are COW-shared across "
            "threads, and non-const aliasing of shared state races")

        if rel not in SIMD_ALLOW:
            self.scan_regex(
                rel, code_lines, SIMD_INTRIN_RE, "simd-confinement",
                "SIMD intrinsics are confined to src/common/simd_scan.h; "
                "call its portable scanners (scalar-fallback-equivalent) "
                "instead")
            self.scan_regex(
                rel, code_lines, SIMD_MACRO_RE, "simd-confinement",
                "architecture #ifdefs (__SSE*/__AVX*) are confined to "
                "src/common/simd_scan.h so behavior never forks by build "
                "target")

        if rel not in NONDET_ALLOW:
            self.scan_regex(
                rel, code_lines, RAND_RE, "nondeterminism",
                "rand()/srand() banned; use gkeys::Rng (common/rng.h) "
                "with an explicit seed so failures replay")
            self.scan_regex(
                rel, code_lines, TIME_RE, "nondeterminism",
                "time(nullptr) banned; use common/timer.h for "
                "durations, explicit seeds for randomness")

        if rel.endswith((".h", ".hpp")):
            self.lint_header_guard(rel, struct_lines)
        if rel.endswith(".cc") and rel.startswith("src/"):
            self.lint_own_header_first(rel, struct_lines)

    def lint_header_guard(self, rel, code_lines):
        for lineno, line in enumerate(code_lines, start=1):
            if not line.strip():
                continue
            if PRAGMA_ONCE_RE.match(line):
                return
            m = IFNDEF_RE.match(line)
            if m:
                want = expected_guard(rel)
                if m.group(1) != want:
                    self.report(
                        rel, lineno, "header-hygiene",
                        f"include guard {m.group(1)} does not match the "
                        f"repo convention {want}")
                return
            self.report(
                rel, lineno, "header-hygiene",
                "header must start with #pragma once or its "
                f"{expected_guard(rel)} include guard")
            return
        self.report(rel, 1, "header-hygiene",
                    "header has no include guard or #pragma once")

    def lint_own_header_first(self, rel, code_lines):
        own = rel[len("src/"):-len(".cc")] + ".h"
        if not os.path.exists(os.path.join(self.root, "src", own)):
            return  # no matching header (e.g. a main-only tool)
        for lineno, line in enumerate(code_lines, start=1):
            m = INCLUDE_RE.match(line)
            if not m:
                continue
            if m.group(1) != own:
                self.report(
                    rel, lineno, "header-hygiene",
                    f'first include must be its own header "{own}" '
                    "(proves the header is self-contained)")
            return

    def tree_files(self):
        for top in SCAN_DIRS:
            base = os.path.join(self.root, top)
            if not os.path.isdir(base):
                continue
            for dirpath, dirnames, filenames in os.walk(base):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in SKIP_PARTS)
                for name in sorted(filenames):
                    if name.endswith(CXX_EXTS):
                        yield os.path.relpath(
                            os.path.join(dirpath, name), self.root)


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", required=True,
                        help="repository root to lint")
    parser.add_argument("files", nargs="*",
                        help="specific files (relative to --root); "
                             "default: whole tree")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root)
    linter = Linter(root)
    files = args.files or list(linter.tree_files())
    for rel in files:
        linter.lint_file(rel.replace(os.sep, "/"))

    for rel, line, rule, msg in linter.findings:
        print(f"{rel}:{line}: [{rule}] {msg}")
    if linter.findings:
        print(f"gkeys_lint: {len(linter.findings)} finding(s) "
              f"in {len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"gkeys_lint: clean ({len(files)} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
