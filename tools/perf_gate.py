#!/usr/bin/env python3
"""Perf-regression gate over bench/workload JSON rows.

Compares a freshly produced JSON artifact (``gkeys_workload run --json=…``
or any ``BENCH_*.json``) against a committed baseline. Rows are matched by
``name``. Two classes of field, told apart by suffix:

* Timing fields (name ends in ``_s``): gated by ratio — the current value
  may be at most ``--tolerance`` times the baseline. Values below the
  ``--min-abs`` floor (seconds) always pass: micro-timings on shared CI
  runners are noise, and we only want to catch order-of-magnitude
  regressions, not scheduler jitter.
* Effort counters (``iso_checks``, ``messages``): also ratio-gated, with
  a ``--min-count`` floor. The parallel engines' message/check totals
  depend on worker interleaving (which worker's merge lands first decides
  how much sibling work gets short-circuited), so they are reproducible
  in magnitude but not bit-for-bit.
* Everything else (pair counts, candidate counts, rounds, retractions, …):
  exact match. These are deterministic outputs of a seeded run; any drift
  is a correctness bug or an unacknowledged behaviour change, so the gate
  treats a mismatch as a hard failure, never a tolerance question.

A baseline row missing from the current artifact fails the gate (a
silently dropped scenario is itself a regression); rows only present in
the current artifact are reported but do not fail (new scenarios need a
baseline update, which the failure message of a later run will demand).

Exit codes: 0 gate passed, 1 regression found, 2 usage/IO error.

``--self-test`` runs a hermetic fixture through the gate, including an
injected artificial slowdown that MUST fail — proving the gate can
actually reject, not just accept. CI runs this next to the real gate.
"""

import argparse
import json
import sys


EFFORT_FIELDS = frozenset({"iso_checks", "messages"})


def is_timing(field):
    return field.endswith("_s")


def load_rows(path):
    with open(path) as fh:
        rows = json.load(fh)
    if not isinstance(rows, list):
        raise ValueError(f"{path}: expected a JSON array of row objects")
    table = {}
    for row in rows:
        if not isinstance(row, dict) or "name" not in row:
            raise ValueError(f"{path}: bad row {row!r}")
        name = row["name"]
        # Repeated names (e.g. benchmark repetitions) are disambiguated by
        # occurrence index so reruns still line up pairwise.
        key = name
        n = 1
        while key in table:
            key = f"{name}#{n}"
            n += 1
        table[key] = {k: v for k, v in row.items() if k != "name"}
    return table


def compare(baseline, current, tolerance, min_abs, min_count=100):
    """Returns (failures, notes) — lists of human-readable lines."""
    failures, notes = [], []
    for name, base_fields in baseline.items():
        if name not in current:
            failures.append(f"{name}: row missing from current artifact")
            continue
        cur_fields = current[name]
        for field, base_val in base_fields.items():
            if field not in cur_fields:
                failures.append(f"{name}: field {field} missing")
                continue
            cur_val = cur_fields[field]
            noisy = is_timing(field) or field in EFFORT_FIELDS
            if noisy:
                floor = min_abs if is_timing(field) else min_count
                unit = "s" if is_timing(field) else ""
                if cur_val <= floor:
                    continue  # below the noise floor, never gate
                if base_val <= 0:
                    notes.append(f"{name}.{field}: no usable baseline "
                                 f"({base_val}), skipped")
                    continue
                ratio = cur_val / base_val
                if ratio > tolerance:
                    failures.append(
                        f"{name}.{field}: {cur_val:.6f}{unit} vs baseline "
                        f"{base_val:.6f}{unit} "
                        f"({ratio:.2f}x > {tolerance:.2f}x)")
                elif ratio < 1 / tolerance:
                    notes.append(f"{name}.{field}: {ratio:.2f}x improvement "
                                 f"— consider refreshing the baseline")
            else:
                if cur_val != base_val:
                    failures.append(
                        f"{name}.{field}: exact field changed "
                        f"({base_val!r} -> {cur_val!r})")
    for name in current:
        if name not in baseline:
            notes.append(f"{name}: new row, not in baseline")
    return failures, notes


def run_gate(args):
    try:
        baseline = load_rows(args.baseline)
        current = load_rows(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"perf_gate: {e}", file=sys.stderr)
        return 2
    failures, notes = compare(baseline, current, args.tolerance, args.min_abs,
                              args.min_count)
    for line in notes:
        print(f"note: {line}")
    for line in failures:
        print(f"FAIL: {line}")
    if failures:
        print(f"perf_gate: {len(failures)} regression(s) vs {args.baseline}")
        return 1
    print(f"perf_gate: ok ({len(baseline)} baseline rows checked)")
    return 0


def self_test():
    base = {
        "spec/EMOptMR/rep0": {"pairs": 24.0, "run_s": 0.200, "rounds": 3.0,
                              "iso_checks": 5000.0},
        "spec/EMOptMR/rep0/delta0": {"pairs": 25.0, "run_s": 0.010,
                                     "seeded": 1.0, "messages": 48.0},
    }

    def check(label, current, tolerance, min_abs, want_fail):
        failures, _ = compare(base, current, tolerance, min_abs)
        ok = bool(failures) == want_fail
        print(f"{'ok' if ok else 'SELF-TEST FAIL'}: {label}"
              + (f" ({failures})" if not ok else ""))
        return ok

    import copy
    identical = copy.deepcopy(base)

    slow = copy.deepcopy(base)
    slow["spec/EMOptMR/rep0"]["run_s"] = 0.200 * 10  # injected 10x slowdown

    jitter = copy.deepcopy(base)
    jitter["spec/EMOptMR/rep0/delta0"]["run_s"] = 0.040  # 4x but under floor

    within = copy.deepcopy(base)
    within["spec/EMOptMR/rep0"]["run_s"] = 0.200 * 1.4  # inside 3x tolerance

    drift = copy.deepcopy(base)
    drift["spec/EMOptMR/rep0"]["pairs"] = 23.0  # exact field drifted

    missing = copy.deepcopy(base)
    del missing["spec/EMOptMR/rep0/delta0"]

    effort_jitter = copy.deepcopy(base)
    effort_jitter["spec/EMOptMR/rep0"]["iso_checks"] = 5500.0  # schedule noise
    effort_jitter["spec/EMOptMR/rep0/delta0"]["messages"] = 90.0  # sub-floor

    effort_blowup = copy.deepcopy(base)
    effort_blowup["spec/EMOptMR/rep0"]["iso_checks"] = 5000.0 * 10

    results = [
        check("identical artifact passes", identical, 3.0, 0.05, False),
        check("injected 10x slowdown fails", slow, 3.0, 0.05, True),
        check("sub-floor jitter passes", jitter, 3.0, 0.05, False),
        check("slowdown within tolerance passes", within, 3.0, 0.05, False),
        check("exact-field drift fails", drift, 3.0, 0.05, True),
        check("missing row fails", missing, 3.0, 0.05, True),
        check("effort-counter jitter passes", effort_jitter, 3.0, 0.05, False),
        check("effort-counter blow-up fails", effort_blowup, 3.0, 0.05, True),
        check("floor 0 gates even tiny timings", jitter, 3.0, 0.0, True),
    ]
    if all(results):
        print("perf_gate self-test: all cases behaved")
        return 0
    return 1


def main():
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--current", help="freshly produced JSON rows")
    p.add_argument("--baseline", help="committed baseline JSON rows")
    p.add_argument("--tolerance", type=float, default=3.0,
                   help="max allowed current/baseline timing ratio")
    p.add_argument("--min-abs", type=float, default=0.05,
                   help="timings at or below this many seconds never gate")
    p.add_argument("--min-count", type=float, default=100,
                   help="effort counters at or below this never gate")
    p.add_argument("--self-test", action="store_true",
                   help="run the hermetic fixture suite and exit")
    args = p.parse_args()
    if args.self_test:
        sys.exit(self_test())
    if not args.current or not args.baseline:
        p.error("--current and --baseline are required (or use --self-test)")
    sys.exit(run_gate(args))


if __name__ == "__main__":
    main()
