#!/usr/bin/env python3
"""Checks that markdown relative links and intra-doc anchors resolve.

Usage: check_docs_links.py FILE.md [FILE.md ...]

For every inline markdown link in the given files:
  - external links (http/https/mailto) are ignored;
  - a relative file target must exist on disk (resolved against the
    linking file's directory);
  - an anchor fragment (#section, alone or after a file target) must
    match a heading in the target file, using GitHub's slugification
    (lowercase, punctuation stripped, spaces to hyphens, -N suffixes
    for duplicates).

Exits non-zero listing every broken link. Run from anywhere; CI runs it
from the repository root over README.md and docs/ARCHITECTURE.md.
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str, seen: dict) -> str:
    """GitHub's anchor slug for a heading text."""
    # Strip inline code/markdown emphasis markers, then slugify.
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.ASCII)
    slug = text.replace(" ", "-")
    n = seen.get(slug)
    seen[slug] = 0 if n is None else n + 1
    return slug if n is None else f"{slug}-{seen[slug]}"


def anchors_of(path: Path, cache: dict) -> set:
    if path not in cache:
        seen: dict = {}
        anchors = set()
        in_fence = False
        for line in path.read_text(encoding="utf-8").splitlines():
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if m:
                anchors.add(github_slug(m.group(2), seen))
        cache[path] = anchors
    return cache[path]


def links_of(path: Path):
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        yield from LINK_RE.findall(line)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip())
        return 2
    anchor_cache: dict = {}
    errors = []
    for name in argv[1:]:
        doc = Path(name)
        if not doc.is_file():
            errors.append(f"{name}: file not found")
            continue
        for target in links_of(doc):
            if re.match(r"^(https?:|mailto:)", target):
                continue
            file_part, _, anchor = target.partition("#")
            dest = doc if not file_part else (doc.parent / file_part)
            if file_part and not dest.exists():
                errors.append(f"{name}: broken link -> {target}")
                continue
            if anchor:
                if not dest.is_file() or not dest.suffix == ".md":
                    errors.append(
                        f"{name}: anchor on non-markdown target -> {target}")
                elif anchor not in anchors_of(dest, anchor_cache):
                    errors.append(f"{name}: broken anchor -> {target}")
    for e in errors:
        print(e)
    if not errors:
        print(f"ok: {len(argv) - 1} file(s), all links and anchors resolve")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
