// gkeys_workload — declarative workload runner.
//
//   gkeys_workload run <spec.json> [--json=<out>] [--no-oracle]
//                                  [--processors=N]
//
// Executes the spec end to end (full runs + delta batches across every
// listed algorithm) with the differential oracle on by default, and
// prints / writes the standard bench JSON rows. Exit 0 only when the run
// and every oracle check passed.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "workload/workload.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: gkeys_workload run <spec.json> [--json=<out>] [--no-oracle]\n"
      "                                      [--processors=N]\n");
  return 2;
}

int CmdRun(const std::vector<std::string>& args) {
  std::string spec_path;
  std::string json_out;
  gkeys::WorkloadRunOptions opts;
  for (const std::string& a : args) {
    if (a.rfind("--json=", 0) == 0) {
      json_out = a.substr(7);
    } else if (a == "--no-oracle") {
      opts.disable_oracle = true;
    } else if (a.rfind("--processors=", 0) == 0) {
      opts.processors = std::atoi(a.c_str() + 13);
      if (opts.processors < 1) {
        std::fprintf(stderr, "gkeys_workload: bad --processors value\n");
        return 2;
      }
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "gkeys_workload: unknown flag %s\n", a.c_str());
      return Usage();
    } else if (spec_path.empty()) {
      spec_path = a;
    } else {
      return Usage();
    }
  }
  if (spec_path.empty()) return Usage();

  gkeys::StatusOr<gkeys::WorkloadSpec> spec =
      gkeys::LoadWorkloadSpec(spec_path);
  if (!spec.ok()) {
    std::fprintf(stderr, "gkeys_workload: %s\n",
                 spec.status().message().c_str());
    return 1;
  }
  std::fprintf(stderr, "workload %s: %zu algorithms, generator %s",
               spec->name.c_str(), spec->algorithms.size(),
               spec->generator.c_str());
  if (spec->delta_batches > 0) {
    std::fprintf(stderr, ", %d %s delta batches", spec->delta_batches,
                 spec->delta_kind.c_str());
  }
  std::fprintf(stderr, "\n");

  gkeys::StatusOr<gkeys::WorkloadReport> report =
      gkeys::RunWorkload(*spec, opts);
  if (!report.ok()) {
    std::fprintf(stderr, "gkeys_workload: %s\n",
                 report.status().message().c_str());
    return 1;
  }
  for (const std::string& line : report->log) {
    std::fprintf(stderr, "  %s\n", line.c_str());
  }
  std::fprintf(stderr,
               "workload %s: OK — %zu rows, %zu oracle checks, %zu pairs\n",
               spec->name.c_str(), report->rows.size(),
               report->oracle_checks, report->final_pairs);

  std::string rendered = gkeys::RenderJsonRows(report->rows);
  if (json_out.empty()) {
    std::fputs(rendered.c_str(), stdout);
  } else {
    std::ofstream out(json_out, std::ios::trunc);
    if (!out || !(out << rendered).good()) {
      std::fprintf(stderr, "gkeys_workload: cannot write %s\n",
                   json_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", json_out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (cmd == "run") return CmdRun(args);
  return Usage();
}
