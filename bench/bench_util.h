#ifndef GKEYS_BENCH_BENCH_UTIL_H_
#define GKEYS_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/json_writer.h"
#include "core/entity_matcher.h"
#include "gen/datasets.h"
#include "gen/synthetic.h"

namespace gkeys {
namespace bench {

// ---- Machine-readable results (--json=<path>) -------------------------------
//
// Every bench main accepts --json=<path> in addition to the standard
// benchmark flags. Each timed configuration appends one row of numeric
// fields (graph size, prep_s, run_s, pairs, counters); FlushJson() writes
// them as a JSON array so CI can archive a perf trajectory per commit.

struct JsonSink {
  std::string path;
  JsonRows rows;

  static JsonSink& Get() {
    static JsonSink sink;
    return sink;
  }
};

/// Consumes a --json=<path> argument before benchmark::Initialize (which
/// rejects flags it does not know).
inline void InitJson(int* argc, char** argv) {
  for (int i = 1; i < *argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      JsonSink::Get().path = arg.substr(7);
      for (int j = i; j + 1 < *argc; ++j) argv[j] = argv[j + 1];
      --*argc;
      argv[*argc] = nullptr;  // keep the argv[argc] == nullptr sentinel
      --i;
    }
  }
}

/// Appends one result row (no-op unless --json was given).
inline void JsonRow(
    const std::string& name,
    std::vector<std::pair<std::string, double>> fields) {
  JsonSink& sink = JsonSink::Get();
  if (sink.path.empty()) return;
  sink.rows.emplace_back(name, std::move(fields));
}

/// Writes all recorded rows. Call once, after RunSpecifiedBenchmarks.
/// Names and keys are escaped and non-finite values become null
/// (RenderJsonRows), so the artifact always parses.
inline void FlushJson() {
  JsonSink& sink = JsonSink::Get();
  if (sink.path.empty()) return;
  FILE* f = std::fopen(sink.path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", sink.path.c_str());
    return;
  }
  std::string body = RenderJsonRows(sink.rows);
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
}

/// A console reporter that additionally records every finished benchmark
/// run as a JsonRow (per-iteration real/cpu seconds, iterations, user
/// counters), so micro benches publish machine-readable rows without
/// hand-timing. Pass to RunSpecifiedBenchmarks in place of the default.
class JsonRowReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.iterations == 0) continue;
      std::vector<std::pair<std::string, double>> fields = {
          {"real_s_per_iter",
           run.real_accumulated_time / static_cast<double>(run.iterations)},
          {"cpu_s_per_iter",
           run.cpu_accumulated_time / static_cast<double>(run.iterations)},
          {"iterations", static_cast<double>(run.iterations)}};
      for (const auto& [cname, counter] : run.counters) {
        fields.emplace_back(cname, counter.value);
      }
      JsonRow(run.benchmark_name(), std::move(fields));
    }
    ConsoleReporter::ReportRuns(runs);
  }
};

/// The three evaluation datasets of paper §6.
enum class Dataset { kGoogle, kDBpedia, kSynthetic };

inline std::string DatasetName(Dataset d) {
  switch (d) {
    case Dataset::kGoogle: return "Google";
    case Dataset::kDBpedia: return "DBpedia";
    case Dataset::kSynthetic: return "Synthetic";
  }
  return "?";
}

/// Builds a dataset at a given scale with dependency-chain length `c` and
/// key radius `d`. The Google/DBpedia simulators have fixed schemas (their
/// own c and d); c/d sweeps therefore use the synthetic generator, exactly
/// as the paper varies its synthetic Σ.
inline SyntheticDataset MakeDataset(Dataset which, double scale, int c = 2,
                                    int d = 2) {
  switch (which) {
    case Dataset::kGoogle: {
      GoogleSimConfig cfg;
      // Sized so one matching round is compute-bound (≫ framework
      // overhead); |L| grows quadratically in the per-type population.
      cfg.scale = scale * 6.0;
      return GenerateGoogleSim(cfg);
    }
    case Dataset::kDBpedia: {
      DBpediaSimConfig cfg;
      cfg.scale = scale * 4.0;
      return GenerateDBpediaSim(cfg);
    }
    case Dataset::kSynthetic: {
      SyntheticConfig cfg;
      cfg.num_groups = 5;
      cfg.chain_length = c;
      cfg.radius = d;
      cfg.entities_per_type = 60;
      cfg.scale = scale;
      return GenerateSynthetic(cfg);
    }
  }
  return {};
}

/// The five algorithms evaluated in the paper's figures.
inline const std::vector<Algorithm>& PaperAlgorithms() {
  static const std::vector<Algorithm> algos = {
      Algorithm::kEmVf2Mr, Algorithm::kEmMr, Algorithm::kEmOptMr,
      Algorithm::kEmVc, Algorithm::kEmOptVc};
  return algos;
}

/// Publishes MatchResult statistics as benchmark counters.
inline void ExportCounters(benchmark::State& state, const MatchResult& r) {
  state.counters["pairs"] = static_cast<double>(r.pairs.size());
  state.counters["candidates"] = static_cast<double>(r.stats.candidates);
  state.counters["rounds"] = static_cast<double>(r.stats.rounds);
  state.counters["iso_checks"] = static_cast<double>(r.stats.iso_checks);
  state.counters["messages"] = static_cast<double>(r.stats.messages);
}

/// The standard JSON row for one entity-matching configuration.
inline void JsonMatchRow(const std::string& name,
                         const SyntheticDataset& ds, const MatchResult& r,
                         double prep_s) {
  JsonRow(name,
          {{"nodes", static_cast<double>(ds.graph.NumNodes())},
           {"triples", static_cast<double>(ds.graph.NumTriples())},
           {"prep_s", prep_s},
           {"run_s", r.stats.run_seconds},
           {"pairs", static_cast<double>(r.pairs.size())},
           {"candidates_initial",
            static_cast<double>(r.stats.candidates_initial)},
           {"candidates_blocked",
            static_cast<double>(r.stats.candidates_blocked)},
           {"candidates", static_cast<double>(r.stats.candidates)},
           {"rounds", static_cast<double>(r.stats.rounds)},
           {"iso_checks", static_cast<double>(r.stats.iso_checks)},
           {"messages", static_cast<double>(r.stats.messages)},
           {"plan_bytes", static_cast<double>(r.stats.plan_bytes)}});
}

/// One timed entity-matching run, reused by the figure benchmarks. The
/// plan is compiled ONCE outside the timing loop (the compile-once/
/// run-many contract of Matcher), so iterations measure the fixpoint
/// phase and the one-off preparation cost is reported honestly as the
/// `prep_s` counter next to the per-run `run_s`.
inline void RunEntityMatching(benchmark::State& state,
                              const SyntheticDataset& ds, Algorithm algo,
                              int processors,
                              const std::string& json_name = "") {
  auto plan = Matcher::Compile(ds.graph, ds.keys,
                               PlanOptions::For(algo, processors));
  if (!plan.ok()) {
    state.SkipWithError(plan.status().ToString().c_str());
    return;
  }
  Matcher matcher(algo);
  matcher.processors(processors);
  size_t pairs = 0;
  MatchResult last;
  for (auto _ : state) {
    auto r = matcher.Run(*plan);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    last = *std::move(r);
    pairs = last.pairs.size();
    benchmark::DoNotOptimize(pairs);
  }
  if (pairs != ds.planted.size()) {
    state.SkipWithError("result mismatch vs planted ground truth");
    return;
  }
  ExportCounters(state, last);
  state.counters["prep_s"] = plan->compile_seconds();
  state.counters["run_s"] = last.stats.run_seconds;
  if (!json_name.empty()) {
    JsonMatchRow(json_name, ds, last, plan->compile_seconds());
  }
}

}  // namespace bench
}  // namespace gkeys

#endif  // GKEYS_BENCH_BENCH_UTIL_H_
