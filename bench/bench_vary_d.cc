// Exp-3, varying d (paper Fig. 8(d), 8(h), 8(l)): wall time as the key
// radius d grows from 1 to 5, fixing p = 4, c = 2. The paper's claims:
// d is a major cost factor (d-neighbors grow with d), and the pairing
// strategy of EMOptMR shrinks the neighbors substantially (60%/42%/53%),
// making it up to ~4.8x faster than EMMR at d = 3.

#include "bench_util.h"

namespace gkeys {
namespace bench {
namespace {

void RegisterAll() {
  for (int d : {1, 2, 3, 4, 5}) {
    auto data = std::make_shared<SyntheticDataset>(
        MakeDataset(Dataset::kSynthetic, /*scale=*/0.3, /*c=*/2, d));
    for (Algorithm algo : PaperAlgorithms()) {
      std::string name = "VaryD/Synthetic/" + AlgorithmName(algo) +
                         "/d:" + std::to_string(d);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [data, algo, name](benchmark::State& state) {
            RunEntityMatching(state, *data, algo, /*processors=*/4, name);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  // Neighbor-reduction factor (the §6 "Gd is 2.5/1.7/2.1 times smaller"
  // numbers): measured via EmContext with and without pairing.
  for (int d : {1, 2, 3}) {
    std::string name = "VaryD/NeighborReduction/d:" + std::to_string(d);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [d](benchmark::State& state) {
          SyntheticDataset ds =
              MakeDataset(Dataset::kSynthetic, /*scale=*/0.5, /*c=*/2, d);
          double full_avg = 0, reduced_avg = 0;
          for (auto _ : state) {
            EmOptions opts = EmOptions::For(Algorithm::kEmOptMr, 1);
            EmContext ctx(ds.graph, ds.keys, opts);
            full_avg = static_cast<double>(ctx.neighbor_nodes()) /
                       std::max<size_t>(1, ctx.neighbor_entities());
            reduced_avg =
                static_cast<double>(ctx.neighbor_nodes_reduced()) /
                std::max<size_t>(1, 2 * ctx.candidates().size());
            benchmark::DoNotOptimize(reduced_avg);
          }
          state.counters["avg_nbr_full"] = full_avg;
          state.counters["avg_nbr_reduced"] = reduced_avg;
          state.counters["reduction_factor"] =
              reduced_avg > 0 ? full_avg / reduced_avg : 0;
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace bench
}  // namespace gkeys

int main(int argc, char** argv) {
  gkeys::bench::InitJson(&argc, argv);
  gkeys::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  gkeys::bench::FlushJson();
  return 0;
}
