// Micro-benchmarks for the matching substrates: the combined EvalMR
// search vs VF2 full enumeration (the §4.1 early-termination claim),
// pairing-relation computation (Prop. 9), d-neighbor extraction, and
// union-find operations.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "graph/neighborhood.h"
#include "isomorph/pairing.h"
#include "isomorph/vf2.h"

namespace gkeys {
namespace bench {
namespace {

/// Shared workload: one synthetic dataset plus its context and one
/// identifiable candidate to probe.
struct MicroFixture {
  SyntheticDataset ds;
  std::unique_ptr<EmContext> ctx;
  const Candidate* planted_candidate = nullptr;
  const Candidate* negative_candidate = nullptr;
  EquivalenceRelation eq{0};

  MicroFixture() : ds(MakeDataset(Dataset::kSynthetic, 1.0, 2, 2)) {
    EmOptions opts;
    ctx = std::make_unique<EmContext>(ds.graph, ds.keys, opts);
    eq = EquivalenceRelation(ds.graph.NumNodes());
    for (auto [a, b] : ds.planted) eq.Union(a, b);
    for (const Candidate& c : ctx->candidates()) {
      if (eq.Same(c.e1, c.e2) && planted_candidate == nullptr) {
        planted_candidate = &c;
      }
      if (!eq.Same(c.e1, c.e2) && negative_candidate == nullptr) {
        negative_candidate = &c;
      }
    }
  }

  static MicroFixture& Get() {
    static MicroFixture* f = new MicroFixture();
    return *f;
  }
};

void BM_EvalSearchPositive(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  const Candidate& c = *f.planted_candidate;
  EqView view(&f.eq);
  for (auto _ : state) {
    bool found = false;
    for (int ki : *c.keys) {
      found = KeyIdentifies(f.ds.graph, f.ctx->compiled_keys()[ki].cp, c.e1,
                            c.e2, view, c.nbr1, c.nbr2);
      if (found) break;
    }
    benchmark::DoNotOptimize(found);
  }
}
BENCHMARK(BM_EvalSearchPositive);

void BM_Vf2EnumerationPositive(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  const Candidate& c = *f.planted_candidate;
  EqView view(&f.eq);
  for (auto _ : state) {
    bool found = false;
    for (int ki : *c.keys) {
      found = IdentifiesByEnumeration(f.ds.graph,
                                      f.ctx->compiled_keys()[ki].cp, c.e1,
                                      c.e2, view, c.nbr1, c.nbr2);
      if (found) break;
    }
    benchmark::DoNotOptimize(found);
  }
}
BENCHMARK(BM_Vf2EnumerationPositive);

void BM_EvalSearchNegative(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  const Candidate& c = *f.negative_candidate;
  EqView view(&f.eq);
  for (auto _ : state) {
    bool found = false;
    for (int ki : *c.keys) {
      found |= KeyIdentifies(f.ds.graph, f.ctx->compiled_keys()[ki].cp,
                             c.e1, c.e2, view, c.nbr1, c.nbr2);
    }
    benchmark::DoNotOptimize(found);
  }
}
BENCHMARK(BM_EvalSearchNegative);

void BM_PairingComputation(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  const Candidate& c = *f.planted_candidate;
  for (auto _ : state) {
    for (int ki : *c.keys) {
      PairingResult pr =
          ComputeMaxPairing(f.ds.graph, f.ctx->compiled_keys()[ki].cp,
                            c.e1, c.e2, *c.nbr1, *c.nbr2);
      benchmark::DoNotOptimize(pr.paired);
    }
  }
}
BENCHMARK(BM_PairingComputation);

void BM_DNeighborExtraction(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  const Candidate& c = *f.planted_candidate;
  int d = static_cast<int>(state.range(0));
  for (auto _ : state) {
    NodeSet n = DNeighbor(f.ds.graph, c.e1, d);
    benchmark::DoNotOptimize(n.size());
  }
}
BENCHMARK(BM_DNeighborExtraction)->Arg(1)->Arg(2)->Arg(3);

void BM_UnionFindOps(benchmark::State& state) {
  size_t n = 100000;
  for (auto _ : state) {
    EquivalenceRelation eq(n);
    for (NodeId i = 0; i + 1 < n; i += 2) eq.Union(i, i + 1);
    bool same = eq.Same(0, 1);
    benchmark::DoNotOptimize(same);
  }
  state.SetItemsProcessed(state.iterations() * (n / 2));
}
BENCHMARK(BM_UnionFindOps);

void BM_ConcurrentUnionFindOps(benchmark::State& state) {
  size_t n = 100000;
  for (auto _ : state) {
    ConcurrentEquivalence eq(n);
    for (NodeId i = 0; i + 1 < n; i += 2) eq.Union(i, i + 1);
    bool same = eq.Same(0, 1);
    benchmark::DoNotOptimize(same);
  }
  state.SetItemsProcessed(state.iterations() * (n / 2));
}
BENCHMARK(BM_ConcurrentUnionFindOps);

}  // namespace
}  // namespace bench
}  // namespace gkeys

int main(int argc, char** argv) {
  gkeys::bench::InitJson(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  gkeys::bench::FlushJson();
  return 0;
}
