// Micro-benchmarks for the matching substrates: the combined EvalMR
// search vs VF2 full enumeration (the §4.1 early-termination claim),
// pairing-relation computation (Prop. 9), d-neighbor extraction, and
// union-find operations.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "graph/neighborhood.h"
#include "isomorph/pairing.h"
#include "isomorph/pairing_reference.h"
#include "isomorph/vf2.h"

namespace gkeys {
namespace bench {
namespace {

/// Shared workload: one synthetic dataset plus its context and one
/// identifiable candidate to probe.
struct MicroFixture {
  SyntheticDataset ds;
  std::unique_ptr<EmContext> ctx;
  const Candidate* planted_candidate = nullptr;
  const Candidate* negative_candidate = nullptr;
  EquivalenceRelation eq{0};

  MicroFixture() : ds(MakeDataset(Dataset::kSynthetic, 1.0, 2, 2)) {
    EmOptions opts;
    // Unblocked enumeration: these benches probe single candidate-pair
    // calls, and with signature blocking on every surviving candidate can
    // be a planted (positive) pair — the negative probe would not exist.
    opts.use_blocking = false;
    ctx = std::make_unique<EmContext>(ds.graph, ds.keys, opts);
    eq = EquivalenceRelation(ds.graph.NumNodes());
    for (auto [a, b] : ds.planted) eq.Union(a, b);
    for (const Candidate& c : ctx->candidates()) {
      if (eq.Same(c.e1, c.e2) && planted_candidate == nullptr) {
        planted_candidate = &c;
      }
      if (!eq.Same(c.e1, c.e2) && negative_candidate == nullptr) {
        negative_candidate = &c;
      }
    }
  }

  static MicroFixture& Get() {
    static MicroFixture* f = new MicroFixture();
    return *f;
  }
};

void BM_EvalSearchPositive(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  const Candidate& c = *f.planted_candidate;
  EqView view(&f.eq);
  for (auto _ : state) {
    bool found = false;
    for (int ki : *c.keys) {
      found = KeyIdentifies(f.ds.graph, f.ctx->compiled_keys()[ki].cp, c.e1,
                            c.e2, view, c.nbr1, c.nbr2);
      if (found) break;
    }
    benchmark::DoNotOptimize(found);
  }
}
BENCHMARK(BM_EvalSearchPositive);

void BM_Vf2EnumerationPositive(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  const Candidate& c = *f.planted_candidate;
  EqView view(&f.eq);
  for (auto _ : state) {
    bool found = false;
    for (int ki : *c.keys) {
      found = IdentifiesByEnumeration(f.ds.graph,
                                      f.ctx->compiled_keys()[ki].cp, c.e1,
                                      c.e2, view, c.nbr1, c.nbr2);
      if (found) break;
    }
    benchmark::DoNotOptimize(found);
  }
}
BENCHMARK(BM_Vf2EnumerationPositive);

void BM_EvalSearchNegative(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  if (f.negative_candidate == nullptr) {
    state.SkipWithError("no negative candidate in the workload");
    return;
  }
  const Candidate& c = *f.negative_candidate;
  EqView view(&f.eq);
  for (auto _ : state) {
    bool found = false;
    for (int ki : *c.keys) {
      found |= KeyIdentifies(f.ds.graph, f.ctx->compiled_keys()[ki].cp,
                             c.e1, c.e2, view, c.nbr1, c.nbr2);
    }
    benchmark::DoNotOptimize(found);
  }
}
BENCHMARK(BM_EvalSearchNegative);

void BM_PairingComputation(benchmark::State& state) {
  // Scratch reuse mirrors how the engines call pairing (one arena per
  // worker thread, reused across every candidate pair).
  MicroFixture& f = MicroFixture::Get();
  const Candidate& c = *f.planted_candidate;
  PairingScratch scratch;
  for (auto _ : state) {
    for (int ki : *c.keys) {
      PairingResult pr =
          ComputeMaxPairing(f.ds.graph, f.ctx->compiled_keys()[ki].cp,
                            c.e1, c.e2, *c.nbr1, *c.nbr2,
                            /*collect_pairs=*/false, &scratch);
      benchmark::DoNotOptimize(pr.paired);
    }
  }
}
BENCHMARK(BM_PairingComputation);

void BM_PairingReference(benchmark::State& state) {
  // The pre-dense-worklist implementation on the same inputs, kept timed
  // so the BM_PairingComputation speedup stays measured per commit.
  MicroFixture& f = MicroFixture::Get();
  const Candidate& c = *f.planted_candidate;
  for (auto _ : state) {
    for (int ki : *c.keys) {
      PairingResult pr =
          ReferenceMaxPairing(f.ds.graph, f.ctx->compiled_keys()[ki].cp,
                              c.e1, c.e2, *c.nbr1, *c.nbr2);
      benchmark::DoNotOptimize(pr.paired);
    }
  }
}
BENCHMARK(BM_PairingReference);

void BM_PairingDense(benchmark::State& state) {
  // Pairing over full (unreduced) d-neighborhoods of one candidate as d
  // grows: the dense-worklist fixpoint's target regime (bench_vary_d's
  // prep axis distilled to the per-pair call).
  MicroFixture& f = MicroFixture::Get();
  const Candidate& c = *f.planted_candidate;
  const int d = static_cast<int>(state.range(0));
  NodeSet n1 = DNeighbor(f.ds.graph, c.e1, d);
  NodeSet n2 = DNeighbor(f.ds.graph, c.e2, d);
  PairingScratch scratch;
  size_t relation = 0;
  for (auto _ : state) {
    for (int ki : *c.keys) {
      PairingResult pr =
          ComputeMaxPairing(f.ds.graph, f.ctx->compiled_keys()[ki].cp,
                            c.e1, c.e2, n1, n2,
                            /*collect_pairs=*/false, &scratch);
      relation = std::max(relation, pr.relation_size);
      benchmark::DoNotOptimize(pr.paired);
    }
  }
  state.counters["nbr_nodes"] = static_cast<double>(n1.size() + n2.size());
  state.counters["relation"] = static_cast<double>(relation);
}
BENCHMARK(BM_PairingDense)->Arg(2)->Arg(3)->Arg(4);

void BM_PairingReferenceDense(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  const Candidate& c = *f.planted_candidate;
  const int d = static_cast<int>(state.range(0));
  NodeSet n1 = DNeighbor(f.ds.graph, c.e1, d);
  NodeSet n2 = DNeighbor(f.ds.graph, c.e2, d);
  for (auto _ : state) {
    for (int ki : *c.keys) {
      PairingResult pr =
          ReferenceMaxPairing(f.ds.graph, f.ctx->compiled_keys()[ki].cp,
                              c.e1, c.e2, n1, n2);
      benchmark::DoNotOptimize(pr.paired);
    }
  }
  state.counters["nbr_nodes"] = static_cast<double>(n1.size() + n2.size());
}
BENCHMARK(BM_PairingReferenceDense)->Arg(2)->Arg(3)->Arg(4);

void BM_DNeighborExtraction(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  const Candidate& c = *f.planted_candidate;
  int d = static_cast<int>(state.range(0));
  for (auto _ : state) {
    NodeSet n = DNeighbor(f.ds.graph, c.e1, d);
    benchmark::DoNotOptimize(n.size());
  }
}
BENCHMARK(BM_DNeighborExtraction)->Arg(1)->Arg(2)->Arg(3);

void BM_UnionFindOps(benchmark::State& state) {
  size_t n = 100000;
  for (auto _ : state) {
    EquivalenceRelation eq(n);
    for (NodeId i = 0; i + 1 < n; i += 2) eq.Union(i, i + 1);
    bool same = eq.Same(0, 1);
    benchmark::DoNotOptimize(same);
  }
  state.SetItemsProcessed(state.iterations() * (n / 2));
}
BENCHMARK(BM_UnionFindOps);

void BM_ConcurrentUnionFindOps(benchmark::State& state) {
  size_t n = 100000;
  for (auto _ : state) {
    ConcurrentEquivalence eq(n);
    for (NodeId i = 0; i + 1 < n; i += 2) eq.Union(i, i + 1);
    bool same = eq.Same(0, 1);
    benchmark::DoNotOptimize(same);
  }
  state.SetItemsProcessed(state.iterations() * (n / 2));
}
BENCHMARK(BM_ConcurrentUnionFindOps);

}  // namespace
}  // namespace bench
}  // namespace gkeys

int main(int argc, char** argv) {
  gkeys::bench::InitJson(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // The capture reporter mirrors every run into the --json sink, so the
  // CI artifact records the pairing / search micro timings per commit.
  gkeys::bench::JsonRowReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  gkeys::bench::FlushJson();
  return 0;
}
