// High-throughput ingest: sustained triples/sec through the three layers
// this subsystem stacks, on the three evaluation datasets.
//
//   ParseGraph — whole-file graph parsing: the scalar oracle
//       (DeserializeGraphWithNames) vs the chunked SWAR fast path
//       (FastDeserializeGraphWithNames) at 1 and 4 tokenize threads,
//       outputs verified byte-identical.
//
//   ParseApplyDelta — per-batch delta parsing + Graph::Apply, no
//       matching: scalar ParseDelta (which copies the session's whole
//       entity table per call) vs FastParseDelta (overlay binding, no
//       copy), over a stream of small batches against a large session.
//
//   Pipeline — the headline: the full staged ingest pipeline
//       (Matcher::IngestStream: tokenize-ahead thread + bind → Apply →
//       Patch → Rematch) vs the pre-PR serial loop (scalar ParseDelta →
//       Apply → Patch → Rematch per batch) over the same 1%-of-edges
//       delta stream, final sessions verified byte-identical. Rows
//       report sustained triples/sec for both sides, the speedup, and
//       the pipeline's per-stage breakdown.
//
// All rows flow into the --json artifact (BENCH_ingest.json in CI).

#include "bench_util.h"

#include <string_view>

#include "common/timer.h"
#include "core/ingest_pipeline.h"
#include "graph/delta.h"
#include "io/fast_triples.h"
#include "io/triples.h"

namespace gkeys {
namespace bench {
namespace {

constexpr int kReps = 3;  // min-of timing (single-CPU clocks are noisy)

/// Splits serialized graph text into (base_text, delta_batches): every
/// `stride`-th plain triple line (never the trailing @exists lines) is
/// held out of the base and dealt into `+ <line>` delta batches of
/// `batch_lines` lines each, in file order. Deterministic.
struct DeltaStream {
  std::string base_text;
  std::vector<std::string> batches;
  size_t delta_triples = 0;
};

DeltaStream MakeDeltaStream(std::string_view text, size_t stride,
                            size_t batch_lines) {
  DeltaStream out;
  out.base_text.reserve(text.size());
  std::string batch;
  size_t line_index = 0, in_batch = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    size_t end = nl == std::string_view::npos ? text.size() : nl + 1;
    std::string_view line = text.substr(pos, end - pos);
    pos = end;
    ++line_index;
    if (line_index % stride == 0 && line.find(" @exists ") ==
                                        std::string_view::npos) {
      batch += "+ ";
      batch += line;
      ++out.delta_triples;
      if (++in_batch == batch_lines) {
        out.batches.push_back(std::move(batch));
        batch.clear();
        in_batch = 0;
      }
    } else {
      out.base_text += line;
    }
  }
  if (!batch.empty()) out.batches.push_back(std::move(batch));
  return out;
}

/// One matching session over a parsed graph; both pipeline sides build
/// their own (the plan's context references the session's graph
/// instance, which Apply mutates in place — unique_ptr keeps that
/// address stable while the Session moves through StatusOr).
struct Session {
  std::unique_ptr<LoadedGraph> lg;
  MatchPlan plan;
  MatchResult result;

  static StatusOr<Session> Make(std::string_view base_text,
                                const KeySet& keys, Algorithm algo) {
    Session s;
    auto lg = DeserializeGraphWithNames(base_text);
    GKEYS_RETURN_IF_ERROR(lg.status());
    s.lg = std::make_unique<LoadedGraph>(*std::move(lg));
    auto plan =
        Matcher::Compile(s.lg->graph, keys, PlanOptions::For(algo, 1));
    GKEYS_RETURN_IF_ERROR(plan.status());
    s.plan = *std::move(plan);
    auto r = Matcher(algo).processors(1).Run(s.plan);
    GKEYS_RETURN_IF_ERROR(r.status());
    s.result = *std::move(r);
    return s;
  }
};

void RegisterParseGraph() {
  for (Dataset ds :
       {Dataset::kGoogle, Dataset::kDBpedia, Dataset::kSynthetic}) {
    for (int threads : {1, 4}) {
      std::string name =
          "Ingest/ParseGraph/" + DatasetName(ds) + "/t" +
          std::to_string(threads);
      benchmark::RegisterBenchmark(
          name.c_str(), [ds, threads, name](benchmark::State& state) {
            SyntheticDataset data = MakeDataset(ds, 2.0);
            const std::string text = SerializeGraph(data.graph);
            const double triples =
                static_cast<double>(data.graph.NumTriples());
            auto oracle = DeserializeGraphWithNames(text);
            if (!oracle.ok()) {
              state.SkipWithError(oracle.status().ToString().c_str());
              return;
            }
            double scalar_s = 1e9, fast_s = 1e9;
            for (auto _ : state) {
              for (int r = 0; r < kReps; ++r) {
                Timer t;
                auto parsed = DeserializeGraphWithNames(text);
                if (!parsed.ok()) {
                  state.SkipWithError(parsed.status().ToString().c_str());
                  return;
                }
                scalar_s = std::min(scalar_s, t.Seconds());
                benchmark::DoNotOptimize(parsed->graph);
              }
              std::string fast_serialized;
              for (int r = 0; r < kReps; ++r) {
                Timer t;
                auto parsed = FastDeserializeGraphWithNames(text, threads);
                if (!parsed.ok()) {
                  state.SkipWithError(parsed.status().ToString().c_str());
                  return;
                }
                fast_s = std::min(fast_s, t.Seconds());
                if (r == 0) fast_serialized = SerializeGraph(parsed->graph);
                benchmark::DoNotOptimize(parsed->graph);
              }
              if (fast_serialized != SerializeGraph(oracle->graph)) {
                state.SkipWithError("fast parse diverged from oracle");
                return;
              }
            }
            state.counters["bytes"] = static_cast<double>(text.size());
            state.counters["scalar_s"] = scalar_s;
            state.counters["fast_s"] = fast_s;
            state.counters["scalar_tps"] = triples / scalar_s;
            state.counters["fast_tps"] = triples / fast_s;
            state.counters["speedup"] = scalar_s / fast_s;
            JsonRow(name, {{"triples", triples},
                           {"bytes", static_cast<double>(text.size())},
                           {"threads", static_cast<double>(threads)},
                           {"scalar_s", scalar_s},
                           {"fast_s", fast_s},
                           {"scalar_tps", triples / scalar_s},
                           {"fast_tps", triples / fast_s},
                           {"speedup", scalar_s / fast_s}});
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

void RegisterParseApplyDelta() {
  for (Dataset ds :
       {Dataset::kGoogle, Dataset::kDBpedia, Dataset::kSynthetic}) {
    std::string name = "Ingest/ParseApplyDelta/" + DatasetName(ds);
    benchmark::RegisterBenchmark(
        name.c_str(), [ds, name](benchmark::State& state) {
          SyntheticDataset data = MakeDataset(ds, 2.0);
          DeltaStream stream =
              MakeDeltaStream(SerializeGraph(data.graph), /*stride=*/100,
                              /*batch_lines=*/2);
          const double triples = static_cast<double>(stream.delta_triples);
          double scalar_s = 1e9, fast_s = 1e9;
          for (auto _ : state) {
            for (int r = 0; r < kReps; ++r) {
              // Scalar side: ParseDelta copies the whole entity table
              // per batch — the pre-PR per-batch cost.
              auto lg = DeserializeGraphWithNames(stream.base_text);
              if (!lg.ok()) {
                state.SkipWithError(lg.status().ToString().c_str());
                return;
              }
              Timer t;
              for (const std::string& batch : stream.batches) {
                std::unordered_map<std::string, NodeId> nb;
                auto delta = ParseDelta(batch, lg->graph, lg->entities, &nb);
                if (!delta.ok() || !lg->graph.Apply(*delta).ok()) {
                  state.SkipWithError("scalar delta chain failed");
                  return;
                }
                for (auto& [tok, id] : nb) lg->entities.emplace(tok, id);
              }
              scalar_s = std::min(scalar_s, t.Seconds());
            }
            std::string scalar_final;
            {
              auto lg = DeserializeGraphWithNames(stream.base_text);
              for (const std::string& batch : stream.batches) {
                std::unordered_map<std::string, NodeId> nb;
                auto delta = ParseDelta(batch, lg->graph, lg->entities, &nb);
                if (!delta.ok() || !lg->graph.Apply(*delta).ok()) {
                  state.SkipWithError("scalar verification chain failed");
                  return;
                }
                for (auto& [tok, id] : nb) lg->entities.emplace(tok, id);
              }
              scalar_final = SerializeGraph(lg->graph);
            }
            std::string fast_final;
            for (int r = 0; r < kReps; ++r) {
              auto lg = DeserializeGraphWithNames(stream.base_text);
              if (!lg.ok()) {
                state.SkipWithError(lg.status().ToString().c_str());
                return;
              }
              Timer t;
              for (const std::string& batch : stream.batches) {
                std::unordered_map<std::string, NodeId> nb;
                auto delta =
                    FastParseDelta(batch, lg->graph, lg->entities, &nb);
                if (!delta.ok() || !lg->graph.Apply(*delta).ok()) {
                  state.SkipWithError("fast delta chain failed");
                  return;
                }
                for (auto& [tok, id] : nb) lg->entities.emplace(tok, id);
              }
              fast_s = std::min(fast_s, t.Seconds());
              if (r == 0) fast_final = SerializeGraph(lg->graph);
            }
            if (fast_final != scalar_final) {
              state.SkipWithError("fast delta chain diverged from scalar");
              return;
            }
          }
          state.counters["batches"] =
              static_cast<double>(stream.batches.size());
          state.counters["scalar_s"] = scalar_s;
          state.counters["fast_s"] = fast_s;
          state.counters["scalar_tps"] = triples / scalar_s;
          state.counters["fast_tps"] = triples / fast_s;
          state.counters["speedup"] = scalar_s / fast_s;
          JsonRow(name,
                  {{"delta_triples", triples},
                   {"batches", static_cast<double>(stream.batches.size())},
                   {"scalar_s", scalar_s},
                   {"fast_s", fast_s},
                   {"scalar_tps", triples / scalar_s},
                   {"fast_tps", triples / fast_s},
                   {"speedup", scalar_s / fast_s}});
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

void RegisterPipeline() {
  for (Dataset ds :
       {Dataset::kGoogle, Dataset::kDBpedia, Dataset::kSynthetic}) {
    std::string name = "Ingest/Pipeline/" + DatasetName(ds);
    benchmark::RegisterBenchmark(
        name.c_str(), [ds, name](benchmark::State& state) {
          const Algorithm algo = Algorithm::kEmOptVc;
          SyntheticDataset data = MakeDataset(ds, 2.0);
          // 1% of edges, dealt into 2-line batches: the streaming-CDC
          // shape (many small acknowledged batches) where the pre-PR
          // loop's per-batch costs — full entity-table copy in
          // ParseDelta — dominate.
          DeltaStream stream =
              MakeDeltaStream(SerializeGraph(data.graph), /*stride=*/100,
                              /*batch_lines=*/2);
          const double triples = static_cast<double>(stream.delta_triples);

          double serial_s = 1e9, pipeline_s = 1e9;
          double serial_parse_s = 0;
          IngestStats best_stats;
          std::string serial_final, pipeline_final;
          size_t serial_pairs = 0, pipeline_pairs = 0;
          for (auto _ : state) {
            // Pre-PR serial loop: scalar parse → Apply → Patch →
            // Rematch per batch.
            for (int r = 0; r < kReps; ++r) {
              auto session = Session::Make(stream.base_text, data.keys, algo);
              if (!session.ok()) {
                state.SkipWithError(session.status().ToString().c_str());
                return;
              }
              Matcher matcher(algo);
              matcher.processors(1);
              double parse_s = 0;
              Timer t;
              for (const std::string& batch : stream.batches) {
                std::unordered_map<std::string, NodeId> nb;
                Timer pt;
                auto delta = ParseDelta(batch, session->lg->graph,
                                        session->lg->entities, &nb);
                parse_s += pt.Seconds();
                if (!delta.ok()) {
                  state.SkipWithError(delta.status().ToString().c_str());
                  return;
                }
                if (!delta->empty()) {
                  if (!session->lg->graph.Apply(*delta).ok()) {
                    state.SkipWithError("serial Apply failed");
                    return;
                  }
                  auto patched = session->plan.Patch(*delta);
                  if (!patched.ok()) {
                    state.SkipWithError(patched.status().ToString().c_str());
                    return;
                  }
                  auto rematched =
                      matcher.Rematch(*patched, session->result, *delta);
                  if (!rematched.ok()) {
                    state.SkipWithError(
                        rematched.status().ToString().c_str());
                    return;
                  }
                  session->plan = *std::move(patched);
                  session->result = *std::move(rematched);
                }
                for (auto& [tok, id] : nb) {
                  session->lg->entities.emplace(tok, id);
                }
              }
              double total = t.Seconds();
              if (total < serial_s) {
                serial_s = total;
                serial_parse_s = parse_s;
              }
              if (r == 0) {
                serial_final = SerializeGraph(session->lg->graph);
                serial_pairs = session->result.pairs.size();
              }
            }

            // Staged pipeline over the same batches.
            for (int r = 0; r < kReps; ++r) {
              auto session = Session::Make(stream.base_text, data.keys, algo);
              if (!session.ok()) {
                state.SkipWithError(session.status().ToString().c_str());
                return;
              }
              Matcher matcher(algo);
              matcher.processors(1);
              IngestSession is;
              is.graph = &session->lg->graph;
              is.plan = &session->plan;
              is.result = &session->result;
              is.entity_names = &session->lg->entities;
              // A deeper queue than the default: the acknowledgment-free
              // bench source never throttles, so letting more parsed
              // batches queue up gives group commit a fuller backlog.
              IngestOptions iopts;
              iopts.queue_depth = 16;
              iopts.max_coalesce = 16;
              size_t next = 0;
              Timer t;
              IngestStats stats = matcher.IngestStream(
                  is,
                  [&]() -> std::optional<std::string> {
                    if (next >= stream.batches.size()) return std::nullopt;
                    return stream.batches[next++];
                  },
                  iopts);
              double total = t.Seconds();
              if (!stats.status.ok()) {
                state.SkipWithError(stats.status.ToString().c_str());
                return;
              }
              if (total < pipeline_s) {
                pipeline_s = total;
                best_stats = std::move(stats);
              }
              if (r == 0) {
                pipeline_final = SerializeGraph(session->lg->graph);
                pipeline_pairs = session->result.pairs.size();
              }
            }
            if (pipeline_final != serial_final ||
                pipeline_pairs != serial_pairs) {
              state.SkipWithError("pipeline diverged from serial loop");
              return;
            }
          }
          state.counters["batches"] =
              static_cast<double>(stream.batches.size());
          state.counters["commits"] = static_cast<double>(best_stats.commits);
          state.counters["serial_s"] = serial_s;
          state.counters["pipeline_s"] = pipeline_s;
          state.counters["serial_tps"] = triples / serial_s;
          state.counters["pipeline_tps"] = triples / pipeline_s;
          state.counters["speedup"] = serial_s / pipeline_s;
          state.counters["pairs"] = static_cast<double>(pipeline_pairs);
          JsonRow(
              name,
              {{"triples", static_cast<double>(data.graph.NumTriples())},
               {"delta_triples", triples},
               {"delta_frac", 0.01},
               {"batches", static_cast<double>(stream.batches.size())},
               {"commits", static_cast<double>(best_stats.commits)},
               {"serial_s", serial_s},
               {"serial_parse_s", serial_parse_s},
               {"pipeline_s", pipeline_s},
               {"pipeline_parse_s", best_stats.seconds.parse},
               {"pipeline_bind_s", best_stats.seconds.bind},
               {"pipeline_apply_s", best_stats.seconds.apply},
               {"pipeline_patch_s", best_stats.seconds.patch},
               {"pipeline_rematch_s", best_stats.seconds.rematch},
               {"serial_tps", triples / serial_s},
               {"pipeline_tps", triples / pipeline_s},
               {"speedup", serial_s / pipeline_s},
               {"pairs", static_cast<double>(pipeline_pairs)}});
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace bench
}  // namespace gkeys

int main(int argc, char** argv) {
  gkeys::bench::InitJson(&argc, argv);
  gkeys::bench::RegisterParseGraph();
  gkeys::bench::RegisterParseApplyDelta();
  gkeys::bench::RegisterPipeline();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  gkeys::bench::FlushJson();
  return 0;
}
