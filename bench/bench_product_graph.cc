// Product-graph size (paper §5.1): the paper reports |Gp| = 2.7 * |G| on
// average — crucially LINEAR in |G|, not the naive |G|^2. This benchmark
// measures |Vp| + |Ep| against |G| across datasets and scales, plus the
// construction time.

#include "bench_util.h"
#include "core/product_graph.h"

namespace gkeys {
namespace bench {
namespace {

void RegisterAll() {
  for (Dataset ds :
       {Dataset::kGoogle, Dataset::kDBpedia, Dataset::kSynthetic}) {
    for (double scale : {0.5, 1.0, 2.0}) {
      std::string name = "ProductGraph/" + DatasetName(ds) +
                         "/scale:" + std::to_string(scale).substr(0, 3);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [ds, scale](benchmark::State& state) {
            SyntheticDataset data = MakeDataset(ds, scale);
            EmOptions opts = EmOptions::For(Algorithm::kEmVc, 1);
            EmContext ctx(data.graph, data.keys, opts);
            size_t nodes = 0, edges = 0;
            for (auto _ : state) {
              ProductGraph pg = BuildProductGraph(ctx);
              nodes = pg.NumNodes();
              edges = pg.NumEdges();
              benchmark::DoNotOptimize(nodes);
            }
            double g_size = static_cast<double>(data.graph.NumTriples());
            state.counters["G_triples"] = g_size;
            state.counters["Gp_nodes"] = static_cast<double>(nodes);
            state.counters["Gp_edges"] = static_cast<double>(edges);
            state.counters["Gp_over_G"] =
                static_cast<double>(nodes + edges) / g_size;
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace gkeys

int main(int argc, char** argv) {
  gkeys::bench::InitJson(&argc, argv);
  gkeys::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  gkeys::bench::FlushJson();
  return 0;
}
