// Ablation study backing the §6 "Effectiveness of optimization" numbers:
// each §4.2 / §5.2 optimization toggled independently on the synthetic
// workload, so the contribution of pairing (smaller L + neighbors),
// entity dependency, incremental checking, bounded messages (k), and
// prioritized propagation can be read off individually.

#include "bench_util.h"

namespace gkeys {
namespace bench {
namespace {

struct Variant {
  const char* name;
  Algorithm base;
  void (*tweak)(EmOptions&);
};

void RegisterAll() {
  auto data = std::make_shared<SyntheticDataset>(
      MakeDataset(Dataset::kSynthetic, /*scale=*/1.0, /*c=*/3, /*d=*/2));

  static const Variant kVariants[] = {
      {"MR/base", Algorithm::kEmMr, [](EmOptions&) {}},
      {"MR/vf2", Algorithm::kEmMr,
       [](EmOptions& o) { o.use_vf2 = true; }},
      {"MR/pairing", Algorithm::kEmMr,
       [](EmOptions& o) { o.use_pairing = true; }},
      {"MR/dependency", Algorithm::kEmMr,
       [](EmOptions& o) { o.use_dependency = true; }},
      {"MR/incremental", Algorithm::kEmMr,
       [](EmOptions& o) { o.use_incremental = true; }},
      {"MR/all_opts", Algorithm::kEmOptMr, [](EmOptions&) {}},
      {"VC/base", Algorithm::kEmVc, [](EmOptions&) {}},
      {"VC/bounded_k4", Algorithm::kEmVc,
       [](EmOptions& o) { o.bounded_messages = 4; }},
      {"VC/prioritized", Algorithm::kEmVc,
       [](EmOptions& o) { o.prioritized = true; }},
      {"VC/all_opts", Algorithm::kEmOptVc, [](EmOptions&) {}},
  };

  for (const Variant& v : kVariants) {
    std::string name = std::string("Ablation/") + v.name;
    Algorithm base = v.base;
    auto tweak = v.tweak;
    benchmark::RegisterBenchmark(
        name.c_str(),
        [data, base, tweak](benchmark::State& state) {
          EmOptions opts = EmOptions::For(base, /*p=*/4);
          tweak(opts);
          // Pairing is a compile-time choice; everything else is a run-time
          // knob on the Matcher, so each variant compiles once and reruns.
          PlanOptions popts = PlanOptions::For(base, /*p=*/4);
          popts.use_pairing = opts.use_pairing;
          auto plan = Matcher::Compile(data->graph, data->keys, popts);
          if (!plan.ok()) {
            state.SkipWithError(plan.status().ToString().c_str());
            return;
          }
          Matcher matcher(base);
          matcher.options(opts);
          MatchResult r;
          for (auto _ : state) {
            auto run = matcher.Run(*plan);
            if (!run.ok()) {
              state.SkipWithError(run.status().ToString().c_str());
              return;
            }
            r = *std::move(run);
            benchmark::DoNotOptimize(r.pairs.size());
          }
          if (r.pairs != data->planted) {
            state.SkipWithError("ablation variant changed the result");
            return;
          }
          ExportCounters(state, r);
          state.counters["prep_s"] = plan->compile_seconds();
          state.counters["run_s"] = r.stats.run_seconds;
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace bench
}  // namespace gkeys

int main(int argc, char** argv) {
  gkeys::bench::InitJson(&argc, argv);
  gkeys::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  gkeys::bench::FlushJson();
  return 0;
}
