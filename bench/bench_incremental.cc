// Incremental re-matching amortization: Graph::Apply + MatchPlan::Patch +
// Matcher::Rematch versus a from-scratch Compile + Run on the post-delta
// graph, across delta sizes (0.1%, 1%, 10% of edges) and delta kinds on
// the three evaluation datasets:
//   add — the held-out-edges methodology: generate the full dataset,
//         withhold a random delta-sized slice of its triples, compile and
//         run on the remainder, then stream the slice back in;
//   del — compile and run on the FULL dataset, then remove a random
//         delta-sized slice (exercises provenance retraction + seeding);
//   mix — withhold half the slice, re-add it while removing the other
//         half from the present triples.
// Rematch runs in the default kAuto mode; the rows record whether the
// cost model seeded or fell back (seeded / fallback / retracted), so the
// artifact also documents the model's choices. Counters report absolute
// times and the speedup; results are verified byte-identical against the
// from-scratch run.

#include "bench_util.h"

#include "common/rng.h"
#include "common/timer.h"
#include "graph/delta.h"

namespace gkeys {
namespace bench {
namespace {

/// Rebuilds `src` node-for-node (same NodeIds) without the triples whose
/// index is flagged in `held`.
Graph RebuildWithout(const Graph& src, const std::vector<Triple>& triples,
                     const std::vector<uint8_t>& held) {
  Graph g;
  for (NodeId n = 0; n < src.NumNodes(); ++n) {
    if (src.IsEntity(n)) {
      g.AddEntity(src.interner().Resolve(src.entity_type(n)));
    } else {
      g.AddValue(src.value_str(n));
    }
  }
  for (size_t i = 0; i < triples.size(); ++i) {
    if (held[i]) continue;
    const Triple& t = triples[i];
    g.AddTriple(t.subject, src.interner().Resolve(t.pred), t.object).IgnoreError();
  }
  g.Finalize();
  return g;
}

/// Which way the benchmark's delta mutates the base graph.
enum class DeltaKind { kAdd, kRemove, kMixed };

const char* DeltaKindName(DeltaKind k) {
  switch (k) {
    case DeltaKind::kAdd: return "add";
    case DeltaKind::kRemove: return "del";
    case DeltaKind::kMixed: return "mix";
  }
  return "?";
}

void RegisterAll() {
  for (Algorithm algo : {Algorithm::kEmOptVc, Algorithm::kEmOptMr}) {
  for (Dataset ds :
       {Dataset::kGoogle, Dataset::kDBpedia, Dataset::kSynthetic}) {
    // Scale 1 is the bench_table2 configuration; scale 4 shows the
    // asymptotics — full compile grows superlinearly with the graph
    // while patch + rematch stay proportional to the delta's region.
    for (double scale : {1.0, 4.0}) {
      for (DeltaKind kind :
           {DeltaKind::kAdd, DeltaKind::kRemove, DeltaKind::kMixed}) {
      for (double frac : {0.001, 0.01, 0.1}) {
        std::string name = "Incremental/" + AlgorithmName(algo) + "/" +
                           DatasetName(ds) + "/x" +
                           std::to_string(static_cast<int>(scale)) + "/" +
                           DeltaKindName(kind) + "_" +
                           std::to_string(frac);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [ds, frac, name, algo, scale, kind](benchmark::State& state) {
              SyntheticDataset data = MakeDataset(ds, scale);
            std::vector<Triple> triples;
            data.graph.ForEachTriple(
                [&](const Triple& t) { triples.push_back(t); });
            const size_t delta_size = std::max<size_t>(
                1, static_cast<size_t>(frac * triples.size()));
            Rng rng(42);
            // `held` triples stay out of the base graph (re-added by the
            // delta); `removed` ones are present and removed by it.
            const size_t held_count =
                kind == DeltaKind::kAdd
                    ? delta_size
                    : (kind == DeltaKind::kMixed ? delta_size / 2 : 0);
            std::vector<uint8_t> held(triples.size(), 0);
            for (size_t chosen = 0; chosen < held_count;) {
              size_t pick = rng.Below(triples.size());
              if (!held[pick]) {
                held[pick] = 1;
                ++chosen;
              }
            }
            std::vector<uint8_t> removed(triples.size(), 0);
            for (size_t chosen = 0; chosen < delta_size - held_count;) {
              size_t pick = rng.Below(triples.size());
              if (!held[pick] && !removed[pick]) {
                removed[pick] = 1;
                ++chosen;
              }
            }

            double patch_s = 0, rematch_s = 0, full_compile_s = 0,
                   full_run_s = 0, base_compile_s = 0;
            size_t pairs = 0, dirty = 0, reused = 0;
            size_t seeded = 0, fallback = 0, retracted = 0;
            bool mismatch = false;
            for (auto _ : state) {
              state.PauseTiming();
              Graph base = RebuildWithout(data.graph, triples, held);
              auto plan = Matcher::Compile(base, data.keys,
                                           PlanOptions::For(algo, 1));
              if (!plan.ok()) {
                state.SkipWithError(plan.status().ToString().c_str());
                return;
              }
              base_compile_s = plan->compile_seconds();
              Matcher matcher(algo);
              matcher.processors(1);
              auto prev = matcher.Run(*plan);
              if (!prev.ok()) {
                state.SkipWithError(prev.status().ToString().c_str());
                return;
              }
              GraphDelta delta(base);
              for (size_t i = 0; i < triples.size(); ++i) {
                if (!held[i] && !removed[i]) continue;
                const Triple& t = triples[i];
                if (held[i]) {
                  delta.AddTriple(
                      t.subject, data.graph.interner().Resolve(t.pred),
                      t.object).IgnoreError();
                } else {
                  delta.RemoveTriple(
                      t.subject, data.graph.interner().Resolve(t.pred),
                      t.object).IgnoreError();
                }
              }
              state.ResumeTiming();

              // Incremental path: apply once (it mutates the graph), then
              // patch and rematch — both pure — timed as the min over a
              // few repetitions (single-CPU wall clocks are noisy).
              constexpr int kReps = 3;
              Timer apply_timer;
              auto dirty_or = base.Apply(delta);
              if (!dirty_or.ok()) {
                state.SkipWithError(dirty_or.status().ToString().c_str());
                return;
              }
              double t_apply = apply_timer.Seconds();
              double t_patch = 1e9;
              StatusOr<MatchPlan> patched = MatchPlan();
              for (int r = 0; r < kReps; ++r) {
                Timer t;
                patched = plan->Patch(delta);
                if (!patched.ok()) {
                  state.SkipWithError(patched.status().ToString().c_str());
                  return;
                }
                t_patch = std::min(t_patch, t.Seconds());
              }
              double t_rematch = 1e9;
              StatusOr<MatchResult> rematched = MatchResult();
              for (int r = 0; r < kReps; ++r) {
                Timer t;
                rematched = matcher.Rematch(*patched, *prev, delta);
                if (!rematched.ok()) {
                  state.SkipWithError(
                      rematched.status().ToString().c_str());
                  return;
                }
                t_rematch = std::min(t_rematch, t.Seconds());
              }

              // From-scratch baseline on the (now post-delta) graph.
              double t_full_compile = 1e9, t_full_run = 1e9;
              StatusOr<MatchResult> fresh_run = MatchResult();
              for (int r = 0; r < kReps; ++r) {
                Timer full;
                auto fresh = Matcher::Compile(base, data.keys,
                                              PlanOptions::For(algo, 1));
                if (!fresh.ok()) {
                  state.SkipWithError(fresh.status().ToString().c_str());
                  return;
                }
                double c = full.Seconds();
                Timer runt;
                fresh_run = matcher.Run(*fresh);
                if (!fresh_run.ok()) {
                  state.SkipWithError(
                      fresh_run.status().ToString().c_str());
                  return;
                }
                t_full_compile = std::min(t_full_compile, c);
                t_full_run = std::min(t_full_run, runt.Seconds());
              }
              double t_full_total = t_full_compile + t_full_run;

              // Graph::Apply is common to both alternatives (a full
              // recompile also needs the delta applied first), so it is
              // reported separately and not charged to either side.
              patch_s = t_patch;
              rematch_s = t_rematch;
              if (const ContextPatchInfo* pi = patched->patch_info()) {
                state.counters["patch_keys_s"] = pi->keys_seconds;
                state.counters["patch_affected_s"] = pi->affected_seconds;
                state.counters["patch_dnbr_s"] = pi->dneighbor_seconds;
                state.counters["patch_enum_s"] = pi->enumerate_seconds;
                state.counters["patch_pairing_s"] = pi->pairing_seconds;
                state.counters["patch_depindex_s"] = pi->depindex_seconds;
                state.counters["patch_pg_s"] = pi->product_graph_seconds;
              }
              state.counters["apply_s"] = t_apply;
              full_compile_s = t_full_compile;
              full_run_s = t_full_total - t_full_compile;
              pairs = rematched->pairs.size();
              dirty = patched->dirty_candidates().size();
              reused = patched->context().candidates().size() - dirty;
              seeded = rematched->stats.rematch_seeded;
              fallback = rematched->stats.rematch_fallback;
              retracted = rematched->stats.derivations_retracted;
              mismatch = rematched->pairs != fresh_run->pairs;
              benchmark::DoNotOptimize(pairs);
            }
            if (mismatch) {
              state.SkipWithError("patch+rematch diverged from full run");
              return;
            }
            double inc_total = patch_s + rematch_s;
            double full_total = full_compile_s + full_run_s;
            state.counters["delta_triples"] = static_cast<double>(delta_size);
            state.counters["patch_s"] = patch_s;
            state.counters["rematch_s"] = rematch_s;
            state.counters["full_compile_s"] = full_compile_s;
            state.counters["full_run_s"] = full_run_s;
            state.counters["speedup"] =
                inc_total > 0 ? full_total / inc_total : 0;
            state.counters["pairs"] = static_cast<double>(pairs);
            state.counters["dirty_candidates"] = static_cast<double>(dirty);
            state.counters["reused_candidates"] = static_cast<double>(reused);
            state.counters["seeded"] = static_cast<double>(seeded);
            state.counters["fallback"] = static_cast<double>(fallback);
            state.counters["retracted"] = static_cast<double>(retracted);
            JsonRow(name,
                    {{"triples", static_cast<double>(triples.size())},
                     {"scale", scale},
                     {"delta_triples", static_cast<double>(delta_size)},
                     {"delta_frac", frac},
                     {"base_compile_s", base_compile_s},
                     {"patch_s", patch_s},
                     {"rematch_s", rematch_s},
                     {"full_compile_s", full_compile_s},
                     {"full_run_s", full_run_s},
                     {"speedup", inc_total > 0 ? full_total / inc_total : 0},
                     {"pairs", static_cast<double>(pairs)},
                     {"dirty_candidates", static_cast<double>(dirty)},
                     {"reused_candidates", static_cast<double>(reused)},
                     {"seeded", static_cast<double>(seeded)},
                     {"fallback", static_cast<double>(fallback)},
                     {"retracted", static_cast<double>(retracted)}});
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
      }
      }
    }
  }
  }
}

}  // namespace
}  // namespace bench
}  // namespace gkeys

int main(int argc, char** argv) {
  gkeys::bench::InitJson(&argc, argv);
  gkeys::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  gkeys::bench::FlushJson();
  return 0;
}
