// Table 2 (paper §6): candidate matches vs confirmed matches on the three
// datasets. The paper reports, per dataset, the candidate count seen by
// EMOptVC (pairs surviving the pairing filter), the larger candidate
// count of EMOptMR, and the confirmed matches — identical for both
// algorithms. Counters: candidates_optvc, candidates_optmr, confirmed.

#include "bench_util.h"

namespace gkeys {
namespace bench {
namespace {

void RegisterAll() {
  for (Dataset ds :
       {Dataset::kGoogle, Dataset::kDBpedia, Dataset::kSynthetic}) {
    std::string name = "Table2/" + DatasetName(ds);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [ds, name](benchmark::State& state) {
          SyntheticDataset data = MakeDataset(ds, /*scale=*/1.0);
          // One plan, two algorithms: EMOptVC and EMOptMR share the same
          // compiled preparation (both use pairing; the skeleton serves VC).
          auto plan = Matcher::Compile(
              data.graph, data.keys,
              PlanOptions::For(Algorithm::kEmOptVc, /*p=*/4));
          if (!plan.ok()) {
            state.SkipWithError(plan.status().ToString().c_str());
            return;
          }
          MatchResult vc, mr;
          for (auto _ : state) {
            auto rvc = Matcher(Algorithm::kEmOptVc).processors(4).Run(*plan);
            auto rmr = Matcher(Algorithm::kEmOptMr).processors(4).Run(*plan);
            if (!rvc.ok() || !rmr.ok()) {
              state.SkipWithError("run failed");
              return;
            }
            vc = *std::move(rvc);
            mr = *std::move(rmr);
            benchmark::DoNotOptimize(vc.pairs.size());
          }
          if (vc.pairs != mr.pairs) {
            state.SkipWithError("EMOptVC and EMOptMR disagree");
            return;
          }
          state.counters["candidates_raw"] =
              static_cast<double>(mr.stats.candidates_initial);
          state.counters["candidates_blocked"] =
              static_cast<double>(mr.stats.candidates_blocked);
          state.counters["candidates_optmr"] =
              static_cast<double>(mr.stats.candidates);
          // EMOptVC's effective candidates: pairs represented in Gp.
          state.counters["candidates_optvc"] =
              static_cast<double>(vc.stats.candidates);
          state.counters["confirmed"] =
              static_cast<double>(vc.pairs.size());
          state.counters["prep_s"] = plan->compile_seconds();
          state.counters["run_s"] = vc.stats.run_seconds;
          JsonMatchRow(name + "/EMOptVC", data, vc,
                       plan->compile_seconds());
          JsonMatchRow(name + "/EMOptMR", data, mr,
                       plan->compile_seconds());
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace bench
}  // namespace gkeys

int main(int argc, char** argv) {
  gkeys::bench::InitJson(&argc, argv);
  gkeys::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  gkeys::bench::FlushJson();
  return 0;
}
