// Exp-3, varying c (paper Fig. 8(c), 8(g), 8(k)): wall time as the
// longest dependency-chain length c in Σ grows from 1 to 5, fixing p = 4,
// d = 2. The paper's claims: all algorithms slow down with c; the number
// of MapReduce rounds grows with c (2 → 9 in the paper); the
// vertex-centric algorithms are LESS sensitive to c because asynchronous
// message passing has no per-round straggler barrier.

#include "bench_util.h"

namespace gkeys {
namespace bench {
namespace {

void RegisterAll() {
  for (int c : {1, 2, 3, 4, 5}) {
    auto data = std::make_shared<SyntheticDataset>(
        MakeDataset(Dataset::kSynthetic, /*scale=*/1.0, c, /*d=*/2));
    for (Algorithm algo : PaperAlgorithms()) {
      std::string name = "VaryC/Synthetic/" + AlgorithmName(algo) +
                         "/c:" + std::to_string(c);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [data, algo, name](benchmark::State& state) {
            RunEntityMatching(state, *data, algo, /*processors=*/4, name);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  // The Google/DBpedia schemas have fixed chains (c = 3); register them
  // once as reference points for the figure's real-life panels.
  for (Dataset ds : {Dataset::kGoogle, Dataset::kDBpedia}) {
    auto data =
        std::make_shared<SyntheticDataset>(MakeDataset(ds, /*scale=*/1.0));
    for (Algorithm algo : PaperAlgorithms()) {
      std::string name = "VaryC/" + DatasetName(ds) + "/" +
                         AlgorithmName(algo) + "/c:native";
      benchmark::RegisterBenchmark(
          name.c_str(),
          [data, algo, name](benchmark::State& state) {
            RunEntityMatching(state, *data, algo, /*processors=*/4, name);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace gkeys

int main(int argc, char** argv) {
  gkeys::bench::InitJson(&argc, argv);
  gkeys::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  gkeys::bench::FlushJson();
  return 0;
}
