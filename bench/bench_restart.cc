// Restart economics of the persistence subsystem: after a process dies,
// is it cheaper to reload a snapshot and resume incrementally than to
// re-compile and re-run from scratch?
//
// Methodology (held-out edges, as in bench_incremental): generate the
// full dataset, withhold a small slice of its triples as the "pending
// deltas" that arrived while the process was down, compile + run on the
// remainder, Snapshot::Save the session to a file. Then, per timed
// restart: MmapStore::Open + Snapshot::Load (timed), stage the held
// slice as a GraphDelta, Matcher::Resume (timed) — versus the cold path
// on the full post-delta graph: Matcher::Compile + Run (timed). The
// resumed pair set is verified byte-identical to the cold run's; rows
// record save/load/resume/cold times, the snapshot's size on disk, and
// the restart speedup.

#include "bench_util.h"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "graph/delta.h"
#include "io/triples.h"
#include "storage/durable_dir.h"
#include "storage/mmap_store.h"
#include "storage/recovery.h"
#include "storage/snapshot.h"

namespace gkeys {
namespace bench {
namespace {

/// Rebuilds `src` node-for-node (same NodeIds) without the triples whose
/// index is flagged in `held`.
Graph RebuildWithout(const Graph& src, const std::vector<Triple>& triples,
                     const std::vector<uint8_t>& held) {
  Graph g;
  for (NodeId n = 0; n < src.NumNodes(); ++n) {
    if (src.IsEntity(n)) {
      g.AddEntity(src.interner().Resolve(src.entity_type(n)));
    } else {
      g.AddValue(src.value_str(n));
    }
  }
  for (size_t i = 0; i < triples.size(); ++i) {
    if (held[i]) continue;
    const Triple& t = triples[i];
    g.AddTriple(t.subject, src.interner().Resolve(t.pred), t.object).IgnoreError();
  }
  g.Finalize();
  return g;
}

std::string SnapshotPath() {
  return "/tmp/gkeys_bench_restart_" + std::to_string(getpid()) + ".gks";
}

void RegisterAll() {
  for (Algorithm algo : {Algorithm::kEmOptVc, Algorithm::kEmOptMr}) {
    for (Dataset ds :
         {Dataset::kGoogle, Dataset::kDBpedia, Dataset::kSynthetic}) {
      // Scale 1 documents the crossover (tiny graphs compile in ~1ms, so
      // fixed load overhead can win); scale 4 is where restart economics
      // matter — compile grows superlinearly, load stays linear in the
      // snapshot.
      for (double scale : {1.0, 4.0}) {
      for (double frac : {0.001, 0.01}) {
        std::string name = "Restart/" + AlgorithmName(algo) + "/" +
                           DatasetName(ds) + "/x" +
                           std::to_string(static_cast<int>(scale)) +
                           "/pending_" + std::to_string(frac);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [algo, ds, frac, name, scale](benchmark::State& state) {
              SyntheticDataset data = MakeDataset(ds, scale);
              std::vector<Triple> triples;
              data.graph.ForEachTriple(
                  [&](const Triple& t) { triples.push_back(t); });
              const size_t pending = std::max<size_t>(
                  1, static_cast<size_t>(frac * triples.size()));
              Rng rng(42);
              std::vector<uint8_t> held(triples.size(), 0);
              for (size_t chosen = 0; chosen < pending;) {
                size_t pick = rng.Below(triples.size());
                if (!held[pick]) {
                  held[pick] = 1;
                  ++chosen;
                }
              }

              double save_s = 0, load_s = 0, resume_s = 0;
              double cold_ingest_s = 0, cold_compile_s = 0, cold_run_s = 0;
              double snapshot_bytes = 0;
              size_t pairs = 0;
              bool mismatch = false;
              const std::string path = SnapshotPath();
              for (auto _ : state) {
                state.PauseTiming();
                // The session that will be "killed": base graph (full
                // minus pending), compiled and run to completion.
                Graph base = RebuildWithout(data.graph, triples, held);
                auto plan = Matcher::Compile(base, data.keys,
                                             PlanOptions::For(algo, 1));
                if (!plan.ok()) {
                  state.SkipWithError(plan.status().ToString().c_str());
                  return;
                }
                Matcher matcher(algo);
                matcher.processors(1);
                auto prev = matcher.Run(*plan);
                if (!prev.ok()) {
                  state.SkipWithError(prev.status().ToString().c_str());
                  return;
                }
                state.ResumeTiming();

                Timer save_timer;
                {
                  auto store = storage::MmapStore::Create(path);
                  if (!store.ok()) {
                    state.SkipWithError(
                        store.status().ToString().c_str());
                    return;
                  }
                  Status st = storage::Snapshot::Save(
                      **store, base, data.keys, *plan, *prev, algo);
                  if (st.ok()) st = (*store)->Flush();
                  if (!st.ok()) {
                    state.SkipWithError(st.ToString().c_str());
                    return;
                  }
                  snapshot_bytes =
                      static_cast<double>((*store)->file_bytes());
                }
                save_s = save_timer.Seconds();

                // Restart path, min over a few repetitions (each one
                // reloads from disk — Resume advances the snapshot).
                constexpr int kReps = 3;
                double t_load = 1e9, t_resume = 1e9;
                std::vector<std::pair<NodeId, NodeId>> resumed_pairs;
                for (int r = 0; r < kReps; ++r) {
                  Timer load_timer;
                  auto store = storage::MmapStore::Open(path);
                  if (!store.ok()) {
                    state.SkipWithError(
                        store.status().ToString().c_str());
                    return;
                  }
                  auto snap = storage::Snapshot::Load(**store);
                  if (!snap.ok()) {
                    state.SkipWithError(
                        snap.status().ToString().c_str());
                    return;
                  }
                  t_load = std::min(t_load, load_timer.Seconds());

                  GraphDelta delta(snap->graph());
                  for (size_t i = 0; i < triples.size(); ++i) {
                    if (!held[i]) continue;
                    const Triple& t = triples[i];
                    delta.AddTriple(
                        t.subject, data.graph.interner().Resolve(t.pred),
                        t.object).IgnoreError();
                  }
                  Timer resume_timer;
                  auto resumed = matcher.Resume(*snap, delta);
                  if (!resumed.ok()) {
                    state.SkipWithError(
                        resumed.status().ToString().c_str());
                    return;
                  }
                  t_resume = std::min(t_resume, resume_timer.Seconds());
                  resumed_pairs = resumed->pairs;
                }
                load_s = t_load;
                resume_s = t_resume;

                // Cold path: a restart without a snapshot re-ingests the
                // dataset from its triples file, then compiles and runs
                // from scratch. Ingest is timed on the serialized text
                // (the parse a `gkeys match` restart pays); compile+run
                // are timed on the in-memory graph so the resumed pair
                // set can be verified byte-identical against them.
                std::string text = SerializeGraph(data.graph);
                double t_cold_ingest = 1e9;
                for (int r = 0; r < kReps; ++r) {
                  Timer ingest_timer;
                  auto ingested = DeserializeGraph(text);
                  if (!ingested.ok()) {
                    state.SkipWithError(
                        ingested.status().ToString().c_str());
                    return;
                  }
                  t_cold_ingest =
                      std::min(t_cold_ingest, ingest_timer.Seconds());
                  benchmark::DoNotOptimize(ingested->NumNodes());
                }
                cold_ingest_s = t_cold_ingest;
                double t_cold_compile = 1e9, t_cold_run = 1e9;
                StatusOr<MatchResult> cold = MatchResult();
                for (int r = 0; r < kReps; ++r) {
                  Timer compile_timer;
                  auto fresh = Matcher::Compile(data.graph, data.keys,
                                                PlanOptions::For(algo, 1));
                  if (!fresh.ok()) {
                    state.SkipWithError(
                        fresh.status().ToString().c_str());
                    return;
                  }
                  double c = compile_timer.Seconds();
                  Timer run_timer;
                  cold = matcher.Run(*fresh);
                  if (!cold.ok()) {
                    state.SkipWithError(
                        cold.status().ToString().c_str());
                    return;
                  }
                  t_cold_compile = std::min(t_cold_compile, c);
                  t_cold_run = std::min(t_cold_run, run_timer.Seconds());
                }
                cold_compile_s = t_cold_compile;
                cold_run_s = t_cold_run;
                pairs = resumed_pairs.size();
                mismatch = resumed_pairs != cold->pairs;
                benchmark::DoNotOptimize(pairs);
              }
              std::remove(path.c_str());
              if (mismatch) {
                state.SkipWithError(
                    "load+resume diverged from cold compile+run");
                return;
              }
              double restart_s = load_s + resume_s;
              double cold_s = cold_ingest_s + cold_compile_s + cold_run_s;
              state.counters["pending_triples"] =
                  static_cast<double>(pending);
              state.counters["snapshot_bytes"] = snapshot_bytes;
              state.counters["save_s"] = save_s;
              state.counters["load_s"] = load_s;
              state.counters["resume_s"] = resume_s;
              state.counters["cold_ingest_s"] = cold_ingest_s;
              state.counters["cold_compile_s"] = cold_compile_s;
              state.counters["cold_run_s"] = cold_run_s;
              state.counters["speedup"] =
                  restart_s > 0 ? cold_s / restart_s : 0;
              state.counters["pairs"] = static_cast<double>(pairs);
              JsonRow(name,
                      {{"triples", static_cast<double>(triples.size())},
                       {"scale", scale},
                       {"pending_triples", static_cast<double>(pending)},
                       {"pending_frac", frac},
                       {"snapshot_bytes", snapshot_bytes},
                       {"save_s", save_s},
                       {"load_s", load_s},
                       {"resume_s", resume_s},
                       {"restart_s", restart_s},
                       {"cold_ingest_s", cold_ingest_s},
                       {"cold_compile_s", cold_compile_s},
                       {"cold_run_s", cold_run_s},
                       {"cold_s", cold_s},
                       {"speedup", restart_s > 0 ? cold_s / restart_s : 0},
                       {"pairs", static_cast<double>(pairs)}});
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
      }
    }
  }
}

/// Crash-recovery economics: a DurableDir holding one snapshot plus a
/// write-ahead log of pending delta batches, timed through the full
/// recovery state machine (pick snapshot → replay log → apply each batch
/// through Patch + Rematch). The `recover` row is the restart row's
/// crash-safe sibling: recover_s ≈ load_s + per-batch resume cost.
void RegisterRecover() {
  for (Algorithm algo : {Algorithm::kEmOptVc, Algorithm::kEmOptMr}) {
    for (Dataset ds : {Dataset::kGoogle, Dataset::kSynthetic}) {
      for (size_t batches : {size_t{1}, size_t{8}}) {
        std::string name = "Recover/" + AlgorithmName(algo) + "/" +
                           DatasetName(ds) + "/batches_" +
                           std::to_string(batches);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [algo, ds, batches, name](benchmark::State& state) {
              SyntheticDataset data = MakeDataset(ds, 1.0);
              std::vector<Triple> triples;
              data.graph.ForEachTriple(
                  [&](const Triple& t) { triples.push_back(t); });
              // Hold out 1% of the triples as the logged batches.
              const size_t pending = std::max<size_t>(
                  batches, static_cast<size_t>(0.01 * triples.size()));
              Rng rng(42);
              std::vector<uint8_t> held(triples.size(), 0);
              for (size_t chosen = 0; chosen < pending;) {
                size_t pick = rng.Below(triples.size());
                if (!held[pick]) {
                  held[pick] = 1;
                  ++chosen;
                }
              }
              std::vector<size_t> held_idx;
              for (size_t i = 0; i < triples.size(); ++i) {
                if (held[i]) held_idx.push_back(i);
              }

              const std::string dir =
                  "/tmp/gkeys_bench_recover_" + std::to_string(getpid());
              double save_s = 0, recover_s = 0;
              size_t pairs = 0;
              for (auto _ : state) {
                state.PauseTiming();
                std::string rm = "rm -rf '" + dir + "'";
                (void)system(rm.c_str());
                Graph base = RebuildWithout(data.graph, triples, held);
                auto plan = Matcher::Compile(base, data.keys,
                                             PlanOptions::For(algo, 1));
                if (!plan.ok()) {
                  state.SkipWithError(plan.status().ToString().c_str());
                  return;
                }
                Matcher matcher(algo);
                matcher.processors(1);
                auto prev = matcher.Run(*plan);
                if (!prev.ok()) {
                  state.SkipWithError(prev.status().ToString().c_str());
                  return;
                }
                state.ResumeTiming();

                Timer save_timer;
                auto ddir = storage::DurableDir::Open(dir);
                if (!ddir.ok()) {
                  state.SkipWithError(ddir.status().ToString().c_str());
                  return;
                }
                Status st = ddir->SaveSnapshot(base, data.keys, *plan,
                                               *prev, algo);
                // The held slice, appended as `batches` binary WAL
                // records against the evolving graph (never rematched
                // here — recovery pays that).
                for (size_t b = 0; st.ok() && b < batches; ++b) {
                  GraphDelta delta(base);
                  size_t lo = b * held_idx.size() / batches;
                  size_t hi = (b + 1) * held_idx.size() / batches;
                  for (size_t k = lo; k < hi; ++k) {
                    const Triple& t = triples[held_idx[k]];
                    delta.AddTriple(
                        t.subject, data.graph.interner().Resolve(t.pred),
                        t.object).IgnoreError();
                  }
                  st = ddir->AppendDelta(delta);
                  if (st.ok()) st = base.Apply(delta).status();
                }
                if (!st.ok()) {
                  state.SkipWithError(st.ToString().c_str());
                  return;
                }
                save_s = save_timer.Seconds();

                Timer recover_timer;
                auto rec = storage::Recover(dir, matcher);
                if (!rec.ok()) {
                  state.SkipWithError(rec.status().ToString().c_str());
                  return;
                }
                recover_s = recover_timer.Seconds();
                if (rec->report.batches_replayed != batches) {
                  state.SkipWithError("recovery lost a batch");
                  return;
                }
                pairs = rec->report.pairs;
                benchmark::DoNotOptimize(pairs);
              }
              std::string rm = "rm -rf '" + dir + "'";
              (void)system(rm.c_str());
              state.counters["batches"] = static_cast<double>(batches);
              state.counters["pending_triples"] =
                  static_cast<double>(pending);
              state.counters["save_s"] = save_s;
              state.counters["recover_s"] = recover_s;
              state.counters["pairs"] = static_cast<double>(pairs);
              JsonRow(name,
                      {{"triples", static_cast<double>(triples.size())},
                       {"batches", static_cast<double>(batches)},
                       {"pending_triples", static_cast<double>(pending)},
                       {"save_s", save_s},
                       {"recover_s", recover_s},
                       {"pairs", static_cast<double>(pairs)}});
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace gkeys

int main(int argc, char** argv) {
  gkeys::bench::InitJson(&argc, argv);
  gkeys::bench::RegisterAll();
  gkeys::bench::RegisterRecover();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  gkeys::bench::FlushJson();
  return 0;
}
