// Exp-1 (paper Fig. 8(a), 8(e), 8(i)): wall time of the five algorithms
// as the number of processors p grows, on Google-, DBpedia- and
// Synthetic-like workloads with c = 2, d = 2. The paper's claim: every
// algorithm is parallel scalable (time ~ 1/p), EMVC beats EMMR, and the
// Opt variants beat their bases.

#include "bench_util.h"

namespace gkeys {
namespace bench {
namespace {

void RegisterAll() {
  for (Dataset ds :
       {Dataset::kGoogle, Dataset::kDBpedia, Dataset::kSynthetic}) {
    // Built once per (dataset); shared across algorithm registrations.
    auto data = std::make_shared<SyntheticDataset>(
        MakeDataset(ds, /*scale=*/1.0, /*c=*/2, /*d=*/2));
    for (Algorithm algo : PaperAlgorithms()) {
      for (int p : {1, 2, 4, 8}) {
        std::string name = "VaryP/" + DatasetName(ds) + "/" +
                           AlgorithmName(algo) + "/p:" + std::to_string(p);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [data, algo, p, name](benchmark::State& state) {
              RunEntityMatching(state, *data, algo, p, name);
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace gkeys

int main(int argc, char** argv) {
  gkeys::bench::InitJson(&argc, argv);
  gkeys::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  gkeys::bench::FlushJson();
  return 0;
}
