// Exp-2 (paper Fig. 8(b), 8(f), 8(j)): wall time as the graph scale
// factor grows from 0.2 to 1.0, fixing p = 4, c = 2, d = 2. All
// algorithms grow with |G|; the ranking EMOptVC < EMVC < EMOptMR < EMMR
// < EMVF2MR must be preserved at every scale.

#include "bench_util.h"

namespace gkeys {
namespace bench {
namespace {

void RegisterAll() {
  for (Dataset ds :
       {Dataset::kGoogle, Dataset::kDBpedia, Dataset::kSynthetic}) {
    for (double scale : {0.2, 0.4, 0.6, 0.8, 1.0}) {
      auto data = std::make_shared<SyntheticDataset>(
          MakeDataset(ds, scale, /*c=*/2, /*d=*/2));
      for (Algorithm algo : PaperAlgorithms()) {
        std::string name = "VarySize/" + DatasetName(ds) + "/" +
                           AlgorithmName(algo) +
                           "/scale:" + std::to_string(scale).substr(0, 3);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [data, algo, name](benchmark::State& state) {
              state.counters["triples"] =
                  static_cast<double>(data->graph.NumTriples());
              RunEntityMatching(state, *data, algo, /*processors=*/4, name);
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace gkeys

int main(int argc, char** argv) {
  gkeys::bench::InitJson(&argc, argv);
  gkeys::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  gkeys::bench::FlushJson();
  return 0;
}
