#ifndef GKEYS_WORKLOAD_JSON_H_
#define GKEYS_WORKLOAD_JSON_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace gkeys {

/// Minimal JSON reader for workload spec files (src/workload/workload.h).
/// The repo's bench artifacts only ever needed a writer
/// (common/json_writer.h); specs need the other direction. Supports the
/// full value grammar (object / array / string / number / true / false /
/// null) with `\uXXXX` escapes decoded to UTF-8; numbers are held as
/// double (spec fields are counts, seeds, and fractions — all exact in a
/// double's 53-bit mantissa). Parse errors are InvalidArgument naming the
/// 1-based line.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number() const { return number_; }
  const std::string& string() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  /// Object members in document order (specs are small; lookup is linear).
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const {
    for (const auto& [k, v] : members_) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  // ---- Typed spec-field helpers (defaults when absent) -----------------
  double NumberOr(std::string_view key, double fallback) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->is_number() ? v->number() : fallback;
  }
  bool BoolOr(std::string_view key, bool fallback) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->is_bool() ? v->bool_value() : fallback;
  }
  std::string StringOr(std::string_view key, std::string fallback) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->is_string() ? v->string() : std::move(fallback);
  }

 private:
  friend class JsonParser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses one JSON document (trailing whitespace allowed, trailing
/// content rejected).
StatusOr<JsonValue> ParseJson(std::string_view text);

}  // namespace gkeys

#endif  // GKEYS_WORKLOAD_JSON_H_
