#include "workload/json.h"

#include <cctype>
#include <cstdlib>

namespace gkeys {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    JsonValue v;
    GKEYS_RETURN_IF_ERROR(ParseValue(&v));
    SkipWs();
    if (pos_ != text_.size()) return Error("trailing content after document");
    return v;
  }

 private:
  Status Error(const std::string& what) {
    return Status::InvalidArgument("JSON parse error at line " +
                                   std::to_string(line_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') ++line_;
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"': {
        out->kind_ = JsonValue::Kind::kString;
        return ParseString(&out->string_);
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          out->kind_ = JsonValue::Kind::kBool;
          out->bool_ = true;
          return Status::OK();
        }
        return Error("invalid literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          out->kind_ = JsonValue::Kind::kBool;
          out->bool_ = false;
          return Status::OK();
        }
        return Error("invalid literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          out->kind_ = JsonValue::Kind::kNull;
          return Status::OK();
        }
        return Error("invalid literal");
      default: return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out) {
    ++pos_;  // '{'
    out->kind_ = JsonValue::Kind::kObject;
    SkipWs();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      std::string key;
      GKEYS_RETURN_IF_ERROR(ParseString(&key));
      SkipWs();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue member;
      GKEYS_RETURN_IF_ERROR(ParseValue(&member));
      out->members_.emplace_back(std::move(key), std::move(member));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out) {
    ++pos_;  // '['
    out->kind_ = JsonValue::Kind::kArray;
    SkipWs();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue element;
      GKEYS_RETURN_IF_ERROR(ParseValue(&element));
      out->array_.push_back(std::move(element));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c == '\n') return Error("unescaped newline in string");
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("invalid \\u escape");
          }
          // UTF-8 encode (surrogate pairs are passed through unpaired —
          // spec files never need them).
          if (cp < 0x80) {
            out->push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: return Error("invalid escape sequence");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Error("malformed number '" + token + "'");
    }
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_ = v;
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
};

StatusOr<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace gkeys
