#include "workload/workload.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <utility>

#include "core/match_plan.h"
#include "gen/datasets.h"
#include "io/triples.h"

namespace gkeys {

namespace {

constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kNaiveChase, Algorithm::kEmMr,  Algorithm::kEmVf2Mr,
    Algorithm::kEmOptMr,    Algorithm::kEmVc,  Algorithm::kEmOptVc,
};

StatusOr<Algorithm> AlgorithmByName(const std::string& name) {
  for (Algorithm a : kAllAlgorithms) {
    if (AlgorithmName(a) == name) return a;
  }
  return Status::InvalidArgument(
      "unknown algorithm '" + name +
      "' (expected NaiveChase, EMMR, EMVF2MR, EMOptMR, EMVC, or EMOptVC)");
}

std::string RowName(const WorkloadSpec& spec, Algorithm a, int rep) {
  return spec.name + "/" + AlgorithmName(a) + "/rep" + std::to_string(rep);
}

/// The standard bench field layout (bench/bench_util.h JsonMatchRow) so
/// workload rows land in the same BENCH_*.json trajectory.
std::vector<std::pair<std::string, double>> FullRunFields(
    const Graph& g, const EmStats& s) {
  return {
      {"nodes", static_cast<double>(g.NumNodes())},
      {"triples", static_cast<double>(g.NumTriples())},
      {"prep_s", s.prep_seconds},
      {"run_s", s.run_seconds},
      {"pairs", static_cast<double>(s.confirmed)},
      {"candidates_initial", static_cast<double>(s.candidates_initial)},
      {"candidates_blocked", static_cast<double>(s.candidates_blocked)},
      {"candidates", static_cast<double>(s.candidates)},
      {"rounds", static_cast<double>(s.rounds)},
      {"iso_checks", static_cast<double>(s.iso_checks)},
      {"messages", static_cast<double>(s.messages)},
      {"plan_bytes", static_cast<double>(s.plan_bytes)},
  };
}

std::vector<std::pair<std::string, double>> DeltaBatchFields(
    int batch, size_t added, size_t removed, double patch_s,
    size_t dirty_candidates, const MatchResult& r) {
  const EmStats& s = r.stats;
  return {
      {"batch", static_cast<double>(batch)},
      {"added", static_cast<double>(added)},
      {"removed", static_cast<double>(removed)},
      {"patch_s", patch_s},
      {"run_s", s.run_seconds},
      {"pairs", static_cast<double>(r.pairs.size())},
      {"dirty_candidates", static_cast<double>(dirty_candidates)},
      {"seeded", static_cast<double>(s.rematch_seeded)},
      {"fallback", static_cast<double>(s.rematch_fallback)},
      {"derivations_retracted",
       static_cast<double>(s.derivations_retracted)},
      {"pairs_retracted", static_cast<double>(s.pairs_retracted)},
      {"iso_checks", static_cast<double>(s.iso_checks)},
      {"messages", static_cast<double>(s.messages)},
  };
}

}  // namespace

StatusOr<WorkloadSpec> ParseWorkloadSpec(std::string_view json_text) {
  StatusOr<JsonValue> doc = ParseJson(json_text);
  if (!doc.ok()) return doc.status();
  if (!doc->is_object()) {
    return Status::InvalidArgument("workload spec must be a JSON object");
  }

  WorkloadSpec spec;
  spec.name = doc->StringOr("name", "");
  if (spec.name.empty()) {
    return Status::InvalidArgument("workload spec requires a \"name\"");
  }
  spec.seed = static_cast<uint64_t>(doc->NumberOr("seed", 42));
  spec.repetitions =
      std::max(1, static_cast<int>(doc->NumberOr("repetitions", 1)));
  spec.processors =
      std::max(1, static_cast<int>(doc->NumberOr("processors", 2)));
  spec.oracle = doc->BoolOr("oracle", true);

  std::string mode = doc->StringOr("rematch_mode", "auto");
  if (mode == "auto") {
    spec.rematch_mode = RematchOptions::Mode::kAuto;
  } else if (mode == "seed") {
    spec.rematch_mode = RematchOptions::Mode::kForceSeed;
  } else if (mode == "full") {
    spec.rematch_mode = RematchOptions::Mode::kForceFull;
  } else {
    return Status::InvalidArgument("rematch_mode must be auto, seed, or full");
  }

  const JsonValue* algos = doc->Find("algorithms");
  if (algos == nullptr || (algos->is_string() && algos->string() == "all")) {
    spec.algorithms.assign(std::begin(kAllAlgorithms),
                           std::end(kAllAlgorithms));
  } else if (algos->is_array() && !algos->array().empty()) {
    for (const JsonValue& v : algos->array()) {
      if (!v.is_string()) {
        return Status::InvalidArgument(
            "\"algorithms\" must be \"all\" or an array of names");
      }
      StatusOr<Algorithm> a = AlgorithmByName(v.string());
      if (!a.ok()) return a.status();
      spec.algorithms.push_back(*a);
    }
  } else {
    return Status::InvalidArgument(
        "\"algorithms\" must be \"all\" or a non-empty array of names");
  }

  const JsonValue* dataset = doc->Find("dataset");
  if (dataset == nullptr || !dataset->is_object()) {
    return Status::InvalidArgument(
        "workload spec requires a \"dataset\" object");
  }
  spec.generator = dataset->StringOr("generator", "");
  spec.scale = dataset->NumberOr("scale", 1.0);
  spec.dataset_params = *dataset;
  // Validate the generator name now, not at run time.
  {
    WorkloadSpec probe = spec;
    probe.scale = 0.01;  // tiny: the build itself validates the name
    StatusOr<SyntheticDataset> ds = BuildWorkloadDataset(probe);
    if (!ds.ok()) return ds.status();
  }

  const JsonValue* deltas = doc->Find("deltas");
  if (deltas != nullptr) {
    if (!deltas->is_object()) {
      return Status::InvalidArgument("\"deltas\" must be an object");
    }
    spec.delta_kind = deltas->StringOr("kind", "uniform");
    spec.delta_batches =
        std::max(0, static_cast<int>(deltas->NumberOr("batches", 4)));
    DeltaGenConfig& dc = spec.delta_config;
    dc.seed = static_cast<uint64_t>(
        deltas->NumberOr("seed", static_cast<double>(spec.seed + 1)));
    dc.ops_per_batch =
        static_cast<size_t>(deltas->NumberOr("ops_per_batch", 8));
    dc.remove_fraction = deltas->NumberOr("remove_fraction", 0.4);
    dc.hub_fraction = deltas->NumberOr("hub_fraction", 0.05);
    dc.churn_repeats =
        std::max(1, static_cast<int>(deltas->NumberOr("churn_repeats", 2)));
    StatusOr<std::unique_ptr<DeltaGenerator>> probe =
        MakeDeltaGenerator(spec.delta_kind, dc);
    if (!probe.ok()) return probe.status();
  }
  return spec;
}

StatusOr<WorkloadSpec> LoadWorkloadSpec(const std::string& path) {
  StatusOr<std::string> text = ReadFile(path);
  if (!text.ok()) return text.status();
  return ParseWorkloadSpec(*text);
}

StatusOr<SyntheticDataset> BuildWorkloadDataset(const WorkloadSpec& spec) {
  const JsonValue& d = spec.dataset_params;
  auto geti = [&](std::string_view key, int fallback) {
    return static_cast<int>(d.NumberOr(key, fallback));
  };
  if (spec.generator == "synthetic") {
    SyntheticConfig c;
    c.seed = spec.seed;
    c.scale = spec.scale;
    c.num_groups = geti("num_groups", c.num_groups);
    c.chain_length = geti("chain_length", c.chain_length);
    c.radius = geti("radius", c.radius);
    c.entities_per_type = geti("entities_per_type", c.entities_per_type);
    c.duplicate_fraction =
        d.NumberOr("duplicate_fraction", c.duplicate_fraction);
    c.chained_fraction = d.NumberOr("chained_fraction", c.chained_fraction);
    c.noise_edges_per_entity =
        geti("noise_edges_per_entity", c.noise_edges_per_entity);
    c.noise_predicates = geti("noise_predicates", c.noise_predicates);
    return GenerateSynthetic(c);
  }
  if (spec.generator == "google") {
    GoogleSimConfig c;
    c.seed = spec.seed;
    c.scale = spec.scale;
    c.num_persons = geti("num_persons", c.num_persons);
    c.num_employers = geti("num_employers", c.num_employers);
    c.num_universities = geti("num_universities", c.num_universities);
    c.num_places = geti("num_places", c.num_places);
    c.num_majors = geti("num_majors", c.num_majors);
    c.duplicate_pairs = geti("duplicate_pairs", c.duplicate_pairs);
    return GenerateGoogleSim(c);
  }
  if (spec.generator == "dbpedia") {
    DBpediaSimConfig c;
    c.seed = spec.seed;
    c.scale = spec.scale;
    c.num_artists = geti("num_artists", c.num_artists);
    c.num_albums = geti("num_albums", c.num_albums);
    c.num_companies = geti("num_companies", c.num_companies);
    c.num_books = geti("num_books", c.num_books);
    c.num_locations = geti("num_locations", c.num_locations);
    c.num_streets = geti("num_streets", c.num_streets);
    c.duplicate_pairs = geti("duplicate_pairs", c.duplicate_pairs);
    return GenerateDBpediaSim(c);
  }
  if (spec.generator == "powerlaw") {
    PowerLawConfig c;
    c.seed = spec.seed;
    c.scale = spec.scale;
    c.num_hubs = geti("num_hubs", c.num_hubs);
    c.num_leaves = geti("num_leaves", c.num_leaves);
    c.alpha = d.NumberOr("alpha", c.alpha);
    c.hub_dup_pairs = geti("hub_dup_pairs", c.hub_dup_pairs);
    c.leaf_dup_pairs = geti("leaf_dup_pairs", c.leaf_dup_pairs);
    c.chained_fraction = d.NumberOr("chained_fraction", c.chained_fraction);
    c.follows_per_leaf = geti("follows_per_leaf", c.follows_per_leaf);
    return GeneratePowerLaw(c);
  }
  if (spec.generator == "skew") {
    SkewedSelectivityConfig c;
    c.seed = spec.seed;
    c.scale = spec.scale;
    c.num_items = geti("num_items", c.num_items);
    c.hot_fraction = d.NumberOr("hot_fraction", c.hot_fraction);
    c.dup_pairs = geti("dup_pairs", c.dup_pairs);
    c.chained_fraction = d.NumberOr("chained_fraction", c.chained_fraction);
    return GenerateSkewedSelectivity(c);
  }
  if (spec.generator == "neardup") {
    NearDuplicateConfig c;
    c.seed = spec.seed;
    c.scale = spec.scale;
    c.num_clusters = geti("num_clusters", c.num_clusters);
    c.cluster_size = geti("cluster_size", c.cluster_size);
    return GenerateNearDuplicates(c);
  }
  return Status::InvalidArgument(
      "unknown dataset generator '" + spec.generator +
      "' (expected synthetic, google, dbpedia, powerlaw, skew, or neardup)");
}

StatusOr<WorkloadReport> RunWorkload(const WorkloadSpec& spec,
                                     const WorkloadRunOptions& opts) {
  WorkloadReport report;
  const bool oracle = spec.oracle && !opts.disable_oracle;
  const int p = opts.processors > 0 ? opts.processors : spec.processors;
  if (spec.algorithms.empty()) {
    return Status::InvalidArgument("workload spec lists no algorithms");
  }

  for (int rep = 0; rep < spec.repetitions; ++rep) {
    StatusOr<SyntheticDataset> ds = BuildWorkloadDataset(spec);
    if (!ds.ok()) return ds.status();

    // One independent session per algorithm: its own graph copy (Apply
    // mutates), plan chain, result chain, and delta stream. The streams
    // are identical across sessions (same generator seed over the same
    // graph evolution), which is what makes the cross-algorithm
    // comparison differential.
    struct Session {
      Algorithm algo;
      Graph g;
      MatchPlan plan;
      MatchResult res;
      std::unique_ptr<DeltaGenerator> gen;
    };
    std::vector<std::unique_ptr<Session>> sessions;

    for (Algorithm a : spec.algorithms) {
      auto s = std::make_unique<Session>();
      s->algo = a;
      s->g = ds->graph;
      StatusOr<MatchPlan> plan =
          Matcher::Compile(s->g, ds->keys, PlanOptions::For(a, p));
      if (!plan.ok()) return plan.status();
      s->plan = std::move(*plan);
      Matcher m(a);
      m.processors(p);
      StatusOr<MatchResult> r = m.Run(s->plan);
      if (!r.ok()) return r.status();
      s->res = std::move(*r);
      report.rows.emplace_back(RowName(spec, a, rep),
                               FullRunFields(s->g, s->res.stats));
      sessions.push_back(std::move(s));
    }

    if (oracle) {
      for (const auto& s : sessions) {
        if (s->res.pairs != ds->planted) {
          return Status::DataLoss(
              "differential oracle: " + AlgorithmName(s->algo) + " found " +
              std::to_string(s->res.pairs.size()) + " pairs but the planted "
              "ground truth has " + std::to_string(ds->planted.size()) +
              " (spec '" + spec.name + "', full run)");
        }
        ++report.oracle_checks;
      }
    }
    {
      char line[160];
      std::snprintf(line, sizeof line,
                    "rep%d full: %zu algorithms, %zu pairs%s", rep,
                    sessions.size(), sessions[0]->res.pairs.size(),
                    oracle ? ", oracle ok" : "");
      report.log.emplace_back(line);
    }

    if (!spec.delta_kind.empty() && spec.delta_batches > 0) {
      for (auto& s : sessions) {
        StatusOr<std::unique_ptr<DeltaGenerator>> gen =
            MakeDeltaGenerator(spec.delta_kind, spec.delta_config);
        if (!gen.ok()) return gen.status();
        s->gen = std::move(*gen);
      }
      for (int k = 0; k < spec.delta_batches; ++k) {
        for (auto& s : sessions) {
          GraphDelta delta = s->gen->Next(s->g);
          size_t added = delta.num_added_triples();
          size_t removed = delta.num_removed_triples();
          StatusOr<std::vector<NodeId>> dirty = s->g.Apply(delta);
          if (!dirty.ok()) return dirty.status();
          StatusOr<MatchPlan> patched = s->plan.Patch(delta);
          if (!patched.ok()) return patched.status();
          Matcher m(s->algo);
          m.processors(p).rematch_mode(spec.rematch_mode);
          StatusOr<MatchResult> r = m.Rematch(*patched, s->res, delta);
          if (!r.ok()) return r.status();
          double patch_s = patched->compile_seconds();
          size_t dirty_candidates = patched->dirty_candidates().size();
          s->plan = std::move(*patched);
          s->res = std::move(*r);
          report.rows.emplace_back(
              RowName(spec, s->algo, rep) + "/delta" + std::to_string(k),
              DeltaBatchFields(k, added, removed, patch_s, dirty_candidates,
                               s->res));
        }
        if (oracle) {
          // Cross-algorithm: every session's pair list byte-identical.
          for (size_t i = 1; i < sessions.size(); ++i) {
            if (sessions[i]->res.pairs != sessions[0]->res.pairs) {
              return Status::DataLoss(
                  "differential oracle: " +
                  AlgorithmName(sessions[i]->algo) + " diverged from " +
                  AlgorithmName(sessions[0]->algo) + " after delta batch " +
                  std::to_string(k) + " (spec '" + spec.name + "')");
            }
            ++report.oracle_checks;
          }
          // Incremental == from-scratch: a fresh Compile + Run on the
          // evolved graph must reproduce the rematch chain exactly.
          Session& s0 = *sessions[0];
          StatusOr<MatchPlan> scratch_plan = Matcher::Compile(
              s0.g, ds->keys, PlanOptions::For(s0.algo, p));
          if (!scratch_plan.ok()) return scratch_plan.status();
          Matcher m(s0.algo);
          m.processors(p);
          StatusOr<MatchResult> scratch = m.Run(*scratch_plan);
          if (!scratch.ok()) return scratch.status();
          if (scratch->pairs != s0.res.pairs) {
            return Status::DataLoss(
                "differential oracle: seeded rematch diverged from a "
                "from-scratch run after delta batch " + std::to_string(k) +
                " (spec '" + spec.name + "', " + AlgorithmName(s0.algo) +
                ")");
          }
          ++report.oracle_checks;
        }
        {
          char line[160];
          std::snprintf(line, sizeof line,
                        "rep%d delta%d: %zu pairs, %zu retracted%s", rep, k,
                        sessions[0]->res.pairs.size(),
                        sessions[0]->res.stats.pairs_retracted,
                        oracle ? ", oracle ok" : "");
          report.log.emplace_back(line);
        }
      }
    }
    report.final_pairs = sessions[0]->res.pairs.size();
  }
  return report;
}

}  // namespace gkeys
