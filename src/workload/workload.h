#ifndef GKEYS_WORKLOAD_WORKLOAD_H_
#define GKEYS_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/json_writer.h"
#include "common/status.h"
#include "core/matcher.h"
#include "gen/hostile.h"
#include "gen/synthetic.h"
#include "workload/json.h"

namespace gkeys {

/// Declarative workload specs: one JSON file reproduces one experiment
/// exactly (dataset or generator, key set, delta distribution,
/// algorithms, scale, repetitions, seed), FESTIval-style. The harness
/// (RunWorkload) drives the full session surface — Compile → Run, then
/// per delta batch Apply → Patch → Rematch — and double-checks every run
/// with a built-in differential oracle:
///
///   * all algorithms under test produce byte-identical pair lists,
///   * the full run matches the generator's planted ground truth
///     (the generators guarantee planted == chase(G, Σ)), and
///   * after every delta batch, the seeded Rematch chain is byte-
///     identical to a from-scratch Compile → Run on the current graph —
///     including removal/churn batches, which exercise DRed retraction.
///
/// Results are emitted as the standard bench JSON rows
/// (common/json_writer.h), so workload runs land in the same BENCH_*.json
/// trajectory CI archives, and tools/perf_gate.py can diff them against
/// committed baselines.
///
/// Spec schema (all fields optional unless noted):
///
///   {
///     "name": "hostile_powerlaw_churn",      // row-name prefix (required)
///     "seed": 42,                            // master seed, default 42
///     "repetitions": 1,                      // timing reps, same seed
///     "processors": 2,
///     "algorithms": "all" | ["EMOptMR", ...],// default "all" (six)
///     "rematch_mode": "auto"|"seed"|"full",  // default "auto"
///     "oracle": true,
///     "dataset": {
///       "generator": "synthetic" | "google" | "dbpedia" |
///                    "powerlaw" | "skew" | "neardup",   // required
///       "scale": 1.0,
///       ... per-generator fields, named after the config struct members
///       (gen/synthetic.h, gen/datasets.h, gen/hostile.h), e.g.
///       "num_leaves": 200, "alpha": 1.4, "hot_fraction": 0.6 ...
///     },
///     "deltas": {                            // absent = no delta phase
///       "kind": "uniform" | "hub" | "churn",
///       "batches": 6,
///       "ops_per_batch": 8,
///       "remove_fraction": 0.4,
///       "hub_fraction": 0.05,
///       "churn_repeats": 2,
///       "seed": 43                           // default spec seed + 1
///     }
///   }
struct WorkloadSpec {
  std::string name;
  uint64_t seed = 42;
  int repetitions = 1;
  int processors = 2;
  std::vector<Algorithm> algorithms;
  RematchOptions::Mode rematch_mode = RematchOptions::Mode::kAuto;
  bool oracle = true;

  std::string generator;
  double scale = 1.0;
  /// The raw "dataset" object: per-generator fields are read from it at
  /// dataset-build time so each generator keeps its own defaults.
  JsonValue dataset_params;

  std::string delta_kind;  // empty = no delta phase
  int delta_batches = 0;
  DeltaGenConfig delta_config;
};

/// Parses a spec document. InvalidArgument on schema violations (unknown
/// generator / algorithm / delta kind, missing name, bad JSON).
StatusOr<WorkloadSpec> ParseWorkloadSpec(std::string_view json_text);

/// ReadFile + ParseWorkloadSpec.
StatusOr<WorkloadSpec> LoadWorkloadSpec(const std::string& path);

/// Builds the spec's dataset (graph + keys + planted ground truth).
/// Deterministic in the spec.
StatusOr<SyntheticDataset> BuildWorkloadDataset(const WorkloadSpec& spec);

/// Execution knobs the CLI layers on top of a spec.
struct WorkloadRunOptions {
  /// Force the oracle off (spec default is on): skips every differential
  /// check, including the per-batch from-scratch runs — for timing-only
  /// sweeps over large scales.
  bool disable_oracle = false;
  /// Overrides spec.processors when > 0.
  int processors = 0;
};

/// One run's outcome.
struct WorkloadReport {
  /// One row per (rep, algorithm) full run plus one per (rep, algorithm,
  /// batch); names are "<spec>/<algo>/rep<r>[/delta<k>]". Field values
  /// ending in "_s" are timings; everything else is deterministic given
  /// the spec (the rerun-bit-identical test pins this).
  JsonRows rows;
  /// Differential comparisons performed (0 with the oracle off).
  size_t oracle_checks = 0;
  /// Final pair count per algorithm session (all equal when the oracle
  /// passed).
  size_t final_pairs = 0;
  /// Human-readable progress lines for the CLI.
  std::vector<std::string> log;
};

/// Runs the spec end to end. Returns the report, or the first error —
/// an engine Status, or DataLoss when a differential-oracle comparison
/// fails (the message names the diverging algorithm and stage).
StatusOr<WorkloadReport> RunWorkload(const WorkloadSpec& spec,
                                     const WorkloadRunOptions& opts = {});

}  // namespace gkeys

#endif  // GKEYS_WORKLOAD_WORKLOAD_H_
