#ifndef GKEYS_IO_TRIPLES_H_
#define GKEYS_IO_TRIPLES_H_

#include <string>
#include <string_view>
#include <unordered_map>

#include "common/status.h"
#include "graph/delta.h"
#include "graph/graph.h"

namespace gkeys {

/// Text serialization of a graph, one triple per line in an N-Triples-like
/// format:
///
///     ent:<type>:<local-id> <predicate> ent:<type>:<local-id>
///     ent:<type>:<local-id> <predicate> val:"literal"
///
/// Local ids are per-type counters assigned at save time; loading assigns
/// fresh NodeIds but preserves structure, types, predicates, and values
/// (round-trip is isomorphism, verified by tests). Quotes and backslashes
/// inside literals are backslash-escaped.
std::string SerializeGraph(const Graph& g);

/// Parses the format above into a finalized graph.
StatusOr<Graph> DeserializeGraph(std::string_view text);

/// A loaded graph together with the entity-reference table: every
/// `ent:<type>:<id>` token of the source text mapped to the NodeId it
/// was materialized as. Deltas resolve entity references through this
/// table (token identity — exactly how DeserializeGraph bound them),
/// never by re-deriving ids from the graph.
struct LoadedGraph {
  Graph graph;
  std::unordered_map<std::string, NodeId> entities;
};

/// Like DeserializeGraph, but keeps the entity-reference table so deltas
/// can be parsed against the result.
StatusOr<LoadedGraph> DeserializeGraphWithNames(std::string_view text);

/// File convenience wrappers.
Status SaveGraph(const Graph& g, const std::string& path);
StatusOr<Graph> LoadGraph(const std::string& path);
StatusOr<LoadedGraph> LoadGraphWithNames(const std::string& path);

/// Slurps a whole file (keys DSL, delta files, …). IoError on open or
/// read failure.
StatusOr<std::string> ReadFile(const std::string& path);

/// Parses a delta file against a loaded graph (gkeys match --delta). One
/// op per line:
///
///     + ent:<type>:<id> <predicate> ent:<type>:<id>
///     + ent:<type>:<id> <predicate> val:"literal"
///     - ent:<type>:<id> <predicate> val:"literal"
///
/// Entity references resolve by token identity against `lg.entities` —
/// the same binding DeserializeGraph used for the graph file itself. An
/// addition referencing an UNSEEN `ent:` token stages a fresh entity of
/// that type (ids are free-form strings, as in graph files); removals
/// must reference known nodes. Blank lines and `#` comments are
/// skipped. Malformed lines are InvalidArgument naming the line number.
StatusOr<GraphDelta> ParseDelta(std::string_view text, const LoadedGraph& lg);

/// Same, against a graph and entity-reference table held separately —
/// e.g. a restored storage::Snapshot, which owns its graph and carries
/// the saved ent-token table (Snapshot::entity_names). When
/// `new_bindings` is non-null, every ent: token this delta introduced is
/// recorded there (token → staged NodeId) so the caller can extend its
/// table and parse subsequent delta texts against the evolving session —
/// the write-ahead-log replay path (storage/recovery.h) depends on this.
StatusOr<GraphDelta> ParseDelta(
    std::string_view text, const Graph& g,
    const std::unordered_map<std::string, NodeId>& base_entities,
    std::unordered_map<std::string, NodeId>* new_bindings = nullptr);

}  // namespace gkeys

#endif  // GKEYS_IO_TRIPLES_H_
