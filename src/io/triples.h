#ifndef GKEYS_IO_TRIPLES_H_
#define GKEYS_IO_TRIPLES_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "graph/graph.h"

namespace gkeys {

/// Text serialization of a graph, one triple per line in an N-Triples-like
/// format:
///
///     ent:<type>:<local-id> <predicate> ent:<type>:<local-id>
///     ent:<type>:<local-id> <predicate> val:"literal"
///
/// Local ids are per-type counters assigned at save time; loading assigns
/// fresh NodeIds but preserves structure, types, predicates, and values
/// (round-trip is isomorphism, verified by tests). Quotes and backslashes
/// inside literals are backslash-escaped.
std::string SerializeGraph(const Graph& g);

/// Parses the format above into a finalized graph.
StatusOr<Graph> DeserializeGraph(std::string_view text);

/// File convenience wrappers.
Status SaveGraph(const Graph& g, const std::string& path);
StatusOr<Graph> LoadGraph(const std::string& path);

}  // namespace gkeys

#endif  // GKEYS_IO_TRIPLES_H_
