#include "io/triples.h"

#include <fstream>
#include <sstream>
#include <unordered_map>

namespace gkeys {

namespace {

/// Extracts the line starting at `pos` and advances `pos` past its
/// newline. A trailing '\r' is stripped so CRLF files parse identically
/// to LF files, and the final line needs no trailing newline — both
/// guaranteed to match the chunked fast path (io/fast_triples.cc), which
/// splits lines the same way.
std::string_view NextLine(std::string_view text, size_t& pos) {
  size_t nl = text.find('\n', pos);
  std::string_view line = text.substr(
      pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
  pos = nl == std::string_view::npos ? text.size() : nl + 1;
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

std::string EscapeLiteral(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Renders a node reference. Entities carry a per-type local id so the
/// format is stable under NodeId renumbering.
std::string NodeRef(const Graph& g, NodeId n,
                    const std::unordered_map<NodeId, size_t>& local_ids) {
  if (g.IsValue(n)) return "val:\"" + EscapeLiteral(g.value_str(n)) + "\"";
  return "ent:" + g.interner().Resolve(g.entity_type(n)) + ":" +
         std::to_string(local_ids.at(n));
}

/// Parses a node reference, creating the node on first sight.
StatusOr<NodeId> ParseRef(std::string_view token, Graph& g,
                          std::unordered_map<std::string, NodeId>& entities,
                          int line_no) {
  auto err = [line_no](std::string msg) {
    return Status::ParseError("line " + std::to_string(line_no) + ": " +
                              std::move(msg));
  };
  if (token.rfind("val:\"", 0) == 0) {
    if (token.size() < 6 || token.back() != '"') {
      return err("malformed value literal");
    }
    std::string_view body = token.substr(5, token.size() - 6);
    std::string literal;
    for (size_t i = 0; i < body.size(); ++i) {
      if (body[i] == '\\' && i + 1 < body.size()) ++i;
      literal.push_back(body[i]);
    }
    return g.AddValue(literal);
  }
  if (token.rfind("ent:", 0) == 0) {
    size_t colon = token.rfind(':');
    if (colon == 3) return err("entity reference needs a type and an id");
    std::string key(token);
    auto it = entities.find(key);
    if (it != entities.end()) return it->second;
    std::string type(token.substr(4, colon - 4));
    if (type.empty()) return err("empty entity type");
    NodeId id = g.AddEntity(type);
    entities.emplace(std::move(key), id);
    return id;
  }
  return err("node reference must start with ent: or val:");
}

}  // namespace

std::string SerializeGraph(const Graph& g) {
  // Assign per-type local ids in NodeId order for determinism.
  std::unordered_map<NodeId, size_t> local_ids;
  std::unordered_map<Symbol, size_t> counters;
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    if (g.IsEntity(n)) local_ids[n] = counters[g.entity_type(n)]++;
  }
  std::ostringstream out;
  g.ForEachTriple([&](const Triple& t) {
    out << NodeRef(g, t.subject, local_ids) << ' '
        << g.interner().Resolve(t.pred) << ' '
        << NodeRef(g, t.object, local_ids) << '\n';
  });
  // Isolated entities (no triples) still need a line to survive the
  // round-trip; emit them with the reserved predicate `@exists`.
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    if (g.IsEntity(n) && g.OutDegree(n) == 0 && g.InDegree(n) == 0) {
      out << NodeRef(g, n, local_ids) << " @exists val:\"\"\n";
    }
  }
  return out.str();
}

StatusOr<Graph> DeserializeGraph(std::string_view text) {
  auto loaded = DeserializeGraphWithNames(text);
  if (!loaded.ok()) return loaded.status();
  return std::move(loaded->graph);
}

StatusOr<LoadedGraph> DeserializeGraphWithNames(std::string_view text) {
  Graph g;
  std::unordered_map<std::string, NodeId> entities;
  int line_no = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    std::string_view line = NextLine(text, pos);
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    // Split into exactly 3 space-separated fields; the literal may contain
    // spaces, so split on the first two spaces only.
    size_t sp1 = line.find(' ');
    if (sp1 == std::string_view::npos) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": expected 3 fields");
    }
    size_t sp2 = line.find(' ', sp1 + 1);
    if (sp2 == std::string_view::npos) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": expected 3 fields");
    }
    std::string_view subj = line.substr(0, sp1);
    std::string_view pred = line.substr(sp1 + 1, sp2 - sp1 - 1);
    std::string_view obj = line.substr(sp2 + 1);
    auto s = ParseRef(subj, g, entities, line_no);
    if (!s.ok()) return s.status();
    if (pred == "@exists") continue;  // node-existence marker only
    auto o = ParseRef(obj, g, entities, line_no);
    if (!o.ok()) return o.status();
    GKEYS_RETURN_IF_ERROR(g.AddTriple(*s, pred, *o));
  }
  g.Finalize();
  return LoadedGraph{std::move(g), std::move(entities)};
}

Status SaveGraph(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << SerializeGraph(g);
  return out.good() ? Status::OK()
                    : Status::IoError("write failed: " + path);
}

StatusOr<Graph> LoadGraph(const std::string& path) {
  auto loaded = LoadGraphWithNames(path);
  if (!loaded.ok()) return loaded.status();
  return std::move(loaded->graph);
}

StatusOr<LoadedGraph> LoadGraphWithNames(const std::string& path) {
  auto text = ReadFile(path);
  if (!text.ok()) return text.status();
  return DeserializeGraphWithNames(*text);
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed: " + path);
  return buf.str();
}

StatusOr<GraphDelta> ParseDelta(std::string_view text,
                                const LoadedGraph& lg) {
  return ParseDelta(text, lg.graph, lg.entities);
}

StatusOr<GraphDelta> ParseDelta(
    std::string_view text, const Graph& g,
    const std::unordered_map<std::string, NodeId>& base_entities,
    std::unordered_map<std::string, NodeId>* new_bindings) {
  GraphDelta delta(g);
  // Entity tokens resolve by identity against the loader's table, plus
  // whatever this delta stages — NEVER by re-deriving ids from the
  // graph, which would re-bind tokens differently than the graph file
  // they came from.
  std::unordered_map<std::string, NodeId> entities = base_entities;

  int line_no = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    std::string_view line = NextLine(text, pos);
    ++line_no;
    auto err = [line_no](std::string msg) {
      return Status::InvalidArgument("delta line " + std::to_string(line_no) +
                                     ": " + std::move(msg));
    };
    if (line.empty() || line[0] == '#') continue;
    if (line.size() < 2 || (line[0] != '+' && line[0] != '-') ||
        line[1] != ' ') {
      return err("expected '+ <triple>' or '- <triple>'");
    }
    bool adding = line[0] == '+';
    std::string_view body = line.substr(2);
    size_t sp1 = body.find(' ');
    size_t sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                               : body.find(' ', sp1 + 1);
    if (sp2 == std::string_view::npos) {
      return err("expected 3 fields: subject predicate object");
    }
    std::string_view subj = body.substr(0, sp1);
    std::string_view pred = body.substr(sp1 + 1, sp2 - sp1 - 1);
    std::string_view obj = body.substr(sp2 + 1);
    if (pred.empty()) return err("empty predicate");

    auto resolve = [&](std::string_view token,
                       bool allow_new) -> StatusOr<NodeId> {
      if (token.rfind("val:\"", 0) == 0) {
        if (token.size() < 6 || token.back() != '"') {
          return err("malformed value literal '" + std::string(token) + "'");
        }
        std::string_view raw = token.substr(5, token.size() - 6);
        std::string literal;
        for (size_t i = 0; i < raw.size(); ++i) {
          if (raw[i] == '\\' && i + 1 < raw.size()) ++i;
          literal.push_back(raw[i]);
        }
        if (!allow_new) {
          NodeId v = g.FindValue(literal);
          if (v == kNoNode) {
            return err("removal references unknown value \"" + literal +
                       "\"");
          }
          return v;
        }
        return delta.AddValue(literal);
      }
      if (token.rfind("ent:", 0) != 0) {
        return err("node reference must start with ent: or val:, got '" +
                   std::string(token) + "'");
      }
      size_t colon = token.rfind(':');
      if (colon <= 4 || colon + 1 >= token.size()) {
        return err("entity reference needs a type and an id");
      }
      std::string key(token);
      auto it = entities.find(key);
      if (it != entities.end()) return it->second;
      if (!allow_new) {
        return err("removal references unknown entity " + key);
      }
      std::string type(token.substr(4, colon - 4));
      NodeId id = delta.AddEntity(type);
      if (new_bindings != nullptr) (*new_bindings)[key] = id;
      entities.emplace(std::move(key), id);
      return id;
    };

    auto s = resolve(subj, adding);
    if (!s.ok()) return s.status();
    auto o = resolve(obj, adding);
    if (!o.ok()) return o.status();
    Status st = adding ? delta.AddTriple(*s, pred, *o)
                       : delta.RemoveTriple(*s, pred, *o);
    if (!st.ok()) {
      return Status::InvalidArgument("delta line " + std::to_string(line_no) +
                                     ": " + st.message());
    }
  }
  return delta;
}

}  // namespace gkeys
