#ifndef GKEYS_IO_FAST_TRIPLES_H_
#define GKEYS_IO_FAST_TRIPLES_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/delta.h"
#include "graph/graph.h"
#include "io/triples.h"

namespace gkeys {

/// Chunked fast-path parsers for the `ent:/val:` triple and delta
/// formats: drop-in replacements for the scalar DeserializeGraphWithNames
/// / ParseDelta (io/triples.h), which stay in-tree as the oracles the
/// equivalence tests in tests/ingest_test.cc compare against.
///
/// The fast path runs in two phases:
///
///   Phase A — tokenize (parallelizable). The text is split into
///   line-aligned chunks; each chunk is scanned with the SWAR/SIMD
///   helpers of common/simd_scan.h, validating line shapes, splitting
///   fields, and unescaping value literals. This phase touches no graph
///   or binding table, so chunks are independent; each chunk knows its
///   absolute starting line number (one CountByte pass pins them before
///   any chunk parses), so malformed-line errors carry exactly the line
///   number the scalar parser would report.
///
///   Phase B — bind (serial). Tokenized lines replay into the Graph /
///   GraphDelta in document order, so interner symbols, NodeIds, and
///   entity-table bindings are assigned in exactly the order the scalar
///   parser assigns them: the output is byte-identical (serialization,
///   NodeIds, entity tables) to the oracle on every accepted input.
///
/// Error equivalence on rejected inputs is deliberately looser: both
/// paths fail on exactly the same inputs, with the same line number up
/// to the first failing line, but when one line mixes a shape error with
/// a binding error the two paths may name a different field of that
/// line. On success the results are identical, full stop.
///
/// The split is exposed (TokenizeTriples/TokenizeDeltaText + Bind*)
/// because the ingest pipeline (core/ingest_pipeline.h) runs phase A of
/// batch N+1 concurrently with the engine stages of batch N; phase B
/// must wait for the evolving graph and binding table.

/// One tokenized node reference. Entity references keep string_views
/// into the source text (valid while it lives); value literals are
/// unescaped eagerly, copying only when an escape was present.
struct TokenRef {
  enum class Kind : uint8_t { kValue, kEntity };
  Kind kind = Kind::kValue;
  /// kValue: raw literal body (no escapes present); kEntity: the full
  /// `ent:<type>:<id>` token, which is the binding-table key.
  std::string_view body;
  /// kEntity only: the `<type>` slice of `body`.
  std::string_view type;
  /// kValue with escapes only (escaped == true): the decoded literal.
  std::string unescaped;
  bool escaped = false;

  std::string_view literal() const {
    return escaped ? std::string_view(unescaped) : body;
  }
};

/// One validated line, ready to bind.
struct TokenizedLine {
  int line_no = 0;
  /// Delta format: +1 for `+ ...`, -1 for `- ...`. Graph format: 0.
  int8_t op = 0;
  /// Graph format only: an `@exists` marker line — the subject was
  /// validated, the object (like the scalar parser) never was.
  bool exists_only = false;
  TokenRef subj;
  std::string_view pred;
  TokenRef obj;
};

/// Phase-A output. When a line failed validation, `error` holds the
/// scalar-compatible Status and `error_line` its 1-based line number;
/// `lines` then contains every valid line strictly before it (later
/// chunks may have tokenized further, but binders must stop at
/// `error_line`). error_line == 0 means the whole text tokenized.
struct TokenizedText {
  std::vector<TokenizedLine> lines;
  Status error;
  int error_line = 0;
};

/// Tokenizes graph-format triple text (`SerializeGraph` output). With
/// `num_threads` > 1 and a large enough text, chunks tokenize on a
/// thread pool; the result is identical either way.
TokenizedText TokenizeTriples(std::string_view text, int num_threads = 1);

/// Tokenizes delta-format text (`+ s p o` / `- s p o` lines).
TokenizedText TokenizeDeltaText(std::string_view text, int num_threads = 1);

/// Phase B for graph text: replays tokens into a fresh Graph in document
/// order. Byte-identical to DeserializeGraphWithNames.
StatusOr<LoadedGraph> BindTriples(const TokenizedText& tokens);

/// Phase B for delta text: binds against `g` + `base_entities` exactly
/// like the scalar ParseDelta, but WITHOUT copying the base table —
/// tokens introduced by this delta live in a small overlay, so a batch
/// costs O(batch), not O(session entities). `new_bindings` (optional)
/// receives every ent: token this delta introduced, as in ParseDelta —
/// on success; unlike the scalar path it is never touched on failure.
StatusOr<GraphDelta> BindDeltaText(
    const TokenizedText& tokens, const Graph& g,
    const std::unordered_map<std::string, NodeId>& base_entities,
    std::unordered_map<std::string, NodeId>* new_bindings = nullptr);

/// Incremental phase B: accumulates SEVERAL tokenized delta batches into
/// ONE GraphDelta, sharing a single overlay across Append calls. This is
/// the group-commit primitive of the ingest pipeline: when parsed batches
/// queue up behind a slow engine stage, binding them together lets one
/// Apply→Patch→Rematch pass commit the whole group, amortizing the
/// per-commit costs that do not shrink with batch size.
///
/// Binding batches B1..Bk through one binder is equivalent to binding
/// their concatenation as a single delta text, except that error messages
/// keep each batch's own line numbers. That concatenation is NOT always
/// equivalent to committing the batches one by one: a batch that removes
/// a triple or value an earlier batch in the same group introduced fails
/// to bind (GraphDelta removals must reference base-graph nodes). Append
/// surfaces those cases as errors; the pipeline reacts by re-binding the
/// group per batch, which restores exact serial semantics.
class DeltaBinder {
 public:
  /// The graph and base table must outlive the binder; so must every
  /// token text passed to Append (the overlay keeps views into them).
  DeltaBinder(const Graph& g,
              const std::unordered_map<std::string, NodeId>& base_entities);

  DeltaBinder(const DeltaBinder&) = delete;
  DeltaBinder& operator=(const DeltaBinder&) = delete;

  /// Binds one tokenized batch into the accumulated delta, exactly as
  /// BindDeltaText would bind it after the preceding appends. On failure
  /// the accumulated delta may hold part of the failing batch: discard
  /// the binder and rebind from scratch.
  Status Append(const TokenizedText& tokens);

  /// Triple operations (adds + removes) accumulated so far. Comparing
  /// before/after an Append tells whether that batch contributed.
  size_t ops() const;

  /// Moves the accumulated delta out (the binder is spent afterwards).
  /// `new_bindings` (optional) receives every ent: token the whole group
  /// introduced, as BindDeltaText would report for the concatenation.
  GraphDelta Take(std::unordered_map<std::string, NodeId>* new_bindings);

 private:
  const Graph& g_;
  const std::unordered_map<std::string, NodeId>& base_;
  GraphDelta delta_;
  std::unordered_map<std::string_view, NodeId> overlay_;
  std::vector<std::pair<std::string_view, NodeId>> introduced_;
  std::string key_buf_;
};

/// TokenizeTriples + BindTriples: the fast DeserializeGraphWithNames.
StatusOr<LoadedGraph> FastDeserializeGraphWithNames(std::string_view text,
                                                    int num_threads = 1);

/// Graph-only convenience, mirroring DeserializeGraph.
StatusOr<Graph> FastDeserializeGraph(std::string_view text,
                                     int num_threads = 1);

/// TokenizeDeltaText + BindDeltaText: the fast ParseDelta.
StatusOr<GraphDelta> FastParseDelta(
    std::string_view text, const Graph& g,
    const std::unordered_map<std::string, NodeId>& base_entities,
    std::unordered_map<std::string, NodeId>* new_bindings = nullptr,
    int num_threads = 1);

}  // namespace gkeys

#endif  // GKEYS_IO_FAST_TRIPLES_H_
