#include "io/fast_triples.h"

#include <utility>

#include "common/simd_scan.h"
#include "common/thread_pool.h"

namespace gkeys {

namespace {

/// Below this size the chunked path tokenizes inline: thread handoff
/// costs more than scanning a small delta batch.
constexpr size_t kParallelThreshold = size_t{1} << 16;

struct ChunkResult {
  std::vector<TokenizedLine> lines;
  Status error;
  int error_line = 0;
};

/// Tokenizes one node reference, replicating the scalar parsers' shape
/// checks and error strings (io/triples.cc ParseRef / resolve) exactly —
/// including the format quirks: the graph format rejects an empty entity
/// type but accepts an empty id, the delta format rejects both and
/// quotes the offending token in its messages.
bool TokenizeRef(std::string_view token, bool delta_format, TokenRef* out,
                 std::string* msg) {
  if (token.size() >= 5 && token.compare(0, 5, "val:\"") == 0) {
    if (token.size() < 6 || token.back() != '"') {
      *msg = delta_format
                 ? "malformed value literal '" + std::string(token) + "'"
                 : "malformed value literal";
      return false;
    }
    out->kind = TokenRef::Kind::kValue;
    std::string_view body = token.substr(5, token.size() - 6);
    out->body = body;
    out->escaped =
        simd::FindByte(body.data(), body.size(), '\\') != simd::npos;
    if (out->escaped) {
      out->unescaped.clear();
      out->unescaped.reserve(body.size());
      for (size_t i = 0; i < body.size(); ++i) {
        if (body[i] == '\\' && i + 1 < body.size()) ++i;
        out->unescaped.push_back(body[i]);
      }
    }
    return true;
  }
  if (token.size() >= 4 && token.compare(0, 4, "ent:") == 0) {
    size_t colon = token.rfind(':');
    bool bad = delta_format ? (colon <= 4 || colon + 1 >= token.size())
                            : (colon == 3);
    if (bad) {
      *msg = "entity reference needs a type and an id";
      return false;
    }
    std::string_view type = token.substr(4, colon - 4);
    if (!delta_format && type.empty()) {
      *msg = "empty entity type";
      return false;
    }
    out->kind = TokenRef::Kind::kEntity;
    out->body = token;
    out->type = type;
    return true;
  }
  *msg = delta_format ? "node reference must start with ent: or val:, got '" +
                            std::string(token) + "'"
                      : "node reference must start with ent: or val:";
  return false;
}

/// Tokenizes the chunk [begin, end) of `text`. `start_line` is the
/// number of lines strictly before `begin` (so absolute line numbers
/// come out exactly as a whole-text scan would produce). Stops at the
/// chunk's first invalid line, recording its scalar-compatible error.
void TokenizeChunk(std::string_view text, size_t begin, size_t end,
                   int start_line, bool delta_format, ChunkResult* out) {
  std::string_view sv = text.substr(begin, end - begin);
  int line_no = start_line;
  size_t pos = 0;
  std::string msg;
  auto fail = [&](std::string_view what) {
    out->error_line = line_no;
    out->error =
        delta_format
            ? Status::InvalidArgument("delta line " + std::to_string(line_no) +
                                      ": " + std::string(what))
            : Status::ParseError("line " + std::to_string(line_no) + ": " +
                                 std::string(what));
  };
  while (pos < sv.size()) {
    ++line_no;
    size_t nl = simd::FindByte(sv, '\n', pos);
    std::string_view line =
        sv.substr(pos, nl == simd::npos ? sv.size() - pos : nl - pos);
    pos = nl == simd::npos ? sv.size() : nl + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty() || line[0] == '#') continue;

    TokenizedLine ln;
    ln.line_no = line_no;
    if (delta_format) {
      if (line.size() < 2 || (line[0] != '+' && line[0] != '-') ||
          line[1] != ' ') {
        fail("expected '+ <triple>' or '- <triple>'");
        return;
      }
      ln.op = line[0] == '+' ? 1 : -1;
      line = line.substr(2);
    }
    size_t sp1 = simd::FindByte(line, ' ');
    size_t sp2 = sp1 == simd::npos ? simd::npos
                                   : simd::FindByte(line, ' ', sp1 + 1);
    if (sp2 == simd::npos) {
      fail(delta_format ? "expected 3 fields: subject predicate object"
                        : "expected 3 fields");
      return;
    }
    ln.pred = line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (delta_format && ln.pred.empty()) {
      fail("empty predicate");
      return;
    }
    if (!TokenizeRef(line.substr(0, sp1), delta_format, &ln.subj, &msg)) {
      fail(msg);
      return;
    }
    if (!delta_format && ln.pred == "@exists") {
      // Scalar parity: the object of an @exists marker is never
      // validated (DeserializeGraphWithNames skips it entirely).
      ln.exists_only = true;
    } else if (!TokenizeRef(line.substr(sp2 + 1), delta_format, &ln.obj,
                            &msg)) {
      fail(msg);
      return;
    }
    out->lines.push_back(std::move(ln));
  }
}

TokenizedText TokenizeImpl(std::string_view text, int num_threads,
                           bool delta_format) {
  TokenizedText out;
  if (num_threads <= 1 || text.size() < kParallelThreshold) {
    ChunkResult r;
    TokenizeChunk(text, 0, text.size(), 0, delta_format, &r);
    out.lines = std::move(r.lines);
    out.error = std::move(r.error);
    out.error_line = r.error_line;
    return out;
  }

  // Line-aligned chunk boundaries: each target offset advances to just
  // past the next newline, so no line straddles two chunks.
  std::vector<size_t> bounds{0};
  for (int i = 1; i < num_threads; ++i) {
    size_t target = text.size() / static_cast<size_t>(num_threads) *
                    static_cast<size_t>(i);
    if (target <= bounds.back()) continue;
    size_t nl = simd::FindByte(text, '\n', target);
    if (nl == simd::npos || nl + 1 >= text.size()) break;
    bounds.push_back(nl + 1);
  }
  bounds.push_back(text.size());
  const size_t chunks = bounds.size() - 1;

  // Pin each chunk's absolute starting line before any chunk parses;
  // this is what keeps malformed-line errors exact under chunking.
  std::vector<int> start_line(chunks, 0);
  for (size_t c = 1; c < chunks; ++c) {
    start_line[c] =
        start_line[c - 1] +
        static_cast<int>(simd::CountByte(
            text.substr(bounds[c - 1], bounds[c] - bounds[c - 1]), '\n'));
  }

  std::vector<ChunkResult> results(chunks);
  ParallelShards(num_threads, chunks, [&](int, size_t b, size_t e) {
    for (size_t c = b; c < e; ++c) {
      TokenizeChunk(text, bounds[c], bounds[c + 1], start_line[c],
                    delta_format, &results[c]);
    }
  });

  size_t total = 0;
  for (const ChunkResult& r : results) total += r.lines.size();
  out.lines.reserve(total);
  for (ChunkResult& r : results) {
    for (TokenizedLine& ln : r.lines) out.lines.push_back(std::move(ln));
  }
  // Line numbers ascend across chunks, so the first erroring chunk holds
  // the first erroring line of the document.
  for (ChunkResult& r : results) {
    if (r.error_line != 0) {
      out.error = std::move(r.error);
      out.error_line = r.error_line;
      break;
    }
  }
  return out;
}

}  // namespace

TokenizedText TokenizeTriples(std::string_view text, int num_threads) {
  return TokenizeImpl(text, num_threads, /*delta_format=*/false);
}

TokenizedText TokenizeDeltaText(std::string_view text, int num_threads) {
  return TokenizeImpl(text, num_threads, /*delta_format=*/true);
}

StatusOr<LoadedGraph> BindTriples(const TokenizedText& tokens) {
  Graph g;
  // Keys are views into the token text, alive for the whole bind; the
  // std::string table the caller keeps is materialized once at the end.
  std::unordered_map<std::string_view, NodeId> entities;
  auto resolve = [&](const TokenRef& r) {
    if (r.kind == TokenRef::Kind::kValue) return g.AddValue(r.literal());
    auto it = entities.find(r.body);
    if (it != entities.end()) return it->second;
    NodeId id = g.AddEntity(r.type);
    entities.emplace(r.body, id);
    return id;
  };
  for (const TokenizedLine& ln : tokens.lines) {
    if (tokens.error_line != 0 && ln.line_no >= tokens.error_line) break;
    NodeId s = resolve(ln.subj);
    if (ln.exists_only) continue;
    NodeId o = resolve(ln.obj);
    GKEYS_RETURN_IF_ERROR(g.AddTriple(s, ln.pred, o));
  }
  if (tokens.error_line != 0) return tokens.error;
  g.Finalize();
  LoadedGraph out{std::move(g), {}};
  out.entities.reserve(entities.size());
  for (const auto& [token, id] : entities) {
    out.entities.emplace(std::string(token), id);
  }
  return out;
}

DeltaBinder::DeltaBinder(
    const Graph& g,
    const std::unordered_map<std::string, NodeId>& base_entities)
    : g_(g), base_(base_entities), delta_(g) {}

Status DeltaBinder::Append(const TokenizedText& tokens) {
  // overlay_ holds the tokens this group of batches introduced: an
  // overlay instead of the scalar path's full copy of base_entities, so
  // one batch costs O(batch). Overlay and base are disjoint (a token
  // found in base never enters the overlay), so lookup order is
  // unobservable.
  for (const TokenizedLine& ln : tokens.lines) {
    if (tokens.error_line != 0 && ln.line_no >= tokens.error_line) break;
    const bool adding = ln.op > 0;
    auto err = [&ln](std::string msg) {
      return Status::InvalidArgument("delta line " +
                                     std::to_string(ln.line_no) + ": " +
                                     std::move(msg));
    };
    auto resolve = [&](const TokenRef& r) -> StatusOr<NodeId> {
      if (r.kind == TokenRef::Kind::kValue) {
        if (!adding) {
          NodeId v = g_.FindValue(r.literal());
          if (v == kNoNode) {
            return err("removal references unknown value \"" +
                       std::string(r.literal()) + "\"");
          }
          return v;
        }
        return delta_.AddValue(r.literal());
      }
      auto it = overlay_.find(r.body);
      if (it != overlay_.end()) return it->second;
      // Reused base-lookup key: std::hash<std::string> maps need a
      // std::string, but one warm buffer means no per-token allocation.
      key_buf_.assign(r.body.data(), r.body.size());
      auto base = base_.find(key_buf_);
      if (base != base_.end()) return base->second;
      if (!adding) {
        return err("removal references unknown entity " +
                   std::string(r.body));
      }
      NodeId id = delta_.AddEntity(r.type);
      overlay_.emplace(r.body, id);
      introduced_.emplace_back(r.body, id);
      return id;
    };
    auto s = resolve(ln.subj);
    if (!s.ok()) return s.status();
    auto o = resolve(ln.obj);
    if (!o.ok()) return o.status();
    Status st = adding ? delta_.AddTriple(*s, ln.pred, *o)
                       : delta_.RemoveTriple(*s, ln.pred, *o);
    if (!st.ok()) {
      return Status::InvalidArgument("delta line " +
                                     std::to_string(ln.line_no) + ": " +
                                     st.message());
    }
  }
  if (tokens.error_line != 0) return tokens.error;
  return Status::OK();
}

size_t DeltaBinder::ops() const {
  return delta_.num_added_triples() + delta_.num_removed_triples();
}

GraphDelta DeltaBinder::Take(
    std::unordered_map<std::string, NodeId>* new_bindings) {
  if (new_bindings != nullptr) {
    for (const auto& [token, id] : introduced_) {
      (*new_bindings)[std::string(token)] = id;
    }
  }
  return std::move(delta_);
}

StatusOr<GraphDelta> BindDeltaText(
    const TokenizedText& tokens, const Graph& g,
    const std::unordered_map<std::string, NodeId>& base_entities,
    std::unordered_map<std::string, NodeId>* new_bindings) {
  DeltaBinder binder(g, base_entities);
  GKEYS_RETURN_IF_ERROR(binder.Append(tokens));
  return binder.Take(new_bindings);
}

StatusOr<LoadedGraph> FastDeserializeGraphWithNames(std::string_view text,
                                                    int num_threads) {
  return BindTriples(TokenizeTriples(text, num_threads));
}

StatusOr<Graph> FastDeserializeGraph(std::string_view text, int num_threads) {
  auto loaded = FastDeserializeGraphWithNames(text, num_threads);
  if (!loaded.ok()) return loaded.status();
  return std::move(loaded->graph);
}

StatusOr<GraphDelta> FastParseDelta(
    std::string_view text, const Graph& g,
    const std::unordered_map<std::string, NodeId>& base_entities,
    std::unordered_map<std::string, NodeId>* new_bindings, int num_threads) {
  return BindDeltaText(TokenizeDeltaText(text, num_threads), g, base_entities,
                       new_bindings);
}

}  // namespace gkeys
