#ifndef GKEYS_GRAPH_GRAPH_H_
#define GKEYS_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "common/status.h"

namespace gkeys {

/// Node identifier within a Graph. Entities and values share one id space.
using NodeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = UINT32_MAX;

/// A node is either an entity (has a type from Θ and a unique id) or a
/// value from D (paper §2.1). Two entities are the same node iff they have
/// the same ID (node identity ⇔); equal values are represented by one node
/// (value equality =).
enum class NodeKind : uint8_t { kEntity, kValue };

/// One directed labeled edge in an adjacency list.
struct Edge {
  Symbol pred;
  NodeId dst;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.pred == b.pred && a.dst == b.dst;
  }
  friend bool operator<(const Edge& a, const Edge& b) {
    return a.pred != b.pred ? a.pred < b.pred : a.dst < b.dst;
  }
};

/// One triple (s, p, o): subject entity, predicate, object entity-or-value.
struct Triple {
  NodeId subject;
  Symbol pred;
  NodeId object;

  friend bool operator==(const Triple& a, const Triple& b) {
    return a.subject == b.subject && a.pred == b.pred && a.object == b.object;
  }
};

class GraphDelta;

/// A directed edge-labeled graph over triples (paper §2.1).
///
/// Construction: AddEntity / AddValue / AddTriple, then Finalize() once.
/// Finalize() sorts and deduplicates adjacency and compacts it into CSR
/// form — one flat offset array plus one contiguous edge array per
/// direction — so the BFS / pairing / isomorphism inner loops scan
/// cache-line-contiguous memory instead of chasing one heap allocation
/// per node. The std::span accessors are representation-agnostic:
/// consumers are identical before and after finalization.
///
/// Mutating a finalized graph thaws only the touched nodes: their
/// adjacency is copied out of the CSR into a per-node overlay and edited
/// there, while every other node keeps serving straight from the CSR.
/// The next Finalize() merges the overlays back — sorting only the dirty
/// runs and block-copying the untouched ones — instead of re-sorting the
/// whole edge array. The set of touched nodes is recorded (DirtyNodes())
/// so incremental consumers (MatchPlan::Patch) can recompile exactly the
/// affected region.
///
/// Strings (types, predicates, values) are interned in a per-graph
/// StringInterner so they compare by integer.
class Graph {
 public:
  Graph() = default;

  // Copyable (tests/generators duplicate graphs); moves are cheap.
  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  // ---- Construction ----

  /// Interns a string in this graph's symbol table.
  Symbol Intern(std::string_view s) { return interner_.Intern(s); }

  /// Adds a fresh entity node of the given type. Every call creates a new
  /// entity (entities are identified by NodeId, not by their labels).
  NodeId AddEntity(Symbol type);
  NodeId AddEntity(std::string_view type) { return AddEntity(Intern(type)); }

  /// Adds (or returns the existing) value node for a literal. Equal values
  /// map to the same node, per value equality.
  NodeId AddValue(std::string_view value);

  /// Adds triple (s, p, o). The subject must be an entity node.
  Status AddTriple(NodeId s, Symbol p, NodeId o);
  Status AddTriple(NodeId s, std::string_view p, NodeId o) {
    return AddTriple(s, Intern(p), o);
  }

  /// Removes triple (s, p, o); NotFound if it is not present. On a
  /// finalized graph only the two endpoints thaw (see class comment).
  Status RemoveTriple(NodeId s, Symbol p, NodeId o);
  Status RemoveTriple(NodeId s, std::string_view p, NodeId o) {
    return RemoveTriple(s, Intern(p), o);
  }

  /// Sorts and deduplicates adjacency and freezes it into CSR arrays.
  /// After post-finalize mutations, merges only the dirty nodes' runs
  /// back into the CSR (untouched runs are block-copied, not re-sorted).
  /// Idempotent.
  void Finalize();
  bool finalized() const { return finalized_; }

  /// Nodes whose adjacency changed (or that were added) since the last
  /// Finalize(), sorted ascending. Empty right after Finalize().
  std::vector<NodeId> DirtyNodes() const;

  /// Applies `delta` (built against this graph via GraphDelta's staging
  /// API) and re-finalizes: new entities/values are materialized with
  /// exactly the NodeIds the delta staged, triples are added/removed
  /// through the per-node thaw path, and the CSR is merge-rebuilt.
  /// Returns the sorted dirty node set (endpoints of every added/removed
  /// triple plus all new nodes) — the input MatchPlan::Patch consumes.
  /// Errors: InvalidArgument when the delta was staged against a graph
  /// with a different node count; NotFound when a removed triple is
  /// absent (the graph may then be left unfinalized with a prefix of the
  /// delta applied).
  StatusOr<std::vector<NodeId>> Apply(const GraphDelta& delta);

  // ---- Queries ----

  size_t NumNodes() const { return kinds_.size(); }
  size_t NumEntities() const { return num_entities_; }
  size_t NumValues() const { return NumNodes() - num_entities_; }
  /// |G|: number of triples.
  size_t NumTriples() const { return num_triples_; }

  NodeKind kind(NodeId n) const { return kinds_[n]; }
  bool IsEntity(NodeId n) const { return kinds_[n] == NodeKind::kEntity; }
  bool IsValue(NodeId n) const { return kinds_[n] == NodeKind::kValue; }

  /// Entity type symbol; kNoSymbol for value nodes.
  Symbol entity_type(NodeId n) const { return labels_[n]; }

  /// Literal symbol of a value node; kNoSymbol for entities.
  Symbol value_sym(NodeId n) const {
    return IsValue(n) ? labels_[n] : kNoSymbol;
  }

  /// Literal string of a value node.
  const std::string& value_str(NodeId n) const {
    return interner_.Resolve(labels_[n]);
  }

  /// Outgoing / incoming labeled edges of a node (sorted after Finalize()).
  std::span<const Edge> Out(NodeId n) const {
    if (csr_built_) {
      if (!out_overlay_.empty()) {
        auto it = out_overlay_.find(n);
        if (it != out_overlay_.end()) return it->second;
      }
      if (n >= csr_nodes_) return {};
      return {out_edges_.data() + out_offsets_[n],
              out_offsets_[n + 1] - out_offsets_[n]};
    }
    return out_build_[n];
  }
  std::span<const Edge> In(NodeId n) const {
    if (csr_built_) {
      if (!in_overlay_.empty()) {
        auto it = in_overlay_.find(n);
        if (it != in_overlay_.end()) return it->second;
      }
      if (n >= csr_nodes_) return {};
      return {in_edges_.data() + in_offsets_[n],
              in_offsets_[n + 1] - in_offsets_[n]};
    }
    return in_build_[n];
  }

  size_t OutDegree(NodeId n) const { return Out(n).size(); }
  size_t InDegree(NodeId n) const { return In(n).size(); }

  /// Whether triple (s, p, o) is in G. O(log deg) after Finalize().
  bool HasTriple(NodeId s, Symbol p, NodeId o) const;

  /// Entities of a given type (empty if none). Stable insertion order.
  std::span<const NodeId> EntitiesOfType(Symbol type) const;

  /// Looks up the node for a literal value, or kNoNode.
  NodeId FindValue(std::string_view value) const;

  /// All entity types present in the graph.
  std::vector<Symbol> EntityTypes() const;

  /// Invokes fn(Triple) for every triple.
  template <typename Fn>
  void ForEachTriple(Fn&& fn) const {
    for (NodeId s = 0; s < NumNodes(); ++s) {
      for (const Edge& e : Out(s)) fn(Triple{s, e.pred, e.dst});
    }
  }

  const StringInterner& interner() const { return interner_; }
  StringInterner& interner() { return interner_; }

  /// Human-readable node description for logging and examples.
  std::string DescribeNode(NodeId n) const;

  /// Approximate heap footprint of the adjacency structures, in bytes
  /// (the bytes-per-plan accounting reads this).
  size_t AdjacencyBytes() const;

 private:
  /// Thaws node `n` only: copies its CSR run into the overlay (first
  /// mutation after Finalize) and returns the editable vector. Marks the
  /// graph unfinalized and records n as dirty.
  std::vector<Edge>& ThawNode(std::unordered_map<NodeId, std::vector<Edge>>&
                                  overlay,
                              const std::vector<size_t>& offsets,
                              const std::vector<Edge>& edges, NodeId n);
  /// Registers a brand-new node added after finalization.
  void TouchNewNode(NodeId n);

  StringInterner interner_;
  std::vector<NodeKind> kinds_;
  // Entity type symbol for entities; literal symbol for values.
  std::vector<Symbol> labels_;
  // Construction-time adjacency; emptied by the first Finalize().
  std::vector<std::vector<Edge>> out_build_;
  std::vector<std::vector<Edge>> in_build_;
  // Finalized CSR adjacency: edges of node n live at
  // [offsets_[n], offsets_[n+1]), sorted by (pred, dst), deduplicated.
  std::vector<size_t> out_offsets_;
  std::vector<size_t> in_offsets_;
  std::vector<Edge> out_edges_;
  std::vector<Edge> in_edges_;
  // Per-node thaw: dirty nodes' true adjacency while the CSR is stale for
  // them. Emptied by Finalize()'s merge pass.
  std::unordered_map<NodeId, std::vector<Edge>> out_overlay_;
  std::unordered_map<NodeId, std::vector<Edge>> in_overlay_;
  // Nodes touched since the last Finalize (may contain duplicates until
  // DirtyNodes() sorts them).
  std::vector<NodeId> dirty_nodes_;
  std::unordered_map<Symbol, NodeId> value_nodes_;
  std::unordered_map<Symbol, std::vector<NodeId>> by_type_;
  size_t num_entities_ = 0;
  size_t num_triples_ = 0;
  // Node count the CSR offset arrays cover (nodes added later have no run
  // yet and live entirely in the overlay).
  size_t csr_nodes_ = 0;
  // CSR arrays exist (the graph was finalized at least once).
  bool csr_built_ = false;
  // No pending mutations AND the CSR is current.
  bool finalized_ = false;
};

}  // namespace gkeys

#endif  // GKEYS_GRAPH_GRAPH_H_
