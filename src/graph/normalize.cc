#include "graph/normalize.h"

#include <cctype>

namespace gkeys {

namespace normalizers {

std::string Lowercase(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::string CollapseWhitespace(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  bool in_space = true;  // also trims leading whitespace
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!in_space) out.push_back(' ');
      in_space = true;
    } else {
      out.push_back(c);
      in_space = false;
    }
  }
  if (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::string AlphaNumericOnly(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c))) out.push_back(c);
  }
  return out;
}

}  // namespace normalizers

ValueNormalizer ComposeNormalizers(std::vector<ValueNormalizer> fns) {
  return [fns = std::move(fns)](const std::string& s) {
    std::string cur = s;
    for (const auto& fn : fns) cur = fn(cur);
    return cur;
  };
}

NormalizedGraph NormalizeValues(const Graph& g, const ValueNormalizer& fn) {
  NormalizedGraph out;
  out.node_map.assign(g.NumNodes(), kNoNode);
  size_t distinct_values = 0;
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    if (g.IsEntity(n)) {
      out.node_map[n] = out.graph.AddEntity(
          g.interner().Resolve(g.entity_type(n)));
    } else {
      size_t before = out.graph.NumValues();
      out.node_map[n] = out.graph.AddValue(fn(g.value_str(n)));
      if (out.graph.NumValues() == before) {
        ++out.values_merged;  // canonical form already present
      } else {
        ++distinct_values;
      }
    }
  }
  (void)distinct_values;
  g.ForEachTriple([&](const Triple& t) {
    out.graph.AddTriple(out.node_map[t.subject],
                              g.interner().Resolve(t.pred),
                              out.node_map[t.object]).IgnoreError();
  });
  out.graph.Finalize();
  return out;
}

}  // namespace gkeys
