#include "graph/delta.h"

#include <algorithm>

namespace gkeys {

NodeId GraphDelta::AddEntity(std::string_view type) {
  NodeId id = static_cast<NodeId>(base_nodes_ + new_nodes_.size());
  new_nodes_.push_back(NewNode{NodeKind::kEntity, std::string(type)});
  return id;
}

NodeId GraphDelta::AddValue(std::string_view literal) {
  NodeId existing = base_->FindValue(literal);
  if (existing != kNoNode) return existing;
  auto it = staged_values_.find(std::string(literal));
  if (it != staged_values_.end()) return it->second;
  NodeId id = static_cast<NodeId>(base_nodes_ + new_nodes_.size());
  new_nodes_.push_back(NewNode{NodeKind::kValue, std::string(literal)});
  staged_values_.emplace(std::string(literal), id);
  return id;
}

Status GraphDelta::AddTriple(NodeId s, std::string_view p, NodeId o) {
  if (!Known(s) || !Known(o)) {
    return Status::InvalidArgument(
        "GraphDelta::AddTriple: node id out of range (neither a base node "
        "nor staged by this delta)");
  }
  if (!IsEntityNode(s)) {
    return Status::InvalidArgument(
        "GraphDelta::AddTriple: subject must be an entity");
  }
  added_.push_back(DeltaTriple{s, std::string(p), o});
  return Status::OK();
}

Status GraphDelta::RemoveTriple(NodeId s, std::string_view p, NodeId o) {
  if (s >= base_nodes_ || o >= base_nodes_) {
    return Status::InvalidArgument(
        "GraphDelta::RemoveTriple: removals must reference base-graph "
        "nodes");
  }
  removed_.push_back(DeltaTriple{s, std::string(p), o});
  return Status::OK();
}

std::vector<NodeId> GraphDelta::TouchedNodes() const {
  std::vector<NodeId> touched;
  touched.reserve(new_nodes_.size() + 2 * (added_.size() + removed_.size()));
  for (size_t i = 0; i < new_nodes_.size(); ++i) {
    touched.push_back(static_cast<NodeId>(base_nodes_ + i));
  }
  for (const DeltaTriple& t : added_) {
    touched.push_back(t.subject);
    touched.push_back(t.object);
  }
  for (const DeltaTriple& t : removed_) {
    touched.push_back(t.subject);
    touched.push_back(t.object);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  return touched;
}

}  // namespace gkeys
