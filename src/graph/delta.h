#ifndef GKEYS_GRAPH_DELTA_H_
#define GKEYS_GRAPH_DELTA_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace gkeys {

/// A batch of mutations staged against one base graph: added / removed
/// triples plus the entities and values those triples introduce. The
/// delta is a value type — building it never touches the base graph —
/// but NodeIds are resolved eagerly against the base, so staged ops live
/// in the base graph's id space:
///
///     GraphDelta delta(g);
///     NodeId e = delta.AddEntity("person");       // id g will assign
///     NodeId v = delta.AddValue("alice");         // dedups against g
///     delta.AddTriple(e, "name", v);
///     delta.RemoveTriple(old_s, "name", old_o);
///     auto dirty = g.Apply(delta);                // mutate + re-Finalize
///     auto plan2 = plan.Patch(delta);             // incremental recompile
///
/// Lifecycle: one delta is good for one Apply — ids staged for new nodes
/// assume the base graph's node count, so Apply rejects a delta whose
/// base has since grown (InvalidArgument). After Apply, the same delta
/// value is still what MatchPlan::Patch and Matcher::Rematch consume
/// (they read the staged ops, never re-apply them). The base graph must
/// outlive the delta.
///
/// Thread-safety: staging mutates the delta and is not synchronized —
/// build a delta on one thread. Once built it is logically const and may
/// be read (Apply/Patch/Rematch/TouchedNodes) from any thread, one
/// mutating consumer (Apply) at a time.
///
/// Error contract: staging methods return InvalidArgument for unknown
/// ids or a non-entity subject, eagerly; existence of removed triples is
/// checked by Graph::Apply (NotFound), not at staging time. Removal
/// deltas are first-class downstream: Matcher::Rematch retracts the
/// derivations a removed triple invalidates and re-seeds, instead of
/// rerunning the world (see RematchOptions in core/matcher.h).
class GraphDelta {
 public:
  /// Stages against `base` as it is right now (captures the node count).
  explicit GraphDelta(const Graph& base)
      : base_(&base), base_nodes_(base.NumNodes()) {}

  // ---- Staging -------------------------------------------------------

  /// Stages a fresh entity of `type`; returns the NodeId Graph::Apply
  /// will materialize it with.
  NodeId AddEntity(std::string_view type);

  /// Stages (or resolves) the value node for a literal: an existing base
  /// value or an already-staged one is returned as-is (value equality).
  NodeId AddValue(std::string_view literal);

  /// Stages triple (s, p, o). s/o may be base nodes or staged ones.
  /// InvalidArgument when an id is unknown or s is not an entity.
  Status AddTriple(NodeId s, std::string_view p, NodeId o);

  /// Stages the removal of triple (s, p, o). Removals must reference
  /// base nodes; whether the triple exists is checked by Graph::Apply.
  Status RemoveTriple(NodeId s, std::string_view p, NodeId o);

  // ---- Inspection ----------------------------------------------------

  bool empty() const {
    return added_.empty() && removed_.empty() && new_nodes_.empty();
  }
  size_t num_added_triples() const { return added_.size(); }
  size_t num_removed_triples() const { return removed_.size(); }
  size_t num_new_nodes() const { return new_nodes_.size(); }
  bool has_removals() const { return !removed_.empty(); }

  /// Node count of the base graph at staging time (Apply checks this).
  size_t base_nodes() const { return base_nodes_; }

  /// Every node the delta touches — endpoints of added/removed triples
  /// and all staged nodes — sorted ascending, deduplicated. This is the
  /// per-node dirty set the incremental plan patch works from.
  std::vector<NodeId> TouchedNodes() const;

  // ---- Raw ops (consumed by Graph::Apply / MatchPlan::Patch) ---------

  struct NewNode {
    NodeKind kind;
    std::string label;  // entity type or value literal
  };
  struct DeltaTriple {
    NodeId subject;
    std::string pred;
    NodeId object;
  };

  const std::vector<NewNode>& new_nodes() const { return new_nodes_; }
  const std::vector<DeltaTriple>& added() const { return added_; }
  const std::vector<DeltaTriple>& removed() const { return removed_; }

 private:
  bool Staged(NodeId n) const {
    return n >= base_nodes_ && n < base_nodes_ + new_nodes_.size();
  }
  bool Known(NodeId n) const { return n < base_nodes_ || Staged(n); }
  bool IsEntityNode(NodeId n) const {
    if (n < base_nodes_) return base_->IsEntity(n);
    return Staged(n) && new_nodes_[n - base_nodes_].kind == NodeKind::kEntity;
  }

  const Graph* base_;
  size_t base_nodes_;
  std::vector<NewNode> new_nodes_;
  // Staged value literals → staged NodeId (base values resolve through
  // the base graph instead).
  std::unordered_map<std::string, NodeId> staged_values_;
  std::vector<DeltaTriple> added_;
  std::vector<DeltaTriple> removed_;
};

}  // namespace gkeys

#endif  // GKEYS_GRAPH_DELTA_H_
