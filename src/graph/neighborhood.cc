#include "graph/neighborhood.h"

namespace gkeys {

namespace {

// Reusable visited map for the BFS below, thread-local because Phase A of
// plan compilation runs one DNeighbor per task across a thread pool.
// Below this capacity the buffer is never shrunk (reallocation churn would
// cost more than it frees).
constexpr size_t kScratchShrinkMinBytes = size_t{1} << 16;
thread_local std::vector<uint8_t> tl_visited;

}  // namespace

namespace internal {
size_t DNeighborScratchBytes() { return tl_visited.capacity(); }
}  // namespace internal

NodeSet DNeighbor(const Graph& g, NodeId center, int d) {
  // Level-order BFS over the CSR adjacency with a reusable visited map,
  // wiped by unmarking only the nodes actually reached, so a call costs
  // O(|Gd| + edges scanned), not O(|G|).
  std::vector<uint8_t>& visited = tl_visited;
  const size_t need = g.NumNodes();
  if (visited.size() < need) {
    visited.resize(need, 0);
  } else if (visited.capacity() >= kScratchShrinkMinBytes &&
             visited.capacity() / 4 >= need) {
    // The scratch was sized for a much larger graph than the current one;
    // without this it would pin the largest graph ever seen on this
    // thread for the thread's whole lifetime.
    std::vector<uint8_t>(need, 0).swap(visited);
  }

  std::vector<NodeId> found;
  found.push_back(center);
  visited[center] = 1;
  size_t level_begin = 0;
  size_t level_end = 1;
  for (int dist = 0; dist < d && level_begin < level_end; ++dist) {
    for (size_t i = level_begin; i < level_end; ++i) {
      NodeId n = found[i];
      for (const Edge& e : g.Out(n)) {
        if (!visited[e.dst]) {
          visited[e.dst] = 1;
          found.push_back(e.dst);
        }
      }
      for (const Edge& e : g.In(n)) {
        if (!visited[e.dst]) {
          visited[e.dst] = 1;
          found.push_back(e.dst);
        }
      }
    }
    level_begin = level_end;
    level_end = found.size();
  }
  for (NodeId n : found) visited[n] = 0;
  std::sort(found.begin(), found.end());
  return NodeSet::FromSorted(std::move(found));
}

size_t InducedTripleCount(const Graph& g, const NodeSet& nodes) {
  size_t count = 0;
  for (NodeId n : nodes) {
    if (!g.IsEntity(n)) continue;
    for (const Edge& e : g.Out(n)) {
      if (nodes.Contains(e.dst)) ++count;
    }
  }
  return count;
}

}  // namespace gkeys
