#include "graph/neighborhood.h"

#include <deque>

namespace gkeys {

NodeSet DNeighbor(const Graph& g, NodeId center, int d) {
  NodeSet result;
  result.Insert(center);
  if (d <= 0) return result;
  std::deque<std::pair<NodeId, int>> frontier;
  frontier.emplace_back(center, 0);
  while (!frontier.empty()) {
    auto [n, dist] = frontier.front();
    frontier.pop_front();
    if (dist >= d) continue;
    for (const Edge& e : g.Out(n)) {
      if (!result.Contains(e.dst)) {
        result.Insert(e.dst);
        frontier.emplace_back(e.dst, dist + 1);
      }
    }
    for (const Edge& e : g.In(n)) {
      if (!result.Contains(e.dst)) {
        result.Insert(e.dst);
        frontier.emplace_back(e.dst, dist + 1);
      }
    }
  }
  return result;
}

size_t InducedTripleCount(const Graph& g, const NodeSet& nodes) {
  size_t count = 0;
  for (NodeId n : nodes) {
    if (!g.IsEntity(n)) continue;
    for (const Edge& e : g.Out(n)) {
      if (nodes.Contains(e.dst)) ++count;
    }
  }
  return count;
}

}  // namespace gkeys
