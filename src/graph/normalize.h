#ifndef GKEYS_GRAPH_NORMALIZE_H_
#define GKEYS_GRAPH_NORMALIZE_H_

#include <functional>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace gkeys {

/// Maps a literal to its canonical form. Values whose canonical forms are
/// equal are treated as the same value node.
using ValueNormalizer = std::function<std::string(const std::string&)>;

/// Built-in normalizers, composable with ComposeNormalizers.
namespace normalizers {

/// ASCII lower-casing.
std::string Lowercase(const std::string& s);

/// Strips leading/trailing whitespace and collapses internal runs.
std::string CollapseWhitespace(const std::string& s);

/// Drops every non-alphanumeric character (aggressive fuzzy matching).
std::string AlphaNumericOnly(const std::string& s);

}  // namespace normalizers

/// Composes normalizers left to right.
ValueNormalizer ComposeNormalizers(std::vector<ValueNormalizer> fns);

/// Result of normalizing a graph's values.
struct NormalizedGraph {
  Graph graph;
  /// old NodeId -> new NodeId (entities map 1:1; values may merge).
  std::vector<NodeId> node_map;
  /// Number of value nodes merged away.
  size_t values_merged = 0;
};

/// Rebuilds `g` with every literal replaced by its canonical form, merging
/// values that normalize identically. This implements the paper's §2.2
/// remark — "the results remain intact when similarity predicates are
/// used along the same lines as value equality" — by reducing similarity
/// matching to value equality via canonicalization: run NormalizeValues
/// first, then match on the normalized graph.
NormalizedGraph NormalizeValues(const Graph& g, const ValueNormalizer& fn);

}  // namespace gkeys

#endif  // GKEYS_GRAPH_NORMALIZE_H_
