#include "graph/graph.h"

#include <algorithm>

#include "graph/delta.h"

namespace gkeys {

NodeId Graph::AddEntity(Symbol type) {
  NodeId id = static_cast<NodeId>(kinds_.size());
  kinds_.push_back(NodeKind::kEntity);
  labels_.push_back(type);
  if (!csr_built_) {
    out_build_.emplace_back();
    in_build_.emplace_back();
  } else {
    TouchNewNode(id);
  }
  by_type_[type].push_back(id);
  ++num_entities_;
  return id;
}

NodeId Graph::AddValue(std::string_view value) {
  Symbol sym = interner_.Intern(value);
  auto it = value_nodes_.find(sym);
  if (it != value_nodes_.end()) return it->second;
  NodeId id = static_cast<NodeId>(kinds_.size());
  kinds_.push_back(NodeKind::kValue);
  labels_.push_back(sym);
  if (!csr_built_) {
    out_build_.emplace_back();
    in_build_.emplace_back();
  } else {
    TouchNewNode(id);
  }
  value_nodes_.emplace(sym, id);
  return id;
}

void Graph::TouchNewNode(NodeId n) {
  finalized_ = false;
  dirty_nodes_.push_back(n);
}

std::vector<Edge>& Graph::ThawNode(
    std::unordered_map<NodeId, std::vector<Edge>>& overlay,
    const std::vector<size_t>& offsets, const std::vector<Edge>& edges,
    NodeId n) {
  finalized_ = false;
  auto [it, inserted] = overlay.try_emplace(n);
  if (inserted) {
    dirty_nodes_.push_back(n);
    if (n < csr_nodes_) {
      it->second.assign(edges.begin() + offsets[n],
                        edges.begin() + offsets[n + 1]);
    }
  }
  return it->second;
}

Status Graph::AddTriple(NodeId s, Symbol p, NodeId o) {
  if (s >= kinds_.size() || o >= kinds_.size()) {
    return Status::InvalidArgument("AddTriple: node id out of range");
  }
  if (!IsEntity(s)) {
    return Status::InvalidArgument("AddTriple: subject must be an entity");
  }
  if (!csr_built_) {
    out_build_[s].push_back(Edge{p, o});
    in_build_[o].push_back(Edge{p, s});
  } else {
    ThawNode(out_overlay_, out_offsets_, out_edges_, s).push_back(Edge{p, o});
    ThawNode(in_overlay_, in_offsets_, in_edges_, o).push_back(Edge{p, s});
  }
  ++num_triples_;
  return Status::OK();
}

Status Graph::RemoveTriple(NodeId s, Symbol p, NodeId o) {
  if (s >= kinds_.size() || o >= kinds_.size()) {
    return Status::InvalidArgument("RemoveTriple: node id out of range");
  }
  if (!HasTriple(s, p, o)) {
    return Status::NotFound("RemoveTriple: (" + DescribeNode(s) + ", " +
                            interner_.Resolve(p) + ", " + DescribeNode(o) +
                            ") is not in the graph");
  }
  // Duplicate adds are tracked until Finalize() dedups, so removing an
  // edge must subtract however many copies actually existed.
  auto erase_all = [](std::vector<Edge>& adj, const Edge& e) -> size_t {
    size_t before = adj.size();
    adj.erase(std::remove(adj.begin(), adj.end(), e), adj.end());
    return before - adj.size();
  };
  size_t removed;
  if (!csr_built_) {
    removed = erase_all(out_build_[s], Edge{p, o});
    erase_all(in_build_[o], Edge{p, s});
  } else {
    removed = erase_all(ThawNode(out_overlay_, out_offsets_, out_edges_, s),
                        Edge{p, o});
    erase_all(ThawNode(in_overlay_, in_offsets_, in_edges_, o), Edge{p, s});
  }
  num_triples_ -= removed;
  return Status::OK();
}

void Graph::Finalize() {
  if (finalized_) return;
  const size_t n = NumNodes();
  if (!csr_built_) {
    // First finalization: sort + dedup every per-node vector and compact.
    auto compact = [n](std::vector<std::vector<Edge>>& build,
                       std::vector<size_t>& offsets,
                       std::vector<Edge>& edges) -> size_t {
      size_t total = 0;
      for (auto& adj : build) {
        std::sort(adj.begin(), adj.end());
        adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
        total += adj.size();
      }
      offsets.assign(n + 1, 0);
      edges.clear();
      edges.reserve(total);
      for (size_t i = 0; i < n; ++i) {
        offsets[i] = edges.size();
        edges.insert(edges.end(), build[i].begin(), build[i].end());
      }
      offsets[n] = edges.size();
      build.clear();
      build.shrink_to_fit();
      return total;
    };
    num_triples_ = compact(out_build_, out_offsets_, out_edges_);
    compact(in_build_, in_offsets_, in_edges_);
  } else {
    // Re-finalization after per-node thaws: sort + dedup only the dirty
    // overlays, then splice them into fresh flat arrays while untouched
    // runs are block-copied from the old CSR (no re-sort).
    auto merge = [this, n](std::unordered_map<NodeId, std::vector<Edge>>&
                               overlay,
                           std::vector<size_t>& offsets,
                           std::vector<Edge>& edges) -> size_t {
      size_t total = 0;
      for (auto& [node, adj] : overlay) {
        std::sort(adj.begin(), adj.end());
        adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
        total += adj.size();
      }
      for (NodeId i = 0; i < csr_nodes_; ++i) {
        if (overlay.find(i) == overlay.end()) {
          total += offsets[i + 1] - offsets[i];
        }
      }
      std::vector<size_t> new_offsets(n + 1, 0);
      std::vector<Edge> new_edges;
      new_edges.reserve(total);
      for (NodeId i = 0; i < n; ++i) {
        new_offsets[i] = new_edges.size();
        auto it = overlay.find(i);
        if (it != overlay.end()) {
          new_edges.insert(new_edges.end(), it->second.begin(),
                           it->second.end());
        } else if (i < csr_nodes_) {
          new_edges.insert(new_edges.end(), edges.begin() + offsets[i],
                           edges.begin() + offsets[i + 1]);
        }
      }
      new_offsets[n] = new_edges.size();
      offsets = std::move(new_offsets);
      edges = std::move(new_edges);
      overlay.clear();
      return total;
    };
    num_triples_ = merge(out_overlay_, out_offsets_, out_edges_);
    merge(in_overlay_, in_offsets_, in_edges_);
  }
  dirty_nodes_.clear();
  csr_nodes_ = n;
  csr_built_ = true;
  finalized_ = true;
}

std::vector<NodeId> Graph::DirtyNodes() const {
  std::vector<NodeId> dirty = dirty_nodes_;
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  return dirty;
}

StatusOr<std::vector<NodeId>> Graph::Apply(const GraphDelta& delta) {
  if (delta.base_nodes() != NumNodes()) {
    return Status::InvalidArgument(
        "Graph::Apply: delta was staged against a graph with " +
        std::to_string(delta.base_nodes()) + " nodes, this graph has " +
        std::to_string(NumNodes()));
  }
  // Materialize staged nodes in staging order so their NodeIds come out
  // exactly as GraphDelta handed them to the caller.
  for (const GraphDelta::NewNode& nn : delta.new_nodes()) {
    NodeId id = nn.kind == NodeKind::kEntity ? AddEntity(nn.label)
                                             : AddValue(nn.label);
    (void)id;
  }
  for (const GraphDelta::DeltaTriple& t : delta.added()) {
    GKEYS_RETURN_IF_ERROR(AddTriple(t.subject, t.pred, t.object));
  }
  for (const GraphDelta::DeltaTriple& t : delta.removed()) {
    Symbol p = interner_.Lookup(t.pred);
    if (p == kNoSymbol) {
      return Status::NotFound("Graph::Apply: removed predicate '" + t.pred +
                              "' never occurs in the graph");
    }
    GKEYS_RETURN_IF_ERROR(RemoveTriple(t.subject, p, t.object));
  }
  std::vector<NodeId> dirty = DirtyNodes();
  Finalize();
  return dirty;
}

bool Graph::HasTriple(NodeId s, Symbol p, NodeId o) const {
  const auto adj = Out(s);
  Edge target{p, o};
  if (finalized_) {
    return std::binary_search(adj.begin(), adj.end(), target);
  }
  return std::find(adj.begin(), adj.end(), target) != adj.end();
}

std::span<const NodeId> Graph::EntitiesOfType(Symbol type) const {
  auto it = by_type_.find(type);
  if (it == by_type_.end()) return {};
  return it->second;
}

NodeId Graph::FindValue(std::string_view value) const {
  Symbol sym = interner_.Lookup(value);
  if (sym == kNoSymbol) return kNoNode;
  auto it = value_nodes_.find(sym);
  return it == value_nodes_.end() ? kNoNode : it->second;
}

std::vector<Symbol> Graph::EntityTypes() const {
  std::vector<Symbol> types;
  types.reserve(by_type_.size());
  for (const auto& [type, nodes] : by_type_) {
    if (!nodes.empty()) types.push_back(type);
  }
  std::sort(types.begin(), types.end());
  return types;
}

std::string Graph::DescribeNode(NodeId n) const {
  if (IsValue(n)) return "\"" + value_str(n) + "\"";
  return interner_.Resolve(entity_type(n)) + "#" + std::to_string(n);
}

size_t Graph::AdjacencyBytes() const {
  size_t bytes = (out_edges_.capacity() + in_edges_.capacity()) * sizeof(Edge) +
                 (out_offsets_.capacity() + in_offsets_.capacity()) *
                     sizeof(size_t);
  for (const auto& adj : out_build_) bytes += adj.capacity() * sizeof(Edge);
  for (const auto& adj : in_build_) bytes += adj.capacity() * sizeof(Edge);
  for (const auto& [node, adj] : out_overlay_) {
    bytes += adj.capacity() * sizeof(Edge);
  }
  for (const auto& [node, adj] : in_overlay_) {
    bytes += adj.capacity() * sizeof(Edge);
  }
  return bytes;
}

}  // namespace gkeys
