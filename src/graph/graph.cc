#include "graph/graph.h"

#include <algorithm>

namespace gkeys {

NodeId Graph::AddEntity(Symbol type) {
  if (finalized_) Thaw();
  NodeId id = static_cast<NodeId>(kinds_.size());
  kinds_.push_back(NodeKind::kEntity);
  labels_.push_back(type);
  out_build_.emplace_back();
  in_build_.emplace_back();
  by_type_[type].push_back(id);
  ++num_entities_;
  return id;
}

NodeId Graph::AddValue(std::string_view value) {
  Symbol sym = interner_.Intern(value);
  auto it = value_nodes_.find(sym);
  if (it != value_nodes_.end()) return it->second;
  if (finalized_) Thaw();
  NodeId id = static_cast<NodeId>(kinds_.size());
  kinds_.push_back(NodeKind::kValue);
  labels_.push_back(sym);
  out_build_.emplace_back();
  in_build_.emplace_back();
  value_nodes_.emplace(sym, id);
  return id;
}

Status Graph::AddTriple(NodeId s, Symbol p, NodeId o) {
  if (s >= kinds_.size() || o >= kinds_.size()) {
    return Status::InvalidArgument("AddTriple: node id out of range");
  }
  if (!IsEntity(s)) {
    return Status::InvalidArgument("AddTriple: subject must be an entity");
  }
  if (finalized_) Thaw();
  out_build_[s].push_back(Edge{p, o});
  in_build_[o].push_back(Edge{p, s});
  ++num_triples_;
  return Status::OK();
}

void Graph::Thaw() {
  out_build_.resize(NumNodes());
  in_build_.resize(NumNodes());
  for (NodeId n = 0; n < NumNodes(); ++n) {
    auto out = Out(n);
    out_build_[n].assign(out.begin(), out.end());
    auto in = In(n);
    in_build_[n].assign(in.begin(), in.end());
  }
  out_offsets_.clear();
  in_offsets_.clear();
  out_edges_.clear();
  in_edges_.clear();
  finalized_ = false;
}

void Graph::Finalize() {
  if (finalized_) return;
  const size_t n = NumNodes();
  auto compact = [n](std::vector<std::vector<Edge>>& build,
                     std::vector<size_t>& offsets,
                     std::vector<Edge>& edges) -> size_t {
    size_t total = 0;
    for (auto& adj : build) {
      std::sort(adj.begin(), adj.end());
      adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
      total += adj.size();
    }
    offsets.assign(n + 1, 0);
    edges.clear();
    edges.reserve(total);
    for (size_t i = 0; i < n; ++i) {
      offsets[i] = edges.size();
      edges.insert(edges.end(), build[i].begin(), build[i].end());
    }
    offsets[n] = edges.size();
    build.clear();
    build.shrink_to_fit();
    return total;
  };
  num_triples_ = compact(out_build_, out_offsets_, out_edges_);
  compact(in_build_, in_offsets_, in_edges_);
  finalized_ = true;
}

bool Graph::HasTriple(NodeId s, Symbol p, NodeId o) const {
  const auto adj = Out(s);
  Edge target{p, o};
  if (finalized_) {
    return std::binary_search(adj.begin(), adj.end(), target);
  }
  return std::find(adj.begin(), adj.end(), target) != adj.end();
}

std::span<const NodeId> Graph::EntitiesOfType(Symbol type) const {
  auto it = by_type_.find(type);
  if (it == by_type_.end()) return {};
  return it->second;
}

NodeId Graph::FindValue(std::string_view value) const {
  Symbol sym = interner_.Lookup(value);
  if (sym == kNoSymbol) return kNoNode;
  auto it = value_nodes_.find(sym);
  return it == value_nodes_.end() ? kNoNode : it->second;
}

std::vector<Symbol> Graph::EntityTypes() const {
  std::vector<Symbol> types;
  types.reserve(by_type_.size());
  for (const auto& [type, nodes] : by_type_) {
    if (!nodes.empty()) types.push_back(type);
  }
  std::sort(types.begin(), types.end());
  return types;
}

std::string Graph::DescribeNode(NodeId n) const {
  if (IsValue(n)) return "\"" + value_str(n) + "\"";
  return interner_.Resolve(entity_type(n)) + "#" + std::to_string(n);
}

size_t Graph::AdjacencyBytes() const {
  size_t bytes = (out_edges_.capacity() + in_edges_.capacity()) * sizeof(Edge) +
                 (out_offsets_.capacity() + in_offsets_.capacity()) *
                     sizeof(size_t);
  for (const auto& adj : out_build_) bytes += adj.capacity() * sizeof(Edge);
  for (const auto& adj : in_build_) bytes += adj.capacity() * sizeof(Edge);
  return bytes;
}

}  // namespace gkeys
