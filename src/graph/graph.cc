#include "graph/graph.h"

#include <algorithm>

namespace gkeys {

NodeId Graph::AddEntity(Symbol type) {
  NodeId id = static_cast<NodeId>(kinds_.size());
  kinds_.push_back(NodeKind::kEntity);
  labels_.push_back(type);
  out_.emplace_back();
  in_.emplace_back();
  by_type_[type].push_back(id);
  ++num_entities_;
  finalized_ = false;
  return id;
}

NodeId Graph::AddValue(std::string_view value) {
  Symbol sym = interner_.Intern(value);
  auto it = value_nodes_.find(sym);
  if (it != value_nodes_.end()) return it->second;
  NodeId id = static_cast<NodeId>(kinds_.size());
  kinds_.push_back(NodeKind::kValue);
  labels_.push_back(sym);
  out_.emplace_back();
  in_.emplace_back();
  value_nodes_.emplace(sym, id);
  finalized_ = false;
  return id;
}

Status Graph::AddTriple(NodeId s, Symbol p, NodeId o) {
  if (s >= kinds_.size() || o >= kinds_.size()) {
    return Status::InvalidArgument("AddTriple: node id out of range");
  }
  if (!IsEntity(s)) {
    return Status::InvalidArgument("AddTriple: subject must be an entity");
  }
  out_[s].push_back(Edge{p, o});
  in_[o].push_back(Edge{p, s});
  ++num_triples_;
  finalized_ = false;
  return Status::OK();
}

void Graph::Finalize() {
  if (finalized_) return;
  size_t triples = 0;
  for (auto& adj : out_) {
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
    triples += adj.size();
  }
  for (auto& adj : in_) {
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
  }
  num_triples_ = triples;
  finalized_ = true;
}

bool Graph::HasTriple(NodeId s, Symbol p, NodeId o) const {
  const auto& adj = out_[s];
  Edge target{p, o};
  if (finalized_) {
    return std::binary_search(adj.begin(), adj.end(), target);
  }
  return std::find(adj.begin(), adj.end(), target) != adj.end();
}

std::span<const NodeId> Graph::EntitiesOfType(Symbol type) const {
  auto it = by_type_.find(type);
  if (it == by_type_.end()) return {};
  return it->second;
}

NodeId Graph::FindValue(std::string_view value) const {
  Symbol sym = interner_.Lookup(value);
  if (sym == kNoSymbol) return kNoNode;
  auto it = value_nodes_.find(sym);
  return it == value_nodes_.end() ? kNoNode : it->second;
}

std::vector<Symbol> Graph::EntityTypes() const {
  std::vector<Symbol> types;
  types.reserve(by_type_.size());
  for (const auto& [type, nodes] : by_type_) {
    if (!nodes.empty()) types.push_back(type);
  }
  std::sort(types.begin(), types.end());
  return types;
}

std::string Graph::DescribeNode(NodeId n) const {
  if (IsValue(n)) return "\"" + value_str(n) + "\"";
  return interner_.Resolve(entity_type(n)) + "#" + std::to_string(n);
}

}  // namespace gkeys
