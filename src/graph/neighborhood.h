#ifndef GKEYS_GRAPH_NEIGHBORHOOD_H_
#define GKEYS_GRAPH_NEIGHBORHOOD_H_

#include <unordered_set>
#include <vector>

#include "graph/graph.h"

namespace gkeys {

/// A subset of the nodes of a graph, used to represent induced subgraphs
/// such as the d-neighbor Gd of an entity (paper §4.1). A triple (s, p, o)
/// belongs to the induced subgraph iff s and o are members and (s, p, o)
/// is a triple of the underlying graph.
class NodeSet {
 public:
  NodeSet() = default;
  explicit NodeSet(std::vector<NodeId> nodes) {
    members_.insert(nodes.begin(), nodes.end());
  }

  void Insert(NodeId n) { members_.insert(n); }
  bool Contains(NodeId n) const { return members_.count(n) > 0; }
  size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }

  /// Set union, in place.
  void UnionWith(const NodeSet& other) {
    members_.insert(other.members_.begin(), other.members_.end());
  }

  /// Keeps only members also present in `other`.
  void IntersectWith(const NodeSet& other) {
    for (auto it = members_.begin(); it != members_.end();) {
      if (!other.Contains(*it)) {
        it = members_.erase(it);
      } else {
        ++it;
      }
    }
  }

  std::vector<NodeId> ToVector() const {
    return std::vector<NodeId>(members_.begin(), members_.end());
  }

  auto begin() const { return members_.begin(); }
  auto end() const { return members_.end(); }

 private:
  std::unordered_set<NodeId> members_;
};

/// Computes the d-neighbor of `center`: all nodes within `d` hops of
/// `center`, treating edges as undirected (paper §4.1). The center itself
/// is always included. `d` ≥ 0.
NodeSet DNeighbor(const Graph& g, NodeId center, int d);

/// Number of triples of `g` induced by `nodes` (|Gd| in the paper's cost
/// analysis; used by the optimization-effectiveness benchmarks).
size_t InducedTripleCount(const Graph& g, const NodeSet& nodes);

}  // namespace gkeys

#endif  // GKEYS_GRAPH_NEIGHBORHOOD_H_
