#ifndef GKEYS_GRAPH_NEIGHBORHOOD_H_
#define GKEYS_GRAPH_NEIGHBORHOOD_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace gkeys {

/// A subset of the nodes of a graph, used to represent induced subgraphs
/// such as the d-neighbor Gd of an entity (paper §4.1). A triple (s, p, o)
/// belongs to the induced subgraph iff s and o are members and (s, p, o)
/// is a triple of the underlying graph.
///
/// Stored as a sorted, duplicate-free vector rather than a hash set: the
/// matching inner loops (VF2 / combined-search feasibility, pairing,
/// product-graph construction) only ever probe with Contains and scan in
/// order, so a flat array wins on locality and memory, and union /
/// intersection become linear merges. Ordered iteration is part of the
/// contract — consumers rely on ascending NodeId order.
class NodeSet {
 public:
  NodeSet() = default;
  explicit NodeSet(std::vector<NodeId> nodes) : nodes_(std::move(nodes)) {
    std::sort(nodes_.begin(), nodes_.end());
    nodes_.erase(std::unique(nodes_.begin(), nodes_.end()), nodes_.end());
  }

  /// Wraps a vector that is already sorted and duplicate-free (BFS and
  /// pairing build their results in bulk, then seal them with this).
  static NodeSet FromSorted(std::vector<NodeId> sorted_unique) {
    NodeSet s;
    s.nodes_ = std::move(sorted_unique);
    return s;
  }

  /// Sorted insert; O(size) worst case. Bulk construction should collect
  /// into a vector and use the constructor / FromSorted instead.
  void Insert(NodeId n) {
    auto it = std::lower_bound(nodes_.begin(), nodes_.end(), n);
    if (it == nodes_.end() || *it != n) nodes_.insert(it, n);
  }

  bool Contains(NodeId n) const {
    return std::binary_search(nodes_.begin(), nodes_.end(), n);
  }

  size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  /// Set union, in place: one linear merge.
  void UnionWith(const NodeSet& other) {
    if (other.empty()) return;
    if (empty()) {
      nodes_ = other.nodes_;
      return;
    }
    std::vector<NodeId> merged;
    merged.reserve(nodes_.size() + other.nodes_.size());
    std::set_union(nodes_.begin(), nodes_.end(), other.nodes_.begin(),
                   other.nodes_.end(), std::back_inserter(merged));
    nodes_ = std::move(merged);
  }

  /// Keeps only members also present in `other`: one linear merge.
  void IntersectWith(const NodeSet& other) {
    auto out = nodes_.begin();
    auto a = nodes_.begin();
    auto b = other.nodes_.begin();
    while (a != nodes_.end() && b != other.nodes_.end()) {
      if (*a < *b) {
        ++a;
      } else if (*b < *a) {
        ++b;
      } else {
        *out++ = *a++;
        ++b;
      }
    }
    nodes_.erase(out, nodes_.end());
  }

  std::vector<NodeId> ToVector() const { return nodes_; }

  /// The members in ascending order (the backing storage itself).
  const std::vector<NodeId>& sorted() const { return nodes_; }

  auto begin() const { return nodes_.begin(); }
  auto end() const { return nodes_.end(); }

  size_t MemoryBytes() const { return nodes_.capacity() * sizeof(NodeId); }

  friend bool operator==(const NodeSet& a, const NodeSet& b) {
    return a.nodes_ == b.nodes_;
  }

 private:
  std::vector<NodeId> nodes_;
};

/// Computes the d-neighbor of `center`: all nodes within `d` hops of
/// `center`, treating edges as undirected (paper §4.1). The center itself
/// is always included. `d` ≥ 0.
NodeSet DNeighbor(const Graph& g, NodeId center, int d);

/// Number of triples of `g` induced by `nodes` (|Gd| in the paper's cost
/// analysis; used by the optimization-effectiveness benchmarks).
size_t InducedTripleCount(const Graph& g, const NodeSet& nodes);

namespace internal {
/// Capacity in bytes of the calling thread's DNeighbor visited scratch.
/// Test hook for the shrink-on-much-smaller-graph policy; the buffer is
/// released when it is ≥ 4× the current graph (and ≥ 64 KiB).
size_t DNeighborScratchBytes();
}  // namespace internal

}  // namespace gkeys

#endif  // GKEYS_GRAPH_NEIGHBORHOOD_H_
