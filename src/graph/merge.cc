#include "graph/merge.h"

#include "eq/equivalence.h"

namespace gkeys {

FusionResult FuseEntities(
    const Graph& g,
    const std::vector<std::pair<NodeId, NodeId>>& identified_pairs) {
  EquivalenceRelation classes(g.NumNodes());
  for (auto [a, b] : identified_pairs) classes.Union(a, b);

  FusionResult out;
  out.node_map.assign(g.NumNodes(), kNoNode);
  // One pass in id order: the smallest member of each class (its root
  // visit order) becomes the representative, so output ids are stable.
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    NodeId root = classes.Find(n);
    if (out.node_map[root] == kNoNode) {
      // First member of this class seen: materialize the node.
      if (g.IsEntity(n)) {
        out.node_map[root] = out.graph.AddEntity(
            g.interner().Resolve(g.entity_type(n)));
      } else {
        out.node_map[root] = out.graph.AddValue(g.value_str(n));
      }
    } else if (g.IsEntity(n)) {
      ++out.entities_fused;
    }
    out.node_map[n] = out.node_map[root];
  }
  g.ForEachTriple([&](const Triple& t) {
    out.graph.AddTriple(out.node_map[t.subject],
                              g.interner().Resolve(t.pred),
                              out.node_map[t.object]).IgnoreError();
  });
  out.graph.Finalize();  // deduplicates the parallel fused triples
  return out;
}

}  // namespace gkeys
