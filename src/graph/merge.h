#ifndef GKEYS_GRAPH_MERGE_H_
#define GKEYS_GRAPH_MERGE_H_

#include <utility>
#include <vector>

#include "graph/graph.h"

namespace gkeys {

/// Result of fusing identified entities into single nodes.
struct FusionResult {
  Graph graph;
  /// old NodeId -> new NodeId. All members of one equivalence class map
  /// to the same new node.
  std::vector<NodeId> node_map;
  /// Number of entity nodes eliminated by fusion.
  size_t entities_fused = 0;
};

/// Contracts each equivalence class induced by `identified_pairs` (the
/// output of entity matching) into a single entity, deduplicating the
/// resulting parallel triples — the "fuse information from different
/// sources that refers to the same entity" step of knowledge fusion
/// (paper §1). The fused entity carries the union of all class members'
/// triples. Pairs must connect same-type entities (as produced by the
/// matcher); the representative keeps that type.
FusionResult FuseEntities(
    const Graph& g,
    const std::vector<std::pair<NodeId, NodeId>>& identified_pairs);

}  // namespace gkeys

#endif  // GKEYS_GRAPH_MERGE_H_
