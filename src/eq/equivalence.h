#ifndef GKEYS_EQ_EQUIVALENCE_H_
#define GKEYS_EQ_EQUIVALENCE_H_

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace gkeys {

/// The equivalence relation Eq over entities of a graph (paper §3.1).
/// Starts as node identity (every entity in its own class) and grows as
/// chase steps identify pairs. Union-find with path compression + union by
/// rank; transitivity of Eq (the paper's TC computation) is implicit in the
/// union-find classes.
class EquivalenceRelation {
 public:
  /// Creates the identity relation over node ids [0, num_nodes).
  explicit EquivalenceRelation(size_t num_nodes);

  /// Representative of n's class.
  NodeId Find(NodeId n) const;

  /// Whether (a, b) ∈ Eq.
  bool Same(NodeId a, NodeId b) const { return Find(a) == Find(b); }

  /// Merges the classes of a and b. Returns true iff they were distinct
  /// (i.e., the relation grew).
  bool Union(NodeId a, NodeId b);

  size_t num_nodes() const { return parent_.size(); }

  /// Number of Union calls that actually merged two classes.
  size_t num_merges() const { return merges_; }

  /// All classes with ≥ 2 members, each sorted ascending.
  std::vector<std::vector<NodeId>> NontrivialClasses() const;

  /// All identified pairs (a, b) with a < b — i.e., chase(G, Σ) minus the
  /// trivial reflexive pairs. Quadratic in class sizes (matches the
  /// paper's output, which lists every identified pair).
  std::vector<std::pair<NodeId, NodeId>> IdentifiedPairs() const;

  friend bool operator==(const EquivalenceRelation& a,
                         const EquivalenceRelation& b) {
    return a.IdentifiedPairs() == b.IdentifiedPairs();
  }

 private:
  mutable std::vector<NodeId> parent_;
  std::vector<uint8_t> rank_;
  size_t merges_ = 0;
};

/// Lock-free concurrent union-find (Anderson–Woll style) shared by worker
/// threads in the EMMR reducers and the EMVC engine. `Same` may transiently
/// miss a racing merge; both algorithms tolerate that (the pair is simply
/// re-checked in a later round / message), so the fixpoint is unaffected —
/// the same guarantee the paper's global-variable Eq in HDFS provides.
class ConcurrentEquivalence {
 public:
  explicit ConcurrentEquivalence(size_t num_nodes);

  NodeId Find(NodeId n) const;
  bool Same(NodeId a, NodeId b) const;
  /// Returns true iff this call merged two distinct classes.
  bool Union(NodeId a, NodeId b);

  size_t num_nodes() const { return parent_.size(); }
  size_t num_merges() const {
    return merges_.load(std::memory_order_relaxed);
  }

  /// Sequential snapshot (call only when workers are quiescent).
  EquivalenceRelation Snapshot() const;

 private:
  mutable std::vector<std::atomic<NodeId>> parent_;
  std::atomic<size_t> merges_{0};
};

/// Read-only view over either relation flavor, so matchers take one type.
class EqView {
 public:
  EqView() = default;
  explicit EqView(const EquivalenceRelation* seq) : seq_(seq) {}
  explicit EqView(const ConcurrentEquivalence* conc) : conc_(conc) {}

  /// Whether (a, b) ∈ Eq. With no underlying relation, falls back to node
  /// identity (Eq0).
  bool Same(NodeId a, NodeId b) const {
    if (seq_ != nullptr) return seq_->Same(a, b);
    if (conc_ != nullptr) return conc_->Same(a, b);
    return a == b;
  }

 private:
  const EquivalenceRelation* seq_ = nullptr;
  const ConcurrentEquivalence* conc_ = nullptr;
};

}  // namespace gkeys

#endif  // GKEYS_EQ_EQUIVALENCE_H_
