#include "eq/equivalence.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

namespace gkeys {

EquivalenceRelation::EquivalenceRelation(size_t num_nodes)
    : parent_(num_nodes), rank_(num_nodes, 0) {
  std::iota(parent_.begin(), parent_.end(), 0);
}

NodeId EquivalenceRelation::Find(NodeId n) const {
  NodeId root = n;
  while (parent_[root] != root) root = parent_[root];
  // Path compression.
  while (parent_[n] != root) {
    NodeId next = parent_[n];
    parent_[n] = root;
    n = next;
  }
  return root;
}

bool EquivalenceRelation::Union(NodeId a, NodeId b) {
  NodeId ra = Find(a), rb = Find(b);
  if (ra == rb) return false;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  ++merges_;
  return true;
}

std::vector<std::vector<NodeId>> EquivalenceRelation::NontrivialClasses()
    const {
  // Two counting passes instead of a hash-of-vectors over every node:
  // nodes in singleton classes (almost all of them) never allocate.
  std::vector<uint32_t> count(parent_.size(), 0);
  for (NodeId n = 0; n < parent_.size(); ++n) ++count[Find(n)];
  constexpr uint32_t kNoClass = UINT32_MAX;
  std::vector<uint32_t> slot(parent_.size(), kNoClass);
  std::vector<std::vector<NodeId>> classes;
  for (NodeId n = 0; n < parent_.size(); ++n) {
    NodeId root = Find(n);
    if (count[root] < 2) continue;
    if (slot[root] == kNoClass) {
      slot[root] = static_cast<uint32_t>(classes.size());
      classes.emplace_back();
      classes.back().reserve(count[root]);
    }
    // Ascending n keeps every class sorted.
    classes[slot[root]].push_back(n);
  }
  std::sort(classes.begin(), classes.end());
  return classes;
}

std::vector<std::pair<NodeId, NodeId>> EquivalenceRelation::IdentifiedPairs()
    const {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (const auto& cls : NontrivialClasses()) {
    for (size_t i = 0; i < cls.size(); ++i) {
      for (size_t j = i + 1; j < cls.size(); ++j) {
        pairs.emplace_back(cls[i], cls[j]);
      }
    }
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

ConcurrentEquivalence::ConcurrentEquivalence(size_t num_nodes)
    : parent_(num_nodes) {
  for (size_t i = 0; i < num_nodes; ++i) {
    parent_[i].store(static_cast<NodeId>(i), std::memory_order_relaxed);
  }
}

NodeId ConcurrentEquivalence::Find(NodeId n) const {
  // Path halving with relaxed CAS; safe because parents only ever move
  // toward roots.
  for (;;) {
    NodeId p = parent_[n].load(std::memory_order_acquire);
    if (p == n) return n;
    NodeId gp = parent_[p].load(std::memory_order_acquire);
    if (gp == p) return p;
    parent_[n].compare_exchange_weak(p, gp, std::memory_order_release,
                                     std::memory_order_relaxed);
    n = gp;
  }
}

bool ConcurrentEquivalence::Same(NodeId a, NodeId b) const {
  for (;;) {
    NodeId ra = Find(a), rb = Find(b);
    if (ra == rb) return true;
    // ra might have been merged under rb (or elsewhere) between the two
    // Finds; it is still a root iff its parent is itself.
    if (parent_[ra].load(std::memory_order_acquire) == ra) return false;
  }
}

bool ConcurrentEquivalence::Union(NodeId a, NodeId b) {
  for (;;) {
    NodeId ra = Find(a), rb = Find(b);
    if (ra == rb) return false;
    // Deterministic tie-break: larger root id points at smaller, which
    // keeps the structure acyclic under concurrency.
    if (ra < rb) std::swap(ra, rb);
    NodeId expected = ra;
    if (parent_[ra].compare_exchange_strong(expected, rb,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
      merges_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    // Lost the race; retry from the new roots.
  }
}

EquivalenceRelation ConcurrentEquivalence::Snapshot() const {
  EquivalenceRelation seq(parent_.size());
  for (NodeId n = 0; n < parent_.size(); ++n) {
    NodeId p = parent_[n].load(std::memory_order_acquire);
    if (p != n) seq.Union(n, p);
  }
  return seq;
}

}  // namespace gkeys
