#include "core/provenance.h"

#include <numeric>

#include "common/timer.h"

namespace gkeys {

ProvenanceResult ChaseWithProvenance(const Graph& g, const KeySet& keys) {
  Timer prep_timer;
  EmOptions eopts;
  EmContext ctx(g, keys, eopts);

  ProvenanceResult out;
  out.result.stats.prep_seconds = prep_timer.Seconds();
  out.result.stats.candidates_initial = ctx.candidates_initial();
  out.result.stats.candidates = ctx.candidates().size();

  Timer run_timer;
  EquivalenceRelation eq(g.NumNodes());
  EqView view(&eq);
  std::vector<uint32_t> active(ctx.candidates().size());
  std::iota(active.begin(), active.end(), 0);
  std::vector<uint32_t> next;
  bool changed = true;
  while (changed && !active.empty()) {
    changed = false;
    ++out.result.stats.rounds;
    next.clear();
    for (uint32_t idx : active) {
      const Candidate& c = ctx.candidates()[idx];
      if (eq.Same(c.e1, c.e2)) continue;
      ++out.result.stats.iso_checks;
      bool fired = false;
      for (int ki : *c.keys) {
        const CompiledKey& ck = ctx.compiled_keys()[ki];
        Witness w;
        if (!KeyIdentifiesWitness(g, ck.cp, c.e1, c.e2, view, c.nbr1,
                                  c.nbr2, &w, &out.result.stats.search)) {
          continue;
        }
        ChaseStep step;
        step.e1 = c.e1;
        step.e2 = c.e2;
        step.key = ck.key->name();
        step.round = out.result.stats.rounds;
        for (size_t v = 0; v < ck.cp.nodes.size(); ++v) {
          if (static_cast<int>(v) == ck.cp.designated) continue;
          if (ck.cp.nodes[v].kind != VarKind::kEntityVar) continue;
          auto [a, b] = w[v];
          if (a != b) step.premises.emplace_back(std::min(a, b),
                                                 std::max(a, b));
        }
        out.steps.push_back(std::move(step));
        eq.Union(c.e1, c.e2);
        changed = true;
        fired = true;
        break;
      }
      if (!fired) next.push_back(idx);
    }
    active.swap(next);
  }
  out.result.stats.run_seconds = run_timer.Seconds();
  out.result.pairs = eq.IdentifiedPairs();
  out.result.stats.confirmed = out.result.pairs.size();
  return out;
}

std::string FormatChaseStep(const Graph& g, const ChaseStep& step) {
  std::string s = g.DescribeNode(step.e1) + " == " +
                  g.DescribeNode(step.e2) + "  by " + step.key +
                  "  [round " + std::to_string(step.round) + "]";
  if (!step.premises.empty()) {
    s += "  because";
    for (size_t i = 0; i < step.premises.size(); ++i) {
      s += (i == 0 ? " " : ", ");
      s += g.DescribeNode(step.premises[i].first) + " == " +
           g.DescribeNode(step.premises[i].second);
    }
  }
  return s;
}

bool ValidateDerivation(const Graph& g, const KeySet& keys,
                        const std::vector<ChaseStep>& steps) {
  (void)keys;
  EquivalenceRelation derived(g.NumNodes());
  for (const ChaseStep& step : steps) {
    for (const auto& [a, b] : step.premises) {
      if (!derived.Same(a, b)) return false;  // dangling premise
    }
    derived.Union(step.e1, step.e2);
  }
  return true;
}

RetractionResult RetractDerivations(
    const Graph& g, std::span<const Derivation> derivations) {
  RetractionResult out;
  EquivalenceRelation replay(g.NumNodes());
  for (const Derivation& d : derivations) {
    bool valid = true;
    for (const WitnessTriple& t : d.triples) {
      if (!g.HasTriple(t.s, t.p, t.o)) {
        valid = false;
        break;
      }
    }
    if (valid) {
      for (const auto& [a, b] : d.premises) {
        if (!replay.Same(a, b)) {
          valid = false;
          break;
        }
      }
    }
    if (!valid) {
      ++out.retracted;
      continue;
    }
    replay.Union(d.e1, d.e2);
    out.surviving.push_back(d);
  }
  out.seed_pairs = replay.IdentifiedPairs();
  out.closure = std::move(replay);
  return out;
}

}  // namespace gkeys
