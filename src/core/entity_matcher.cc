#include "core/entity_matcher.h"

#include <algorithm>

namespace gkeys {

MatchResult MatchEntities(const Graph& g, const KeySet& keys,
                          Algorithm algorithm, int processors) {
  return MatchEntities(g, keys, algorithm,
                       EmOptions::For(algorithm, processors));
}

MatchResult MatchEntities(const Graph& g, const KeySet& keys,
                          Algorithm algorithm, const EmOptions& options) {
  // Thin wrapper over the plan API: compile a single-use plan with the
  // preparation flags implied by `options`, then run. The legacy surface
  // has no error channel, so any Status collapses to an empty result.
  int p = std::max(1, options.processors);
  PlanOptions popts = PlanOptions::For(algorithm, p);
  popts.use_pairing = options.use_pairing;
  popts.use_blocking = options.use_blocking;
  auto plan = Matcher::Compile(g, keys, popts);
  if (!plan.ok()) return {};

  Matcher matcher(algorithm);
  matcher.options(options).processors(p);
  auto r = matcher.Run(*plan);
  return r.ok() ? *std::move(r) : MatchResult{};
}

}  // namespace gkeys
