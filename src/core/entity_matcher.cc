#include "core/entity_matcher.h"

namespace gkeys {

MatchResult MatchEntities(const Graph& g, const KeySet& keys,
                          Algorithm algorithm, int processors) {
  return MatchEntities(g, keys, algorithm,
                       EmOptions::For(algorithm, processors));
}

MatchResult MatchEntities(const Graph& g, const KeySet& keys,
                          Algorithm algorithm, const EmOptions& options) {
  switch (algorithm) {
    case Algorithm::kNaiveChase: {
      ChaseOptions copts;
      copts.use_vf2 = options.use_vf2;
      return Chase(g, keys, copts);
    }
    case Algorithm::kEmMr:
    case Algorithm::kEmVf2Mr:
    case Algorithm::kEmOptMr:
      return RunEmMapReduce(g, keys, options);
    case Algorithm::kEmVc:
    case Algorithm::kEmOptVc:
      return RunEmVertexCentric(g, keys, options);
  }
  return {};
}

}  // namespace gkeys
