#include "core/em_mapreduce.h"

#include <mutex>
#include <numeric>

#include "common/timer.h"
#include "mapreduce/mapreduce.h"

namespace gkeys {

namespace {

// Status codes flowing through the MapReduce rounds.
constexpr uint8_t kUnidentified = 0;  // keep for next round
constexpr uint8_t kNewlyIdentified = 1;  // merge into Eq
constexpr uint8_t kTcIdentified = 2;  // became Same transitively

}  // namespace

MatchResult RunEmMapReduce(const Graph& g, const KeySet& keys,
                           const EmOptions& options) {
  Timer prep;
  EmContext ctx(g, keys, options);
  MatchResult result = RunEmMapReduce(ctx);
  result.stats.prep_seconds = prep.Seconds() - result.stats.run_seconds;
  return result;
}

MatchResult RunEmMapReduce(const EmContext& ctx) {
  auto r = RunEmMapReduce(ctx, ctx.options(), nullptr);
  // Without a sink there is no cancellation source; only a time budget
  // (EmOptions::time_budget_seconds) can fail the run, and it surfaces
  // here as an empty result — budgeted callers use the StatusOr overload.
  return r.ok() ? *std::move(r) : MatchResult{};
}

StatusOr<MatchResult> RunEmMapReduce(const EmContext& ctx,
                                     const EmOptions& opts, MatchSink* sink,
                                     const RematchSeed* seed) {
  const Graph& g = ctx.graph();
  const auto& candidates = ctx.candidates();
  const int p = std::max(1, opts.processors);

  MatchResult result;
  result.stats.candidates_initial = ctx.candidates_initial();
  result.stats.candidates_blocked = ctx.candidates_blocked();
  result.stats.candidates = candidates.size();
  result.stats.neighbor_nodes = ctx.neighbor_nodes();
  result.stats.neighbor_nodes_reduced = ctx.neighbor_nodes_reduced();

  Timer run;
  ConcurrentEquivalence eq(g.NumNodes());
  EqView view(&eq);
  internal::MergeLog merge_log(internal::LogShardCount(opts));
  internal::DerivationLog deriv_log(internal::LogShardCount(opts));

  // Search stats aggregated lock-free (mappers run concurrently; a mutex
  // here would serialize the map phase and destroy parallel scalability).
  std::atomic<uint64_t> iso_checks{0};
  std::atomic<uint64_t> stat_expansions{0};
  std::atomic<uint64_t> stat_feasibility{0};
  std::atomic<uint64_t> stat_full{0};

  // MapEM (paper Fig. 4). V1: 1 = run the isomorphism check, 0 = carry
  // forward unchecked (incremental optimization skips quiet pairs).
  using V2 = std::pair<uint32_t, uint8_t>;
  mapreduce::Job<uint32_t, uint8_t, NodeId, V2, uint32_t, uint8_t> job(
      /*map=*/
      [&](const uint32_t& idx, const uint8_t& check,
          mapreduce::Emitter<NodeId, V2>& out) {
        const Candidate& c = candidates[idx];
        if (eq.Same(c.e1, c.e2)) {
          // Identified transitively since last round: drop from the
          // pipeline, but tell the reducer so dependents get re-checked.
          out.Emit(c.e1, {idx, kTcIdentified});
          return;
        }
        if (check != 0) {
          SearchStats local;
          iso_checks.fetch_add(1, std::memory_order_relaxed);
          bool found;
          if (opts.record_provenance) {
            // Recorded in map order: premises were Same under the
            // previous rounds' Eq, whose derivations are already logged.
            thread_local Witness witness;
            int fired = -1;
            found = ctx.IdentifiesWitness(c, view, &fired, &witness, &local,
                                          /*unrestricted=*/false,
                                          opts.use_vf2);
            if (found) deriv_log.Record(ctx.MakeDerivation(c, fired, witness));
          } else {
            found = ctx.Identifies(c, view, &local,
                                   /*unrestricted=*/false, opts.use_vf2);
          }
          stat_expansions.fetch_add(local.expansions,
                                    std::memory_order_relaxed);
          stat_feasibility.fetch_add(local.feasibility_checks,
                                     std::memory_order_relaxed);
          stat_full.fetch_add(local.full_instantiations,
                              std::memory_order_relaxed);
          if (found) {
            out.Emit(c.e1, {idx, kNewlyIdentified});
            out.Emit(c.e2, {idx, kNewlyIdentified});
            return;
          }
        }
        out.Emit(c.e1, {idx, kUnidentified});
      },
      /*reduce=*/
      [&](const NodeId&, const std::vector<V2>& values,
          mapreduce::Emitter<uint32_t, uint8_t>& out) {
        for (const auto& [idx, code] : values) {
          if (code == kNewlyIdentified) {
            const Candidate& c = candidates[idx];
            // TC is implicit in union-find.
            if (eq.Union(c.e1, c.e2) && sink != nullptr) {
              merge_log.Record(c.e1, c.e2);
            }
            out.Emit(idx, kNewlyIdentified);
          } else if (code == kTcIdentified) {
            out.Emit(idx, kTcIdentified);
          } else {
            out.Emit(idx, kUnidentified);
          }
        }
      });

  // Seeded rematch: Eq starts at the previous fixpoint. Pairs already
  // equal under the seed had every consequence drawn in the previous run:
  // mark them (and seed-equal ghosts) done up front so only NEW merges
  // wake dependents.
  std::vector<uint8_t> ghost_done(ctx.ghosts().size(), 0);
  std::vector<uint8_t> tc_done(candidates.size(), 0);
  if (seed != nullptr) {
    for (const auto& [a, b] : seed->prev_pairs) eq.Union(a, b);
    for (uint32_t i = 0; i < candidates.size(); ++i) {
      if (eq.Same(candidates[i].e1, candidates[i].e2)) tc_done[i] = 1;
    }
    for (uint32_t gi = 0; gi < ctx.ghosts().size(); ++gi) {
      const auto& ghost = ctx.ghosts()[gi];
      if (eq.Same(ghost.e1, ghost.e2)) ghost_done[gi] = 1;
    }
  }

  // DriverMR: choose the first round's inputs. With the dependency
  // optimization, start from L0 (pairs carrying a value-based key);
  // everything else enters in round 2, after its dependencies had a
  // chance to fire. A seeded rematch instead admits exactly the dirty
  // candidates; clean ones are pulled in by the wake-ups below.
  std::vector<std::pair<uint32_t, uint8_t>> inputs;
  std::vector<uint8_t> entered(candidates.size(), 0);
  bool deferred_pending = false;
  if (seed != nullptr) {
    for (uint32_t i : seed->active) {
      inputs.emplace_back(i, 1);
      entered[i] = 1;
    }
  } else {
    for (uint32_t i = 0; i < candidates.size(); ++i) {
      if (opts.use_dependency && !candidates[i].has_value_based_key) {
        deferred_pending = true;
        continue;
      }
      inputs.emplace_back(i, 1);
      entered[i] = 1;
    }
  }

  internal::PairStreamer streamer(sink, g.NumNodes());
  if (seed != nullptr) streamer.SeedClasses(seed->prev_pairs);
  auto end_of_round = [&]() -> Status {
    if (sink == nullptr) return Status::OK();
    result.stats.confirmed = streamer.EmitMerges(merge_log.Drain());
    result.stats.iso_checks = iso_checks.load();
    sink->OnProgress(result.stats);
    if (sink->cancelled()) {
      return Status::Cancelled("entity matching cancelled after round " +
                               std::to_string(result.stats.rounds));
    }
    return Status::OK();
  };

  while (!inputs.empty() || deferred_pending) {
    GKEYS_RETURN_IF_ERROR(CheckTimeBudget(run.Seconds(),
                                          opts.time_budget_seconds,
                                          result.stats.rounds));
    ++result.stats.rounds;
    size_t merges_before = eq.num_merges();
    auto outputs = job.Run(inputs, p);

    // Collect per-pair outcomes (a pair may appear twice when identified).
    std::vector<uint32_t> identified;
    std::vector<uint32_t> carried;
    {
      std::vector<uint8_t> seen(candidates.size(), 0);
      for (const auto& [idx, code] : outputs) {
        if (seen[idx]) continue;
        seen[idx] = 1;
        if (code == kUnidentified) {
          carried.push_back(idx);
        } else {
          identified.push_back(idx);
        }
      }
    }

    bool changed = eq.num_merges() != merges_before;

    // Mark dependents of everything identified this round dirty.
    std::vector<uint8_t> dirty(candidates.size(), 0);
    for (uint32_t idx : identified) {
      for (uint32_t dep : ctx.dependents()[idx]) dirty[dep] = 1;
    }
    // Seeded rematch: candidates outside the pipeline never emit
    // kTcIdentified, so scan them for transitive equality here and wake
    // their dependents the same way.
    if (seed != nullptr && changed) {
      for (uint32_t i = 0; i < candidates.size(); ++i) {
        if (tc_done[i] != 0 || entered[i] != 0) continue;
        if (!eq.Same(candidates[i].e1, candidates[i].e2)) continue;
        tc_done[i] = 1;
        for (uint32_t dep : ctx.dependents()[i]) dirty[dep] = 1;
      }
    }
    // Ghost pairs: dropped from L by pairing but depended upon. When one
    // becomes equal transitively, its dependents must be re-checked.
    for (uint32_t gi = 0; gi < ctx.ghosts().size(); ++gi) {
      if (ghost_done[gi]) continue;
      const auto& ghost = ctx.ghosts()[gi];
      if (!eq.Same(ghost.e1, ghost.e2)) continue;
      ghost_done[gi] = 1;
      for (uint32_t dep : ghost.dependents) dirty[dep] = 1;
    }

    GKEYS_RETURN_IF_ERROR(end_of_round());

    inputs.clear();
    if (deferred_pending) {
      // Round 2 of the dependency optimization: admit the deferred pairs.
      for (uint32_t i = 0; i < candidates.size(); ++i) {
        if (!entered[i]) {
          inputs.emplace_back(i, 1);
          entered[i] = 1;
        }
      }
      deferred_pending = false;
      // Carried pairs continue (checked again only if dirty when the
      // incremental optimization is on).
      for (uint32_t idx : carried) {
        inputs.emplace_back(idx,
                            (!opts.use_incremental || dirty[idx]) ? 1 : 0);
      }
      continue;
    }
    if (!changed) break;  // Eq is a fixpoint (paper Fig. 4 line 5)
    for (uint32_t idx : carried) {
      inputs.emplace_back(idx,
                          (!opts.use_incremental || dirty[idx]) ? 1 : 0);
    }
    // Seeded rematch: clean candidates woken by this round's merges join
    // the pipeline (in the full run everything entered in rounds 1–2).
    if (seed != nullptr) {
      for (uint32_t i = 0; i < candidates.size(); ++i) {
        if (dirty[i] != 0 && entered[i] == 0) {
          inputs.emplace_back(i, 1);
          entered[i] = 1;
        }
      }
    }
  }

  result.stats.run_seconds = run.Seconds();
  result.stats.iso_checks = iso_checks.load();
  result.stats.search.expansions = stat_expansions.load();
  result.stats.search.feasibility_checks = stat_feasibility.load();
  result.stats.search.full_instantiations = stat_full.load();
  internal::AssembleDerivations(result, seed, opts.record_provenance,
                                deriv_log.Take());
  result.pairs = eq.Snapshot().IdentifiedPairs();
  result.stats.confirmed = result.pairs.size();
  GKEYS_RETURN_IF_ERROR(streamer.Finish(result.pairs));
  return result;
}

}  // namespace gkeys
