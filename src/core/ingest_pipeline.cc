#include "core/ingest_pipeline.h"

#include <deque>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/timer.h"
#include "core/matcher.h"
#include "io/fast_triples.h"

namespace gkeys {
namespace {

/// One batch after phase A: the raw text (tokens point into it) plus its
/// tokenized lines. Moves only — the string's heap buffer keeps the
/// string_views valid across the queue hop.
struct ParsedBatch {
  size_t index = 0;
  std::string text;
  TokenizedText tokens;
};

/// Bounded SPSC handoff between the tokenize thread and the engine.
/// Push blocks while the queue is full (backpressure on parse-ahead);
/// either side can close, waking the other: a closed consumer makes
/// Push fail fast, a closed producer makes Pop drain then end.
class BatchQueue {
 public:
  explicit BatchQueue(size_t depth) : depth_(depth < 1 ? 1 : depth) {}

  /// Producer. False when the consumer closed (stop tokenizing).
  bool Push(ParsedBatch batch) {
    MutexLock lock(mu_);
    cv_.Wait(lock, [this]() GKEYS_REQUIRES(mu_) {
      return queue_.size() < depth_ || consumer_closed_;
    });
    if (consumer_closed_) return false;
    queue_.push_back(std::move(batch));
    cv_.NotifyAll();
    return true;
  }

  /// Consumer, non-blocking: a batch if one is already waiting, else
  /// nullopt (even while the producer is still running). Group commit
  /// uses this to take exactly the backlog without ever stalling on the
  /// tokenize stage.
  std::optional<ParsedBatch> TryPop() {
    MutexLock lock(mu_);
    if (queue_.empty()) return std::nullopt;
    ParsedBatch batch = std::move(queue_.front());
    queue_.pop_front();
    cv_.NotifyAll();
    return batch;
  }

  /// Consumer. nullopt when the producer closed and the queue drained.
  std::optional<ParsedBatch> Pop() {
    MutexLock lock(mu_);
    cv_.Wait(lock, [this]() GKEYS_REQUIRES(mu_) {
      return !queue_.empty() || producer_closed_;
    });
    if (queue_.empty()) return std::nullopt;
    ParsedBatch batch = std::move(queue_.front());
    queue_.pop_front();
    cv_.NotifyAll();
    return batch;
  }

  void CloseProducer() {
    MutexLock lock(mu_);
    producer_closed_ = true;
    cv_.NotifyAll();
  }

  void CloseConsumer() {
    MutexLock lock(mu_);
    consumer_closed_ = true;
    cv_.NotifyAll();
  }

 private:
  const size_t depth_;
  Mutex mu_;
  CondVar cv_;
  std::deque<ParsedBatch> queue_ GKEYS_GUARDED_BY(mu_);
  bool producer_closed_ GKEYS_GUARDED_BY(mu_) = false;
  bool consumer_closed_ GKEYS_GUARDED_BY(mu_) = false;
};

bool Cancelled(const IngestOptions& opts) {
  return opts.cancelled && opts.cancelled();
}

}  // namespace

IngestStats RunIngestPipeline(const Matcher& matcher,
                              const IngestSession& session,
                              const IngestSource& source,
                              const IngestOptions& opts,
                              const IngestObserver& observer) {
  IngestStats stats;
  if (session.graph == nullptr || session.plan == nullptr ||
      session.result == nullptr || session.entity_names == nullptr) {
    stats.status =
        Status::InvalidArgument("ingest: incomplete session (null pointer)");
    return stats;
  }
  if (!source) {
    stats.status = Status::InvalidArgument("ingest: null batch source");
    return stats;
  }

  BatchQueue queue(opts.queue_depth);

  // Tokenize stage. Owns the source; phase A only, so it never touches
  // the session the engine below is mutating. Its outcomes flow back
  // through the queue (per-batch tokens) and these two slots (stream-end
  // reason + stage clock), read after join.
  Status producer_status;
  double producer_parse_seconds = 0;
  std::thread tokenizer([&]() {
    for (size_t index = 0;; ++index) {
      if (Cancelled(opts)) {
        producer_status = Status::Cancelled("ingest cancelled");
        break;
      }
      std::optional<std::string> text = source();
      if (!text.has_value()) break;  // end of stream
      ParsedBatch batch;
      batch.index = index;
      batch.text = *std::move(text);
      Timer parse_timer;
      batch.tokens = TokenizeDeltaText(batch.text, opts.parse_threads);
      producer_parse_seconds += parse_timer.Seconds();
      if (!queue.Push(std::move(batch))) break;  // engine stopped early
    }
    queue.CloseProducer();
  });

  // Engine stage (this thread): bind → Apply → Patch → Rematch, serial,
  // in commit order. Stops at the first failure with the session still
  // at the last committed batch.
  Status engine_status;

  // One Apply → Patch → Rematch pass, advancing the session past `delta`
  // (which must be non-empty).
  auto run_engine_pass = [&](const GraphDelta& delta) -> Status {
    Timer apply_timer;
    auto dirty = session.graph->Apply(delta);
    stats.seconds.apply += apply_timer.Seconds();
    GKEYS_RETURN_IF_ERROR(dirty.status());
    Timer patch_timer;
    StatusOr<MatchPlan> patched = session.plan->Patch(delta);
    stats.seconds.patch += patch_timer.Seconds();
    GKEYS_RETURN_IF_ERROR(patched.status());
    Timer rematch_timer;
    StatusOr<MatchResult> rematched =
        matcher.Rematch(*patched, *session.result, delta);
    stats.seconds.rematch += rematch_timer.Seconds();
    GKEYS_RETURN_IF_ERROR(rematched.status());
    *session.plan = *std::move(patched);
    *session.result = *std::move(rematched);
    stats.added_triples += delta.num_added_triples();
    stats.removed_triples += delta.num_removed_triples();
    ++stats.commits;
    return Status::OK();
  };

  auto notify = [&](const ParsedBatch& batch, const GraphDelta& delta,
                    bool contributed) -> Status {
    if (!observer) return Status::OK();
    IngestBatch committed;
    committed.index = batch.index;
    committed.text = &batch.text;
    committed.delta = &delta;
    committed.result = session.result;
    committed.contributed = contributed;
    return observer(committed);
  };

  // The per-batch path: bind this batch alone and commit it, exactly as
  // the serial loop would. Also the replay path when a group bind fails.
  auto commit_one = [&](ParsedBatch& batch) -> Status {
    Timer bind_timer;
    std::unordered_map<std::string, NodeId> new_bindings;
    StatusOr<GraphDelta> delta = BindDeltaText(
        batch.tokens, *session.graph, *session.entity_names, &new_bindings);
    stats.seconds.bind += bind_timer.Seconds();
    GKEYS_RETURN_IF_ERROR(delta.status());
    const bool contributed = !delta->empty();
    if (contributed) {
      GKEYS_RETURN_IF_ERROR(run_engine_pass(*delta));
    } else {
      ++stats.empty_batches;
    }
    ++stats.batches;
    for (auto& [token, id] : new_bindings) {
      session.entity_names->emplace(token, id);
    }
    return notify(batch, *delta, contributed);
  };

  const size_t max_coalesce = opts.max_coalesce < 1 ? 1 : opts.max_coalesce;
  while (engine_status.ok()) {
    if (Cancelled(opts)) {
      engine_status = Status::Cancelled("ingest cancelled");
      break;
    }
    std::optional<ParsedBatch> first = queue.Pop();
    if (!first.has_value()) break;  // producer done and queue drained

    // Group commit: whatever backlog the queue already holds rides along
    // with this batch, up to max_coalesce per pass. TryPop never blocks,
    // so an empty queue just means a group of one. The group must be
    // fully collected before any binding: the binder keeps string_views
    // into the batch texts, and vector growth moves them.
    std::vector<ParsedBatch> group;
    group.push_back(*std::move(first));
    while (group.size() < max_coalesce) {
      std::optional<ParsedBatch> more = queue.TryPop();
      if (!more.has_value()) break;
      group.push_back(*std::move(more));
    }

    if (group.size() == 1) {
      engine_status = commit_one(group.front());
      continue;
    }

    Timer bind_timer;
    DeltaBinder binder(*session.graph, *session.entity_names);
    std::vector<bool> contributed(group.size(), false);
    bool group_bound = true;
    for (size_t i = 0; i < group.size(); ++i) {
      const size_t ops_before = binder.ops();
      if (!binder.Append(group[i].tokens).ok()) {
        group_bound = false;
        break;
      }
      contributed[i] = binder.ops() > ops_before;
    }
    stats.seconds.bind += bind_timer.Seconds();

    if (!group_bound) {
      // One batch is malformed, or the group depends on its own earlier
      // batches (e.g. removes what they added) — replay per batch so the
      // committed prefix and the reported error are exactly serial.
      for (ParsedBatch& batch : group) {
        engine_status = commit_one(batch);
        if (!engine_status.ok()) break;
      }
      continue;
    }

    std::unordered_map<std::string, NodeId> new_bindings;
    GraphDelta delta = binder.Take(&new_bindings);
    if (!delta.empty()) {
      engine_status = run_engine_pass(delta);
      if (!engine_status.ok()) break;
    }
    for (size_t i = 0; i < group.size(); ++i) {
      if (!contributed[i]) ++stats.empty_batches;
    }
    stats.batches += group.size();
    for (auto& [token, id] : new_bindings) {
      session.entity_names->emplace(token, id);
    }
    for (size_t i = 0; i < group.size(); ++i) {
      engine_status = notify(group[i], delta, contributed[i]);
      if (!engine_status.ok()) break;
    }
  }

  // Shutdown: wake the producer if it is blocked in Push, then join.
  queue.CloseConsumer();
  tokenizer.join();
  stats.seconds.parse = producer_parse_seconds;
  stats.status = !engine_status.ok() ? std::move(engine_status)
                                     : std::move(producer_status);
  return stats;
}

// Defined here (not in matcher.cc) so the pipeline machinery stays in
// one translation unit; mirrors how Resume lives in storage/snapshot.cc.
IngestStats Matcher::IngestStream(const IngestSession& session,
                                  const IngestSource& source,
                                  const IngestOptions& opts,
                                  const IngestObserver& observer) const {
  return RunIngestPipeline(*this, session, source, opts, observer);
}

}  // namespace gkeys
