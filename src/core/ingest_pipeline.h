#ifndef GKEYS_CORE_INGEST_PIPELINE_H_
#define GKEYS_CORE_INGEST_PIPELINE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "core/em_common.h"
#include "core/match_plan.h"
#include "graph/delta.h"
#include "graph/graph.h"

namespace gkeys {

class Matcher;

/// Staged ingest: a tokenize-ahead stage feeding the serial engine chain
/// (bind → Apply → Patch → Rematch) through a bounded queue, so batch
/// N+1 parses while batch N rematches.
///
/// The split exploits the phase structure of io/fast_triples.h: phase A
/// (tokenize — shape validation, field splitting, unescaping) never
/// touches the graph or the binding table, so it runs on its own thread
/// against future batches while the engine mutates the session; phase B
/// (bind) and everything after it stay serial on the caller's thread in
/// batch order, which keeps the committed session byte-identical to the
/// plain serial loop (parse batch, Apply, Patch, Rematch, repeat) the
/// CLI ran before this pipeline existed — the pipeline-vs-serial tests
/// in tests/ingest_test.cc pin exactly that.
///
/// Group commit: the engine-side costs of a tiny batch are dominated by
/// terms that do not shrink with batch size (Graph::Apply re-finalizes,
/// MatchPlan::Patch rebuilds its rep), so when tokenized batches are
/// already waiting in the queue — the common state whenever parsing
/// outruns matching — the engine binds up to `max_coalesce` of them into
/// ONE GraphDelta (io/fast_triples.h DeltaBinder) and commits the group
/// with a single Apply → Patch → Rematch pass. The final session state is
/// identical to per-batch commits (the existing incremental == from-
/// scratch invariant covers the combined delta); only the intermediate
/// states the observer can see are coarser. Groups whose batches depend
/// on each other in ways one delta cannot express (removing what an
/// earlier batch in the group added) fail the group bind and are replayed
/// batch-by-batch, so error positions and committed prefixes stay exactly
/// serial. Set max_coalesce = 1 to force per-batch commits throughout.
///
/// Error and cancellation semantics: the stream stops at the first
/// failing batch with the session still at the last committed batch
/// (exactly where the serial loop would have stopped); the tokenize
/// thread is woken and joined before Run returns, so no work leaks. A
/// batch that fails to parse reports the same status the serial parser
/// reports for that text (see fast_triples.h for the error-equivalence
/// contract).

/// Tuning and control knobs for one ingest run.
struct IngestOptions {
  /// Worker threads for phase-A tokenization within one batch
  /// (1 = tokenize each batch on the pipeline thread alone; batches
  /// under 64 KiB always tokenize inline regardless).
  int parse_threads = 1;
  /// How many tokenized batches may wait for the engine before the
  /// tokenize stage blocks — the backpressure bound on parse-ahead
  /// memory (each queued batch holds its text plus tokens).
  size_t queue_depth = 4;
  /// Most batches one engine pass may commit together (group commit, see
  /// above). 1 = per-batch commits, matching the serial loop's observer-
  /// visible granularity exactly; higher values amortize per-commit
  /// engine costs whenever the queue has a backlog. The final state is
  /// the same either way.
  size_t max_coalesce = 8;
  /// Polled between commits by both stages. Returning true stops the
  /// stream with kCancelled after the current commit; the session is
  /// left at the last committed batch, exactly as if the source had
  /// ended there.
  std::function<bool()> cancelled;
};

/// Wall-clock seconds per pipeline stage, summed over the run. parse
/// runs on the tokenize thread and OVERLAPS the others; bind..rematch
/// are serial, so their sum approximates the engine thread's busy time.
struct IngestStageSeconds {
  double parse = 0;
  double bind = 0;
  double apply = 0;
  double patch = 0;
  double rematch = 0;
};

/// Outcome of one ingest run. `status` is OK when the source drained to
/// its end; on error or cancellation the counters still describe every
/// batch that committed before the stop.
struct IngestStats {
  Status status;
  /// Batches committed (session advanced), including empty ones.
  size_t batches = 0;
  /// Of those, batches whose delta was empty (parse-only no-ops).
  size_t empty_batches = 0;
  /// Apply→Patch→Rematch passes that ran. Equal to non-empty `batches`
  /// when max_coalesce == 1; smaller when group commit coalesced.
  size_t commits = 0;
  uint64_t added_triples = 0;
  uint64_t removed_triples = 0;
  IngestStageSeconds seconds;
};

/// The mutable session state the pipeline advances in place — the same
/// four pieces the serial CLI loop holds. All pointers must be non-null
/// and outlive the run; `entity_names` is the ent-token binding table
/// (LoadedGraph::entities / RecoveredSession::entity_names) and gains
/// the tokens each committed batch introduced.
struct IngestSession {
  Graph* graph = nullptr;
  MatchPlan* plan = nullptr;
  MatchResult* result = nullptr;
  std::unordered_map<std::string, NodeId>* entity_names = nullptr;
};

/// Pull-based batch source, called from the tokenize thread in stream
/// order: return the next batch's delta text, or std::nullopt at end of
/// stream. Must not touch the session (the engine is mutating it).
using IngestSource = std::function<std::optional<std::string>()>;

/// One committed batch, as seen by the observer (called on the engine
/// thread, after the session advanced past the batch).
struct IngestBatch {
  size_t index = 0;  // 0-based position in the stream
  const std::string* text = nullptr;
  /// The committed delta. Under group commit this is the GROUP's delta,
  /// shared by every batch the pass committed; use `contributed` (not
  /// delta->empty()) to tell whether THIS batch staged anything.
  const GraphDelta* delta = nullptr;
  const MatchResult* result = nullptr;  // session result after commit
  /// False for parse-only no-op batches (comments, blank lines).
  bool contributed = false;
};

/// Post-commit hook, e.g. the CLI's write-ahead-log append. Called for
/// every committed batch, empty ones included; a non-OK return stops
/// the stream with that status (the batch itself stays committed).
using IngestObserver = std::function<Status(const IngestBatch&)>;

/// Runs the staged pipeline until the source ends, a batch fails, the
/// observer rejects, or `opts.cancelled` fires. Usually invoked through
/// Matcher::IngestStream.
IngestStats RunIngestPipeline(const Matcher& matcher,
                              const IngestSession& session,
                              const IngestSource& source,
                              const IngestOptions& opts = {},
                              const IngestObserver& observer = {});

}  // namespace gkeys

#endif  // GKEYS_CORE_INGEST_PIPELINE_H_
