#ifndef GKEYS_CORE_EM_COMMON_H_
#define GKEYS_CORE_EM_COMMON_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <iterator>
#include <memory>
#include <span>
#include <tuple>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "eq/equivalence.h"
#include "graph/graph.h"
#include "graph/neighborhood.h"
#include "isomorph/eval_search.h"
#include "keys/key.h"
#include "pattern/pattern.h"
#include "pattern/tour.h"

namespace gkeys {

namespace storage {
class PlanCodec;  // snapshot (de)serialization, src/storage/plan_codec.h
}  // namespace storage

/// Which entity-matching algorithm to run (paper §6 "Algorithms").
enum class Algorithm {
  kNaiveChase,  // sequential reference chase (correctness oracle)
  kEmMr,        // EMMR        (§4.1)
  kEmVf2Mr,     // EMVF2MR     (EMMR with VF2 full enumeration, no early stop)
  kEmOptMr,     // EMOptMR     (EMMR + §4.2 optimizations)
  kEmVc,        // EMVC        (§5.1)
  kEmOptVc,     // EMOptVC     (EMVC + §5.2 optimizations)
};

std::string AlgorithmName(Algorithm a);

/// Tunables shared by the algorithm family.
struct EmOptions {
  /// Number of processors p (worker threads).
  int processors = 1;
  /// EMMR family: replace the combined EvalMR search by VF2 enumeration.
  bool use_vf2 = false;
  /// §4.2: filter L and shrink d-neighbors with the pairing relation.
  bool use_pairing = false;
  /// §4.2: process pairs carrying only value-based keys first (L0 seeds).
  bool use_dependency = false;
  /// §4.2: re-check a pair only in round 1 or after a dependency changed.
  bool use_incremental = false;
  /// Signature blocking: enumerate only same-type pairs that share at
  /// least one (predicate, value) signature some key requires on the
  /// designated variable, instead of all O(n²) same-type pairs. A pair
  /// two entities can only be identified by a key whose value variables /
  /// constants adjacent to x they agree on, so skipped pairs are provably
  /// not directly identifiable (the same guarantee Prop. 9 gives the
  /// pairing filter); types carrying a purely recursive / variable-only
  /// key fall back to full enumeration, and skipped pairs stay visible to
  /// ghost/dependency tracking. Output-preserving for every algorithm.
  bool use_blocking = true;
  /// §5.2: per-(pair, key) message budget k; 0 = unbounded (plain EMVC).
  int bounded_messages = 0;
  /// §5.2: prioritized propagation (highest-potential edges first).
  bool prioritized = false;
  /// Shard count for the engines' merge/derivation logs (see
  /// internal::MergeLog): every worker records into a cache-line-padded
  /// local shard instead of contending on one global mutex, and shards
  /// are concatenated in deterministic shard order at drain time.
  /// 0 = auto (one shard per processor); 1 = the single global log
  /// (exactly the pre-sharding behavior, which the sharded-vs-global
  /// equivalence tests in tests/ingest_test.cc compare against).
  int log_shards = 0;
  /// Record a Derivation (fired key, premises, witness triples) per direct
  /// identification into MatchResult::derivations. Required for removal
  /// deltas to be seeded by Matcher::Rematch (the provenance index is what
  /// retraction replays); the overhead is one witness copy per successful
  /// identification, so it stays on by default. With it off, a removal
  /// Rematch retracts every previous pair and re-derives from scratch
  /// (still exact, just slower).
  bool record_provenance = true;
  /// Graceful-degradation budget: when > 0, the run checks a wall-clock
  /// deadline at the top of every fixpoint round and returns
  /// kDeadlineExceeded once the budget is spent. A streaming sink keeps
  /// every pair emitted so far — the partial result is usable, exactly
  /// like cooperative cancellation. A run that completes within budget
  /// never fails, even if it finishes at the wire (the check precedes
  /// rounds, not follows them). 0 = unbounded. Run-scoped: deliberately
  /// NOT persisted in snapshots (storage/plan_codec.h packs only the
  /// semantic options).
  double time_budget_seconds = 0.0;

  /// Presets matching the paper's five evaluated algorithms.
  static EmOptions For(Algorithm a, int p);
};

/// Shared wall-clock budget check for the fixpoint loops (see
/// EmOptions::time_budget_seconds). Each engine calls this at the TOP of
/// a round, so a run that converges within budget never fails — the
/// deadline only fires when more work was about to start.
inline Status CheckTimeBudget(double elapsed_seconds, double budget_seconds,
                              size_t rounds_done) {
  if (budget_seconds > 0 && elapsed_seconds >= budget_seconds) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g s budget", budget_seconds);
    return Status::DeadlineExceeded("entity matching exceeded its " +
                                    std::string(buf) + " after round " +
                                    std::to_string(rounds_done));
  }
  return Status::OK();
}

/// Counters the benchmark harness reports (paper Table 2 and the
/// optimization-effectiveness narratives in §6).
struct EmStats {
  size_t candidates_initial = 0;   // |L| enumerated (after blocking)
  size_t candidates_blocked = 0;   // same-type pairs skipped by blocking
  size_t candidates = 0;           // |L| actually processed
  size_t confirmed = 0;            // identified entity pairs in chase(G,Σ)
  size_t rounds = 0;               // MapReduce rounds / engine runs
  uint64_t iso_checks = 0;         // key-identification checks performed
  uint64_t messages = 0;           // vertex-centric messages sent
  size_t product_graph_nodes = 0;  // |Vp|
  size_t product_graph_edges = 0;  // |Ep|
  uint64_t neighbor_nodes = 0;   // Σ |Gd| over candidate entities
  uint64_t neighbor_nodes_reduced = 0;  // after pairing reduction
  /// Approximate heap footprint of the plan PLUS the result's provenance
  /// index, in bytes. Capacity-based (vector capacities, not allocator
  /// truth), so it is an in-memory figure: a serialized snapshot of the
  /// same plan is typically much smaller — varint packing, no capacity
  /// slack, and COW-shared sections stored once (see docs/ARCHITECTURE.md
  /// "Storage layer").
  size_t plan_bytes = 0;
  SearchStats search;
  // ---- Incremental re-matching accounting (Matcher::Rematch) ----------
  size_t rematch_seeded = 0;       // 1: this run was seeded from prev
  size_t rematch_fallback = 0;     // 1: Rematch ran the patched plan full
  size_t derivations_retracted = 0;  // removal handling: over-deleted
  /// Pairs of the previous result absent from this one (Rematch only) —
  /// the exact retractions a removal delta caused, net of re-derivation.
  /// Matches the OnPairRetracted callback count; 0 for additive deltas
  /// (identification is monotone in G).
  size_t pairs_retracted = 0;
  double prep_seconds = 0.0;       // DriverMR line 1 work
  double run_seconds = 0.0;        // fixpoint computation
};

/// One graph triple a witness realized. Recorded with the predicate as a
/// graph Symbol, so validity on a mutated graph is one HasTriple probe.
struct WitnessTriple {
  NodeId s;
  Symbol p;
  NodeId o;
  friend bool operator==(const WitnessTriple& a, const WitnessTriple& b) {
    return a.s == b.s && a.p == b.p && a.o == b.o;
  }
  friend bool operator<(const WitnessTriple& a, const WitnessTriple& b) {
    return std::tie(a.s, a.p, a.o) < std::tie(b.s, b.p, b.o);
  }
};

/// One direct identification together with everything it depends on — a
/// node of the paper's §3.1 proof graphs, compact enough to keep for every
/// run. `premises` are the non-reflexive entity-variable equalities the
/// witness consumed (each derived earlier, directly or transitively);
/// `triples` are the graph triples the witness realized on either side.
/// A derivation stays valid on a mutated graph iff all its triples still
/// exist and all its premises are still derivable — exactly what
/// RetractDerivations (core/provenance.h) replays under removal deltas.
struct Derivation {
  NodeId e1, e2;  // the identified pair, e1 < e2
  /// Compiled-key index (EmContext::compiled_keys()) that fired.
  int key = -1;
  /// Entity-variable equalities used, each (min, max), reflexive omitted.
  std::vector<std::pair<NodeId, NodeId>> premises;
  /// Graph triples realized by the witness (both sides, deduplicated).
  std::vector<WitnessTriple> triples;
};

/// The output of entity matching: chase(G, Σ).
struct MatchResult {
  /// All identified pairs (a, b), a < b, sorted — the non-reflexive part
  /// of chase(G, Σ).
  std::vector<std::pair<NodeId, NodeId>> pairs;
  /// Per-derivation provenance index (EmOptions::record_provenance, on by
  /// default): one entry per direct identification, in an order where
  /// every premise is supported by earlier entries' transitive closure.
  /// The Eq-closure of the recorded merges equals `pairs`. Feed the whole
  /// result back into Matcher::Rematch so removal deltas can retract
  /// exactly the derivations a removed triple invalidates.
  std::vector<Derivation> derivations;
  EmStats stats;
};

/// Approximate heap footprint of a provenance index in bytes: the
/// Derivation vector plus every entry's premises/triples payload.
/// Capacity-based, matching EmContext::MemoryBytes, and folded into
/// EmStats::plan_bytes by the Matcher so the number reflects everything
/// a seeded rematch keeps resident.
size_t ProvenanceIndexBytes(const std::vector<Derivation>& derivations);

/// Observer for streaming runs (Matcher::Run(plan, sink)): receives every
/// confirmed pair exactly once, a progress snapshot after every round of
/// the fixpoint, and is polled for cooperative cancellation.
///
/// Callbacks are invoked from the driver thread between rounds — never
/// concurrently — so implementations need no locking of their own.
/// Transitively implied pairs (Eq closure) are streamed in the round whose
/// merges implied them.
class MatchSink {
 public:
  virtual ~MatchSink() = default;

  /// A newly confirmed duplicate pair (a < b). Called exactly once per
  /// pair of the final chase(G, Σ).
  virtual void OnPair(NodeId a, NodeId b) { (void)a; (void)b; }

  /// Called at least once per fixpoint round with cumulative statistics
  /// (rounds, confirmed, iso_checks/messages so far).
  virtual void OnProgress(const EmStats& progress) { (void)progress; }

  /// A previously identified pair (a < b) no longer in chase(G, Σ) after
  /// a removal delta. Invoked by Matcher::Rematch only — once per lost
  /// pair, after the new fixpoint completed (so a retraction is final:
  /// pairs the over-deletion re-derived are never reported), before
  /// Rematch returns. Streams under additive deltas never retract
  /// (identification is monotone in G). The count is also reported as
  /// EmStats::pairs_retracted.
  virtual void OnPairRetracted(NodeId a, NodeId b) { (void)a; (void)b; }

  /// Polled between rounds; return true to stop the run. A cancelled run
  /// surfaces as StatusCode::kCancelled and the sink keeps every pair
  /// streamed so far.
  virtual bool cancelled() { return false; }
};

/// Seed for an incremental re-run (Matcher::Rematch): the engines start
/// from a retained fixpoint instead of Eq0 and re-check only the active
/// candidates, letting the existing dependency/ghost wake-up machinery
/// cascade into clean pairs that new merges enable.
///
/// For an additive delta the retained fixpoint is the whole previous
/// result (key identification is monotone in G — adding triples never
/// removes a match). For a delta that removed triples, Matcher::Rematch
/// first retracts the previous derivations a removed triple invalidates
/// (DRed-style over-deletion, see RetractDerivations in core/provenance.h)
/// and seeds from the surviving ones; `active` then additionally contains
/// every candidate whose pair was retracted, so survivors of the
/// over-deletion are re-derived by the normal fixpoint. Soundness only
/// needs prev_pairs ⊆ chase(G', Σ); completeness needs `active` to cover
/// every candidate whose outcome can have changed — both hold by
/// construction, so the result stays byte-identical to a from-scratch run.
struct RematchSeed {
  /// The retained pairs: unioned into Eq up front, streamed as already-
  /// emitted (sinks see only pairs beyond this seed).
  std::span<const std::pair<NodeId, NodeId>> prev_pairs;
  /// Candidate indices to re-check initially: a patched plan's
  /// dirty_candidates(), plus the retracted candidates under removals.
  std::span<const uint32_t> active;
  /// The provenance index carried over from the previous result — every
  /// derivation still valid on the post-delta graph. Engines prepend
  /// these to the derivations they record, so MatchResult::derivations
  /// stays a complete, replayable index across chained rematches.
  std::span<const Derivation> carried;
};

namespace internal {

/// Resolves EmOptions::log_shards: 0 = one shard per processor, clamped
/// to [1, 64] (beyond 64 workers the padding cost outweighs the last
/// contention percent).
inline int LogShardCount(const EmOptions& opts) {
  int shards = opts.log_shards > 0 ? opts.log_shards
                                   : std::max(1, opts.processors);
  return shards > 64 ? 64 : shards;
}

/// A small stable per-thread slot id, assigned on first use and fixed
/// for the thread's lifetime. The sharded logs below map a recording
/// thread to `slot % shards`: every thread always lands on the SAME
/// shard, so per-thread record order is preserved within its shard.
inline uint32_t ThreadLogSlot() {
  static std::atomic<uint32_t> next_slot{0};
  thread_local const uint32_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

/// Collects the Eq merges an engine performs during a round so the
/// streamer can expand exactly the classes that changed. Sharded: each
/// worker thread records into a cache-line-padded local shard (fixed
/// thread → shard mapping via ThreadLogSlot), so the map/compute phases
/// never contend on one global mutex; Drain concatenates shards in
/// shard-index order, which is deterministic given what each thread
/// recorded. Consumers are order-insensitive: PairStreamer::EmitMerges
/// replays merges through a union-find, and the set of newly implied
/// pairs is independent of merge order. shards == 1 degenerates to the
/// original single-mutex global log.
class MergeLog {
 public:
  explicit MergeLog(int shards = 1)
      : shards_(shards < 1 ? 1 : static_cast<size_t>(shards)) {}

  void Record(NodeId a, NodeId b) {
    Shard& s = shards_[ThreadLogSlot() % shards_.size()];
    MutexLock lock(s.mu);
    s.log.emplace_back(a, b);
  }

  /// Moves out everything recorded since the previous Drain, shards
  /// concatenated in shard-index order.
  std::vector<std::pair<NodeId, NodeId>> Drain() {
    std::vector<std::pair<NodeId, NodeId>> out;
    for (Shard& s : shards_) {
      MutexLock lock(s.mu);
      if (out.empty()) {
        out = std::exchange(s.log, {});
      } else {
        out.insert(out.end(), s.log.begin(), s.log.end());
        s.log.clear();
      }
    }
    return out;
  }

 private:
  struct alignas(64) Shard {
    Mutex mu;
    std::vector<std::pair<NodeId, NodeId>> log GKEYS_GUARDED_BY(mu);
  };
  // Constructed once, never resized: Shard is pinned in place (Mutex is
  // neither copyable nor movable).
  std::vector<Shard> shards_;
};

/// Collects the Derivations an engine records during a run. Sharded
/// like MergeLog (per-worker cache-line-padded shards, fixed thread →
/// shard mapping), but unlike merges the derivation log's ORDER is a
/// contract: RetractDerivations replays it front to back and treats an
/// entry whose premises are not yet supported as retracted, so a
/// supporter must precede every dependent. The engines' record-before-
/// Union discipline guarantees that in wall-clock time (a premise can
/// only read Same after the supporting Union, which its deriver's
/// Record precedes) — sharding must not lose it across shards. Each
/// Record therefore stamps the entry from one shared atomic counter
/// BEFORE appending to its shard, and Take merges shards by stamp: the
/// supporter's fetch_add happens-before the dependent's (through the
/// Union/Same synchronization the discipline already relies on), so
/// supporter stamps are strictly smaller and the merged log replays
/// exactly like the old single-mutex global log. The counter is one
/// uncontended-size RMW — far cheaper than the mutex critical section
/// (lock + vector append + unlock) it replaces as the shared hot spot.
class DerivationLog {
 public:
  explicit DerivationLog(int shards = 1)
      : shards_(shards < 1 ? 1 : static_cast<size_t>(shards)) {}

  void Record(Derivation d) {
    const uint64_t stamp = seq_.fetch_add(1, std::memory_order_acq_rel);
    Shard& s = shards_[ThreadLogSlot() % shards_.size()];
    MutexLock lock(s.mu);
    s.log.push_back(Entry{stamp, std::move(d)});
  }

  /// Moves out everything recorded so far (call once, post-fixpoint),
  /// merged across shards into record-stamp order.
  std::vector<Derivation> Take() {
    std::vector<Entry> entries;
    for (Shard& s : shards_) {
      MutexLock lock(s.mu);
      entries.insert(entries.end(), std::make_move_iterator(s.log.begin()),
                     std::make_move_iterator(s.log.end()));
      s.log.clear();
    }
    // Stamps are distinct (fetch_add), so this is a total order; each
    // shard's run is already ascending, making sort cheap in practice.
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) { return a.stamp < b.stamp; });
    std::vector<Derivation> out;
    out.reserve(entries.size());
    for (Entry& e : entries) out.push_back(std::move(e.d));
    return out;
  }

 private:
  struct Entry {
    uint64_t stamp;
    Derivation d;
  };
  struct alignas(64) Shard {
    Mutex mu;
    std::vector<Entry> log GKEYS_GUARDED_BY(mu);
  };
  std::atomic<uint64_t> seq_{0};
  std::vector<Shard> shards_;
};

/// Assembles MatchResult::derivations at the end of an engine run: the
/// seed's carried prefix (so the index stays replayable in order across
/// chained rematches) followed by this run's recorded entries. With
/// recording off the index stays EMPTY — a carried-only index would
/// break the closure==pairs contract and mislead the next rematch's
/// cost model. Shared by all three engine families so the invariant
/// lives in one place.
inline void AssembleDerivations(MatchResult& result, const RematchSeed* seed,
                                bool record_provenance,
                                std::vector<Derivation> recorded) {
  if (seed != nullptr && record_provenance) {
    result.derivations.assign(seed->carried.begin(), seed->carried.end());
  }
  result.derivations.insert(result.derivations.end(),
                            std::make_move_iterator(recorded.begin()),
                            std::make_move_iterator(recorded.end()));
}

/// Streams the delta of the growing Eq relation to a MatchSink,
/// guaranteeing exactly-once emission per identified pair across rounds.
/// Instead of re-materializing the full pair set per round (the pre-
/// merge-log design, quadratic in class sizes every round), it mirrors
/// the engine's union-find and expands only the classes each recorded
/// merge joins: one merge of classes A and B emits exactly |A|·|B| new
/// pairs, so total streaming work equals the number of pairs emitted.
class PairStreamer {
 public:
  /// `num_nodes` sizes the mirror union-find; with a null sink the
  /// streamer is an inert no-op and allocates nothing.
  PairStreamer(MatchSink* sink, size_t num_nodes)
      : sink_(sink), mirror_(sink == nullptr ? 0 : num_nodes) {}

  /// Replays `merges` (an engine's MergeLog drain) against the mirror and
  /// emits every newly implied pair. Returns total pairs emitted so far.
  size_t EmitMerges(std::span<const std::pair<NodeId, NodeId>> merges);

  /// Seeds the mirror with an already-known fixpoint WITHOUT emitting:
  /// the pairs count as emitted, so a seeded rematch streams exactly the
  /// delta beyond the previous result. Call before any EmitMerges.
  void SeedClasses(std::span<const std::pair<NodeId, NodeId>> pairs);

  /// Final sweep after the fixpoint: emits whatever the per-round deltas
  /// did not cover (zero-round runs; merges after the last emission),
  /// reusing the engine's already-materialized pair list. Verifies the
  /// exactly-once invariant; no-op without a sink.
  Status Finish(const std::vector<std::pair<NodeId, NodeId>>& final_pairs);

  size_t emitted() const { return emitted_.size(); }

 private:
  void EmitPair(NodeId a, NodeId b);

  MatchSink* sink_;
  EquivalenceRelation mirror_;
  // Members of each nontrivial mirror class, keyed by its current root.
  // Singleton classes are implicit.
  std::unordered_map<NodeId, std::vector<NodeId>> members_;
  std::unordered_set<uint64_t> emitted_;
};

}  // namespace internal

/// A candidate pair from L with its per-pair working set. The neighbor
/// sets are owned by the EmContext (shared per-entity d-neighbors, or
/// per-pair pairing-reduced sets) and outlive the candidate.
struct Candidate {
  NodeId e1, e2;
  /// Indices into EmContext::compiled of keys defined on this pair's type.
  const std::vector<int>* keys = nullptr;
  /// Search restriction per side: the d-neighbor of e1 / e2, possibly
  /// reduced by pairing (§4.2).
  const NodeSet* nbr1 = nullptr;
  const NodeSet* nbr2 = nullptr;
  /// Whether any recursive key is defined on the pair.
  bool has_recursive_key = false;
  /// Whether any value-based key is defined on the pair (L0 membership).
  bool has_value_based_key = false;
};

/// A key compiled against the target graph, with its EMVC traversal order.
struct CompiledKey {
  const Key* key = nullptr;
  CompiledPattern cp;
  std::vector<TourStep> tour;
};

/// Outputs of the incremental patch constructor (see below): which part
/// of the compiled state had to be redone, and which candidates a seeded
/// re-run must re-check.
struct ContextPatchInfo {
  /// Keyed entities whose d-ball intersects a dirty node (sorted): their
  /// signatures, d-neighbors, and pairing domains were recompiled.
  std::vector<NodeId> affected_entities;
  /// Indices into candidates() whose isomorphism-check outcome may have
  /// changed: at least one affected endpoint, or newly enumerated. A
  /// seeded rematch re-checks exactly these (plus the dependency/ghost
  /// cascade the engines already perform).
  std::vector<uint32_t> dirty_candidates;
  /// Reuse accounting (benchmarks and tests read these).
  size_t dneighbors_reused = 0;
  size_t candidates_reused = 0;
  /// Per new-candidate index: the source plan's candidate index it was
  /// carried over from, or -1 when recompiled. PatchProductGraph replays
  /// the cached pairing relations of the carried candidates.
  std::vector<int64_t> candidate_reuse;
  /// Where the patch time went (seconds; bench_incremental reports them).
  double keys_seconds = 0;
  double affected_seconds = 0;
  double dneighbor_seconds = 0;
  double enumerate_seconds = 0;
  double pairing_seconds = 0;
  double depindex_seconds = 0;
  double product_graph_seconds = 0;  // filled by MatchPlan::Patch
};

/// Everything DriverMR's line 1 precomputes, shared by all algorithms:
/// compiled keys, the candidate list L (signature-blocked, optionally
/// pairing-reduced), d-neighbors, and the entity-dependency index of §4.2.
class EmContext {
 public:
  /// Builds the context. `g` must be finalized.
  EmContext(const Graph& g, const KeySet& keys, const EmOptions& opts);

  /// Incremental rebuild: compiles the same key set against `prev`'s
  /// graph AFTER a delta was applied to it (Graph::Apply), recompiling
  /// only the affected region — entities whose d-ball around them
  /// intersects `dirty_nodes` — and sharing every untouched section with
  /// `prev` (d-neighbor sets and pairing-reduced sets are copy-on-write
  /// via shared ownership; untouched candidates are carried over without
  /// re-running the pairing fixpoint). The dependency index and ghost set
  /// are rebuilt (they are candidate-index-relative and cheap at |L|
  /// scale). `prev` must outlive nothing — the new context is
  /// self-contained apart from the shared immutable NodeSet payloads.
  ///
  /// The enumeration counters (candidates_initial/blocked) cover only the
  /// re-enumerated types; reused types carry their surviving candidates
  /// without re-counting the blocked pairs.
  EmContext(const EmContext& prev, std::span<const NodeId> dirty_nodes,
            ContextPatchInfo* info);

  const Graph& graph() const { return *g_; }
  const EmOptions& options() const { return opts_; }

  const std::vector<CompiledKey>& compiled_keys() const { return compiled_; }

  /// Key indices defined on entity type symbol `t` (graph interner ids).
  const std::vector<int>& KeysForType(Symbol t) const;

  /// The candidate list L (after optional pairing reduction).
  const std::vector<Candidate>& candidates() const { return candidates_; }
  size_t candidates_initial() const { return candidates_initial_; }
  /// Same-type pairs signature blocking kept out of the enumeration.
  size_t candidates_blocked() const { return candidates_blocked_; }

  /// Dependency index (§4.2): dependents_[i] lists candidate indices j
  /// such that candidate j depends on candidate i — i.e., identifying
  /// candidate i can newly enable a recursive key on candidate j.
  const std::vector<std::vector<uint32_t>>& dependents() const {
    return dependents_;
  }

  /// A same-type pair excluded from L (by the pairing filter, Prop. 9, or
  /// by signature blocking — provably not identifiable by any key
  /// directly) that some candidate still DEPENDS on: the pair can become
  /// equal transitively (through other merges), newly enabling a
  /// recursive key on its dependents. Ghosts are never isomorphism-
  /// checked; the algorithms only watch them for Eq membership and then
  /// wake their dependents. Without this, the pairing + incremental /
  /// dependency optimizations would be incomplete (a regression test in
  /// em_mapreduce_test.cc pins the exact scenario). Ghosts are discovered
  /// lazily from the d-neighbor overlaps of recursive-key candidates, so
  /// excluded pairs never need materializing.
  struct GhostPair {
    NodeId e1, e2;
    std::vector<uint32_t> dependents;  // candidate indices
  };
  const std::vector<GhostPair>& ghosts() const { return ghosts_; }

  /// Decides (Gd1 ∪ Gd2, Eq, Σ) |= (e1, e2) for candidate `c`, trying each
  /// of its keys until one fires. Honors opts.use_vf2. When `unrestricted`
  /// is true, searches all of G instead of the d-neighbors (the data-
  /// locality property guarantees the same answer; tests rely on this).
  bool Identifies(const Candidate& c, const EqView& eq,
                  SearchStats* stats = nullptr,
                  bool unrestricted = false) const {
    return Identifies(c, eq, stats, unrestricted, opts_.use_vf2);
  }

  /// Same, with the search strategy chosen by the caller instead of the
  /// context's construction options — lets one compiled plan serve both
  /// the combined-search and VF2-enumeration algorithm variants.
  bool Identifies(const Candidate& c, const EqView& eq, SearchStats* stats,
                  bool unrestricted, bool use_vf2) const;

  /// Like Identifies, but on success also reports which compiled key
  /// fired (`*key_out`) and its full witness vector. The engines use this
  /// to record Derivations; the extra cost is one witness copy per
  /// successful identification.
  bool IdentifiesWitness(const Candidate& c, const EqView& eq, int* key_out,
                         Witness* witness, SearchStats* stats,
                         bool unrestricted, bool use_vf2) const;

  /// Assembles the Derivation of candidate `c` identified by compiled key
  /// `key` under `witness`: premises are the witness's non-reflexive
  /// entity-variable pairs, triples the graph triples it realized on both
  /// sides (deduplicated). Uninstantiated witness slots (kNoNode) are
  /// skipped, so partial vectors from the vertex-centric walk are safe.
  Derivation MakeDerivation(const Candidate& c, int key,
                            const Witness& witness) const;

  /// Aggregate d-neighbor sizes (for the §6 reduction statistics):
  /// neighbor_nodes() sums |Gd| over the distinct candidate entities
  /// (neighbor_entities() of them); neighbor_nodes_reduced() sums the
  /// pairing-reduced per-side sets over candidate pairs (two per pair).
  uint64_t neighbor_nodes() const { return neighbor_nodes_; }
  uint64_t neighbor_nodes_reduced() const {
    return neighbor_nodes_reduced_;
  }
  size_t neighbor_entities() const { return dneighbor_sets_.size(); }

  /// Approximate heap footprint of the compiled structures, in bytes,
  /// reported as EmStats::plan_bytes. The estimate is CAPACITY-based:
  /// it sums vector capacities (including the candidate list, d-neighbor
  /// and pairing-reduced NodeSet payloads, the dependency index's outer
  /// and per-candidate vectors, and the ghost-tracking entries), not
  /// allocator truth — good for trend lines, not for accounting. For a
  /// patched context, NodeSets shared with the source plan are counted in
  /// full on both sides. Excludes the referenced Graph and KeySet.
  size_t MemoryBytes() const;

 private:
  // The snapshot codec serializes/rebuilds the private compiled state
  // directly (slots, pools, signature indexes, dependency scans) — going
  // through the public API would force a full recompile on load, which
  // is exactly what persistence is meant to avoid. MatchPlan is a friend
  // because its nested Rep constructs the deserialization shell.
  friend class storage::PlanCodec;
  friend class MatchPlan;

  /// Tag for the deserialization shell constructor below.
  struct DeserializeShell {};

  /// Storage-layer entry point: binds graph/keys/options and compiles the
  /// keys (cheap and deterministic), leaving every other member empty for
  /// storage::PlanCodec to fill from snapshot records instead of running
  /// the expensive build phases (d-neighbors, enumeration, pairing,
  /// dependency scan).
  EmContext(DeserializeShell, const Graph& g, const KeySet& keys,
            const EmOptions& opts);

  static constexpr uint32_t kNoSlot = UINT32_MAX;

  // ---- Signature index (blocking), kept per plan so a patch re-signs
  // ---- only the affected entities.

  /// One hop of a pattern path from the designated variable toward a
  /// value terminal.
  struct SigStep {
    Symbol pred;
    bool forward;
    int to_node;
    friend bool operator==(const SigStep& a, const SigStep& b) {
      return a.pred == b.pred && a.forward == b.forward &&
             a.to_node == b.to_node;
    }
  };
  /// A signature source of one key: a path from x to a value variable
  /// (constant == kNoNode) or a graph-resolved constant. Any match maps
  /// the terminal to a value reached from BOTH entities along this exact
  /// path, so sharing a reachable terminal is an Eq-independent necessary
  /// condition for identification.
  struct SigSource {
    std::vector<SigStep> path;
    NodeId constant = kNoNode;
    friend bool operator==(const SigSource& a, const SigSource& b) {
      return a.constant == b.constant && a.path == b.path;
    }
  };
  using SigMap = std::unordered_map<NodeId, std::vector<NodeId>>;

  /// The chosen (most selective) source of one matchable key, with its
  /// value buckets. entity_values is the bucket transpose: it lets a
  /// patch remove an affected entity's stale memberships without knowing
  /// the pre-delta graph. The base maps are immutable and shared across
  /// plan generations; a patch records re-signed entities in the small
  /// overlay maps (base memberships of an overlaid entity are ignored at
  /// read time) and compacts once the overlay outgrows the base — the
  /// same per-node-thaw idea Graph uses for its CSR.
  struct SigPerKey {
    int key = -1;  // compiled-key index
    SigSource source;
    std::shared_ptr<const SigMap> buckets;        // value → entities (asc)
    std::shared_ptr<const SigMap> entity_values;  // entity → values
    // Overlay: entities re-signed since the base was materialized (an
    // empty vector means "reaches no terminal"), and the transpose of
    // their current memberships.
    SigMap patched_values;   // entity → current values
    SigMap patched_buckets;  // value → re-signed entities reaching it

    /// Current values of `e` through the overlay.
    const std::vector<NodeId>* ValuesOf(NodeId e) const {
      auto it = patched_values.find(e);
      if (it != patched_values.end()) return &it->second;
      auto base = entity_values->find(e);
      return base == entity_values->end() ? nullptr : &base->second;
    }

    /// Invokes fn(entity) for every current member of value `v`'s bucket.
    template <typename Fn>
    void ForEachMember(NodeId v, Fn&& fn) const {
      auto base = buckets->find(v);
      if (base != buckets->end()) {
        for (NodeId m : base->second) {
          if (patched_values.find(m) == patched_values.end()) fn(m);
        }
      }
      auto patched = patched_buckets.find(v);
      if (patched != patched_buckets.end()) {
        for (NodeId m : patched->second) fn(m);
      }
    }
  };
  /// Signature state of one keyed type. blockable == false means some
  /// matchable key pins nothing on x (full enumeration for the type).
  struct SigIndex {
    bool blockable = false;
    std::vector<SigPerKey> keys;
  };

  void BuildCandidates();

  /// Builds the §4.2 dependency index (dependents_/ghosts_) from the
  /// per-candidate depended-on pair scans. When patching, candidates
  /// carried over via `reuse` copy their scan from `prev` instead of
  /// re-walking their neighbor balls.
  void BuildDependencyIndex(const EmContext* prev,
                            const std::vector<int64_t>* reuse);

  /// Derives dependents_/ghosts_ from depends_on_pairs_ + candidates_
  /// (the inversion tail of BuildDependencyIndex). Deterministic given
  /// those inputs; the snapshot codec calls it after restoring the raw
  /// scans so the derived index never needs serializing.
  void InvertDependencyIndex();

  /// All signature sources of `cp` (BFS over the pattern from x).
  static std::vector<SigSource> FindSigSources(const CompiledPattern& cp);

  /// The terminal values entity `e` reaches along `src.path`, ascending.
  std::vector<NodeId> ReachableValues(NodeId e, const SigSource& src,
                                      const CompiledPattern& cp) const;

  /// Compiles the signature index of one keyed type: per matchable key,
  /// picks the most selective source and materializes its buckets.
  std::shared_ptr<const SigIndex> BuildSigIndex(
      const std::vector<int>& key_ids,
      std::span<const NodeId> entities) const;

  /// Whether `prev_idx` (a pre-delta SigIndex of this type) is still
  /// valid under the recompiled keys: same matchable key list, and every
  /// stored source is still a source of its key.
  bool SigIndexStillValid(const SigIndex& prev_idx,
                          const std::vector<int>& key_ids) const;

  /// Compiles the key set against *g_ (shared by both constructors).
  void CompileKeys();

  /// The cached d-neighbor of keyed entity `e` (must exist).
  const NodeSet& DNbr(NodeId e) const {
    return *dneighbor_sets_[dneighbor_slot_[e]];
  }

  const Graph* g_;
  const KeySet* keys_;
  EmOptions opts_;
  std::vector<CompiledKey> compiled_;
  std::unordered_map<Symbol, std::vector<int>> keys_by_type_;
  std::unordered_map<Symbol, int> radius_by_type_;
  std::vector<Candidate> candidates_;
  // Storage for the NodeSets candidates point into: one dense slot per
  // keyed entity (indexed through dneighbor_slot_), plus a pool for the
  // per-pair pairing-reduced sets — reduced_pool_[2i] / [2i+1] are
  // candidate i's two sides (the patch constructor relies on that
  // pairing). Payloads are shared immutable NodeSets so a patched context
  // reuses untouched sections copy-on-write, and the raw pointers handed
  // to Candidate stay stable across context moves.
  std::vector<uint32_t> dneighbor_slot_;
  std::vector<std::shared_ptr<const NodeSet>> dneighbor_sets_;
  std::vector<std::shared_ptr<const NodeSet>> reduced_pool_;
  // Signature index per keyed type (use_blocking only); shared with the
  // source plan for types the delta did not touch.
  std::unordered_map<Symbol, std::shared_ptr<const SigIndex>> sig_index_;
  // Per candidate: the packed same-type keyed pairs inside its neighbor
  // balls that a recursive key could consume (the §4.2 scan's raw
  // output). Kept so a patch copies clean candidates' scans instead of
  // re-walking their balls; dependents_/ghosts_ are derived from it.
  std::vector<std::vector<uint64_t>> depends_on_pairs_;
  size_t candidates_initial_ = 0;
  size_t candidates_blocked_ = 0;
  std::vector<GhostPair> ghosts_;
  std::vector<std::vector<uint32_t>> dependents_;
  uint64_t neighbor_nodes_ = 0;
  uint64_t neighbor_nodes_reduced_ = 0;
};

}  // namespace gkeys

#endif  // GKEYS_CORE_EM_COMMON_H_
