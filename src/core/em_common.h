#ifndef GKEYS_CORE_EM_COMMON_H_
#define GKEYS_CORE_EM_COMMON_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "eq/equivalence.h"
#include "graph/graph.h"
#include "graph/neighborhood.h"
#include "isomorph/eval_search.h"
#include "keys/key.h"
#include "pattern/pattern.h"
#include "pattern/tour.h"

namespace gkeys {

/// Which entity-matching algorithm to run (paper §6 "Algorithms").
enum class Algorithm {
  kNaiveChase,  // sequential reference chase (correctness oracle)
  kEmMr,        // EMMR        (§4.1)
  kEmVf2Mr,     // EMVF2MR     (EMMR with VF2 full enumeration, no early stop)
  kEmOptMr,     // EMOptMR     (EMMR + §4.2 optimizations)
  kEmVc,        // EMVC        (§5.1)
  kEmOptVc,     // EMOptVC     (EMVC + §5.2 optimizations)
};

std::string AlgorithmName(Algorithm a);

/// Tunables shared by the algorithm family.
struct EmOptions {
  /// Number of processors p (worker threads).
  int processors = 1;
  /// EMMR family: replace the combined EvalMR search by VF2 enumeration.
  bool use_vf2 = false;
  /// §4.2: filter L and shrink d-neighbors with the pairing relation.
  bool use_pairing = false;
  /// §4.2: process pairs carrying only value-based keys first (L0 seeds).
  bool use_dependency = false;
  /// §4.2: re-check a pair only in round 1 or after a dependency changed.
  bool use_incremental = false;
  /// Signature blocking: enumerate only same-type pairs that share at
  /// least one (predicate, value) signature some key requires on the
  /// designated variable, instead of all O(n²) same-type pairs. A pair
  /// two entities can only be identified by a key whose value variables /
  /// constants adjacent to x they agree on, so skipped pairs are provably
  /// not directly identifiable (the same guarantee Prop. 9 gives the
  /// pairing filter); types carrying a purely recursive / variable-only
  /// key fall back to full enumeration, and skipped pairs stay visible to
  /// ghost/dependency tracking. Output-preserving for every algorithm.
  bool use_blocking = true;
  /// §5.2: per-(pair, key) message budget k; 0 = unbounded (plain EMVC).
  int bounded_messages = 0;
  /// §5.2: prioritized propagation (highest-potential edges first).
  bool prioritized = false;

  /// Presets matching the paper's five evaluated algorithms.
  static EmOptions For(Algorithm a, int p);
};

/// Counters the benchmark harness reports (paper Table 2 and the
/// optimization-effectiveness narratives in §6).
struct EmStats {
  size_t candidates_initial = 0;   // |L| enumerated (after blocking)
  size_t candidates_blocked = 0;   // same-type pairs skipped by blocking
  size_t candidates = 0;           // |L| actually processed
  size_t confirmed = 0;            // identified entity pairs in chase(G,Σ)
  size_t rounds = 0;               // MapReduce rounds / engine runs
  uint64_t iso_checks = 0;         // key-identification checks performed
  uint64_t messages = 0;           // vertex-centric messages sent
  size_t product_graph_nodes = 0;  // |Vp|
  size_t product_graph_edges = 0;  // |Ep|
  uint64_t neighbor_nodes = 0;   // Σ |Gd| over candidate entities
  uint64_t neighbor_nodes_reduced = 0;  // after pairing reduction
  size_t plan_bytes = 0;           // approx. heap footprint of the plan
  SearchStats search;
  double prep_seconds = 0.0;       // DriverMR line 1 work
  double run_seconds = 0.0;        // fixpoint computation
};

/// The output of entity matching: chase(G, Σ).
struct MatchResult {
  /// All identified pairs (a, b), a < b, sorted — the non-reflexive part
  /// of chase(G, Σ).
  std::vector<std::pair<NodeId, NodeId>> pairs;
  EmStats stats;
};

/// Observer for streaming runs (Matcher::Run(plan, sink)): receives every
/// confirmed pair exactly once, a progress snapshot after every round of
/// the fixpoint, and is polled for cooperative cancellation.
///
/// Callbacks are invoked from the driver thread between rounds — never
/// concurrently — so implementations need no locking of their own.
/// Transitively implied pairs (Eq closure) are streamed in the round whose
/// merges implied them.
class MatchSink {
 public:
  virtual ~MatchSink() = default;

  /// A newly confirmed duplicate pair (a < b). Called exactly once per
  /// pair of the final chase(G, Σ).
  virtual void OnPair(NodeId a, NodeId b) { (void)a; (void)b; }

  /// Called at least once per fixpoint round with cumulative statistics
  /// (rounds, confirmed, iso_checks/messages so far).
  virtual void OnProgress(const EmStats& progress) { (void)progress; }

  /// Polled between rounds; return true to stop the run. A cancelled run
  /// surfaces as StatusCode::kCancelled and the sink keeps every pair
  /// streamed so far.
  virtual bool cancelled() { return false; }
};

namespace internal {

/// Collects the Eq merges an engine performs during a round so the
/// streamer can expand exactly the classes that changed. Engines record
/// under a mutex (merges are rare — at most one per entity — so
/// contention is negligible next to the isomorphism checks around them).
class MergeLog {
 public:
  void Record(NodeId a, NodeId b) {
    std::lock_guard<std::mutex> lock(mu_);
    log_.emplace_back(a, b);
  }

  /// Moves out everything recorded since the previous Drain.
  std::vector<std::pair<NodeId, NodeId>> Drain() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::exchange(log_, {});
  }

 private:
  std::mutex mu_;
  std::vector<std::pair<NodeId, NodeId>> log_;
};

/// Streams the delta of the growing Eq relation to a MatchSink,
/// guaranteeing exactly-once emission per identified pair across rounds.
/// Instead of re-materializing the full pair set per round (the pre-
/// merge-log design, quadratic in class sizes every round), it mirrors
/// the engine's union-find and expands only the classes each recorded
/// merge joins: one merge of classes A and B emits exactly |A|·|B| new
/// pairs, so total streaming work equals the number of pairs emitted.
class PairStreamer {
 public:
  /// `num_nodes` sizes the mirror union-find; with a null sink the
  /// streamer is an inert no-op and allocates nothing.
  PairStreamer(MatchSink* sink, size_t num_nodes)
      : sink_(sink), mirror_(sink == nullptr ? 0 : num_nodes) {}

  /// Replays `merges` (an engine's MergeLog drain) against the mirror and
  /// emits every newly implied pair. Returns total pairs emitted so far.
  size_t EmitMerges(std::span<const std::pair<NodeId, NodeId>> merges);

  /// Final sweep after the fixpoint: emits whatever the per-round deltas
  /// did not cover (zero-round runs; merges after the last emission),
  /// reusing the engine's already-materialized pair list. Verifies the
  /// exactly-once invariant; no-op without a sink.
  Status Finish(const std::vector<std::pair<NodeId, NodeId>>& final_pairs);

  size_t emitted() const { return emitted_.size(); }

 private:
  void EmitPair(NodeId a, NodeId b);

  MatchSink* sink_;
  EquivalenceRelation mirror_;
  // Members of each nontrivial mirror class, keyed by its current root.
  // Singleton classes are implicit.
  std::unordered_map<NodeId, std::vector<NodeId>> members_;
  std::unordered_set<uint64_t> emitted_;
};

}  // namespace internal

/// A candidate pair from L with its per-pair working set. The neighbor
/// sets are owned by the EmContext (shared per-entity d-neighbors, or
/// per-pair pairing-reduced sets) and outlive the candidate.
struct Candidate {
  NodeId e1, e2;
  /// Indices into EmContext::compiled of keys defined on this pair's type.
  const std::vector<int>* keys = nullptr;
  /// Search restriction per side: the d-neighbor of e1 / e2, possibly
  /// reduced by pairing (§4.2).
  const NodeSet* nbr1 = nullptr;
  const NodeSet* nbr2 = nullptr;
  /// Whether any recursive key is defined on the pair.
  bool has_recursive_key = false;
  /// Whether any value-based key is defined on the pair (L0 membership).
  bool has_value_based_key = false;
};

/// A key compiled against the target graph, with its EMVC traversal order.
struct CompiledKey {
  const Key* key = nullptr;
  CompiledPattern cp;
  std::vector<TourStep> tour;
};

/// Everything DriverMR's line 1 precomputes, shared by all algorithms:
/// compiled keys, the candidate list L (signature-blocked, optionally
/// pairing-reduced), d-neighbors, and the entity-dependency index of §4.2.
class EmContext {
 public:
  /// Builds the context. `g` must be finalized.
  EmContext(const Graph& g, const KeySet& keys, const EmOptions& opts);

  const Graph& graph() const { return *g_; }
  const EmOptions& options() const { return opts_; }

  const std::vector<CompiledKey>& compiled_keys() const { return compiled_; }

  /// Key indices defined on entity type symbol `t` (graph interner ids).
  const std::vector<int>& KeysForType(Symbol t) const;

  /// The candidate list L (after optional pairing reduction).
  const std::vector<Candidate>& candidates() const { return candidates_; }
  size_t candidates_initial() const { return candidates_initial_; }
  /// Same-type pairs signature blocking kept out of the enumeration.
  size_t candidates_blocked() const { return candidates_blocked_; }

  /// Dependency index (§4.2): dependents_[i] lists candidate indices j
  /// such that candidate j depends on candidate i — i.e., identifying
  /// candidate i can newly enable a recursive key on candidate j.
  const std::vector<std::vector<uint32_t>>& dependents() const {
    return dependents_;
  }

  /// A same-type pair excluded from L (by the pairing filter, Prop. 9, or
  /// by signature blocking — provably not identifiable by any key
  /// directly) that some candidate still DEPENDS on: the pair can become
  /// equal transitively (through other merges), newly enabling a
  /// recursive key on its dependents. Ghosts are never isomorphism-
  /// checked; the algorithms only watch them for Eq membership and then
  /// wake their dependents. Without this, the pairing + incremental /
  /// dependency optimizations would be incomplete (a regression test in
  /// em_mapreduce_test.cc pins the exact scenario). Ghosts are discovered
  /// lazily from the d-neighbor overlaps of recursive-key candidates, so
  /// excluded pairs never need materializing.
  struct GhostPair {
    NodeId e1, e2;
    std::vector<uint32_t> dependents;  // candidate indices
  };
  const std::vector<GhostPair>& ghosts() const { return ghosts_; }

  /// Decides (Gd1 ∪ Gd2, Eq, Σ) |= (e1, e2) for candidate `c`, trying each
  /// of its keys until one fires. Honors opts.use_vf2. When `unrestricted`
  /// is true, searches all of G instead of the d-neighbors (the data-
  /// locality property guarantees the same answer; tests rely on this).
  bool Identifies(const Candidate& c, const EqView& eq,
                  SearchStats* stats = nullptr,
                  bool unrestricted = false) const {
    return Identifies(c, eq, stats, unrestricted, opts_.use_vf2);
  }

  /// Same, with the search strategy chosen by the caller instead of the
  /// context's construction options — lets one compiled plan serve both
  /// the combined-search and VF2-enumeration algorithm variants.
  bool Identifies(const Candidate& c, const EqView& eq, SearchStats* stats,
                  bool unrestricted, bool use_vf2) const;

  /// Aggregate d-neighbor sizes (for the §6 reduction statistics):
  /// neighbor_nodes() sums |Gd| over the distinct candidate entities
  /// (neighbor_entities() of them); neighbor_nodes_reduced() sums the
  /// pairing-reduced per-side sets over candidate pairs (two per pair).
  uint64_t neighbor_nodes() const { return neighbor_nodes_; }
  uint64_t neighbor_nodes_reduced() const {
    return neighbor_nodes_reduced_;
  }
  size_t neighbor_entities() const { return dneighbor_sets_.size(); }

  /// Approximate heap footprint of the compiled structures, in bytes
  /// (EmStats::plan_bytes; excludes the referenced Graph and KeySet).
  size_t MemoryBytes() const;

 private:
  static constexpr uint32_t kNoSlot = UINT32_MAX;

  void BuildCandidates();
  void BuildDependencyIndex();

  /// Signature blocking for one keyed type: when every matchable key on
  /// `type` pins a value variable or constant directly on the designated
  /// variable, appends exactly the same-type pairs sharing at least one
  /// required (predicate, value) signature and returns true; returns
  /// false when some key is purely recursive/variable-only (caller falls
  /// back to full enumeration).
  bool EnumerateBlockedPairs(const std::vector<int>& key_ids,
                             std::span<const NodeId> entities,
                             std::vector<std::pair<NodeId, NodeId>>* out) const;

  /// The cached d-neighbor of keyed entity `e` (must exist).
  const NodeSet& DNbr(NodeId e) const {
    return dneighbor_sets_[dneighbor_slot_[e]];
  }

  const Graph* g_;
  const KeySet* keys_;
  EmOptions opts_;
  std::vector<CompiledKey> compiled_;
  std::unordered_map<Symbol, std::vector<int>> keys_by_type_;
  std::unordered_map<Symbol, int> radius_by_type_;
  std::vector<Candidate> candidates_;
  // Stable storage for the NodeSets candidates point into: one dense slot
  // per keyed entity (indexed through dneighbor_slot_), plus a pool for
  // the per-pair pairing-reduced sets. dneighbor_sets_ is reserved to its
  // exact final size before any pointer is taken, so element addresses
  // stay stable (and survive moves of the context).
  std::vector<uint32_t> dneighbor_slot_;
  std::vector<NodeSet> dneighbor_sets_;
  std::deque<NodeSet> reduced_pool_;
  size_t candidates_initial_ = 0;
  size_t candidates_blocked_ = 0;
  std::vector<GhostPair> ghosts_;
  std::vector<std::vector<uint32_t>> dependents_;
  uint64_t neighbor_nodes_ = 0;
  uint64_t neighbor_nodes_reduced_ = 0;
};

}  // namespace gkeys

#endif  // GKEYS_CORE_EM_COMMON_H_
