#ifndef GKEYS_CORE_MATCH_PLAN_H_
#define GKEYS_CORE_MATCH_PLAN_H_

#include <atomic>
#include <memory>
#include <optional>
#include <span>

#include "common/status.h"
#include "core/em_common.h"
#include "core/product_graph.h"
#include "graph/delta.h"
#include "graph/graph.h"
#include "keys/key.h"

namespace gkeys {

/// Options that shape plan *compilation* (the expensive preparation phase
/// every algorithm shares — DriverMR line 1). Run-time knobs (algorithm,
/// bounded messages, prioritization, VF2, …) live on Matcher instead, so
/// one compiled plan serves many differently-configured runs.
struct PlanOptions {
  /// Worker threads used while compiling the plan (d-neighbors, pairing,
  /// dependency index are all built in parallel). Purely a compile-time
  /// resource choice; it does not constrain later runs.
  int processors = 1;

  /// §4.2 / Prop. 9: filter the candidate list L down to pairable pairs
  /// and shrink d-neighbors with the maximum pairing relation. Baked into
  /// the plan because it determines the candidate and neighbor structures.
  /// Leave on unless reproducing the un-optimized EMMR/EMVF2MR baselines.
  bool use_pairing = true;

  /// Signature blocking (EmOptions::use_blocking): enumerate only
  /// same-type pairs that share a (predicate, value) signature some key
  /// requires, instead of all O(n²) same-type pairs. Output-preserving;
  /// baked into the plan because it shapes the candidate list. Leave on
  /// unless reproducing exhaustive-enumeration baselines.
  bool use_blocking = true;

  /// Build the product-graph skeleton Gp (§5.1) at compile time. Required
  /// to run the EMVC family from this plan; the MapReduce family and the
  /// naive chase ignore it.
  bool build_product_graph = true;

  /// The compilation preset matching a paper algorithm: pairing per the
  /// algorithm's §4.2/§5.1 prescription, product graph only for EMVC.
  static PlanOptions For(Algorithm a, int p);
};

/// An immutable, reusable matching plan: the key set compiled against a
/// graph. Holds the CompiledKeys (pattern + EMVC tour), per-type d-neighbor
/// bounds, the candidate list L (optionally pairing-reduced, with ghost
/// tracking), the entity-dependency index, and — by default — the product
/// graph skeleton. Produced by Matcher::Compile; executed by Matcher::Run
/// any number of times, by any algorithm, without recompilation.
///
/// A MatchPlan is a cheap, thread-safe handle (shared immutable state);
/// copies share one compiled representation, and concurrent Runs over
/// one plan are safe because runs never mutate it. The source Graph and
/// KeySet are referenced, not copied — they must outlive every plan
/// compiled from them, and mutating the graph (Graph::Apply) invalidates
/// every plan compiled against its pre-mutation state for RUNNING (patch
/// the plan and run the patched one; the stale plan remains safe as the
/// Patch source and for accessor reads).
///
/// Error contract: compilation and patching return Status instead of
/// asserting — FailedPrecondition for sequencing mistakes (unfinalized
/// graph; Patch before Apply), InvalidArgument for bad inputs (empty
/// plan/key set, foreign delta, nonsensical options).
class MatchPlan {
 public:
  /// An empty plan; running it yields InvalidArgument. Compile makes
  /// valid ones.
  MatchPlan() = default;

  bool valid() const { return rep_ != nullptr; }

  /// The graph and key set this plan was compiled against. These
  /// reference-returning accessors (and context()/product_graph())
  /// require valid(); the value-returning ones below are safe on an
  /// empty plan.
  const Graph& graph() const { return rep_->ctx.graph(); }
  const KeySet& keys() const { return *rep_->keys; }

  PlanOptions options() const {
    return valid() ? rep_->options : PlanOptions{};
  }

  /// The shared preparation product (compiled keys, candidates, neighbor
  /// sets, dependency index) the execution engines run over.
  const EmContext& context() const { return rep_->ctx; }

  bool has_product_graph() const { return valid() && rep_->pg.has_value(); }
  const ProductGraph& product_graph() const { return *rep_->pg; }

  /// |L| after compilation (post-pairing when enabled). 0 on an empty plan.
  size_t num_candidates() const {
    return valid() ? rep_->ctx.candidates().size() : 0;
  }

  /// Wall-clock seconds compilation took; Matcher::Run reports it as
  /// EmStats::prep_seconds so amortization stays visible.
  double compile_seconds() const {
    return valid() ? rep_->compile_seconds : 0.0;
  }

  /// Approximate heap footprint of the compiled structures in bytes
  /// (candidates, neighbor sets, dependency index, product graph);
  /// EmStats::plan_bytes reports this plus the result's provenance index
  /// (ProvenanceIndexBytes). The estimate is capacity-based (see
  /// EmContext::MemoryBytes) and computed lazily on first access —
  /// walking every capacity is measurable next to a sub-millisecond
  /// Patch. 0 on an empty plan. This is an IN-MEMORY figure, distinct
  /// from the serialized snapshot size (MmapStore::file_bytes): the
  /// snapshot varint-packs payloads, carries no capacity slack, and
  /// stores COW-shared sections once, so it is typically much smaller.
  size_t memory_bytes() const {
    if (!valid()) return 0;
    size_t cached = rep_->memory_bytes.load(std::memory_order_relaxed);
    if (cached != 0) return cached;
    size_t bytes =
        rep_->ctx.MemoryBytes() +
        (rep_->pg.has_value() ? rep_->pg->MemoryBytes() : 0);
    rep_->memory_bytes.store(bytes, std::memory_order_relaxed);
    return bytes;
  }

  /// Incremental recompilation: given a delta that has ALREADY been
  /// applied to this plan's graph (Graph::Apply re-finalizes it), builds
  /// the plan for the post-delta graph by recompiling only the affected
  /// region — entities whose d-ball intersects a node the delta touched —
  /// and sharing every untouched section (d-neighbor sets, pairing
  /// reductions, surviving candidates of clean types) with this plan,
  /// copy-on-write. The patched plan records which candidates are dirty
  /// so Matcher::Rematch can re-run exactly those.
  ///
  /// After Graph::Apply this source plan's graph has changed underneath
  /// it: do not Run the source plan again — run the patched one.
  ///
  /// compile_seconds() of the patched plan is the PATCH cost, so
  /// EmStats::prep_seconds keeps reporting what the plan in hand actually
  /// cost. Errors: InvalidArgument on an empty plan or a delta staged
  /// against a different graph; FailedPrecondition when the delta has not
  /// been applied (graph unfinalized or node count mismatch).
  StatusOr<MatchPlan> Patch(const GraphDelta& delta) const;

  /// Whether this plan came from Patch (then dirty_candidates() is the
  /// re-check set for a seeded rematch).
  bool patched() const { return valid() && rep_->patched; }

  /// Indices into context().candidates() whose check outcome may differ
  /// from the pre-delta plan. Empty on a non-patched plan (Rematch then
  /// re-checks everything).
  std::span<const uint32_t> dirty_candidates() const {
    return valid() ? std::span<const uint32_t>(rep_->dirty_candidates)
                   : std::span<const uint32_t>();
  }

  /// Patch cost breakdown and reuse accounting; nullptr unless patched().
  const ContextPatchInfo* patch_info() const {
    return patched() ? &rep_->patch_info : nullptr;
  }

  // ---- Affected-region statistics (rematch cost model) ---------------
  // A patch records how much of the plan the delta's region reached; the
  // Matcher's RematchOptions::kAuto mode reads these to choose between a
  // seeded rematch and a full run of the patched plan. All are safe on
  // any plan (0 on empty / non-patched ones).

  /// Keyed entities whose signatures / d-neighbors / pairing domains the
  /// patch recompiled. Compare against context().neighbor_entities().
  size_t num_affected_entities() const {
    return patched() ? rep_->patch_info.affected_entities.size() : 0;
  }

  /// dirty_candidates() as a fraction of |L| — the share of the candidate
  /// list a seeded rematch re-checks up front. 0 when nothing is dirty,
  /// 1 when the whole plan was recompiled (or |L| == 0 while dirty).
  double dirty_fraction() const {
    size_t n = num_candidates();
    size_t dirty = dirty_candidates().size();
    if (dirty == 0) return 0.0;
    return n == 0 ? 1.0 : static_cast<double>(dirty) / static_cast<double>(n);
  }

  /// num_affected_entities() as a fraction of the plan's keyed entities.
  double affected_entity_fraction() const {
    size_t affected = num_affected_entities();
    if (affected == 0) return 0.0;
    size_t keyed = rep_->ctx.neighbor_entities();
    return keyed == 0 ? 1.0
                      : static_cast<double>(affected) /
                            static_cast<double>(keyed);
  }

 private:
  friend StatusOr<MatchPlan> CompileMatchPlan(const Graph& g,
                                              const KeySet& keys,
                                              const PlanOptions& opts);
  // Snapshot (de)serialization constructs Reps via the shell constructor
  // below and fills the context from storage records.
  friend class storage::PlanCodec;

  struct Rep {
    Rep(const Graph& g, const KeySet& k, const PlanOptions& popts,
        const EmOptions& eopts)
        : keys(&k), options(popts), ctx(g, k, eopts) {}

    // Patch: incremental rebuild sharing untouched state with `prev`.
    Rep(const EmContext& prev, const KeySet& k, const PlanOptions& popts,
        std::span<const NodeId> dirty_nodes, ContextPatchInfo* info)
        : keys(&k), options(popts), ctx(prev, dirty_nodes, info) {}

    // Deserialization shell (storage::PlanCodec): the context binds
    // graph/keys and compiles the keys; the codec restores the rest.
    Rep(EmContext::DeserializeShell shell, const Graph& g, const KeySet& k,
        const PlanOptions& popts, const EmOptions& eopts)
        : keys(&k), options(popts), ctx(shell, g, k, eopts) {}

    const KeySet* keys;
    PlanOptions options;
    EmContext ctx;
    std::optional<ProductGraph> pg;
    double compile_seconds = 0.0;
    // Lazily computed by memory_bytes(); 0 = not yet computed
    // (recomputation is idempotent, so the benign race is harmless).
    mutable std::atomic<size_t> memory_bytes{0};
    bool patched = false;
    std::vector<uint32_t> dirty_candidates;
    ContextPatchInfo patch_info;
  };

  explicit MatchPlan(std::shared_ptr<const Rep> rep) : rep_(std::move(rep)) {}

  std::shared_ptr<const Rep> rep_;
};

/// Compiles `keys` against `g`. Errors surface as Status rather than
/// asserts: FailedPrecondition for an unfinalized graph, InvalidArgument
/// for an empty key set or nonsensical options.
StatusOr<MatchPlan> CompileMatchPlan(const Graph& g, const KeySet& keys,
                                     const PlanOptions& opts = {});

}  // namespace gkeys

#endif  // GKEYS_CORE_MATCH_PLAN_H_
