#include "core/match_plan.h"

#include "common/timer.h"

namespace gkeys {

PlanOptions PlanOptions::For(Algorithm a, int p) {
  EmOptions preset = EmOptions::For(a, p);
  PlanOptions popts;
  popts.processors = p;
  popts.use_pairing = preset.use_pairing;
  popts.use_blocking = preset.use_blocking;
  popts.build_product_graph =
      a == Algorithm::kEmVc || a == Algorithm::kEmOptVc;
  return popts;
}

StatusOr<MatchPlan> CompileMatchPlan(const Graph& g, const KeySet& keys,
                                     const PlanOptions& opts) {
  if (!g.finalized()) {
    return Status::FailedPrecondition(
        "MatchPlan requires a finalized graph: call Graph::Finalize() "
        "before Matcher::Compile");
  }
  if (keys.empty()) {
    return Status::InvalidArgument(
        "MatchPlan requires a non-empty key set (nothing to match on)");
  }
  if (opts.processors < 1) {
    return Status::InvalidArgument(
        "PlanOptions::processors must be >= 1, got " +
        std::to_string(opts.processors));
  }

  Timer timer;
  EmOptions eopts;
  eopts.processors = opts.processors;
  eopts.use_pairing = opts.use_pairing;
  eopts.use_blocking = opts.use_blocking;
  // Not make_shared: Rep is private and friendship does not reach into
  // the standard library's allocation helpers.
  std::shared_ptr<MatchPlan::Rep> rep(new MatchPlan::Rep(g, keys, opts, eopts));
  if (opts.build_product_graph) {
    rep->pg.emplace(BuildProductGraph(rep->ctx));
  }
  rep->compile_seconds = timer.Seconds();
  return MatchPlan(std::move(rep));
}

StatusOr<MatchPlan> MatchPlan::Patch(const GraphDelta& delta) const {
  if (!valid()) {
    return Status::InvalidArgument(
        "cannot Patch an empty MatchPlan: obtain one from Matcher::Compile");
  }
  const Graph& g = graph();
  if (!g.finalized()) {
    return Status::FailedPrecondition(
        "MatchPlan::Patch requires the delta to be applied first: "
        "Graph::Apply mutates and re-finalizes the graph");
  }
  if (g.NumNodes() != delta.base_nodes() + delta.num_new_nodes()) {
    return Status::FailedPrecondition(
        "MatchPlan::Patch: the graph has " + std::to_string(g.NumNodes()) +
        " nodes but the applied delta implies " +
        std::to_string(delta.base_nodes() + delta.num_new_nodes()) +
        " — was this delta applied to this plan's graph?");
  }

  Timer timer;
  std::vector<NodeId> dirty = delta.TouchedNodes();
  ContextPatchInfo info;
  std::shared_ptr<MatchPlan::Rep> rep(new MatchPlan::Rep(
      rep_->ctx, *rep_->keys, rep_->options, dirty, &info));
  if (rep_->options.build_product_graph) {
    // Gp is patched at |L| scale: carried-over candidates replay their
    // cached pairing relations; only dirty ones re-run the fixpoint.
    Timer pg_timer;
    if (rep_->pg.has_value()) {
      rep->pg.emplace(PatchProductGraph(*rep_->pg, rep->ctx,
                                        info.candidate_reuse, dirty));
    } else {
      rep->pg.emplace(BuildProductGraph(rep->ctx));
    }
    info.product_graph_seconds = pg_timer.Seconds();
  }
  rep->patched = true;
  rep->dirty_candidates = std::move(info.dirty_candidates);
  rep->patch_info = std::move(info);
  rep->patch_info.dirty_candidates.clear();  // lives in dirty_candidates()
  rep->compile_seconds = timer.Seconds();
  return MatchPlan(std::move(rep));
}

}  // namespace gkeys
