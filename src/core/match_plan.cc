#include "core/match_plan.h"

#include "common/timer.h"

namespace gkeys {

PlanOptions PlanOptions::For(Algorithm a, int p) {
  EmOptions preset = EmOptions::For(a, p);
  PlanOptions popts;
  popts.processors = p;
  popts.use_pairing = preset.use_pairing;
  popts.use_blocking = preset.use_blocking;
  popts.build_product_graph =
      a == Algorithm::kEmVc || a == Algorithm::kEmOptVc;
  return popts;
}

StatusOr<MatchPlan> CompileMatchPlan(const Graph& g, const KeySet& keys,
                                     const PlanOptions& opts) {
  if (!g.finalized()) {
    return Status::FailedPrecondition(
        "MatchPlan requires a finalized graph: call Graph::Finalize() "
        "before Matcher::Compile");
  }
  if (keys.empty()) {
    return Status::InvalidArgument(
        "MatchPlan requires a non-empty key set (nothing to match on)");
  }
  if (opts.processors < 1) {
    return Status::InvalidArgument(
        "PlanOptions::processors must be >= 1, got " +
        std::to_string(opts.processors));
  }

  Timer timer;
  EmOptions eopts;
  eopts.processors = opts.processors;
  eopts.use_pairing = opts.use_pairing;
  eopts.use_blocking = opts.use_blocking;
  // Not make_shared: Rep is private and friendship does not reach into
  // the standard library's allocation helpers.
  std::shared_ptr<MatchPlan::Rep> rep(new MatchPlan::Rep(g, keys, opts, eopts));
  if (opts.build_product_graph) {
    rep->pg.emplace(BuildProductGraph(rep->ctx));
  }
  rep->compile_seconds = timer.Seconds();
  rep->memory_bytes = rep->ctx.MemoryBytes() +
                      (rep->pg.has_value() ? rep->pg->MemoryBytes() : 0);
  return MatchPlan(std::move(rep));
}

}  // namespace gkeys
