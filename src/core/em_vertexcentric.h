#ifndef GKEYS_CORE_EM_VERTEXCENTRIC_H_
#define GKEYS_CORE_EM_VERTEXCENTRIC_H_

#include "core/em_common.h"
#include "core/product_graph.h"
#include "keys/key.h"

namespace gkeys {

/// The EMVC family (paper §5): entity matching on the asynchronous
/// vertex-centric engine. The algorithm constructs the product graph Gp,
/// then seeds one message per (candidate pair, key). A message carries
/// the partial instantiation vector m and walks Gp guided by the key's
/// traversal order P_Q (a closed DFS tour from x, 2|Q| hops, Lemma 11);
/// at each product node it runs the EvalMR feasibility conditions and
/// forks a copy per eligible neighbor. A message arriving back at its
/// origin fully instantiated proves (G, {Q}) |= (e1, e2): the pair is
/// merged into the shared Eq and every dependent candidate (dep edges,
/// §4.2) is re-seeded so recursive keys fire incrementally — no rounds,
/// no barriers, no straggler blocking.
///
/// Optimizations (§5.2, enabled by EmOptions):
///   * bounded_messages k — at most k message copies per (pair, key)
///     check; once the budget is spent the message explores the remaining
///     branches sequentially *in place*, backtracking instead of forking;
///   * prioritized — eligible neighbors are tried highest-potential first
///     (potential = the neighbor's edge count matching the next tour hop,
///     collected while building Gp).
///
/// Transitive closure: subsumed by the concurrent union-find (see
/// DESIGN.md); a quiescence sweep re-seeds dependents of pairs that became
/// equal purely transitively, guaranteeing the chase fixpoint.
MatchResult RunEmVertexCentric(const Graph& g, const KeySet& keys,
                               const EmOptions& options);

/// Same, with a pre-built context (benchmarks separate preprocessing).
MatchResult RunEmVertexCentric(const EmContext& ctx);

/// Plan-layer entry point: executes EMVC over a pre-built context and
/// product-graph skeleton with caller-supplied run-time options (bounded
/// messages, prioritization, processors — independent of how the context
/// was compiled). When `sink` is non-null, confirmed pairs and per-round
/// progress are streamed and cancellation is honored between engine runs
/// (StatusCode::kCancelled).
/// With a `seed` (Matcher::Rematch), Eq starts from the previous
/// fixpoint, only the seed's active candidates get initial messages, and
/// the existing increment-message / quiescence-sweep machinery cascades
/// into clean candidates that new merges enable.
StatusOr<MatchResult> RunEmVertexCentric(const EmContext& ctx,
                                         const ProductGraph& pg,
                                         const EmOptions& run_options,
                                         MatchSink* sink,
                                         const RematchSeed* seed = nullptr);

}  // namespace gkeys

#endif  // GKEYS_CORE_EM_VERTEXCENTRIC_H_
