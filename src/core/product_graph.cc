#include "core/product_graph.h"

#include <algorithm>

#include "isomorph/pairing.h"

namespace gkeys {

uint32_t ProductGraph::Find(NodeId a, NodeId b) const {
  auto it = index_.find(PackPair(a, b));
  return it == index_.end() ? kNoPNode : it->second;
}

uint32_t ProductGraph::OutCount(uint32_t v, Symbol pred) const {
  auto it = out_count_[v].find(pred);
  return it == out_count_[v].end() ? 0 : it->second;
}

uint32_t ProductGraph::InCount(uint32_t v, Symbol pred) const {
  auto it = in_count_[v].find(pred);
  return it == in_count_[v].end() ? 0 : it->second;
}

size_t ProductGraph::MemoryBytes() const {
  size_t bytes = nodes_.capacity() * sizeof(nodes_[0]) +
                 candidate_nodes_.capacity() * sizeof(uint32_t) +
                 index_.size() * (sizeof(uint64_t) + sizeof(uint32_t));
  for (const auto& adj : out_) bytes += adj.capacity() * sizeof(PEdge);
  for (const auto& adj : in_) bytes += adj.capacity() * sizeof(PEdge);
  for (const auto& counts : out_count_) {
    bytes += counts.size() * (sizeof(Symbol) + sizeof(uint32_t));
  }
  for (const auto& counts : in_count_) {
    bytes += counts.size() * (sizeof(Symbol) + sizeof(uint32_t));
  }
  for (const auto& pairs : candidate_pairs_) {
    if (pairs != nullptr) bytes += pairs->capacity() * sizeof(uint64_t);
  }
  bytes += candidate_pairs_.capacity() *
               sizeof(std::shared_ptr<const Relation>) +
           node_refs_.capacity() * sizeof(uint32_t);
  return bytes;
}

namespace {

/// The pairing relation of candidate `c`, unioned over its keys, as
/// packed deduplicated pairs. Includes (e1, e2) itself whenever some key
/// pairs (the relation always contains the candidate pair then), so
/// "empty" doubles as "unpairable by every key".
std::vector<uint64_t> CollectCandidatePairs(const EmContext& ctx,
                                            const Candidate& c,
                                            PairingScratch* scratch) {
  std::vector<uint64_t> pairs;
  for (int ki : *c.keys) {
    PairingResult pr =
        ComputeMaxPairing(ctx.graph(), ctx.compiled_keys()[ki].cp, c.e1,
                          c.e2, *c.nbr1, *c.nbr2, /*collect_pairs=*/true,
                          scratch);
    if (!pr.paired) continue;
    pairs.insert(pairs.end(), pr.pairs.begin(), pr.pairs.end());
    pairs.push_back(PackPair(c.e1, c.e2));
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

}  // namespace

void ProductGraph::AddNodeRef(ProductGraph& pg, uint64_t packed) {
  auto [it, inserted] =
      pg.index_.emplace(packed, static_cast<uint32_t>(pg.nodes_.size()));
  if (inserted) {
    pg.nodes_.emplace_back(static_cast<NodeId>(packed >> 32),
                           static_cast<NodeId>(packed & 0xffffffffu));
    pg.node_refs_.push_back(0);
  }
  ++pg.node_refs_[it->second];
}

void ProductGraph::ResolveCandidateNodes(const EmContext& ctx,
                                         ProductGraph& pg) {
  pg.candidate_nodes_.assign(ctx.candidates().size(), kNoPNode);
  for (uint32_t i = 0; i < ctx.candidates().size(); ++i) {
    const Candidate& c = ctx.candidates()[i];
    if (!pg.candidate_pairs_[i]->empty()) {
      pg.candidate_nodes_[i] = pg.Find(c.e1, c.e2);
    }
  }
}

void ProductGraph::Finish(const EmContext& ctx, ProductGraph& pg) {
  const Graph& g = ctx.graph();
  ResolveCandidateNodes(ctx, pg);

  // Ep: ((s1, s2), p, (o1, o2)) iff (s1, p, o1) ∈ G and (s2, p, o2) ∈ G.
  pg.out_.assign(pg.nodes_.size(), {});
  pg.in_.assign(pg.nodes_.size(), {});
  pg.out_count_.assign(pg.nodes_.size(), {});
  pg.in_count_.assign(pg.nodes_.size(), {});
  for (uint32_t v = 0; v < pg.nodes_.size(); ++v) {
    auto [a, b] = pg.nodes_[v];
    if (!g.IsEntity(a) || !g.IsEntity(b)) continue;
    for (const Edge& ea : g.Out(a)) {
      for (const Edge& eb : g.Out(b)) {
        if (ea.pred != eb.pred) continue;
        uint32_t dst = pg.Find(ea.dst, eb.dst);
        if (dst == kNoPNode) continue;
        pg.out_[v].push_back(ProductGraph::PEdge{ea.pred, dst});
        pg.in_[dst].push_back(ProductGraph::PEdge{ea.pred, v});
        ++pg.out_count_[v][ea.pred];
        ++pg.in_count_[dst][ea.pred];
        ++pg.num_edges_;
      }
    }
  }
}

ProductGraph BuildProductGraph(const EmContext& ctx) {
  ProductGraph pg;
  // Vp: every pair surviving in the maximum pairing relation of some key
  // at some candidate (paper §5.1). One scratch serves the whole build.
  // The per-candidate relations are kept (candidate_pairs_, shared) and
  // each node's supporting-relation count (node_refs_) so a later
  // MatchPlan::Patch replays clean candidates and retires dirty ones
  // instead of rediscovering Vp.
  PairingScratch scratch;
  pg.candidate_pairs_.resize(ctx.candidates().size());
  for (uint32_t i = 0; i < ctx.candidates().size(); ++i) {
    auto rel = std::make_shared<ProductGraph::Relation>(
        CollectCandidatePairs(ctx, ctx.candidates()[i], &scratch));
    for (uint64_t p : *rel) ProductGraph::AddNodeRef(pg, p);
    pg.candidate_pairs_[i] = std::move(rel);
  }
  ProductGraph::Finish(ctx, pg);
  return pg;
}

ProductGraph PatchProductGraph(const ProductGraph& prev,
                               const EmContext& ctx,
                               const std::vector<int64_t>& candidate_reuse,
                               std::span<const NodeId> graph_dirty) {
  const Graph& g = ctx.graph();
  ProductGraph pg;
  // Node phase: start from the previous node set and retire the
  // contributions of candidates that are gone or re-paired; only dirty
  // candidates run the pairing fixpoint again. Carried-over candidates
  // re-share their relations (reference counts inherited unchanged).
  pg.nodes_ = prev.nodes_;
  pg.index_ = prev.index_;
  pg.node_refs_ = prev.node_refs_;
  const uint32_t prev_count = static_cast<uint32_t>(prev.nodes_.size());
  std::vector<uint8_t> carried(prev.candidate_pairs_.size(), 0);
  for (int64_t from : candidate_reuse) {
    if (from >= 0) carried[from] = 1;
  }
  auto retire = [&pg](const ProductGraph::Relation& rel) {
    for (uint64_t p : rel) --pg.node_refs_[pg.index_.at(p)];
  };
  for (uint32_t i = 0; i < prev.candidate_pairs_.size(); ++i) {
    if (!carried[i]) retire(*prev.candidate_pairs_[i]);
  }
  PairingScratch scratch;
  pg.candidate_pairs_.resize(ctx.candidates().size());
  for (uint32_t i = 0; i < ctx.candidates().size(); ++i) {
    int64_t from = i < candidate_reuse.size() ? candidate_reuse[i] : -1;
    if (from >= 0) {
      pg.candidate_pairs_[i] = prev.candidate_pairs_[from];
      continue;
    }
    auto rel = std::make_shared<ProductGraph::Relation>(
        CollectCandidatePairs(ctx, ctx.candidates()[i], &scratch));
    for (uint64_t p : *rel) ProductGraph::AddNodeRef(pg, p);
    pg.candidate_pairs_[i] = std::move(rel);
  }
  // Compact away nodes no relation supports anymore (removals and
  // re-paired candidates shrink Vp), keeping the prev-id → new-id map
  // the edge pass needs.
  std::vector<uint32_t> prev_to_new;
  bool any_dead = false;
  for (uint32_t refs : pg.node_refs_) {
    if (refs == 0) {
      any_dead = true;
      break;
    }
  }
  if (any_dead) {
    prev_to_new.assign(prev_count, kNoPNode);
    std::vector<std::pair<NodeId, NodeId>> nodes;
    std::vector<uint32_t> refs;
    nodes.reserve(pg.nodes_.size());
    pg.index_.clear();
    for (uint32_t v = 0; v < pg.nodes_.size(); ++v) {
      if (pg.node_refs_[v] == 0) continue;
      uint32_t id = static_cast<uint32_t>(nodes.size());
      pg.index_.emplace(PackPair(pg.nodes_[v].first, pg.nodes_[v].second),
                        id);
      if (v < prev_count) prev_to_new[v] = id;
      nodes.push_back(pg.nodes_[v]);
      refs.push_back(pg.node_refs_[v]);
    }
    pg.nodes_ = std::move(nodes);
    pg.node_refs_ = std::move(refs);
  } else {
    prev_to_new.resize(prev_count);
    for (uint32_t v = 0; v < prev_count; ++v) prev_to_new[v] = v;
  }

  // Edge phase, incremental: a product node needs its out-edges
  // recomputed only if it is new or one of its graph endpoints had its
  // adjacency touched by the delta; every other node's out-list is valid
  // in the new graph and is copied (dropping edges whose target died),
  // then extended with edges into the NEW nodes, discovered from the new
  // nodes' in-side. in_ and the prioritization counts are derived from
  // out_ in one pass.
  std::vector<uint8_t> endpoint_dirty(g.NumNodes(), 0);
  for (NodeId n : graph_dirty) {
    if (n < g.NumNodes()) endpoint_dirty[n] = 1;
  }
  const uint32_t num_nodes = static_cast<uint32_t>(pg.nodes_.size());
  std::vector<uint8_t> recompute(num_nodes, 0);
  std::vector<uint32_t> prev_of(num_nodes, kNoPNode);
  for (uint32_t v = 0; v < prev_count; ++v) {
    if (prev_to_new[v] != kNoPNode) prev_of[prev_to_new[v]] = v;
  }
  std::vector<uint32_t> fresh_nodes;
  for (uint32_t v = 0; v < num_nodes; ++v) {
    auto [a, b] = pg.nodes_[v];
    if (prev_of[v] == kNoPNode) {
      recompute[v] = 1;
      fresh_nodes.push_back(v);
    } else if (endpoint_dirty[a] != 0 || endpoint_dirty[b] != 0) {
      recompute[v] = 1;
    }
  }
  pg.out_.assign(num_nodes, {});
  for (uint32_t v = 0; v < num_nodes; ++v) {
    auto [a, b] = pg.nodes_[v];
    if (recompute[v] != 0) {
      if (!g.IsEntity(a) || !g.IsEntity(b)) continue;
      for (const Edge& ea : g.Out(a)) {
        for (const Edge& eb : g.Out(b)) {
          if (ea.pred != eb.pred) continue;
          uint32_t dst = pg.Find(ea.dst, eb.dst);
          if (dst == kNoPNode) continue;
          pg.out_[v].push_back(ProductGraph::PEdge{ea.pred, dst});
        }
      }
      continue;
    }
    for (const ProductGraph::PEdge& e : prev.out_[prev_of[v]]) {
      uint32_t dst = prev_to_new[e.dst];
      if (dst == kNoPNode) continue;
      pg.out_[v].push_back(ProductGraph::PEdge{e.pred, dst});
    }
  }
  // Edges from clean sources into brand-new nodes (the copy above cannot
  // contain them — the target did not exist).
  for (uint32_t w : fresh_nodes) {
    auto [o1, o2] = pg.nodes_[w];
    for (const Edge& ea : g.In(o1)) {
      for (const Edge& eb : g.In(o2)) {
        if (ea.pred != eb.pred) continue;
        uint32_t v = pg.Find(ea.dst, eb.dst);
        if (v == kNoPNode || recompute[v] != 0) continue;
        pg.out_[v].push_back(ProductGraph::PEdge{ea.pred, w});
      }
    }
  }
  pg.in_.assign(num_nodes, {});
  pg.out_count_.assign(num_nodes, {});
  pg.in_count_.assign(num_nodes, {});
  for (uint32_t v = 0; v < num_nodes; ++v) {
    for (const ProductGraph::PEdge& e : pg.out_[v]) {
      pg.in_[e.dst].push_back(ProductGraph::PEdge{e.pred, v});
      ++pg.out_count_[v][e.pred];
      ++pg.in_count_[e.dst][e.pred];
      ++pg.num_edges_;
    }
  }
  ProductGraph::ResolveCandidateNodes(ctx, pg);
  return pg;
}

}  // namespace gkeys
