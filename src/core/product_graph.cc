#include "core/product_graph.h"

#include "isomorph/pairing.h"

namespace gkeys {

uint32_t ProductGraph::Find(NodeId a, NodeId b) const {
  auto it = index_.find(PackPair(a, b));
  return it == index_.end() ? kNoPNode : it->second;
}

uint32_t ProductGraph::OutCount(uint32_t v, Symbol pred) const {
  auto it = out_count_[v].find(pred);
  return it == out_count_[v].end() ? 0 : it->second;
}

uint32_t ProductGraph::InCount(uint32_t v, Symbol pred) const {
  auto it = in_count_[v].find(pred);
  return it == in_count_[v].end() ? 0 : it->second;
}

size_t ProductGraph::MemoryBytes() const {
  size_t bytes = nodes_.capacity() * sizeof(nodes_[0]) +
                 candidate_nodes_.capacity() * sizeof(uint32_t) +
                 index_.size() * (sizeof(uint64_t) + sizeof(uint32_t));
  for (const auto& adj : out_) bytes += adj.capacity() * sizeof(PEdge);
  for (const auto& adj : in_) bytes += adj.capacity() * sizeof(PEdge);
  for (const auto& counts : out_count_) {
    bytes += counts.size() * (sizeof(Symbol) + sizeof(uint32_t));
  }
  for (const auto& counts : in_count_) {
    bytes += counts.size() * (sizeof(Symbol) + sizeof(uint32_t));
  }
  return bytes;
}

ProductGraph BuildProductGraph(const EmContext& ctx) {
  const Graph& g = ctx.graph();
  ProductGraph pg;

  auto add_node = [&pg](NodeId a, NodeId b) -> uint32_t {
    uint64_t packed = PackPair(a, b);
    auto [it, inserted] =
        pg.index_.emplace(packed, static_cast<uint32_t>(pg.nodes_.size()));
    if (inserted) pg.nodes_.emplace_back(a, b);
    return it->second;
  };

  // Vp: every pair surviving in the maximum pairing relation of some key
  // at some candidate (paper §5.1). One scratch serves the whole build.
  PairingScratch scratch;
  pg.candidate_nodes_.assign(ctx.candidates().size(), kNoPNode);
  for (uint32_t i = 0; i < ctx.candidates().size(); ++i) {
    const Candidate& c = ctx.candidates()[i];
    bool any = false;
    for (int ki : *c.keys) {
      PairingResult pr =
          ComputeMaxPairing(g, ctx.compiled_keys()[ki].cp, c.e1, c.e2,
                            *c.nbr1, *c.nbr2, /*collect_pairs=*/true,
                            &scratch);
      if (!pr.paired) continue;
      any = true;
      for (uint64_t p : pr.pairs) {
        add_node(static_cast<NodeId>(p >> 32),
                 static_cast<NodeId>(p & 0xffffffffu));
      }
    }
    if (any) pg.candidate_nodes_[i] = add_node(c.e1, c.e2);
  }

  // Ep: ((s1, s2), p, (o1, o2)) iff (s1, p, o1) ∈ G and (s2, p, o2) ∈ G.
  pg.out_.assign(pg.nodes_.size(), {});
  pg.in_.assign(pg.nodes_.size(), {});
  pg.out_count_.assign(pg.nodes_.size(), {});
  pg.in_count_.assign(pg.nodes_.size(), {});
  for (uint32_t v = 0; v < pg.nodes_.size(); ++v) {
    auto [a, b] = pg.nodes_[v];
    if (!g.IsEntity(a) || !g.IsEntity(b)) continue;
    for (const Edge& ea : g.Out(a)) {
      for (const Edge& eb : g.Out(b)) {
        if (ea.pred != eb.pred) continue;
        uint32_t dst = pg.Find(ea.dst, eb.dst);
        if (dst == kNoPNode) continue;
        pg.out_[v].push_back(ProductGraph::PEdge{ea.pred, dst});
        pg.in_[dst].push_back(ProductGraph::PEdge{ea.pred, v});
        ++pg.out_count_[v][ea.pred];
        ++pg.in_count_[dst][ea.pred];
        ++pg.num_edges_;
      }
    }
  }
  return pg;
}

}  // namespace gkeys
