#ifndef GKEYS_CORE_PRODUCT_GRAPH_H_
#define GKEYS_CORE_PRODUCT_GRAPH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/em_common.h"

namespace gkeys {

/// Sentinel for "no product node".
inline constexpr uint32_t kNoPNode = UINT32_MAX;

/// The product graph Gp = (Vp, Ep) of paper §5.1. Nodes are pairs
/// (o1, o2) of graph nodes that appear in the maximum pairing relation of
/// some key at some candidate pair (Prop. 9) — including diagonal pairs
/// (o, o) and value pairs (v, v). There is an edge
/// ((s1, s2), p, (o1, o2)) iff (s1, p, o1) and (s2, p, o2) are both
/// triples of G. EMVC messages travel on these edges.
///
/// The paper's `dep` edges are kept at candidate granularity in
/// EmContext::dependents(); its `tc` edges are subsumed by the shared
/// union-find Eq (a merge makes the whole class equal at once, which is
/// exactly what tc-propagation computes). Both substitutions are recorded
/// in DESIGN.md.
class ProductGraph {
 public:
  struct PEdge {
    Symbol pred;
    uint32_t dst;
  };

  /// The graph-node pair represented by product node `v`.
  std::pair<NodeId, NodeId> pair(uint32_t v) const { return nodes_[v]; }

  size_t NumNodes() const { return nodes_.size(); }
  size_t NumEdges() const { return num_edges_; }

  const std::vector<PEdge>& Out(uint32_t v) const { return out_[v]; }
  const std::vector<PEdge>& In(uint32_t v) const { return in_[v]; }

  /// Product node for (a, b), or kNoPNode.
  uint32_t Find(NodeId a, NodeId b) const;

  /// Product node of candidate i, or kNoPNode when the candidate is not
  /// pairable by any key (then it is not identifiable either).
  uint32_t CandidateNode(uint32_t candidate) const {
    return candidate_nodes_[candidate];
  }

  /// Prioritized-propagation statistic (§5.2): how many out-(resp. in-)
  /// edges with predicate `pred` leave product node `v`. Collected at
  /// construction time, as the paper prescribes.
  uint32_t OutCount(uint32_t v, Symbol pred) const;
  uint32_t InCount(uint32_t v, Symbol pred) const;

  /// Approximate heap footprint in bytes (bytes-per-plan accounting).
  size_t MemoryBytes() const;

 private:
  friend ProductGraph BuildProductGraph(const EmContext& ctx);
  friend ProductGraph PatchProductGraph(
      const ProductGraph& prev, const EmContext& ctx,
      const std::vector<int64_t>& candidate_reuse,
      std::span<const NodeId> graph_dirty);
  // Snapshot (de)serialization: restores nodes_ and the relation pool,
  // then replays Finish() to rebuild the derived adjacency.
  friend class storage::PlanCodec;

  using Relation = std::vector<uint64_t>;

  /// Interns the product node for a packed pair and bumps its
  /// supporting-relation count (shared by the full and patched builds).
  static void AddNodeRef(ProductGraph& pg, uint64_t packed);

  /// Resolves candidate_nodes_ from the per-candidate relations (a
  /// nonempty relation always contains the candidate pair itself).
  static void ResolveCandidateNodes(const EmContext& ctx, ProductGraph& pg);

  /// Resolves candidate_nodes_ and runs the full edge pass (tail of the
  /// from-scratch build; the patched build has its own incremental edge
  /// pass).
  static void Finish(const EmContext& ctx, ProductGraph& pg);

  std::vector<std::pair<NodeId, NodeId>> nodes_;
  std::unordered_map<uint64_t, uint32_t> index_;
  std::vector<std::vector<PEdge>> out_;
  std::vector<std::vector<PEdge>> in_;
  std::vector<uint32_t> candidate_nodes_;
  std::vector<std::unordered_map<Symbol, uint32_t>> out_count_;
  std::vector<std::unordered_map<Symbol, uint32_t>> in_count_;
  // Per candidate, its union-over-keys pairing relation as packed pairs
  // (the node-discovery phase's raw output), shared across plan
  // generations. PatchProductGraph re-shares carried-over candidates'
  // relations instead of re-running their pairing fixpoints.
  std::vector<std::shared_ptr<const Relation>> candidate_pairs_;
  // Per product node: how many candidate relations contain it. Lets a
  // patch retire the contributions of dropped/re-paired candidates and
  // keep only supported nodes, without rediscovering Vp from scratch.
  std::vector<uint32_t> node_refs_;
  size_t num_edges_ = 0;
};

/// Builds Gp from the context's candidates by re-running the pairing
/// fixpoint per (candidate, key) and collecting every surviving pair.
ProductGraph BuildProductGraph(const EmContext& ctx);

/// Incremental rebuild for a patched context: candidates carried over
/// from the source plan (candidate_reuse[i] >= 0) re-share their cached
/// pairing relations from `prev`; only the dirty candidates re-run the
/// pairing fixpoint, and retired contributions are reference-counted
/// away. The edge pass recomputes only product nodes that are new or
/// touch a graph node in `graph_dirty` (the delta's touched set); every
/// other node's adjacency is copied from `prev` and extended with edges
/// into the new nodes. Product-node ids may differ from a from-scratch
/// build; Gp semantics do not depend on them.
ProductGraph PatchProductGraph(const ProductGraph& prev,
                               const EmContext& ctx,
                               const std::vector<int64_t>& candidate_reuse,
                               std::span<const NodeId> graph_dirty);

}  // namespace gkeys

#endif  // GKEYS_CORE_PRODUCT_GRAPH_H_
