#ifndef GKEYS_CORE_CHASE_H_
#define GKEYS_CORE_CHASE_H_

#include <cstdint>

#include "core/em_common.h"
#include "keys/key.h"

namespace gkeys {

/// Options for the sequential reference chase.
struct ChaseOptions {
  /// When nonzero, candidate pairs are visited in a seed-dependent random
  /// order each round. Used by the Church–Rosser property tests (Prop. 1):
  /// every order must yield the same chase(G, Σ).
  uint64_t shuffle_seed = 0;
  /// Use VF2 enumeration instead of the combined EvalMR search.
  bool use_vf2 = false;
  /// Skip the d-neighbor restriction and search all of G. The data-
  /// locality property (§4.1) guarantees the result is unchanged; tests
  /// verify exactly that.
  bool unrestricted_neighbors = false;
  /// Record a Derivation per direct identification into
  /// MatchResult::derivations (see EmOptions::record_provenance).
  bool record_provenance = true;
  /// Wall-clock budget checked at the top of every chase round; 0 =
  /// unbounded (see EmOptions::time_budget_seconds).
  double time_budget_seconds = 0.0;
};

/// The sequential reference implementation of chase(G, Σ) (paper §3.1):
/// repeatedly applies chase steps — any key identifying any candidate pair
/// under the current Eq — until no step is applicable, maintaining Eq's
/// transitivity through union-find. By Proposition 1 (Church–Rosser) the
/// result is order-independent; this implementation is the correctness
/// oracle every parallel algorithm is tested against.
MatchResult Chase(const Graph& g, const KeySet& keys,
                  const ChaseOptions& options = {});

/// The chase fixpoint over a pre-built context — the single shared loop
/// behind Chase() and Matcher's kNaiveChase, so oracle and plan-based
/// execution cannot diverge. `use_vf2` overrides the context's compile
/// options (plan runs choose the search strategy at run time). With a
/// sink, streams pairs/progress per round and honors cancellation.
///
/// With a `seed` (Matcher::Rematch), Eq starts from the seed's previous
/// pairs, only the seed's active candidates are checked initially, and
/// new merges wake dependents (and ghost watchers) instead of the
/// exhaustive re-scan — the incremental counterpart of the same fixpoint.
StatusOr<MatchResult> RunChase(const EmContext& ctx,
                               const ChaseOptions& options, bool use_vf2,
                               MatchSink* sink,
                               const RematchSeed* seed = nullptr);

/// Decision procedure: (G, Σ) |= (e1, e2)? Runs the chase and looks the
/// pair up (the problem shown NP-complete in Theorem 2 — exponential only
/// through the subgraph-isomorphism search inside each chase step).
bool Identified(const Graph& g, const KeySet& keys, NodeId e1, NodeId e2);

/// Key satisfaction G |= Q(x) (paper §2.2): no two *distinct* entities
/// have coinciding matches of Q. Equivalent to: the chase of {Q} derives
/// no non-reflexive pair.
bool Satisfies(const Graph& g, const Key& key);

/// G |= Σ: satisfaction of every key.
bool Satisfies(const Graph& g, const KeySet& keys);

}  // namespace gkeys

#endif  // GKEYS_CORE_CHASE_H_
