#ifndef GKEYS_CORE_SATISFACTION_H_
#define GKEYS_CORE_SATISFACTION_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "keys/key.h"

namespace gkeys {

/// One witness of G ⊭ Q(x): two distinct entities with coinciding matches
/// of the key under plain node identity (paper §2.2 / Example 5).
struct Violation {
  NodeId e1, e2;
  std::string key;  // name of the violated key
};

/// Finds key violations: pairs of distinct entities that a single key
/// application identifies under Eq0. These are exactly the first-round
/// chase steps — the direct evidence that G ⊭ Σ. Recursive keys are
/// evaluated under node identity only, so violations enabled purely by
/// other derivations are NOT listed (use the chase / provenance API for
/// the full closure); a graph with no violations here may still fail
/// deeper recursive checks only if some first step exists, hence
/// `violations.empty() ⇔ Satisfies(g, keys)` (tested).
///
/// `limit` caps the number of reported violations (0 = unlimited).
std::vector<Violation> FindViolations(const Graph& g, const KeySet& keys,
                                      size_t limit = 0);

/// Renders a violation like `Q2: album#3 == album#4`.
std::string FormatViolation(const Graph& g, const Violation& v);

}  // namespace gkeys

#endif  // GKEYS_CORE_SATISFACTION_H_
