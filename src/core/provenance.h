#ifndef GKEYS_CORE_PROVENANCE_H_
#define GKEYS_CORE_PROVENANCE_H_

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/em_common.h"
#include "keys/key.h"

namespace gkeys {

// Provenance has two faces here. ChaseStep (below) is the HUMAN-facing
// one: key names, rounds, formatted explanations, recorded by the
// sequential ChaseWithProvenance. Derivation (core/em_common.h) is the
// MACHINE-facing one: compiled-key indices, premises, and witness
// triples, recorded by all three engine families on every run and
// replayed by RetractDerivations to maintain results under removal
// deltas. Both encode the same §3.1 proof graphs. All functions in this
// header are pure and thread-compatible (no shared mutable state).

/// One recorded chase step Eq ⇒_(e1,e2) Eq' (paper §3.1): which key fired
/// for which pair, and which previously derived facts it consumed. The
/// steps of a run assemble into the DAG-shaped proof graphs that witness
/// (G, Σ) |= (e1, e2) in the Theorem 2 upper-bound argument.
struct ChaseStep {
  NodeId e1, e2;
  /// Name of the key that identified the pair.
  std::string key;
  /// 1-based chase round in which the step fired.
  size_t round = 0;
  /// The non-reflexive entity-variable facts the witness used — each one
  /// was derived by an earlier step (the proof-graph edges). Reflexive
  /// facts (e, e) are node identity and are omitted.
  std::vector<std::pair<NodeId, NodeId>> premises;
};

/// chase(G, Σ) together with its derivation.
struct ProvenanceResult {
  MatchResult result;
  /// Steps in firing order. Note |steps| counts *direct* identifications;
  /// result.pairs additionally contains transitive consequences.
  std::vector<ChaseStep> steps;
};

/// Runs the sequential chase recording provenance. The result equals
/// Chase(g, keys) (Church–Rosser); steps record one witness per direct
/// identification.
ProvenanceResult ChaseWithProvenance(const Graph& g, const KeySet& keys);

/// Renders a step like
///   `album#3 == album#4  by Q2  [round 1]` or
///   `artist#0 == artist#1  by Q3  [round 2]  because album#3 == album#4`.
std::string FormatChaseStep(const Graph& g, const ChaseStep& step);

/// Validates a derivation against the chase semantics: every premise of
/// every step must have been derivable (union of earlier steps' pairs and
/// node identity, transitively closed) when the step fired. Returns false
/// on a dangling premise. Used by tests and by consumers that persist and
/// re-check derivations.
bool ValidateDerivation(const Graph& g, const KeySet& keys,
                        const std::vector<ChaseStep>& steps);

/// The outcome of replaying a provenance index (MatchResult::derivations)
/// against a mutated graph: the derivations still valid, the seed they
/// imply, and how many were over-deleted.
struct RetractionResult {
  /// Derivations whose witness triples all still exist in the graph and
  /// whose premises are supported by earlier surviving derivations, in
  /// the original (replayable) order. Every one is a valid chase step on
  /// the mutated graph, so their merges are a sound rematch seed.
  std::vector<Derivation> surviving;
  /// The Eq-closure of the surviving derivations' merges: all pairs
  /// (a, b), a < b, sorted — RematchSeed::prev_pairs for a seeded re-run.
  std::vector<std::pair<NodeId, NodeId>> seed_pairs;
  /// The same closure as a queryable union-find (the replay relation,
  /// handed out rather than discarded — Matcher::Rematch probes it when
  /// computing the retracted-candidate re-check set).
  EquivalenceRelation closure = EquivalenceRelation(0);
  /// Derivations dropped. DRed-style over-deletion: a dropped derivation
  /// may still hold through another witness — Matcher::Rematch re-checks
  /// every retracted candidate, re-deriving exactly the survivors.
  size_t retracted = 0;
};

/// DRed over-deletion for removal deltas (Theorem 2's proof graphs put to
/// work): replays `derivations` in recorded order against `g` — the graph
/// AFTER the delta was applied — keeping a derivation iff every witness
/// triple still exists (one HasTriple probe each; removals are the only
/// way a recorded triple can vanish, since nodes are never deleted) and
/// every premise is Same under the replay union-find of the derivations
/// kept so far. Dropping is transitive over premises by construction: if
/// a derivation's support was retracted, its premise check fails and it is
/// retracted too. `g` must be finalized. The engines' record-before-Union
/// discipline guarantees every entry's premises precede it in the log
/// (see internal::DerivationLog), so an unchanged graph retracts nothing;
/// the replay is additionally robust to unsupported entries (they are
/// over-deleted and re-derived by the seeded run — wasted work, never
/// wrong answers), which future engines may lean on.
RetractionResult RetractDerivations(const Graph& g,
                                    std::span<const Derivation> derivations);

}  // namespace gkeys

#endif  // GKEYS_CORE_PROVENANCE_H_
