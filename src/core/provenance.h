#ifndef GKEYS_CORE_PROVENANCE_H_
#define GKEYS_CORE_PROVENANCE_H_

#include <string>
#include <utility>
#include <vector>

#include "core/em_common.h"
#include "keys/key.h"

namespace gkeys {

/// One recorded chase step Eq ⇒_(e1,e2) Eq' (paper §3.1): which key fired
/// for which pair, and which previously derived facts it consumed. The
/// steps of a run assemble into the DAG-shaped proof graphs that witness
/// (G, Σ) |= (e1, e2) in the Theorem 2 upper-bound argument.
struct ChaseStep {
  NodeId e1, e2;
  /// Name of the key that identified the pair.
  std::string key;
  /// 1-based chase round in which the step fired.
  size_t round = 0;
  /// The non-reflexive entity-variable facts the witness used — each one
  /// was derived by an earlier step (the proof-graph edges). Reflexive
  /// facts (e, e) are node identity and are omitted.
  std::vector<std::pair<NodeId, NodeId>> premises;
};

/// chase(G, Σ) together with its derivation.
struct ProvenanceResult {
  MatchResult result;
  /// Steps in firing order. Note |steps| counts *direct* identifications;
  /// result.pairs additionally contains transitive consequences.
  std::vector<ChaseStep> steps;
};

/// Runs the sequential chase recording provenance. The result equals
/// Chase(g, keys) (Church–Rosser); steps record one witness per direct
/// identification.
ProvenanceResult ChaseWithProvenance(const Graph& g, const KeySet& keys);

/// Renders a step like
///   `album#3 == album#4  by Q2  [round 1]` or
///   `artist#0 == artist#1  by Q3  [round 2]  because album#3 == album#4`.
std::string FormatChaseStep(const Graph& g, const ChaseStep& step);

/// Validates a derivation against the chase semantics: every premise of
/// every step must have been derivable (union of earlier steps' pairs and
/// node identity, transitively closed) when the step fired. Returns false
/// on a dangling premise. Used by tests and by consumers that persist and
/// re-check derivations.
bool ValidateDerivation(const Graph& g, const KeySet& keys,
                        const std::vector<ChaseStep>& steps);

}  // namespace gkeys

#endif  // GKEYS_CORE_PROVENANCE_H_
