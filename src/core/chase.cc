#include "core/chase.h"

#include <numeric>

#include "common/rng.h"
#include "common/timer.h"

namespace gkeys {

StatusOr<MatchResult> RunChase(const EmContext& ctx,
                               const ChaseOptions& options, bool use_vf2,
                               MatchSink* sink, const RematchSeed* seed) {
  MatchResult result;
  result.stats.candidates_initial = ctx.candidates_initial();
  result.stats.candidates_blocked = ctx.candidates_blocked();
  result.stats.candidates = ctx.candidates().size();
  result.stats.neighbor_nodes = ctx.neighbor_nodes();
  result.stats.neighbor_nodes_reduced = ctx.neighbor_nodes_reduced();

  const size_t num_candidates = ctx.candidates().size();
  std::vector<uint32_t> order;
  if (seed == nullptr) {
    order.resize(num_candidates);
    std::iota(order.begin(), order.end(), 0);
    if (options.shuffle_seed != 0) {
      Rng rng(options.shuffle_seed);
      for (size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[rng.Below(i)]);
      }
    }
  } else {
    order.assign(seed->active.begin(), seed->active.end());
  }

  Timer run_timer;
  EquivalenceRelation eq(ctx.graph().NumNodes());
  EqView view(&eq);
  internal::PairStreamer streamer(sink, ctx.graph().NumNodes());

  // Seeded rematch: start from the previous fixpoint. Its consequences
  // were all drawn in the previous run, so candidates and ghosts already
  // equal under the seed must NOT wake their dependents again — only new
  // merges cascade.
  std::vector<uint8_t> in_pipeline(num_candidates, seed == nullptr ? 1 : 0);
  std::vector<uint8_t> tc_done(num_candidates, 0);
  std::vector<uint8_t> ghost_done(ctx.ghosts().size(), 0);
  if (seed != nullptr) {
    for (const auto& [a, b] : seed->prev_pairs) eq.Union(a, b);
    streamer.SeedClasses(seed->prev_pairs);
    for (uint32_t idx : seed->active) in_pipeline[idx] = 1;
    for (uint32_t i = 0; i < num_candidates; ++i) {
      const Candidate& c = ctx.candidates()[i];
      if (eq.Same(c.e1, c.e2)) tc_done[i] = 1;
    }
    for (uint32_t gi = 0; gi < ctx.ghosts().size(); ++gi) {
      const auto& ghost = ctx.ghosts()[gi];
      if (eq.Same(ghost.e1, ghost.e2)) ghost_done[gi] = 1;
    }
  }

  std::vector<Derivation> recorded;
  Witness witness;
  std::vector<std::pair<NodeId, NodeId>> merges;  // this round's Unions
  std::vector<uint32_t> active = order;
  std::vector<uint32_t> next;
  std::vector<uint32_t> merged_this_round;
  bool changed = true;
  while (changed && !active.empty()) {
    GKEYS_RETURN_IF_ERROR(CheckTimeBudget(run_timer.Seconds(),
                                          options.time_budget_seconds,
                                          result.stats.rounds));
    changed = false;
    ++result.stats.rounds;
    next.clear();
    merges.clear();
    merged_this_round.clear();
    for (uint32_t idx : active) {
      const Candidate& c = ctx.candidates()[idx];
      if (eq.Same(c.e1, c.e2)) continue;  // already identified (or TC)
      ++result.stats.iso_checks;
      bool found;
      if (options.record_provenance) {
        int fired = -1;
        found = ctx.IdentifiesWitness(c, view, &fired, &witness,
                                      &result.stats.search,
                                      options.unrestricted_neighbors,
                                      use_vf2);
        if (found) {
          recorded.push_back(ctx.MakeDerivation(c, fired, witness));
        }
      } else {
        found = ctx.Identifies(c, view, &result.stats.search,
                               options.unrestricted_neighbors, use_vf2);
      }
      if (found) {
        eq.Union(c.e1, c.e2);
        merges.emplace_back(c.e1, c.e2);
        merged_this_round.push_back(idx);
        changed = true;
      } else {
        next.push_back(idx);
      }
    }
    if (seed != nullptr && changed) {
      // Incremental wake-ups: clean candidates enter the pipeline only
      // when a merge can change their outcome — a dependency fired, or a
      // watched pair (candidate or ghost) became equal transitively.
      auto wake = [&](uint32_t dep) {
        if (in_pipeline[dep] != 0) return;
        in_pipeline[dep] = 1;
        next.push_back(dep);
      };
      for (uint32_t idx : merged_this_round) {
        tc_done[idx] = 1;
        for (uint32_t dep : ctx.dependents()[idx]) wake(dep);
      }
      for (uint32_t i = 0; i < num_candidates; ++i) {
        if (tc_done[i] != 0) continue;
        const Candidate& c = ctx.candidates()[i];
        if (!eq.Same(c.e1, c.e2)) continue;
        tc_done[i] = 1;
        for (uint32_t dep : ctx.dependents()[i]) wake(dep);
      }
      for (uint32_t gi = 0; gi < ctx.ghosts().size(); ++gi) {
        if (ghost_done[gi] != 0) continue;
        const auto& ghost = ctx.ghosts()[gi];
        if (!eq.Same(ghost.e1, ghost.e2)) continue;
        ghost_done[gi] = 1;
        for (uint32_t dep : ghost.dependents) wake(dep);
      }
    }
    active.swap(next);
    if (sink != nullptr) {
      result.stats.confirmed = streamer.EmitMerges(merges);
      sink->OnProgress(result.stats);
      if (sink->cancelled()) {
        return Status::Cancelled("entity matching cancelled after round " +
                                 std::to_string(result.stats.rounds));
      }
    }
  }
  result.stats.run_seconds = run_timer.Seconds();
  internal::AssembleDerivations(result, seed, options.record_provenance,
                                std::move(recorded));
  result.pairs = eq.IdentifiedPairs();
  result.stats.confirmed = result.pairs.size();
  GKEYS_RETURN_IF_ERROR(streamer.Finish(result.pairs));
  return result;
}

MatchResult Chase(const Graph& g, const KeySet& keys,
                  const ChaseOptions& options) {
  Timer prep_timer;
  EmOptions eopts;
  eopts.processors = 1;
  eopts.use_vf2 = options.use_vf2;
  // The oracle enumerates exhaustively (blocked/unblocked equivalence
  // tests compare the algorithms against this).
  eopts.use_blocking = false;
  EmContext ctx(g, keys, eopts);
  double prep_seconds = prep_timer.Seconds();

  // No sink, so the run cannot fail.
  auto r = RunChase(ctx, options, options.use_vf2, nullptr);
  MatchResult result = r.ok() ? *std::move(r) : MatchResult{};
  result.stats.prep_seconds = prep_seconds;
  return result;
}

bool Identified(const Graph& g, const KeySet& keys, NodeId e1, NodeId e2) {
  if (e1 == e2) return true;
  MatchResult r = Chase(g, keys);
  if (e1 > e2) std::swap(e1, e2);
  for (const auto& [a, b] : r.pairs) {
    if (a == e1 && b == e2) return true;
  }
  return false;
}

bool Satisfies(const Graph& g, const Key& key) {
  KeySet single;
  single.Add(key);
  return Satisfies(g, single);
}

bool Satisfies(const Graph& g, const KeySet& keys) {
  // G |= Σ iff the chase derives nothing beyond node identity: the first
  // chase step (if any) uses Eq0 and already witnesses a violation.
  return Chase(g, keys).pairs.empty();
}

}  // namespace gkeys
