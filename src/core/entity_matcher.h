#ifndef GKEYS_CORE_ENTITY_MATCHER_H_
#define GKEYS_CORE_ENTITY_MATCHER_H_

#include "core/chase.h"
#include "core/em_common.h"
#include "core/em_mapreduce.h"
#include "core/em_vertexcentric.h"
#include "core/matcher.h"
#include "keys/key.h"

namespace gkeys {

/// Entity matching computes chase(G, Σ) — all entity pairs of `g`
/// identified by the keys (paper §3). The primary API is the session
/// pair in core/matcher.h:
///
///     gkeys::Graph g = ...;                 // build and Finalize()
///     gkeys::KeySet keys;
///     keys.AddFromDsl(R"(
///       key AlbumByNameYear for album {
///         x -[name_of]-> n*
///         x -[release_year]-> y*
///       })");
///
///     // Compile once: keys compiled against the graph, candidate list,
///     // d-neighbors, dependency index, product-graph skeleton.
///     auto plan = gkeys::Matcher::Compile(g, keys);
///     if (!plan.ok()) { /* inspect plan.status() */ }
///
///     // Run many: any algorithm, any configuration, no recompilation.
///     gkeys::Matcher matcher(gkeys::Algorithm::kEmOptVc);
///     auto r = matcher.processors(8).Run(*plan);
///     for (auto [a, b] : r->pairs) { ... }  // duplicates to fuse
///
/// All algorithms return exactly the same `pairs` (Proposition 1); they
/// differ in execution strategy and therefore in `stats`. Streaming
/// consumers pass a MatchSink: `matcher.Run(*plan, sink)` emits each
/// confirmed pair exactly once plus per-round progress, with cooperative
/// cancellation. Errors surface as Status/StatusOr, never asserts.
///
/// The two MatchEntities overloads below predate the plan API and are
/// kept as thin wrappers for one-shot callers.

/// Legacy convenience: compiles a single-use plan and runs it. Prefer
/// Matcher::Compile + Matcher::Run when matching more than once (the
/// preparation phase dominates and is reusable), or when error details
/// matter — this wrapper collapses every failure (unfinalized graph,
/// empty key set, invalid options) to an empty MatchResult.
MatchResult MatchEntities(const Graph& g, const KeySet& keys,
                          Algorithm algorithm = Algorithm::kEmOptVc,
                          int processors = 1);

/// Variant taking fully custom options.
MatchResult MatchEntities(const Graph& g, const KeySet& keys,
                          Algorithm algorithm, const EmOptions& options);

}  // namespace gkeys

#endif  // GKEYS_CORE_ENTITY_MATCHER_H_
