#ifndef GKEYS_CORE_ENTITY_MATCHER_H_
#define GKEYS_CORE_ENTITY_MATCHER_H_

#include "core/chase.h"
#include "core/em_common.h"
#include "core/em_mapreduce.h"
#include "core/em_vertexcentric.h"
#include "keys/key.h"

namespace gkeys {

/// The library's top-level entry point: computes chase(G, Σ) — all entity
/// pairs of `g` identified by the keys — with the chosen algorithm.
///
/// Quickstart:
///
///     gkeys::Graph g = ...;                 // build and Finalize()
///     gkeys::KeySet keys;
///     keys.AddFromDsl(R"(
///       key AlbumByNameYear for album {
///         x -[name_of]-> n*
///         x -[release_year]-> y*
///       })");
///     gkeys::MatchResult r = gkeys::MatchEntities(
///         g, keys, gkeys::Algorithm::kEmVc, /*processors=*/8);
///     for (auto [a, b] : r.pairs) { ... }   // duplicates to fuse
///
/// All algorithms return exactly the same `pairs` (Proposition 1); they
/// differ in execution strategy and therefore in `stats`.
MatchResult MatchEntities(const Graph& g, const KeySet& keys,
                          Algorithm algorithm = Algorithm::kEmOptVc,
                          int processors = 1);

/// Variant taking fully custom options.
MatchResult MatchEntities(const Graph& g, const KeySet& keys,
                          Algorithm algorithm, const EmOptions& options);

}  // namespace gkeys

#endif  // GKEYS_CORE_ENTITY_MATCHER_H_
