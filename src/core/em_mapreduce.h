#ifndef GKEYS_CORE_EM_MAPREDUCE_H_
#define GKEYS_CORE_EM_MAPREDUCE_H_

#include "core/em_common.h"
#include "keys/key.h"

namespace gkeys {

/// The EMMR family (paper §4): entity matching as an iterative MapReduce
/// computation. Each round:
///   * MapEM   — every active candidate pair is checked in parallel:
///               (Gd1 ∪ Gd2, Eq, Σ) |= (e1, e2) via procedure EvalMR
///               (or VF2 enumeration for EMVF2MR); results are emitted
///               keyed by entity;
///   * ReduceEM— newly identified pairs are merged into the global Eq
///               (transitivity via union-find, standing in for the
///               explicit TC joins over the HDFS-resident Eq), and
///               still-unidentified pairs are re-emitted for the next
///               round;
///   * the driver stops when a round changes nothing (Eq is a fixpoint).
///
/// Options map to the paper's variants:
///   * EMMR      — EmOptions::For(kEmMr, p);
///   * EMVF2MR   — use_vf2 (full match enumeration, no early termination);
///   * EMOptMR   — use_pairing (smaller L and neighbors), use_dependency
///                 (value-based L0 seeds first), use_incremental (re-check
///                 only after a dependency fired), §4.2.
///
/// Parallel scalability (Theorem 6): each round's map work is split over
/// p workers; on quiet data the wall time scales ~1/p (benchmarked).
MatchResult RunEmMapReduce(const Graph& g, const KeySet& keys,
                           const EmOptions& options);

/// Same, with a pre-built context (lets benchmarks separate DriverMR's
/// line-1 preprocessing from the iterative phase).
MatchResult RunEmMapReduce(const EmContext& ctx);

/// Plan-layer entry point: executes the iterative phase over a pre-built
/// context with caller-supplied run-time options (which may differ from
/// the options the context was compiled with — the compile-once/run-many
/// contract of Matcher). When `sink` is non-null, confirmed pairs and
/// per-round progress are streamed to it and cancellation is honored
/// between rounds (StatusCode::kCancelled).
///
/// With a `seed` (Matcher::Rematch), Eq starts from the previous
/// fixpoint, only the seed's active candidates enter round 1, and merges
/// pull clean candidates into the pipeline through the dependency index
/// and ghost watchers (regardless of use_incremental — the restricted
/// input set requires the wake-ups for completeness).
StatusOr<MatchResult> RunEmMapReduce(const EmContext& ctx,
                                     const EmOptions& run_options,
                                     MatchSink* sink,
                                     const RematchSeed* seed = nullptr);

}  // namespace gkeys

#endif  // GKEYS_CORE_EM_MAPREDUCE_H_
