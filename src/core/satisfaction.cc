#include "core/satisfaction.h"

#include "core/em_common.h"
#include "eq/equivalence.h"

namespace gkeys {

std::vector<Violation> FindViolations(const Graph& g, const KeySet& keys,
                                      size_t limit) {
  std::vector<Violation> out;
  EmOptions opts;
  EmContext ctx(g, keys, opts);
  EqView identity;  // Eq0
  for (const Candidate& c : ctx.candidates()) {
    for (int ki : *c.keys) {
      const CompiledKey& ck = ctx.compiled_keys()[ki];
      if (KeyIdentifies(g, ck.cp, c.e1, c.e2, identity, c.nbr1, c.nbr2)) {
        out.push_back(Violation{c.e1, c.e2, ck.key->name()});
        if (limit != 0 && out.size() >= limit) return out;
        break;  // one violation per pair is enough evidence
      }
    }
  }
  return out;
}

std::string FormatViolation(const Graph& g, const Violation& v) {
  return v.key + ": " + g.DescribeNode(v.e1) + " == " +
         g.DescribeNode(v.e2);
}

}  // namespace gkeys
