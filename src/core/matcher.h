#ifndef GKEYS_CORE_MATCHER_H_
#define GKEYS_CORE_MATCHER_H_

#include "common/status.h"
#include "core/em_common.h"
#include "core/ingest_pipeline.h"
#include "core/match_plan.h"
#include "graph/delta.h"
#include "graph/graph.h"
#include "keys/key.h"

namespace gkeys {

namespace storage {
class Snapshot;            // src/storage/snapshot.h
struct RecoveredSession;   // src/storage/recovery.h
}  // namespace storage

/// Options steering Matcher::Rematch's execution strategy. Orthogonal to
/// EmOptions (which shape the fixpoint itself): these only decide HOW an
/// incremental re-run uses the previous result.
struct RematchOptions {
  enum class Mode {
    /// Cost model: seed when the patch's affected region is small — both
    /// dirty_fraction() and affected_entity_fraction() of the patched
    /// plan within the thresholds below — and fall back to a full run of
    /// the patched plan when the region approaches the whole plan (where
    /// seeding overhead loses; see the README amortization table's ≥ 1 %
    /// rows). A removal delta whose previous result carries no provenance
    /// index (EmOptions::record_provenance was off) always runs full: the
    /// retained seed would be empty, so seeding saves nothing. Streaming
    /// rematches (a sink present) never auto-fall-back — a restart would
    /// re-emit every previously streamed pair, which costs the consumer
    /// more than the model saves — except in that same provenance-less
    /// removal case, where the stream restarts either way.
    kAuto,
    /// Always seed, even when the model predicts a full run is cheaper.
    /// The result is byte-identical either way; tests use this to pin the
    /// seeded path (EmStats::rematch_fallback stays 0).
    kForceSeed,
    /// Always run the patched plan in full, ignoring the previous result
    /// (except that prep accounting still reports the patch cost).
    kForceFull,
  };
  Mode mode = Mode::kAuto;

  /// kAuto thresholds: seed only while the patched plan's
  /// dirty_fraction() / affected_entity_fraction() stay at or below
  /// these. 0.5 ≈ the break-even the bench_incremental datasets show —
  /// past half the plan, re-checking dirty candidates plus the wake-up
  /// cascade costs about as much as checking everything.
  double max_dirty_fraction = 0.5;
  double max_affected_fraction = 0.5;
};

/// The library's session API: compile once, run many (paper §4–§5; all
/// algorithms share DriverMR's expensive line-1 preparation, so it is
/// hoisted into an immutable MatchPlan).
///
///     gkeys::Graph g = ...;                   // build and Finalize()
///     gkeys::KeySet keys; keys.AddFromDsl(...);
///
///     auto plan = gkeys::Matcher::Compile(g, keys);
///     if (!plan.ok()) { /* plan.status() */ }
///
///     gkeys::Matcher matcher;                 // defaults to EMOptVC
///     matcher.processors(8);
///     auto result = matcher.Run(*plan);       // StatusOr<MatchResult>
///
///     // The same plan, other algorithms — no recompilation:
///     auto mr = gkeys::Matcher(gkeys::Algorithm::kEmOptMr).Run(*plan);
///
/// Streaming: Run(plan, sink) emits each confirmed pair exactly once and
/// a progress snapshot per fixpoint round, and polls the sink for
/// cooperative cancellation (StatusCode::kCancelled).
///
/// Incremental lifecycle: after a GraphDelta is applied
/// (Graph::Apply → MatchPlan::Patch), Rematch(patched, prev, delta)
/// continues from the previous result instead of recomputing — seeded
/// for additive deltas outright, and for removal deltas through
/// provenance retraction (every result carries a per-derivation
/// provenance index by default; see MatchResult::derivations and
/// RematchOptions above). Every mode returns pairs byte-identical to a
/// from-scratch Compile + Run on the post-delta graph.
///
/// A Matcher is a small value object holding only configuration; it is
/// cheap to construct and copy, and one plan can be shared by matchers on
/// many threads (runs never mutate the plan, the previous result, or the
/// delta). Configure a Matcher on one thread before sharing it; the
/// execution methods are const and concurrently callable.
class Matcher {
 public:
  /// Defaults to the paper's best all-round algorithm, EMOptVC.
  Matcher() : Matcher(Algorithm::kEmOptVc) {}
  explicit Matcher(Algorithm a) { algorithm(a); }

  /// Compiles `keys` against `g` into a reusable plan. Status errors:
  /// FailedPrecondition (unfinalized graph), InvalidArgument (empty key
  /// set, bad options).
  static StatusOr<MatchPlan> Compile(const Graph& g, const KeySet& keys,
                                     const PlanOptions& opts = {}) {
    return CompileMatchPlan(g, keys, opts);
  }

  // ---- Builder-style configuration ----------------------------------
  // algorithm() loads the paper preset for `a` (EmOptions::For),
  // preserving the configured processor count; later setters refine it.
  // Order matters: set the algorithm first, then override knobs.

  Matcher& algorithm(Algorithm a) {
    algorithm_ = a;
    options_ = EmOptions::For(a, options_.processors);
    return *this;
  }
  /// Worker threads for the run (the paper's p).
  Matcher& processors(int p) {
    options_.processors = p;
    return *this;
  }
  /// Replace the combined EvalMR search by full VF2 enumeration.
  Matcher& use_vf2(bool v) {
    options_.use_vf2 = v;
    return *this;
  }
  /// §4.2: process value-based pairs first (L0 seeds; MapReduce family).
  Matcher& use_dependency(bool v) {
    options_.use_dependency = v;
    return *this;
  }
  /// §4.2: re-check a pair only after one of its dependencies fired.
  Matcher& use_incremental(bool v) {
    options_.use_incremental = v;
    return *this;
  }
  /// §5.2: per-(pair, key) message budget k; 0 = unbounded.
  Matcher& bounded_messages(int k) {
    options_.bounded_messages = k;
    return *this;
  }
  /// §5.2: prioritized propagation (highest-potential edges first).
  Matcher& prioritized(bool v) {
    options_.prioritized = v;
    return *this;
  }
  /// Graceful degradation for over-budget runs: a wall-clock budget in
  /// seconds, checked at the top of every fixpoint round. An expired
  /// budget returns StatusCode::kDeadlineExceeded through the same
  /// cooperative machinery as sink cancellation — a streaming sink keeps
  /// every pair emitted so far. A run that converges within the budget
  /// never fails. 0 = unbounded (default).
  Matcher& deadline_seconds(double s) {
    options_.time_budget_seconds = s;
    return *this;
  }
  /// Record a per-derivation provenance index into every result
  /// (MatchResult::derivations; default on). Required for removal deltas
  /// to run seeded — see Rematch below.
  Matcher& record_provenance(bool v) {
    options_.record_provenance = v;
    return *this;
  }
  /// Shard count for the engines' merge/derivation logs; 0 = auto (one
  /// per processor), 1 = the single global log. See EmOptions::log_shards.
  Matcher& log_shards(int n) {
    options_.log_shards = n;
    return *this;
  }
  /// Replaces the whole option set at once (for callers that already
  /// hold an EmOptions, e.g. the legacy wrappers and ablation benches).
  Matcher& options(const EmOptions& opts) {
    options_ = opts;
    return *this;
  }
  /// Rematch strategy (seeded-vs-full choice); see RematchOptions.
  Matcher& rematch_options(const RematchOptions& opts) {
    rematch_options_ = opts;
    return *this;
  }
  /// Shorthand for rematch_options({.mode = m}) keeping the thresholds.
  Matcher& rematch_mode(RematchOptions::Mode m) {
    rematch_options_.mode = m;
    return *this;
  }

  Algorithm algorithm() const { return algorithm_; }
  const EmOptions& options() const { return options_; }
  const RematchOptions& rematch_options() const { return rematch_options_; }

  // ---- Execution -----------------------------------------------------

  /// Runs the configured algorithm over a compiled plan and materializes
  /// the full result. Status errors instead of asserts: InvalidArgument
  /// (invalid plan or options), FailedPrecondition (EMVC family on a plan
  /// compiled without its product graph).
  StatusOr<MatchResult> Run(const MatchPlan& plan) const {
    return RunWithSink(plan, nullptr);
  }

  /// Streaming run: identified pairs and per-round progress go to `sink`
  /// as the fixpoint advances (each pair exactly once; at least one
  /// OnProgress per round; serialized callbacks — see MatchSink). The
  /// returned result is the same one a non-streaming Run yields. If the
  /// sink requests cancellation the run stops at the next round boundary
  /// with StatusCode::kCancelled.
  StatusOr<MatchResult> Run(const MatchPlan& plan, MatchSink& sink) const {
    return RunWithSink(plan, &sink);
  }

  /// Incremental re-run after a graph delta. `plan` is the PATCHED plan
  /// (prev_plan.Patch(delta) after Graph::Apply(delta)); `prev` is the
  /// result of the previous run on the pre-delta graph — pass it back
  /// whole, its derivations ARE the provenance index removals need. The
  /// result is byte-identical to a from-scratch Run on the post-delta
  /// graph in every mode.
  ///
  /// Additive deltas: the fixpoint is seeded from `prev` and only the
  /// plan's dirty candidates are re-checked (the dependency/ghost
  /// machinery cascades into clean pairs new merges enable) —
  /// identification is monotone in G, so nothing previously derived can
  /// be lost.
  ///
  /// Removal deltas: previous derivations whose witness realized a
  /// removed triple are retracted, transitively over premises (DRed-style
  /// over-deletion; RetractDerivations in core/provenance.h). The run is
  /// then seeded from the SURVIVING derivations, re-checking the dirty
  /// candidates plus every candidate whose pair was retracted — survivors
  /// of the over-deletion re-derive through the normal fixpoint. Requires
  /// `prev` to carry derivations (recorded by default); without them the
  /// retained seed is empty, which is still exact but re-checks every
  /// previously identified pair.
  ///
  /// RematchOptions::mode picks seeded vs. a full run of the patched plan
  /// (kAuto consults the plan's affected-region statistics). The result's
  /// stats record what happened: rematch_seeded / rematch_fallback /
  /// derivations_retracted.
  ///
  /// The returned result is complete (retained pairs included), with
  /// prep_seconds = the PATCH cost of `plan`.
  StatusOr<MatchResult> Rematch(const MatchPlan& plan,
                                const MatchResult& prev,
                                const GraphDelta& delta) const {
    return RematchWithSink(plan, prev, delta, nullptr);
  }

  /// Streaming rematch: the sink sees every pair NOT in the retained seed
  /// — for additive deltas exactly the delta beyond `prev`, each exactly
  /// once (exactly-once across the whole plan lifetime when the same sink
  /// outlives successive additive rematches). When removals retract
  /// derivations, retracted-then-re-derived pairs are re-emitted (the
  /// stream cannot un-emit), and pairs that stay lost simply do not
  /// appear; diff against `prev` for exact removal notifications. Under a
  /// full-run fallback the stream restarts: every pair of the new result
  /// is emitted.
  StatusOr<MatchResult> Rematch(const MatchPlan& plan,
                                const MatchResult& prev,
                                const GraphDelta& delta,
                                MatchSink& sink) const {
    return RematchWithSink(plan, prev, delta, &sink);
  }

  /// Restart path: continues from a loaded storage::Snapshot (see
  /// src/storage/snapshot.h). Applies `pending` — the deltas that
  /// arrived while the process was down — to the snapshot's graph, then
  /// Patch + Rematch, exactly the in-memory incremental lifecycle. The
  /// snapshot is updated in place to the post-delta plan/result, so
  /// successive Resume calls chain. An empty `pending` returns the
  /// stored result as-is (no patch, no rematch). Defined in
  /// storage/snapshot.cc so the core library stays layered below the
  /// storage subsystem.
  StatusOr<MatchResult> Resume(storage::Snapshot& snapshot,
                               const GraphDelta& pending) const;

  /// Crash-recovery path: rebuilds a session from a durable directory
  /// (storage::DurableDir) — newest valid snapshot plus every
  /// acknowledged write-ahead-log batch replayed through the incremental
  /// lifecycle. NotFound when the directory holds no snapshot;
  /// kDataLoss only when an ACKNOWLEDGED batch is unrecoverable (torn
  /// unacknowledged tails are silently truncated and counted in the
  /// report). Defined in storage/recovery.cc for the same layering
  /// reason as Resume; see storage/recovery.h for the state machine.
  StatusOr<storage::RecoveredSession> Recover(const std::string& dir) const;

  /// Streaming ingest: pulls delta batches from `source` through the
  /// staged pipeline (core/ingest_pipeline.h) — batch N+1 tokenizes on
  /// its own thread while batch N runs bind → Apply → Patch → Rematch
  /// here — advancing `session` in place, byte-identical to calling the
  /// serial chain per batch. Defined in core/ingest_pipeline.cc.
  IngestStats IngestStream(const IngestSession& session,
                           const IngestSource& source,
                           const IngestOptions& opts = {},
                           const IngestObserver& observer = {}) const;

  /// Snapshot-session convenience: same pipeline over a restored
  /// storage::Snapshot. `entity_names` is the session's ent-token table
  /// (pass RecoveredSession::entity_names after a Recover — it extends
  /// the snapshot's own); committed batches bind new tokens into it.
  /// Defined in storage/snapshot.cc for the same layering reason as
  /// Resume.
  IngestStats IngestStream(storage::Snapshot& snapshot,
                           std::unordered_map<std::string, NodeId>& entity_names,
                           const IngestSource& source,
                           const IngestOptions& opts = {},
                           const IngestObserver& observer = {}) const;

 private:
  Status Validate(const MatchPlan& plan) const;
  StatusOr<MatchResult> RunWithSink(const MatchPlan& plan,
                                    MatchSink* sink) const;
  StatusOr<MatchResult> RematchWithSink(const MatchPlan& plan,
                                        const MatchResult& prev,
                                        const GraphDelta& delta,
                                        MatchSink* sink) const;
  /// The kAuto cost model (and the kForce* overrides): should this
  /// rematch seed from `prev` rather than run the patched plan in full?
  /// `streaming` disables the kAuto fallback (a restart would re-emit
  /// every previously streamed pair).
  bool ChooseSeeded(const MatchPlan& plan, const MatchResult& prev,
                    const GraphDelta& delta, bool streaming) const;

  Algorithm algorithm_ = Algorithm::kEmOptVc;
  EmOptions options_;
  RematchOptions rematch_options_;
};

}  // namespace gkeys

#endif  // GKEYS_CORE_MATCHER_H_
