#ifndef GKEYS_CORE_MATCHER_H_
#define GKEYS_CORE_MATCHER_H_

#include "common/status.h"
#include "core/em_common.h"
#include "core/match_plan.h"
#include "graph/delta.h"
#include "graph/graph.h"
#include "keys/key.h"

namespace gkeys {

/// The library's session API: compile once, run many (paper §4–§5; all
/// algorithms share DriverMR's expensive line-1 preparation, so it is
/// hoisted into an immutable MatchPlan).
///
///     gkeys::Graph g = ...;                   // build and Finalize()
///     gkeys::KeySet keys; keys.AddFromDsl(...);
///
///     auto plan = gkeys::Matcher::Compile(g, keys);
///     if (!plan.ok()) { /* plan.status() */ }
///
///     gkeys::Matcher matcher;                 // defaults to EMOptVC
///     matcher.processors(8);
///     auto result = matcher.Run(*plan);       // StatusOr<MatchResult>
///
///     // The same plan, other algorithms — no recompilation:
///     auto mr = gkeys::Matcher(gkeys::Algorithm::kEmOptMr).Run(*plan);
///
/// Streaming: Run(plan, sink) emits each confirmed pair exactly once and
/// a progress snapshot per fixpoint round, and polls the sink for
/// cooperative cancellation (StatusCode::kCancelled).
///
/// A Matcher is a small value object holding only configuration; it is
/// cheap to construct and copy, and one plan can be shared by matchers on
/// many threads (runs never mutate the plan).
class Matcher {
 public:
  /// Defaults to the paper's best all-round algorithm, EMOptVC.
  Matcher() : Matcher(Algorithm::kEmOptVc) {}
  explicit Matcher(Algorithm a) { algorithm(a); }

  /// Compiles `keys` against `g` into a reusable plan. Status errors:
  /// FailedPrecondition (unfinalized graph), InvalidArgument (empty key
  /// set, bad options).
  static StatusOr<MatchPlan> Compile(const Graph& g, const KeySet& keys,
                                     const PlanOptions& opts = {}) {
    return CompileMatchPlan(g, keys, opts);
  }

  // ---- Builder-style configuration ----------------------------------
  // algorithm() loads the paper preset for `a` (EmOptions::For),
  // preserving the configured processor count; later setters refine it.
  // Order matters: set the algorithm first, then override knobs.

  Matcher& algorithm(Algorithm a) {
    algorithm_ = a;
    options_ = EmOptions::For(a, options_.processors);
    return *this;
  }
  /// Worker threads for the run (the paper's p).
  Matcher& processors(int p) {
    options_.processors = p;
    return *this;
  }
  /// Replace the combined EvalMR search by full VF2 enumeration.
  Matcher& use_vf2(bool v) {
    options_.use_vf2 = v;
    return *this;
  }
  /// §4.2: process value-based pairs first (L0 seeds; MapReduce family).
  Matcher& use_dependency(bool v) {
    options_.use_dependency = v;
    return *this;
  }
  /// §4.2: re-check a pair only after one of its dependencies fired.
  Matcher& use_incremental(bool v) {
    options_.use_incremental = v;
    return *this;
  }
  /// §5.2: per-(pair, key) message budget k; 0 = unbounded.
  Matcher& bounded_messages(int k) {
    options_.bounded_messages = k;
    return *this;
  }
  /// §5.2: prioritized propagation (highest-potential edges first).
  Matcher& prioritized(bool v) {
    options_.prioritized = v;
    return *this;
  }
  /// Replaces the whole option set at once (for callers that already
  /// hold an EmOptions, e.g. the legacy wrappers and ablation benches).
  Matcher& options(const EmOptions& opts) {
    options_ = opts;
    return *this;
  }

  Algorithm algorithm() const { return algorithm_; }
  const EmOptions& options() const { return options_; }

  // ---- Execution -----------------------------------------------------

  /// Runs the configured algorithm over a compiled plan and materializes
  /// the full result. Status errors instead of asserts: InvalidArgument
  /// (invalid plan or options), FailedPrecondition (EMVC family on a plan
  /// compiled without its product graph).
  StatusOr<MatchResult> Run(const MatchPlan& plan) const {
    return RunWithSink(plan, nullptr);
  }

  /// Streaming run: identified pairs and per-round progress go to `sink`
  /// as the fixpoint advances (each pair exactly once; at least one
  /// OnProgress per round; serialized callbacks — see MatchSink). The
  /// returned result is the same one a non-streaming Run yields. If the
  /// sink requests cancellation the run stops at the next round boundary
  /// with StatusCode::kCancelled.
  StatusOr<MatchResult> Run(const MatchPlan& plan, MatchSink& sink) const {
    return RunWithSink(plan, &sink);
  }

  /// Incremental re-run after a graph delta. `plan` is the PATCHED plan
  /// (prev_plan.Patch(delta) after Graph::Apply(delta)); `prev` is the
  /// result of the previous run on the pre-delta graph. For an additive
  /// delta the fixpoint is seeded from `prev` and only the plan's dirty
  /// candidates are re-checked (the dependency/ghost machinery cascades
  /// into clean pairs new merges enable) — identification is monotone in
  /// G, so the result is byte-identical to a from-scratch Run on the
  /// post-delta graph. When the delta removed triples, previous
  /// derivations may no longer hold and Rematch transparently falls back
  /// to a full (unseeded) run of the patched plan; the result is still
  /// exact.
  ///
  /// The returned result is complete (prev pairs included), with
  /// prep_seconds = the PATCH cost of `plan`.
  StatusOr<MatchResult> Rematch(const MatchPlan& plan,
                                const MatchResult& prev,
                                const GraphDelta& delta) const {
    return RematchWithSink(plan, prev, delta, nullptr);
  }

  /// Streaming rematch: the sink sees exactly the DELTA — pairs beyond
  /// `prev` — each exactly once (exactly-once across the whole plan
  /// lifetime when the same sink outlives successive rematches). Under
  /// the removal fallback the stream restarts: every pair of the new
  /// result is emitted.
  StatusOr<MatchResult> Rematch(const MatchPlan& plan,
                                const MatchResult& prev,
                                const GraphDelta& delta,
                                MatchSink& sink) const {
    return RematchWithSink(plan, prev, delta, &sink);
  }

 private:
  Status Validate(const MatchPlan& plan) const;
  StatusOr<MatchResult> RunWithSink(const MatchPlan& plan,
                                    MatchSink* sink) const;
  StatusOr<MatchResult> RematchWithSink(const MatchPlan& plan,
                                        const MatchResult& prev,
                                        const GraphDelta& delta,
                                        MatchSink* sink) const;

  Algorithm algorithm_ = Algorithm::kEmOptVc;
  EmOptions options_;
};

}  // namespace gkeys

#endif  // GKEYS_CORE_MATCHER_H_
