#include "core/em_vertexcentric.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/timer.h"
#include "core/product_graph.h"
#include "vertexcentric/engine.h"

namespace gkeys {

namespace {

/// A message of procedure EvalVC: the partial injective mapping m from
/// pattern nodes to product-graph pairs, plus the walk position.
struct VcMessage {
  int key = 0;           // compiled-key index
  uint32_t origin = 0;   // candidate index being checked
  uint32_t pos = 0;      // tour steps taken so far
  // m: per pattern node, (side1, side2); kNoNode == ⊥.
  std::vector<std::pair<NodeId, NodeId>> m;
};

using VcEngine = vertexcentric::Engine<VcMessage>;

/// Shared state of one EMVC run.
struct VcRun {
  const EmContext& ctx;
  const ProductGraph& pg;
  // Run-time options: may differ from ctx.options() when executing a
  // compiled plan under a different algorithm configuration.
  const EmOptions& run_opts;
  ConcurrentEquivalence& eq;
  // Merge log feeding the streaming sink; null on non-streaming runs.
  internal::MergeLog* merge_log;
  // Derivation log; null when provenance recording is off.
  internal::DerivationLog* deriv_log;
  // One flag per candidate: set once identified AND dependents notified.
  std::vector<std::atomic<uint8_t>>& flags;
  // §5.2 bounded messages: per (candidate, key-slot) fork budget used.
  std::vector<std::atomic<int>>& budget;
  int max_key_slots;
  std::atomic<uint64_t> inline_hops{0};  // non-forked (sequential) hops

  const EmOptions& opts() const { return run_opts; }
  const Graph& g() const { return ctx.graph(); }

  int BudgetSlot(uint32_t origin, int key) const {
    const Candidate& c = ctx.candidates()[origin];
    for (int s = 0; s < static_cast<int>(c.keys->size()); ++s) {
      if ((*c.keys)[s] == key) return origin * max_key_slots + s;
    }
    return origin * max_key_slots;
  }

  /// Seeds the initial message(s) for candidate `idx` (one per key).
  void Seed(VcEngine::Context& vctx, uint32_t idx) {
    const Candidate& c = ctx.candidates()[idx];
    uint32_t vertex = pg.CandidateNode(idx);
    if (vertex == kNoPNode) return;  // unpairable: not identifiable
    for (int ki : *c.keys) {
      const CompiledKey& ck = ctx.compiled_keys()[ki];
      if (!ck.cp.matchable) continue;
      if (opts().bounded_messages > 0) {
        budget[BudgetSlot(idx, ki)].store(1, std::memory_order_relaxed);
      }
      VcMessage msg;
      msg.key = ki;
      msg.origin = idx;
      msg.pos = 0;
      msg.m.assign(ck.cp.nodes.size(), {kNoNode, kNoNode});
      msg.m[ck.cp.designated] = {c.e1, c.e2};
      vctx.Send(vertex, std::move(msg));
    }
  }

  /// Marks the message's origin candidate identified, merges Eq, and
  /// re-seeds dependents whose recursive keys may now fire ("increment
  /// messages", §5.1 (6)). `msg` is the verified message: its mapping m IS
  /// the witness, so provenance is recorded here. The record goes into the
  /// log before the Union so any later derivation whose premise reads this
  /// merge finds this record already ahead of it in the replay order.
  void MarkIdentified(VcEngine::Context& vctx, const VcMessage& msg) {
    uint32_t idx = msg.origin;
    uint8_t expected = 0;
    if (!flags[idx].compare_exchange_strong(expected, 1)) return;
    const Candidate& c = ctx.candidates()[idx];
    if (deriv_log != nullptr) {
      deriv_log->Record(ctx.MakeDerivation(c, msg.key, msg.m));
    }
    if (eq.Union(c.e1, c.e2) && merge_log != nullptr) {
      merge_log->Record(c.e1, c.e2);
    }
    for (uint32_t dep : ctx.dependents()[idx]) {
      if (flags[dep].load(std::memory_order_acquire) == 0) Seed(vctx, dep);
    }
  }

  /// EvalMR feasibility conditions at product node (s1, s2) for pattern
  /// node `q` of key `ck` given partial mapping `m` (paper §4.1/§5.1 (4)).
  bool Feasible(const CompiledKey& ck, const VcMessage& msg, int q,
                NodeId s1, NodeId s2) const {
    const Graph& gr = g();
    const Candidate& c = ctx.candidates()[msg.origin];
    const CompiledNode& pn = ck.cp.nodes[q];
    switch (pn.kind) {
      case VarKind::kDesignated:
        return false;
      case VarKind::kEntityVar:
        if (!gr.IsEntity(s1) || !gr.IsEntity(s2)) return false;
        if (gr.entity_type(s1) != pn.type || gr.entity_type(s2) != pn.type) {
          return false;
        }
        if (!eq.Same(s1, s2)) return false;
        break;
      case VarKind::kValueVar:
        if (!gr.IsValue(s1) || s1 != s2) return false;
        break;
      case VarKind::kWildcard:
        if (!gr.IsEntity(s1) || !gr.IsEntity(s2)) return false;
        if (gr.entity_type(s1) != pn.type || gr.entity_type(s2) != pn.type) {
          return false;
        }
        break;
      case VarKind::kConstant:
        if (s1 != pn.constant_node || s2 != pn.constant_node) return false;
        break;
    }
    if (!c.nbr1->Contains(s1) || !c.nbr2->Contains(s2)) return false;
    // Injective per side.
    for (const auto& [a, b] : msg.m) {
      if (a == s1 && a != kNoNode) return false;
      if (b == s2 && b != kNoNode) return false;
    }
    // Guided expansion: every pattern triple between q and an
    // instantiated node must be realized on both sides.
    for (int t : ck.cp.incident[q]) {
      const CompiledTriple& ct = ck.cp.triples[t];
      int other = ct.subject == q ? ct.object : ct.subject;
      NodeId a1, a2, b1, b2;
      if (other == q) {
        a1 = s1; b1 = s1; a2 = s2; b2 = s2;
      } else if (ct.subject == q) {
        if (msg.m[other].first == kNoNode) continue;
        a1 = s1; a2 = s2;
        b1 = msg.m[other].first; b2 = msg.m[other].second;
      } else {
        if (msg.m[other].first == kNoNode) continue;
        a1 = msg.m[other].first; a2 = msg.m[other].second;
        b1 = s1; b2 = s2;
      }
      if (!gr.HasTriple(a1, ct.pred, b1)) return false;
      if (!gr.HasTriple(a2, ct.pred, b2)) return false;
    }
    return true;
  }

  /// Processes the arrival of `msg` at product node `vertex`. Returns true
  /// iff the origin pair was identified somewhere in this call's subtree
  /// (meaningful for the sequential/backtracking mode).
  bool Process(VcEngine::Context& vctx, uint32_t vertex, VcMessage&& msg) {
    // Early cancellation (§5.1 (2)).
    if (flags[msg.origin].load(std::memory_order_acquire) != 0) return true;
    const CompiledKey& ck = ctx.compiled_keys()[msg.key];
    const auto& tour = ck.tour;
    auto [s1, s2] = pg.pair(vertex);

    if (msg.pos > 0) {
      // This hop instantiates (or revisits) tour[pos-1].to_node.
      int q = tour[msg.pos - 1].to_node;
      if (msg.m[q].first == kNoNode) {
        if (!Feasible(ck, msg, q, s1, s2)) return false;  // drop / backtrack
        msg.m[q] = {s1, s2};
      }
      // Revisit of an instantiated node: equality holds by construction
      // (direct sends target the exact product node of m[q]).
    }

    // Verification (§5.1 (3)): the walk is complete and ended at x.
    if (msg.pos == tour.size()) {
      MarkIdentified(vctx, msg);
      return true;
    }

    // Guided propagation (§5.1 (5)) along the next tour step.
    const TourStep& next = tour[msg.pos];
    int target = next.to_node;
    Symbol pred = ck.cp.triples[next.triple].pred;
    if (msg.m[target].first != kNoNode) {
      // Already instantiated: send the message straight back to it.
      uint32_t dst = pg.Find(msg.m[target].first, msg.m[target].second);
      if (dst == kNoPNode) return false;
      msg.pos += 1;
      // A deterministic single continuation: process inline to avoid a
      // queue round-trip (identical semantics, fewer messages).
      inline_hops.fetch_add(1, std::memory_order_relaxed);
      return Process(vctx, dst, std::move(msg));
    }

    // Fork a copy per eligible neighbor of this vertex.
    const auto& edges = next.forward ? pg.Out(vertex) : pg.In(vertex);
    std::vector<uint32_t> targets;
    targets.reserve(edges.size());
    for (const auto& e : edges) {
      if (e.pred == pred) targets.push_back(e.dst);
    }
    if (targets.empty()) return false;

    if (opts().prioritized && targets.size() > 1 &&
        msg.pos + 1 < tour.size()) {
      // §5.2: highest potential first — the count of the candidate's edges
      // matching the *next* hop, collected when Gp was built.
      const TourStep& after = tour[msg.pos + 1];
      Symbol next_pred = ck.cp.triples[after.triple].pred;
      std::stable_sort(targets.begin(), targets.end(),
                       [&](uint32_t a, uint32_t b) {
                         uint32_t pa = after.forward ? pg.OutCount(a, next_pred)
                                                     : pg.InCount(a, next_pred);
                         uint32_t pb = after.forward ? pg.OutCount(b, next_pred)
                                                     : pg.InCount(b, next_pred);
                         return pa > pb;
                       });
    }

    const int k = opts().bounded_messages;
    std::atomic<int>* kq =
        k > 0 ? &budget[BudgetSlot(msg.origin, msg.key)] : nullptr;
    bool identified = false;
    for (size_t i = 0; i < targets.size(); ++i) {
      bool last = (i + 1 == targets.size());
      VcMessage copy;
      if (last) {
        copy = std::move(msg);  // reuse the original for the final branch
      } else {
        copy = msg;
      }
      copy.pos += 1;
      bool fork = true;
      if (kq != nullptr) {
        // Spend budget for every copy beyond the one we already hold.
        if (!last) {
          int used = kq->fetch_add(1, std::memory_order_relaxed);
          if (used >= k) {
            kq->fetch_sub(1, std::memory_order_relaxed);
            fork = false;
          }
        } else {
          fork = false;  // continue in place: sequential + backtracking
        }
      }
      if (fork) {
        vctx.Send(targets[i], std::move(copy));
      } else {
        inline_hops.fetch_add(1, std::memory_order_relaxed);
        if (Process(vctx, targets[i], std::move(copy))) {
          identified = true;
          break;  // early termination; remaining branches unnecessary
        }
        // else: backtrack and try the next instantiation (§5.2 (3)).
      }
    }
    return identified;
  }
};

}  // namespace

MatchResult RunEmVertexCentric(const Graph& g, const KeySet& keys,
                               const EmOptions& options) {
  Timer prep;
  EmContext ctx(g, keys, options);
  MatchResult result = RunEmVertexCentric(ctx);
  result.stats.prep_seconds = prep.Seconds() - result.stats.run_seconds;
  return result;
}

MatchResult RunEmVertexCentric(const EmContext& ctx) {
  ProductGraph pg = BuildProductGraph(ctx);
  auto r = RunEmVertexCentric(ctx, pg, ctx.options(), nullptr);
  // Without a sink there is no cancellation source; only a time budget
  // (EmOptions::time_budget_seconds) can fail the run, and it surfaces
  // here as an empty result — budgeted callers use the StatusOr overload.
  return r.ok() ? *std::move(r) : MatchResult{};
}

StatusOr<MatchResult> RunEmVertexCentric(const EmContext& ctx,
                                         const ProductGraph& pg,
                                         const EmOptions& opts,
                                         MatchSink* sink,
                                         const RematchSeed* seed) {
  const Graph& g = ctx.graph();
  const auto& candidates = ctx.candidates();

  MatchResult result;
  result.stats.candidates_initial = ctx.candidates_initial();
  result.stats.candidates_blocked = ctx.candidates_blocked();
  result.stats.candidates = candidates.size();
  result.stats.neighbor_nodes = ctx.neighbor_nodes();
  result.stats.neighbor_nodes_reduced = ctx.neighbor_nodes_reduced();
  result.stats.product_graph_nodes = pg.NumNodes();
  result.stats.product_graph_edges = pg.NumEdges();

  Timer run;
  ConcurrentEquivalence eq(g.NumNodes());
  internal::MergeLog merge_log(internal::LogShardCount(opts));
  internal::DerivationLog deriv_log(internal::LogShardCount(opts));
  std::vector<std::atomic<uint8_t>> flags(candidates.size());
  for (auto& f : flags) f.store(0, std::memory_order_relaxed);
  int max_slots = 1;
  for (const Candidate& c : candidates) {
    max_slots = std::max(max_slots, static_cast<int>(c.keys->size()));
  }
  std::vector<std::atomic<int>> budget(
      opts.bounded_messages > 0 ? candidates.size() * max_slots : 1);
  for (auto& b : budget) b.store(0, std::memory_order_relaxed);

  VcRun runner{ctx,
               pg,
               opts,
               eq,
               sink != nullptr ? &merge_log : nullptr,
               opts.record_provenance ? &deriv_log : nullptr,
               flags,
               budget,
               max_slots};

  VcEngine engine(opts.processors);
  VcEngine::Handler handler = [&](VcEngine::Context& vctx, uint32_t vertex,
                                  VcMessage&& msg) {
    runner.Process(vctx, vertex, std::move(msg));
  };

  // Seeds: every candidate starts its own checks (value-based and
  // recursive keys alike; recursive keys may fire immediately through
  // identity pairs in Eq0). A seeded rematch instead starts Eq from the
  // previous fixpoint and messages only the dirty candidates; seed-equal
  // candidates and ghosts are marked done up front WITHOUT notifying
  // dependents (their consequences were drawn in the previous run), so
  // the quiescence sweep cascades only on new merges.
  uint64_t messages = 0;
  internal::PairStreamer streamer(sink, g.NumNodes());
  bool progressed = true;
  std::vector<uint8_t> ghost_done(ctx.ghosts().size(), 0);
  std::vector<uint32_t> to_seed;
  if (seed != nullptr) {
    for (const auto& [a, b] : seed->prev_pairs) eq.Union(a, b);
    streamer.SeedClasses(seed->prev_pairs);
    for (uint32_t i = 0; i < candidates.size(); ++i) {
      if (eq.Same(candidates[i].e1, candidates[i].e2)) {
        flags[i].store(1, std::memory_order_relaxed);
      }
    }
    for (uint32_t gi = 0; gi < ctx.ghosts().size(); ++gi) {
      const auto& ghost = ctx.ghosts()[gi];
      if (eq.Same(ghost.e1, ghost.e2)) ghost_done[gi] = 1;
    }
    to_seed.assign(seed->active.begin(), seed->active.end());
  } else {
    to_seed.resize(candidates.size());
    for (uint32_t i = 0; i < candidates.size(); ++i) to_seed[i] = i;
  }
  while (progressed && !to_seed.empty()) {
    GKEYS_RETURN_IF_ERROR(CheckTimeBudget(run.Seconds(),
                                          opts.time_budget_seconds,
                                          result.stats.rounds));
    ++result.stats.rounds;  // engine runs (1 + quiescence sweeps)
    std::vector<std::pair<uint32_t, VcMessage>> seeds;
    {
      // Materialize seed messages through a throwaway engine context is
      // not possible; instead seed directly inside a bootstrap message
      // handled by the engine: simplest is to enqueue each candidate's
      // initial messages here.
      for (uint32_t idx : to_seed) {
        const Candidate& c = candidates[idx];
        uint32_t vertex = pg.CandidateNode(idx);
        if (vertex == kNoPNode) continue;
        if (eq.Same(c.e1, c.e2)) continue;
        for (int ki : *c.keys) {
          const CompiledKey& ck = ctx.compiled_keys()[ki];
          if (!ck.cp.matchable) continue;
          if (opts.bounded_messages > 0) {
            budget[runner.BudgetSlot(idx, ki)].store(
                1, std::memory_order_relaxed);
          }
          VcMessage msg;
          msg.key = ki;
          msg.origin = idx;
          msg.pos = 0;
          msg.m.assign(ck.cp.nodes.size(), {kNoNode, kNoNode});
          msg.m[ck.cp.designated] = {c.e1, c.e2};
          seeds.emplace_back(vertex, std::move(msg));
        }
      }
    }
    engine.Run(seeds, handler);
    messages = engine.messages_sent();

    if (sink != nullptr) {
      result.stats.confirmed = streamer.EmitMerges(merge_log.Drain());
      result.stats.messages = messages;
      result.stats.iso_checks = runner.inline_hops.load();
      sink->OnProgress(result.stats);
      if (sink->cancelled()) {
        return Status::Cancelled("entity matching cancelled after round " +
                                 std::to_string(result.stats.rounds));
      }
    }

    // Quiescence sweep: candidates that became equal purely transitively
    // never ran MarkIdentified; notify their dependents now and re-run.
    to_seed.clear();
    progressed = false;
    for (uint32_t i = 0; i < candidates.size(); ++i) {
      if (flags[i].load(std::memory_order_acquire) != 0) continue;
      const Candidate& c = candidates[i];
      if (!eq.Same(c.e1, c.e2)) continue;
      flags[i].store(1, std::memory_order_release);
      for (uint32_t dep : ctx.dependents()[i]) {
        if (flags[dep].load(std::memory_order_acquire) == 0) {
          to_seed.push_back(dep);
          progressed = true;
        }
      }
    }
    // Ghost pairs (dropped from L by pairing, but depended upon) that
    // became equal transitively wake their dependents too.
    for (uint32_t gi = 0; gi < ghost_done.size(); ++gi) {
      if (ghost_done[gi]) continue;
      const auto& ghost = ctx.ghosts()[gi];
      if (!eq.Same(ghost.e1, ghost.e2)) continue;
      ghost_done[gi] = 1;
      for (uint32_t dep : ghost.dependents) {
        if (flags[dep].load(std::memory_order_acquire) == 0) {
          to_seed.push_back(dep);
          progressed = true;
        }
      }
    }
    std::sort(to_seed.begin(), to_seed.end());
    to_seed.erase(std::unique(to_seed.begin(), to_seed.end()),
                  to_seed.end());
  }

  result.stats.run_seconds = run.Seconds();
  result.stats.messages = messages;
  result.stats.iso_checks = runner.inline_hops.load();
  internal::AssembleDerivations(result, seed, opts.record_provenance,
                                deriv_log.Take());
  result.pairs = eq.Snapshot().IdentifiedPairs();
  result.stats.confirmed = result.pairs.size();
  GKEYS_RETURN_IF_ERROR(streamer.Finish(result.pairs));
  return result;
}

}  // namespace gkeys
