#include "core/em_common.h"

#include <algorithm>
#include <tuple>

#include "common/thread_pool.h"

#include "isomorph/pairing.h"
#include "isomorph/vf2.h"

namespace gkeys {

std::string AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kNaiveChase: return "NaiveChase";
    case Algorithm::kEmMr: return "EMMR";
    case Algorithm::kEmVf2Mr: return "EMVF2MR";
    case Algorithm::kEmOptMr: return "EMOptMR";
    case Algorithm::kEmVc: return "EMVC";
    case Algorithm::kEmOptVc: return "EMOptVC";
  }
  return "?";
}

EmOptions EmOptions::For(Algorithm a, int p) {
  EmOptions o;
  o.processors = p;
  switch (a) {
    case Algorithm::kNaiveChase:
      // The correctness oracle enumerates exhaustively; blocking stays off
      // so oracle comparisons exercise the blocked/unblocked equivalence.
      o.use_blocking = false;
      break;
    case Algorithm::kEmMr:
      break;
    case Algorithm::kEmVf2Mr:
      o.use_vf2 = true;
      break;
    case Algorithm::kEmOptMr:
      o.use_pairing = true;
      o.use_dependency = true;
      o.use_incremental = true;
      break;
    case Algorithm::kEmVc:
      // The product graph is built from pairing (paper §5.1), but plain
      // EMVC uses neither bounded messages nor prioritization.
      o.use_pairing = true;
      break;
    case Algorithm::kEmOptVc:
      o.use_pairing = true;
      o.bounded_messages = 4;  // the paper's k = 4
      o.prioritized = true;
      break;
  }
  return o;
}

EmContext::EmContext(const Graph& g, const KeySet& keys,
                     const EmOptions& opts)
    : g_(&g), keys_(&keys), opts_(opts) {
  compiled_.reserve(keys.count());
  for (size_t i = 0; i < keys.count(); ++i) {
    const Key& k = keys.key(i);
    CompiledKey ck;
    ck.key = &k;
    ck.cp = Compile(k.pattern(), g);
    ck.tour = ComputeTour(ck.cp);
    Symbol t = ck.cp.nodes[ck.cp.designated].type;
    if (t != kNoSymbol) {
      keys_by_type_[t].push_back(static_cast<int>(i));
      int& r = radius_by_type_[t];
      r = std::max(r, k.radius());
    }
    compiled_.push_back(std::move(ck));
  }
  BuildCandidates();
  BuildDependencyIndex();
}

const std::vector<int>& EmContext::KeysForType(Symbol t) const {
  static const std::vector<int> kEmpty;
  auto it = keys_by_type_.find(t);
  return it == keys_by_type_.end() ? kEmpty : it->second;
}

namespace {

/// One hop of a pattern path from the designated variable toward a value
/// terminal: follow `pred` forward (Out) or backward (In) into pattern
/// node `to_node`.
struct SigStep {
  Symbol pred;
  bool forward;
  int to_node;
};

/// A signature source of one key: a pattern path from x to a value
/// variable (constant == kNoNode) or to a constant node. Any match of
/// the key maps the terminal to ONE value node reached from both
/// entities along this exact path, so "the entities share a reachable
/// terminal value" is a necessary condition for identification — and it
/// is Eq-independent (reachability never consults entity identity).
struct SigSource {
  std::vector<SigStep> path;
  NodeId constant = kNoNode;
};

/// All signature sources of `cp`: BFS over the pattern graph from the
/// designated variable; every value variable / graph-resolved constant
/// first reached contributes its (shortest) path.
std::vector<SigSource> FindSigSources(const CompiledPattern& cp) {
  const int n = static_cast<int>(cp.nodes.size());
  std::vector<int> parent(n, -1);
  std::vector<SigStep> parent_step(n);
  std::vector<int> order;
  std::vector<uint8_t> seen(n, 0);
  seen[cp.designated] = 1;
  order.push_back(cp.designated);
  for (size_t head = 0; head < order.size(); ++head) {
    int v = order[head];
    for (int t : cp.incident[v]) {
      const CompiledTriple& ct = cp.triples[t];
      int other = ct.subject == v ? ct.object : ct.subject;
      bool forward = ct.subject == v;
      if (other == v || seen[other]) continue;
      seen[other] = 1;
      parent[other] = v;
      parent_step[other] = SigStep{ct.pred, forward, other};
      order.push_back(other);
    }
  }
  std::vector<SigSource> sources;
  for (int v : order) {
    if (v == cp.designated) continue;
    const CompiledNode& pn = cp.nodes[v];
    bool is_value = pn.kind == VarKind::kValueVar;
    bool is_const =
        pn.kind == VarKind::kConstant && pn.constant_node != kNoNode;
    if (!is_value && !is_const) continue;
    SigSource src;
    src.constant = is_const ? pn.constant_node : kNoNode;
    for (int u = v; parent[u] != -1; u = parent[u]) {
      src.path.push_back(parent_step[u]);
    }
    std::reverse(src.path.begin(), src.path.end());
    sources.push_back(std::move(src));
  }
  return sources;
}

}  // namespace

bool EmContext::EnumerateBlockedPairs(
    const std::vector<int>& key_ids, std::span<const NodeId> entities,
    std::vector<std::pair<NodeId, NodeId>>* out) const {
  const Graph& g = *g_;

  // Signature sources per matchable key. A key that reaches no value
  // variable or constant from x pins nothing Eq-independent and makes
  // the whole type unblockable (full enumeration).
  std::vector<std::vector<SigSource>> per_key;
  for (int ki : key_ids) {
    const CompiledPattern& cp = compiled_[ki].cp;
    if (!cp.matchable) continue;  // can never fire: imposes nothing
    std::vector<SigSource> sources = FindSigSources(cp);
    if (sources.empty()) return false;  // purely variable-only key
    per_key.push_back(std::move(sources));
  }
  // Every key is unmatchable: no pair of this type is identifiable.
  if (per_key.empty()) return true;

  // The terminal value nodes entity `e` can reach along `src.path`
  // (type-checked intermediates, direction-aware), ascending.
  std::vector<NodeId> frontier, next;
  auto reachable_values = [&](NodeId e, const SigSource& src,
                              const CompiledPattern& cp) {
    frontier.assign(1, e);
    for (const SigStep& step : src.path) {
      next.clear();
      const CompiledNode& pn = cp.nodes[step.to_node];
      for (NodeId n : frontier) {
        for (const Edge& edge : step.forward ? g.Out(n) : g.In(n)) {
          if (edge.pred != step.pred) continue;
          NodeId dst = edge.dst;
          switch (pn.kind) {
            case VarKind::kEntityVar:
            case VarKind::kWildcard:
              if (!g.IsEntity(dst) || g.entity_type(dst) != pn.type) {
                continue;
              }
              break;
            case VarKind::kValueVar:
              if (!g.IsValue(dst)) continue;
              break;
            case VarKind::kConstant:
              if (dst != pn.constant_node) continue;
              break;
            case VarKind::kDesignated:
              break;  // unreachable: BFS paths never revisit x
          }
          next.push_back(dst);
        }
      }
      std::sort(next.begin(), next.end());
      next.erase(std::unique(next.begin(), next.end()), next.end());
      frontier.swap(next);
    }
    return frontier;  // copy out
  };

  // Per key, the most selective source (fewest pairs to enumerate) is a
  // sufficient necessary condition on its own; unioning one source per
  // key over all keys covers every directly identifiable pair.
  auto pair_count = [](size_t n) { return n * (n - 1) / 2; };
  std::unordered_set<uint64_t> seen;
  auto emit_bucket = [&](const std::vector<NodeId>& members) {
    // EntitiesOfType yields ascending NodeIds, preserved per bucket, so
    // members[i] < members[j] for i < j.
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        uint64_t packed = PackPair(members[i], members[j]);
        if (seen.insert(packed).second) {
          out->emplace_back(members[i], members[j]);
        }
      }
    }
  };
  size_t key_index = 0;
  std::unordered_map<NodeId, size_t> counts;
  for (int ki : key_ids) {
    const CompiledPattern& cp = compiled_[ki].cp;
    if (!cp.matchable) continue;
    const std::vector<SigSource>& sources = per_key[key_index++];
    // Pass 1 (only when there is a choice): pick the most selective
    // source from per-value counts alone (a constant terminal needs no
    // extra filter — reachable_values already pins the last hop to the
    // constant node).
    size_t best = 0;
    size_t best_pairs = SIZE_MAX;
    for (size_t s = 0; sources.size() > 1 && s < sources.size(); ++s) {
      counts.clear();
      for (NodeId e : entities) {
        for (NodeId v : reachable_values(e, sources[s], cp)) ++counts[v];
      }
      size_t pairs = 0;
      for (const auto& [value, count] : counts) {
        pairs += pair_count(count);
      }
      if (pairs < best_pairs) {
        best_pairs = pairs;
        best = s;
      }
    }
    // Pass 2: materialize only the winning source's buckets.
    std::unordered_map<NodeId, std::vector<NodeId>> buckets;
    for (NodeId e : entities) {
      for (NodeId v : reachable_values(e, sources[best], cp)) {
        buckets[v].push_back(e);
      }
    }
    for (const auto& [value, members] : buckets) {
      emit_bucket(members);
    }
  }
  return true;
}

void EmContext::BuildCandidates() {
  const Graph& g = *g_;
  const int p = std::max(1, opts_.processors);

  // Phase A: d-neighbors of every keyed entity, in parallel — the paper's
  // DriverMR builds the Gd's "also in MapReduce" (§4.1). Stored in dense
  // slots (one per keyed entity) so lookups are an array index and the
  // element addresses candidates point at stay stable.
  std::vector<std::pair<NodeId, int>> todo;  // (entity, radius d)
  for (const auto& [type, key_ids] : keys_by_type_) {
    int d = radius_by_type_.at(type);
    for (NodeId e : g.EntitiesOfType(type)) todo.emplace_back(e, d);
  }
  dneighbor_slot_.assign(g.NumNodes(), kNoSlot);
  dneighbor_sets_.resize(todo.size());
  ParallelFor(p, todo.size(), [&](size_t i) {
    dneighbor_sets_[i] = DNeighbor(g, todo[i].first, todo[i].second);
  });
  for (size_t i = 0; i < todo.size(); ++i) {
    neighbor_nodes_ += dneighbor_sets_[i].size();
    dneighbor_slot_[todo[i].first] = static_cast<uint32_t>(i);
  }

  // Phase B: enumerate L. With signature blocking, only same-type pairs
  // sharing a required (predicate, value) signature are materialized —
  // the O(n²)-pair wall of the naive enumeration never forms. Types whose
  // keys pin nothing on x directly fall back to the full double loop.
  struct RawPair {
    NodeId e1, e2;
    const std::vector<int>* keys;
    bool recursive, value_based;
  };
  std::vector<RawPair> raw;
  std::vector<std::pair<NodeId, NodeId>> block_scratch;
  for (const auto& [type, key_ids] : keys_by_type_) {
    auto entities = g.EntitiesOfType(type);
    bool recursive = false, value_based = false;
    for (int ki : key_ids) {
      if (compiled_[ki].key->recursive()) {
        recursive = true;
      } else {
        value_based = true;
      }
    }
    const size_t all_pairs = entities.size() * (entities.size() - 1) / 2;
    block_scratch.clear();
    if (opts_.use_blocking &&
        EnumerateBlockedPairs(key_ids, entities, &block_scratch)) {
      candidates_blocked_ += all_pairs - block_scratch.size();
      for (const auto& [a, b] : block_scratch) {
        raw.push_back(RawPair{a, b, &key_ids, recursive, value_based});
      }
    } else {
      for (size_t i = 0; i < entities.size(); ++i) {
        for (size_t j = i + 1; j < entities.size(); ++j) {
          raw.push_back(RawPair{entities[i], entities[j], &key_ids,
                                recursive, value_based});
        }
      }
    }
  }
  candidates_initial_ = raw.size();
  // Deterministic order regardless of hash-map iteration.
  std::sort(raw.begin(), raw.end(), [](const RawPair& a, const RawPair& b) {
    return std::tie(a.e1, a.e2) < std::tie(b.e1, b.e2);
  });

  // Phase C: optional pairing filter + neighbor reduction, in parallel.
  struct Reduction {
    bool keep = true;
    NodeSet r1, r2;
  };
  std::vector<Reduction> reductions(opts_.use_pairing ? raw.size() : 0);
  if (opts_.use_pairing) {
    // Sharded so each worker owns one PairingScratch: the pairing calls
    // reuse domain/bitset/worklist buffers across the whole shard instead
    // of reallocating per candidate pair.
    std::vector<PairingScratch> scratches(p);
    ParallelShards(p, raw.size(), [&](int shard, size_t begin, size_t end) {
      PairingScratch& scratch = scratches[shard];
      for (size_t i = begin; i < end; ++i) {
        const RawPair& rp = raw[i];
        const NodeSet& n1 = DNbr(rp.e1);
        const NodeSet& n2 = DNbr(rp.e2);
        Reduction& red = reductions[i];
        red.keep = false;
        for (int ki : *rp.keys) {
          PairingResult pr =
              ComputeMaxPairing(g, compiled_[ki].cp, rp.e1, rp.e2, n1, n2,
                                /*collect_pairs=*/false, &scratch);
          if (pr.paired) {
            red.keep = true;  // §4.2: keep only pairable pairs (Prop. 9)
            red.r1.UnionWith(pr.reduced1);
            red.r2.UnionWith(pr.reduced2);
          }
        }
      }
    });
  }

  // Assembly (sequential: the pools need stable addresses). Pairs the
  // pairing filter rejects just disappear from L — ghost tracking
  // rediscovers the ones that matter from the d-neighbor overlaps.
  candidates_.reserve(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    const RawPair& rp = raw[i];
    Candidate c;
    c.e1 = rp.e1;
    c.e2 = rp.e2;
    c.keys = rp.keys;
    c.has_recursive_key = rp.recursive;
    c.has_value_based_key = rp.value_based;
    if (opts_.use_pairing) {
      Reduction& red = reductions[i];
      if (!red.keep) continue;
      neighbor_nodes_reduced_ += red.r1.size() + red.r2.size();
      reduced_pool_.push_back(std::move(red.r1));
      c.nbr1 = &reduced_pool_.back();
      reduced_pool_.push_back(std::move(red.r2));
      c.nbr2 = &reduced_pool_.back();
    } else {
      c.nbr1 = &DNbr(rp.e1);
      c.nbr2 = &DNbr(rp.e2);
    }
    candidates_.push_back(std::move(c));
  }
}

void EmContext::BuildDependencyIndex() {
  const Graph& g = *g_;
  const int p = std::max(1, opts_.processors);
  dependents_.assign(candidates_.size(), {});
  const uint32_t num_candidates = static_cast<uint32_t>(candidates_.size());
  // entity -> candidate indices it participates in, plus a membership
  // test for "is (a, b) in L". Same-type pairs NOT in L — excluded by
  // blocking or pairing — cannot be identified directly but can become
  // equal transitively; they are discovered lazily below instead of being
  // materialized (there are O(n²) of them).
  std::unordered_map<NodeId, std::vector<uint32_t>> by_entity;
  std::unordered_set<uint64_t> in_l;
  in_l.reserve(candidates_.size() * 2);
  for (uint32_t i = 0; i < num_candidates; ++i) {
    by_entity[candidates_[i].e1].push_back(i);
    by_entity[candidates_[i].e2].push_back(i);
    in_l.insert(PackPair(candidates_[i].e1, candidates_[i].e2));
  }
  // Parallel phase: for each candidate j, the pairs it DEPENDS ON — pairs
  // lying inside j's neighbors (one entity per side, either orientation)
  // whose type matches an entity variable of a recursive key on j (§4.2).
  // Candidate pairs land in depends_on; excluded pairs in ghost_depends.
  std::vector<std::vector<uint32_t>> depends_on(candidates_.size());
  std::vector<std::vector<uint64_t>> ghost_depends(candidates_.size());
  ParallelFor(p, candidates_.size(), [&](size_t j) {
    const Candidate& cj = candidates_[j];
    if (!cj.has_recursive_key) return;
    std::vector<Symbol> dep_types;
    for (int ki : *cj.keys) {
      const CompiledPattern& cp = compiled_[ki].cp;
      for (const CompiledNode& n : cp.nodes) {
        if (n.kind == VarKind::kEntityVar) dep_types.push_back(n.type);
      }
    }
    if (dep_types.empty()) return;
    std::sort(dep_types.begin(), dep_types.end());
    dep_types.erase(std::unique(dep_types.begin(), dep_types.end()),
                    dep_types.end());
    auto scan_side = [&](const NodeSet& near, const NodeSet& far) {
      // Far-side entities per dependency type, collected once. Only keyed
      // types matter: every Eq merge starts from a same-type candidate of
      // a keyed type, so pairs of unkeyed types can never become equal.
      std::unordered_map<Symbol, std::vector<NodeId>> far_by_type;
      for (NodeId m : far) {
        if (!g.IsEntity(m)) continue;
        Symbol t = g.entity_type(m);
        if (std::binary_search(dep_types.begin(), dep_types.end(), t) &&
            keys_by_type_.find(t) != keys_by_type_.end()) {
          far_by_type[t].push_back(m);
        }
      }
      if (far_by_type.empty()) return;
      for (NodeId n : near) {
        if (!g.IsEntity(n)) continue;
        Symbol t = g.entity_type(n);
        if (!std::binary_search(dep_types.begin(), dep_types.end(), t)) {
          continue;
        }
        auto it = by_entity.find(n);
        if (it != by_entity.end()) {
          for (uint32_t i : it->second) {
            if (i == static_cast<uint32_t>(j)) continue;
            const Candidate& ci = candidates_[i];
            NodeId other = ci.e1 == n ? ci.e2 : ci.e1;
            if (far.Contains(other)) depends_on[j].push_back(i);
          }
        }
        auto ft = far_by_type.find(t);
        if (ft == far_by_type.end()) continue;
        for (NodeId m : ft->second) {
          if (m == n) continue;
          uint64_t packed = PackPair(std::min(n, m), std::max(n, m));
          if (in_l.count(packed) > 0) continue;  // handled above
          ghost_depends[j].push_back(packed);
        }
      }
    };
    scan_side(*cj.nbr1, *cj.nbr2);
    scan_side(*cj.nbr2, *cj.nbr1);
    std::sort(depends_on[j].begin(), depends_on[j].end());
    depends_on[j].erase(
        std::unique(depends_on[j].begin(), depends_on[j].end()),
        depends_on[j].end());
    std::sort(ghost_depends[j].begin(), ghost_depends[j].end());
    ghost_depends[j].erase(
        std::unique(ghost_depends[j].begin(), ghost_depends[j].end()),
        ghost_depends[j].end());
  });
  // Sequential inversion: dependents_[i] = { j : j depends on i }.
  // Excluded pairs with dependents become ghosts.
  std::unordered_map<uint64_t, std::vector<uint32_t>> ghost_deps;
  for (uint32_t j = 0; j < depends_on.size(); ++j) {
    for (uint32_t i : depends_on[j]) dependents_[i].push_back(j);
    for (uint64_t packed : ghost_depends[j]) {
      ghost_deps[packed].push_back(j);
    }
  }
  ghosts_.reserve(ghost_deps.size());
  for (auto& [packed, deps] : ghost_deps) {
    std::sort(deps.begin(), deps.end());
    ghosts_.push_back(GhostPair{static_cast<NodeId>(packed >> 32),
                                static_cast<NodeId>(packed & 0xffffffffu),
                                std::move(deps)});
  }
  std::sort(ghosts_.begin(), ghosts_.end(),
            [](const GhostPair& a, const GhostPair& b) {
              return std::tie(a.e1, a.e2) < std::tie(b.e1, b.e2);
            });
}

size_t EmContext::MemoryBytes() const {
  size_t bytes = candidates_.capacity() * sizeof(Candidate) +
                 dneighbor_slot_.capacity() * sizeof(uint32_t) +
                 compiled_.capacity() * sizeof(CompiledKey);
  for (const NodeSet& s : dneighbor_sets_) bytes += s.MemoryBytes();
  for (const NodeSet& s : reduced_pool_) bytes += s.MemoryBytes();
  for (const auto& d : dependents_) bytes += d.capacity() * sizeof(uint32_t);
  for (const auto& gh : ghosts_) {
    bytes += sizeof(GhostPair) + gh.dependents.capacity() * sizeof(uint32_t);
  }
  return bytes;
}

bool EmContext::Identifies(const Candidate& c, const EqView& eq,
                           SearchStats* stats, bool unrestricted,
                           bool use_vf2) const {
  const NodeSet* n1 = unrestricted ? nullptr : c.nbr1;
  const NodeSet* n2 = unrestricted ? nullptr : c.nbr2;
  for (int ki : *c.keys) {
    const CompiledPattern& cp = compiled_[ki].cp;
    bool found =
        use_vf2
            ? IdentifiesByEnumeration(*g_, cp, c.e1, c.e2, eq, n1, n2, stats)
            : KeyIdentifies(*g_, cp, c.e1, c.e2, eq, n1, n2, stats);
    if (found) return true;  // early termination across keys
  }
  return false;
}

void internal::PairStreamer::EmitPair(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  if (!emitted_.insert(PackPair(a, b)).second) return;
  sink_->OnPair(a, b);
}

size_t internal::PairStreamer::EmitMerges(
    std::span<const std::pair<NodeId, NodeId>> merges) {
  if (sink_ == nullptr) return 0;
  for (const auto& [a, b] : merges) {
    NodeId ra = mirror_.Find(a);
    NodeId rb = mirror_.Find(b);
    if (ra == rb) continue;
    auto take = [&](NodeId root) {
      auto it = members_.find(root);
      if (it == members_.end()) return std::vector<NodeId>{root};
      std::vector<NodeId> m = std::move(it->second);
      members_.erase(it);
      return m;
    };
    std::vector<NodeId> ca = take(ra);
    std::vector<NodeId> cb = take(rb);
    // The pairs this merge newly implies: exactly the cross product of
    // the two classes it joins.
    for (NodeId x : ca) {
      for (NodeId y : cb) EmitPair(x, y);
    }
    mirror_.Union(ra, rb);
    ca.insert(ca.end(), cb.begin(), cb.end());
    members_[mirror_.Find(ra)] = std::move(ca);
  }
  return emitted_.size();
}

Status internal::PairStreamer::Finish(
    const std::vector<std::pair<NodeId, NodeId>>& final_pairs) {
  if (sink_ == nullptr) return Status::OK();
  for (const auto& [a, b] : final_pairs) {
    if (!emitted_.insert(PackPair(a, b)).second) continue;
    sink_->OnPair(a, b);
  }
  if (emitted_.size() != final_pairs.size()) {
    return Status::Internal("streamed pair count diverged from result");
  }
  return Status::OK();
}

}  // namespace gkeys
