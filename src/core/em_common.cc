#include "core/em_common.h"

#include <algorithm>
#include <tuple>

#include "common/thread_pool.h"

#include "isomorph/pairing.h"
#include "isomorph/vf2.h"

namespace gkeys {

std::string AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kNaiveChase: return "NaiveChase";
    case Algorithm::kEmMr: return "EMMR";
    case Algorithm::kEmVf2Mr: return "EMVF2MR";
    case Algorithm::kEmOptMr: return "EMOptMR";
    case Algorithm::kEmVc: return "EMVC";
    case Algorithm::kEmOptVc: return "EMOptVC";
  }
  return "?";
}

EmOptions EmOptions::For(Algorithm a, int p) {
  EmOptions o;
  o.processors = p;
  switch (a) {
    case Algorithm::kNaiveChase:
    case Algorithm::kEmMr:
      break;
    case Algorithm::kEmVf2Mr:
      o.use_vf2 = true;
      break;
    case Algorithm::kEmOptMr:
      o.use_pairing = true;
      o.use_dependency = true;
      o.use_incremental = true;
      break;
    case Algorithm::kEmVc:
      // The product graph is built from pairing (paper §5.1), but plain
      // EMVC uses neither bounded messages nor prioritization.
      o.use_pairing = true;
      break;
    case Algorithm::kEmOptVc:
      o.use_pairing = true;
      o.bounded_messages = 4;  // the paper's k = 4
      o.prioritized = true;
      break;
  }
  return o;
}

EmContext::EmContext(const Graph& g, const KeySet& keys,
                     const EmOptions& opts)
    : g_(&g), keys_(&keys), opts_(opts) {
  compiled_.reserve(keys.count());
  for (size_t i = 0; i < keys.count(); ++i) {
    const Key& k = keys.key(i);
    CompiledKey ck;
    ck.key = &k;
    ck.cp = Compile(k.pattern(), g);
    ck.tour = ComputeTour(ck.cp);
    Symbol t = ck.cp.nodes[ck.cp.designated].type;
    if (t != kNoSymbol) {
      keys_by_type_[t].push_back(static_cast<int>(i));
      int& r = radius_by_type_[t];
      r = std::max(r, k.radius());
    }
    compiled_.push_back(std::move(ck));
  }
  BuildCandidates();
  BuildDependencyIndex();
}

const std::vector<int>& EmContext::KeysForType(Symbol t) const {
  static const std::vector<int> kEmpty;
  auto it = keys_by_type_.find(t);
  return it == keys_by_type_.end() ? kEmpty : it->second;
}

void EmContext::BuildCandidates() {
  const Graph& g = *g_;
  const int p = std::max(1, opts_.processors);

  // Phase A: d-neighbors of every keyed entity, in parallel — the paper's
  // DriverMR builds the Gd's "also in MapReduce" (§4.1).
  std::vector<std::pair<NodeId, int>> todo;  // (entity, radius d)
  for (const auto& [type, key_ids] : keys_by_type_) {
    int d = radius_by_type_.at(type);
    for (NodeId e : g.EntitiesOfType(type)) todo.emplace_back(e, d);
  }
  {
    std::vector<NodeSet> sets(todo.size());
    ParallelFor(p, todo.size(), [&](size_t i) {
      sets[i] = DNeighbor(g, todo[i].first, todo[i].second);
    });
    for (size_t i = 0; i < todo.size(); ++i) {
      neighbor_nodes_ += sets[i].size();
      dneighbor_cache_.emplace(todo[i].first, std::move(sets[i]));
    }
  }

  // Phase B: enumerate L (all same-type pairs of keyed entities).
  struct RawPair {
    NodeId e1, e2;
    const std::vector<int>* keys;
    bool recursive, value_based;
  };
  std::vector<RawPair> raw;
  for (const auto& [type, key_ids] : keys_by_type_) {
    auto entities = g.EntitiesOfType(type);
    bool recursive = false, value_based = false;
    for (int ki : key_ids) {
      if (compiled_[ki].key->recursive()) {
        recursive = true;
      } else {
        value_based = true;
      }
    }
    for (size_t i = 0; i < entities.size(); ++i) {
      for (size_t j = i + 1; j < entities.size(); ++j) {
        raw.push_back(RawPair{entities[i], entities[j], &key_ids,
                              recursive, value_based});
      }
    }
  }
  candidates_initial_ = raw.size();
  // Deterministic order regardless of hash-map iteration.
  std::sort(raw.begin(), raw.end(), [](const RawPair& a, const RawPair& b) {
    return std::tie(a.e1, a.e2) < std::tie(b.e1, b.e2);
  });

  // Phase C: optional pairing filter + neighbor reduction, in parallel.
  struct Reduction {
    bool keep = true;
    NodeSet r1, r2;
  };
  std::vector<Reduction> reductions(opts_.use_pairing ? raw.size() : 0);
  if (opts_.use_pairing) {
    ParallelFor(p, raw.size(), [&](size_t i) {
      const RawPair& rp = raw[i];
      const NodeSet& n1 = dneighbor_cache_.at(rp.e1);
      const NodeSet& n2 = dneighbor_cache_.at(rp.e2);
      Reduction& red = reductions[i];
      red.keep = false;
      for (int ki : *rp.keys) {
        PairingResult pr =
            ComputeMaxPairing(g, compiled_[ki].cp, rp.e1, rp.e2, n1, n2);
        if (pr.paired) {
          red.keep = true;  // §4.2: keep only pairable pairs (Prop. 9)
          red.r1.UnionWith(pr.reduced1);
          red.r2.UnionWith(pr.reduced2);
        }
      }
    });
  }

  // Assembly (sequential: the pools need stable addresses).
  candidates_.reserve(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    const RawPair& rp = raw[i];
    Candidate c;
    c.e1 = rp.e1;
    c.e2 = rp.e2;
    c.keys = rp.keys;
    c.has_recursive_key = rp.recursive;
    c.has_value_based_key = rp.value_based;
    if (opts_.use_pairing) {
      Reduction& red = reductions[i];
      if (!red.keep) {
        // Provably not identifiable directly — but it may still become
        // equal transitively; remember it for ghost tracking.
        dropped_.emplace_back(rp.e1, rp.e2);
        continue;
      }
      neighbor_nodes_reduced_ += red.r1.size() + red.r2.size();
      reduced_pool_.push_back(std::move(red.r1));
      c.nbr1 = &reduced_pool_.back();
      reduced_pool_.push_back(std::move(red.r2));
      c.nbr2 = &reduced_pool_.back();
    } else {
      c.nbr1 = &dneighbor_cache_.at(rp.e1);
      c.nbr2 = &dneighbor_cache_.at(rp.e2);
    }
    candidates_.push_back(std::move(c));
  }
}

void EmContext::BuildDependencyIndex() {
  const int p = std::max(1, opts_.processors);
  dependents_.assign(candidates_.size(), {});
  // entity -> pair ids it participates in. Ids [0, C) are candidates;
  // ids [C, C + D) are pairs the pairing filter dropped — they cannot be
  // identified directly, but they can become equal transitively, so
  // dependencies must see them too.
  const uint32_t num_candidates = static_cast<uint32_t>(candidates_.size());
  std::unordered_map<NodeId, std::vector<uint32_t>> by_entity;
  for (uint32_t i = 0; i < num_candidates; ++i) {
    by_entity[candidates_[i].e1].push_back(i);
    by_entity[candidates_[i].e2].push_back(i);
  }
  for (uint32_t d = 0; d < dropped_.size(); ++d) {
    by_entity[dropped_[d].first].push_back(num_candidates + d);
    by_entity[dropped_[d].second].push_back(num_candidates + d);
  }
  // Parallel phase: for each candidate j, the candidates it DEPENDS ON —
  // pairs lying inside j's neighbors (one entity per side, either
  // orientation) whose type matches an entity variable of a recursive
  // key on j (§4.2).
  std::vector<std::vector<uint32_t>> depends_on(candidates_.size());
  ParallelFor(p, candidates_.size(), [&](size_t j) {
    const Candidate& cj = candidates_[j];
    if (!cj.has_recursive_key) return;
    std::vector<Symbol> dep_types;
    for (int ki : *cj.keys) {
      const CompiledPattern& cp = compiled_[ki].cp;
      for (const CompiledNode& n : cp.nodes) {
        if (n.kind == VarKind::kEntityVar) dep_types.push_back(n.type);
      }
    }
    if (dep_types.empty()) return;
    std::sort(dep_types.begin(), dep_types.end());
    dep_types.erase(std::unique(dep_types.begin(), dep_types.end()),
                    dep_types.end());
    auto scan_side = [&](const NodeSet& near, const NodeSet& far) {
      for (NodeId n : near) {
        if (!g_->IsEntity(n)) continue;
        if (!std::binary_search(dep_types.begin(), dep_types.end(),
                                g_->entity_type(n))) {
          continue;
        }
        auto it = by_entity.find(n);
        if (it == by_entity.end()) continue;
        for (uint32_t i : it->second) {
          if (i == j) continue;
          auto [p1, p2] = i < num_candidates
                              ? std::pair<NodeId, NodeId>{candidates_[i].e1,
                                                          candidates_[i].e2}
                              : dropped_[i - num_candidates];
          NodeId other = p1 == n ? p2 : p1;
          if (far.Contains(other)) depends_on[j].push_back(i);
        }
      }
    };
    scan_side(*cj.nbr1, *cj.nbr2);
    scan_side(*cj.nbr2, *cj.nbr1);
    std::sort(depends_on[j].begin(), depends_on[j].end());
    depends_on[j].erase(
        std::unique(depends_on[j].begin(), depends_on[j].end()),
        depends_on[j].end());
  });
  // Sequential inversion: dependents_[i] = { j : j depends on i }.
  // Dropped pairs with dependents become ghosts.
  std::unordered_map<uint32_t, std::vector<uint32_t>> ghost_deps;
  for (uint32_t j = 0; j < depends_on.size(); ++j) {
    for (uint32_t i : depends_on[j]) {
      if (i < num_candidates) {
        dependents_[i].push_back(j);
      } else {
        ghost_deps[i - num_candidates].push_back(j);
      }
    }
  }
  for (auto& [d, deps] : ghost_deps) {
    ghosts_.push_back(
        GhostPair{dropped_[d].first, dropped_[d].second, std::move(deps)});
  }
  dropped_.clear();  // only the ghosts are needed from here on
  dropped_.shrink_to_fit();
}

bool EmContext::Identifies(const Candidate& c, const EqView& eq,
                           SearchStats* stats, bool unrestricted,
                           bool use_vf2) const {
  const NodeSet* n1 = unrestricted ? nullptr : c.nbr1;
  const NodeSet* n2 = unrestricted ? nullptr : c.nbr2;
  for (int ki : *c.keys) {
    const CompiledPattern& cp = compiled_[ki].cp;
    bool found =
        use_vf2
            ? IdentifiesByEnumeration(*g_, cp, c.e1, c.e2, eq, n1, n2, stats)
            : KeyIdentifies(*g_, cp, c.e1, c.e2, eq, n1, n2, stats);
    if (found) return true;  // early termination across keys
  }
  return false;
}

size_t internal::PairStreamer::EmitNew(const EquivalenceRelation& eq) {
  for (const auto& [a, b] : eq.IdentifiedPairs()) {
    uint64_t packed = (static_cast<uint64_t>(a) << 32) | b;
    if (!emitted_.insert(packed).second) continue;
    if (sink_ != nullptr) sink_->OnPair(a, b);
  }
  return emitted_.size();
}

Status internal::PairStreamer::Finish(
    const std::vector<std::pair<NodeId, NodeId>>& final_pairs) {
  if (sink_ == nullptr) return Status::OK();
  for (const auto& [a, b] : final_pairs) {
    uint64_t packed = (static_cast<uint64_t>(a) << 32) | b;
    if (!emitted_.insert(packed).second) continue;
    sink_->OnPair(a, b);
  }
  if (emitted_.size() != final_pairs.size()) {
    return Status::Internal("streamed pair count diverged from result");
  }
  return Status::OK();
}

}  // namespace gkeys
