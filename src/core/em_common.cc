#include "core/em_common.h"

#include <algorithm>
#include <tuple>

#include "common/thread_pool.h"
#include "common/timer.h"

#include "isomorph/pairing.h"
#include "isomorph/vf2.h"

namespace gkeys {

std::string AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kNaiveChase: return "NaiveChase";
    case Algorithm::kEmMr: return "EMMR";
    case Algorithm::kEmVf2Mr: return "EMVF2MR";
    case Algorithm::kEmOptMr: return "EMOptMR";
    case Algorithm::kEmVc: return "EMVC";
    case Algorithm::kEmOptVc: return "EMOptVC";
  }
  return "?";
}

EmOptions EmOptions::For(Algorithm a, int p) {
  EmOptions o;
  o.processors = p;
  switch (a) {
    case Algorithm::kNaiveChase:
      // The correctness oracle enumerates exhaustively; blocking stays off
      // so oracle comparisons exercise the blocked/unblocked equivalence.
      o.use_blocking = false;
      break;
    case Algorithm::kEmMr:
      break;
    case Algorithm::kEmVf2Mr:
      o.use_vf2 = true;
      break;
    case Algorithm::kEmOptMr:
      o.use_pairing = true;
      o.use_dependency = true;
      o.use_incremental = true;
      break;
    case Algorithm::kEmVc:
      // The product graph is built from pairing (paper §5.1), but plain
      // EMVC uses neither bounded messages nor prioritization.
      o.use_pairing = true;
      break;
    case Algorithm::kEmOptVc:
      o.use_pairing = true;
      o.bounded_messages = 4;  // the paper's k = 4
      o.prioritized = true;
      break;
  }
  return o;
}

void EmContext::CompileKeys() {
  const Graph& g = *g_;
  const KeySet& keys = *keys_;
  compiled_.clear();
  compiled_.reserve(keys.count());
  keys_by_type_.clear();
  radius_by_type_.clear();
  for (size_t i = 0; i < keys.count(); ++i) {
    const Key& k = keys.key(i);
    CompiledKey ck;
    ck.key = &k;
    ck.cp = Compile(k.pattern(), g);
    ck.tour = ComputeTour(ck.cp);
    Symbol t = ck.cp.nodes[ck.cp.designated].type;
    if (t != kNoSymbol) {
      keys_by_type_[t].push_back(static_cast<int>(i));
      int& r = radius_by_type_[t];
      r = std::max(r, k.radius());
    }
    compiled_.push_back(std::move(ck));
  }
}

EmContext::EmContext(const Graph& g, const KeySet& keys,
                     const EmOptions& opts)
    : g_(&g), keys_(&keys), opts_(opts) {
  CompileKeys();
  BuildCandidates();
  BuildDependencyIndex(nullptr, nullptr);
}

EmContext::EmContext(DeserializeShell, const Graph& g, const KeySet& keys,
                     const EmOptions& opts)
    : g_(&g), keys_(&keys), opts_(opts) {
  // Compiling the keys is cheap and deterministic; the expensive build
  // phases are replaced by storage::PlanCodec restoring their outputs.
  CompileKeys();
}

const std::vector<int>& EmContext::KeysForType(Symbol t) const {
  static const std::vector<int> kEmpty;
  auto it = keys_by_type_.find(t);
  return it == keys_by_type_.end() ? kEmpty : it->second;
}

/// All signature sources of `cp`: BFS over the pattern graph from the
/// designated variable; every value variable / graph-resolved constant
/// first reached contributes its (shortest) path.
std::vector<EmContext::SigSource> EmContext::FindSigSources(
    const CompiledPattern& cp) {
  const int n = static_cast<int>(cp.nodes.size());
  std::vector<int> parent(n, -1);
  std::vector<SigStep> parent_step(n);
  std::vector<int> order;
  std::vector<uint8_t> seen(n, 0);
  seen[cp.designated] = 1;
  order.push_back(cp.designated);
  for (size_t head = 0; head < order.size(); ++head) {
    int v = order[head];
    for (int t : cp.incident[v]) {
      const CompiledTriple& ct = cp.triples[t];
      int other = ct.subject == v ? ct.object : ct.subject;
      bool forward = ct.subject == v;
      if (other == v || seen[other]) continue;
      seen[other] = 1;
      parent[other] = v;
      parent_step[other] = SigStep{ct.pred, forward, other};
      order.push_back(other);
    }
  }
  std::vector<SigSource> sources;
  for (int v : order) {
    if (v == cp.designated) continue;
    const CompiledNode& pn = cp.nodes[v];
    bool is_value = pn.kind == VarKind::kValueVar;
    bool is_const =
        pn.kind == VarKind::kConstant && pn.constant_node != kNoNode;
    if (!is_value && !is_const) continue;
    SigSource src;
    src.constant = is_const ? pn.constant_node : kNoNode;
    for (int u = v; parent[u] != -1; u = parent[u]) {
      src.path.push_back(parent_step[u]);
    }
    std::reverse(src.path.begin(), src.path.end());
    sources.push_back(std::move(src));
  }
  return sources;
}

std::vector<NodeId> EmContext::ReachableValues(
    NodeId e, const SigSource& src, const CompiledPattern& cp) const {
  const Graph& g = *g_;
  std::vector<NodeId> frontier{e}, next;
  for (const SigStep& step : src.path) {
    next.clear();
    const CompiledNode& pn = cp.nodes[step.to_node];
    for (NodeId n : frontier) {
      for (const Edge& edge : step.forward ? g.Out(n) : g.In(n)) {
        if (edge.pred != step.pred) continue;
        NodeId dst = edge.dst;
        switch (pn.kind) {
          case VarKind::kEntityVar:
          case VarKind::kWildcard:
            if (!g.IsEntity(dst) || g.entity_type(dst) != pn.type) {
              continue;
            }
            break;
          case VarKind::kValueVar:
            if (!g.IsValue(dst)) continue;
            break;
          case VarKind::kConstant:
            if (dst != pn.constant_node) continue;
            break;
          case VarKind::kDesignated:
            break;  // unreachable: BFS paths never revisit x
        }
        next.push_back(dst);
      }
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    frontier.swap(next);
  }
  return frontier;
}

std::shared_ptr<const EmContext::SigIndex> EmContext::BuildSigIndex(
    const std::vector<int>& key_ids, std::span<const NodeId> entities) const {
  auto idx = std::make_shared<SigIndex>();
  // Signature sources per matchable key. A key that reaches no value
  // variable or constant from x pins nothing Eq-independent and makes
  // the whole type unblockable (full enumeration).
  auto pair_count = [](size_t n) { return n * (n - 1) / 2; };
  std::unordered_map<NodeId, size_t> counts;
  for (int ki : key_ids) {
    const CompiledPattern& cp = compiled_[ki].cp;
    if (!cp.matchable) continue;  // can never fire: imposes nothing
    std::vector<SigSource> sources = FindSigSources(cp);
    if (sources.empty()) {
      idx->blockable = false;
      idx->keys.clear();
      return idx;  // purely variable-only key: full enumeration
    }
    // Pick the most selective source (fewest pairs) per key; unioning one
    // source per key over all keys covers every directly identifiable
    // pair. (A constant terminal needs no extra filter — ReachableValues
    // already pins the last hop to the constant node.)
    size_t best = 0;
    size_t best_pairs = SIZE_MAX;
    for (size_t s = 0; sources.size() > 1 && s < sources.size(); ++s) {
      counts.clear();
      for (NodeId e : entities) {
        for (NodeId v : ReachableValues(e, sources[s], cp)) ++counts[v];
      }
      size_t pairs = 0;
      for (const auto& [value, count] : counts) {
        pairs += pair_count(count);
      }
      if (pairs < best_pairs) {
        best_pairs = pairs;
        best = s;
      }
    }
    SigPerKey pk;
    pk.key = ki;
    pk.source = std::move(sources[best]);
    auto buckets = std::make_shared<SigMap>();
    auto entity_values = std::make_shared<SigMap>();
    for (NodeId e : entities) {
      std::vector<NodeId> vals = ReachableValues(e, pk.source, cp);
      if (vals.empty()) continue;
      // EntitiesOfType yields ascending NodeIds, so buckets stay sorted.
      for (NodeId v : vals) (*buckets)[v].push_back(e);
      entity_values->emplace(e, std::move(vals));
    }
    pk.buckets = std::move(buckets);
    pk.entity_values = std::move(entity_values);
    idx->keys.push_back(std::move(pk));
  }
  // All keys unmatchable: blockable with no buckets — zero pairs, which
  // is exact (no pair of the type is identifiable).
  idx->blockable = true;
  return idx;
}

bool EmContext::SigIndexStillValid(const SigIndex& prev_idx,
                                   const std::vector<int>& key_ids) const {
  if (!prev_idx.blockable) {
    // Unblockable can only flip to blockable when a constant newly
    // resolves; re-checking is cheap and a flip forces a rebuild.
    for (int ki : key_ids) {
      const CompiledPattern& cp = compiled_[ki].cp;
      if (!cp.matchable) continue;
      if (FindSigSources(cp).empty()) return true;  // still unblockable
    }
    return false;
  }
  // The stored matchable key list must be unchanged, and every stored
  // choice must still be a source of its key (constants can newly
  // resolve, predicates can newly exist — either changes the sources).
  size_t at = 0;
  for (int ki : key_ids) {
    const CompiledPattern& cp = compiled_[ki].cp;
    if (!cp.matchable) continue;
    if (at >= prev_idx.keys.size() || prev_idx.keys[at].key != ki) {
      return false;
    }
    std::vector<SigSource> sources = FindSigSources(cp);
    if (std::find(sources.begin(), sources.end(),
                  prev_idx.keys[at].source) == sources.end()) {
      return false;
    }
    ++at;
  }
  return at == prev_idx.keys.size();
}

void EmContext::BuildCandidates() {
  const Graph& g = *g_;
  const int p = std::max(1, opts_.processors);

  // Phase A: d-neighbors of every keyed entity, in parallel — the paper's
  // DriverMR builds the Gd's "also in MapReduce" (§4.1). Stored in dense
  // slots (one per keyed entity) so lookups are an array index and the
  // element addresses candidates point at stay stable.
  std::vector<std::pair<NodeId, int>> todo;  // (entity, radius d)
  for (const auto& [type, key_ids] : keys_by_type_) {
    int d = radius_by_type_.at(type);
    for (NodeId e : g.EntitiesOfType(type)) todo.emplace_back(e, d);
  }
  dneighbor_slot_.assign(g.NumNodes(), kNoSlot);
  dneighbor_sets_.resize(todo.size());
  ParallelFor(p, todo.size(), [&](size_t i) {
    dneighbor_sets_[i] =
        std::make_shared<const NodeSet>(DNeighbor(g, todo[i].first,
                                                  todo[i].second));
  });
  for (size_t i = 0; i < todo.size(); ++i) {
    neighbor_nodes_ += dneighbor_sets_[i]->size();
    dneighbor_slot_[todo[i].first] = static_cast<uint32_t>(i);
  }

  // Phase B: enumerate L. With signature blocking, only same-type pairs
  // sharing a required (predicate, value) signature are materialized —
  // the O(n²)-pair wall of the naive enumeration never forms. Types whose
  // keys pin nothing on x directly fall back to the full double loop.
  struct RawPair {
    NodeId e1, e2;
    const std::vector<int>* keys;
    bool recursive, value_based;
  };
  std::vector<RawPair> raw;
  std::vector<std::pair<NodeId, NodeId>> block_scratch;
  for (const auto& [type, key_ids] : keys_by_type_) {
    auto entities = g.EntitiesOfType(type);
    bool recursive = false, value_based = false;
    for (int ki : key_ids) {
      if (compiled_[ki].key->recursive()) {
        recursive = true;
      } else {
        value_based = true;
      }
    }
    const size_t all_pairs = entities.size() * (entities.size() - 1) / 2;
    std::shared_ptr<const SigIndex> idx;
    if (opts_.use_blocking) {
      idx = BuildSigIndex(key_ids, entities);
      sig_index_[type] = idx;
    }
    if (idx != nullptr && idx->blockable) {
      block_scratch.clear();
      std::unordered_set<uint64_t> seen;
      for (const SigPerKey& pk : idx->keys) {
        for (const auto& [value, members] : *pk.buckets) {
          // Buckets are ascending, so members[i] < members[j] for i < j.
          for (size_t i = 0; i < members.size(); ++i) {
            for (size_t j = i + 1; j < members.size(); ++j) {
              if (seen.insert(PackPair(members[i], members[j])).second) {
                block_scratch.emplace_back(members[i], members[j]);
              }
            }
          }
        }
      }
      candidates_blocked_ += all_pairs - block_scratch.size();
      for (const auto& [a, b] : block_scratch) {
        raw.push_back(RawPair{a, b, &key_ids, recursive, value_based});
      }
    } else {
      for (size_t i = 0; i < entities.size(); ++i) {
        for (size_t j = i + 1; j < entities.size(); ++j) {
          raw.push_back(RawPair{entities[i], entities[j], &key_ids,
                                recursive, value_based});
        }
      }
    }
  }
  candidates_initial_ = raw.size();
  // Deterministic order regardless of hash-map iteration.
  std::sort(raw.begin(), raw.end(), [](const RawPair& a, const RawPair& b) {
    return std::tie(a.e1, a.e2) < std::tie(b.e1, b.e2);
  });

  // Phase C: optional pairing filter + neighbor reduction, in parallel.
  struct Reduction {
    bool keep = true;
    NodeSet r1, r2;
  };
  std::vector<Reduction> reductions(opts_.use_pairing ? raw.size() : 0);
  if (opts_.use_pairing) {
    // Sharded so each worker owns one PairingScratch: the pairing calls
    // reuse domain/bitset/worklist buffers across the whole shard instead
    // of reallocating per candidate pair.
    std::vector<PairingScratch> scratches(p);
    ParallelShards(p, raw.size(), [&](int shard, size_t begin, size_t end) {
      PairingScratch& scratch = scratches[shard];
      for (size_t i = begin; i < end; ++i) {
        const RawPair& rp = raw[i];
        const NodeSet& n1 = DNbr(rp.e1);
        const NodeSet& n2 = DNbr(rp.e2);
        Reduction& red = reductions[i];
        red.keep = false;
        for (int ki : *rp.keys) {
          PairingResult pr =
              ComputeMaxPairing(g, compiled_[ki].cp, rp.e1, rp.e2, n1, n2,
                                /*collect_pairs=*/false, &scratch);
          if (pr.paired) {
            red.keep = true;  // §4.2: keep only pairable pairs (Prop. 9)
            red.r1.UnionWith(pr.reduced1);
            red.r2.UnionWith(pr.reduced2);
          }
        }
      }
    });
  }

  // Assembly (sequential). Pairs the pairing filter rejects just
  // disappear from L — ghost tracking rediscovers the ones that matter
  // from the d-neighbor overlaps.
  candidates_.reserve(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    const RawPair& rp = raw[i];
    Candidate c;
    c.e1 = rp.e1;
    c.e2 = rp.e2;
    c.keys = rp.keys;
    c.has_recursive_key = rp.recursive;
    c.has_value_based_key = rp.value_based;
    if (opts_.use_pairing) {
      Reduction& red = reductions[i];
      if (!red.keep) continue;
      neighbor_nodes_reduced_ += red.r1.size() + red.r2.size();
      reduced_pool_.push_back(
          std::make_shared<const NodeSet>(std::move(red.r1)));
      c.nbr1 = reduced_pool_.back().get();
      reduced_pool_.push_back(
          std::make_shared<const NodeSet>(std::move(red.r2)));
      c.nbr2 = reduced_pool_.back().get();
    } else {
      c.nbr1 = &DNbr(rp.e1);
      c.nbr2 = &DNbr(rp.e2);
    }
    candidates_.push_back(std::move(c));
  }
}

void EmContext::BuildDependencyIndex(const EmContext* prev,
                                     const std::vector<int64_t>* reuse) {
  const Graph& g = *g_;
  // Inline below the thread-spawn break-even point (identical semantics;
  // matters for sub-millisecond plan patches).
  const int p =
      candidates_.size() < 256 ? 1 : std::max(1, opts_.processors);
  depends_on_pairs_.assign(candidates_.size(), {});
  // Scan phase: for each candidate j with a recursive key, every
  // same-type pair of keyed entities lying inside j's neighbors (one per
  // side, either orientation) whose type matches an entity variable of a
  // recursive key on j (§4.2) — whether or not the pair is in L. Only
  // keyed types matter: every Eq merge starts from a keyed candidate, so
  // pairs of unkeyed types can never become equal. A patched context
  // copies the scan of every carried-over candidate (its balls, keys, and
  // the keyed-type set are all unchanged) instead of re-walking it.
  ParallelFor(p, candidates_.size(), [&](size_t j) {
    if (prev != nullptr && reuse != nullptr && (*reuse)[j] >= 0) {
      depends_on_pairs_[j] = prev->depends_on_pairs_[(*reuse)[j]];
      return;
    }
    const Candidate& cj = candidates_[j];
    if (!cj.has_recursive_key) return;
    std::vector<Symbol> dep_types;
    for (int ki : *cj.keys) {
      const CompiledPattern& cp = compiled_[ki].cp;
      for (const CompiledNode& n : cp.nodes) {
        if (n.kind == VarKind::kEntityVar) dep_types.push_back(n.type);
      }
    }
    if (dep_types.empty()) return;
    std::sort(dep_types.begin(), dep_types.end());
    dep_types.erase(std::unique(dep_types.begin(), dep_types.end()),
                    dep_types.end());
    std::vector<uint64_t>& out = depends_on_pairs_[j];
    auto scan_side = [&](const NodeSet& near, const NodeSet& far) {
      std::unordered_map<Symbol, std::vector<NodeId>> far_by_type;
      for (NodeId m : far) {
        if (!g.IsEntity(m)) continue;
        Symbol t = g.entity_type(m);
        if (std::binary_search(dep_types.begin(), dep_types.end(), t) &&
            keys_by_type_.find(t) != keys_by_type_.end()) {
          far_by_type[t].push_back(m);
        }
      }
      if (far_by_type.empty()) return;
      for (NodeId n : near) {
        if (!g.IsEntity(n)) continue;
        Symbol t = g.entity_type(n);
        if (!std::binary_search(dep_types.begin(), dep_types.end(), t)) {
          continue;
        }
        auto ft = far_by_type.find(t);
        if (ft == far_by_type.end()) continue;
        for (NodeId m : ft->second) {
          if (m == n) continue;
          out.push_back(PackPair(std::min(n, m), std::max(n, m)));
        }
      }
    };
    scan_side(*cj.nbr1, *cj.nbr2);
    scan_side(*cj.nbr2, *cj.nbr1);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  });
  InvertDependencyIndex();
}

void EmContext::InvertDependencyIndex() {
  // Inversion: pairs in L become dependency edges (dependents_[i] ∋ j);
  // excluded pairs with dependents become ghosts. Deterministic given
  // depends_on_pairs_ + candidates_, so the storage layer replays it on
  // load instead of persisting the derived index.
  dependents_.assign(candidates_.size(), {});
  ghosts_.clear();
  std::unordered_map<uint64_t, uint32_t> in_l;
  in_l.reserve(candidates_.size() * 2);
  for (uint32_t i = 0; i < candidates_.size(); ++i) {
    in_l.emplace(PackPair(candidates_[i].e1, candidates_[i].e2), i);
  }
  std::unordered_map<uint64_t, std::vector<uint32_t>> ghost_deps;
  for (uint32_t j = 0; j < depends_on_pairs_.size(); ++j) {
    for (uint64_t packed : depends_on_pairs_[j]) {
      auto it = in_l.find(packed);
      if (it != in_l.end()) {
        if (it->second != j) dependents_[it->second].push_back(j);
      } else {
        ghost_deps[packed].push_back(j);
      }
    }
  }
  ghosts_.reserve(ghost_deps.size());
  for (auto& [packed, deps] : ghost_deps) {
    std::sort(deps.begin(), deps.end());
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
    ghosts_.push_back(GhostPair{static_cast<NodeId>(packed >> 32),
                                static_cast<NodeId>(packed & 0xffffffffu),
                                std::move(deps)});
  }
  std::sort(ghosts_.begin(), ghosts_.end(),
            [](const GhostPair& a, const GhostPair& b) {
              return std::tie(a.e1, a.e2) < std::tie(b.e1, b.e2);
            });
}

EmContext::EmContext(const EmContext& prev,
                     std::span<const NodeId> dirty_nodes,
                     ContextPatchInfo* info)
    : g_(prev.g_), keys_(prev.keys_), opts_(prev.opts_) {
  const Graph& g = *g_;
  // Spawning worker threads costs ~100µs each — real money against a
  // sub-millisecond patch. Parallel phases below fall back to inline
  // execution unless the affected region is big enough to pay for them.
  auto workers = [this](size_t work) {
    return work < 256 ? 1 : std::max(1, opts_.processors);
  };
  Timer section;

  // Keys are recompiled outright (|Σ| patterns — negligible): a constant
  // or predicate the delta introduced can newly resolve, flipping
  // cp.matchable. Any NEW match such a flip enables must use delta edges
  // and therefore lies inside an affected entity's ball, so the per-type
  // reuse below stays sound.
  CompileKeys();
  if (info != nullptr) info->keys_seconds = section.Seconds();
  section.Reset();

  // Affected region: a keyed entity is affected iff its d-ball (d = its
  // type's radius) intersects the dirty node set — in the POST-delta
  // graph. That single test covers removals too: every removed edge
  // leaves both (dirty) endpoints in place, and any old ≤d path from an
  // entity to a dirty node has a surviving prefix that already reaches a
  // dirty node within d. One multi-source BFS from the dirty set to the
  // maximum radius, instead of one BFS per entity.
  int dmax = 0;
  for (const auto& [type, r] : radius_by_type_) dmax = std::max(dmax, r);
  constexpr uint8_t kUnreached = 0xFF;
  std::vector<uint8_t> dist(g.NumNodes(), kUnreached);
  std::vector<NodeId> frontier, next_frontier;
  for (NodeId n : dirty_nodes) {
    if (n < g.NumNodes() && dist[n] == kUnreached) {
      dist[n] = 0;
      frontier.push_back(n);
    }
  }
  for (int depth = 1; depth <= dmax && !frontier.empty(); ++depth) {
    next_frontier.clear();
    for (NodeId n : frontier) {
      auto visit = [&](NodeId m) {
        if (dist[m] == kUnreached) {
          dist[m] = static_cast<uint8_t>(depth);
          next_frontier.push_back(m);
        }
      };
      for (const Edge& e : g.Out(n)) visit(e.dst);
      for (const Edge& e : g.In(n)) visit(e.dst);
    }
    frontier.swap(next_frontier);
  }

  std::vector<uint8_t> affected(g.NumNodes(), 0);
  std::vector<NodeId> affected_list;
  for (const auto& [type, key_ids] : keys_by_type_) {
    int d = radius_by_type_.at(type);
    for (NodeId e : g.EntitiesOfType(type)) {
      if (dist[e] != kUnreached && dist[e] <= d) {
        affected[e] = 1;
        affected_list.push_back(e);
      }
    }
  }
  std::sort(affected_list.begin(), affected_list.end());
  if (info != nullptr) info->affected_seconds = section.Seconds();
  section.Reset();

  // Phase A': d-neighbor slots. Untouched keyed entities share the
  // previous context's immutable sets; affected and new ones recompute.
  std::vector<std::pair<NodeId, int>> todo;  // (entity, radius) to redo
  std::vector<size_t> todo_slot;
  size_t slots = 0;
  dneighbor_slot_.assign(g.NumNodes(), kNoSlot);
  for (const auto& [type, key_ids] : keys_by_type_) {
    int d = radius_by_type_.at(type);
    for (NodeId e : g.EntitiesOfType(type)) {
      dneighbor_slot_[e] = static_cast<uint32_t>(slots++);
      if (affected[e] == 0 && e < prev.dneighbor_slot_.size() &&
          prev.dneighbor_slot_[e] != kNoSlot) {
        continue;  // shared below
      }
      todo.emplace_back(e, d);
      todo_slot.push_back(slots - 1);
    }
  }
  dneighbor_sets_.resize(slots);
  size_t shared_sets = 0;
  for (const auto& [type, key_ids] : keys_by_type_) {
    for (NodeId e : g.EntitiesOfType(type)) {
      if (affected[e] == 0 && e < prev.dneighbor_slot_.size() &&
          prev.dneighbor_slot_[e] != kNoSlot) {
        dneighbor_sets_[dneighbor_slot_[e]] =
            prev.dneighbor_sets_[prev.dneighbor_slot_[e]];
        ++shared_sets;
      }
    }
  }
  ParallelFor(workers(todo.size()), todo.size(), [&](size_t i) {
    dneighbor_sets_[todo_slot[i]] =
        std::make_shared<const NodeSet>(DNeighbor(g, todo[i].first,
                                                  todo[i].second));
  });
  for (const auto& s : dneighbor_sets_) neighbor_nodes_ += s->size();
  if (info != nullptr) info->dneighbor_seconds = section.Seconds();
  section.Reset();

  // Phase B': enumerate L per type. Types with no affected entity carry
  // their surviving candidates (and signature index) over verbatim.
  // Affected types update their signature index in place — remove each
  // affected entity's stale bucket memberships, re-sign it, re-insert —
  // and enumerate only the pairs INVOLVING an affected entity; pairs of
  // two untouched entities are carried from the previous L (their bucket
  // memberships, pairing verdicts, and reduced sets cannot have changed).
  // The previous source choice per key is pinned (any single source per
  // key is an output-preserving filter), so a patched plan's L can differ
  // from a from-scratch compile's L without changing chase(G, Σ).
  // Pair → previous-candidate lookup, needed only when a type's
  // signature structure changed (rare); built on first use so the common
  // patch path never pays the O(|L|) hashing.
  std::unordered_map<uint64_t, uint32_t> prev_by_pair;
  auto lookup_prev_pair = [&](NodeId a, NodeId b) -> int64_t {
    if (prev_by_pair.empty() && !prev.candidates_.empty()) {
      prev_by_pair.reserve(prev.candidates_.size() * 2);
      for (uint32_t i = 0; i < prev.candidates_.size(); ++i) {
        prev_by_pair.emplace(
            PackPair(prev.candidates_[i].e1, prev.candidates_[i].e2), i);
      }
    }
    auto it = prev_by_pair.find(PackPair(a, b));
    return it == prev_by_pair.end() ? -1 : static_cast<int64_t>(it->second);
  };
  // Previous candidates grouped by type, for the carry-over passes.
  std::unordered_map<Symbol, std::vector<uint32_t>> prev_by_type;
  for (uint32_t i = 0; i < prev.candidates_.size(); ++i) {
    prev_by_type[g.entity_type(prev.candidates_[i].e1)].push_back(i);
  }

  struct RawPair {
    NodeId e1, e2;
    const std::vector<int>* keys;
    bool recursive, value_based;
    int64_t reuse;  // previous candidate index, or -1 = recompute (dirty)
  };
  std::vector<RawPair> raw;
  std::unordered_set<uint64_t> seen;
  for (const auto& [type, key_ids] : keys_by_type_) {
    auto entities = g.EntitiesOfType(type);
    bool recursive = false, value_based = false;
    for (int ki : key_ids) {
      if (compiled_[ki].key->recursive()) {
        recursive = true;
      } else {
        value_based = true;
      }
    }
    std::vector<NodeId> affected_here;
    for (NodeId e : entities) {
      if (affected[e] != 0) affected_here.push_back(e);
    }
    auto prev_candidates_it = prev_by_type.find(type);
    auto carry_clean_pairs = [&]() {
      if (prev_candidates_it == prev_by_type.end()) return;
      for (uint32_t i : prev_candidates_it->second) {
        const Candidate& c = prev.candidates_[i];
        if (affected[c.e1] != 0 || affected[c.e2] != 0) continue;
        raw.push_back(RawPair{c.e1, c.e2, &key_ids, recursive, value_based,
                              static_cast<int64_t>(i)});
      }
    };
    if (affected_here.empty()) {
      // Entirely clean type: carry candidates and share the signature
      // index untouched.
      carry_clean_pairs();
      auto sig_it = prev.sig_index_.find(type);
      if (sig_it != prev.sig_index_.end()) sig_index_[type] = sig_it->second;
      continue;
    }

    // The affected-pair enumeration for this type: fills `seen`/`raw`
    // with every pair that involves an affected entity and passes the
    // blocking filter (or every such pair, for unblockable types).
    seen.clear();
    auto emit = [&](NodeId a, NodeId b) {
      if (a > b) std::swap(a, b);
      if (!seen.insert(PackPair(a, b)).second) return;
      raw.push_back(RawPair{a, b, &key_ids, recursive, value_based, -1});
    };

    if (opts_.use_blocking) {
      auto sig_it = prev.sig_index_.find(type);
      std::shared_ptr<const SigIndex> prev_sig =
          sig_it != prev.sig_index_.end() ? sig_it->second : nullptr;
      if (prev_sig != nullptr && SigIndexStillValid(*prev_sig, key_ids)) {
        if (!prev_sig->blockable) {
          // Still unblockable: full enumeration of affected × all.
          sig_index_[type] = prev_sig;
          carry_clean_pairs();
          for (NodeId a : affected_here) {
            for (NodeId b : entities) {
              if (b != a) emit(a, b);
            }
          }
          continue;
        }
        // Re-sign exactly the affected entities against the pinned
        // sources: the base bucket maps are shared untouched; the
        // re-signed entities go into the per-key overlay (compacted into
        // a fresh base once the overlay outgrows it).
        auto updated = std::make_shared<SigIndex>();
        updated->blockable = true;
        for (const SigPerKey& old_pk : prev_sig->keys) {
          SigPerKey pk;
          pk.key = old_pk.key;
          pk.source = old_pk.source;
          pk.buckets = old_pk.buckets;
          pk.entity_values = old_pk.entity_values;
          pk.patched_values = old_pk.patched_values;
          pk.patched_buckets = old_pk.patched_buckets;
          const CompiledPattern& cp = compiled_[pk.key].cp;
          for (NodeId e : affected_here) {
            auto prior = pk.patched_values.find(e);
            if (prior != pk.patched_values.end()) {
              // Re-signed by an earlier patch generation: retract those
              // overlay memberships before re-adding.
              for (NodeId v : prior->second) {
                auto bucket = pk.patched_buckets.find(v);
                if (bucket == pk.patched_buckets.end()) continue;
                auto& members = bucket->second;
                members.erase(std::remove(members.begin(), members.end(),
                                          e),
                              members.end());
                if (members.empty()) pk.patched_buckets.erase(bucket);
              }
            }
            std::vector<NodeId> vals = ReachableValues(e, pk.source, cp);
            for (NodeId v : vals) pk.patched_buckets[v].push_back(e);
            pk.patched_values[e] = std::move(vals);
          }
          if (pk.patched_values.size() >
              std::max<size_t>(64, pk.entity_values->size() / 4)) {
            // Compact: materialize a fresh shared base from the overlay.
            auto buckets = std::make_shared<SigMap>();
            auto entity_values = std::make_shared<SigMap>();
            for (const auto& [e, vals] : *pk.entity_values) {
              if (pk.patched_values.find(e) != pk.patched_values.end()) {
                continue;
              }
              if (!vals.empty()) entity_values->emplace(e, vals);
            }
            for (const auto& [e, vals] : pk.patched_values) {
              if (!vals.empty()) entity_values->emplace(e, vals);
            }
            for (const auto& [e, vals] : *entity_values) {
              for (NodeId v : vals) (*buckets)[v].push_back(e);
            }
            for (auto& [v, members] : *buckets) {
              std::sort(members.begin(), members.end());
            }
            pk.buckets = std::move(buckets);
            pk.entity_values = std::move(entity_values);
            pk.patched_values.clear();
            pk.patched_buckets.clear();
          }
          updated->keys.push_back(std::move(pk));
        }
        for (const SigPerKey& pk : updated->keys) {
          for (NodeId e : affected_here) {
            const std::vector<NodeId>* vals = pk.ValuesOf(e);
            if (vals == nullptr) continue;
            for (NodeId v : *vals) {
              pk.ForEachMember(v, [&](NodeId m) {
                if (m != e) emit(e, m);
              });
            }
          }
        }
        sig_index_[type] = std::move(updated);
        carry_clean_pairs();
        continue;
      }
      // The delta changed the signature structure itself (a constant or
      // predicate newly resolves): rebuild the type's index from scratch
      // and re-enumerate it fully, still reusing the pairing verdicts of
      // clean pairs that survived in the previous L.
      auto idx = BuildSigIndex(key_ids, entities);
      sig_index_[type] = idx;
      if (idx->blockable) {
        for (const SigPerKey& pk : idx->keys) {
          for (const auto& [value, members] : *pk.buckets) {
            for (size_t i = 0; i < members.size(); ++i) {
              for (size_t j = i + 1; j < members.size(); ++j) {
                NodeId a = members[i], b = members[j];
                if (affected[a] == 0 && affected[b] == 0) {
                  int64_t from = lookup_prev_pair(a, b);
                  if (from >= 0) {
                    if (seen.insert(PackPair(a, b)).second) {
                      raw.push_back(RawPair{a, b, &key_ids, recursive,
                                            value_based, from});
                    }
                    continue;
                  }
                }
                emit(a, b);
              }
            }
          }
        }
        continue;
      }
      // Newly unblockable: fall through to full enumeration.
    }
    // No blocking (or newly unblockable): affected × all pairs are
    // dirty, clean × clean pairs carry over from the previous L. (With
    // pairing but no blocking, a clean pair the pairing filter dropped
    // before is re-checked only if it involves an affected entity — clean
    // dropped pairs stay dropped because nothing in their balls moved.)
    carry_clean_pairs();
    for (NodeId a : affected_here) {
      for (NodeId b : entities) {
        if (b != a) emit(a, b);
      }
    }
  }
  candidates_initial_ = raw.size();
  std::sort(raw.begin(), raw.end(), [](const RawPair& a, const RawPair& b) {
    return std::tie(a.e1, a.e2) < std::tie(b.e1, b.e2);
  });

  if (info != nullptr) info->enumerate_seconds = section.Seconds();
  section.Reset();

  // Phase C': pairing fixpoint only for the dirty pairs.
  struct Reduction {
    bool keep = true;
    NodeSet r1, r2;
  };
  std::vector<Reduction> reductions(opts_.use_pairing ? raw.size() : 0);
  if (opts_.use_pairing) {
    size_t dirty_pairs = 0;
    for (const RawPair& rp : raw) dirty_pairs += rp.reuse < 0 ? 1 : 0;
    const int pc = workers(dirty_pairs);
    std::vector<PairingScratch> scratches(pc);
    ParallelShards(pc, raw.size(), [&](int shard, size_t begin, size_t end) {
      PairingScratch& scratch = scratches[shard];
      for (size_t i = begin; i < end; ++i) {
        const RawPair& rp = raw[i];
        if (rp.reuse >= 0) continue;
        const NodeSet& n1 = DNbr(rp.e1);
        const NodeSet& n2 = DNbr(rp.e2);
        Reduction& red = reductions[i];
        red.keep = false;
        for (int ki : *rp.keys) {
          PairingResult pr =
              ComputeMaxPairing(g, compiled_[ki].cp, rp.e1, rp.e2, n1, n2,
                                /*collect_pairs=*/false, &scratch);
          if (pr.paired) {
            red.keep = true;
            red.r1.UnionWith(pr.reduced1);
            red.r2.UnionWith(pr.reduced2);
          }
        }
      }
    });
  }

  if (info != nullptr) info->pairing_seconds = section.Seconds();
  section.Reset();

  // Assembly: reused pairs share the previous reduced sets; dirty pairs
  // get fresh ones. Candidates stay sorted by (e1, e2) as in a full
  // compile.
  candidates_.reserve(raw.size());
  std::vector<uint32_t> dirty_candidates;
  std::vector<int64_t> candidate_reuse;
  candidate_reuse.reserve(raw.size());
  size_t reused = 0;
  for (size_t i = 0; i < raw.size(); ++i) {
    const RawPair& rp = raw[i];
    Candidate c;
    c.e1 = rp.e1;
    c.e2 = rp.e2;
    c.keys = rp.keys;
    c.has_recursive_key = rp.recursive;
    c.has_value_based_key = rp.value_based;
    if (rp.reuse >= 0) {
      ++reused;
      if (opts_.use_pairing) {
        // reduced_pool_[2i] / [2i+1] are candidate i's sides, in both
        // the full and the patched build.
        const auto& r1 = prev.reduced_pool_[2 * rp.reuse];
        const auto& r2 = prev.reduced_pool_[2 * rp.reuse + 1];
        neighbor_nodes_reduced_ += r1->size() + r2->size();
        reduced_pool_.push_back(r1);
        c.nbr1 = r1.get();
        reduced_pool_.push_back(r2);
        c.nbr2 = r2.get();
      } else {
        c.nbr1 = &DNbr(rp.e1);
        c.nbr2 = &DNbr(rp.e2);
      }
      candidate_reuse.push_back(rp.reuse);
      candidates_.push_back(std::move(c));
      continue;
    }
    if (opts_.use_pairing) {
      Reduction& red = reductions[i];
      if (!red.keep) continue;
      neighbor_nodes_reduced_ += red.r1.size() + red.r2.size();
      reduced_pool_.push_back(
          std::make_shared<const NodeSet>(std::move(red.r1)));
      c.nbr1 = reduced_pool_.back().get();
      reduced_pool_.push_back(
          std::make_shared<const NodeSet>(std::move(red.r2)));
      c.nbr2 = reduced_pool_.back().get();
    } else {
      c.nbr1 = &DNbr(rp.e1);
      c.nbr2 = &DNbr(rp.e2);
    }
    dirty_candidates.push_back(static_cast<uint32_t>(candidates_.size()));
    candidate_reuse.push_back(-1);
    candidates_.push_back(std::move(c));
  }

  // The dependency index and ghosts are candidate-index-relative; rebuild
  // them over the new L, copying the neighbor-ball scans of every
  // carried-over candidate.
  BuildDependencyIndex(&prev, &candidate_reuse);
  if (info != nullptr) info->depindex_seconds = section.Seconds();

  if (info != nullptr) {
    info->affected_entities = std::move(affected_list);
    info->dirty_candidates = std::move(dirty_candidates);
    info->dneighbors_reused = shared_sets;
    info->candidates_reused = reused;
    info->candidate_reuse = std::move(candidate_reuse);
  }
}

size_t EmContext::MemoryBytes() const {
  size_t bytes =
      candidates_.capacity() * sizeof(Candidate) +
      dneighbor_slot_.capacity() * sizeof(uint32_t) +
      compiled_.capacity() * sizeof(CompiledKey) +
      dneighbor_sets_.capacity() * sizeof(std::shared_ptr<const NodeSet>) +
      reduced_pool_.capacity() * sizeof(std::shared_ptr<const NodeSet>) +
      dependents_.capacity() * sizeof(std::vector<uint32_t>) +
      ghosts_.capacity() * sizeof(GhostPair);
  for (const auto& s : dneighbor_sets_) {
    bytes += sizeof(NodeSet) + s->MemoryBytes();
  }
  for (const auto& s : reduced_pool_) {
    bytes += sizeof(NodeSet) + s->MemoryBytes();
  }
  for (const auto& d : dependents_) bytes += d.capacity() * sizeof(uint32_t);
  for (const auto& d : depends_on_pairs_) {
    bytes += d.capacity() * sizeof(uint64_t);
  }
  bytes += depends_on_pairs_.capacity() * sizeof(std::vector<uint64_t>);
  for (const auto& gh : ghosts_) {
    bytes += gh.dependents.capacity() * sizeof(uint32_t);
  }
  for (const auto& [type, idx] : sig_index_) {
    bytes += sizeof(SigIndex);
    if (idx == nullptr) continue;
    for (const SigPerKey& pk : idx->keys) {
      bytes += pk.source.path.capacity() * sizeof(SigStep);
      for (const SigMap* m :
           {pk.buckets.get(), pk.entity_values.get(), &pk.patched_values,
            &pk.patched_buckets}) {
        if (m == nullptr) continue;
        for (const auto& [k, vals] : *m) {
          bytes += sizeof(NodeId) + vals.capacity() * sizeof(NodeId);
        }
      }
    }
  }
  return bytes;
}

size_t ProvenanceIndexBytes(const std::vector<Derivation>& derivations) {
  size_t bytes = derivations.capacity() * sizeof(Derivation);
  for (const Derivation& d : derivations) {
    bytes += d.premises.capacity() * sizeof(std::pair<NodeId, NodeId>) +
             d.triples.capacity() * sizeof(WitnessTriple);
  }
  return bytes;
}

bool EmContext::Identifies(const Candidate& c, const EqView& eq,
                           SearchStats* stats, bool unrestricted,
                           bool use_vf2) const {
  const NodeSet* n1 = unrestricted ? nullptr : c.nbr1;
  const NodeSet* n2 = unrestricted ? nullptr : c.nbr2;
  for (int ki : *c.keys) {
    const CompiledPattern& cp = compiled_[ki].cp;
    bool found =
        use_vf2
            ? IdentifiesByEnumeration(*g_, cp, c.e1, c.e2, eq, n1, n2, stats)
            : KeyIdentifies(*g_, cp, c.e1, c.e2, eq, n1, n2, stats);
    if (found) return true;  // early termination across keys
  }
  return false;
}

bool EmContext::IdentifiesWitness(const Candidate& c, const EqView& eq,
                                  int* key_out, Witness* witness,
                                  SearchStats* stats, bool unrestricted,
                                  bool use_vf2) const {
  const NodeSet* n1 = unrestricted ? nullptr : c.nbr1;
  const NodeSet* n2 = unrestricted ? nullptr : c.nbr2;
  for (int ki : *c.keys) {
    const CompiledPattern& cp = compiled_[ki].cp;
    bool found = use_vf2
                     ? IdentifiesByEnumeration(*g_, cp, c.e1, c.e2, eq, n1,
                                               n2, stats, witness)
                     : KeyIdentifiesWitness(*g_, cp, c.e1, c.e2, eq, n1, n2,
                                            witness, stats);
    if (found) {
      *key_out = ki;
      return true;
    }
  }
  return false;
}

Derivation EmContext::MakeDerivation(const Candidate& c, int key,
                                     const Witness& witness) const {
  const CompiledPattern& cp = compiled_[key].cp;
  Derivation d;
  d.e1 = std::min(c.e1, c.e2);
  d.e2 = std::max(c.e1, c.e2);
  d.key = key;
  for (size_t v = 0; v < cp.nodes.size(); ++v) {
    if (static_cast<int>(v) == cp.designated) continue;
    if (cp.nodes[v].kind != VarKind::kEntityVar) continue;
    auto [a, b] = witness[v];
    if (a == kNoNode || b == kNoNode || a == b) continue;
    d.premises.emplace_back(std::min(a, b), std::max(a, b));
  }
  for (const CompiledTriple& ct : cp.triples) {
    auto [s1, s2] = witness[ct.subject];
    auto [o1, o2] = witness[ct.object];
    if (s1 == kNoNode || o1 == kNoNode) continue;
    d.triples.push_back(WitnessTriple{s1, ct.pred, o1});
    if (s2 != kNoNode && o2 != kNoNode && (s2 != s1 || o2 != o1)) {
      d.triples.push_back(WitnessTriple{s2, ct.pred, o2});
    }
  }
  std::sort(d.premises.begin(), d.premises.end());
  d.premises.erase(std::unique(d.premises.begin(), d.premises.end()),
                   d.premises.end());
  std::sort(d.triples.begin(), d.triples.end());
  d.triples.erase(std::unique(d.triples.begin(), d.triples.end()),
                  d.triples.end());
  return d;
}

void internal::PairStreamer::EmitPair(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  if (!emitted_.insert(PackPair(a, b)).second) return;
  sink_->OnPair(a, b);
}

size_t internal::PairStreamer::EmitMerges(
    std::span<const std::pair<NodeId, NodeId>> merges) {
  if (sink_ == nullptr) return 0;
  for (const auto& [a, b] : merges) {
    NodeId ra = mirror_.Find(a);
    NodeId rb = mirror_.Find(b);
    if (ra == rb) continue;
    auto take = [&](NodeId root) {
      auto it = members_.find(root);
      if (it == members_.end()) return std::vector<NodeId>{root};
      std::vector<NodeId> m = std::move(it->second);
      members_.erase(it);
      return m;
    };
    std::vector<NodeId> ca = take(ra);
    std::vector<NodeId> cb = take(rb);
    // The pairs this merge newly implies: exactly the cross product of
    // the two classes it joins.
    for (NodeId x : ca) {
      for (NodeId y : cb) EmitPair(x, y);
    }
    mirror_.Union(ra, rb);
    ca.insert(ca.end(), cb.begin(), cb.end());
    members_[mirror_.Find(ra)] = std::move(ca);
  }
  return emitted_.size();
}

void internal::PairStreamer::SeedClasses(
    std::span<const std::pair<NodeId, NodeId>> pairs) {
  if (sink_ == nullptr) return;
  for (const auto& [a, b] : pairs) {
    // Pre-mark as emitted (a < b in MatchResult::pairs; normalize
    // defensively) so the cross products below and later merges skip
    // everything the previous run already streamed.
    emitted_.insert(PackPair(std::min(a, b), std::max(a, b)));
    NodeId ra = mirror_.Find(a);
    NodeId rb = mirror_.Find(b);
    if (ra == rb) continue;
    auto take = [&](NodeId root) {
      auto it = members_.find(root);
      if (it == members_.end()) return std::vector<NodeId>{root};
      std::vector<NodeId> m = std::move(it->second);
      members_.erase(it);
      return m;
    };
    std::vector<NodeId> ca = take(ra);
    std::vector<NodeId> cb = take(rb);
    mirror_.Union(ra, rb);
    ca.insert(ca.end(), cb.begin(), cb.end());
    members_[mirror_.Find(ra)] = std::move(ca);
  }
}

Status internal::PairStreamer::Finish(
    const std::vector<std::pair<NodeId, NodeId>>& final_pairs) {
  if (sink_ == nullptr) return Status::OK();
  for (const auto& [a, b] : final_pairs) {
    if (!emitted_.insert(PackPair(a, b)).second) continue;
    sink_->OnPair(a, b);
  }
  if (emitted_.size() != final_pairs.size()) {
    return Status::Internal("streamed pair count diverged from result");
  }
  return Status::OK();
}

}  // namespace gkeys
