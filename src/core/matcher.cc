#include "core/matcher.h"

#include <algorithm>
#include <numeric>

#include "core/chase.h"
#include "core/em_mapreduce.h"
#include "core/em_vertexcentric.h"
#include "core/provenance.h"
#include "eq/equivalence.h"

namespace gkeys {

namespace {

/// Reports prev \ cur to the sink (both pair lists sorted): the exact
/// retractions a removal delta caused, net of everything the fixpoint
/// re-derived. Called after the new result is final, so every reported
/// pair is genuinely gone. Returns the count for EmStats::pairs_retracted.
size_t ReportRetractedPairs(const std::vector<std::pair<NodeId, NodeId>>& prev,
                            const std::vector<std::pair<NodeId, NodeId>>& cur,
                            MatchSink* sink) {
  size_t retracted = 0;
  auto it = cur.begin();
  for (const auto& p : prev) {
    while (it != cur.end() && *it < p) ++it;
    if (it != cur.end() && *it == p) continue;
    ++retracted;
    if (sink != nullptr) sink->OnPairRetracted(p.first, p.second);
  }
  return retracted;
}

}  // namespace

Status Matcher::Validate(const MatchPlan& plan) const {
  if (!plan.valid()) {
    return Status::InvalidArgument(
        "cannot run an empty MatchPlan: obtain one from Matcher::Compile");
  }
  if (options_.processors < 1) {
    return Status::InvalidArgument("processors must be >= 1, got " +
                                   std::to_string(options_.processors));
  }
  if (options_.time_budget_seconds < 0) {
    return Status::InvalidArgument(
        "time_budget_seconds must be >= 0 (0 = unbounded)");
  }
  if (options_.bounded_messages < 0) {
    return Status::InvalidArgument(
        "bounded_messages must be >= 0 (0 = unbounded), got " +
        std::to_string(options_.bounded_messages));
  }
  if ((algorithm_ == Algorithm::kEmVc || algorithm_ == Algorithm::kEmOptVc) &&
      !plan.has_product_graph()) {
    return Status::FailedPrecondition(
        "the EMVC family needs the product-graph skeleton: compile the "
        "plan with PlanOptions::build_product_graph");
  }
  return Status::OK();
}

StatusOr<MatchResult> Matcher::RunWithSink(const MatchPlan& plan,
                                           MatchSink* sink) const {
  GKEYS_RETURN_IF_ERROR(Validate(plan));
  StatusOr<MatchResult> r = [&]() -> StatusOr<MatchResult> {
    switch (algorithm_) {
      case Algorithm::kNaiveChase: {
        // The oracle's own loop (core/chase.cc) over the plan's context,
        // so plan-based and standalone chase can never diverge.
        ChaseOptions copts;
        copts.record_provenance = options_.record_provenance;
        copts.time_budget_seconds = options_.time_budget_seconds;
        return RunChase(plan.context(), copts, options_.use_vf2, sink);
      }
      case Algorithm::kEmMr:
      case Algorithm::kEmVf2Mr:
      case Algorithm::kEmOptMr:
        return RunEmMapReduce(plan.context(), options_, sink);
      case Algorithm::kEmVc:
      case Algorithm::kEmOptVc:
        return RunEmVertexCentric(plan.context(), plan.product_graph(),
                                  options_, sink);
    }
    return Status::InvalidArgument("unknown algorithm");
  }();
  if (!r.ok()) return r;
  // Honest accounting for amortized prep: the plan was compiled once,
  // possibly long ago; every run still reports what that cost.
  r->stats.prep_seconds = plan.compile_seconds();
  r->stats.plan_bytes =
      plan.memory_bytes() + ProvenanceIndexBytes(r->derivations);
  return r;
}

bool Matcher::ChooseSeeded(const MatchPlan& plan, const MatchResult& prev,
                           const GraphDelta& delta, bool streaming) const {
  switch (rematch_options_.mode) {
    case RematchOptions::Mode::kForceSeed:
      return true;
    case RematchOptions::Mode::kForceFull:
      return false;
    case RematchOptions::Mode::kAuto:
      break;
  }
  if (delta.has_removals() && prev.derivations.empty() &&
      !prev.pairs.empty()) {
    // No provenance index to retract against: the retained seed would be
    // empty and every previously identified candidate would re-enter the
    // pipeline — a full run does the same work without the bookkeeping
    // (and a streaming sink re-receives everything either way).
    return false;
  }
  if (streaming) {
    // A fallback restarts the pair stream — every previously emitted
    // pair again. For a long-lived sink that cost dwarfs the model's
    // saving, so kAuto never falls back under a sink; kForceFull above
    // remains the explicit override.
    return true;
  }
  if (!plan.patched()) {
    // No dirty set to narrow the re-check, but seeding still skips the
    // re-derivation of everything already known.
    return true;
  }
  // The affected region as a share of the plan: when either the dirty
  // slice of L or the recompiled keyed entities approach the whole plan,
  // the seeded path re-checks nearly everything anyway and its wake-up
  // bookkeeping only adds overhead (the README amortization table's
  // ≥ 1 % delta rows are this regime).
  return plan.dirty_fraction() <= rematch_options_.max_dirty_fraction &&
         plan.affected_entity_fraction() <=
             rematch_options_.max_affected_fraction;
}

StatusOr<MatchResult> Matcher::RematchWithSink(const MatchPlan& plan,
                                               const MatchResult& prev,
                                               const GraphDelta& delta,
                                               MatchSink* sink) const {
  GKEYS_RETURN_IF_ERROR(Validate(plan));
  if (!ChooseSeeded(plan, prev, delta, /*streaming=*/sink != nullptr)) {
    // Full run of the patched plan — still exact for the post-delta
    // graph, just unseeded.
    StatusOr<MatchResult> r = RunWithSink(plan, sink);
    if (r.ok()) {
      r->stats.rematch_fallback = 1;
      if (delta.has_removals()) {
        r->stats.pairs_retracted =
            ReportRetractedPairs(prev.pairs, r->pairs, sink);
      }
    }
    return r;
  }

  RematchSeed seed;
  RetractionResult retained;  // owns the removal path's seed storage
  if (delta.has_removals()) {
    // Over-delete the derivations the removals invalidate (transitively
    // over premises); the survivors seed Eq (DRed — see RematchSeed).
    retained = RetractDerivations(plan.context().graph(), prev.derivations);
    seed.prev_pairs = retained.seed_pairs;
    seed.carried = retained.surviving;
  } else {
    // Additive: identification is monotone in G, so the whole previous
    // result is a sound seed and every previous derivation stays valid.
    seed.prev_pairs = prev.pairs;
    seed.carried = prev.derivations;
  }
  const auto& candidates = plan.context().candidates();
  std::vector<uint32_t> active;
  if (!plan.patched()) {
    // A freshly compiled plan carries no dirty set: seed Eq but re-check
    // every candidate (still skips work — seeded pairs are never
    // re-derived).
    active.resize(candidates.size());
    std::iota(active.begin(), active.end(), 0);
  } else {
    active.assign(plan.dirty_candidates().begin(),
                  plan.dirty_candidates().end());
    // Candidates whose pair fell out of the retained closure join the
    // dirty set: their pair may still be derivable through another
    // witness, which only a re-check can tell. Everything else kept its
    // previous outcome: a clean negative stays negative (removals only
    // shrink matches; additions are covered by the dirty set), and a
    // clean positive either survived retraction or is now active. The
    // retained closure is always a subset of the previous one, so equal
    // pair counts mean nothing was lost and the O(nodes + |L|) scan is
    // skipped — the common small-delta case stays delta-proportional.
    if (delta.has_removals() &&
        retained.seed_pairs.size() != prev.pairs.size()) {
      EquivalenceRelation prev_eq(plan.context().graph().NumNodes());
      for (const auto& [a, b] : prev.pairs) prev_eq.Union(a, b);
      for (uint32_t i = 0; i < candidates.size(); ++i) {
        const Candidate& c = candidates[i];
        if (prev_eq.Same(c.e1, c.e2) &&
            !retained.closure.Same(c.e1, c.e2)) {
          active.push_back(i);
        }
      }
      std::sort(active.begin(), active.end());
      active.erase(std::unique(active.begin(), active.end()), active.end());
    }
  }
  seed.active = active;

  StatusOr<MatchResult> r = [&]() -> StatusOr<MatchResult> {
    switch (algorithm_) {
      case Algorithm::kNaiveChase: {
        ChaseOptions copts;
        copts.record_provenance = options_.record_provenance;
        copts.time_budget_seconds = options_.time_budget_seconds;
        return RunChase(plan.context(), copts, options_.use_vf2, sink,
                        &seed);
      }
      case Algorithm::kEmMr:
      case Algorithm::kEmVf2Mr:
      case Algorithm::kEmOptMr:
        return RunEmMapReduce(plan.context(), options_, sink, &seed);
      case Algorithm::kEmVc:
      case Algorithm::kEmOptVc:
        return RunEmVertexCentric(plan.context(), plan.product_graph(),
                                  options_, sink, &seed);
    }
    return Status::InvalidArgument("unknown algorithm");
  }();
  if (!r.ok()) return r;
  r->stats.rematch_seeded = 1;
  r->stats.derivations_retracted = retained.retracted;
  if (delta.has_removals()) {
    r->stats.pairs_retracted = ReportRetractedPairs(prev.pairs, r->pairs, sink);
  }
  r->stats.prep_seconds = plan.compile_seconds();
  r->stats.plan_bytes =
      plan.memory_bytes() + ProvenanceIndexBytes(r->derivations);
  return r;
}

}  // namespace gkeys
