#include "core/matcher.h"

#include "core/chase.h"
#include "core/em_mapreduce.h"
#include "core/em_vertexcentric.h"

namespace gkeys {

Status Matcher::Validate(const MatchPlan& plan) const {
  if (!plan.valid()) {
    return Status::InvalidArgument(
        "cannot run an empty MatchPlan: obtain one from Matcher::Compile");
  }
  if (options_.processors < 1) {
    return Status::InvalidArgument("processors must be >= 1, got " +
                                   std::to_string(options_.processors));
  }
  if (options_.bounded_messages < 0) {
    return Status::InvalidArgument(
        "bounded_messages must be >= 0 (0 = unbounded), got " +
        std::to_string(options_.bounded_messages));
  }
  if ((algorithm_ == Algorithm::kEmVc || algorithm_ == Algorithm::kEmOptVc) &&
      !plan.has_product_graph()) {
    return Status::FailedPrecondition(
        "the EMVC family needs the product-graph skeleton: compile the "
        "plan with PlanOptions::build_product_graph");
  }
  return Status::OK();
}

StatusOr<MatchResult> Matcher::RunWithSink(const MatchPlan& plan,
                                           MatchSink* sink) const {
  GKEYS_RETURN_IF_ERROR(Validate(plan));
  StatusOr<MatchResult> r = [&]() -> StatusOr<MatchResult> {
    switch (algorithm_) {
      case Algorithm::kNaiveChase:
        // The oracle's own loop (core/chase.cc) over the plan's context,
        // so plan-based and standalone chase can never diverge.
        return RunChase(plan.context(), ChaseOptions{}, options_.use_vf2,
                        sink);
      case Algorithm::kEmMr:
      case Algorithm::kEmVf2Mr:
      case Algorithm::kEmOptMr:
        return RunEmMapReduce(plan.context(), options_, sink);
      case Algorithm::kEmVc:
      case Algorithm::kEmOptVc:
        return RunEmVertexCentric(plan.context(), plan.product_graph(),
                                  options_, sink);
    }
    return Status::InvalidArgument("unknown algorithm");
  }();
  if (!r.ok()) return r;
  // Honest accounting for amortized prep: the plan was compiled once,
  // possibly long ago; every run still reports what that cost.
  r->stats.prep_seconds = plan.compile_seconds();
  r->stats.plan_bytes = plan.memory_bytes();
  return r;
}

StatusOr<MatchResult> Matcher::RematchWithSink(const MatchPlan& plan,
                                               const MatchResult& prev,
                                               const GraphDelta& delta,
                                               MatchSink* sink) const {
  GKEYS_RETURN_IF_ERROR(Validate(plan));
  if (delta.has_removals()) {
    // The chase is monotone only under additions: a removed triple can
    // invalidate previous derivations, so the seed would be unsound.
    // The patched plan is still exact for the post-delta graph — run it
    // in full.
    return RunWithSink(plan, sink);
  }
  RematchSeed seed;
  seed.prev_pairs = prev.pairs;
  std::vector<uint32_t> all;
  if (plan.patched()) {
    seed.active = plan.dirty_candidates();
  } else {
    // A freshly compiled plan carries no dirty set: seed Eq but re-check
    // every candidate (still skips work — seeded pairs are never
    // re-derived).
    all.resize(plan.context().candidates().size());
    for (uint32_t i = 0; i < all.size(); ++i) all[i] = i;
    seed.active = all;
  }
  StatusOr<MatchResult> r = [&]() -> StatusOr<MatchResult> {
    switch (algorithm_) {
      case Algorithm::kNaiveChase:
        return RunChase(plan.context(), ChaseOptions{}, options_.use_vf2,
                        sink, &seed);
      case Algorithm::kEmMr:
      case Algorithm::kEmVf2Mr:
      case Algorithm::kEmOptMr:
        return RunEmMapReduce(plan.context(), options_, sink, &seed);
      case Algorithm::kEmVc:
      case Algorithm::kEmOptVc:
        return RunEmVertexCentric(plan.context(), plan.product_graph(),
                                  options_, sink, &seed);
    }
    return Status::InvalidArgument("unknown algorithm");
  }();
  if (!r.ok()) return r;
  r->stats.prep_seconds = plan.compile_seconds();
  r->stats.plan_bytes = plan.memory_bytes();
  return r;
}

}  // namespace gkeys
