#ifndef GKEYS_MAPREDUCE_MAPREDUCE_H_
#define GKEYS_MAPREDUCE_MAPREDUCE_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <iterator>
#include <utility>
#include <vector>

#include "common/thread_pool.h"

namespace gkeys {
namespace mapreduce {

/// Collects (key, value) pairs emitted by a mapper or reducer.
template <typename K, typename V>
class Emitter {
 public:
  void Emit(K key, V value) {
    pairs_.emplace_back(std::move(key), std::move(value));
  }
  std::vector<std::pair<K, V>>& pairs() { return pairs_; }
  const std::vector<std::pair<K, V>>& pairs() const { return pairs_; }

 private:
  std::vector<std::pair<K, V>> pairs_;
};

/// Per-round counters exposed so the harness can report shuffle volumes.
struct RoundStats {
  size_t map_inputs = 0;
  size_t map_outputs = 0;      // intermediate pairs shuffled
  size_t reduce_groups = 0;    // distinct intermediate keys
  size_t reduce_outputs = 0;
};

/// An in-process MapReduce runtime that simulates Hadoop for the EMMR
/// family (paper §4): `p` worker threads stand in for `p` processors.
///
/// Execution of one job faithfully follows the model:
///   1. map phase   — inputs are split into contiguous chunks, one mapper
///                    task per chunk, all `p` workers run concurrently;
///   2. shuffle     — intermediate pairs are hash-partitioned by key into
///                    `p` partitions and grouped (sort within partition);
///   3. barrier     — reducers start only after every mapper finished
///                    (the synchronization policy whose stragglers §5
///                    blames for EMMR's overhead — deliberately kept);
///   4. reduce phase— one reducer task per partition.
///
/// Invariant inputs (the graph, keys, d-neighbors) are captured by the
/// mapper closures, standing in for Haloop-style distributed-cache files.
///
/// K2 must be hashable and `<`-comparable with std::hash / operator<.
template <typename K1, typename V1, typename K2, typename V2, typename K3,
          typename V3>
class Job {
 public:
  using MapFn =
      std::function<void(const K1&, const V1&, Emitter<K2, V2>&)>;
  using ReduceFn = std::function<void(const K2&, const std::vector<V2>&,
                                      Emitter<K3, V3>&)>;

  Job(MapFn map, ReduceFn reduce)
      : map_(std::move(map)), reduce_(std::move(reduce)) {}

  /// Runs one MapReduce round over `inputs` with `p` workers.
  std::vector<std::pair<K3, V3>> Run(
      const std::vector<std::pair<K1, V1>>& inputs, int p,
      RoundStats* stats = nullptr) {
    p = std::max(1, p);
    // ---- Map phase: each mapper writes p partitioned spill buckets
    // (like Hadoop's partitioned map output files). ----
    std::vector<Emitter<K2, V2>> map_out(p);
    std::vector<std::vector<std::vector<std::pair<K2, V2>>>> spills(
        p, std::vector<std::vector<std::pair<K2, V2>>>(p));
    ParallelShards(p, inputs.size(), [&](int shard, size_t begin, size_t end) {
      auto& em = map_out[shard];
      for (size_t i = begin; i < end; ++i) {
        map_(inputs[i].first, inputs[i].second, em);
        for (auto& kv : em.pairs()) {
          size_t part = std::hash<K2>{}(kv.first) % p;
          spills[shard][part].push_back(std::move(kv));
        }
        em.pairs().clear();
      }
    });
    size_t total_intermediate = 0;
    for (const auto& shard : spills) {
      for (const auto& bucket : shard) total_intermediate += bucket.size();
    }
    // ---- Barrier, then shuffle-merge + reduce, one task per partition.
    std::vector<Emitter<K3, V3>> red_out(p);
    std::vector<size_t> group_counts(p, 0);
    ParallelShards(p, static_cast<size_t>(p),
                   [&](int, size_t begin, size_t end) {
      for (size_t part = begin; part < end; ++part) {
        std::vector<std::pair<K2, V2>> pairs;
        for (int shard = 0; shard < p; ++shard) {
          auto& bucket = spills[shard][part];
          std::move(bucket.begin(), bucket.end(),
                    std::back_inserter(pairs));
          bucket.clear();
        }
        std::sort(pairs.begin(), pairs.end(),
                  [](const auto& a, const auto& b) {
                    return a.first < b.first;
                  });
        size_t i = 0;
        while (i < pairs.size()) {
          size_t j = i;
          std::vector<V2> values;
          while (j < pairs.size() && pairs[j].first == pairs[i].first) {
            values.push_back(std::move(pairs[j].second));
            ++j;
          }
          reduce_(pairs[i].first, values, red_out[part]);
          ++group_counts[part];
          i = j;
        }
      }
    });
    // ---- Collect ----
    std::vector<std::pair<K3, V3>> output;
    size_t groups = 0, outputs = 0;
    for (size_t part = 0; part < red_out.size(); ++part) {
      groups += group_counts[part];
      outputs += red_out[part].pairs().size();
      for (auto& kv : red_out[part].pairs()) output.push_back(std::move(kv));
    }
    if (stats != nullptr) {
      stats->map_inputs = inputs.size();
      stats->map_outputs = total_intermediate;
      stats->reduce_groups = groups;
      stats->reduce_outputs = outputs;
    }
    return output;
  }

 private:
  MapFn map_;
  ReduceFn reduce_;
};

}  // namespace mapreduce
}  // namespace gkeys

#endif  // GKEYS_MAPREDUCE_MAPREDUCE_H_
