#include "isomorph/eval_search.h"

#include <utility>
#include <vector>

namespace gkeys {

namespace {

/// Shared state of one combined search.
struct SearchContext {
  const Graph& g;
  const CompiledPattern& cp;
  const EqView& eq;
  const NodeSet* n1;
  const NodeSet* n2;
  SearchStats* stats;
  // m: per pattern node, the instantiated pair; kNoNode == ⊥. References
  // a per-thread buffer: the engines call this once per candidate pair
  // per round, and the buffer (pattern-sized, so tiny and bounded) would
  // otherwise be reallocated on every call.
  std::vector<std::pair<NodeId, NodeId>>& m;

  bool InSide1(NodeId n) const { return n1 == nullptr || n1->Contains(n); }
  bool InSide2(NodeId n) const { return n2 == nullptr || n2->Contains(n); }

  /// Triple membership in the induced subgraph Gd (side-specific).
  bool TripleInSide1(NodeId s, Symbol p, NodeId o) const {
    return InSide1(s) && InSide1(o) && g.HasTriple(s, p, o);
  }
  bool TripleInSide2(NodeId s, Symbol p, NodeId o) const {
    return InSide2(s) && InSide2(o) && g.HasTriple(s, p, o);
  }

  /// Feasibility conditions (paper §4.1) for assigning (c1, c2) to pattern
  /// node v. Assumes v is currently ⊥.
  bool Feasible(int v, NodeId c1, NodeId c2) {
    if (stats != nullptr) ++stats->feasibility_checks;
    const CompiledNode& pn = cp.nodes[v];
    // (2) Equality / kind conditions.
    switch (pn.kind) {
      case VarKind::kDesignated:
        return false;  // x is pre-instantiated, never re-assigned
      case VarKind::kEntityVar:
        if (!g.IsEntity(c1) || !g.IsEntity(c2)) return false;
        if (g.entity_type(c1) != pn.type || g.entity_type(c2) != pn.type) {
          return false;
        }
        if (!eq.Same(c1, c2)) return false;
        break;
      case VarKind::kValueVar:
        // Equal values are one node, so value equality is id equality.
        if (!g.IsValue(c1) || c1 != c2) return false;
        break;
      case VarKind::kWildcard:
        if (!g.IsEntity(c1) || !g.IsEntity(c2)) return false;
        if (g.entity_type(c1) != pn.type || g.entity_type(c2) != pn.type) {
          return false;
        }
        break;
      case VarKind::kConstant:
        if (c1 != pn.constant_node || c2 != pn.constant_node) return false;
        break;
    }
    if (!InSide1(c1) || !InSide2(c2)) return false;
    // (1) Injective, per coordinate.
    for (const auto& [a, b] : m) {
      if (a == c1 && a != kNoNode) return false;
      if (b == c2 && b != kNoNode) return false;
    }
    // (3) Guided expansion: all triples between v and instantiated nodes
    // must be realized on both sides.
    for (int t : cp.incident[v]) {
      const CompiledTriple& ct = cp.triples[t];
      int other = ct.subject == v ? ct.object : ct.subject;
      NodeId o1, o2, s1, s2;
      if (other == v) {  // self-loop triple (v, p, v)
        s1 = c1; o1 = c1; s2 = c2; o2 = c2;
      } else if (ct.subject == v) {
        if (m[other].first == kNoNode) continue;
        s1 = c1; s2 = c2;
        o1 = m[other].first; o2 = m[other].second;
      } else {
        if (m[other].first == kNoNode) continue;
        s1 = m[other].first; s2 = m[other].second;
        o1 = c1; o2 = c2;
      }
      if (!TripleInSide1(s1, ct.pred, o1)) return false;
      if (!TripleInSide2(s2, ct.pred, o2)) return false;
    }
    return true;
  }

  /// Recursive guided expansion over cp.plan[step..]. Returns true on the
  /// first full instantiation (early termination).
  bool Expand(size_t step) {
    if (step == cp.plan.size()) {
      if (stats != nullptr) ++stats->full_instantiations;
      return true;
    }
    const SearchStep& ss = cp.plan[step];
    const CompiledTriple& ct = cp.triples[ss.via_triple];
    int anchor = ss.forward ? ct.subject : ct.object;
    auto [a1, a2] = m[anchor];
    // Candidates for the new node: neighbors of the anchor pair along the
    // plan triple, on each side.
    const auto edges1 = ss.forward ? g.Out(a1) : g.In(a1);
    const auto edges2 = ss.forward ? g.Out(a2) : g.In(a2);
    for (const Edge& e1 : edges1) {
      if (e1.pred != ct.pred) continue;
      for (const Edge& e2 : edges2) {
        if (e2.pred != ct.pred) continue;
        if (stats != nullptr) ++stats->expansions;
        if (!Feasible(ss.node, e1.dst, e2.dst)) continue;
        m[ss.node] = {e1.dst, e2.dst};
        if (Expand(step + 1)) return true;
        m[ss.node] = {kNoNode, kNoNode};  // backtrack
      }
    }
    return false;
  }
};

}  // namespace

bool KeyIdentifies(const Graph& g, const CompiledPattern& cp, NodeId e1,
                   NodeId e2, const EqView& eq, const NodeSet* n1,
                   const NodeSet* n2, SearchStats* stats) {
  return KeyIdentifiesWitness(g, cp, e1, e2, eq, n1, n2, nullptr, stats);
}

bool KeyIdentifiesWitness(const Graph& g, const CompiledPattern& cp,
                          NodeId e1, NodeId e2, const EqView& eq,
                          const NodeSet* n1, const NodeSet* n2,
                          Witness* witness, SearchStats* stats) {
  if (witness != nullptr) witness->clear();
  if (!cp.matchable) return false;
  const CompiledNode& x = cp.nodes[cp.designated];
  if (!g.IsEntity(e1) || !g.IsEntity(e2)) return false;
  if (g.entity_type(e1) != x.type || g.entity_type(e2) != x.type) return false;

  static thread_local std::vector<std::pair<NodeId, NodeId>> m_scratch;
  m_scratch.assign(cp.nodes.size(), {kNoNode, kNoNode});
  SearchContext ctx{g, cp, eq, n1, n2, stats, m_scratch};
  if (!ctx.InSide1(e1) || !ctx.InSide2(e2)) return false;
  ctx.m[cp.designated] = {e1, e2};
  // Self-loops on x must hold before expansion.
  for (int t : cp.incident[cp.designated]) {
    const CompiledTriple& ct = cp.triples[t];
    if (ct.subject == cp.designated && ct.object == cp.designated) {
      if (!ctx.TripleInSide1(e1, ct.pred, e1)) return false;
      if (!ctx.TripleInSide2(e2, ct.pred, e2)) return false;
    }
  }
  if (!ctx.Expand(0)) return false;
  if (witness != nullptr) *witness = ctx.m;
  return true;
}

bool MatchesAt(const Graph& g, const CompiledPattern& cp, NodeId e,
               const NodeSet* restrict_to, SearchStats* stats) {
  EqView identity;  // Eq0: node identity only
  return KeyIdentifies(g, cp, e, e, identity, restrict_to, restrict_to,
                       stats);
}

}  // namespace gkeys
