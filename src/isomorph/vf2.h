#ifndef GKEYS_ISOMORPH_VF2_H_
#define GKEYS_ISOMORPH_VF2_H_

#include <cstdint>
#include <vector>

#include "eq/equivalence.h"
#include "graph/graph.h"
#include "graph/neighborhood.h"
#include "isomorph/eval_search.h"
#include "pattern/pattern.h"

namespace gkeys {

/// One complete valuation ν of a pattern: graph node per pattern node.
using Valuation = std::vector<NodeId>;

/// VF2-style subgraph-isomorphism enumeration: all matches of Q(x) at `e`
/// in G (restricted to `restrict_to` when given). This is the conventional
/// algorithm [13] the paper's EMVF2MR baseline plugs in: it enumerates every
/// match (no early termination) before the coincidence check. `max_matches`
/// caps the enumeration as a safety valve (0 = unlimited); the cap is
/// generous enough never to trigger in the shipped tests/benches.
std::vector<Valuation> EnumerateMatches(const Graph& g,
                                        const CompiledPattern& cp, NodeId e,
                                        const NodeSet* restrict_to = nullptr,
                                        size_t max_matches = 0,
                                        SearchStats* stats = nullptr);

/// Whether matches S1 (at e1, under ν1) and S2 (at e2, under ν2) coincide,
/// S1(e1) ≅_Q S2(e2) under Eq (paper §2.2 / §3.1): entity variables other
/// than x map to Eq-equivalent entities, value variables to equal values;
/// wildcards and x are unconstrained.
bool Coincide(const Graph& g, const CompiledPattern& cp, const Valuation& v1,
              const Valuation& v2, const EqView& eq);

/// The naive decision procedure used by EMVF2MR (paper §4.1): enumerate all
/// matches at e1 and all at e2 with VF2, then test every pair of matches
/// for coincidence. Semantically identical to KeyIdentifies but without
/// combined search or early termination. When `witness` is non-null it is
/// filled on success with the combined (side1, side2) vector of the first
/// coinciding match pair — the same shape KeyIdentifiesWitness produces —
/// so provenance recording works under VF2 enumeration too.
bool IdentifiesByEnumeration(const Graph& g, const CompiledPattern& cp,
                             NodeId e1, NodeId e2, const EqView& eq,
                             const NodeSet* n1 = nullptr,
                             const NodeSet* n2 = nullptr,
                             SearchStats* stats = nullptr,
                             Witness* witness = nullptr);

}  // namespace gkeys

#endif  // GKEYS_ISOMORPH_VF2_H_
