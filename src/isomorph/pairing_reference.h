#ifndef GKEYS_ISOMORPH_PAIRING_REFERENCE_H_
#define GKEYS_ISOMORPH_PAIRING_REFERENCE_H_

#include <unordered_set>
#include <vector>

#include "isomorph/pairing.h"

namespace gkeys {

/// The pre-dense-worklist ComputeMaxPairing, kept verbatim as a reference
/// oracle: per-pattern-node unordered_set pair tables, whole-table
/// rescans until no change. The pairing property tests assert the dense
/// engine agrees with it on every observable, and bench_micro_iso keeps
/// it timed next to the dense engine so the speedup stays measured per
/// commit. Never call this from production code.
inline PairingResult ReferenceMaxPairing(const Graph& g,
                                         const CompiledPattern& cp,
                                         NodeId e1, NodeId e2,
                                         const NodeSet& n1, const NodeSet& n2,
                                         bool collect_pairs = false) {
  using PairSet = std::unordered_set<uint64_t>;
  auto pack = [](NodeId a, NodeId b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  };
  auto first = [](uint64_t p) { return static_cast<NodeId>(p >> 32); };
  auto second = [](uint64_t p) {
    return static_cast<NodeId>(p & 0xffffffffu);
  };

  PairingResult result;
  if (!cp.matchable) return result;

  const size_t num_nodes = cp.nodes.size();
  std::vector<PairSet> cand(num_nodes);

  // Initialization: all locally compatible pairs (condition 2a of §4.2).
  auto entities_of_type = [&](const NodeSet& side, Symbol type) {
    std::vector<NodeId> out;
    for (NodeId n : side) {
      if (g.IsEntity(n) && g.entity_type(n) == type) out.push_back(n);
    }
    return out;
  };
  for (size_t v = 0; v < num_nodes; ++v) {
    const CompiledNode& pn = cp.nodes[v];
    switch (pn.kind) {
      case VarKind::kDesignated:
      case VarKind::kEntityVar:
      case VarKind::kWildcard: {
        auto left = entities_of_type(n1, pn.type);
        auto right = entities_of_type(n2, pn.type);
        for (NodeId a : left) {
          for (NodeId b : right) cand[v].insert(pack(a, b));
        }
        break;
      }
      case VarKind::kValueVar:
        for (NodeId n : n1) {
          if (g.IsValue(n) && n2.Contains(n)) cand[v].insert(pack(n, n));
        }
        break;
      case VarKind::kConstant:
        if (pn.constant_node != kNoNode && n1.Contains(pn.constant_node) &&
            n2.Contains(pn.constant_node)) {
          cand[v].insert(pack(pn.constant_node, pn.constant_node));
        }
        break;
    }
  }

  // Fixpoint pruning (condition 2b): delete triples lacking a witness
  // along some incident pattern edge.
  auto has_witness = [&](NodeId s1, NodeId s2, const CompiledTriple& ct,
                         bool v_is_subject) -> bool {
    int other = v_is_subject ? ct.object : ct.subject;
    const auto edges1 = v_is_subject ? g.Out(s1) : g.In(s1);
    const auto edges2 = v_is_subject ? g.Out(s2) : g.In(s2);
    for (const Edge& a : edges1) {
      if (a.pred != ct.pred || !n1.Contains(a.dst)) continue;
      for (const Edge& b : edges2) {
        if (b.pred != ct.pred || !n2.Contains(b.dst)) continue;
        if (cand[other].count(pack(a.dst, b.dst)) > 0) return true;
      }
    }
    return false;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t v = 0; v < num_nodes; ++v) {
      for (auto it = cand[v].begin(); it != cand[v].end();) {
        NodeId s1 = first(*it), s2 = second(*it);
        bool ok = true;
        for (int t : cp.incident[v]) {
          const CompiledTriple& ct = cp.triples[t];
          if (ct.subject == static_cast<int>(v) &&
              !has_witness(s1, s2, ct, /*v_is_subject=*/true)) {
            ok = false;
            break;
          }
          if (ct.object == static_cast<int>(v) &&
              !has_witness(s1, s2, ct, /*v_is_subject=*/false)) {
            ok = false;
            break;
          }
        }
        if (!ok) {
          it = cand[v].erase(it);
          changed = true;
        } else {
          ++it;
        }
      }
    }
  }

  result.paired = cand[cp.designated].count(pack(e1, e2)) > 0;
  if (result.paired) {
    PairSet dedup;
    std::vector<NodeId> r1, r2;
    for (const PairSet& ps : cand) {
      result.relation_size += ps.size();
      for (uint64_t p : ps) {
        r1.push_back(first(p));
        r2.push_back(second(p));
        if (collect_pairs && dedup.insert(p).second) {
          result.pairs.push_back(p);
        }
      }
    }
    result.reduced1 = NodeSet(std::move(r1));
    result.reduced2 = NodeSet(std::move(r2));
  }
  return result;
}

}  // namespace gkeys

#endif  // GKEYS_ISOMORPH_PAIRING_REFERENCE_H_
