#ifndef GKEYS_ISOMORPH_EVAL_SEARCH_H_
#define GKEYS_ISOMORPH_EVAL_SEARCH_H_

#include <cstdint>

#include "eq/equivalence.h"
#include "graph/graph.h"
#include "graph/neighborhood.h"
#include "pattern/pattern.h"

namespace gkeys {

/// Counters reported by the matchers; the ablation benchmarks aggregate
/// these to reproduce the paper's "redundant checking reduced by N%" and
/// "EvalMR vs VF2" claims.
struct SearchStats {
  uint64_t expansions = 0;          // candidate pairs tried
  uint64_t feasibility_checks = 0;  // feasibility condition evaluations
  uint64_t full_instantiations = 0; // complete vectors found
  void MergeFrom(const SearchStats& o) {
    expansions += o.expansions;
    feasibility_checks += o.feasibility_checks;
    full_instantiations += o.full_instantiations;
  }
};

/// Procedure EvalMR (paper §4.1): decides (Gd1 ∪ Gd2, Eq, {Q}) |= (e1, e2)
/// by a single combined backtracking search that instantiates each pattern
/// node with a *pair* (s1, s2), instead of enumerating the matches of Q at
/// e1 and e2 separately and intersecting. Terminates as soon as one fully
/// instantiated vector is found (early termination, Lemma 8).
///
/// Feasibility conditions for m[s_Q] = (s1, s2):
///   1. injective per side: s1 fresh among first coordinates, s2 among
///      second coordinates;
///   2. equality: entity variable ⇒ (s1, s2) ∈ Eq; value variable ⇒ equal
///      values; wildcard ⇒ same-type entities (identity NOT required);
///      constant d ⇒ s1 = s2 = d;
///   3. guided expansion: every pattern triple between instantiated nodes
///      is realized in Gd1 on the first coordinates and Gd2 on the second.
///
/// `n1` / `n2` optionally restrict the search to node subsets (d-neighbors,
/// possibly pairing-reduced, §4.2); nullptr means "all of G". The graph
/// must be finalized.
bool KeyIdentifies(const Graph& g, const CompiledPattern& cp, NodeId e1,
                   NodeId e2, const EqView& eq, const NodeSet* n1 = nullptr,
                   const NodeSet* n2 = nullptr, SearchStats* stats = nullptr);

/// The witness of one successful identification: the full instantiation
/// vector m (one (side1, side2) pair per pattern node). Witnesses chain
/// into the proof graphs of Theorem 2 — each entity-variable pair in a
/// witness is a fact the chase derived earlier (or node identity).
using Witness = std::vector<std::pair<NodeId, NodeId>>;

/// KeyIdentifies variant that returns the witness vector on success
/// (empty on failure). Used by the provenance-recording chase.
bool KeyIdentifiesWitness(const Graph& g, const CompiledPattern& cp,
                          NodeId e1, NodeId e2, const EqView& eq,
                          const NodeSet* n1, const NodeSet* n2,
                          Witness* witness, SearchStats* stats = nullptr);

/// Single-sided variant: does G match Q(x) at e (paper §2.1)? Used by the
/// key-satisfaction checker `Satisfies` and by tests. Equivalent to
/// KeyIdentifies(g, cp, e, e, identity-Eq).
bool MatchesAt(const Graph& g, const CompiledPattern& cp, NodeId e,
               const NodeSet* restrict_to = nullptr,
               SearchStats* stats = nullptr);

}  // namespace gkeys

#endif  // GKEYS_ISOMORPH_EVAL_SEARCH_H_
