#include "isomorph/pairing.h"

#include <algorithm>
#include <optional>
#include <vector>

namespace gkeys {

namespace {

/// A compact row-indexed adjacency: Row(i) lists the dense candidate ids
/// reachable from candidate i along one pattern triple on one side.
struct Csr {
  std::vector<uint32_t> offsets;
  std::vector<uint32_t> targets;

  void Reset(size_t rows) {
    offsets.assign(rows + 1, 0);
    targets.clear();
  }

  std::span<const uint32_t> Row(size_t i) const {
    return {targets.data() + offsets[i], offsets[i + 1] - offsets[i]};
  }
};

/// Fills `rev` with the transpose of `fwd` (`out_rows` target rows).
void Transpose(const Csr& fwd, size_t out_rows, Csr* rev,
               std::vector<uint32_t>* cursor) {
  rev->offsets.assign(out_rows + 1, 0);
  for (uint32_t t : fwd.targets) ++rev->offsets[t + 1];
  for (size_t i = 1; i < rev->offsets.size(); ++i) {
    rev->offsets[i] += rev->offsets[i - 1];
  }
  rev->targets.resize(fwd.targets.size());
  cursor->assign(rev->offsets.begin(), rev->offsets.end() - 1);
  for (size_t i = 0; i + 1 < fwd.offsets.size(); ++i) {
    for (uint32_t j = fwd.offsets[i]; j < fwd.offsets[i + 1]; ++j) {
      rev->targets[(*cursor)[fwd.targets[j]]++] =
          static_cast<uint32_t>(i);
    }
  }
}

/// Candidate domains and the pair relation of one pattern node. dom1/dom2
/// are ascending NodeIds; rel is a |dom1|×|dom2| bitset, row-major in
/// 64-bit words (`words` per row, tail bits always zero).
struct NodeState {
  std::vector<NodeId> dom1, dom2;
  size_t words = 0;
  std::vector<uint64_t> rel;
};

/// Witness adjacency of one pattern triple (subject s, object o): dense
/// candidate ids of s mapped to the ids of o they can reach along the
/// triple's predicate, per side, plus the transposes (for deletion
/// propagation) and per-right-candidate column masks (so a support check
/// is rows-of-interest ANDed against one mask, word by word).
struct TripleState {
  Csr lfwd;  // s left id  -> o left ids
  Csr lrev;  // o left id  -> s left ids
  Csr rfwd;  // s right id -> o right ids
  Csr rrev;  // o right id -> s right ids
  std::vector<uint64_t> fwd_mask;  // [s right id] × o.words
  std::vector<uint64_t> rev_mask;  // [o right id] × s.words
};

struct Deletion {
  uint32_t node, i, j;
};

}  // namespace

struct PairingScratch::State {
  // Outer vectors only ever grow so inner buffers keep their capacity.
  std::vector<NodeState> nodes;
  std::vector<TripleState> triples;
  std::vector<Deletion> worklist;
  std::vector<uint32_t> cursor;      // Transpose scratch
  std::vector<uint64_t> colmask;     // column-occupancy scratch
  std::vector<NodeId> collect1, collect2;
  std::vector<uint64_t> pair_buf;
};

PairingScratch::PairingScratch() : state_(std::make_unique<State>()) {}
PairingScratch::~PairingScratch() = default;
PairingScratch::PairingScratch(PairingScratch&&) noexcept = default;
PairingScratch& PairingScratch::operator=(PairingScratch&&) noexcept =
    default;

class PairingEngine {
 public:
  PairingEngine(const Graph& g, const CompiledPattern& cp, const NodeSet& n1,
                const NodeSet& n2, PairingScratch::State& st)
      : g_(g), cp_(cp), n1_(n1), n2_(n2), st_(st) {
    if (st_.nodes.size() < cp.nodes.size()) st_.nodes.resize(cp.nodes.size());
    if (st_.triples.size() < cp.triples.size()) {
      st_.triples.resize(cp.triples.size());
    }
    st_.worklist.clear();
  }

  PairingResult Run(NodeId e1, NodeId e2, bool collect_pairs);

 private:
  static size_t Words(size_t cols) { return (cols + 63) / 64; }

  uint64_t* RelRow(NodeState& ns, size_t i) {
    return ns.rel.data() + i * ns.words;
  }

  bool TestBit(const NodeState& ns, size_t i, size_t j) const {
    return (ns.rel[i * ns.words + (j >> 6)] >> (j & 63)) & 1;
  }

  void ClearBit(NodeState& ns, size_t i, size_t j) {
    ns.rel[i * ns.words + (j >> 6)] &= ~(uint64_t{1} << (j & 63));
  }

  static int IndexOf(const std::vector<NodeId>& dom, NodeId n) {
    auto it = std::lower_bound(dom.begin(), dom.end(), n);
    if (it == dom.end() || *it != n) return -1;
    return static_cast<int>(it - dom.begin());
  }

  /// Invokes fn(dst) for every out-edge of `n` labeled `pred`; a binary
  /// search narrows finalized (sorted) adjacency to the predicate run.
  template <typename Fn>
  void ForEachOut(NodeId n, Symbol pred, Fn&& fn) const {
    std::span<const Edge> es = g_.Out(n);
    if (g_.finalized()) {
      auto it = std::lower_bound(es.begin(), es.end(), Edge{pred, 0});
      for (; it != es.end() && it->pred == pred; ++it) fn(it->dst);
    } else {
      for (const Edge& e : es) {
        if (e.pred == pred) fn(e.dst);
      }
    }
  }

  /// Builds dom1/dom2 of every pattern node and the initial (locally
  /// compatible) relation. Returns false when some domain is empty: the
  /// pattern is connected, so the fixpoint would wipe every relation and
  /// nothing can pair.
  bool BuildDomains();

  /// Builds the per-triple witness adjacency and column masks.
  void BuildAdjacency();

  /// Whether pair (i, j) of node v still has a witness along triple t in
  /// the given role: some reachable pair of the other endpoint survives.
  bool HasSupport(int /*v*/, uint32_t i, uint32_t j, int t,
                  bool as_subject) const {
    const TripleState& ts = st_.triples[t];
    const CompiledTriple& ct = cp_.triples[t];
    int other = as_subject ? ct.object : ct.subject;
    const NodeState& os = st_.nodes[other];
    const Csr& rows = as_subject ? ts.lfwd : ts.lrev;
    const std::vector<uint64_t>& masks =
        as_subject ? ts.fwd_mask : ts.rev_mask;
    const uint64_t* mask = masks.data() + j * os.words;
    for (uint32_t i2 : rows.Row(i)) {
      const uint64_t* row = os.rel.data() + i2 * os.words;
      for (size_t w = 0; w < os.words; ++w) {
        if (row[w] & mask[w]) return true;
      }
    }
    return false;
  }

  /// Whether pair (i, j) of node v is supported along every incident
  /// triple (condition 2b of §4.2).
  bool Supported(int v, uint32_t i, uint32_t j) const {
    for (int t : cp_.incident[v]) {
      const CompiledTriple& ct = cp_.triples[t];
      if (ct.subject == v && !HasSupport(v, i, j, t, /*as_subject=*/true)) {
        return false;
      }
      if (ct.object == v && !HasSupport(v, i, j, t, /*as_subject=*/false)) {
        return false;
      }
    }
    return true;
  }

  void Delete(uint32_t v, uint32_t i, uint32_t j) {
    ClearBit(st_.nodes[v], i, j);
    st_.worklist.push_back(Deletion{v, i, j});
  }

  /// Drains the worklist: each deleted pair re-checks exactly the
  /// neighbor pairs whose witness it could have been (its adjacency
  /// preimage along each incident triple), so propagation is O(degree)
  /// per deletion instead of a full-relation rescan.
  void Propagate();

  const Graph& g_;
  const CompiledPattern& cp_;
  const NodeSet& n1_;
  const NodeSet& n2_;
  PairingScratch::State& st_;
};

bool PairingEngine::BuildDomains() {
  for (size_t v = 0; v < cp_.nodes.size(); ++v) {
    const CompiledNode& pn = cp_.nodes[v];
    NodeState& ns = st_.nodes[v];
    ns.dom1.clear();
    ns.dom2.clear();
    switch (pn.kind) {
      case VarKind::kDesignated:
      case VarKind::kEntityVar:
      case VarKind::kWildcard:
        for (NodeId n : n1_) {
          if (g_.IsEntity(n) && g_.entity_type(n) == pn.type) {
            ns.dom1.push_back(n);
          }
        }
        for (NodeId n : n2_) {
          if (g_.IsEntity(n) && g_.entity_type(n) == pn.type) {
            ns.dom2.push_back(n);
          }
        }
        break;
      case VarKind::kValueVar:
        for (NodeId n : n1_) {
          if (g_.IsValue(n) && n2_.Contains(n)) ns.dom1.push_back(n);
        }
        ns.dom2 = ns.dom1;
        break;
      case VarKind::kConstant:
        if (pn.constant_node != kNoNode && n1_.Contains(pn.constant_node) &&
            n2_.Contains(pn.constant_node)) {
          ns.dom1.push_back(pn.constant_node);
          ns.dom2.push_back(pn.constant_node);
        }
        break;
    }
    if (ns.dom1.empty() || ns.dom2.empty()) return false;

    const size_t rows = ns.dom1.size();
    const size_t cols = ns.dom2.size();
    ns.words = Words(cols);
    if (pn.kind == VarKind::kValueVar || pn.kind == VarKind::kConstant) {
      // Value equality is node identity: only the diagonal is compatible.
      ns.rel.assign(rows * ns.words, 0);
      for (size_t i = 0; i < rows; ++i) {
        ns.rel[i * ns.words + (i >> 6)] |= uint64_t{1} << (i & 63);
      }
    } else {
      ns.rel.assign(rows * ns.words, ~uint64_t{0});
      const uint64_t tail =
          (cols % 64) ? ((uint64_t{1} << (cols % 64)) - 1) : ~uint64_t{0};
      for (size_t i = 0; i < rows; ++i) {
        ns.rel[i * ns.words + ns.words - 1] = tail;
      }
    }
  }
  return true;
}

void PairingEngine::BuildAdjacency() {
  for (size_t t = 0; t < cp_.triples.size(); ++t) {
    const CompiledTriple& ct = cp_.triples[t];
    TripleState& ts = st_.triples[t];
    const NodeState& ss = st_.nodes[ct.subject];
    const NodeState& os = st_.nodes[ct.object];

    auto build_fwd = [&](const std::vector<NodeId>& from,
                         const std::vector<NodeId>& to, Csr* fwd) {
      fwd->Reset(from.size());
      for (size_t i = 0; i < from.size(); ++i) {
        ForEachOut(from[i], ct.pred, [&](NodeId dst) {
          int j = IndexOf(to, dst);
          if (j >= 0) fwd->targets.push_back(static_cast<uint32_t>(j));
        });
        fwd->offsets[i + 1] = static_cast<uint32_t>(fwd->targets.size());
      }
    };
    build_fwd(ss.dom1, os.dom1, &ts.lfwd);
    build_fwd(ss.dom2, os.dom2, &ts.rfwd);
    Transpose(ts.lfwd, os.dom1.size(), &ts.lrev, &st_.cursor);
    Transpose(ts.rfwd, os.dom2.size(), &ts.rrev, &st_.cursor);

    auto build_mask = [](const Csr& csr, size_t words,
                         std::vector<uint64_t>* mask) {
      mask->assign((csr.offsets.size() - 1) * words, 0);
      for (size_t j = 0; j + 1 < csr.offsets.size(); ++j) {
        uint64_t* row = mask->data() + j * words;
        for (uint32_t j2 : csr.Row(j)) {
          row[j2 >> 6] |= uint64_t{1} << (j2 & 63);
        }
      }
    };
    build_mask(ts.rfwd, os.words, &ts.fwd_mask);
    build_mask(ts.rrev, ss.words, &ts.rev_mask);
  }
}

void PairingEngine::Propagate() {
  while (!st_.worklist.empty()) {
    Deletion del = st_.worklist.back();
    st_.worklist.pop_back();
    const int v = static_cast<int>(del.node);
    for (int t : cp_.incident[v]) {
      const CompiledTriple& ct = cp_.triples[t];
      const TripleState& ts = st_.triples[t];
      if (ct.subject == v) {
        // The deleted subject pair was a potential witness for the object
        // pairs in its adjacency image.
        const int o = ct.object;
        NodeState& os = st_.nodes[o];
        for (uint32_t i2 : ts.lfwd.Row(del.i)) {
          for (uint32_t j2 : ts.rfwd.Row(del.j)) {
            if (TestBit(os, i2, j2) &&
                !HasSupport(o, i2, j2, t, /*as_subject=*/false)) {
              Delete(o, i2, j2);
            }
          }
        }
      }
      if (ct.object == v) {
        const int s = ct.subject;
        NodeState& ss = st_.nodes[s];
        for (uint32_t i2 : ts.lrev.Row(del.i)) {
          for (uint32_t j2 : ts.rrev.Row(del.j)) {
            if (TestBit(ss, i2, j2) &&
                !HasSupport(s, i2, j2, t, /*as_subject=*/true)) {
              Delete(s, i2, j2);
            }
          }
        }
      }
    }
  }
}

PairingResult PairingEngine::Run(NodeId e1, NodeId e2, bool collect_pairs) {
  PairingResult result;
  if (!BuildDomains()) return result;
  BuildAdjacency();

  // Initial pass: every locally compatible pair must be supported along
  // all incident triples; failures seed the worklist. Set bits are
  // enumerated word-wise so sparse (diagonal) relations cost O(set bits),
  // not O(rows × cols).
  for (size_t v = 0; v < cp_.nodes.size(); ++v) {
    NodeState& ns = st_.nodes[v];
    for (uint32_t i = 0; i < ns.dom1.size(); ++i) {
      const uint64_t* row = RelRow(ns, i);
      for (size_t w = 0; w < ns.words; ++w) {
        uint64_t bits = row[w];
        while (bits != 0) {
          uint32_t j = static_cast<uint32_t>(w * 64 + __builtin_ctzll(bits));
          bits &= bits - 1;
          if (!Supported(static_cast<int>(v), i, j)) {
            Delete(static_cast<uint32_t>(v), i, j);
          }
        }
      }
    }
  }
  Propagate();

  const NodeState& xs = st_.nodes[cp_.designated];
  const int i1 = IndexOf(xs.dom1, e1);
  const int j1 = IndexOf(xs.dom2, e2);
  if (i1 < 0 || j1 < 0 || !TestBit(xs, i1, j1)) return result;
  result.paired = true;

  st_.collect1.clear();
  st_.collect2.clear();
  st_.pair_buf.clear();
  for (size_t v = 0; v < cp_.nodes.size(); ++v) {
    NodeState& ns = st_.nodes[v];
    st_.colmask.assign(ns.words, 0);
    for (size_t i = 0; i < ns.dom1.size(); ++i) {
      const uint64_t* row = RelRow(ns, i);
      bool any = false;
      for (size_t w = 0; w < ns.words; ++w) {
        if (row[w] == 0) continue;
        any = true;
        st_.colmask[w] |= row[w];
        result.relation_size += __builtin_popcountll(row[w]);
        if (collect_pairs) {
          uint64_t bits = row[w];
          while (bits != 0) {
            size_t j = w * 64 + __builtin_ctzll(bits);
            bits &= bits - 1;
            st_.pair_buf.push_back(PackPair(ns.dom1[i], ns.dom2[j]));
          }
        }
      }
      if (any) st_.collect1.push_back(ns.dom1[i]);
    }
    for (size_t w = 0; w < ns.words; ++w) {
      uint64_t bits = st_.colmask[w];
      while (bits != 0) {
        size_t j = w * 64 + __builtin_ctzll(bits);
        bits &= bits - 1;
        st_.collect2.push_back(ns.dom2[j]);
      }
    }
  }
  auto seal = [](std::vector<NodeId>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    return NodeSet::FromSorted(v);
  };
  result.reduced1 = seal(st_.collect1);
  result.reduced2 = seal(st_.collect2);
  if (collect_pairs) {
    std::sort(st_.pair_buf.begin(), st_.pair_buf.end());
    st_.pair_buf.erase(
        std::unique(st_.pair_buf.begin(), st_.pair_buf.end()),
        st_.pair_buf.end());
    result.pairs = st_.pair_buf;
  }
  return result;
}

PairingResult ComputeMaxPairing(const Graph& g, const CompiledPattern& cp,
                                NodeId e1, NodeId e2, const NodeSet& n1,
                                const NodeSet& n2, bool collect_pairs,
                                PairingScratch* scratch) {
  if (!cp.matchable) return PairingResult{};
  // The fallback scratch is built only when the caller brought none, so
  // scratch-threaded hot paths never pay its allocation.
  std::optional<PairingScratch> local;
  PairingScratch& s = scratch != nullptr ? *scratch : local.emplace();
  PairingEngine engine(g, cp, n1, n2, *s.state_);
  return engine.Run(e1, e2, collect_pairs);
}

}  // namespace gkeys
