#include "isomorph/vf2.h"

namespace gkeys {

namespace {

/// One single-sided enumeration.
struct Vf2Context {
  const Graph& g;
  const CompiledPattern& cp;
  const NodeSet* restrict_to;
  size_t max_matches;
  SearchStats* stats;
  Valuation m;  // pattern node -> graph node, kNoNode == unmapped
  std::vector<Valuation>* out;

  bool InSide(NodeId n) const {
    return restrict_to == nullptr || restrict_to->Contains(n);
  }
  bool TripleInSide(NodeId s, Symbol p, NodeId o) const {
    return InSide(s) && InSide(o) && g.HasTriple(s, p, o);
  }

  /// VF2 feasibility: kind/type/constant consistency, injectivity, and all
  /// adjacent already-mapped pattern triples realized in the graph.
  bool Feasible(int v, NodeId c) {
    if (stats != nullptr) ++stats->feasibility_checks;
    const CompiledNode& pn = cp.nodes[v];
    switch (pn.kind) {
      case VarKind::kDesignated:
        return false;
      case VarKind::kEntityVar:
      case VarKind::kWildcard:
        if (!g.IsEntity(c) || g.entity_type(c) != pn.type) return false;
        break;
      case VarKind::kValueVar:
        if (!g.IsValue(c)) return false;
        break;
      case VarKind::kConstant:
        if (c != pn.constant_node) return false;
        break;
    }
    if (!InSide(c)) return false;
    for (NodeId used : m) {
      if (used == c) return false;
    }
    for (int t : cp.incident[v]) {
      const CompiledTriple& ct = cp.triples[t];
      int other = ct.subject == v ? ct.object : ct.subject;
      NodeId s, o;
      if (other == v) {
        s = c; o = c;
      } else if (ct.subject == v) {
        if (m[other] == kNoNode) continue;
        s = c; o = m[other];
      } else {
        if (m[other] == kNoNode) continue;
        s = m[other]; o = c;
      }
      if (!TripleInSide(s, ct.pred, o)) return false;
    }
    return true;
  }

  /// Exhaustive: records every full valuation (no early termination).
  void Enumerate(size_t step) {
    if (max_matches != 0 && out->size() >= max_matches) return;
    if (step == cp.plan.size()) {
      if (stats != nullptr) ++stats->full_instantiations;
      out->push_back(m);
      return;
    }
    const SearchStep& ss = cp.plan[step];
    const CompiledTriple& ct = cp.triples[ss.via_triple];
    int anchor = ss.forward ? ct.subject : ct.object;
    NodeId a = m[anchor];
    const auto edges = ss.forward ? g.Out(a) : g.In(a);
    for (const Edge& e : edges) {
      if (e.pred != ct.pred) continue;
      if (stats != nullptr) ++stats->expansions;
      if (!Feasible(ss.node, e.dst)) continue;
      m[ss.node] = e.dst;
      Enumerate(step + 1);
      m[ss.node] = kNoNode;
    }
  }
};

}  // namespace

std::vector<Valuation> EnumerateMatches(const Graph& g,
                                        const CompiledPattern& cp, NodeId e,
                                        const NodeSet* restrict_to,
                                        size_t max_matches,
                                        SearchStats* stats) {
  std::vector<Valuation> out;
  if (!cp.matchable) return out;
  const CompiledNode& x = cp.nodes[cp.designated];
  if (!g.IsEntity(e) || g.entity_type(e) != x.type) return out;
  Vf2Context ctx{g,
                 cp,
                 restrict_to,
                 max_matches,
                 stats,
                 Valuation(cp.nodes.size(), kNoNode),
                 &out};
  if (!ctx.InSide(e)) return out;
  ctx.m[cp.designated] = e;
  for (int t : cp.incident[cp.designated]) {
    const CompiledTriple& ct = cp.triples[t];
    if (ct.subject == cp.designated && ct.object == cp.designated) {
      if (!ctx.TripleInSide(e, ct.pred, e)) return out;
    }
  }
  ctx.Enumerate(0);
  return out;
}

bool Coincide(const Graph& g, const CompiledPattern& cp, const Valuation& v1,
              const Valuation& v2, const EqView& eq) {
  (void)g;
  for (size_t i = 0; i < cp.nodes.size(); ++i) {
    if (static_cast<int>(i) == cp.designated) continue;
    switch (cp.nodes[i].kind) {
      case VarKind::kEntityVar:
        if (!eq.Same(v1[i], v2[i])) return false;
        break;
      case VarKind::kValueVar:
        if (v1[i] != v2[i]) return false;  // equal values share a node
        break;
      case VarKind::kDesignated:
      case VarKind::kWildcard:
      case VarKind::kConstant:
        break;  // identity not required (constants already pinned)
    }
  }
  return true;
}

bool IdentifiesByEnumeration(const Graph& g, const CompiledPattern& cp,
                             NodeId e1, NodeId e2, const EqView& eq,
                             const NodeSet* n1, const NodeSet* n2,
                             SearchStats* stats, Witness* witness) {
  // Safety valve: patterns are small; planted graphs keep match counts low.
  constexpr size_t kMaxMatches = 100000;
  std::vector<Valuation> m1 =
      EnumerateMatches(g, cp, e1, n1, kMaxMatches, stats);
  if (m1.empty()) return false;
  std::vector<Valuation> m2 =
      EnumerateMatches(g, cp, e2, n2, kMaxMatches, stats);
  for (const Valuation& v1 : m1) {
    for (const Valuation& v2 : m2) {
      if (Coincide(g, cp, v1, v2, eq)) {
        if (witness != nullptr) {
          witness->resize(v1.size());
          for (size_t i = 0; i < v1.size(); ++i) {
            (*witness)[i] = {v1[i], v2[i]};
          }
        }
        return true;
      }
    }
  }
  return false;
}

}  // namespace gkeys
